GO ?= go

.PHONY: check fmt vet build test race bench bench-paper obs-smoke chaos-smoke scale-smoke query-smoke analyze-smoke mt-smoke cache-smoke

# check is the CI gate: formatting, vet, build, full tests, the race
# detector across the whole module (the data-plane compute pool makes
# real goroutine concurrency reachable from every package), and the
# observability, chaos, scale, query, analysis, and multi-tenant smoke
# tests.
check: fmt vet build test race obs-smoke chaos-smoke scale-smoke query-smoke analyze-smoke mt-smoke cache-smoke

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench is the benchmark smoke test: every Benchmark* runs once with
# allocation stats; a failing benchmark (b.Fatal/b.Error) fails the target.
bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x -benchmem ./...

# bench-paper regenerates the paper's tables/figures via the harness.
bench-paper:
	$(GO) run ./cmd/scidp-bench -quick

# obs-smoke runs the quick fig5 sweep with both exporters attached and
# asserts the exports parse: the trace must be valid JSON with events,
# the metrics dump non-empty with the headline series present.
obs-smoke:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) run ./cmd/scidp-bench -exp fig5 -quick \
		-trace "$$tmp/trace.json" -metrics "$$tmp/metrics.prom" > /dev/null; \
	$(GO) run ./cmd/checktrace "$$tmp/trace.json" "$$tmp/metrics.prom"

# scale-smoke runs the quick scale-out sweep (synthetic streaming job on
# 4- and 16-node clusters plus the kernel-vs-seed flow microbenchmark)
# and fails if any sweep point drops below a conservative events/sec
# floor — the guard against kernel or scheduler throughput regressions.
# The floor is ~5x under the slowest point observed on a loaded dev box.
scale-smoke:
	@$(GO) run ./cmd/scidp-bench -exp scale -quick -scale-floor 50000 > /dev/null && \
		echo "scale-smoke: throughput floor held"

# query-smoke runs the quick chunk-pushdown query sweep and fails if any
# query's skip ratio (chunks decoded and bytes inflated, oracle over
# pushdown) drops below 5x. The experiment itself fails hard when the
# pushdown and oracle result frames differ or a same-seed repeat's
# metric export diverges, so this also guards result correctness.
query-smoke:
	@$(GO) run ./cmd/scidp-bench -exp query -quick -query-floor 5 > /dev/null && \
		echo "query-smoke: pushdown floor held, digests matched"

# analyze-smoke runs the canonical fig5 pipeline through the post-run
# analysis engine and asserts the determinism contract (byte-identical
# analysis JSON across same-seed runs, with and without a chaos plan,
# at ComputePool workers 0/1/4) plus the budget floors (critical-path
# I/O share in bounds, recovery time booked only under faults).
analyze-smoke:
	@$(GO) run ./cmd/checkanalyze

# mt-smoke replays the bundled multi-tenant arrival trace twice through
# scidpd (data-plane workers 1 and 4) and asserts via checkmt that the
# two summaries — completion digest, export digest, every byte — are
# identical, that no tenant exceeded its quota, and that p99 latency
# and goodput clear conservative floors (observed: p99 ~4.4s, goodput
# ~1760 jobs/ks on the bundled trace).
mt-smoke:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) run ./cmd/scidpd -replay cmd/scidpd/testdata/trace-small.json -workers 1 -json "$$tmp/run1.json" > /dev/null; \
	$(GO) run ./cmd/scidpd -replay cmd/scidpd/testdata/trace-small.json -workers 4 -json "$$tmp/run2.json" > /dev/null; \
	$(GO) run ./cmd/checkmt -p99-floor 10 -goodput-floor 800 "$$tmp/run1.json" "$$tmp/run2.json"

# cache-smoke runs the quick tiered-cache sweep twice and asserts via
# checkcache that the two artifacts are byte-identical (same-seed
# determinism through the cooperative cache), that every tiered point's
# job outputs match the cache-off baseline, that cross-job hits appear
# wherever the tier is not churning, and that the mt arm's hit rate
# clears a conservative floor (observed: 0.91 on the quick trace).
cache-smoke:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) run ./cmd/scidp-bench -exp cache -quick -json "$$tmp/run1.json" > /dev/null; \
	$(GO) run ./cmd/scidp-bench -exp cache -quick -json "$$tmp/run2.json" > /dev/null; \
	$(GO) run ./cmd/checkcache -hit-floor 0.2 "$$tmp/run1.json" "$$tmp/run2.json"

# chaos-smoke runs the quick fault-injection sweep and asserts every run
# completed with output byte-identical to the fault-free baseline, the
# same-seed repeats reproduced the export digests, and the faulted run
# shows nonzero recovery counters (failovers, retries, speculative wins).
chaos-smoke:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) run ./cmd/scidp-bench -exp faults -quick -json "$$tmp/faults.json" > /dev/null; \
	$(GO) run ./cmd/checkchaos "$$tmp/faults.json"

GO ?= go

.PHONY: check fmt vet build test race bench bench-paper

# check is the CI gate: formatting, vet, build, full tests, and the race
# detector on the packages with real goroutine concurrency.
check: fmt vet build test race

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/sim ./internal/ioengine ./internal/core ./internal/mapreduce

# bench is the benchmark smoke test: every Benchmark* runs once with
# allocation stats; a failing benchmark (b.Fatal/b.Error) fails the target.
bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x -benchmem ./...

# bench-paper regenerates the paper's tables/figures via the harness.
bench-paper:
	$(GO) run ./cmd/scidp-bench -quick

GO ?= go

.PHONY: check fmt vet build test race bench bench-paper obs-smoke chaos-smoke

# check is the CI gate: formatting, vet, build, full tests, the race
# detector across the whole module (the data-plane compute pool makes
# real goroutine concurrency reachable from every package), and the
# observability and chaos smoke tests.
check: fmt vet build test race obs-smoke chaos-smoke

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench is the benchmark smoke test: every Benchmark* runs once with
# allocation stats; a failing benchmark (b.Fatal/b.Error) fails the target.
bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x -benchmem ./...

# bench-paper regenerates the paper's tables/figures via the harness.
bench-paper:
	$(GO) run ./cmd/scidp-bench -quick

# obs-smoke runs the quick fig5 sweep with both exporters attached and
# asserts the exports parse: the trace must be valid JSON with events,
# the metrics dump non-empty with the headline series present.
obs-smoke:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) run ./cmd/scidp-bench -exp fig5 -quick \
		-trace "$$tmp/trace.json" -metrics "$$tmp/metrics.prom" > /dev/null; \
	$(GO) run ./cmd/checktrace "$$tmp/trace.json" "$$tmp/metrics.prom"

# chaos-smoke runs the quick fault-injection sweep and asserts every run
# completed with output byte-identical to the fault-free baseline, the
# same-seed repeats reproduced the export digests, and the faulted run
# shows nonzero recovery counters (failovers, retries, speculative wins).
chaos-smoke:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) run ./cmd/scidp-bench -exp faults -quick -json "$$tmp/faults.json" > /dev/null; \
	$(GO) run ./cmd/checkchaos "$$tmp/faults.json"

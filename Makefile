GO ?= go

.PHONY: check fmt vet build test race bench

# check is the CI gate: formatting, vet, build, full tests, and the race
# detector on the packages with real goroutine concurrency.
check: fmt vet build test race

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/sim ./internal/ioengine ./internal/core

bench:
	$(GO) run ./cmd/scidp-bench -quick

// Package-level benchmarks: one testing.B benchmark per table and figure
// of the SciDP paper's evaluation, each regenerating the corresponding
// artifact on the simulated testbed and reporting the headline metric.
// Run them all with:
//
//	go test -bench=. -benchmem
//
// These run at a reduced geometry/sweep so the whole suite completes in
// minutes; cmd/scidp-bench runs the full paper-size sweeps.
package scidp_test

import (
	"fmt"
	"testing"

	"scidp/internal/bench"
	"scidp/internal/solutions"
)

// benchScale is the geometry the testing.B benchmarks run at.
func benchScale() bench.Scale { return bench.QuickScale() }

// BenchmarkTable1_DataPaths renders the qualitative data-path matrix.
func BenchmarkTable1_DataPaths(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := bench.Table1(); len(tab.Rows) != 5 {
			b.Fatal("Table I wrong shape")
		}
	}
}

// BenchmarkTable2_Workloads renders the workload matrix.
func BenchmarkTable2_Workloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := bench.Table2(); len(tab.Rows) != 2 {
			b.Fatal("Table II wrong shape")
		}
	}
}

// BenchmarkFig2_HDFSvsLustre reproduces Figure 2: TeraSort, Grep, and
// TestDFSIO on native HDFS versus the Lustre HDFS connector.
func BenchmarkFig2_HDFSvsLustre(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := bench.Fig2()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + tab.String())
		}
	}
}

// BenchmarkFig5_ImgOnly reproduces Figure 5: total execution time of the
// five solutions across dataset sizes.
func BenchmarkFig5_ImgOnly(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.RunFig5(benchScale(), []int{8, 16})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + bench.Fig5Table(r).String())
		}
	}
}

// BenchmarkTable3_Speedups reproduces Table III: SciDP's speedup over
// every existing solution.
func BenchmarkTable3_Speedups(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.RunFig5(benchScale(), []int{16})
		if err != nil {
			b.Fatal(err)
		}
		tab := bench.Table3(r)
		if i == 0 {
			b.Log("\n" + tab.String())
			b.ReportMetric(r.Totals["scihadoop"][16]/r.Totals["scidp"][16], "speedup-vs-scihadoop")
			b.ReportMetric(r.Totals["naive"][16]/r.Totals["scidp"][16], "speedup-vs-naive")
		}
	}
}

// BenchmarkFig6_IOBandwidth reproduces Figure 6: I/O bandwidth against
// reader count for the four read methods.
func BenchmarkFig6_IOBandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := bench.Fig6(benchScale(), 32, []int{1, 4, 16, 64})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + tab.String())
		}
	}
}

// BenchmarkFig7_TaskDecomposition reproduces Figure 7: per-task
// Read/Convert/Plot decomposition per level.
func BenchmarkFig7_TaskDecomposition(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := bench.Fig7(benchScale(), 16)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + tab.String())
		}
	}
}

// BenchmarkFig8_ScaleOut reproduces Figure 8: SciDP at 4/8/16 nodes.
func BenchmarkFig8_ScaleOut(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := bench.Fig8(benchScale(), 128, []int{4, 8, 16})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + tab.String())
		}
	}
}

// BenchmarkFig9_Analysis reproduces Figure 9: the Anlys workload's three
// SQL cases across dataset sizes.
func BenchmarkFig9_Analysis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := bench.Fig9(benchScale(), []int{8, 16})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + tab.String())
		}
	}
}

// BenchmarkAblation_BlockGranularity measures SciDP's dummy-block
// granularity trade-off (DESIGN.md ablation 1).
func BenchmarkAblation_BlockGranularity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := bench.AblationBlockGranularity(benchScale(), 8)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + tab.String())
		}
	}
}

// BenchmarkAblation_VariableSubsetting measures mapping with and without
// variable subsetting (DESIGN.md ablation 2).
func BenchmarkAblation_VariableSubsetting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := bench.AblationVariableSubsetting(benchScale(), 8)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + tab.String())
		}
	}
}

// BenchmarkAblation_WholeBlockRead measures the single whole-block read
// against 64 KB streaming (DESIGN.md ablation 3).
func BenchmarkAblation_WholeBlockRead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := bench.AblationWholeBlockRead(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + tab.String())
		}
	}
}

// BenchmarkAblation_Overlap measures overlapped versus staged SciDP
// (DESIGN.md ablation 4).
func BenchmarkAblation_Overlap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := bench.AblationOverlap(benchScale(), 8)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + tab.String())
		}
	}
}

// BenchmarkSciDPPipeline measures one full SciDP run end to end (map,
// process, store) as a plain throughput number.
func BenchmarkSciDPPipeline(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		rep, err := bench.RunOne(s, 8, 0, solutions.AnalysisNone, "scidp", nil)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Images == 0 {
			b.Fatal("no images")
		}
		if i == 0 {
			b.ReportMetric(rep.TotalSeconds, "virtual-seconds")
			b.Log(fmt.Sprintf("scidp: %d images in %.1f virtual s", rep.Images, rep.TotalSeconds))
		}
	}
}

// BenchmarkWorkflow_InSitu measures the end-to-end simulate+analyze
// workflow, in-situ versus offline.
func BenchmarkWorkflow_InSitu(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := bench.Workflow(benchScale(), 8, 30)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + tab.String())
		}
	}
}

// Command checkanalyze is the analysis plane's CI regression guard —
// the smoke gate behind `make analyze-smoke`.
//
// Usage:
//
//	checkanalyze [-timestamps n] [-rate r] [-io-share-min x] [-io-share-max x]
//
// It runs the canonical fig5 pipeline and asserts the determinism
// contract of `scidpctl analyze` / `scidp-bench -explain`:
//
//   - two plain same-seed runs produce byte-identical analysis JSON;
//   - so do two same-seed runs under a chaos plan;
//   - so do runs at ComputePool workers=1 vs workers=4 (the data plane
//     must not leak into virtual time);
//   - the report is structurally complete: at least one job with
//     phases, a critical path that tiles the job exactly, nonempty
//     time attribution, and a ranked resource table;
//   - budget floors hold: the critical path's input-I/O share stays
//     inside [-io-share-min, -io-share-max], and the chaos run books
//     nonzero recovery time that the plain run does not.
//
// Exit status 0 on success.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	"scidp/internal/bench"
	"scidp/internal/chaos"
	"scidp/internal/obs/analyze"
)

func main() {
	// 16 timestamps makes the map phase big enough (two waves on the
	// 4×2-slot faults testbed) that the plan's task-failure and
	// straggler draws reliably hit, so the recovery-attribution floor
	// below is meaningful.
	timestamps := flag.Int("timestamps", 16, "dataset timestamps for the canonical run")
	rate := flag.Float64("rate", 0.1, "fault rate for the chaos-plan leg")
	ioShareMin := flag.Float64("io-share-min", 0.001, "floor on the plain run's critical-path I/O share")
	ioShareMax := flag.Float64("io-share-max", 0.9, "ceiling on the plain run's critical-path I/O share")
	flag.Parse()

	s := bench.QuickScale()
	run := func(plan *chaos.Plan, workers int, label string) (*analyze.Report, []byte, float64) {
		rep, solRep, _, err := bench.AnalyzeRun(s, *timestamps, plan, workers, label)
		if err != nil {
			fail(fmt.Errorf("%s: %w", label, err))
		}
		j, err := rep.JSON()
		if err != nil {
			fail(fmt.Errorf("%s: %w", label, err))
		}
		return rep, j, solRep.TotalSeconds
	}

	// Leg 1: plain determinism + worker invariance. Every leg uses the
	// same process label — the analysis must depend only on (seed, plan,
	// timestamps), never on the worker count.
	plainRep, plainJSON, baseJCT := run(nil, 0, "checkanalyze")
	_, againJSON, _ := run(nil, 0, "checkanalyze")
	if !bytes.Equal(plainJSON, againJSON) {
		fail(fmt.Errorf("plain same-seed runs produced different analysis JSON"))
	}
	_, w1JSON, _ := run(nil, 1, "checkanalyze")
	_, w4JSON, _ := run(nil, 4, "checkanalyze")
	if !bytes.Equal(plainJSON, w1JSON) || !bytes.Equal(plainJSON, w4JSON) {
		fail(fmt.Errorf("analysis JSON differs across ComputePool worker counts (inline vs 1 vs 4)"))
	}

	// Leg 2: chaos determinism (same plan, workers 0 vs 4).
	plan := bench.FaultsPlan(bench.FaultsSeed, baseJCT, *rate)
	chaosRep, chaosJSON, _ := run(plan, 0, "checkanalyze")
	_, chaosAgainJSON, _ := run(plan, 4, "checkanalyze")
	if !bytes.Equal(chaosJSON, chaosAgainJSON) {
		fail(fmt.Errorf("chaos same-seed runs produced different analysis JSON"))
	}
	if bytes.Equal(plainJSON, chaosJSON) {
		fail(fmt.Errorf("chaos plan did not change the analysis — injection inert?"))
	}

	// Leg 3: structural completeness + budget floors on the plain run.
	if plainRep.SpansDropped != 0 {
		fail(fmt.Errorf("span buffer overflowed (%d dropped): analysis is partial", plainRep.SpansDropped))
	}
	if len(plainRep.Jobs) == 0 {
		fail(fmt.Errorf("no jobs in the analysis"))
	}
	if len(plainRep.Resources) == 0 {
		fail(fmt.Errorf("no resources ranked"))
	}
	var pathSeconds, pathIO float64
	for _, j := range plainRep.Jobs {
		if len(j.Phases) == 0 {
			fail(fmt.Errorf("job %s: no phases", j.Name))
		}
		if j.Buckets.Total() <= 0 {
			fail(fmt.Errorf("job %s: no time attributed", j.Name))
		}
		last := j.Start
		for _, seg := range j.CriticalPath.Segments {
			if seg.Start != last {
				fail(fmt.Errorf("job %s: critical path gap at t=%v", j.Name, last))
			}
			last = seg.End
		}
		if last != j.End {
			fail(fmt.Errorf("job %s: critical path covers [%v, %v], job ends at %v", j.Name, j.Start, last, j.End))
		}
		pathSeconds += j.CriticalPath.Buckets.Total()
		pathIO += j.CriticalPath.Buckets.IO
	}
	ioShare := 0.0
	if pathSeconds > 0 {
		ioShare = pathIO / pathSeconds
	}
	if ioShare < *ioShareMin || ioShare > *ioShareMax {
		fail(fmt.Errorf("critical-path I/O share %.4f outside budget [%.4f, %.4f]", ioShare, *ioShareMin, *ioShareMax))
	}

	plainRecovery, chaosRecovery := 0.0, 0.0
	for _, j := range plainRep.Jobs {
		plainRecovery += j.Buckets.Recovery
	}
	for _, j := range chaosRep.Jobs {
		chaosRecovery += j.Buckets.Recovery
	}
	if plainRecovery != 0 {
		fail(fmt.Errorf("fault-free run books %.3fs of recovery time", plainRecovery))
	}
	if chaosRecovery <= 0 {
		fail(fmt.Errorf("chaos run books no recovery time — attribution missed the faults"))
	}

	fmt.Printf("ok: analysis deterministic (plain, chaos, workers 0/1/4), %d job(s), critical-path io share %.4f in [%g, %g], chaos recovery %.3fs\n",
		len(plainRep.Jobs), ioShare, *ioShareMin, *ioShareMax, chaosRecovery)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "checkanalyze: %v\n", err)
	os.Exit(1)
}

// Command checkcache validates two cache-experiment artifacts — the CI
// smoke gate behind `make cache-smoke`.
//
// Usage:
//
//	checkcache [-hit-floor X] [-speedup-floor X] run1.json run2.json
//
// The two files must be the -json output of two `scidp-bench -exp
// cache` runs with identical flags (same seed by construction): the
// gate asserts they are byte-identical — the tiered cooperative cache
// must be deterministic end to end — and then checks one artifact's
// invariants: every sweep point worker-count deterministic, every
// tiered point's job outputs byte-identical to the cache-off baseline,
// cross-job hits present wherever the tier is not churning, and the mt
// arm deterministic with a non-zero hit rate. -hit-floor sets a minimum
// on the best tiered point's cross-job hit rate; -speedup-floor on the
// best JCT speedup over the cache-off baseline. Exit status 0 on
// success.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"scidp/internal/bench"
)

func fail(err error) {
	fmt.Fprintf(os.Stderr, "checkcache: %v\n", err)
	os.Exit(1)
}

func main() {
	hitFloor := flag.Float64("hit-floor", 0, "fail unless some tiered point's cross-job hit rate reaches this")
	speedupFloor := flag.Float64("speedup-floor", 0, "fail unless the best tiered JCT speedup over cache-off reaches this")
	flag.Parse()
	if flag.NArg() != 2 {
		fail(fmt.Errorf("usage: checkcache [-hit-floor X] [-speedup-floor X] run1.json run2.json"))
	}

	raws := make([][]byte, 2)
	results := make([]bench.CacheResult, 2)
	for i, path := range flag.Args() {
		raw, err := os.ReadFile(path)
		if err != nil {
			fail(err)
		}
		raws[i] = raw
		if err := json.Unmarshal(raw, &results[i]); err != nil {
			fail(fmt.Errorf("%s: not valid JSON: %w", path, err))
		}
	}

	if !bytes.Equal(raws[0], raws[1]) {
		fail(fmt.Errorf("the two cache artifacts are not byte-identical (same-seed repeat diverged)"))
	}
	r := results[0]
	if len(r.Runs) < 2 {
		fail(fmt.Errorf("artifact holds %d sweep points, want the off baseline plus tiered points", len(r.Runs)))
	}
	bestHit := 0.0
	tiered := 0
	for _, run := range r.Runs {
		if !run.Deterministic {
			fail(fmt.Errorf("point %s/%dB: workers=1 and workers=4 runs diverged", run.Policy, run.CapacityBytes))
		}
		if !run.OutputsMatchBaseline {
			fail(fmt.Errorf("point %s/%dB: job outputs differ from the cache-off baseline", run.Policy, run.CapacityBytes))
		}
		if run.OutputDigest == "" {
			fail(fmt.Errorf("point %s/%dB: missing output digest", run.Policy, run.CapacityBytes))
		}
		if run.Policy == "off" {
			continue
		}
		tiered++
		if run.CrossJobHitRate <= 0 && run.Evictions == 0 {
			fail(fmt.Errorf("point %s/%dB: zero cross-job hit rate without eviction churn", run.Policy, run.CapacityBytes))
		}
		if run.CrossJobHitRate > bestHit {
			bestHit = run.CrossJobHitRate
		}
	}
	if tiered == 0 {
		fail(fmt.Errorf("artifact holds no tiered sweep points"))
	}
	if bestHit <= 0 {
		fail(fmt.Errorf("no tiered point served a single cross-job hit"))
	}
	if *hitFloor > 0 && bestHit < *hitFloor {
		fail(fmt.Errorf("hit-rate floor violated: best cross-job hit rate %.2f < %.2f", bestHit, *hitFloor))
	}
	if *speedupFloor > 0 {
		if sp := r.BestSpeedup(); sp < *speedupFloor {
			fail(fmt.Errorf("speedup floor violated: best tiered JCT speedup %.3fx < %.3fx", sp, *speedupFloor))
		}
	}
	if r.MT == nil {
		fail(fmt.Errorf("artifact is missing the multi-tenant arm"))
	}
	if !r.MT.Deterministic {
		fail(fmt.Errorf("mt arm: same-seed tiered repeat diverged"))
	}
	if r.MT.HitRate <= 0 {
		fail(fmt.Errorf("mt arm: zero hit rate on the repeated-catalog trace"))
	}

	fmt.Printf("ok: %d tiered points (best hit rate %.2f, best speedup %.3fx), mt hit rate %.2f, artifacts byte-identical, outputs match cache-off at every point\n",
		tiered, bestHit, r.BestSpeedup(), r.MT.HitRate)
}

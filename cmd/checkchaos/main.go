// Command checkchaos validates the faults experiment's result JSON —
// the CI smoke gate behind `make chaos-smoke`.
//
// Usage:
//
//	checkchaos faults.json
//
// The file must be the machine-readable output of
// `scidp-bench -exp faults -json faults.json`: a baseline plus at least
// one faulted sweep point. Every run must have completed (positive JCT
// and output volume), produced output byte-identical to the fault-free
// baseline, and reproduced both its output and observability-export
// digests on the same-seed repeat; at least one faulted run must show
// actual recovery work — replica failovers, read retries, speculative
// wins, and injected faults all nonzero. Exit status 0 on success.
package main

import (
	"encoding/json"
	"fmt"
	"os"

	"scidp/internal/bench"
)

func main() {
	if len(os.Args) != 2 {
		fail(fmt.Errorf("usage: checkchaos faults.json"))
	}
	raw, err := os.ReadFile(os.Args[1])
	if err != nil {
		fail(err)
	}
	var res bench.FaultsResult
	if err := json.Unmarshal(raw, &res); err != nil {
		fail(fmt.Errorf("%s: not valid JSON: %w", os.Args[1], err))
	}

	if len(res.Runs) < 2 {
		fail(fmt.Errorf("want a baseline plus at least one faulted run, got %d run(s)", len(res.Runs)))
	}
	recovered := false
	for _, r := range res.Runs {
		if r.JCTSeconds <= 0 || r.ResultBytes <= 0 {
			fail(fmt.Errorf("rate %g: job did not complete (jct=%g, bytes=%d)", r.Rate, r.JCTSeconds, r.ResultBytes))
		}
		if !r.OutputMatchesBaseline {
			fail(fmt.Errorf("rate %g: output differs from the fault-free baseline", r.Rate))
		}
		if !r.Deterministic {
			fail(fmt.Errorf("rate %g: same-seed repeat did not reproduce the digests", r.Rate))
		}
		if r.Rate > 0 && r.Failovers > 0 && r.ReadRetries > 0 && r.SpecWins > 0 && r.FaultsInjected > 0 {
			recovered = true
		}
	}
	if !recovered {
		fail(fmt.Errorf("no faulted run shows nonzero failovers, read retries, speculative wins, and injected faults"))
	}

	last := res.Runs[len(res.Runs)-1]
	fmt.Printf("ok: %d runs, baseline JCT %.1fs, rate %g recovered (failovers=%.0f retries=%.0f spec-wins=%.0f faults=%.0f), outputs byte-identical and deterministic\n",
		len(res.Runs), res.BaselineJCT, last.Rate, last.Failovers, last.ReadRetries, last.SpecWins, last.FaultsInjected)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "checkchaos: %v\n", err)
	os.Exit(1)
}

// Command checkmt validates two scidpd replay summaries — the CI smoke
// gate behind `make mt-smoke`.
//
// Usage:
//
//	checkmt [-p99-floor SECONDS] [-goodput-floor JOBS/KS] run1.json run2.json
//
// The two files must be the -json output of two `scidpd -replay` runs
// of the same trace (typically at different -workers counts): the gate
// asserts they are byte-identical — completion digest, export digest,
// and the full summary — that jobs actually completed, that no tenant
// exceeded its quota, and optionally that overall p99 latency and
// goodput clear the given floors. Exit status 0 on success.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"scidp/internal/tenant"
)

func fail(err error) {
	fmt.Fprintf(os.Stderr, "checkmt: %v\n", err)
	os.Exit(1)
}

func main() {
	p99Floor := flag.Float64("p99-floor", 0, "fail if overall p99 latency exceeds this many seconds")
	goodputFloor := flag.Float64("goodput-floor", 0, "fail if goodput falls below this many jobs per 1000 virtual seconds")
	flag.Parse()
	if flag.NArg() != 2 {
		fail(fmt.Errorf("usage: checkmt [-p99-floor S] [-goodput-floor G] run1.json run2.json"))
	}

	raws := make([][]byte, 2)
	sums := make([]tenant.Summary, 2)
	for i, path := range flag.Args() {
		raw, err := os.ReadFile(path)
		if err != nil {
			fail(err)
		}
		raws[i] = raw
		if err := json.Unmarshal(raw, &sums[i]); err != nil {
			fail(fmt.Errorf("%s: not valid JSON: %w", path, err))
		}
	}

	if !bytes.Equal(raws[0], raws[1]) {
		fail(fmt.Errorf("the two replay summaries are not byte-identical"))
	}
	s := sums[0]
	if s.CompletionDigest == "" || s.CompletionDigest != sums[1].CompletionDigest {
		fail(fmt.Errorf("completion digests differ or are missing"))
	}
	if s.ExportDigest == "" || s.ExportDigest != sums[1].ExportDigest {
		fail(fmt.Errorf("export digests differ or are missing"))
	}
	if s.Completed == 0 {
		fail(fmt.Errorf("no job completed"))
	}
	if s.Completed+s.Rejected+s.Failed != s.Jobs {
		fail(fmt.Errorf("jobs unaccounted for: %d jobs, %d completed + %d rejected + %d failed",
			s.Jobs, s.Completed, s.Rejected, s.Failed))
	}
	if !s.WithinQuota {
		fail(fmt.Errorf("a tenant exceeded its quota"))
	}
	if *p99Floor > 0 && s.P99Seconds > *p99Floor {
		fail(fmt.Errorf("p99 floor violated: %.2fs > %.2fs", s.P99Seconds, *p99Floor))
	}
	if *goodputFloor > 0 && s.GoodputJobsPerKs < *goodputFloor {
		fail(fmt.Errorf("goodput floor violated: %.2f < %.2f jobs/ks", s.GoodputJobsPerKs, *goodputFloor))
	}

	fmt.Printf("ok: %d jobs (%d completed, %d rejected), p50 %.2fs p99 %.2fs, goodput %.0f jobs/ks, %d preemptions, %d backfills, runs byte-identical and within quota\n",
		s.Jobs, s.Completed, s.Rejected, s.P50Seconds, s.P99Seconds,
		s.GoodputJobsPerKs, s.Preemptions, s.Backfills)
}

// Command checktrace validates scidp-bench observability exports — the
// CI smoke gate behind `make obs-smoke`.
//
// Usage:
//
//	checktrace trace.json metrics.prom
//
// The trace must be valid Chrome trace-event JSON with at least one
// complete-event span; the metrics dump must be non-empty and contain
// the headline series (per-OST bytes, cache hit ratio, HDFS read
// locality). Exit status 0 on success.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

func main() {
	if len(os.Args) != 3 {
		fail(fmt.Errorf("usage: checktrace trace.json metrics.prom"))
	}

	raw, err := os.ReadFile(os.Args[1])
	if err != nil {
		fail(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		fail(fmt.Errorf("%s: not valid JSON: %w", os.Args[1], err))
	}
	spans := 0
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			spans++
		}
	}
	if spans == 0 {
		fail(fmt.Errorf("%s: no complete-event spans", os.Args[1]))
	}

	prom, err := os.ReadFile(os.Args[2])
	if err != nil {
		fail(err)
	}
	if len(prom) == 0 {
		fail(fmt.Errorf("%s: empty metrics dump", os.Args[2]))
	}
	for _, series := range []string{
		"pfs_ost_read_bytes_total",
		"ioengine_cache_hit_ratio",
		`hdfs_block_reads_total{locality="local"}`,
	} {
		if !strings.Contains(string(prom), series) {
			fail(fmt.Errorf("%s: missing series %s", os.Args[2], series))
		}
	}

	fmt.Printf("ok: %d spans, %d metric lines\n", spans, strings.Count(string(prom), "\n"))
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "checktrace: %v\n", err)
	os.Exit(1)
}

// Command ncdump prints the header of a file in the repository's
// netCDF-like or hdf5lite format — dimensions, variables, attributes,
// chunking, and compression — reading only the header bytes, like the
// real ncdump -h.
//
// Usage:
//
//	ncdump [-chunks] [-s] file.nc
//
// -s additionally prints the per-chunk zone-map statistics (min, max,
// element count, fill count) the writer records in the header — the
// numbers the pushdown query planner prunes with.
package main

import (
	"flag"
	"fmt"
	"os"

	"scidp/internal/hdf5lite"
	"scidp/internal/netcdf"
	"scidp/internal/scifmt"
)

func main() {
	chunks := flag.Bool("chunks", false, "also print the per-chunk index")
	stats := flag.Bool("s", false, "also print per-chunk zone-map statistics (implies -chunks)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ncdump [-chunks] [-s] <file>")
		os.Exit(2)
	}
	if *stats {
		*chunks = true
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "ncdump: %v\n", err)
		os.Exit(1)
	}
	r := netcdf.BytesReader(data)
	switch {
	case netcdf.Detect(r):
		dumpNetCDF(flag.Arg(0), r, *chunks, *stats)
	case hdf5lite.IsHDF5(r):
		dumpHDF5(flag.Arg(0), r, *chunks, *stats)
	default:
		fmt.Fprintf(os.Stderr, "ncdump: %s: not a recognized scientific format\n", flag.Arg(0))
		os.Exit(1)
	}
}

// ncStats renders one chunk's zone map, or a marker for legacy files
// written before stats existed.
func ncStats(min, max float64, count, fill int64) string {
	return fmt.Sprintf(" stats[min=%g max=%g count=%d fill=%d]", min, max, count, fill)
}

func dumpNetCDF(name string, r netcdf.ReaderAt, chunks, stats bool) {
	f, err := netcdf.Open(r)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ncdump: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("netcdf %s {\n", name)
	fmt.Println("dimensions:")
	for _, d := range f.Dims() {
		fmt.Printf("\t%s = %d ;\n", d.Name, d.Len)
	}
	fmt.Println("variables:")
	for _, v := range f.Vars() {
		fmt.Printf("\t%s %s(", v.Type, v.Name)
		for i, d := range v.Dims {
			if i > 0 {
				fmt.Print(", ")
			}
			fmt.Print(d.Name)
		}
		fmt.Println(") ;")
		for _, a := range v.Attrs {
			fmt.Printf("\t\t%s:%s = %s ;\n", v.Name, a.Name, attrValue(a))
		}
		if v.ChunkShape != nil {
			fmt.Printf("\t\t%s:_ChunkShape = %v ; _Deflate = %d ;\n", v.Name, v.ChunkShape, v.Deflate)
		}
		fmt.Printf("\t\t%s:_Storage = raw %d B, stored %d B (%d chunks)\n",
			v.Name, v.RawBytes(), v.StoredBytes(), len(v.Chunks))
		if chunks {
			for i, c := range v.Chunks {
				fmt.Printf("\t\t  chunk %d: index=%v offset=%d stored=%d raw=%d",
					i, c.Index, c.Offset, c.StoredSize, c.RawSize)
				if stats {
					if c.Stats != nil {
						fmt.Print(ncStats(c.Stats.Min, c.Stats.Max, c.Stats.Count, c.Stats.Fill))
					} else {
						fmt.Print(" stats[none]")
					}
				}
				fmt.Println()
			}
		}
	}
	fmt.Println("// global attributes:")
	for _, a := range f.GlobalAttrs() {
		fmt.Printf("\t\t:%s = %s ;\n", a.Name, attrValue(a))
	}
	fmt.Printf("}\n// header: %d bytes of %d\n", f.HeaderBytes, r.Size())
}

func attrValue(a netcdf.Attr) string {
	switch a.Kind {
	case netcdf.AttrString:
		return fmt.Sprintf("%q", a.Str)
	case netcdf.AttrFloat64:
		return fmt.Sprintf("%g", a.F64)
	case netcdf.AttrInt64:
		return fmt.Sprintf("%d", a.I64)
	}
	return "?"
}

func dumpHDF5(name string, r scifmt.ReaderAt, chunks, stats bool) {
	f, err := hdf5lite.Open(r)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ncdump: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("hdf5 %s {\n", name)
	var walk func(g *hdf5lite.Group, indent string)
	walk = func(g *hdf5lite.Group, indent string) {
		for k, v := range g.Attrs {
			fmt.Printf("%s:%s = %q ;\n", indent, k, v)
		}
		for _, d := range g.Datasets {
			fmt.Printf("%s%s %s%v chunkRows=%d deflate=%d (%d chunks, raw %d B, stored %d B)\n",
				indent, d.Type, d.Name, d.Shape, d.ChunkRows, d.Deflate, len(d.Chunks), d.RawBytes(), d.StoredBytes())
			if chunks {
				for i, c := range d.Chunks {
					fmt.Printf("%s  chunk %d: rows [%d,+%d) offset=%d stored=%d",
						indent, i, c.RowStart, c.Rows, c.Offset, c.StoredSize)
					if stats {
						if c.Stats != nil {
							fmt.Print(ncStats(c.Stats.Min, c.Stats.Max, c.Stats.Count, c.Stats.Fill))
						} else {
							fmt.Print(" stats[none]")
						}
					}
					fmt.Println()
				}
			}
		}
		for _, c := range g.Children {
			fmt.Printf("%sgroup %s {\n", indent, c.Name)
			walk(c, indent+"\t")
			fmt.Printf("%s}\n", indent)
		}
	}
	walk(f.Root(), "\t")
	fmt.Printf("}\n// header: %d bytes of %d\n", f.HeaderBytes, r.Size())
}

// Command ncgen generates synthetic NU-WRF output files in the
// repository's netCDF-like format — the data generator the benchmarks
// feed their simulated PFS with, usable standalone to produce files on
// the local file system.
//
// Usage:
//
//	ncgen [-out dir] [-timestamps n] [-levels n] [-lat n] [-lon n] [-vars n] [-deflate 0..9]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"scidp/internal/workloads"
)

func main() {
	out := flag.String("out", ".", "output directory")
	timestamps := flag.Int("timestamps", 4, "number of output files (one per timestamp)")
	levels := flag.Int("levels", 10, "vertical levels per variable")
	lat := flag.Int("lat", 40, "latitude cells")
	lon := flag.Int("lon", 40, "longitude cells")
	vars := flag.Int("vars", workloads.NUWRFVars, "variables per file")
	deflate := flag.Int("deflate", 1, "DEFLATE level (0 disables compression)")
	seed := flag.Int64("seed", 0, "field perturbation seed")
	flag.Parse()

	spec := workloads.NUWRFSpec{
		Timestamps: *timestamps,
		Levels:     *levels, Lat: *lat, Lon: *lon,
		Vars: *vars, Deflate: *deflate, Seed: *seed,
		Dir: "/",
	}
	blobs, ds, err := workloads.GenerateBlobs(spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ncgen: %v\n", err)
		os.Exit(1)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "ncgen: %v\n", err)
		os.Exit(1)
	}
	for _, pfsPath := range ds.Files {
		name := filepath.Base(pfsPath)
		dst := filepath.Join(*out, name)
		if err := os.WriteFile(dst, blobs[pfsPath], 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "ncgen: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d bytes)\n", dst, len(blobs[pfsPath]))
	}
	fmt.Printf("dataset: %d files, %d vars, raw %d B/var, stored %d B/var (%.2fx compression)\n",
		len(ds.Files), spec.Vars, ds.VarRawBytes, ds.VarStoredBytes, ds.CompressionRatio())
}

// Command scidp-bench regenerates the SciDP paper's evaluation tables and
// figures on the simulated testbed.
//
// Usage:
//
//	scidp-bench [-exp all|fig2|table1|table2|fig5|table3|fig6|fig7|fig8|fig9|faults|parallel|workflow|ablations|ioengine|scale|query|mt|cache]
//	            [-quick] [-trace out.json] [-metrics out.prom] [-json out.json]
//	            [-cpuprofile cpu.pprof] [-memprofile mem.pprof] [-scale-floor N]
//	            [-query-floor X] [-mt-floor X] [-cache-floor X] [-explain]
//
// -quick runs a reduced geometry and smaller sweeps (seconds instead of
// minutes). Output is one aligned text table per experiment, with paper
// expectations in the notes. -trace writes a Chrome trace-event JSON of
// every simulated run (open in Perfetto / chrome://tracing); -metrics
// writes a Prometheus-style text dump of the component metrics. Either
// flag attaches the observability registry; without them runs are
// instrumentation-free. -json writes the selected experiment's
// machine-readable result (the BENCH_faults.json / BENCH_parallel.json /
// BENCH_scale.json artifacts: goodput/JCT sweeps, digests, recovery
// counters, worker sweep wall-clocks, events/sec sweeps).
//
// -explain attaches the registry like -trace/-metrics and, after the
// experiments finish, runs the post-run performance analysis
// (internal/obs/analyze) over everything recorded: per-job critical
// paths, time-attribution buckets, bottleneck resources, stragglers.
// The text report appends to stdout and the JSON summary embeds into
// any -json artifact ({"experiment": ..., "analysis": ...}).
//
// -cpuprofile and -memprofile write runtime/pprof profiles of the bench
// process itself (inspect with `go tool pprof`) — the intended workflow
// for chasing simulator hot spots. -scale-floor makes -exp scale exit
// non-zero when any sweep point falls below the given events/sec — the
// CI guard against kernel throughput regressions. -query-floor makes
// -exp query exit non-zero when any query's skip ratio (oracle chunks
// decoded or bytes inflated over pushdown's) falls below X — the CI
// guard against pushdown pruning regressions. -mt-floor makes -exp mt
// exit non-zero when the fair-share + backfill scheduler's interactive
// small-job p99 speedup over the strict-FIFO baseline (at the highest
// load point) falls below X — the CI guard against scheduler
// regressions in the multi-tenant service. -cache-floor makes -exp
// cache exit non-zero when the tiered cooperative cache's best JCT
// speedup over the cache-off baseline falls below X — the CI guard
// against cache-tier regressions (the cache experiment always fails on
// a non-deterministic point, a tiered point whose job outputs differ
// from the cache-off run's, or a zero cross-job hit rate).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"scidp/internal/bench"
	"scidp/internal/ioengine"
	"scidp/internal/obs"
	"scidp/internal/obs/analyze"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (all, fig2, table1, table2, fig5, table3, fig6, fig7, fig8, fig9, faults, parallel, workflow, ablations, ioengine, scale, query, mt, cache)")
	quick := flag.Bool("quick", false, "reduced geometry and sweep sizes")
	markdown := flag.Bool("markdown", false, "emit GitHub-flavored markdown instead of aligned text")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON of the simulated runs to this file")
	metricsPath := flag.String("metrics", "", "write a Prometheus-style metrics dump to this file")
	jsonPath := flag.String("json", "", "write the faults experiment's machine-readable result JSON to this file")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile (taken after the run) to this file")
	scaleFloor := flag.Float64("scale-floor", 0, "with -exp scale: fail unless every sweep point sustains this many events/sec")
	queryFloor := flag.Float64("query-floor", 0, "with -exp query: fail unless every query prunes at least this ratio of chunks and bytes vs the oracle")
	mtFloor := flag.Float64("mt-floor", 0, "with -exp mt: fail unless fair share + backfill speed up interactive p99 over FIFO by at least this factor at the highest load")
	cacheFloor := flag.Float64("cache-floor", 0, "with -exp cache: fail unless the best tiered sweep point speeds up the overlapping-job JCT over the cache-off baseline by at least this factor")
	flag.BoolVar(&explainMode, "explain", false, "attach the observability registry, print the post-run performance analysis, and embed its JSON into -json output")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scidp-bench: %s: %v\n", *cpuProfile, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "scidp-bench: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "scidp-bench: %s: %v\n", *memProfile, err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC() // settle allocations so the profile shows live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "scidp-bench: memprofile: %v\n", err)
				os.Exit(1)
			}
		}()
	}

	if *tracePath != "" || *metricsPath != "" || explainMode {
		bench.Obs = obs.New()
		ioengine.RegisterObs(bench.Obs)
	}

	scale := bench.DefaultScale()
	fig5Sizes := []int{96, 192, 384, 768}
	fig6Readers := []int{1, 2, 4, 8, 16, 32, 64}
	fig6Steps := 64
	fig7Size := 384
	fig8Size := 384
	fig8Nodes := []int{4, 8, 16}
	fig9Sizes := []int{96, 192, 384, 768}
	ablSize := 96
	wfSize, wfCompute := 192, 120.0
	faultsSize := 24
	faultsRates := []float64{0.05, 0.1, 0.2}
	parallelSize, parallelReps := 24, 3
	scaleNodes := []int{8, 32, 128}
	scaleTasksPerNode, scaleMicroFlows := 200, 10000
	if *quick {
		scale = bench.QuickScale()
		fig5Sizes = []int{8, 16}
		fig6Readers = []int{1, 4, 16, 64}
		fig6Steps = 32
		fig7Size = 16
		fig8Size = 64
		fig9Sizes = []int{8, 16}
		ablSize = 8
		wfSize, wfCompute = 8, 30.0
		faultsSize = 16
		faultsRates = []float64{0.1}
		parallelSize, parallelReps = 16, 2
		scaleNodes = []int{4, 16}
		scaleTasksPerNode, scaleMicroFlows = 60, 2000
	}

	emit := func(t *bench.Table, err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "scidp-bench: %v\n", err)
			os.Exit(1)
		}
		if *markdown {
			fmt.Println(t.Markdown())
			return
		}
		fmt.Println(t.String())
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }
	ran := false

	if want("table1") {
		emit(bench.Table1(), nil)
		ran = true
	}
	if want("table2") {
		emit(bench.Table2(), nil)
		ran = true
	}
	if want("fig2") {
		emit(bench.Fig2())
		ran = true
	}
	if want("fig5") || want("table3") {
		r, err := bench.RunFig5(scale, fig5Sizes)
		if err != nil {
			emit(nil, err)
		}
		if want("fig5") {
			emit(bench.Fig5Table(r), nil)
		}
		if want("table3") {
			emit(bench.Table3(r), nil)
		}
		ran = true
	}
	if want("fig6") {
		emit(bench.Fig6(scale, fig6Steps, fig6Readers))
		ran = true
	}
	if want("fig7") {
		emit(bench.Fig7(scale, fig7Size))
		ran = true
	}
	if want("fig8") {
		emit(bench.Fig8(scale, fig8Size, fig8Nodes))
		emit(bench.Fig8ScaleUp(scale, fig8Size, []int{4, 8, 16}))
		ran = true
	}
	if want("fig9") {
		emit(bench.Fig9(scale, fig9Sizes))
		ran = true
	}
	if want("faults") {
		t, fr, err := bench.RunFaults(scale, faultsSize, faultsRates, bench.FaultsSeed)
		if err != nil {
			emit(nil, err)
		}
		emit(t, nil)
		if *jsonPath != "" {
			writeJSON(*jsonPath, fr)
		}
		ran = true
	}
	if want("parallel") {
		t, pr, err := bench.RunParallel(scale, parallelSize, parallelReps)
		if err != nil {
			emit(nil, err)
		}
		emit(t, nil)
		if *jsonPath != "" {
			writeJSON(*jsonPath, pr)
		}
		ran = true
	}
	if want("workflow") {
		emit(bench.Workflow(scale, wfSize, wfCompute))
		ran = true
	}
	if want("ablations") {
		emit(bench.AblationBlockGranularity(scale, ablSize))
		emit(bench.AblationVariableSubsetting(scale, ablSize))
		emit(bench.AblationWholeBlockRead(scale))
		emit(bench.AblationOverlap(scale, ablSize))
		ran = true
	}
	if want("ioengine") {
		emit(bench.AblationIOEngine(scale, ablSize))
		ran = true
	}
	if want("scale") {
		t, sr, err := bench.RunScale(scaleNodes, scaleTasksPerNode, scaleMicroFlows)
		if err != nil {
			emit(nil, err)
		}
		emit(t, nil)
		if *jsonPath != "" {
			writeJSON(*jsonPath, sr)
		}
		if *scaleFloor > 0 {
			if minEv := sr.MinEventsPerSec(); minEv < *scaleFloor {
				fmt.Fprintf(os.Stderr, "scidp-bench: scale floor violated: slowest sweep point ran %.0f events/sec, floor %.0f\n", minEv, *scaleFloor)
				os.Exit(1)
			}
		}
		ran = true
	}
	if want("query") {
		t, qr, err := bench.RunQuery(scale)
		if err != nil {
			emit(nil, err)
		}
		emit(t, nil)
		if *jsonPath != "" {
			writeJSON(*jsonPath, qr)
		}
		if *queryFloor > 0 {
			if minSkip := qr.MinSkipRatio(); minSkip < *queryFloor {
				fmt.Fprintf(os.Stderr, "scidp-bench: query floor violated: weakest query pruned %.2fx, floor %.2fx\n", minSkip, *queryFloor)
				os.Exit(1)
			}
		}
		ran = true
	}
	if want("mt") {
		mtMults := []float64{0.5, 1, 2, 3}
		mtHorizon := 120.0
		if *quick {
			mtHorizon = 60.0
		}
		t, mr, err := bench.RunMT(mtMults, mtHorizon)
		if err != nil {
			emit(nil, err)
		}
		emit(t, nil)
		if *jsonPath != "" {
			writeJSON(*jsonPath, mr)
		}
		for _, run := range mr.Runs {
			if !run.Deterministic {
				fmt.Fprintf(os.Stderr, "scidp-bench: mt load %gx: same-seed repeat diverged\n", run.LoadMult)
				os.Exit(1)
			}
			if !run.WithinQuota {
				fmt.Fprintf(os.Stderr, "scidp-bench: mt load %gx: a tenant exceeded its quota\n", run.LoadMult)
				os.Exit(1)
			}
		}
		if *mtFloor > 0 {
			if sp := mr.MinSpeedup(); sp < *mtFloor {
				fmt.Fprintf(os.Stderr, "scidp-bench: mt floor violated: fair share sped up interactive p99 only %.2fx over FIFO, floor %.2fx\n", sp, *mtFloor)
				os.Exit(1)
			}
		}
		ran = true
	}
	if want("cache") {
		cacheSize := 48
		cacheHorizon := 120.0
		if *quick {
			cacheSize = 8
			cacheHorizon = 60.0
		}
		t, cr, err := bench.RunCache(scale, cacheSize, cacheHorizon)
		if err != nil {
			emit(nil, err)
		}
		emit(t, nil)
		if *jsonPath != "" {
			writeJSON(*jsonPath, cr)
		}
		// The tier's correctness contract is unconditional: every point
		// must be worker-count deterministic, every tiered point must
		// reproduce the cache-off job outputs byte for byte and serve at
		// least one cross-job hit.
		for _, run := range cr.Runs {
			if !run.Deterministic {
				fmt.Fprintf(os.Stderr, "scidp-bench: cache %s/%dB: workers=1 and workers=4 runs diverged\n", run.Policy, run.CapacityBytes)
				os.Exit(1)
			}
			if !run.OutputsMatchBaseline {
				fmt.Fprintf(os.Stderr, "scidp-bench: cache %s/%dB: job outputs differ from the cache-off baseline\n", run.Policy, run.CapacityBytes)
				os.Exit(1)
			}
			// A tiered point with no hits AND no eviction churn means the
			// tier never shared anything — a wiring bug. A churning point
			// may honestly hit zero (LRU under a sequential scan).
			if run.Policy != "off" && run.CrossJobHitRate <= 0 && run.Evictions == 0 {
				fmt.Fprintf(os.Stderr, "scidp-bench: cache %s/%dB: zero cross-job hit rate without churn\n", run.Policy, run.CapacityBytes)
				os.Exit(1)
			}
		}
		if cr.MT != nil && !cr.MT.Deterministic {
			fmt.Fprintf(os.Stderr, "scidp-bench: cache mt arm: same-seed tiered repeat diverged\n")
			os.Exit(1)
		}
		if *cacheFloor > 0 {
			if sp := cr.BestSpeedup(); sp < *cacheFloor {
				fmt.Fprintf(os.Stderr, "scidp-bench: cache floor violated: best tiered JCT speedup %.2fx over cache-off, floor %.2fx\n", sp, *cacheFloor)
				os.Exit(1)
			}
		}
		ran = true
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "scidp-bench: unknown experiment %q (want one of all, fig2, table1, table2, fig5, table3, fig6, fig7, fig8, fig9, faults, parallel, workflow, ablations, ioengine, scale, query, mt, cache)\n", *exp)
		os.Exit(2)
	}

	if explainMode {
		fmt.Println("== post-run performance analysis ==")
		if err := analyze.Analyze(bench.Obs).WriteText(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "scidp-bench: analysis: %v\n", err)
			os.Exit(1)
		}
	}
	if *tracePath != "" {
		writeExport(*tracePath, bench.Obs.WriteChromeTrace)
	}
	if *metricsPath != "" {
		writeExport(*metricsPath, bench.Obs.WritePrometheus)
	}
}

// explainMode is the -explain flag: analyze the attached registry after
// the experiments and embed the analysis in any -json artifact. Runs
// that attach their own private registries (the faults sweep's
// per-run determinism digests) analyze as empty here; the global
// registry still covers every run routed through bench.Obs.
var explainMode bool

// writeJSON records an experiment's machine-readable result. With
// -explain the artifact is wrapped as {"experiment": ..., "analysis":
// ...} so downstream tooling gets the attribution summary alongside the
// sweep; without it the schema is unchanged.
func writeJSON(path string, v any) {
	if explainMode {
		v = map[string]any{"experiment": v, "analysis": analyze.Analyze(bench.Obs)}
	}
	data, err := json.MarshalIndent(v, "", "  ")
	if err == nil {
		err = os.WriteFile(path, append(data, '\n'), 0o644)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "scidp-bench: %s: %v\n", path, err)
		os.Exit(1)
	}
}

// writeExport streams one exporter into path.
func writeExport(path string, write func(w io.Writer) error) {
	f, err := os.Create(path)
	if err == nil {
		err = write(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "scidp-bench: %s: %v\n", path, err)
		os.Exit(1)
	}
}

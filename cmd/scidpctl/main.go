// Command scidpctl demonstrates SciDP's control path end to end on a
// simulated testbed: it generates (or accepts) a NU-WRF dataset, installs
// it on the simulated PFS, runs the File Explorer and Data Mapper, and
// prints the virtual HDFS namespace with every dummy block's PFS mapping —
// the Virtual Mapping Table a NameNode would hold.
//
// Usage:
//
//	scidpctl [-timestamps n] [-vars QR,VAR01] [-rows n] [-blocksize n] [-local dir] [-v]
//
// With -local, files are read from a local directory (produced by ncgen)
// instead of being generated. -v attaches the observability registry and
// appends a per-phase timing table plus the component metrics the run
// produced (MDS/NameNode op counts, per-OST traffic, ...).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"scidp/internal/core"
	"scidp/internal/hdfs"
	"scidp/internal/obs"
	"scidp/internal/sim"
	"scidp/internal/solutions"
	"scidp/internal/workloads"
)

func main() {
	timestamps := flag.Int("timestamps", 2, "generated timestamps (ignored with -local)")
	varsFlag := flag.String("vars", "", "comma-separated variable subset (empty = all)")
	rows := flag.Int("rows", 0, "rows per dummy block (0 = chunk-aligned)")
	blocksize := flag.Int64("blocksize", 0, "dummy-block size for flat files in bytes (0 = HDFS block size)")
	local := flag.String("local", "", "load files from this directory instead of generating")
	verbose := flag.Bool("v", false, "print per-phase timings and component metrics after the mapping")
	flag.Parse()

	cfg := solutions.DefaultEnvConfig(1, 1)
	if *verbose {
		cfg.Obs = obs.New()
		cfg.Obs.SetProcess("scidpctl")
	}
	env := solutions.NewEnv(cfg)
	dir := "/nuwrf"
	if *local != "" {
		entries, err := os.ReadDir(*local)
		if err != nil {
			fail(err)
		}
		n := 0
		for _, e := range entries {
			if e.IsDir() {
				continue
			}
			data, err := os.ReadFile(filepath.Join(*local, e.Name()))
			if err != nil {
				fail(err)
			}
			env.PFS.Put(dir+"/"+e.Name(), data)
			n++
		}
		if n == 0 {
			fail(fmt.Errorf("no files in %s", *local))
		}
	} else {
		spec := workloads.NUWRFSpec{Timestamps: *timestamps, Levels: 10, Lat: 40, Lon: 40, Vars: 5, Dir: dir}
		if _, err := workloads.Generate(env.PFS, spec); err != nil {
			fail(err)
		}
	}

	opts := core.MapOptions{RowsPerBlock: *rows, FlatBlockSize: *blocksize}
	if *varsFlag != "" {
		opts.Vars = strings.Split(*varsFlag, ",")
	}

	var mapping *core.Mapping
	var mapErr error
	var elapsed float64
	env.K.Go("scidpctl", func(p *sim.Proc) {
		m := core.NewMapper(env.HDFS, env.Registry, "/scidp")
		sp := cfg.Obs.StartSpan("map:"+dir, "ctl", nil)
		p.SetSpan(sp)
		start := p.Now()
		mapping, mapErr = m.MapPath(p, env.Mount(env.BD.Node(0)), dir, opts)
		elapsed = p.Now() - start
		p.SetSpan(nil)
		sp.End()
	})
	env.K.Run()
	env.ExportSimMetrics()
	if mapErr != nil {
		fail(mapErr)
	}

	fmt.Printf("mapped %s -> %s in %.3f virtual seconds\n\n", dir, mapping.Root, elapsed)
	for _, mf := range mapping.Files {
		if mf.Flat != nil {
			fmt.Printf("%s  [flat]\n", mf.HDFSPath)
			printBlocks(mf.Flat)
			continue
		}
		fmt.Printf("%s  [%s]\n", mf.HDFSPath, mf.Format)
		for _, v := range mf.Vars {
			fmt.Printf("  %s\n", v.HDFSPath)
			printBlocks(v.INode)
		}
	}
	fmt.Printf("\nvirtual files: %d, HDFS bytes stored: %d (dummy blocks hold no data)\n",
		len(mapping.VirtualPaths()), env.HDFS.TotalUsed())

	if *verbose {
		fmt.Printf("\n== phases (virtual seconds) ==\n")
		fmt.Printf("%-24s %8s %12s\n", "phase", "count", "seconds")
		for _, st := range cfg.Obs.SpanRollup() {
			fmt.Printf("%-24s %8d %12.6f\n", st.Name, st.Count, st.Seconds)
		}
		fmt.Printf("\n== component metrics ==\n")
		if err := cfg.Obs.WritePrometheus(os.Stdout); err != nil {
			fail(err)
		}
	}
}

func printBlocks(n *hdfs.INode) {
	for i, b := range n.Blocks {
		switch src := b.Source.(type) {
		case *core.SlabSource:
			fmt.Printf("    block %d: %d B -> %s %s slab start=%v count=%v\n",
				i, b.Size, src.PFSPath, src.VarPath, src.Start, src.Count)
		case *core.FlatSource:
			fmt.Printf("    block %d: %d B -> %s bytes [%d, +%d)\n",
				i, b.Size, src.PFSPath, src.Offset, src.Length)
		}
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "scidpctl: %v\n", err)
	os.Exit(1)
}

// Command scidpctl demonstrates SciDP's control path end to end on a
// simulated testbed: it generates (or accepts) a NU-WRF dataset, installs
// it on the simulated PFS, runs the File Explorer and Data Mapper, and
// prints the virtual HDFS namespace with every dummy block's PFS mapping —
// the Virtual Mapping Table a NameNode would hold.
//
// Usage:
//
//	scidpctl [-timestamps n] [-vars QR,VAR01] [-rows n] [-blocksize n] [-local dir] [-v]
//	scidpctl -chaos plan.json [-timestamps n] [-v]
//	scidpctl analyze [-chaos plan.json] [-timestamps n] [-workers n] [-cache bytes] [-json file] [-v]
//
// With -local, files are read from a local directory (produced by ncgen)
// instead of being generated. -v attaches the observability registry and
// appends a per-phase timing table plus the component metrics the run
// produced (MDS/NameNode op counts, per-OST traffic, ...).
//
// With -chaos, scidpctl instead runs the full SciDP processing pipeline
// on a recovery-enabled testbed (replication, task retry, speculation,
// PFS read retry) under the fault plan in the given JSON file, and
// reports the job outcome together with the injected-fault and recovery
// counters. The plan format is internal/chaos's Plan: a PRNG seed plus
// rules ({"kind": "dn-crash", "at": 30, "target": 1}, ...).
//
// The analyze subcommand runs the same pipeline (optionally under a
// chaos plan, optionally on a ComputePool with -workers) and then runs
// the post-run performance analysis (internal/obs/analyze) over the
// recorded span tree and metrics: per-job critical path, per-phase time
// attribution (sched/io/compute/shuffle/recovery), bottleneck resources,
// and straggler detection. -cache attaches a cooperative cache tier
// (cost-aware eviction, that many bytes per node) and adds a per-level
// cache_tier section — where reads were served: node-local buffer,
// peer buffer, or OST — to the report and, with -v, a "== cache
// tier ==" table. -json writes the machine-readable report;
// "-" replaces the text report with pure JSON on stdout (pipe into jq).
// The report is byte-identical across same-seed runs at any worker
// count.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"scidp/internal/bench"
	"scidp/internal/chaos"
	"scidp/internal/core"
	"scidp/internal/hdfs"
	"scidp/internal/ioengine"
	"scidp/internal/obs"
	"scidp/internal/sim"
	"scidp/internal/solutions"
	"scidp/internal/workloads"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "analyze" {
		runAnalyze(os.Args[2:])
		return
	}
	timestamps := flag.Int("timestamps", 2, "generated timestamps (ignored with -local)")
	varsFlag := flag.String("vars", "", "comma-separated variable subset (empty = all)")
	rows := flag.Int("rows", 0, "rows per dummy block (0 = chunk-aligned)")
	blocksize := flag.Int64("blocksize", 0, "dummy-block size for flat files in bytes (0 = HDFS block size)")
	local := flag.String("local", "", "load files from this directory instead of generating")
	chaosPath := flag.String("chaos", "", "run the SciDP pipeline under this fault plan (JSON) instead of printing the mapping")
	verbose := flag.Bool("v", false, "print per-phase timings and component metrics after the mapping")
	flag.Parse()

	if *chaosPath != "" {
		runChaos(*chaosPath, *timestamps, *verbose)
		return
	}

	cfg := solutions.DefaultEnvConfig(1, 1)
	if *verbose {
		cfg.Obs = obs.New()
		cfg.Obs.SetProcess("scidpctl")
	}
	env := solutions.NewEnv(cfg)
	dir := "/nuwrf"
	if *local != "" {
		entries, err := os.ReadDir(*local)
		if err != nil {
			fail(err)
		}
		n := 0
		for _, e := range entries {
			if e.IsDir() {
				continue
			}
			data, err := os.ReadFile(filepath.Join(*local, e.Name()))
			if err != nil {
				fail(err)
			}
			env.PFS.Put(dir+"/"+e.Name(), data)
			n++
		}
		if n == 0 {
			fail(fmt.Errorf("no files in %s", *local))
		}
	} else {
		spec := workloads.NUWRFSpec{Timestamps: *timestamps, Levels: 10, Lat: 40, Lon: 40, Vars: 5, Dir: dir}
		if _, err := workloads.Generate(env.PFS, spec); err != nil {
			fail(err)
		}
	}

	opts := core.MapOptions{RowsPerBlock: *rows, FlatBlockSize: *blocksize}
	if *varsFlag != "" {
		opts.Vars = strings.Split(*varsFlag, ",")
	}

	var mapping *core.Mapping
	var mapErr error
	var elapsed float64
	env.K.Go("scidpctl", func(p *sim.Proc) {
		m := core.NewMapper(env.HDFS, env.Registry, "/scidp")
		sp := cfg.Obs.StartSpan("map:"+dir, "ctl", nil)
		p.SetSpan(sp)
		start := p.Now()
		mapping, mapErr = m.MapPath(p, env.Mount(env.BD.Node(0)), dir, opts)
		elapsed = p.Now() - start
		p.SetSpan(nil)
		sp.End()
	})
	env.K.Run()
	env.ExportSimMetrics()
	if mapErr != nil {
		fail(mapErr)
	}

	fmt.Printf("mapped %s -> %s in %.3f virtual seconds\n\n", dir, mapping.Root, elapsed)
	for _, mf := range mapping.Files {
		if mf.Flat != nil {
			fmt.Printf("%s  [flat]\n", mf.HDFSPath)
			printBlocks(mf.Flat)
			continue
		}
		fmt.Printf("%s  [%s]\n", mf.HDFSPath, mf.Format)
		for _, v := range mf.Vars {
			fmt.Printf("  %s\n", v.HDFSPath)
			printBlocks(v.INode)
		}
	}
	fmt.Printf("\nvirtual files: %d, HDFS bytes stored: %d (dummy blocks hold no data)\n",
		len(mapping.VirtualPaths()), env.HDFS.TotalUsed())

	if *verbose {
		fmt.Printf("\n== phases (virtual seconds) ==\n")
		fmt.Printf("%-24s %8s %12s\n", "phase", "count", "seconds")
		for _, st := range cfg.Obs.SpanRollup() {
			fmt.Printf("%-24s %8d %12.6f\n", st.Name, st.Count, st.Seconds)
		}
		fmt.Printf("\n== component metrics ==\n")
		if err := cfg.Obs.WritePrometheus(os.Stdout); err != nil {
			fail(err)
		}
	}
}

// runAnalyze executes the canonical pipeline (optionally under a chaos
// plan) and prints the post-run performance analysis.
func runAnalyze(args []string) {
	fs := flag.NewFlagSet("scidpctl analyze", flag.ExitOnError)
	timestamps := fs.Int("timestamps", 4, "generated timestamps")
	chaosPath := fs.String("chaos", "", "fault plan (JSON) to run the pipeline under")
	workers := fs.Int("workers", 0, "ComputePool data-plane workers (0 = inline)")
	cacheBytes := fs.Int64("cache", 0, "attach a cooperative cache tier with this many bytes per node (0 = no tier)")
	jsonPath := fs.String("json", "", "write the analysis as JSON to this file (\"-\" = pure JSON on stdout, no text report)")
	verbose := fs.Bool("v", false, "append the full component metrics dump")
	if err := fs.Parse(args); err != nil {
		fail(err)
	}
	var plan *chaos.Plan
	if *chaosPath != "" {
		data, err := os.ReadFile(*chaosPath)
		if err != nil {
			fail(err)
		}
		if plan, err = chaos.ParsePlan(data); err != nil {
			fail(fmt.Errorf("%s: %w", *chaosPath, err))
		}
	}
	if *timestamps < 1 {
		*timestamps = 1
	}

	tier := ioengine.TierConfig{NodeBytes: *cacheBytes, Policy: ioengine.PolicyCost}
	rep, solRep, reg, err := bench.AnalyzeRunTier(bench.QuickScale(), *timestamps, plan, *workers, "scidpctl-analyze", tier)
	if err != nil {
		fail(err)
	}
	// -json - takes over stdout: emit pure JSON so the output pipes
	// straight into jq or a dashboard without the text report in front.
	if *jsonPath != "-" {
		if plan != nil {
			fmt.Printf("plan %s: seed %d, %d rule(s)\n", *chaosPath, plan.Seed, len(plan.Rules))
		}
		fmt.Printf("%s\n\n", solRep.Summary())
		if err := rep.WriteText(os.Stdout); err != nil {
			fail(err)
		}
	}
	if *jsonPath != "" {
		data, err := rep.JSON()
		if err != nil {
			fail(err)
		}
		data = append(data, '\n')
		if *jsonPath == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fail(err)
		}
	}
	if *verbose {
		printCacheTier(reg)
		fmt.Printf("\n== component metrics ==\n")
		if err := reg.WritePrometheus(os.Stdout); err != nil {
			fail(err)
		}
	}
}

// printCacheTier prints the per-level cooperative-cache breakdown when
// the registry holds ioengine tier series — i.e. a cache tier was
// attached and arbitrated at least one read. Silent otherwise.
func printCacheTier(reg *obs.Registry) {
	type lvl struct{ reads, bytes, ratio float64 }
	levels := map[string]*lvl{}
	get := func(name string) *lvl {
		e := levels[name]
		if e == nil {
			e = &lvl{}
			levels[name] = e
		}
		return e
	}
	total := 0.0
	for _, s := range reg.Snapshot() {
		switch s.Name {
		case "ioengine/tier_reads_total":
			get(s.Label("level")).reads = s.Value
			total += s.Value
		case "ioengine/tier_bytes_total":
			get(s.Label("level")).bytes = s.Value
		case "ioengine/cache_hit_ratio":
			get(s.Label("level")).ratio = s.Value
		}
	}
	if total == 0 {
		return
	}
	fmt.Printf("\n== cache tier ==\n")
	fmt.Printf("%-6s %10s %14s %8s\n", "level", "reads", "bytes", "ratio")
	for _, name := range []string{"local", "peer", "ost"} {
		if e := levels[name]; e != nil {
			fmt.Printf("%-6s %10.0f %14.0f %7.1f%%\n", name, e.reads, e.bytes, e.ratio*100)
		}
	}
}

// runChaos executes the SciDP processing pipeline under a fault plan on
// the recovery-enabled faults testbed and prints the outcome plus the
// chaos/recovery counters.
func runChaos(path string, timestamps int, verbose bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		fail(err)
	}
	plan, err := chaos.ParsePlan(data)
	if err != nil {
		fail(fmt.Errorf("%s: %w", path, err))
	}
	if timestamps < 1 {
		timestamps = 1
	}
	s := bench.QuickScale()
	cfg := bench.FaultsEnvConfig(s)
	reg := obs.New()
	reg.SetProcess("scidpctl-chaos")
	cfg.Obs = reg
	cfg.Chaos = plan
	env := solutions.NewEnv(cfg)
	ds, err := workloads.Generate(env.PFS, s.Spec(timestamps))
	if err != nil {
		fail(err)
	}
	wl := &solutions.Workload{Dataset: ds, Var: "QR"}
	var rep *solutions.Report
	var runErr error
	env.K.Go("driver", func(p *sim.Proc) {
		rep, runErr = solutions.RunSciDP(p, env, wl)
	})
	env.K.Run()
	env.ExportSimMetrics()
	fmt.Printf("plan %s: seed %d, %d rule(s); %d timestamps on 4 nodes x 2 slots\n",
		path, plan.Seed, len(plan.Rules), timestamps)
	if runErr != nil {
		fail(fmt.Errorf("job failed under the plan: %w", runErr))
	}
	fmt.Println(rep.Summary())

	fmt.Printf("\n== chaos & recovery counters ==\n")
	sum := func(name, key string, vals ...string) float64 {
		if len(vals) == 0 {
			return reg.Counter(name).Value()
		}
		var s float64
		for _, v := range vals {
			s += reg.Counter(name, obs.L(key, v)).Value()
		}
		return s
	}
	kinds := []string{
		chaos.KindOSTDegrade, chaos.KindOSTOutage, chaos.KindDNCrash,
		chaos.KindMDSLatency, chaos.KindNNLatency,
		chaos.KindFlakyReads, chaos.KindStraggler, chaos.KindTaskFail,
	}
	rows := []struct {
		label string
		value float64
	}{
		{"faults injected", sum("chaos/faults_injected_total", "kind", kinds...)},
		{"replica failovers", sum("hdfs/replica_failovers_total", "")},
		{"PFS read retries", sum("core/read_retries_total", "kind", "flaky-read", "corrupt", "ost-down", "no-live-replica")},
		{"PFS read-arounds", sum("core/read_around_total", "")},
		{"task failures", sum("mr/task_failures_total", "phase", "map", "reduce")},
		{"speculative launched", sum("mr/speculative_launched_total", "phase", "map")},
		{"speculative wins", sum("mr/speculative_wins_total", "phase", "map")},
		{"speculative losses", sum("mr/speculative_losses_total", "phase", "map")},
	}
	for _, r := range rows {
		fmt.Printf("%-22s %8.0f\n", r.label, r.value)
	}
	if verbose {
		fmt.Printf("\n== component metrics ==\n")
		if err := reg.WritePrometheus(os.Stdout); err != nil {
			fail(err)
		}
	}
}

func printBlocks(n *hdfs.INode) {
	for i, b := range n.Blocks {
		switch src := b.Source.(type) {
		case *core.SlabSource:
			fmt.Printf("    block %d: %d B -> %s %s slab start=%v count=%v\n",
				i, b.Size, src.PFSPath, src.VarPath, src.Start, src.Count)
		case *core.FlatSource:
			fmt.Printf("    block %d: %d B -> %s bytes [%d, +%d)\n",
				i, b.Size, src.PFSPath, src.Offset, src.Length)
		}
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "scidpctl: %v\n", err)
	os.Exit(1)
}

// Command scidpd is the multi-tenant SciDP job service over the
// simulated cluster: tenants submit grep/sort/write jobs, admission
// control enforces per-tenant quotas, and a two-level weighted
// fair-share scheduler with preemption and backfill divides the
// cluster's task slots.
//
// Usage:
//
//	scidpd -replay trace.json [-fifo] [-no-backfill] [-workers N]
//	       [-nodes N] [-slots N] [-json out.json] [-metrics out.prom]
//	       [-trace out.json] [-p99-floor SECONDS] [-goodput-floor JOBS/KS]
//	scidpd -http ADDR [same cluster flags]
//	scidpd -gen out.json [-seed N] [-horizon SECONDS]
//
// -replay runs a recorded arrival trace headlessly on the deterministic
// virtual-time kernel and prints the run summary JSON to stdout: same
// trace + same flags ⇒ byte-identical schedule, outputs, and exports at
// any pooled -workers count (-1 inline, 1, 4, 64 — all the same bytes;
// 0 detaches the data plane, a different but equally deterministic
// event-schedule shape). -fifo swaps the fair-share scheduler for the
// strict-FIFO baseline (head-of-line blocking, no preemption, no
// backfill) — the comparison arm for the mt experiment. -p99-floor and
// -goodput-floor turn the summary into a CI guard: exit non-zero when
// overall p99 latency exceeds the floor or goodput falls below it.
//
// -http serves the control API (POST /jobs, GET /jobs, GET /jobs/{id},
// GET /tenants, GET /metrics) from real goroutines bridged onto the
// kernel: each request applies its mutations and runs the simulation to
// quiescence, so responses reflect the submitted job's completed
// future.
//
// -gen synthesizes a trace with the load generator's default tenant mix
// (Poisson arrivals, one diurnal class) and writes it where -replay can
// read it back.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"

	"scidp/internal/obs"
	"scidp/internal/solutions"
	"scidp/internal/tenant"
	"scidp/internal/tenant/loadgen"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "scidpd: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	replayPath := flag.String("replay", "", "replay this arrival trace headlessly and print the summary JSON")
	httpAddr := flag.String("http", "", "serve the control API on this address")
	genPath := flag.String("gen", "", "synthesize a default-mix trace to this file and exit")
	seed := flag.Int64("seed", 1, "with -gen: load generator seed")
	horizon := flag.Float64("horizon", 120, "with -gen: arrival window in virtual seconds")
	nodes := flag.Int("nodes", 4, "cluster DataNodes")
	slots := flag.Int("slots", 2, "task slots per node")
	workers := flag.Int("workers", 1, "data-plane ComputePool workers (-1 = inline pool, 0 = no pool; all pooled counts are byte-identical)")
	fifo := flag.Bool("fifo", false, "strict-FIFO baseline scheduler instead of fair share")
	noBackfill := flag.Bool("no-backfill", false, "disable backfill in the fair-share scheduler")
	jsonPath := flag.String("json", "", "also write the replay summary JSON to this file")
	metricsPath := flag.String("metrics", "", "write a Prometheus-style metrics dump to this file")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON of the run to this file")
	p99Floor := flag.Float64("p99-floor", 0, "with -replay: fail if overall p99 latency exceeds this many seconds")
	goodputFloor := flag.Float64("goodput-floor", 0, "with -replay: fail if goodput falls below this many jobs per 1000 virtual seconds")
	flag.Parse()

	if *genPath != "" {
		gen(*genPath, *seed, *horizon)
		return
	}
	if (*replayPath == "") == (*httpAddr == "") {
		fail("exactly one of -replay or -http (or -gen) is required")
	}

	reg := obs.New()
	reg.SetProcess("scidpd")
	env := solutions.NewEnv(solutions.EnvConfig{
		Nodes: *nodes, SlotsPerNode: *slots, ByteScale: 1,
		Obs: reg, Workers: *workers,
	})
	defer env.Close()
	svc := tenant.New(env, tenant.Config{FIFO: *fifo, NoBackfill: *noBackfill})

	if *httpAddr != "" {
		srv := tenant.NewServer(svc)
		fmt.Fprintf(os.Stderr, "scidpd: serving control API on %s (virtual time, %d slots)\n",
			*httpAddr, svc.TotalSlots())
		if err := http.ListenAndServe(*httpAddr, srv.Handler()); err != nil {
			fail("%v", err)
		}
		return
	}

	tr, err := tenant.LoadTrace(*replayPath)
	if err != nil {
		fail("%v", err)
	}
	sum, err := tenant.Replay(svc, tr)
	if err != nil {
		fail("replay: %v", err)
	}
	sum.ExportDigest = tenant.RegistryDigest(reg)

	if *tracePath != "" {
		writeExport(*tracePath, reg.WriteChromeTrace)
	}
	if *metricsPath != "" {
		writeExport(*metricsPath, reg.WritePrometheus)
	}
	out, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		fail("%v", err)
	}
	fmt.Println(string(out))
	if *jsonPath != "" {
		if err := os.WriteFile(*jsonPath, append(out, '\n'), 0o644); err != nil {
			fail("%v", err)
		}
	}

	if !sum.WithinQuota {
		fail("a tenant exceeded its quota (admission or scheduler bug)")
	}
	if *p99Floor > 0 && sum.P99Seconds > *p99Floor {
		fail("p99 floor violated: %.2fs > %.2fs", sum.P99Seconds, *p99Floor)
	}
	if *goodputFloor > 0 && sum.GoodputJobsPerKs < *goodputFloor {
		fail("goodput floor violated: %.2f < %.2f jobs/ks", sum.GoodputJobsPerKs, *goodputFloor)
	}
}

func writeExport(path string, write func(w io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		fail("%v", err)
	}
	defer f.Close()
	if err := write(f); err != nil {
		fail("%s: %v", path, err)
	}
}

// gen writes the bundled default mix: an interactive tenant streaming
// small grep jobs, a batch tenant with diurnal sort/write load, and a
// bursty low-priority tenant.
func gen(path string, seed int64, horizon float64) {
	tr, err := loadgen.Generate(loadgen.TraceSpec{
		Name: fmt.Sprintf("gen-seed%d", seed), Seed: seed, Horizon: horizon,
		Classes: []loadgen.Class{
			{Name: "inter", Rate: 1.00, Kinds: []string{"grep"}, Priority: 1,
				Quota: tenant.Quota{MaxQueued: 16, MaxRunning: 4, SlotShare: 0.75, Weight: 3}},
			{Name: "batch", Rate: 0.35, Diurnal: 0.8,
				Kinds: []string{"sort", "write"}, Sizes: []string{"small", "medium"},
				Quota: tenant.Quota{MaxQueued: 8, MaxRunning: 2, Weight: 1}},
			{Name: "burst", Rate: 0.60, Kinds: []string{"write"},
				Quota: tenant.Quota{MaxQueued: 4, MaxRunning: 1, SlotShare: 0.25, Weight: 1}},
		},
	})
	if err != nil {
		fail("%v", err)
	}
	out, err := json.MarshalIndent(tr, "", "  ")
	if err != nil {
		fail("%v", err)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		fail("%v", err)
	}
	fmt.Fprintf(os.Stderr, "scidpd: wrote %d arrivals over %.0fs to %s\n",
		len(tr.Arrivals), horizon, path)
}

// CMIP-style model intercomparison — the motivating workflow of the
// paper's Section II ("CMIP-5/6 ... compares netCDF outputs from
// different MPI-based simulation models").
//
// Two synthetic "models" (different field seeds) write netCDF output to
// the PFS. SciDP maps both runs, and one MapReduce job reads matching
// timestamps from each model directly off the PFS, computes per-level
// RMS differences, and aggregates a comparison table — without ever
// copying either model's output to HDFS.
//
// Run with: go run ./examples/cmip-compare
package main

import (
	"fmt"
	"math"
	"os"
	"slices"

	"scidp/internal/core"
	"scidp/internal/mapreduce"
	"scidp/internal/sim"
	"scidp/internal/solutions"
	"scidp/internal/workloads"
)

func main() {
	env := solutions.NewEnv(solutions.DefaultEnvConfig(1000, 5))

	spec := workloads.NUWRFSpec{Timestamps: 4, Levels: 8, Lat: 32, Lon: 32, Vars: 4}
	specA, specB := spec, spec
	specA.Dir, specA.Seed = "/modelA", 1
	specB.Dir, specB.Seed = "/modelB", 2
	dsA, err := workloads.Generate(env.PFS, specA)
	check(err)
	dsB, err := workloads.Generate(env.PFS, specB)
	check(err)
	fmt.Printf("two model runs on the PFS: %d + %d files\n", len(dsA.Files), len(dsB.Files))

	type cmp struct {
		t    int
		rms  float64
		bias float64
	}
	var results []cmp

	env.K.Go("driver", func(p *sim.Proc) {
		mapper := core.NewMapper(env.HDFS, env.Registry, "/scidp")
		mapA, err := mapper.MapPath(p, env.Mount(env.BD.Node(0)), "/modelA", core.MapOptions{
			Vars: []string{"QR"}, RowsPerBlock: spec.Levels,
		})
		check(err)
		_, err = mapper.MapPath(p, env.Mount(env.BD.Node(0)), "/modelB", core.MapOptions{
			Vars: []string{"QR"}, RowsPerBlock: spec.Levels,
		})
		check(err)

		// One map task per model-A timestamp; each task pulls the twin
		// slab from model B through its own PFS Reader (cross-model join
		// inside the task — both reads go straight to the PFS).
		job := &mapreduce.Job{
			Name:    "cmip-compare",
			Cluster: env.BD,
			Input: &core.InputFormat{
				HDFS: env.HDFS, Dir: mapA.Root,
				Registry: env.Registry, MountFor: env.Mount,
				Cost: core.DefaultCostModel(),
			},
			Map: func(tc *mapreduce.TaskContext, key string, value any) error {
				slabA := value.(*core.Slab)
				t := workloads.TimestampIndex(slabA.PFSPath)
				reader := core.NewPFSReader(env.Registry, env.Mount(tc.Node()))
				slabB, err := reader.ReadSlab(tc.Proc(), &core.SlabSource{
					PFSPath: fmt.Sprintf("/modelB/%s", workloads.FileName(t)),
					Format:  "netcdf", VarPath: "QR",
					TypeName: "float", ElemSize: 4,
					Start: slabA.Start, Count: slabA.Count,
				})
				if err != nil {
					return err
				}
				a, err := slabA.Float32s()
				if err != nil {
					return err
				}
				b, err := slabB.Float32s()
				if err != nil {
					return err
				}
				var sumSq, sum float64
				for i := range a {
					d := float64(a[i]) - float64(b[i])
					sumSq += d * d
					sum += d
				}
				n := float64(len(a))
				tc.Emit("cmp", cmp{t: t, rms: math.Sqrt(sumSq / n), bias: sum / n})
				return nil
			},
			Reduce: func(tc *mapreduce.TaskContext, key string, values []any) error {
				for _, v := range values {
					results = append(results, v.(cmp))
				}
				return nil
			},
		}
		_, err = job.Run(p)
		check(err)
	})
	env.K.Run()

	slices.SortFunc(results, func(a, b cmp) int { return a.t - b.t })
	fmt.Println("\nmodel A vs model B, variable QR:")
	fmt.Println("timestamp  RMS difference  mean bias")
	for _, r := range results {
		fmt.Printf("%9d  %14.5f  %9.5f\n", r.t, r.rms, r.bias)
	}
	fmt.Printf("\nHDFS data bytes stored: %d (both models stayed on the PFS)\n", env.HDFS.TotalUsed())
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "cmip-compare: %v\n", err)
		os.Exit(1)
	}
}

// NU-WRF visualization: the paper's Img-only workload end to end.
//
// A generated NU-WRF run lands on the simulated PFS; SciDP maps the QR
// (rainfall) variable and a MapReduce job plots one image per level per
// timestamp, writing the PNGs to HDFS via the reduce tasks. The example
// then exports the real PNG files to a local directory so you can open
// them, and prints the workflow timing the same way Figure 5 does.
//
// Run with: go run ./examples/nuwrf-visualization [-out dir]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"scidp/internal/sim"
	"scidp/internal/solutions"
	"scidp/internal/workloads"
)

func main() {
	out := flag.String("out", "nuwrf-images", "directory for exported PNGs")
	timestamps := flag.Int("timestamps", 3, "timestamps to render")
	flag.Parse()

	cfg := solutions.DefaultEnvConfig(1000, 5)
	cfg.PlotRes = 256 // render at a visible resolution
	env := solutions.NewEnv(cfg)

	spec := workloads.NUWRFSpec{Timestamps: *timestamps, Levels: 10, Lat: 48, Lon: 48, Vars: 6, Dir: "/nuwrf"}
	ds, err := workloads.Generate(env.PFS, spec)
	check(err)

	wl := &solutions.Workload{Dataset: ds, Var: "QR"}
	var rep *solutions.Report
	env.K.Go("driver", func(p *sim.Proc) {
		rep, err = solutions.RunSciDP(p, env, wl)
		check(err)
	})
	env.K.Run()

	fmt.Printf("SciDP Img-only over %d timestamps x %d levels:\n", *timestamps, spec.Levels)
	fmt.Printf("  images plotted: %d\n", rep.Images)
	fmt.Printf("  virtual total:  %.1f s (copy %.1f s + process %.1f s)\n",
		rep.TotalSeconds, rep.CopySeconds, rep.ProcessSeconds)
	fmt.Printf("  per-task means: read=%.2fs convert=%.2fs plot=%.2fs\n",
		rep.PhaseMeans["Read"], rep.PhaseMeans["Convert"], rep.PhaseMeans["Plot"])

	// Export the PNGs HDFS now holds.
	check(os.MkdirAll(*out, 0o755))
	exported := 0
	env.K.Go("export", func(p *sim.Proc) {
		files, err := env.HDFS.Walk(p, "/results/scidp/img")
		check(err)
		for _, f := range files {
			data, err := env.HDFS.ReadFile(p, env.BD.Node(0), f.Path)
			check(err)
			name := strings.ReplaceAll(strings.TrimPrefix(f.Path, "/results/scidp/img/"), "/", "_")
			check(os.WriteFile(filepath.Join(*out, name), data, 0o644))
			exported++
		}
	})
	env.K.Run()
	fmt.Printf("  exported %d PNGs to %s/\n", exported, *out)
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "nuwrf-visualization: %v\n", err)
		os.Exit(1)
	}
}

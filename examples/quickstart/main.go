// Quickstart: the smallest end-to-end SciDP flow.
//
// It builds the simulated two-cluster testbed, generates a tiny NU-WRF
// dataset on the PFS, lets SciDP's Data Mapper mirror the QR variable as
// virtual HDFS files, and runs an R-style MapReduce job over the dummy
// blocks that computes each timestamp's mean rainfall — no copy, no
// format conversion.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"scidp/internal/core"
	"scidp/internal/mapreduce"
	"scidp/internal/rframe"
	"scidp/internal/rmr"
	"scidp/internal/sim"
	"scidp/internal/solutions"
	"scidp/internal/workloads"
)

func main() {
	// A testbed at scale factor 1000: bandwidths are 1/1000 of the
	// paper's hardware and the dataset is correspondingly small.
	env := solutions.NewEnv(solutions.DefaultEnvConfig(1000, 5))

	// Simulation output appears on the PFS (as if NU-WRF just wrote it).
	spec := workloads.NUWRFSpec{Timestamps: 4, Levels: 10, Lat: 32, Lon: 32, Vars: 6, Dir: "/nuwrf"}
	ds, err := workloads.Generate(env.PFS, spec)
	check(err)
	fmt.Printf("generated %d netCDF files on the PFS (%.1fx compressed)\n",
		len(ds.Files), ds.CompressionRatio())

	var out *mapreduce.Result
	env.K.Go("driver", func(p *sim.Proc) {
		// Data Mapper: mirror only QR; one dummy block per timestamp.
		mapper := core.NewMapper(env.HDFS, env.Registry, "/scidp")
		mapping, err := mapper.MapPath(p, env.Mount(env.BD.Node(0)), "/nuwrf", core.MapOptions{
			Vars:         []string{"QR"},
			RowsPerBlock: spec.Levels,
		})
		check(err)
		fmt.Printf("mapped %d virtual files under %s at t=%.3fs (no data moved)\n",
			len(mapping.VirtualPaths()), mapping.Root, p.Now())

		// R-style MapReduce straight over the PFS-backed dummy blocks.
		out, err = rmr.MapReduce(p, rmr.Spec{
			Name:    "mean-rainfall",
			Cluster: env.BD,
			Input: &core.InputFormat{
				HDFS: env.HDFS, Dir: mapping.Root,
				Registry: env.Registry, MountFor: env.Mount,
				Cost: core.DefaultCostModel(),
			},
			Map: func(c *rmr.Ctx, key string, value any) error {
				slab := value.(*core.Slab)
				df, err := slab.Frame("QR") // hyperslab -> R data frame
				if err != nil {
					return err
				}
				st, err := df.Summary("QR")
				if err != nil {
					return err
				}
				c.Keyval(slab.PFSPath, rframe.New().
					MustAddFloat("mean", []float64{st.Mean}).
					MustAddFloat("max", []float64{st.Max}))
				return nil
			},
			Reduce: func(c *rmr.Ctx, key string, values []any) error {
				df := values[0].(*rframe.Frame)
				c.Keyval(key, df)
				return nil
			},
		})
		check(err)
	})
	env.K.Run()

	fmt.Println("\nper-timestamp mean rainfall (computed in place on the PFS):")
	for _, kv := range out.Output {
		df := kv.V.(*rframe.Frame)
		fmt.Printf("  %-28s mean=%.4f max=%.4f\n", kv.K, df.Col("mean").F[0], df.Col("max").F[0])
	}
	fmt.Printf("\nvirtual time: %.1f s; HDFS stores %d data bytes (everything stayed on the PFS)\n",
		out.End, env.HDFS.TotalUsed())
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "quickstart: %v\n", err)
		os.Exit(1)
	}
}

// Spark extension: the paper's stated future-work path ("SciDP can be
// extended to support other BD frameworks, such as Spark") demonstrated
// with this repository's Spark-like engine.
//
// The same Data Mapper output that feeds Hadoop jobs becomes an RDD
// source: partitions are SciDP dummy blocks, resolved by PFS Readers on
// the executors. The pipeline below finds, per timestamp, the heaviest
// rainfall cell across all levels via map + reduceByKey — data never
// leaves the PFS.
//
// Run with: go run ./examples/spark-extension
package main

import (
	"fmt"
	"os"

	"scidp/internal/core"
	"scidp/internal/sim"
	"scidp/internal/solutions"
	"scidp/internal/sparklite"
	"scidp/internal/workloads"
)

// cellMax is the per-slab maximum and its grid location.
type cellMax struct {
	value              float64
	level, lat, lon, t int
}

func main() {
	env := solutions.NewEnv(solutions.DefaultEnvConfig(1000, 5))
	spec := workloads.NUWRFSpec{Timestamps: 4, Levels: 10, Lat: 32, Lon: 32, Vars: 6, Dir: "/nuwrf"}
	if _, err := workloads.Generate(env.PFS, spec); err != nil {
		fail(err)
	}

	sc := sparklite.NewContext(env.K, env.BD, 8)
	var out []sparklite.Record
	env.K.Go("driver", func(p *sim.Proc) {
		mapper := core.NewMapper(env.HDFS, env.Registry, "/scidp")
		// One partition per level: finer-grained than the Hadoop runs, to
		// exercise Spark-style many-small-tasks execution.
		mapping, err := mapper.MapPath(p, env.Mount(env.BD.Node(0)), "/nuwrf", core.MapOptions{
			Vars: []string{"QR"}, RowsPerBlock: 1,
		})
		if err != nil {
			fail(err)
		}
		src := &sparklite.SciDPSource{
			HDFS: env.HDFS, Dir: mapping.Root,
			Registry: env.Registry, MountFor: env.Mount,
			DecompressPerRawMB: 0.01,
		}
		rdd := sc.FromSource(src).
			Map(func(tc *sparklite.TaskCtx, r sparklite.Record) (sparklite.Record, error) {
				slab := r.V.(*core.Slab)
				vals, err := slab.Float32s()
				if err != nil {
					return sparklite.Record{}, err
				}
				best := cellMax{value: -1, t: workloads.TimestampIndex(slab.PFSPath)}
				nx := slab.Count[2]
				for i, v := range vals {
					if float64(v) > best.value {
						best.value = float64(v)
						best.level = slab.Start[0]
						best.lat = i / nx
						best.lon = i % nx
					}
				}
				return sparklite.Record{K: fmt.Sprintf("t%04d", best.t), V: best}, nil
			}).
			ReduceByKey(func(tc *sparklite.TaskCtx, key string, values []any) (any, error) {
				best := cellMax{value: -1}
				for _, v := range values {
					c := v.(cellMax)
					if c.value > best.value {
						best = c
					}
				}
				return best, nil
			}, len(env.BD.Nodes))
		var cerr error
		out, cerr = rdd.Collect(p)
		if cerr != nil {
			fail(cerr)
		}
	})
	env.K.Run()

	fmt.Println("heaviest rainfall cell per timestamp (Spark-like engine over SciDP dummy blocks):")
	for _, r := range out {
		c := r.V.(cellMax)
		fmt.Printf("  %s  value=%.4f at level=%d lat=%d lon=%d\n", r.K, c.value, c.level, c.lat, c.lon)
	}
	fmt.Printf("\nHDFS data bytes stored: %d; virtual time: %.1f s\n", env.HDFS.TotalUsed(), env.K.Now())
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "spark-extension: %v\n", err)
	os.Exit(1)
}

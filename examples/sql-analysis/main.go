// SQL analysis: the paper's Anlys workload (Table II, Figure 9).
//
// SciDP plots images AND runs sqldf-style SQL in the same map tasks:
// the "highlight" case marks the top-10 rainfall cells on the images at
// essentially no extra cost, and the "top 1%" case selects the heaviest
// cells across the whole run, aggregates them in reduce, and stores the
// result on HDFS. The example runs all three Figure 9 cases and prints
// the timing plus the head of the top-1% table.
//
// The final section runs the chunk-pushdown array SQL path on one of
// the model's netCDF files: the same query executed with zone-map
// pruning and in full-scan oracle mode, printing the chunks and bytes
// the planner avoided and verifying both modes return the same rows.
//
// Run with: go run ./examples/sql-analysis
package main

import (
	"bytes"
	"fmt"
	"os"

	"scidp/internal/aquery"
	"scidp/internal/netcdf"
	"scidp/internal/rframe"
	"scidp/internal/rsql"
	"scidp/internal/sim"
	"scidp/internal/solutions"
	"scidp/internal/workloads"
)

func main() {
	spec := workloads.NUWRFSpec{Timestamps: 4, Levels: 8, Lat: 32, Lon: 32, Vars: 6, Dir: "/nuwrf"}
	blobs, ds, err := workloads.GenerateBlobs(spec)
	check(err)

	cases := []solutions.AnalysisKind{
		solutions.AnalysisNone,
		solutions.AnalysisHighlight,
		solutions.AnalysisTop1Pct,
	}
	fmt.Println("Figure 9 on a small run (virtual seconds):")
	var lastEnv *solutions.Env
	for _, kind := range cases {
		env := solutions.NewEnv(solutions.DefaultEnvConfig(1000, 5))
		workloads.Install(env.PFS, blobs)
		wl := &solutions.Workload{Dataset: ds, Var: "QR", Analysis: kind}
		var rep *solutions.Report
		env.K.Go("driver", func(p *sim.Proc) {
			rep, err = solutions.RunSciDP(p, env, wl)
			check(err)
		})
		env.K.Run()
		fmt.Printf("  %-12s total=%.1fs images=%d analysis-bytes=%d\n",
			kind.String(), rep.TotalSeconds, rep.Images, rep.AnalysisBytes)
		lastEnv = env
	}

	// Read back the stored top-1% result from HDFS and show its head —
	// what a scientist would pull into an R session afterwards.
	var df *rframe.Frame
	lastEnv.K.Go("readback", func(p *sim.Proc) {
		data, err := lastEnv.HDFS.ReadFile(p, lastEnv.BD.Node(0), "/results/scidp/analysis/top1pct.csv")
		check(err)
		df, err = rframe.ReadTable(data)
		check(err)
	})
	lastEnv.K.Run()

	fmt.Printf("\ntop 1%% heaviest rainfall cells (%d rows stored on HDFS), head:\n", df.NumRows())
	head := df.Head(5)
	fmt.Println("    t  level  lat  lon    value")
	for r := 0; r < head.NumRows(); r++ {
		fmt.Printf("  %3.0f  %5.0f  %3.0f  %3.0f  %7.4f\n",
			head.Col("t").Float64At(r), head.Col("level").Float64At(r),
			head.Col("lat").Float64At(r), head.Col("lon").Float64At(r),
			head.Col("value").Float64At(r))
	}

	// Chunk-pushdown array SQL on the same data: query one timestamp's
	// netCDF file in place. The writer recorded per-chunk zone maps, so a
	// level-selective query only decodes the matching chunk; the oracle
	// mode scans everything and must produce byte-identical rows.
	blob := blobs[spec.Dir+"/"+workloads.FileName(0)]
	sql := `SELECT level, lat, lon, value FROM qr WHERE level = 5 ORDER BY value DESC LIMIT 5`
	run := func(mode rsql.PushdownMode) (*rframe.Frame, *rsql.ScanStats) {
		f, err := netcdf.Open(netcdf.BytesReader(blob))
		check(err)
		table, err := aquery.NewNetCDF(f, "QR")
		check(err)
		frame, st, err := rsql.QueryArrays(map[string]rsql.ArrayTable{"qr": table}, sql, rsql.ArrayQueryOpts{Mode: mode})
		check(err)
		return frame, st
	}
	pushFrame, pushStats := run(rsql.Pushdown)
	oracleFrame, oracleStats := run(rsql.PushdownOff)
	if !bytes.Equal(pushFrame.WriteCSV(), oracleFrame.WriteCSV()) {
		check(fmt.Errorf("pushdown and oracle results diverged"))
	}
	fmt.Printf("\narray SQL on %s, %q:\n", workloads.FileName(0), sql)
	fmt.Printf("  pushdown: scanned %d/%d chunks, inflated %d B, avoided %d B\n",
		pushStats.ChunksScanned, pushStats.ChunksTotal, pushStats.BytesInflated, pushStats.BytesAvoided)
	fmt.Printf("  oracle:   scanned %d/%d chunks, inflated %d B (results byte-identical)\n",
		oracleStats.ChunksScanned, oracleStats.ChunksTotal, oracleStats.BytesInflated)
	fmt.Println("  level  lat  lon    value")
	for r := 0; r < pushFrame.NumRows(); r++ {
		fmt.Printf("  %5.0f  %3.0f  %3.0f  %7.4f\n",
			pushFrame.Col("level").Float64At(r), pushFrame.Col("lat").Float64At(r),
			pushFrame.Col("lon").Float64At(r), pushFrame.Col("value").Float64At(r))
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "sql-analysis: %v\n", err)
		os.Exit(1)
	}
}

module scidp

go 1.23

// Package aquery adapts the scientific formats' chunked variables to the
// rsql array-query planner: a netcdf variable or hdf5lite dataset becomes
// an rsql.ArrayTable whose per-chunk metadata carries the write-time zone
// maps (so WHERE predicates prune chunks before any I/O), whose
// coordinate columns are computed from chunk geometry instead of being
// materialized, and whose payload reads go through the engine's
// single-pass scan path (cache may serve, never fills on a miss).
package aquery

import (
	"fmt"
	"math"

	"scidp/internal/hdf5lite"
	"scidp/internal/ioengine"
	"scidp/internal/netcdf"
	"scidp/internal/rsql"
	"scidp/internal/sim"
)

// Option customizes a table adapter.
type Option func(*options)

type options struct {
	value  string
	consts []constCol
}

type constCol struct {
	name string
	v    float64
}

// WithValue renames the payload column (default "value").
func WithValue(name string) Option { return func(o *options) { o.value = name } }

// WithConst adds a constant column — how a per-file coordinate like the
// timestamp joins the schema without being stored. Constants prune like
// any other column: a predicate excluding the constant skips every chunk.
func WithConst(name string, v float64) Option {
	return func(o *options) { o.consts = append(o.consts, constCol{name: name, v: v}) }
}

// Table is an rsql.ArrayTable over one chunked array. It also implements
// rsql.Projector: when the plan references no payload column the chunk
// payloads are never read at all.
type Table struct {
	cols        []rsql.ColumnInfo
	metas       []rsql.ChunkMeta
	src         ioengine.Source
	read        func(i int, payload bool) (rsql.Chunk, error)
	announce    func(chunks []int)
	valueCol    string
	needPayload bool
}

// chunk implements rsql.Chunk via per-column accessor closures.
type chunk struct {
	rows int
	cols map[string]func(int) float64
}

func (c *chunk) NumRows() int { return c.rows }

func (c *chunk) Col(name string) (func(int) float64, error) {
	acc := c.cols[name]
	if acc == nil {
		return nil, fmt.Errorf("aquery: no column %q", name)
	}
	return acc, nil
}

// Columns implements rsql.ArrayTable.
func (t *Table) Columns() []rsql.ColumnInfo { return t.cols }

// NumChunks implements rsql.ArrayTable.
func (t *Table) NumChunks() int { return len(t.metas) }

// Meta implements rsql.ArrayTable.
func (t *Table) Meta(i int) rsql.ChunkMeta { return t.metas[i] }

// Announce implements rsql.ArrayTable; a projected-out payload needs no
// staging at all.
func (t *Table) Announce(chunks []int) {
	if t.needPayload {
		t.announce(chunks)
	}
}

// Read implements rsql.ArrayTable.
func (t *Table) Read(i int) (rsql.Chunk, error) { return t.read(i, t.needPayload) }

// Fork implements rsql.ArrayTable on the file's source (the bound
// process's data plane when the file was opened over ioengine.Bind).
func (t *Table) Fork(fn func()) *sim.Future { return ioengine.Fork(t.src, fn) }

// Join implements rsql.ArrayTable.
func (t *Table) Join(futs ...*sim.Future) { ioengine.Join(t.src, futs...) }

// Project implements rsql.Projector: payload decoding is skipped when no
// referenced column needs it.
func (t *Table) Project(cols []string) bool {
	t.needPayload = false
	for _, c := range cols {
		if c == t.valueCol {
			t.needPayload = true
		}
	}
	return t.needPayload
}

// schema assembles the column list: dimensions (integer coordinates),
// then constants, then the payload column.
func schema(dims []string, o *options) ([]rsql.ColumnInfo, error) {
	var cols []rsql.ColumnInfo
	seen := map[string]bool{}
	add := func(c rsql.ColumnInfo) error {
		if seen[c.Name] {
			return fmt.Errorf("aquery: duplicate column %q", c.Name)
		}
		seen[c.Name] = true
		cols = append(cols, c)
		return nil
	}
	for _, d := range dims {
		if err := add(rsql.ColumnInfo{Name: d, Int: true}); err != nil {
			return nil, err
		}
	}
	for _, cc := range o.consts {
		if err := add(rsql.ColumnInfo{Name: cc.name, Int: cc.v == math.Trunc(cc.v)}); err != nil {
			return nil, err
		}
	}
	if err := add(rsql.ColumnInfo{Name: o.value}); err != nil {
		return nil, err
	}
	return cols, nil
}

// strides returns the row-major stride per dimension of an extent, so a
// flat row index maps to coordinates via (row/stride[d]) % extent[d].
func strides(extent []int) []int {
	out := make([]int, len(extent))
	s := 1
	for d := len(extent) - 1; d >= 0; d-- {
		out[d] = s
		s *= extent[d]
	}
	return out
}

func volume(extent []int) int {
	n := 1
	for _, e := range extent {
		n *= e
	}
	return n
}

// geoCols builds the geometry-derived accessors of one chunk: coordinate
// columns from the chunk box, constant columns from the options.
func geoCols(dims []string, start, extent []int, o *options) map[string]func(int) float64 {
	cols := make(map[string]func(int) float64, len(dims)+len(o.consts)+1)
	str := strides(extent)
	for di, name := range dims {
		di := di
		s0, ex, st := start[di], extent[di], str[di]
		cols[name] = func(row int) float64 { return float64(s0 + (row/st)%ex) }
	}
	for _, cc := range o.consts {
		v := cc.v
		cols[cc.name] = func(int) float64 { return v }
	}
	return cols
}

// NewNetCDF adapts one variable of an opened netcdf file. Dimensions
// become integer coordinate columns named after the variable's dims; the
// payload becomes the value column. Row order is chunk order × row-major
// within each chunk.
func NewNetCDF(f *netcdf.File, varName string, opts ...Option) (*Table, error) {
	v, err := f.Var(varName)
	if err != nil {
		return nil, err
	}
	o := &options{value: "value"}
	for _, fn := range opts {
		fn(o)
	}
	dims := make([]string, len(v.Dims))
	for i, d := range v.Dims {
		dims[i] = d.Name
	}
	cols, err := schema(dims, o)
	if err != nil {
		return nil, err
	}
	t := &Table{cols: cols, src: f.Source(), valueCol: o.value, needPayload: true}
	for i := range v.Chunks {
		ci := v.Chunks[i]
		start, extent := v.ChunkBox(i)
		bounds := map[string]rsql.Interval{}
		for di, name := range dims {
			bounds[name] = rsql.Interval{Lo: float64(start[di]), Hi: float64(start[di] + extent[di] - 1)}
		}
		for _, cc := range o.consts {
			bounds[cc.name] = rsql.Interval{Lo: cc.v, Hi: cc.v}
		}
		if ci.Stats != nil {
			bounds[o.value] = rsql.Interval{Lo: ci.Stats.Min, Hi: ci.Stats.Max}
		}
		t.metas = append(t.metas, rsql.ChunkMeta{
			Rows: volume(extent), RawBytes: ci.RawSize, StoredBytes: ci.StoredSize, Bounds: bounds,
		})
	}
	t.read = func(i int, payload bool) (rsql.Chunk, error) {
		start, extent := v.ChunkBox(i)
		cc := geoCols(dims, start, extent, o)
		if payload {
			raw, err := f.ScanChunk(v, i)
			if err != nil {
				return nil, err
			}
			arr := &netcdf.Array{Type: v.Type, Shape: extent, Data: raw}
			cc[o.value] = arr.Float64At
		}
		return &chunk{rows: volume(extent), cols: cc}, nil
	}
	t.announce = func(chunks []int) { f.AnnounceChunks(v, chunks) }
	return t, nil
}

// NewHDF5 adapts one dataset of an opened hdf5lite file. dimNames names
// the dataset's dimensions in storage order (the format stores shapes
// without names); chunking is along the leading dimension.
func NewHDF5(f *hdf5lite.File, path string, dimNames []string, opts ...Option) (*Table, error) {
	d, err := f.Find(path)
	if err != nil {
		return nil, err
	}
	if len(dimNames) != len(d.Shape) {
		return nil, fmt.Errorf("aquery: %s: %d dim names for rank-%d dataset", path, len(dimNames), len(d.Shape))
	}
	o := &options{value: "value"}
	for _, fn := range opts {
		fn(o)
	}
	cols, err := schema(dimNames, o)
	if err != nil {
		return nil, err
	}
	box := func(i int) (start, extent []int) {
		c := d.Chunks[i]
		start = make([]int, len(d.Shape))
		extent = append([]int(nil), d.Shape...)
		start[0], extent[0] = c.RowStart, c.Rows
		return start, extent
	}
	t := &Table{cols: cols, src: f.Source(), valueCol: o.value, needPayload: true}
	for i := range d.Chunks {
		c := d.Chunks[i]
		start, extent := box(i)
		bounds := map[string]rsql.Interval{}
		for di, name := range dimNames {
			bounds[name] = rsql.Interval{Lo: float64(start[di]), Hi: float64(start[di] + extent[di] - 1)}
		}
		for _, cc := range o.consts {
			bounds[cc.name] = rsql.Interval{Lo: cc.v, Hi: cc.v}
		}
		if c.Stats != nil {
			bounds[o.value] = rsql.Interval{Lo: c.Stats.Min, Hi: c.Stats.Max}
		}
		t.metas = append(t.metas, rsql.ChunkMeta{
			Rows: volume(extent), RawBytes: c.RawSize, StoredBytes: c.StoredSize, Bounds: bounds,
		})
	}
	t.read = func(i int, payload bool) (rsql.Chunk, error) {
		start, extent := box(i)
		cc := geoCols(dimNames, start, extent, o)
		if payload {
			raw, err := f.ScanChunk(d, i)
			if err != nil {
				return nil, err
			}
			typ := d.Type
			cc[o.value] = func(row int) float64 { return hdf5lite.Float64At(typ, raw, row) }
		}
		return &chunk{rows: volume(extent), cols: cc}, nil
	}
	t.announce = func(chunks []int) { f.AnnounceChunks(d, chunks) }
	return t, nil
}

package aquery

import (
	"bytes"
	"math"
	"testing"

	"scidp/internal/hdf5lite"
	"scidp/internal/ioengine"
	"scidp/internal/netcdf"
	"scidp/internal/obs"
	"scidp/internal/rframe"
	"scidp/internal/rsql"
	"scidp/internal/sim"
)

// memEngine is an engine-level ReaderAt over a blob with a fixed virtual
// latency per call, so reads advance the simulated clock.
type memEngine struct {
	data    []byte
	latency float64
}

func (m *memEngine) ReadAt(p *sim.Proc, off, n int64) ([]byte, error) {
	p.Sleep(m.latency)
	return ioengine.Bytes(m.data).ReadAt(off, n)
}

func (m *memEngine) Size() int64 { return int64(len(m.data)) }

// buildNC writes a NU-WRF-shaped netcdf blob: QR(level=6, lat=4, lon=5)
// chunked one level per chunk, deterministic values, zone maps on.
func buildNC(t *testing.T) ([]byte, []float32) {
	t.Helper()
	w := netcdf.NewWriter()
	for _, d := range []struct {
		name string
		n    int
	}{{"level", 6}, {"lat", 4}, {"lon", 5}} {
		if err := w.AddDim(d.name, d.n); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.AddVar("QR", netcdf.Float32, []string{"level", "lat", "lon"}, netcdf.Chunking{Shape: []int{1, 4, 5}, Deflate: 2}); err != nil {
		t.Fatal(err)
	}
	vals := make([]float32, 6*4*5)
	for i := range vals {
		vals[i] = float32(math.Sin(float64(i)/7.0) + float64(i/20))
	}
	if err := w.PutVarFloat32("QR", vals); err != nil {
		t.Fatal(err)
	}
	blob, err := w.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	return blob, vals
}

// legacyNCFrame materializes the same rows the adapter exposes, in the
// adapter's row order (chunk order × row-major — global row-major here,
// since chunks are whole level slabs).
func legacyNCFrame(vals []float32) *rframe.Frame {
	var level, lat, lon []int64
	var value []float64
	for i, v := range vals {
		level = append(level, int64(i/20))
		lat = append(lat, int64((i/5)%4))
		lon = append(lon, int64(i%5))
		value = append(value, float64(v))
	}
	return rframe.New().MustAddInt("level", level).MustAddInt("lat", lat).
		MustAddInt("lon", lon).MustAddFloat("value", value)
}

// queryNC runs one SQL query over the netcdf adapter inside a kernel,
// with the blob served through a bound engine (cache + prefetch) and the
// scan offloaded to a compute pool of the given size (-1 = no pool).
// It returns the result CSV, the scan stats, and the full obs export.
func queryNC(t *testing.T, blob []byte, sql string, mode rsql.PushdownMode, workers int) ([]byte, *rsql.ScanStats, []byte) {
	t.Helper()
	k := sim.NewKernel()
	if workers >= 0 {
		pool := sim.NewComputePool(workers)
		defer pool.Close()
		k.SetComputePool(pool)
	}
	reg := obs.New()
	k.SetObs(reg)
	var csv []byte
	var stats *rsql.ScanStats
	k.Go("query", func(p *sim.Proc) {
		b := ioengine.Bind(p, &memEngine{data: blob, latency: 0.001}, ioengine.Options{Cache: ioengine.NewCache(1 << 20), Prefetch: 2, Obs: reg})
		f, err := netcdf.Open(b)
		if err != nil {
			panic(err)
		}
		tab, err := NewNetCDF(f, "QR")
		if err != nil {
			panic(err)
		}
		out, st, err := rsql.QueryArrays(map[string]rsql.ArrayTable{"qr": tab}, sql, rsql.ArrayQueryOpts{Mode: mode, Obs: reg})
		if err != nil {
			panic(err)
		}
		csv = out.WriteCSV()
		stats = st
	})
	k.Run()
	var prom bytes.Buffer
	if err := reg.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	return csv, stats, prom.Bytes()
}

// TestNetCDFAdapterVsLegacy compares adapter queries against the legacy
// executor over a materialized frame. Aggregates use a tolerance — their
// partial sums merge in chunk order, not global row order.
func TestNetCDFAdapterVsLegacy(t *testing.T) {
	blob, vals := buildNC(t)
	legacy := legacyNCFrame(vals)
	queries := []struct {
		sql string
		tol float64
	}{
		{`SELECT * FROM qr WHERE level = 3 AND value > 3.2 ORDER BY value DESC LIMIT 5`, 0},
		{`SELECT lat, lon, value FROM qr WHERE level >= 4 AND lat = 2`, 0},
		{`SELECT level, COUNT(*), SUM(value), MAX(value), AVG(value) FROM qr WHERE value > 1.0 GROUP BY level ORDER BY level`, 1e-12},
		{`SELECT lon FROM qr WHERE level = 2 AND lat = 1 ORDER BY lon`, 0},
		{`SELECT COUNT(*) FROM qr WHERE value > 100`, 0},
	}
	for _, q := range queries {
		gotCSV, _, _ := queryNC(t, blob, q.sql, rsql.Pushdown, -1)
		want, err := rsql.Query(map[string]*rframe.Frame{"qr": legacy}, q.sql)
		if err != nil {
			t.Fatalf("legacy %q: %v", q.sql, err)
		}
		if q.tol == 0 {
			if !bytes.Equal(gotCSV, want.WriteCSV()) {
				t.Fatalf("%q differs from legacy:\n%svs\n%s", q.sql, gotCSV, want.WriteCSV())
			}
			continue
		}
		got, err := rframe.ReadTable(gotCSV)
		if err != nil {
			t.Fatal(err)
		}
		if got.NumRows() != want.NumRows() {
			t.Fatalf("%q: %d rows vs legacy %d", q.sql, got.NumRows(), want.NumRows())
		}
		for _, name := range want.Names() {
			gc, wc := got.Col(name), want.Col(name)
			if gc == nil {
				t.Fatalf("%q: missing column %s", q.sql, name)
			}
			for r := 0; r < want.NumRows(); r++ {
				a, b := gc.Float64At(r), wc.Float64At(r)
				if a != b && math.Abs(a-b) > q.tol*math.Max(math.Abs(a), math.Abs(b)) {
					t.Fatalf("%q: %s[%d] = %v vs legacy %v", q.sql, name, r, a, b)
				}
			}
		}
	}
}

// TestNetCDFPruningAndProjection checks zone-map pruning really happens
// through the adapter, and geometry-only queries never inflate payloads.
func TestNetCDFPruningAndProjection(t *testing.T) {
	blob, _ := buildNC(t)
	_, st, _ := queryNC(t, blob, `SELECT value FROM qr WHERE level = 3`, rsql.Pushdown, -1)
	if st.ChunksScanned != 1 || st.ChunksSkipped != 5 {
		t.Fatalf("level pruning: %+v", st)
	}
	if st.BytesAvoided == 0 || st.StoredAvoided == 0 {
		t.Fatalf("no bytes avoided: %+v", st)
	}
	// Values climb with level (the +i/20 term): a high threshold prunes
	// low levels via the write-time zone maps alone.
	_, st2, _ := queryNC(t, blob, `SELECT value FROM qr WHERE value > 4.5`, rsql.Pushdown, -1)
	if st2.ChunksSkipped < 3 {
		t.Fatalf("zone maps should prune low levels: %+v", st2)
	}
	// Geometry-only projection: payloads never decoded.
	_, st3, _ := queryNC(t, blob, `SELECT lon FROM qr WHERE level = 2 AND lat = 1`, rsql.Pushdown, -1)
	if st3.BytesInflated != 0 || st3.StoredRead != 0 {
		t.Fatalf("geometry-only query inflated payloads: %+v", st3)
	}
}

// TestWorkerCountInvariance runs the same query at several data-plane
// widths: results AND the full obs export (counters, spans, virtual
// clock) must be byte-identical — the two-plane determinism contract.
func TestWorkerCountInvariance(t *testing.T) {
	blob, _ := buildNC(t)
	const sql = `SELECT level, COUNT(*), SUM(value) FROM qr WHERE value > 1.0 GROUP BY level ORDER BY level`
	baseCSV, _, baseExp := queryNC(t, blob, sql, rsql.Pushdown, -1)
	for _, workers := range []int{1, 4, 8} {
		csv, _, exp := queryNC(t, blob, sql, rsql.Pushdown, workers)
		if !bytes.Equal(csv, baseCSV) {
			t.Fatalf("workers=%d: result differs:\n%svs\n%s", workers, csv, baseCSV)
		}
		if !bytes.Equal(exp, baseExp) {
			t.Fatalf("workers=%d: obs export differs", workers)
		}
	}
}

// TestObsExportDeterminism pins the satellite requirement: two same-seed
// runs of the same mode produce byte-identical metric exports, and the
// query counters are populated.
func TestObsExportDeterminism(t *testing.T) {
	blob, _ := buildNC(t)
	const sql = `SELECT * FROM qr WHERE level = 4 AND value > 4.0`
	csv1, _, exp1 := queryNC(t, blob, sql, rsql.Pushdown, 2)
	csv2, _, exp2 := queryNC(t, blob, sql, rsql.Pushdown, 2)
	if !bytes.Equal(csv1, csv2) || !bytes.Equal(exp1, exp2) {
		t.Fatal("same-seed runs diverged")
	}
	if !bytes.Contains(exp1, []byte("query_chunks_skipped_total")) ||
		!bytes.Contains(exp1, []byte("query_chunks_scanned_total")) ||
		!bytes.Contains(exp1, []byte("query_bytes_avoided_total")) {
		t.Fatalf("query counters missing from export:\n%s", exp1)
	}
	// Pushdown and oracle must agree on results (the acceptance digest).
	oracleCSV, _, _ := queryNC(t, blob, sql, rsql.PushdownOff, 2)
	if !bytes.Equal(csv1, oracleCSV) {
		t.Fatalf("pushdown vs oracle:\n%svs\n%s", csv1, oracleCSV)
	}
}

// TestHDF5AdapterAndConsts exercises the hdf5lite adapter with a WithConst
// coordinate, including const-column pruning (a predicate excluding the
// constant skips the whole file).
func TestHDF5AdapterAndConsts(t *testing.T) {
	w := hdf5lite.NewWriter()
	g := w.Root().EnsureGroup("model/physics")
	vals := make([]float32, 8*3)
	for i := range vals {
		vals[i] = float32(i) * 0.25
	}
	if _, err := g.AddFloat32("QR", []int{8, 3}, 2, 1, vals); err != nil {
		t.Fatal(err)
	}
	blob, err := w.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel()
	var csv []byte
	var stats, prunedAll *rsql.ScanStats
	k.Go("q", func(p *sim.Proc) {
		b := ioengine.Bind(p, &memEngine{data: blob, latency: 0.0005}, ioengine.Options{})
		f, err := hdf5lite.Open(b)
		if err != nil {
			panic(err)
		}
		tab, err := NewHDF5(f, "model/physics/QR", []string{"row", "col"}, WithConst("step", 7))
		if err != nil {
			panic(err)
		}
		out, st, err := rsql.QueryArrays(map[string]rsql.ArrayTable{"h": tab}, `SELECT row, col, value FROM h WHERE row >= 4 AND row < 6 AND step = 7`, rsql.ArrayQueryOpts{})
		if err != nil {
			panic(err)
		}
		csv, stats = out.WriteCSV(), st
		_, prunedAll, err = rsql.QueryArrays(map[string]rsql.ArrayTable{"h": tab}, `SELECT value FROM h WHERE step = 8`, rsql.ArrayQueryOpts{})
		if err != nil {
			panic(err)
		}
	})
	k.Run()
	// row in [4,6) widens to the closed interval [4,6], which touches the
	// rows-[6,7] chunk too — conservative pruning keeps 2 of 4 chunks; the
	// re-evaluated WHERE still drops row 6's rows from the result.
	if stats.ChunksScanned != 2 || stats.ChunksSkipped != 2 {
		t.Fatalf("row-range pruning over hdf5 chunks: %+v", stats)
	}
	want := "row,col,value\n4,0,3\n4,1,3.25\n4,2,3.5\n5,0,3.75\n5,1,4\n5,2,4.25\n"
	if string(csv) != want {
		t.Fatalf("hdf5 query result:\n%swant\n%s", csv, want)
	}
	if prunedAll.ChunksScanned != 0 || prunedAll.ChunksSkipped != 4 {
		t.Fatalf("const mismatch should skip every chunk: %+v", prunedAll)
	}
}

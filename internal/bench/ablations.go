package bench

import (
	"fmt"

	"scidp/internal/core"
	"scidp/internal/sim"
	"scidp/internal/solutions"
	"scidp/internal/workloads"
)

// AblationBlockGranularity varies SciDP's dummy-block size (Section
// III-B: chunk-aligned by default, tunable finer "to the actual size of
// one data grid" or coarser). Finer blocks mean more tasks and more task
// startup; coarser blocks mean less parallelism.
func AblationBlockGranularity(s Scale, timestamps int) (*Table, error) {
	t := &Table{
		ID:     "Ablation A1",
		Title:  "SciDP dummy-block granularity (rows per block)",
		Header: []string{"rows/block", "map tasks", "total(s)"},
	}
	for _, rows := range []int{1, s.Levels / 2, s.Levels} {
		if rows < 1 {
			continue
		}
		rep, err := RunOne(s, timestamps, 0, solutions.AnalysisNone, "scidp",
			&solutions.SciDPOptions{RowsPerBlock: rows})
		if err != nil {
			return nil, err
		}
		tasks := timestamps * ((s.Levels + rows - 1) / rows)
		t.AddRow(fmt.Sprintf("%d", rows), fmt.Sprintf("%d", tasks), secs(rep.TotalSeconds))
	}
	t.Notes = append(t.Notes, "chunk-aligned default = one block per storage chunk; the paper tunes this per workload")
	return t, nil
}

// AblationVariableSubsetting measures the Data Mapper's mapping-table
// build time with and without variable subsetting (Section III-B: "SciDP
// will ignore the unrelated variables and attributes ... and minimize the
// time to build the mapping table").
func AblationVariableSubsetting(s Scale, timestamps int) (*Table, error) {
	blobs, ds, err := dataset(s, timestamps)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "Ablation A2",
		Title:  "Variable subsetting: mapping-table build time and virtual files",
		Header: []string{"mapped vars", "mapping time(s)", "virtual files"},
	}
	for _, subset := range []bool{true, false} {
		env := solutions.NewEnv(s.EnvConfig(0))
		workloads.Install(env.PFS, blobs)
		var elapsed float64
		var files int
		var rerr error
		env.K.Go("driver", func(p *sim.Proc) {
			opts := core.MapOptions{RowsPerBlock: s.Levels}
			if subset {
				opts.Vars = []string{"QR"}
			}
			m := core.NewMapper(env.HDFS, env.Registry, "/abl")
			start := p.Now()
			mapping, err := m.MapPath(p, env.Mount(env.BD.Node(0)), ds.Spec.Dir, opts)
			if err != nil {
				rerr = err
				return
			}
			elapsed = p.Now() - start
			files = len(mapping.VirtualPaths())
		})
		env.K.Run()
		if rerr != nil {
			return nil, rerr
		}
		label := "all 23"
		if subset {
			label = "QR only"
		}
		t.AddRow(label, fmt.Sprintf("%.2f", elapsed), fmt.Sprintf("%d", files))
	}
	return t, nil
}

// AblationWholeBlockRead contrasts SciDP's single whole-block PFS request
// against Hadoop's 64 KB streaming reads (Section III-A: "The original
// Hadoop reads 64KB data at a time ... SciDP reads the entire block in a
// single I/O request to maximize the bandwidth").
func AblationWholeBlockRead(s Scale) (*Table, error) {
	bs := s.ByteScale()
	blockBytes := int64(128 << 20 / bs) // one logical 128 MB block
	streamChunk := int64(64 << 10 / bs)
	if streamChunk < 1 {
		streamChunk = 1
	}
	t := &Table{
		ID:     "Ablation A3",
		Title:  "Whole-block single read vs 64 KB streaming reads (one 128 MB logical block)",
		Header: []string{"read style", "requests", "time(s)"},
	}
	elapsed := func(chunk int64) (float64, int) {
		env := solutions.NewEnv(s.EnvConfig(0))
		env.PFS.Put("/abl/block", make([]byte, blockBytes))
		var out float64
		reqs := 0
		env.K.Go("driver", func(p *sim.Proc) {
			mount := env.Mount(env.BD.Node(0))
			start := p.Now()
			for off := int64(0); off < blockBytes; off += chunk {
				n := chunk
				if off+n > blockBytes {
					n = blockBytes - off
				}
				if _, err := mount.ReadAt(p, "/abl/block", off, n); err != nil {
					return
				}
				reqs++
			}
			out = p.Now() - start
		})
		env.K.Run()
		return out, reqs
	}
	whole, wr := elapsed(blockBytes)
	stream, sr := elapsed(streamChunk)
	t.AddRow("whole block (SciDP)", fmt.Sprintf("%d", wr), secs(whole))
	t.AddRow("64 KB streaming (Hadoop)", fmt.Sprintf("%d", sr), secs(stream))
	t.Notes = append(t.Notes, fmt.Sprintf("streaming is %.1fx slower: per-request OST latency dominates", stream/whole))
	return t, nil
}

// AblationOverlap contrasts SciDP's overlapped read+compute against a
// staged variant (RunSciDPStaged) that reads every slab in a first wave,
// barriers, then plots in a second wave — the copy-then-process structure
// of the baselines, but with SciDP's selective reads.
func AblationOverlap(s Scale, timestamps int) (*Table, error) {
	t := &Table{
		ID:     "Ablation A4",
		Title:  "Overlapping PFS reads with computation vs staged read-then-process",
		Header: []string{"strategy", "total(s)"},
	}
	overlapped, err := RunOne(s, timestamps, 0, solutions.AnalysisNone, "scidp", nil)
	if err != nil {
		return nil, err
	}
	blobs, ds, err := dataset(s, timestamps)
	if err != nil {
		return nil, err
	}
	env := solutions.NewEnv(s.EnvConfig(0))
	workloads.Install(env.PFS, blobs)
	var staged *solutions.Report
	var rerr error
	env.K.Go("driver", func(p *sim.Proc) {
		staged, rerr = solutions.RunSciDPStaged(p, env, &solutions.Workload{Dataset: ds, Var: "QR"})
	})
	env.K.Run()
	if rerr != nil {
		return nil, rerr
	}
	t.AddRow("overlapped (SciDP)", secs(overlapped.TotalSeconds))
	t.AddRow("staged (read all, then plot)", secs(staged.TotalSeconds))
	t.Notes = append(t.Notes, "the staged variant still subsets variables; the remaining gap is the overlap SciDP exploits")
	return t, nil
}

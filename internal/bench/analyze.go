package bench

import (
	"scidp/internal/chaos"
	"scidp/internal/ioengine"
	"scidp/internal/obs"
	"scidp/internal/obs/analyze"
	"scidp/internal/sim"
	"scidp/internal/solutions"
	"scidp/internal/workloads"
)

// AnalyzeRun executes the canonical SciDP pipeline once on a fresh
// fault-capable testbed with a private registry and returns the
// post-run analysis, the pipeline report, and the registry itself.
// plan may be nil (no chaos); workers sets the ComputePool size (0 =
// inline). Two calls with identical arguments produce byte-identical
// analysis JSON — the regression property cmd/checkanalyze enforces.
func AnalyzeRun(s Scale, timestamps int, plan *chaos.Plan, workers int, label string) (*analyze.Report, *solutions.Report, *obs.Registry, error) {
	return AnalyzeRunTier(s, timestamps, plan, workers, label, ioengine.TierConfig{})
}

// AnalyzeRunTier is AnalyzeRun with a cooperative cache tier attached
// to the testbed (zero TierConfig: no tier — identical to AnalyzeRun).
// The report's cache_tier section then breaks tier-arbitrated reads
// down by serving level.
func AnalyzeRunTier(s Scale, timestamps int, plan *chaos.Plan, workers int, label string, tier ioengine.TierConfig) (*analyze.Report, *solutions.Report, *obs.Registry, error) {
	blobs, ds, err := dataset(s, timestamps)
	if err != nil {
		return nil, nil, nil, err
	}
	reg := obs.New()
	reg.SetProcess(label)
	cfg := FaultsEnvConfig(s)
	cfg.Obs = reg
	cfg.Chaos = plan
	cfg.Workers = workers
	cfg.CacheTier = tier
	env := solutions.NewEnv(cfg)
	defer env.Close()
	workloads.Install(env.PFS, blobs)
	wl := &solutions.Workload{Dataset: ds, Var: "QR", Analysis: solutions.AnalysisNone}

	var rep *solutions.Report
	var runErr error
	env.K.Go("driver", func(p *sim.Proc) {
		rep, runErr = solutions.RunSciDP(p, env, wl)
	})
	env.K.Run()
	env.ExportSimMetrics()
	if runErr != nil {
		return nil, nil, nil, runErr
	}
	return analyze.Analyze(reg), rep, reg, nil
}

package bench

import (
	"bytes"
	"testing"

	"scidp/internal/obs/analyze"
)

// analyzeJSON runs the canonical pipeline and returns the analysis
// JSON.
func analyzeJSON(t *testing.T, rate float64, workers int) []byte {
	t.Helper()
	s := QuickScale()
	p := FaultsPlan(analyzeSeed, analyzeBaselineJCT(t, s), rate)
	if rate == 0 {
		p = nil
	}
	rep, _, _, err := AnalyzeRun(s, 4, p, workers, "analyze-test")
	if err != nil {
		t.Fatal(err)
	}
	j, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return j
}

const analyzeSeed = 42

var baselineJCT float64

func analyzeBaselineJCT(t *testing.T, s Scale) float64 {
	t.Helper()
	if baselineJCT == 0 {
		_, rep, _, err := AnalyzeRun(s, 4, nil, 0, "analyze-baseline")
		if err != nil {
			t.Fatal(err)
		}
		baselineJCT = rep.TotalSeconds
	}
	return baselineJCT
}

// TestAnalyzeReportDeterministic is the pipeline-level acceptance
// property: same seed (including under a chaos plan and at any
// ComputePool worker count) ⇒ byte-identical analysis JSON.
func TestAnalyzeReportDeterministic(t *testing.T) {
	plain1 := analyzeJSON(t, 0, 0)
	plain2 := analyzeJSON(t, 0, 0)
	if !bytes.Equal(plain1, plain2) {
		t.Error("plain analyze JSON differs between identical runs")
	}
	workers4 := analyzeJSON(t, 0, 4)
	if !bytes.Equal(plain1, workers4) {
		t.Error("analyze JSON differs between workers=0 and workers=4")
	}
	chaos1 := analyzeJSON(t, 0.1, 0)
	chaos2 := analyzeJSON(t, 0.1, 4)
	if !bytes.Equal(chaos1, chaos2) {
		t.Error("chaos analyze JSON differs between identical same-seed runs")
	}
	if bytes.Equal(plain1, chaos1) {
		t.Error("chaos plan left the analysis unchanged — injection inert?")
	}
}

// TestAnalyzeReportShape asserts the canonical run produces the
// artifacts the CLI prints: jobs with phases, attribution, a critical
// path that tiles the job, and a resource ranking.
func TestAnalyzeReportShape(t *testing.T) {
	rep, solRep, _, err := AnalyzeRun(QuickScale(), 4, nil, 0, "analyze-shape")
	if err != nil {
		t.Fatal(err)
	}
	if solRep.TotalSeconds <= 0 {
		t.Fatalf("pipeline report: %+v", solRep)
	}
	if len(rep.Jobs) == 0 {
		t.Fatal("no jobs analyzed")
	}
	if len(rep.Resources) == 0 {
		t.Fatal("no resources ranked")
	}
	for _, j := range rep.Jobs {
		if len(j.CriticalPath.Segments) == 0 {
			t.Fatalf("job %s has no critical path", j.Name)
		}
		last := j.Start
		for _, seg := range j.CriticalPath.Segments {
			if seg.Start != last {
				t.Fatalf("job %s: critical path gap at %v", j.Name, last)
			}
			last = seg.End
		}
		if last != j.End {
			t.Fatalf("job %s: critical path stops at %v, job ends %v", j.Name, last, j.End)
		}
		if tot := j.Buckets.Total(); len(j.Phases) > 0 && tot <= 0 {
			t.Fatalf("job %s attributed no time: %+v", j.Name, j.Buckets)
		}
	}
	// The canonical pipeline does real input I/O: some job's critical
	// path must carry a nonzero I/O share.
	var io float64
	for _, j := range rep.Jobs {
		io += j.CriticalPath.Buckets.IO
	}
	if io <= 0 {
		t.Fatal("no critical-path I/O anywhere — span chain broken?")
	}
}

// BenchmarkAnalyze measures the analyzer itself over a real pipeline
// registry — the figure BENCH_obs.json records as post-run overhead.
func BenchmarkAnalyze(b *testing.B) {
	_, _, reg, err := AnalyzeRun(QuickScale(), 4, nil, 0, "analyze-bench")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rep := analyze.Analyze(reg); len(rep.Jobs) == 0 {
			b.Fatal("empty report")
		}
	}
}

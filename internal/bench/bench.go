// Package bench regenerates every table and figure of the SciDP paper's
// evaluation (Section V): Figure 2 (HDFS vs. Lustre connector), Tables
// I-III, Figure 5 (total execution time across solutions and dataset
// sizes), Figure 6 (I/O bandwidth vs. reader count), Figure 7 (per-task
// time decomposition), Figure 8 (scale-out), and Figure 9 (SQL analysis),
// plus ablations of SciDP's design choices. Each experiment returns a
// Table whose rows mirror what the paper reports; absolute numbers are
// virtual seconds on the simulated testbed, so the shapes — who wins, by
// what factor, where crossovers fall — are the reproduction target.
package bench

import (
	"fmt"
	"strings"

	"scidp/internal/obs"
	"scidp/internal/solutions"
	"scidp/internal/workloads"
)

// Obs, when set before running experiments, attaches the observability
// registry to every testbed the experiments build: runs produce spans,
// component metrics, and resource timelines in it, ready for the
// Chrome-trace and Prometheus exporters. Leave nil (the default) for
// instrumentation-free runs.
var Obs *obs.Registry

// obsEnvConfig stamps the shared registry into a testbed config and
// names the run's process group (how trace rows are grouped per run).
func obsEnvConfig(cfg solutions.EnvConfig, process string) solutions.EnvConfig {
	if Obs != nil {
		cfg.Obs = Obs
		Obs.SetProcess(process)
	}
	return cfg
}

// PaperVarRawBytes is the paper's per-variable raw size: "Each variable
// is about 298MB in raw binary format".
const PaperVarRawBytes = 298e6

// PaperLevels is the NU-WRF vertical resolution (50 levels).
const PaperLevels = 50

// Table is one experiment's output.
type Table struct {
	// ID names the paper artifact ("Figure 5").
	ID string
	// Title describes the experiment.
	Title string
	// Header labels the columns.
	Header []string
	// Rows are the data rows, already formatted.
	Rows [][]string
	// Notes carry caveats (scaling, substitutions).
	Notes []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Markdown renders the table as a GitHub-flavored markdown section —
// what EXPERIMENTS.md embeds.
func (t *Table) Markdown() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "## %s — %s\n\n", t.ID, t.Title)
	row := func(cells []string) {
		sb.WriteString("|")
		for _, c := range cells {
			sb.WriteString(" " + c + " |")
		}
		sb.WriteByte('\n')
	}
	row(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	row(sep)
	for _, r := range t.Rows {
		row(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "\n*%s*\n", n)
	}
	return sb.String()
}

// String renders the table column-aligned.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// Scale fixes the generated-data geometry and the derived scale factors.
type Scale struct {
	// Levels, Lat, Lon are the generated grid dimensions.
	Levels, Lat, Lon int
	// Vars is the variable count (23 in the paper).
	Vars int
}

// DefaultScale is the geometry the benchmarks run at: 10x40x40 cells per
// variable, 23 variables — 1/4656 of the paper's bytes per variable.
func DefaultScale() Scale {
	return Scale{Levels: 10, Lat: 40, Lon: 40, Vars: workloads.NUWRFVars}
}

// QuickScale is a smaller geometry for tests and -quick runs.
func QuickScale() Scale {
	return Scale{Levels: 5, Lat: 24, Lon: 24, Vars: 8}
}

// ByteScale returns logical-bytes-per-actual-byte for this geometry.
func (s Scale) ByteScale() float64 {
	ourRaw := float64(s.Levels*s.Lat*s.Lon) * 4
	return PaperVarRawBytes / ourRaw
}

// LevelScale returns paper-levels-per-generated-level.
func (s Scale) LevelScale() float64 { return float64(PaperLevels) / float64(s.Levels) }

// Spec builds the generator spec for a timestamp count.
func (s Scale) Spec(timestamps int) workloads.NUWRFSpec {
	return workloads.NUWRFSpec{
		Timestamps: timestamps,
		Levels:     s.Levels, Lat: s.Lat, Lon: s.Lon,
		Vars: s.Vars, Deflate: 1, Dir: "/nuwrf",
	}
}

// EnvConfig builds the solution testbed config for this scale.
func (s Scale) EnvConfig(nodes int) solutions.EnvConfig {
	cfg := solutions.DefaultEnvConfig(s.ByteScale(), s.LevelScale())
	if nodes > 0 {
		cfg.Nodes = nodes
	}
	return cfg
}

// datasetCache memoizes generated blobs per (scale, timestamps): the
// paper's sweep reuses one dataset per size across the five solutions.
type datasetKey struct {
	scale Scale
	ts    int
}

var blobCache = map[datasetKey]cachedDataset{}

type cachedDataset struct {
	blobs map[string][]byte
	ds    *workloads.Dataset
}

// dataset returns (possibly cached) generated blobs for a sweep point.
func dataset(s Scale, timestamps int) (map[string][]byte, *workloads.Dataset, error) {
	key := datasetKey{scale: s, ts: timestamps}
	if c, ok := blobCache[key]; ok {
		return c.blobs, c.ds, nil
	}
	blobs, ds, err := workloads.GenerateBlobs(s.Spec(timestamps))
	if err != nil {
		return nil, nil, err
	}
	blobCache[key] = cachedDataset{blobs: blobs, ds: ds}
	return blobs, ds, nil
}

// ClearCache drops memoized datasets (benchmarks that sweep many sizes
// can use it to bound memory).
func ClearCache() { blobCache = map[datasetKey]cachedDataset{} }

func secs(v float64) string { return fmt.Sprintf("%.1f", v) }

func ratio(v float64) string { return fmt.Sprintf("%.2fx", v) }

package bench

import (
	"strconv"
	"strings"
	"testing"

	"scidp/internal/solutions"
)

// cell parses a numeric table cell (strips trailing "x").
func cell(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(strings.Fields(s)[0], "x")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q: %v", s, err)
	}
	return v
}

func TestTable1And2Shape(t *testing.T) {
	t1 := Table1()
	if len(t1.Rows) != 5 || t1.Rows[4][0] != "SciDP" || t1.Rows[4][1] != "No" || t1.Rows[4][2] != "No" {
		t.Fatalf("Table I = %+v", t1.Rows)
	}
	t2 := Table2()
	if len(t2.Rows) != 2 || t2.Rows[0][0] != "Img-only" || t2.Rows[1][3] != "Yes" {
		t.Fatalf("Table II = %+v", t2.Rows)
	}
	if !strings.Contains(t1.String(), "SciDP") {
		t.Fatal("render missing SciDP")
	}
}

func TestFig5AndTable3Shape(t *testing.T) {
	s := QuickScale()
	sizes := []int{4, 8}
	r, err := RunFig5(s, sizes)
	if err != nil {
		t.Fatal(err)
	}
	// Monotone in dataset size for every solution.
	for _, name := range SolutionOrder {
		if r.Totals[name][8] <= r.Totals[name][4] {
			t.Errorf("%s: total should grow with dataset size: %v vs %v", name, r.Totals[name][4], r.Totals[name][8])
		}
	}
	// SciDP wins at every size; naive loses at every size.
	for _, ts := range sizes {
		for _, name := range SolutionOrder {
			if name == "scidp" {
				continue
			}
			if r.Totals["scidp"][ts] >= r.Totals[name][ts] {
				t.Errorf("scidp (%v) should beat %s (%v) at %d ts", r.Totals["scidp"][ts], name, r.Totals[name][ts], ts)
			}
		}
		if r.Totals["naive"][ts] <= r.Totals["vanilla-hadoop"][ts] {
			t.Errorf("naive should be slowest at %d ts", ts)
		}
	}
	tab := Fig5Table(r)
	if len(tab.Rows) != len(SolutionOrder)*len(sizes) {
		t.Fatalf("Fig5 rows = %d", len(tab.Rows))
	}
	t3 := Table3(r)
	if len(t3.Rows) != 4 {
		t.Fatalf("Table3 rows = %d", len(t3.Rows))
	}
	// Speedups all > 1, and naive's is the largest.
	var naive, minSpeed float64 = 0, 1e18
	for _, row := range t3.Rows {
		v := cell(t, row[len(row)-1])
		if v <= 1 {
			t.Errorf("speedup %s = %v, want > 1", row[0], v)
		}
		if row[0] == "naive" {
			naive = v
		}
		if v < minSpeed {
			minSpeed = v
		}
	}
	if naive < 4*minSpeed {
		t.Errorf("naive speedup (%v) should dwarf the best existing solution's (%v)", naive, minSpeed)
	}
}

func TestFig2Shape(t *testing.T) {
	tab, err := Fig2()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(Fig2Workloads) {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		hd, lu := cell(t, row[1]), cell(t, row[2])
		if hd <= 0 || lu <= 0 {
			t.Fatalf("non-positive times: %v", row)
		}
		if lu <= hd {
			t.Errorf("%s: native HDFS (%v) should beat the connector (%v)", row[0], hd, lu)
		}
	}
}

func TestFig6Shape(t *testing.T) {
	s := QuickScale()
	tab, err := Fig6(s, 16, []int{1, 4, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		ncInd := cell(t, row[1])
		mpiColl := cell(t, row[3])
		scidp := cell(t, row[4])
		equal := cell(t, row[5])
		if ncInd <= 0 || mpiColl <= 0 || scidp <= 0 {
			t.Fatalf("non-positive bandwidth: %v", row)
		}
		if equal <= scidp {
			t.Errorf("SciDP Equal (%v) must exceed SciDP (%v): raw > compressed", equal, scidp)
		}
		if mpiColl < ncInd {
			t.Errorf("MPI Coll (%v) is the ideal; NC Ind (%v) should not beat it", mpiColl, ncInd)
		}
	}
	// Bandwidth grows with reader count for SciDP.
	if cell(t, tab.Rows[2][4]) <= cell(t, tab.Rows[0][4]) {
		t.Error("SciDP bandwidth should grow with readers")
	}
}

func TestFig7Shape(t *testing.T) {
	s := QuickScale()
	tab, err := Fig7(s, 4)
	if err != nil {
		t.Fatal(err)
	}
	perLevel := map[string][3]float64{}
	for _, row := range tab.Rows {
		perLevel[row[0]] = [3]float64{cell(t, row[1]), cell(t, row[2]), cell(t, row[3])}
	}
	// Convert dominates the text paths and is tiny for SciDP.
	for _, name := range []string{"vanilla-hadoop", "porthadoop"} {
		if perLevel[name][1] <= perLevel["scidp"][1] {
			t.Errorf("%s convert (%v) should dwarf scidp's (%v)", name, perLevel[name][1], perLevel["scidp"][1])
		}
		if perLevel[name][1] <= perLevel[name][2] {
			t.Errorf("%s: convert (%v) should dominate plot (%v)", name, perLevel[name][1], perLevel[name][2])
		}
	}
	// Plot cost is roughly equal for the parallel solutions and slightly
	// lower for naive.
	if perLevel["naive"][2] >= perLevel["scidp"][2] {
		t.Errorf("naive plot (%v) should be below parallel plot (%v)", perLevel["naive"][2], perLevel["scidp"][2])
	}
}

func TestFig8Shape(t *testing.T) {
	s := QuickScale()
	tab, err := Fig8(s, 128, []int{4, 8, 16})
	if err != nil {
		t.Fatal(err)
	}
	t4, t8, t16 := cell(t, tab.Rows[0][2]), cell(t, tab.Rows[1][2]), cell(t, tab.Rows[2][2])
	if !(t4 > t8 && t8 > t16) {
		t.Fatalf("scale-out should reduce time: %v %v %v", t4, t8, t16)
	}
	// Near-optimal speedup: doubling nodes gives >= 1.5x.
	if t4/t8 < 1.5 || t8/t16 < 1.5 {
		t.Errorf("speedups %v and %v below near-optimal band", t4/t8, t8/t16)
	}
}

func TestFig9Shape(t *testing.T) {
	s := QuickScale()
	tab, err := Fig9(s, []int{4, 8})
	if err != nil {
		t.Fatal(err)
	}
	none4, none8 := cell(t, tab.Rows[0][1]), cell(t, tab.Rows[0][2])
	hl8 := cell(t, tab.Rows[1][2])
	top8 := cell(t, tab.Rows[2][2])
	if none8 <= none4 {
		t.Error("no-analysis should grow with size")
	}
	// Figure 9: highlight ~ no analysis; top 1% clearly slower.
	if hl8 > none8*1.2 {
		t.Errorf("highlight (%v) should be close to no-analysis (%v)", hl8, none8)
	}
	if top8 <= hl8 {
		t.Errorf("top 1%% (%v) should exceed highlight (%v)", top8, hl8)
	}
}

func TestAblations(t *testing.T) {
	s := QuickScale()
	a1, err := AblationBlockGranularity(s, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(a1.Rows) < 2 {
		t.Fatalf("A1 rows = %d", len(a1.Rows))
	}
	a2, err := AblationVariableSubsetting(s, 4)
	if err != nil {
		t.Fatal(err)
	}
	sub, all := cell(t, a2.Rows[0][1]), cell(t, a2.Rows[1][1])
	if sub > all {
		t.Errorf("subset mapping (%v) should not exceed full mapping (%v)", sub, all)
	}
	if cell(t, a2.Rows[0][2]) >= cell(t, a2.Rows[1][2]) {
		t.Error("subsetting should create fewer virtual files")
	}
	a3, err := AblationWholeBlockRead(s)
	if err != nil {
		t.Fatal(err)
	}
	if cell(t, a3.Rows[1][2]) <= cell(t, a3.Rows[0][2]) {
		t.Error("streaming reads should be slower than a whole-block read")
	}
	a4, err := AblationOverlap(s, 8)
	if err != nil {
		t.Fatal(err)
	}
	if cell(t, a4.Rows[1][1]) < cell(t, a4.Rows[0][1]) {
		t.Error("staged should not beat overlapped")
	}
}

func TestRunOneUnknownSolution(t *testing.T) {
	if _, err := RunOne(QuickScale(), 2, 0, solutions.AnalysisNone, "ghost", nil); err == nil {
		t.Fatal("unknown solution should fail")
	}
}

func TestScaleFactors(t *testing.T) {
	s := DefaultScale()
	if s.ByteScale() < 100 || s.LevelScale() != 5 {
		t.Fatalf("scale = %v / %v", s.ByteScale(), s.LevelScale())
	}
	spec := s.Spec(7)
	if spec.Timestamps != 7 || spec.Vars != 23 {
		t.Fatalf("spec = %+v", spec)
	}
}

func TestWorkflowShape(t *testing.T) {
	s := QuickScale()
	tab, err := Workflow(s, 12, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	offEnd, inEnd := cell(t, tab.Rows[0][2]), cell(t, tab.Rows[1][2])
	offLag, inLag := cell(t, tab.Rows[0][3]), cell(t, tab.Rows[1][3])
	if inEnd > offEnd {
		t.Errorf("in-situ end-to-end (%v) should not exceed offline (%v)", inEnd, offEnd)
	}
	if inLag > offLag {
		t.Errorf("in-situ lag (%v) should not exceed offline lag (%v)", inLag, offLag)
	}
}

func TestFig8ScaleUpShape(t *testing.T) {
	s := QuickScale()
	tab, err := Fig8ScaleUp(s, 128, []int{2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	t2, t8 := cell(t, tab.Rows[0][2]), cell(t, tab.Rows[2][2])
	if t8 >= t2 {
		t.Fatalf("scale-up should reduce time: %v -> %v", t2, t8)
	}
	if t2/t8 < 2 {
		t.Fatalf("4x slots should give >= 2x speedup, got %v", t2/t8)
	}
}

func TestTableMarkdown(t *testing.T) {
	tab := Table1()
	md := tab.Markdown()
	if !strings.Contains(md, "## Table I") || !strings.Contains(md, "| SciDP | No | No | Parallel |") {
		t.Fatalf("markdown = %q", md)
	}
	tab.Notes = append(tab.Notes, "a note")
	if !strings.Contains(tab.Markdown(), "*a note*") {
		t.Fatal("note missing from markdown")
	}
}

// The cache experiment: the tiered cooperative cache (node-local burst
// buffers + peer fetch + cost-aware eviction) under two overlapping
// SciDP jobs reading the same dataset, swept across tier capacity and
// eviction policy, plus a multi-tenant arm replaying the scidpd trace
// with the tier attached. Every tiered point must reproduce the
// cache-off job outputs byte for byte and be same-seed deterministic at
// any data-plane worker count — a cache that changes results is a bug,
// not a speedup.
package bench

import (
	"fmt"

	"scidp/internal/ioengine"
	"scidp/internal/obs"
	"scidp/internal/sim"
	"scidp/internal/solutions"
	"scidp/internal/tenant/loadgen"
	"scidp/internal/workloads"
)

// CacheRun is one (capacity, policy) sweep point's outcome. The
// baseline point carries Policy "off" and zero capacity.
type CacheRun struct {
	// CapacityBytes is the per-node burst-buffer capacity (0 = tier off).
	CapacityBytes int64 `json:"capacity_bytes"`
	// Policy is the eviction policy ("lru", "cost", or "off").
	Policy string `json:"policy"`
	// JCTSeconds is the virtual makespan of the two overlapping jobs.
	JCTSeconds float64 `json:"jct_seconds"`
	// SpeedupVsOff is baseline makespan over this point's makespan (1.0
	// for the baseline itself).
	SpeedupVsOff float64 `json:"speedup_vs_off"`
	// TailJCTSeconds is the trailing job's own start-to-finish time —
	// the job whose reads the tier serves, so the cache's beneficiary.
	TailJCTSeconds float64 `json:"tail_jct_seconds"`
	// TailSpeedupVsOff is the baseline's tail JCT over this point's.
	TailSpeedupVsOff float64 `json:"tail_speedup_vs_off"`
	// Per-level tier traffic: reads and bytes served from the local
	// buffer, a peer's buffer, and the OSTs.
	LocalHits  int64 `json:"local_hits"`
	PeerHits   int64 `json:"peer_hits"`
	OSTReads   int64 `json:"ost_reads"`
	LocalBytes int64 `json:"local_bytes"`
	PeerBytes  int64 `json:"peer_bytes"`
	OSTBytes   int64 `json:"ost_bytes"`
	Evictions  int64 `json:"evictions"`
	Promotions int64 `json:"promotions"`
	// CrossJobHitRate is the tier hit rate. Each job reads every chunk
	// once (intra-job reuse is absorbed by the per-job chunk cache
	// before the tier is consulted), so tier hits are blocks one job
	// admitted and the other reused.
	CrossJobHitRate float64 `json:"cross_job_hit_rate"`
	// OutputDigest hashes the audited outputs of both jobs.
	OutputDigest string `json:"output_digest"`
	// ExportDigest hashes the run's Chrome-trace + Prometheus exports.
	ExportDigest string `json:"export_digest"`
	// Deterministic reports whether the workers=1 and workers=4 runs of
	// this point produced identical output and export digests.
	Deterministic bool `json:"deterministic"`
	// OutputsMatchBaseline reports whether this point's job outputs are
	// byte-identical to the cache-off baseline's (the tier must never
	// change what jobs compute).
	OutputsMatchBaseline bool `json:"outputs_match_baseline"`
}

// CacheMT is the multi-tenant arm: the mt trace replayed with the tier
// attached to the scidpd service cluster, against the tier-off replay.
type CacheMT struct {
	HorizonSeconds float64 `json:"horizon_seconds"`
	CapacityBytes  int64   `json:"capacity_bytes"`
	Policy         string  `json:"policy"`
	Completed      int     `json:"completed"`
	// HitRate is the tier hit rate across all tenants' reads — the
	// repeated-catalog workload's cross-job reuse.
	HitRate    float64 `json:"hit_rate"`
	LocalHits  int64   `json:"local_hits"`
	PeerHits   int64   `json:"peer_hits"`
	OSTReads   int64   `json:"ost_reads"`
	Promotions int64   `json:"promotions"`
	// P99 / goodput with the tier on, and the tier-off baseline's.
	P99Seconds       float64 `json:"p99_seconds"`
	P99SecondsOff    float64 `json:"p99_seconds_off"`
	GoodputJobsPerKs float64 `json:"goodput_jobs_per_ks"`
	GoodputOff       float64 `json:"goodput_jobs_per_ks_off"`
	// Deterministic reports whether the same-seed tiered repeat
	// reproduced both the completion and export digests.
	Deterministic bool `json:"deterministic"`
}

// CacheResult is the machine-readable cache artifact (BENCH_cache.json).
type CacheResult struct {
	Solution   string     `json:"solution"`
	Timestamps int        `json:"timestamps"`
	Runs       []CacheRun `json:"runs"`
	MT         *CacheMT   `json:"mt"`
}

// BestSpeedup is the -cache-floor guard's measurement: the largest JCT
// speedup any tiered point achieved over the cache-off baseline, on
// either the pair makespan or the trailing (beneficiary) job's own JCT.
func (r *CacheResult) BestSpeedup() float64 {
	best := 0.0
	for _, run := range r.Runs {
		if run.Policy == "off" {
			continue
		}
		if run.SpeedupVsOff > best {
			best = run.SpeedupVsOff
		}
		if run.TailSpeedupVsOff > best {
			best = run.TailSpeedupVsOff
		}
	}
	return best
}

// cacheOutcome is one execution's raw measurements.
type cacheOutcome struct {
	jct          float64 // makespan of the overlapping pair
	tailJCT      float64 // the trailing job's own start-to-finish time
	outputDigest string
	exportDigest string
	stats        ioengine.TierStats
}

// cacheOneRun executes two overlapping SciDP jobs ("cache-a" and
// "cache-b", namespaced mirrors and results in one env) over the same
// dataset with the given tier configuration, audits both output trees,
// and snapshots the tier counters. The zero TierConfig is the cache-off
// baseline.
func cacheOneRun(s Scale, timestamps, workers int, tier ioengine.TierConfig) (*cacheOutcome, error) {
	blobs, ds, err := dataset(s, timestamps)
	if err != nil {
		return nil, err
	}
	// One fixed process label for every point: exports must be
	// byte-identical across worker counts, so neither the worker count
	// nor the tier parameters may appear in exported strings.
	reg := obs.New()
	reg.SetProcess("cache-sweep")
	cfg := s.EnvConfig(4)
	// The paper's 8 slots per node: with 32 concurrent tasks the shared
	// interlink and OST queues are the bottleneck, which is the regime a
	// read cache exists for (2 slots/node is compute-bound and would
	// hide any I/O win).
	cfg.SlotsPerNode = 8
	// Read-intensive analysis mix: light rendering instead of the full
	// visualization pipeline, so read + decode is a first-order share of
	// each task. Under the paper's plot-dominated cost model the tier's
	// savings vanish into slot idle time inside compute-bound waves —
	// measured and reported in EXPERIMENTS.md; the byte traffic and hit
	// rates are identical either way.
	cfg.Cost.PlotPerLevel = 0.05
	cfg.Cost.PlotPerLevelSeq = 0.05
	cfg.Obs = reg
	cfg.Workers = workers
	cfg.CacheTier = tier
	env := solutions.NewEnv(cfg)
	defer env.Close()
	workloads.Install(env.PFS, blobs)
	// Two distinct consumers of one dataset: job A renders the full
	// timestamp range, job B re-analyzes the tail window with highlight
	// analysis — the classic shared-input scenario the tier exists for.
	// B starts staggered (jobs launched at the same instant proceed in
	// deterministic lockstep and reach every chunk before the other has
	// admitted it), and its four-file offset shifts its task-to-slot
	// phase against A's by half a node, so B's reads land both on nodes
	// that decoded the chunk for A (local hits) and on nodes that did
	// not (peer fetches from the holder).
	tail := *ds
	if off := 4; len(ds.Files) > off {
		tail.Files = ds.Files[off:]
		tail.Spec.Timestamps = len(tail.Files)
	}
	jobs := []struct {
		name  string
		wl    *solutions.Workload
		delay float64
	}{
		{"cache-a", &solutions.Workload{Dataset: ds, Var: "QR", Analysis: solutions.AnalysisNone}, 0},
		{"cache-b", &solutions.Workload{Dataset: &tail, Var: "QR", Analysis: solutions.AnalysisHighlight}, 5},
	}
	out := &cacheOutcome{}
	var runErr error
	wg := env.K.NewWaitGroup()
	wg.Add(len(jobs))
	for i, job := range jobs {
		i, job := i, job
		env.K.Go(job.name, func(p *sim.Proc) {
			defer wg.Done()
			p.Sleep(job.delay)
			start := p.Now()
			if _, err := solutions.RunSciDPWith(p, env, job.wl, solutions.SciDPOptions{Name: job.name}); err != nil && runErr == nil {
				runErr = fmt.Errorf("%s: %w", job.name, err)
			}
			if i == 1 {
				out.tailJCT = p.Now() - start
			}
		})
	}
	env.K.Go("auditor", func(p *sim.Proc) {
		p.Wait(wg)
		out.jct = p.Now() // makespan of the overlapping pair
		if runErr != nil {
			return
		}
		out.outputDigest, _, runErr = auditDigest(p, env, "/results/cache-a", "/results/cache-b")
	})
	env.K.Run()
	env.ExportSimMetrics()
	if runErr != nil {
		return nil, runErr
	}
	out.stats = env.Tier.Stats() // nil-safe zero for the baseline
	if out.exportDigest, err = exportDigest(reg); err != nil {
		return nil, err
	}
	return out, nil
}

// cachePoint runs one sweep point at workers=1 and workers=4 and folds
// the pair into a CacheRun (the worker-count invariance is the tier's
// determinism contract, checked at every point).
func cachePoint(s Scale, timestamps int, tier ioengine.TierConfig, policy string) (CacheRun, error) {
	one, err := cacheOneRun(s, timestamps, 1, tier)
	if err != nil {
		return CacheRun{}, err
	}
	four, err := cacheOneRun(s, timestamps, 4, tier)
	if err != nil {
		return CacheRun{}, err
	}
	st := one.stats
	return CacheRun{
		CapacityBytes:  tier.NodeBytes,
		Policy:         policy,
		JCTSeconds:     one.jct,
		TailJCTSeconds: one.tailJCT,
		LocalHits:      st.LocalHits, PeerHits: st.PeerHits, OSTReads: st.OSTReads,
		LocalBytes: st.LocalBytes, PeerBytes: st.PeerBytes, OSTBytes: st.OSTBytes,
		Evictions: st.Evictions, Promotions: st.Promotions,
		CrossJobHitRate: st.HitRate(),
		OutputDigest:    one.outputDigest,
		ExportDigest:    one.exportDigest,
		Deterministic: one.outputDigest == four.outputDigest &&
			one.exportDigest == four.exportDigest && one.exportDigest != "",
	}, nil
}

// cacheCapacities derives the capacity sweep from the decoded working
// set: one job's decoded bytes are timestamps x levels x lat x lon x 4
// (one float32 grid of the selected variable per timestamp). Chunks
// spread across the 4 nodes, so each node sees ~1/4 of the working set;
// the small tier (1/16 per node) forces eviction churn, the large tier
// (2x per node) lets everything stay resident.
func cacheCapacities(s Scale, timestamps int) (small, large int64) {
	ws := int64(timestamps) * int64(s.Levels*s.Lat*s.Lon) * 4
	small = ws / 16
	if small < 1<<10 {
		small = 1 << 10
	}
	return small, 2 * ws
}

// RunCache sweeps the cooperative cache tier across capacity x policy
// under two overlapping SciDP jobs, then replays the multi-tenant trace
// with the tier attached (BENCH_cache.json).
func RunCache(s Scale, timestamps int, horizon float64) (*Table, *CacheResult, error) {
	res := &CacheResult{Solution: "scidp", Timestamps: timestamps}

	base, err := cachePoint(s, timestamps, ioengine.TierConfig{}, "off")
	if err != nil {
		return nil, nil, fmt.Errorf("cache baseline: %w", err)
	}
	base.SpeedupVsOff = 1
	base.TailSpeedupVsOff = 1
	base.OutputsMatchBaseline = true
	res.Runs = append(res.Runs, base)

	small, large := cacheCapacities(s, timestamps)
	for _, capBytes := range []int64{small, large} {
		for _, policy := range []string{ioengine.PolicyLRU, ioengine.PolicyCost} {
			// Default promotion threshold: with two consumers per chunk
			// only truly hot blocks replicate. A threshold of 2 promotes
			// every shared block — a replication storm whose network cost
			// drowns the hits it is supposed to amplify (measured: ~220
			// promotions cost more fabric time than all peer hits save).
			run, err := cachePoint(s, timestamps,
				ioengine.TierConfig{NodeBytes: capBytes, Policy: policy}, policy)
			if err != nil {
				return nil, nil, fmt.Errorf("cache %s/%d: %w", policy, capBytes, err)
			}
			if run.JCTSeconds > 0 {
				run.SpeedupVsOff = base.JCTSeconds / run.JCTSeconds
			}
			if run.TailJCTSeconds > 0 {
				run.TailSpeedupVsOff = base.TailJCTSeconds / run.TailJCTSeconds
			}
			run.OutputsMatchBaseline = run.OutputDigest == base.OutputDigest
			res.Runs = append(res.Runs, run)
		}
	}

	// The multi-tenant arm: the repeated-catalog trace gives genuine
	// cross-job reuse (every job reads a prefix of the shared input
	// pool), so the tier's hit rate here is the service-level benefit.
	// 2 MiB per node across 6 nodes comfortably spans the 3 MiB pool.
	mtTier := ioengine.TierConfig{NodeBytes: 2 << 20, Policy: ioengine.PolicyCost}
	tr, err := loadgen.Generate(loadgen.TraceSpec{
		Name: "cache-mt", Seed: MTSeed, Horizon: horizon, Classes: mtClasses(1.0),
	})
	if err != nil {
		return nil, nil, err
	}
	offSum, _, err := mtReplayTier(tr, false, ioengine.TierConfig{})
	if err != nil {
		return nil, nil, fmt.Errorf("cache mt off: %w", err)
	}
	onSum, onStats, err := mtReplayTier(tr, false, mtTier)
	if err != nil {
		return nil, nil, fmt.Errorf("cache mt on: %w", err)
	}
	repSum, _, err := mtReplayTier(tr, false, mtTier)
	if err != nil {
		return nil, nil, fmt.Errorf("cache mt repeat: %w", err)
	}
	res.MT = &CacheMT{
		HorizonSeconds: horizon,
		CapacityBytes:  mtTier.NodeBytes,
		Policy:         mtTier.Policy,
		Completed:      onSum.Completed,
		HitRate:        onStats.HitRate(),
		LocalHits:      onStats.LocalHits,
		PeerHits:       onStats.PeerHits,
		OSTReads:       onStats.OSTReads,
		Promotions:     onStats.Promotions,
		P99Seconds:     onSum.P99Seconds, P99SecondsOff: offSum.P99Seconds,
		GoodputJobsPerKs: onSum.GoodputJobsPerKs, GoodputOff: offSum.GoodputJobsPerKs,
		Deterministic: onSum.CompletionDigest == repSum.CompletionDigest &&
			onSum.ExportDigest == repSum.ExportDigest && onSum.ExportDigest != "",
	}

	t := &Table{
		ID:    "Cache",
		Title: "tiered cooperative cache: capacity x policy under two overlapping SciDP jobs",
		Header: []string{"capacity", "policy", "JCT (s)", "speedup", "tail JCT (s)", "tail speedup", "hit rate",
			"local/peer/OST", "evict", "promote", "matches off", "deterministic"},
	}
	for _, run := range res.Runs {
		capLabel := "-"
		if run.CapacityBytes > 0 {
			capLabel = fmt.Sprintf("%dKiB", run.CapacityBytes>>10)
		}
		t.AddRow(capLabel, run.Policy, secs(run.JCTSeconds), ratio(run.SpeedupVsOff),
			secs(run.TailJCTSeconds), ratio(run.TailSpeedupVsOff),
			fmt.Sprintf("%.2f", run.CrossJobHitRate),
			fmt.Sprintf("%d/%d/%d", run.LocalHits, run.PeerHits, run.OSTReads),
			fmt.Sprintf("%d", run.Evictions), fmt.Sprintf("%d", run.Promotions),
			fmt.Sprintf("%v", run.OutputsMatchBaseline),
			fmt.Sprintf("%v", run.Deterministic))
	}
	t.Notes = append(t.Notes,
		"capacities are per node: small = 1/16 of one job's decoded working set (eviction churn — LRU degrades under the sequential scan, cost-aware retains hits), large = 2x (fully resident); every point runs at workers=1 and workers=4 and must produce identical bytes",
		fmt.Sprintf("mt arm (horizon %.0fs, %s policy, %d KiB/node): hit rate %.2f (local/peer/OST %d/%d/%d, %d promotions), p99 %.1fs vs %.1fs off, goodput %.0f vs %.0f jobs/ks, deterministic %v",
			horizon, res.MT.Policy, res.MT.CapacityBytes>>10, res.MT.HitRate,
			res.MT.LocalHits, res.MT.PeerHits, res.MT.OSTReads, res.MT.Promotions,
			res.MT.P99Seconds, res.MT.P99SecondsOff,
			res.MT.GoodputJobsPerKs, res.MT.GoodputOff, res.MT.Deterministic))
	return t, res, nil
}

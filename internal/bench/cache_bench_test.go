package bench

import (
	"testing"

	"scidp/internal/ioengine"
)

// benchmarkPipeline runs the canonical quick pipeline end to end (host
// wall-clock, registry attached, post-run analysis included) with the
// given tier config — the BENCH_obs.json comparison pair for the
// cooperative cache's host-side overhead.
func benchmarkPipeline(b *testing.B, tier ioengine.TierConfig) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, _, _, err := AnalyzeRunTier(QuickScale(), 4, nil, 0, "tier-bench", tier)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Jobs) == 0 {
			b.Fatal("empty report")
		}
	}
}

// BenchmarkPipelineTierOff is the baseline: no cache tier attached —
// every tier call sites hits the nil fast path.
func BenchmarkPipelineTierOff(b *testing.B) {
	benchmarkPipeline(b, ioengine.TierConfig{})
}

// BenchmarkPipelineTierCold attaches a cooperative cache tier large
// enough to admit every chunk, but the single-pass pipeline never
// re-reads — the tier is pure overhead here: directory lookups that
// miss, admissions, and the obs collector. The BENCH_obs.json claim is
// that this stays within noise of TierOff.
func BenchmarkPipelineTierCold(b *testing.B) {
	benchmarkPipeline(b, ioengine.TierConfig{NodeBytes: 8 << 20, Policy: ioengine.PolicyCost})
}

package bench

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"

	"scidp/internal/chaos"
	"scidp/internal/core"
	"scidp/internal/mapreduce"
	"scidp/internal/obs"
	"scidp/internal/sim"
	"scidp/internal/solutions"
	"scidp/internal/workloads"
)

// FaultsRun is one sweep point's outcome: a SciDP processing job run
// under a chaos plan scaled to one fault rate, audited for output
// integrity and recovery activity.
type FaultsRun struct {
	// Rate is the probabilistic fault rate the plan was built with
	// (0 = baseline, no plan).
	Rate float64 `json:"rate"`
	// JCTSeconds is the job completion time (virtual seconds).
	JCTSeconds float64 `json:"jct_seconds"`
	// GoodputMBps is audited result bytes (logical) per JCT second.
	GoodputMBps float64 `json:"goodput_mbps"`
	// ResultBytes is the audited output volume (actual bytes).
	ResultBytes int64 `json:"result_bytes"`
	// OutputDigest is the sha256 over the sorted audited output files.
	OutputDigest string `json:"output_digest"`
	// ExportDigest is the sha256 over the Chrome-trace and Prometheus
	// exports of the run's private registry.
	ExportDigest string `json:"export_digest"`
	// Recovery activity observed in the run's metrics.
	Failovers      float64 `json:"failovers"`
	ReadRetries    float64 `json:"read_retries"`
	ReadArounds    float64 `json:"read_arounds"`
	TaskFailures   float64 `json:"task_failures"`
	SpecLaunched   float64 `json:"speculative_launched"`
	SpecWins       float64 `json:"speculative_wins"`
	SpecLosses     float64 `json:"speculative_losses"`
	FaultsInjected float64 `json:"faults_injected"`
	// OutputMatchesBaseline reports whether the audited output bytes are
	// identical to the fault-free baseline's.
	OutputMatchesBaseline bool `json:"output_matches_baseline"`
	// Deterministic reports whether a second run with the same seed and
	// plan reproduced both digests byte-for-byte.
	Deterministic bool `json:"deterministic"`
}

// FaultsResult is the `-exp faults` experiment's machine-readable output
// (what BENCH_faults.json records).
type FaultsResult struct {
	// Solution is the data path under test.
	Solution string `json:"solution"`
	// Timestamps sizes the dataset (one map task per timestamp).
	Timestamps int `json:"timestamps"`
	// Seed drives every plan's PRNG.
	Seed int64 `json:"seed"`
	// BaselineJCT is the fault-free job completion time the plans'
	// windows are placed against.
	BaselineJCT float64 `json:"baseline_jct_seconds"`
	// Runs are the sweep points, baseline first.
	Runs []FaultsRun `json:"runs"`
}

// FaultsSeed is the default chaos seed for the faults experiment.
const FaultsSeed = 42

// faultsManifests is how many small replicated files the driver writes
// from node 1 before the job: node 1 is the DataNode every plan crashes,
// and the writer holds each block's first replica, so the post-job audit
// (reading from node 0) must fail over — exercising HDFS replica
// recovery even though SciDP's data path reads the PFS directly.
const faultsManifests = 8

func manifestBody(i int) []byte {
	line := fmt.Sprintf("chaos manifest %02d: first replica lives on node bd-1\n", i)
	var b bytes.Buffer
	for b.Len() < 2048 {
		b.WriteString(line)
	}
	return b.Bytes()
}

// FaultsPlan builds the chaos plan for one fault rate, with windows
// placed as fractions of the fault-free baseline duration d: a DataNode
// crash (permanent), an OST slowdown, a short full OST outage (shorter
// than the PFS Reader's total retry budget), metadata latency spikes on
// both file systems, and rate-scaled flaky reads, stragglers, and task
// failures.
func FaultsPlan(seed int64, d, rate float64) *chaos.Plan {
	if rate <= 0 {
		return nil
	}
	return &chaos.Plan{Seed: seed, Rules: []chaos.Rule{
		{Kind: chaos.KindDNCrash, At: 0.30 * d, Target: 1},
		{Kind: chaos.KindOSTDegrade, At: 0.20 * d, Until: 0.70 * d, Target: 2, Factor: 3},
		{Kind: chaos.KindOSTOutage, At: 0.40 * d, Until: 0.40*d + 2.0, Target: 5},
		{Kind: chaos.KindMDSLatency, At: 0.25 * d, Until: 0.60 * d, Factor: 5},
		{Kind: chaos.KindNNLatency, At: 0.25 * d, Until: 0.60 * d, Factor: 5},
		{Kind: chaos.KindFlakyReads, At: 0.35 * d, Until: 0.85 * d, Rate: rate, Corrupt: 0.25},
		{Kind: chaos.KindStraggler, At: 0.05 * d, Until: 0.80 * d, Rate: rate, Factor: 6},
		{Kind: chaos.KindTaskFail, At: 0.15 * d, Until: 0.75 * d, Rate: rate / 2},
	}}
}

// FaultsEnvConfig is the recovery-enabled testbed every faults run uses:
// 4 nodes x 2 slots (so the 16-task map phase runs in two waves and
// speculation has idle slots to place backups on), 2-way replication,
// 3 task attempts, map-task speculation, and a PFS read-retry budget
// whose backoff outlasts the plan's OST outage window.
func FaultsEnvConfig(s Scale) solutions.EnvConfig {
	cfg := s.EnvConfig(4)
	cfg.SlotsPerNode = 2
	cfg.Replication = 2
	cfg.MaxAttempts = 3
	cfg.Speculation = mapreduce.Speculation{Quantile: 0.75, Multiplier: 1.3, MinCompleted: 3, Interval: 0.25}
	cfg.ReadRetry = core.RetryPolicy{MaxRetries: 6, Backoff: 0.1}
	return cfg
}

// faultsOutcome is one run's raw measurements.
type faultsOutcome struct {
	rep          *solutions.Report
	outputDigest string
	exportDigest string
	resultBytes  int64
	reg          *obs.Registry
}

// faultsOneRun executes the SciDP pipeline once under the given plan on
// a fresh testbed with a private registry, then audits the output: every
// result and manifest file is read back from node 0 in sorted order and
// folded into a sha256.
func faultsOneRun(s Scale, timestamps int, plan *chaos.Plan, label string) (*faultsOutcome, error) {
	blobs, ds, err := dataset(s, timestamps)
	if err != nil {
		return nil, err
	}
	reg := obs.New()
	reg.SetProcess(label)
	cfg := FaultsEnvConfig(s)
	cfg.Obs = reg
	cfg.Chaos = plan
	env := solutions.NewEnv(cfg)
	workloads.Install(env.PFS, blobs)
	wl := &solutions.Workload{Dataset: ds, Var: "QR", Analysis: solutions.AnalysisNone}

	out := &faultsOutcome{reg: reg}
	var runErr error
	env.K.Go("driver", func(p *sim.Proc) {
		for i := 0; i < faultsManifests; i++ {
			path := fmt.Sprintf("/chaos-manifest/m%02d", i)
			if runErr = env.HDFS.WriteFile(p, env.BD.Node(1), path, manifestBody(i)); runErr != nil {
				return
			}
		}
		out.rep, runErr = solutions.RunSciDP(p, env, wl)
		if runErr != nil {
			return
		}
		out.outputDigest, out.resultBytes, runErr = auditDigest(p, env, "/results/scidp", "/chaos-manifest")
	})
	env.K.Run()
	env.ExportSimMetrics()
	if runErr != nil {
		return nil, fmt.Errorf("faults run %s: %w", label, runErr)
	}
	if out.exportDigest, err = exportDigest(reg); err != nil {
		return nil, err
	}
	return out, nil
}

// auditDigest reads every file under the given directories back from
// node 0 in sorted path order and returns the sha256 over (path, size,
// bytes) plus the total byte count. Dead first replicas make this pass
// exercise HDFS failover.
func auditDigest(p *sim.Proc, env *solutions.Env, dirs ...string) (string, int64, error) {
	var paths []string
	for _, dir := range dirs {
		files, err := env.HDFS.Walk(p, dir)
		if err != nil {
			return "", 0, err
		}
		for _, f := range files {
			if f.Virtual {
				continue
			}
			paths = append(paths, f.Path)
		}
	}
	sort.Strings(paths)
	h := sha256.New()
	var total int64
	for _, path := range paths {
		data, err := env.HDFS.ReadFileRetry(p, env.BD.Node(0), path, 6, 0.05)
		if err != nil {
			return "", 0, err
		}
		fmt.Fprintf(h, "%s %d\n", path, len(data))
		h.Write(data)
		total += int64(len(data))
	}
	return hex.EncodeToString(h.Sum(nil)), total, nil
}

// exportDigest hashes the run's Chrome-trace and Prometheus exports —
// the byte streams the determinism guarantee covers.
func exportDigest(reg *obs.Registry) (string, error) {
	h := sha256.New()
	if err := reg.WriteChromeTrace(h); err != nil {
		return "", err
	}
	if err := reg.WritePrometheus(h); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// counterSum reads one metric's value summed over a label's possible
// values (reading registers missing series at zero, so it must run only
// after the export digest is taken).
func counterSum(reg *obs.Registry, name, key string, vals ...string) float64 {
	if len(vals) == 0 {
		return reg.Counter(name).Value()
	}
	var sum float64
	for _, v := range vals {
		sum += reg.Counter(name, obs.L(key, v)).Value()
	}
	return sum
}

// fillCounters extracts the recovery counters from a run's registry.
func (fr *FaultsRun) fillCounters(reg *obs.Registry) {
	fr.Failovers = counterSum(reg, "hdfs/replica_failovers_total", "")
	fr.ReadRetries = counterSum(reg, "core/read_retries_total", "kind",
		"flaky-read", "corrupt", "ost-down", "no-live-replica")
	fr.ReadArounds = counterSum(reg, "core/read_around_total", "")
	fr.TaskFailures = counterSum(reg, "mr/task_failures_total", "phase", "map", "reduce")
	fr.SpecLaunched = counterSum(reg, "mr/speculative_launched_total", "phase", "map")
	fr.SpecWins = counterSum(reg, "mr/speculative_wins_total", "phase", "map")
	fr.SpecLosses = counterSum(reg, "mr/speculative_losses_total", "phase", "map")
	fr.FaultsInjected = counterSum(reg, "chaos/faults_injected_total", "kind",
		chaos.KindOSTDegrade, chaos.KindOSTOutage, chaos.KindDNCrash,
		chaos.KindMDSLatency, chaos.KindNNLatency,
		chaos.KindFlakyReads, chaos.KindStraggler, chaos.KindTaskFail)
}

// RunFaults sweeps the SciDP pipeline across injected fault rates: a
// fault-free baseline fixes the plan windows and the reference output
// digest, then each rate runs TWICE with the same seed — once for the
// measurement and once to verify that outputs and observability exports
// are byte-identical (the chaos subsystem's determinism guarantee).
func RunFaults(s Scale, timestamps int, rates []float64, seed int64) (*Table, *FaultsResult, error) {
	res := &FaultsResult{Solution: "scidp", Timestamps: timestamps, Seed: seed}

	base, err := faultsOneRun(s, timestamps, nil, "faults-rate-0")
	if err != nil {
		return nil, nil, err
	}
	res.BaselineJCT = base.rep.TotalSeconds

	sweep := append([]float64{0}, rates...)
	for _, rate := range sweep {
		plan := FaultsPlan(seed, res.BaselineJCT, rate)
		label := fmt.Sprintf("faults-rate-%g", rate)
		var out *faultsOutcome
		if rate == 0 {
			out = base
		} else if out, err = faultsOneRun(s, timestamps, plan, label); err != nil {
			return nil, nil, err
		}
		again, err := faultsOneRun(s, timestamps, plan, label)
		if err != nil {
			return nil, nil, err
		}
		fr := FaultsRun{
			Rate:                  rate,
			JCTSeconds:            out.rep.TotalSeconds,
			ResultBytes:           out.resultBytes,
			OutputDigest:          out.outputDigest,
			ExportDigest:          out.exportDigest,
			OutputMatchesBaseline: out.outputDigest == base.outputDigest,
			Deterministic: again.outputDigest == out.outputDigest &&
				again.exportDigest == out.exportDigest,
		}
		if fr.JCTSeconds > 0 {
			fr.GoodputMBps = float64(fr.ResultBytes) * s.ByteScale() / 1e6 / fr.JCTSeconds
		}
		fr.fillCounters(out.reg)
		res.Runs = append(res.Runs, fr)
	}

	t := &Table{
		ID:    "Faults",
		Title: "SciDP goodput and JCT vs. injected fault rate (chaos plans on the virtual clock)",
		Header: []string{"rate", "JCT (s)", "goodput (MB/s)", "slowdown",
			"failovers", "read retries", "read-arounds", "task failures",
			"spec wins", "faults injected", "output == baseline", "deterministic"},
		Notes: []string{
			fmt.Sprintf("testbed: 4 nodes x 2 slots, replication 2, 3 task attempts, map speculation, %d timestamps", timestamps),
			fmt.Sprintf("each plan: DN-1 crash + OST degrade/outage + MDS/NN latency + rate-scaled flaky reads, stragglers, task failures (seed %d)", seed),
			"every rate runs twice with the same seed; 'deterministic' checks output and export digests match byte-for-byte",
		},
	}
	for _, fr := range res.Runs {
		t.AddRow(
			fmt.Sprintf("%.2f", fr.Rate),
			secs(fr.JCTSeconds),
			fmt.Sprintf("%.1f", fr.GoodputMBps),
			ratio(fr.JCTSeconds/res.BaselineJCT),
			fmt.Sprintf("%.0f", fr.Failovers),
			fmt.Sprintf("%.0f", fr.ReadRetries),
			fmt.Sprintf("%.0f", fr.ReadArounds),
			fmt.Sprintf("%.0f", fr.TaskFailures),
			fmt.Sprintf("%.0f", fr.SpecWins),
			fmt.Sprintf("%.0f", fr.FaultsInjected),
			fmt.Sprintf("%v", fr.OutputMatchesBaseline),
			fmt.Sprintf("%v", fr.Deterministic),
		)
	}
	return t, res, nil
}

package bench

import (
	"fmt"

	"scidp/internal/cluster"
	"scidp/internal/hdfs"
	"scidp/internal/pfs"
	"scidp/internal/sim"
	"scidp/internal/workloads"
)

// fig2ByteScale is the scale factor for the Figure 2 rigs: each actual
// byte stands for this many logical bytes.
const fig2ByteScale = 4096

// fig2Rig builds one backend's testbed matching the paper's Figure 2
// setup: 8 Hadoop nodes, 8 OSTs, Lustre stripe count 8 with stripe size
// set to the HDFS block size, replication 1.
type fig2Rig struct {
	k  *sim.Kernel
	cl *cluster.Cluster
	be workloads.Backend
}

func newFig2Rig(lustre bool) *fig2Rig {
	k := sim.NewKernel()
	cl := cluster.New(k, "bd", cluster.DefaultHardware(8, 8).Scaled(fig2ByteScale))
	blockSize := int64(128 << 20 / fig2ByteScale)
	if lustre {
		pcfg := pfs.DefaultConfig().Scaled(fig2ByteScale)
		pcfg.OSSCount, pcfg.OSTsPerOSS = 2, 4 // 8 OSTs, as in the paper's Figure 2
		pcfg.DefaultStripeCount = 8
		pcfg.DefaultStripeSize = blockSize // "large stripe size as the block size in HDFS"
		fs := pfs.New(k, pcfg)
		return &fig2Rig{k: k, cl: cl, be: &workloads.LustreBackend{
			FS:          fs,
			MountFor:    func(n *cluster.Node) *pfs.Client { return fs.NewClient(cl.Fabric, n.NIC) },
			SetupClient: fs.NewClient(),
		}}
	}
	hcfg := hdfs.DefaultConfig()
	hcfg.BlockSize = blockSize
	hcfg.Replication = 1 // "We change the replication factor to one"
	return &fig2Rig{k: k, cl: cl, be: &workloads.HDFSBackend{FS: hdfs.New(k, cl, hcfg)}}
}

// fig2Config sizes the workloads: 16 files of 128 logical MB each.
func fig2Config() workloads.MiniConfig {
	return workloads.MiniConfig{
		Files:       16,
		FileBytes:   128 << 20 / fig2ByteScale,
		SplitSize:   128 << 20 / fig2ByteScale,
		TaskStartup: 1.0,
		ScanPerMB:   0.01 * fig2ByteScale / 1e0, // 0.01 s per logical MB
	}
}

// runFig2Workload runs one named workload on one backend and returns its
// virtual seconds.
func runFig2Workload(name string, lustre bool) (float64, error) {
	rig := newFig2Rig(lustre)
	cfg := fig2Config()
	var seconds float64
	var err error
	rig.k.Go("driver", func(p *sim.Proc) {
		var res workloads.MiniResult
		switch name {
		case "TeraSort":
			in := workloads.InstallTextInputs(rig.be, cfg, "sortme")
			res, err = workloads.RunTeraSort(p, rig.cl, rig.be, cfg, in, 8)
		case "Grep":
			in := workloads.InstallTextInputs(rig.be, cfg, "needle")
			res, err = workloads.RunGrep(p, rig.cl, rig.be, cfg, in, "needle")
		case "TestDFSIO-write":
			res, err = workloads.RunTestDFSIOWrite(p, rig.cl, rig.be, cfg)
		case "TestDFSIO-read":
			if _, err = workloads.RunTestDFSIOWrite(p, rig.cl, rig.be, cfg); err != nil {
				return
			}
			res, err = workloads.RunTestDFSIORead(p, rig.cl, rig.be, cfg)
		default:
			err = fmt.Errorf("bench: unknown fig2 workload %q", name)
		}
		seconds = res.Seconds
	})
	rig.k.Run()
	return seconds, err
}

// Fig2Workloads are the paper's three benchmarks (DFSIO split into its
// write and read phases).
var Fig2Workloads = []string{"TeraSort", "Grep", "TestDFSIO-write", "TestDFSIO-read"}

// Fig2 compares native HDFS against the Lustre HDFS connector on the
// three Hadoop benchmarks. The paper measures native HDFS 221% faster on
// average.
func Fig2() (*Table, error) {
	t := &Table{
		ID:     "Figure 2",
		Title:  "Performance comparison between Lustre (HDFS connector) and native HDFS",
		Header: []string{"workload", "HDFS(s)", "Lustre(s)", "HDFS advantage"},
	}
	var sumAdv float64
	var n int
	for _, w := range Fig2Workloads {
		hd, err := runFig2Workload(w, false)
		if err != nil {
			return nil, err
		}
		lu, err := runFig2Workload(w, true)
		if err != nil {
			return nil, err
		}
		adv := lu / hd
		sumAdv += adv
		n++
		t.AddRow(w, secs(hd), secs(lu), ratio(adv))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("average HDFS advantage: %.0f%% (paper: native HDFS outperforms Lustre by 221%% on average)", (sumAdv/float64(n))*100),
		"8 Hadoop nodes, 8 OSTs, stripe count 8, stripe size = HDFS block size, replication 1")
	return t, nil
}

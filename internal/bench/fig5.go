package bench

import (
	"fmt"
	"sort"

	"scidp/internal/sim"
	"scidp/internal/solutions"
	"scidp/internal/workloads"
)

// SolutionOrder is Table I / Figure 5's presentation order.
var SolutionOrder = []string{"naive", "vanilla-hadoop", "porthadoop", "scihadoop", "scidp"}

// RunOne executes one solution over one sweep point on a fresh testbed.
func RunOne(s Scale, timestamps, nodes int, analysis solutions.AnalysisKind, name string,
	opts *solutions.SciDPOptions) (*solutions.Report, error) {
	blobs, ds, err := dataset(s, timestamps)
	if err != nil {
		return nil, err
	}
	env := solutions.NewEnv(obsEnvConfig(s.EnvConfig(nodes), fmt.Sprintf("%s@%dts", name, timestamps)))
	workloads.Install(env.PFS, blobs)
	wl := &solutions.Workload{Dataset: ds, Var: "QR", Analysis: analysis}
	var rep *solutions.Report
	var rerr error
	env.K.Go("driver", func(p *sim.Proc) {
		if name == "scidp" && opts != nil {
			rep, rerr = solutions.RunSciDPWith(p, env, wl, *opts)
			return
		}
		run, ok := solutions.All()[name]
		if !ok {
			rerr = fmt.Errorf("bench: unknown solution %q", name)
			return
		}
		rep, rerr = run(p, env, wl)
	})
	env.K.Run()
	env.ExportSimMetrics()
	return rep, rerr
}

// Fig5Result carries a full sweep for reuse by Table III.
type Fig5Result struct {
	// Sizes are the timestamp counts swept.
	Sizes []int
	// Totals[solution][size] is Figure 5's metric (copy+process).
	Totals map[string]map[int]float64
	// Reports keeps the full reports.
	Reports map[string]map[int]*solutions.Report
}

// RunFig5 sweeps the five solutions over the dataset sizes (the paper
// uses 96, 192, 384, 768 timestamps).
func RunFig5(s Scale, sizes []int) (*Fig5Result, error) {
	out := &Fig5Result{
		Sizes:   sizes,
		Totals:  map[string]map[int]float64{},
		Reports: map[string]map[int]*solutions.Report{},
	}
	for _, name := range SolutionOrder {
		out.Totals[name] = map[int]float64{}
		out.Reports[name] = map[int]*solutions.Report{}
		for _, ts := range sizes {
			rep, err := RunOne(s, ts, 0, solutions.AnalysisNone, name, nil)
			if err != nil {
				return nil, fmt.Errorf("%s @%d: %w", name, ts, err)
			}
			out.Totals[name][ts] = rep.TotalSeconds
			out.Reports[name][ts] = rep
		}
	}
	return out, nil
}

// Fig5Table renders the sweep as the paper's Figure 5: per solution and
// size, the copy and processing components and the total. As in the
// paper, the naive solution is also shown at 1/8 of its actual time, and
// conversion time is excluded (reported in a note).
func Fig5Table(r *Fig5Result) *Table {
	t := &Table{
		ID:     "Figure 5",
		Title:  "Total execution time of SciDP and existing solutions (Img-only)",
		Header: []string{"solution", "timestamps", "copy(s)", "process(s)", "total(s)", "plotted"},
	}
	for _, name := range SolutionOrder {
		for _, ts := range r.Sizes {
			rep := r.Reports[name][ts]
			plotted := secs(rep.TotalSeconds)
			if name == "naive" {
				plotted = secs(rep.TotalSeconds/8) + " (1/8 actual)"
			}
			t.AddRow(name, fmt.Sprintf("%d", ts), secs(rep.CopySeconds), secs(rep.ProcessSeconds),
				secs(rep.TotalSeconds), plotted)
		}
	}
	var convs []string
	for _, name := range SolutionOrder {
		rep := r.Reports[name][r.Sizes[len(r.Sizes)-1]]
		if rep.ConvertSeconds > 0 {
			convs = append(convs, fmt.Sprintf("%s=%.0fs", name, rep.ConvertSeconds))
		}
	}
	t.Notes = append(t.Notes,
		"conversion time excluded from totals (paper Section V-A); at the largest size: "+join(convs),
		"virtual seconds on the simulated 8-node testbed")
	return t
}

// Table3 derives the paper's Table III: SciDP's speedup over every
// existing solution at each dataset size.
func Table3(r *Fig5Result) *Table {
	t := &Table{
		ID:     "Table III",
		Title:  "Speedup of SciDP over existing solutions",
		Header: append([]string{"solution"}, sizesHeader(r.Sizes)...),
	}
	for _, name := range SolutionOrder {
		if name == "scidp" {
			continue
		}
		row := []string{name}
		for _, ts := range r.Sizes {
			row = append(row, ratio(r.Totals[name][ts]/r.Totals["scidp"][ts]))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes, "paper band: 6.58x (best existing) to 284.63x (naive)")
	return t
}

// Fig8 runs the scale-out sweep: SciDP Img-only at 4, 8, 16 nodes with 8
// tasks per node (32/64/128 parallel tasks), a fixed dataset size.
func Fig8(s Scale, timestamps int, nodes []int) (*Table, error) {
	t := &Table{
		ID:     "Figure 8",
		Title:  fmt.Sprintf("Scale-out evaluation of SciDP (Img-only, %d timestamps)", timestamps),
		Header: []string{"nodes", "parallel tasks", "total(s)", "speedup vs 4 nodes"},
	}
	base := -1.0
	for _, n := range nodes {
		rep, err := RunOne(s, timestamps, n, solutions.AnalysisNone, "scidp", nil)
		if err != nil {
			return nil, err
		}
		if base < 0 {
			base = rep.TotalSeconds
		}
		t.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", n*8), secs(rep.TotalSeconds), ratio(base/rep.TotalSeconds))
	}
	t.Notes = append(t.Notes, "paper: time nearly halves when nodes double (near-optimal speedup)")
	return t, nil
}

// Fig8ScaleUp runs the scale-up companion the paper mentions ("Scale-up
// evaluation shows similar performance as scale-out results"): fixed 8
// nodes, growing per-node slot counts.
func Fig8ScaleUp(s Scale, timestamps int, slots []int) (*Table, error) {
	t := &Table{
		ID:     "Figure 8b",
		Title:  fmt.Sprintf("Scale-up evaluation of SciDP (Img-only, %d timestamps, 8 nodes)", timestamps),
		Header: []string{"slots/node", "parallel tasks", "total(s)", "speedup vs first"},
	}
	base := -1.0
	for _, sl := range slots {
		blobs, ds, err := dataset(s, timestamps)
		if err != nil {
			return nil, err
		}
		cfg := s.EnvConfig(8)
		cfg.SlotsPerNode = sl
		env := solutions.NewEnv(obsEnvConfig(cfg, fmt.Sprintf("scidp@%dslots", sl)))
		workloads.Install(env.PFS, blobs)
		var rep *solutions.Report
		var rerr error
		env.K.Go("driver", func(p *sim.Proc) {
			rep, rerr = solutions.RunSciDP(p, env, &solutions.Workload{Dataset: ds, Var: "QR"})
		})
		env.K.Run()
		env.ExportSimMetrics()
		if rerr != nil {
			return nil, rerr
		}
		if base < 0 {
			base = rep.TotalSeconds
		}
		t.AddRow(fmt.Sprintf("%d", sl), fmt.Sprintf("%d", 8*sl), secs(rep.TotalSeconds), ratio(base/rep.TotalSeconds))
	}
	t.Notes = append(t.Notes, "paper: scale-up shows similar performance as scale-out (Section V-E)")
	return t, nil
}

// Fig9 runs the Anlys workload cases across dataset sizes.
func Fig9(s Scale, sizes []int) (*Table, error) {
	t := &Table{
		ID:     "Figure 9",
		Title:  "Data analysis performance of SciDP (SQL query in each Map task)",
		Header: append([]string{"analysis"}, sizesHeader(sizes)...),
	}
	cases := []solutions.AnalysisKind{solutions.AnalysisNone, solutions.AnalysisHighlight, solutions.AnalysisTop1Pct}
	extra := map[solutions.AnalysisKind]int64{}
	for _, kind := range cases {
		row := []string{kind.String()}
		for _, ts := range sizes {
			rep, err := RunOne(s, ts, 0, kind, "scidp", nil)
			if err != nil {
				return nil, err
			}
			row = append(row, secs(rep.TotalSeconds))
			extra[kind] = rep.AnalysisBytes
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("analysis bytes written to HDFS at largest size: highlight=%d, top1%%=%d (paper: top 1%% query result ~596 MB/variable)",
			extra[solutions.AnalysisHighlight], extra[solutions.AnalysisTop1Pct]),
		"paper: highlight ~= no analysis; top 1% slower due to extra HDFS writes and network transfer")
	return t, nil
}

// Fig7 decomposes per-task time into Read/Convert/Plot per (paper) level
// for each solution at one dataset size (the paper uses 384 files).
func Fig7(s Scale, timestamps int) (*Table, error) {
	t := &Table{
		ID:     "Figure 7",
		Title:  fmt.Sprintf("Task time decomposition per one-level data (%d files)", timestamps),
		Header: []string{"solution", "read(s/level)", "convert(s/level)", "plot(s/level)"},
	}
	ls := s.LevelScale()
	for _, name := range SolutionOrder {
		rep, err := RunOne(s, timestamps, 0, solutions.AnalysisNone, name, nil)
		if err != nil {
			return nil, err
		}
		t.AddRow(name,
			fmt.Sprintf("%.3f", rep.PerLevel("Read", ls)),
			fmt.Sprintf("%.3f", rep.PerLevel("Convert", ls)),
			fmt.Sprintf("%.3f", rep.PerLevel("Plot", ls)))
	}
	t.Notes = append(t.Notes,
		"paper: Convert dominates text-based solutions (read.table); Read ~2 s/task for existing, SciDP 0.035 s/level; Plot equal for vanilla/PortHadoop/SciDP, slightly lower for naive")
	return t, nil
}

// Table1 renders the paper's qualitative data-path matrix.
func Table1() *Table {
	t := &Table{
		ID:     "Table I",
		Title:  "Data path of existing solutions and SciDP",
		Header: []string{"solution", "conversion", "data copy", "processing"},
	}
	for _, row := range solutions.TableI() {
		conv := "No"
		if row.Conversion {
			conv = "Yes"
		}
		t.AddRow(row.Solution, conv, row.Copy, row.Processing)
	}
	return t
}

// Table2 renders the workload matrix.
func Table2() *Table {
	t := &Table{
		ID:     "Table II",
		Title:  "Representative workloads",
		Header: []string{"workload", "image plotting", "animation", "analysis"},
	}
	for _, w := range []workloads.WorkloadKind{workloads.ImgOnly, workloads.Anlys} {
		p, a, an := w.Phases()
		t.AddRow(w.String(), yn(p), yn(a), yn(an))
	}
	return t
}

func yn(b bool) string {
	if b {
		return "Yes"
	}
	return "No"
}

func sizesHeader(sizes []int) []string {
	out := make([]string, len(sizes))
	for i, s := range sizes {
		out[i] = fmt.Sprintf("%d ts", s)
	}
	return out
}

func join(parts []string) string {
	sort.Strings(parts)
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += ", "
		}
		out += p
	}
	return out
}

package bench

import (
	"fmt"

	"scidp/internal/cluster"
	"scidp/internal/core"
	"scidp/internal/mpiio"
	"scidp/internal/netcdf"
	"scidp/internal/pfs"
	"scidp/internal/sim"
)

// fig6File builds the single shared input of the I/O-efficiency
// experiment: variable QR[time][level][lat][lon] chunked one timestamp
// per chunk, DEFLATE level 1 — the access unit every reader mode divides
// among its ranks.
func fig6File(s Scale, timeSteps int) ([]byte, error) {
	w := netcdf.NewWriter()
	w.AddDim("time", timeSteps)
	w.AddDim("level", s.Levels)
	w.AddDim("lat", s.Lat)
	w.AddDim("lon", s.Lon)
	if err := w.AddVar("QR", netcdf.Float32, []string{"time", "level", "lat", "lon"},
		netcdf.Chunking{Shape: []int{1, s.Levels, s.Lat, s.Lon}, Deflate: 1}); err != nil {
		return nil, err
	}
	n := timeSteps * s.Levels * s.Lat * s.Lon
	vals := make([]float32, n)
	for i := range vals {
		v := float32((i*7)%1000) / 1000
		vals[i] = float32(int(v*1000)) / 1000
	}
	if err := w.PutVarFloat32("QR", vals); err != nil {
		return nil, err
	}
	return w.Bytes()
}

// fig6Rig is the shared hardware: an HPC compute cluster mounting the
// PFS over its fabric (the MPI modes), and a BD cluster mounting it over
// the interlink (SciDP's readers).
type fig6Rig struct {
	k    *sim.Kernel
	hpc  *cluster.Cluster
	bd   *cluster.Cluster
	fs   *pfs.FS
	il   *cluster.Interlink
	blob []byte
	s    Scale
}

func newFig6Rig(s Scale, blob []byte) *fig6Rig {
	bs := s.ByteScale()
	k := sim.NewKernel()
	hpc := cluster.New(k, "hpc", cluster.DefaultHardware(8, 8).Scaled(bs))
	bd := cluster.New(k, "bd", cluster.DefaultHardware(8, 8).Scaled(bs))
	fs := pfs.New(k, pfs.DefaultConfig().Scaled(bs)) // 24 OSTs, as in the paper
	il := cluster.NewInterlink(2*1.25e9/bs, 0.0002)
	fs.Put("/fig6/plot_all.nc", blob)
	return &fig6Rig{k: k, hpc: hpc, bd: bd, fs: fs, il: il, blob: blob, s: s}
}

const fig6Path = "/fig6/plot_all.nc"

// hpcMount gives rank i's PFS client (over the HPC node's NIC).
func (r *fig6Rig) hpcMount(i int) *pfs.Client {
	return r.fs.NewClient(r.hpc.Nodes[i%len(r.hpc.Nodes)].NIC)
}

// bdMount gives a BD node's PFS client (over the interlink).
func (r *fig6Rig) bdMount(n *cluster.Node) *pfs.Client {
	return r.fs.NewClient(r.il.Link, n.NIC)
}

// qrLayout returns the variable's chunk index and sizes (parsed once,
// outside timed regions).
func qrLayout(blob []byte) (*netcdf.Var, error) {
	f, err := netcdf.Open(netcdf.BytesReader(blob))
	if err != nil {
		return nil, err
	}
	return f.Var("QR")
}

// fig6Mode runs one reader mode with n readers and returns (elapsed
// seconds, stored bytes read, raw bytes decoded).
type fig6Mode func(r *fig6Rig, n int, decompressPerRawMB float64) (float64, int64, int64, error)

// ncIndependent: each rank opens the file and reads its time-slab with
// per-chunk hyperslab reads (nc_get_vara in independent mode).
func ncIndependent(r *fig6Rig, n int, decomp float64) (float64, int64, int64, error) {
	v, err := qrLayout(r.blob)
	if err != nil {
		return 0, 0, 0, err
	}
	timeSteps := v.Dims[0].Len
	rawPer := v.RawBytes() / int64(timeSteps)
	var errOut error
	start := r.k.Now()
	var end float64
	var stored, raw int64
	for i := 0; i < n; i++ {
		i := i
		r.k.Go(fmt.Sprintf("nc-ind-%d", i), func(p *sim.Proc) {
			mount := r.hpcMount(i)
			reader, err := mount.OpenReader(p, fig6Path)
			if err != nil {
				errOut = err
				return
			}
			f, err := netcdf.Open(reader)
			if err != nil {
				errOut = err
				return
			}
			for ts := i; ts < timeSteps; ts += n {
				arr, err := f.GetVara("QR", []int{ts, 0, 0, 0}, []int{1, r.s.Levels, r.s.Lat, r.s.Lon})
				if err != nil {
					errOut = err
					return
				}
				p.Sleep(decomp * float64(len(arr.Data)) / 1e6)
				stored += v.Chunks[ts].StoredSize
				raw += rawPer
			}
			if p.Now() > end {
				end = p.Now()
			}
		})
	}
	r.k.Run()
	return end - start, stored, raw, errOut
}

// ncCollective: ranks hand their chunk byte-ranges to a two-phase
// collective read, then decompress locally.
func ncCollective(r *fig6Rig, n int, decomp float64) (float64, int64, int64, error) {
	v, err := qrLayout(r.blob)
	if err != nil {
		return 0, 0, 0, err
	}
	timeSteps := v.Dims[0].Len
	ranks := make([]mpiio.Rank, n)
	for i := range ranks {
		ranks[i] = mpiio.Rank{Node: r.hpc.Nodes[i%len(r.hpc.Nodes)], Client: r.hpcMount(i)}
	}
	comm := mpiio.NewComm(r.k, r.hpc, ranks)
	// Each rank requests the contiguous byte span of its chunk range.
	reqs := make([]mpiio.Range, n)
	var stored int64
	for i := 0; i < n; i++ {
		lo, hi := int64(-1), int64(-1)
		for ts := i; ts < timeSteps; ts += n {
			c := v.Chunks[ts]
			if lo < 0 || c.Offset < lo {
				lo = c.Offset
			}
			if c.Offset+c.StoredSize > hi {
				hi = c.Offset + c.StoredSize
			}
			stored += c.StoredSize
		}
		if lo >= 0 {
			reqs[i] = mpiio.Range{Off: lo, Len: hi - lo}
		}
	}
	start := r.k.Now()
	res := comm.CollectiveRead(fig6Path, reqs, minInt(n, 8))
	r.k.Run()
	if res.Err != nil {
		return 0, 0, 0, res.Err
	}
	// Decompression happens after the collective completes (charged on
	// the critical path, spread across ranks).
	raw := v.RawBytes()
	var end float64
	for i := 0; i < n; i++ {
		r.k.Go("decomp", func(p *sim.Proc) {
			p.Sleep(decomp * float64(raw) / float64(n) / 1e6)
			if p.Now() > end {
				end = p.Now()
			}
		})
	}
	r.k.Run()
	return end - start, stored, raw, nil
}

// mpiCollective: the ideal upper bound — the file read as flat bytes with
// a collective contiguous split, no structure, no decompression.
func mpiCollective(r *fig6Rig, n int, _ float64) (float64, int64, int64, error) {
	ranks := make([]mpiio.Rank, n)
	for i := range ranks {
		ranks[i] = mpiio.Rank{Node: r.hpc.Nodes[i%len(r.hpc.Nodes)], Client: r.hpcMount(i)}
	}
	comm := mpiio.NewComm(r.k, r.hpc, ranks)
	size := int64(len(r.blob))
	start := r.k.Now()
	res := comm.CollectiveRead(fig6Path, mpiio.ContiguousSplit(size, n), minInt(n, 8))
	r.k.Run()
	if res.Err != nil {
		return 0, 0, 0, res.Err
	}
	return res.End - start, size, size, nil
}

// scidpReaders: n concurrent SciDP tasks, each resolving its dummy block
// (a time-slab of QR) through the PFS Reader over the interlink.
func scidpReaders(r *fig6Rig, n int, decomp float64) (float64, int64, int64, error) {
	v, err := qrLayout(r.blob)
	if err != nil {
		return 0, 0, 0, err
	}
	timeSteps := v.Dims[0].Len
	rawPer := v.RawBytes() / int64(timeSteps)
	storedPer := make([]int64, timeSteps)
	for i, c := range v.Chunks {
		storedPer[i] = c.StoredSize
	}
	reg := core.NewExplorer(nil).Registry
	var errOut error
	start := r.k.Now()
	var end float64
	var stored, raw int64
	for i := 0; i < n; i++ {
		i := i
		node := r.bd.Nodes[i%len(r.bd.Nodes)]
		r.k.Go(fmt.Sprintf("scidp-%d", i), func(p *sim.Proc) {
			reader := core.NewPFSReader(reg, r.bdMount(node))
			for ts := i; ts < timeSteps; ts += n {
				slab, err := reader.ReadSlab(p, &core.SlabSource{
					PFSPath: fig6Path, Format: "netcdf", VarPath: "QR",
					TypeName: "float", ElemSize: 4,
					Start: []int{ts, 0, 0, 0},
					Count: []int{1, r.s.Levels, r.s.Lat, r.s.Lon},
				})
				if err != nil {
					errOut = err
					return
				}
				p.Sleep(decomp * float64(len(slab.Raw)) / 1e6)
				stored += storedPer[ts]
				raw += rawPer
			}
			if p.Now() > end {
				end = p.Now()
			}
		})
	}
	r.k.Run()
	return end - start, stored, raw, errOut
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Fig6 sweeps reader counts over the four I/O methods and reports logical
// bandwidth (GB/s): NC Ind I/O, NC Coll I/O, MPI Coll I/O (ideal), SciDP
// (compressed bytes / time), and SciDP Equal (raw bytes / time).
func Fig6(s Scale, timeSteps int, readerCounts []int) (*Table, error) {
	blob, err := fig6File(s, timeSteps)
	if err != nil {
		return nil, err
	}
	// Decompression cost per actual raw MB, scaled from 0.004 s per
	// logical MB.
	decomp := 0.004 * s.ByteScale()
	t := &Table{
		ID:     "Figure 6",
		Title:  "I/O bandwidth of SciDP and HPC I/O methods (logical GB/s)",
		Header: append([]string{"readers"}, "NC Ind I/O", "NC Coll I/O", "MPI Coll I/O", "SciDP", "SciDP Equal"),
	}
	modes := []fig6Mode{ncIndependent, ncCollective, mpiCollective, scidpReaders}
	for _, n := range readerCounts {
		row := []string{fmt.Sprintf("%d", n)}
		var scidpStoredBW, scidpRawBW float64
		for mi, mode := range modes {
			rig := newFig6Rig(s, blob)
			elapsed, storedBytes, rawBytes, err := mode(rig, n, decomp)
			if err != nil {
				return nil, err
			}
			logicalGBs := func(b int64) float64 {
				return float64(b) * s.ByteScale() / elapsed / 1e9
			}
			switch mi {
			case 3: // SciDP: both compressed and equivalent bandwidth
				scidpStoredBW = logicalGBs(storedBytes)
				scidpRawBW = logicalGBs(rawBytes)
			default:
				row = append(row, fmt.Sprintf("%.2f", logicalGBs(storedBytes)))
			}
		}
		row = append(row, fmt.Sprintf("%.2f", scidpStoredBW), fmt.Sprintf("%.2f", scidpRawBW))
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"SciDP Equal divides raw (decompressed) bytes by I/O time, as in the paper; it should approach MPI Coll I/O as readers increase",
		"I/O time includes decompression (paper Section V-C)")
	return t, nil
}

package bench

import (
	"fmt"

	"scidp/internal/core"
	"scidp/internal/ioengine"
	"scidp/internal/sim"
	"scidp/internal/solutions"
	"scidp/internal/workloads"
)

// AblationIOEngine measures the unified I/O engine on the Img-only
// pipeline (the Figure 5 path): a cold run with per-node chunk caches, a
// warm rerun over the same environment and caches (repeated GetVara over
// the same timesteps skips both the PFS transfer and the inflate), and a
// readahead-enabled cold run that overlaps each task's chunk transfers.
// Hit rates come from the engine's own cache counters.
func AblationIOEngine(s Scale, timestamps int) (*Table, error) {
	t := &Table{
		ID:     "Ablation A5",
		Title:  fmt.Sprintf("Unified I/O engine: chunk cache and readahead (Img-only, %d timestamps)", timestamps),
		Header: []string{"mode", "process(s)", "speedup vs cold", "chunk hits", "chunk misses", "hit rate"},
	}
	blobs, ds, err := dataset(s, timestamps)
	if err != nil {
		return nil, err
	}
	wl := &solutions.Workload{Dataset: ds, Var: "QR", Analysis: solutions.AnalysisNone}

	// Cold then warm share one environment and one per-node cache set;
	// distinct run names keep their HDFS mirrors and results apart.
	const cacheBudget = int64(64 << 20)
	caches := ioengine.NewCacheSet(cacheBudget)
	env := solutions.NewEnv(s.EnvConfig(0))
	workloads.Install(env.PFS, blobs)
	var cold, warm *solutions.Report
	var coldStats, warmStats ioengine.CacheStats
	var rerr error
	env.K.Go("driver", func(p *sim.Proc) {
		opts := solutions.SciDPOptions{
			Caches: caches,
			Engine: core.EngineOptions{CacheBytes: cacheBudget},
		}
		opts.Name = "scidp-cold"
		if cold, rerr = solutions.RunSciDPWith(p, env, wl, opts); rerr != nil {
			return
		}
		coldStats = caches.Stats()
		opts.Name = "scidp-warm"
		if warm, rerr = solutions.RunSciDPWith(p, env, wl, opts); rerr != nil {
			return
		}
		warmStats = caches.Stats().Sub(coldStats)
	})
	env.K.Run()
	if rerr != nil {
		return nil, rerr
	}

	// Readahead on a fresh environment: no cache reuse, so the delta to
	// cold isolates the overlap of each task's chunk transfers.
	penv := solutions.NewEnv(s.EnvConfig(0))
	workloads.Install(penv.PFS, blobs)
	var pre *solutions.Report
	penv.K.Go("driver", func(p *sim.Proc) {
		pre, rerr = solutions.RunSciDPWith(p, penv, wl, solutions.SciDPOptions{
			Name:   "scidp-prefetch",
			Engine: core.EngineOptions{Prefetch: 4},
		})
	})
	penv.K.Run()
	if rerr != nil {
		return nil, rerr
	}

	row := func(mode string, rep *solutions.Report, st ioengine.CacheStats) {
		t.AddRow(mode, secs(rep.ProcessSeconds), ratio(cold.ProcessSeconds/rep.ProcessSeconds),
			fmt.Sprintf("%d", st.Hits), fmt.Sprintf("%d", st.Misses),
			fmt.Sprintf("%.0f%%", 100*st.HitRate()))
	}
	row("cold cache", cold, coldStats)
	row("warm cache", warm, warmStats)
	row("prefetch=4 (cold)", pre, ioengine.CacheStats{})
	t.Notes = append(t.Notes,
		fmt.Sprintf("per-node decompressed-chunk cache budget %d MB; warm rerun shares the cold run's environment and caches", cacheBudget>>20),
		"prefetch run uses a private staging cache per task, so no cross-task hits are counted")
	if warm.ProcessSeconds >= cold.ProcessSeconds {
		return nil, fmt.Errorf("bench: warm-cache run (%.2fs) not faster than cold (%.2fs)", warm.ProcessSeconds, cold.ProcessSeconds)
	}
	if pre.ProcessSeconds >= cold.ProcessSeconds {
		return nil, fmt.Errorf("bench: prefetch run (%.2fs) not faster than cold (%.2fs)", pre.ProcessSeconds, cold.ProcessSeconds)
	}
	return t, nil
}

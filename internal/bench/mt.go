// The mt experiment: the multi-tenant scidpd service under a swept
// offered load. Three tenant classes — an interactive small-grep
// tenant, a diurnal batch tenant, and a bursty writer — submit Poisson
// arrivals at 0.5x, 1x, and 2x of a base intensity; every point replays
// the same generated trace twice (same-seed determinism check) through
// the fair-share/backfill scheduler, and the highest point additionally
// runs the strict-FIFO baseline to measure what fair share + backfill
// buy the small-job class's tail latency.
package bench

import (
	"fmt"

	"scidp/internal/ioengine"
	"scidp/internal/obs"
	"scidp/internal/solutions"
	"scidp/internal/tenant"
	"scidp/internal/tenant/loadgen"
)

// MTNodes x MTSlotsPerNode is the service cluster: 12 task slots, wide
// enough that the scheduler's MaxConcurrent job window leaves idle
// slots for backfill when the running mix skews small.
const (
	MTNodes        = 6
	MTSlotsPerNode = 2
	// MTSeed roots the load generator for every point.
	MTSeed = 1337
)

// mtClasses is the base (1x) tenant mix.
func mtClasses(mult float64) []loadgen.Class {
	return []loadgen.Class{
		{Name: "inter", Rate: 0.50 * mult, Kinds: []string{"grep"}, Priority: 1,
			Quota: tenant.Quota{MaxQueued: 24, MaxRunning: 4, SlotShare: 0.75, Weight: 3}},
		{Name: "batch", Rate: 0.20 * mult, Diurnal: 0.7,
			Kinds: []string{"sort", "write"}, Sizes: []string{"small", "medium"},
			Quota: tenant.Quota{MaxQueued: 16, MaxRunning: 2, Weight: 1}},
		{Name: "burst", Rate: 0.30 * mult, Kinds: []string{"write"},
			Quota: tenant.Quota{MaxQueued: 12, MaxRunning: 2, SlotShare: 0.5, Weight: 1}},
	}
}

// MTRun is one load point's outcome.
type MTRun struct {
	// LoadMult is the offered-load multiple of the base mix.
	LoadMult float64 `json:"load_mult"`
	// Arrivals is the generated trace length.
	Arrivals  int `json:"arrivals"`
	Completed int `json:"completed"`
	Rejected  int `json:"rejected"`
	Failed    int `json:"failed"`
	// P50/P99Seconds are job sojourn percentiles across all tenants.
	P50Seconds float64 `json:"p50_seconds"`
	P99Seconds float64 `json:"p99_seconds"`
	// SmallJobP99 is the interactive class's p99 — the tail that fair
	// share and backfill exist to protect.
	SmallJobP99      float64 `json:"small_job_p99_seconds"`
	GoodputJobsPerKs float64 `json:"goodput_jobs_per_ks"`
	Preemptions      int     `json:"preemptions"`
	Backfills        int     `json:"backfills"`
	// Deterministic reports whether the same-seed repeat reproduced
	// both the completion digest and the export digest byte for byte.
	Deterministic bool `json:"deterministic"`
	WithinQuota   bool `json:"within_quota"`
	// PerClass is the per-tenant breakdown (latency, admission,
	// preemption and backfill counts, quota high-water marks).
	PerClass []tenant.TenantSummary `json:"per_class"`
	// FIFOSmallJobP99 is the strict-FIFO baseline's interactive p99 at
	// this point (only measured at the highest load; zero elsewhere).
	FIFOSmallJobP99 float64 `json:"fifo_small_job_p99_seconds,omitempty"`
	FIFOP99         float64 `json:"fifo_p99_seconds,omitempty"`
}

// MTResult is the machine-readable mt artifact (BENCH_mt.json).
type MTResult struct {
	Solution string  `json:"solution"`
	Nodes    int     `json:"nodes"`
	Slots    int     `json:"slots_per_node"`
	Horizon  float64 `json:"horizon_seconds"`
	Seed     int64   `json:"seed"`
	Runs     []MTRun `json:"runs"`
	// BackfillP99Speedup is FIFO small-job p99 over fair-share
	// small-job p99 at the highest load — >1 means the fair-share +
	// backfill scheduler shortened the interactive tail.
	BackfillP99Speedup float64 `json:"backfill_p99_speedup"`
}

// MinSpeedup is the -mt-floor guard's measurement.
func (r *MTResult) MinSpeedup() float64 { return r.BackfillP99Speedup }

// mtReplay runs one trace through a fresh service, returning the
// summary with the export digest filled in.
func mtReplay(tr *tenant.Trace, fifo bool) (*tenant.Summary, error) {
	sum, _, err := mtReplayTier(tr, fifo, ioengine.TierConfig{})
	return sum, err
}

// mtReplayTier is mtReplay with a cooperative cache tier attached to
// the service cluster (zero config = detached); it additionally
// returns the tier's counters — the cache experiment's mt arm.
func mtReplayTier(tr *tenant.Trace, fifo bool, tierCfg ioengine.TierConfig) (*tenant.Summary, ioengine.TierStats, error) {
	// A private registry per run: the same-seed repeat must hash a
	// single run's exports, and the process label must not vary.
	reg := obs.New()
	reg.SetProcess("scidpd")
	env := solutions.NewEnv(solutions.EnvConfig{
		Nodes: MTNodes, SlotsPerNode: MTSlotsPerNode, ByteScale: 1,
		Obs: reg, Workers: 1, CacheTier: tierCfg,
	})
	defer env.Close()
	// MaxConcurrent 3 on 12 slots: the job window, not the slot pool,
	// is the scarce resource, so fair share's backfill path (starting
	// small jobs beyond the window into idle slots) is load-bearing —
	// the FIFO baseline has no such path and strands the idle slots.
	svc := tenant.New(env, tenant.Config{FIFO: fifo, MaxConcurrent: 3})
	sum, err := tenant.Replay(svc, tr)
	if err != nil {
		return nil, ioengine.TierStats{}, err
	}
	sum.ExportDigest = tenant.RegistryDigest(reg)
	return sum, env.Tier.Stats(), nil
}

func mtClassP99(sum *tenant.Summary, class string) float64 {
	for _, t := range sum.PerTenant {
		if t.Tenant == class {
			return t.P99Seconds
		}
	}
	return 0
}

// RunMT sweeps the multi-tenant service across offered-load multiples.
func RunMT(mults []float64, horizon float64) (*Table, *MTResult, error) {
	if len(mults) == 0 {
		mults = []float64{0.5, 1, 2}
	}
	res := &MTResult{
		Solution: "scidpd", Nodes: MTNodes, Slots: MTSlotsPerNode,
		Horizon: horizon, Seed: MTSeed,
	}
	t := &Table{
		ID:    "MT",
		Title: "multi-tenant service: fair share + backfill under swept offered load",
		Header: []string{"load", "jobs", "done", "rej", "p50 s", "p99 s",
			"inter p99 s", "goodput/ks", "preempt", "backfill", "deterministic"},
	}
	for i, mult := range mults {
		tr, err := loadgen.Generate(loadgen.TraceSpec{
			Name: fmt.Sprintf("mt-%.2gx", mult), Seed: MTSeed, Horizon: horizon,
			Classes: mtClasses(mult),
		})
		if err != nil {
			return nil, nil, err
		}
		sum, err := mtReplay(tr, false)
		if err != nil {
			return nil, nil, fmt.Errorf("mt %gx: %w", mult, err)
		}
		rep, err := mtReplay(tr, false)
		if err != nil {
			return nil, nil, fmt.Errorf("mt %gx repeat: %w", mult, err)
		}
		run := MTRun{
			LoadMult: mult, Arrivals: len(tr.Arrivals),
			Completed: sum.Completed, Rejected: sum.Rejected, Failed: sum.Failed,
			P50Seconds: sum.P50Seconds, P99Seconds: sum.P99Seconds,
			SmallJobP99:      mtClassP99(sum, "inter"),
			GoodputJobsPerKs: sum.GoodputJobsPerKs,
			Preemptions:      sum.Preemptions, Backfills: sum.Backfills,
			Deterministic: sum.CompletionDigest == rep.CompletionDigest &&
				sum.ExportDigest == rep.ExportDigest && sum.ExportDigest != "",
			WithinQuota: sum.WithinQuota,
			PerClass:    sum.PerTenant,
		}
		// The FIFO baseline arm at the highest load: same trace,
		// strict arrival order, full-demand grants, no preemption or
		// backfill.
		if i == len(mults)-1 {
			fifoSum, err := mtReplay(tr, true)
			if err != nil {
				return nil, nil, fmt.Errorf("mt %gx fifo: %w", mult, err)
			}
			run.FIFOSmallJobP99 = mtClassP99(fifoSum, "inter")
			run.FIFOP99 = fifoSum.P99Seconds
			if run.SmallJobP99 > 0 {
				res.BackfillP99Speedup = run.FIFOSmallJobP99 / run.SmallJobP99
			}
		}
		res.Runs = append(res.Runs, run)
		det := "yes"
		if !run.Deterministic {
			det = "NO"
		}
		t.AddRow(fmt.Sprintf("%.2gx", mult), fmt.Sprintf("%d", run.Arrivals),
			fmt.Sprintf("%d", run.Completed), fmt.Sprintf("%d", run.Rejected),
			secs(run.P50Seconds), secs(run.P99Seconds), secs(run.SmallJobP99),
			fmt.Sprintf("%.0f", run.GoodputJobsPerKs),
			fmt.Sprintf("%d", run.Preemptions), fmt.Sprintf("%d", run.Backfills), det)
	}
	last := res.Runs[len(res.Runs)-1]
	t.Notes = append(t.Notes,
		fmt.Sprintf("cluster %dx%d slots, horizon %.0fs, seed %d; every point is replayed twice same-seed (deterministic column)",
			MTNodes, MTSlotsPerNode, horizon, MTSeed),
		fmt.Sprintf("FIFO baseline at %.2gx: interactive p99 %.1fs vs fair-share %.1fs (%.2fx), overall p99 %.1fs vs %.1fs",
			last.LoadMult, last.FIFOSmallJobP99, last.SmallJobP99,
			res.BackfillP99Speedup, last.FIFOP99, last.P99Seconds))
	return t, res, nil
}

package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"scidp/internal/ioengine"
	"scidp/internal/obs"
)

// exportRun executes one quick scidp run with a fresh registry attached
// and returns both export streams.
func exportRun(t *testing.T) (trace, prom []byte) {
	t.Helper()
	prev := Obs
	defer func() { Obs = prev }()
	Obs = obs.New()
	ioengine.RegisterObs(Obs)
	ClearCache() // a shared dataset blob cache would mask install-order effects
	if _, err := RunOne(QuickScale(), 4, 0, 0, "scidp", nil); err != nil {
		t.Fatal(err)
	}
	var tb, pb bytes.Buffer
	if err := Obs.WriteChromeTrace(&tb); err != nil {
		t.Fatal(err)
	}
	if err := Obs.WritePrometheus(&pb); err != nil {
		t.Fatal(err)
	}
	return tb.Bytes(), pb.Bytes()
}

// TestExportsDeterministicAcrossRuns is the acceptance check: two
// identical runs must produce byte-identical Chrome-trace and
// Prometheus exports.
func TestExportsDeterministicAcrossRuns(t *testing.T) {
	t1, p1 := exportRun(t)
	t2, p2 := exportRun(t)
	if !bytes.Equal(t1, t2) {
		t.Error("Chrome traces differ between identical runs")
	}
	if !bytes.Equal(p1, p2) {
		t.Error("Prometheus dumps differ between identical runs")
	}
}

// TestTraceCoversSpanTree parses the Chrome trace and asserts the span
// tree reaches every level the issue names: job, phase, task, reader
// call, and stripe flows, each linked to its parent.
func TestTraceCoversSpanTree(t *testing.T) {
	raw, prom := exportRun(t)
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	levels := map[string]int{}
	linked := 0
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		switch {
		case strings.HasPrefix(ev.Name, "job:"):
			levels["job"]++
		case strings.HasPrefix(ev.Name, "phase:"):
			levels["phase"]++
		case strings.HasPrefix(ev.Name, "task:"):
			levels["task"]++
		case strings.HasPrefix(ev.Name, "PFSReader."):
			levels["read"]++
		case ev.Name == "pfs.ReadAt":
			levels["pfs"]++
		case ev.Name == "flow":
			levels["flow"]++
			if _, ok := ev.Args["flow"]; ok {
				linked++ // cross-reference into the kernel flow events
			}
		}
		if _, ok := ev.Args["parent"]; ok && ev.Name != "job:scidp" {
			continue
		}
	}
	for _, want := range []string{"job", "phase", "task", "read", "pfs", "flow"} {
		if levels[want] == 0 {
			t.Errorf("span tree missing %q level (have %v)", want, levels)
		}
	}
	if linked == 0 {
		t.Error("no flow span carries a kernel flow-id cross-reference")
	}

	for _, series := range []string{
		`pfs_ost_read_bytes_total{ost="ost-0"}`,
		"ioengine_cache_hit_ratio",
		`hdfs_block_reads_total{locality="local"}`,
		`hdfs_block_reads_total{locality="remote"}`,
		"sim_resource_bytes_total",
		"mr_task_seconds_bucket",
	} {
		if !strings.Contains(string(prom), series) {
			t.Errorf("metrics dump missing %s", series)
		}
	}
}

package bench

import (
	"fmt"
	"runtime"
	"time"

	"scidp/internal/obs"
	"scidp/internal/sim"
	"scidp/internal/solutions"
	"scidp/internal/workloads"
)

// ParallelRun is one worker-count sweep point: the SciDP pipeline run
// with a data-plane compute pool of that size, timed on the real clock.
type ParallelRun struct {
	// Workers is the data-plane pool size for this point.
	Workers int `json:"workers"`
	// WallSeconds is the best real wall-clock over the repetitions.
	WallSeconds float64 `json:"wall_seconds"`
	// Speedup is wall(workers=1) / wall(this), from the best times.
	Speedup float64 `json:"speedup_vs_workers_1"`
	// JCTSeconds is the virtual job completion time — identical across
	// worker counts by the two-plane determinism guarantee.
	JCTSeconds float64 `json:"jct_seconds"`
	// OutputDigest is the sha256 over the sorted audited output files.
	OutputDigest string `json:"output_digest"`
	// ExportDigest is the sha256 over the Chrome-trace and Prometheus
	// exports of the run's private registry.
	ExportDigest string `json:"export_digest"`
	// MatchesReference reports whether both digests are byte-identical
	// to the workers=1 reference run's.
	MatchesReference bool `json:"matches_reference"`
	// Deterministic reports whether every repetition at this worker
	// count reproduced both digests byte-for-byte.
	Deterministic bool `json:"deterministic"`
}

// ParallelResult is the `-exp parallel` experiment's machine-readable
// output (what BENCH_parallel.json records).
type ParallelResult struct {
	// Solution is the data path under test.
	Solution string `json:"solution"`
	// Timestamps sizes the dataset (one map task per timestamp).
	Timestamps int `json:"timestamps"`
	// GOMAXPROCS is the Go scheduler's processor count during the sweep
	// — the ceiling on real data-plane parallelism. Wall-clock speedup
	// beyond it is not physically possible.
	GOMAXPROCS int `json:"gomaxprocs"`
	// Reps is how many times each point ran (best wall time reported).
	Reps int `json:"reps"`
	// Runs are the sweep points in ascending worker order.
	Runs []ParallelRun `json:"runs"`
}

// parallelOutcome is one execution's raw measurements.
type parallelOutcome struct {
	wall         float64
	jct          float64
	outputDigest string
	exportDigest string
}

// parallelOneRun executes the SciDP pipeline once with a data-plane
// pool of the given size on a fresh fault-free testbed, timing the
// kernel run (where all simulated and data-plane work happens) on the
// real clock, then audits the output digest and export digest exactly
// as the faults experiment does.
func parallelOneRun(s Scale, timestamps, workers int) (*parallelOutcome, error) {
	blobs, ds, err := dataset(s, timestamps)
	if err != nil {
		return nil, err
	}
	// One fixed process label for every point: the exports must be
	// byte-identical across worker counts, so the count cannot appear
	// in any exported string.
	reg := obs.New()
	reg.SetProcess("parallel-sweep")
	cfg := s.EnvConfig(4)
	cfg.SlotsPerNode = 2
	cfg.Obs = reg
	cfg.Workers = workers
	env := solutions.NewEnv(cfg)
	defer env.Close()
	workloads.Install(env.PFS, blobs)
	wl := &solutions.Workload{Dataset: ds, Var: "QR", Analysis: solutions.AnalysisNone}

	out := &parallelOutcome{}
	var rep *solutions.Report
	var runErr error
	env.K.Go("driver", func(p *sim.Proc) {
		rep, runErr = solutions.RunSciDP(p, env, wl)
		if runErr != nil {
			return
		}
		out.outputDigest, _, runErr = auditDigest(p, env, "/results/scidp")
	})
	start := time.Now()
	env.K.Run()
	out.wall = time.Since(start).Seconds()
	env.ExportSimMetrics()
	if runErr != nil {
		return nil, fmt.Errorf("parallel run workers=%d: %w", workers, runErr)
	}
	out.jct = rep.TotalSeconds
	if out.exportDigest, err = exportDigest(reg); err != nil {
		return nil, err
	}
	return out, nil
}

// ParallelWorkerCounts is the sweep: 1, 2, 4, and GOMAXPROCS when it
// exceeds 4. Counts above the core count still run (and still produce
// identical bytes — determinism never depends on the count); they just
// cannot go faster.
func ParallelWorkerCounts() []int {
	counts := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		counts = append(counts, n)
	}
	return counts
}

// RunParallel sweeps the SciDP pipeline across data-plane worker counts.
// Every point runs reps times: the best wall-clock is the measurement,
// and all repetitions plus the workers=1 reference must agree on the
// output digest and the observability export digest — the two-plane
// executor's worker-count invariance, checked end to end on the full
// pipeline.
func RunParallel(s Scale, timestamps, reps int) (*Table, *ParallelResult, error) {
	if reps < 1 {
		reps = 1
	}
	res := &ParallelResult{
		Solution:   "scidp",
		Timestamps: timestamps,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Reps:       reps,
	}
	var ref *parallelOutcome
	for _, w := range ParallelWorkerCounts() {
		var best *parallelOutcome
		deterministic := true
		for r := 0; r < reps; r++ {
			out, err := parallelOneRun(s, timestamps, w)
			if err != nil {
				return nil, nil, err
			}
			if best == nil {
				best = out
			} else {
				if out.outputDigest != best.outputDigest || out.exportDigest != best.exportDigest {
					deterministic = false
				}
				if out.wall < best.wall {
					best.wall = out.wall
				}
			}
		}
		if ref == nil {
			ref = best
		}
		pr := ParallelRun{
			Workers:       w,
			WallSeconds:   best.wall,
			JCTSeconds:    best.jct,
			OutputDigest:  best.outputDigest,
			ExportDigest:  best.exportDigest,
			Deterministic: deterministic,
			MatchesReference: best.outputDigest == ref.outputDigest &&
				best.exportDigest == ref.exportDigest,
		}
		if best.wall > 0 {
			pr.Speedup = ref.wall / best.wall
		}
		res.Runs = append(res.Runs, pr)
	}

	t := &Table{
		ID:    "Parallel",
		Title: "Two-plane executor: real wall-clock vs. data-plane worker count (virtual results invariant)",
		Header: []string{"workers", "wall (s)", "speedup", "JCT (virtual s)",
			"matches workers=1", "deterministic"},
		Notes: []string{
			fmt.Sprintf("GOMAXPROCS=%d; wall-clock speedup tracks physical cores — on a single-core host all counts land within noise of each other by design", res.GOMAXPROCS),
			fmt.Sprintf("each point runs %d time(s); best wall-clock reported; virtual JCT, output digest, and export digest must be identical at every worker count", reps),
			fmt.Sprintf("testbed: 4 nodes x 2 slots, %d timestamps, fault-free", timestamps),
		},
	}
	for _, pr := range res.Runs {
		t.AddRow(
			fmt.Sprintf("%d", pr.Workers),
			fmt.Sprintf("%.3f", pr.WallSeconds),
			ratio(pr.Speedup),
			secs(pr.JCTSeconds),
			fmt.Sprintf("%v", pr.MatchesReference),
			fmt.Sprintf("%v", pr.Deterministic),
		)
	}
	return t, res, nil
}

package bench

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"time"

	"scidp/internal/aquery"
	"scidp/internal/cluster"
	"scidp/internal/ioengine"
	"scidp/internal/netcdf"
	"scidp/internal/obs"
	"scidp/internal/pfs"
	"scidp/internal/rsql"
	"scidp/internal/sim"
)

// This file is the chunk-pushdown query experiment: selective SQL over a
// NU-WRF-shaped variable served from the PFS, run twice per query — once
// with the planner's zone-map pruning and projection (pushdown), once in
// the full-scan oracle mode (every chunk read and decoded, like the
// fair-share experiment's FairShareFull control). The two modes must
// produce byte-identical result frames; the bench errors out otherwise.
// A third pushdown run with a fresh registry checks that the metric
// export is deterministic. The BENCH_query.json artifact carries chunk
// and byte accounting plus the digests; MinSkipRatio feeds the CI floor
// (-query-floor).

// queryLevels is the experiment geometry's level count, fixed regardless
// of -quick so the level-selective queries keep an exact 10x chunk
// selectivity (one chunk per level).
const queryLevels = 10

// QueryRun is one mode's measurement of one query.
type QueryRun struct {
	ChunksScanned int     `json:"chunks_scanned"`
	ChunksSkipped int     `json:"chunks_skipped"`
	BytesInflated int64   `json:"bytes_inflated"`
	BytesAvoided  int64   `json:"bytes_avoided"`
	RowsMatched   int     `json:"rows_matched"`
	VirtualSecs   float64 `json:"virtual_secs"`
	WallSecs      float64 `json:"wall_secs"`
	// ResultDigest is sha256 of the result frame's CSV rendering.
	ResultDigest string `json:"result_digest"`
	// MetricsDigest is sha256 of the run's full Prometheus export.
	MetricsDigest string `json:"metrics_digest"`
}

// QueryPoint is one query's pushdown-vs-oracle comparison.
type QueryPoint struct {
	Name        string   `json:"name"`
	SQL         string   `json:"sql"`
	ChunksTotal int      `json:"chunks_total"`
	Pushdown    QueryRun `json:"pushdown"`
	Oracle      QueryRun `json:"oracle"`
	// RepeatMetricsDigest is the metrics digest of a second same-seed
	// pushdown run; determinism requires it to equal Pushdown's.
	RepeatMetricsDigest string `json:"repeat_metrics_digest"`
	// ChunkSkipRatio is oracle chunks decoded / pushdown chunks decoded.
	ChunkSkipRatio float64 `json:"chunk_skip_ratio"`
	// ByteSkipRatio is oracle bytes inflated / pushdown bytes inflated.
	ByteSkipRatio float64 `json:"byte_skip_ratio"`
	// DigestsMatch records pushdown == oracle result bytes.
	DigestsMatch bool `json:"digests_match"`
	// Deterministic records pushdown repeat == first run metric bytes.
	Deterministic bool `json:"deterministic"`
}

// QueryResult is the machine-readable output (BENCH_query.json).
type QueryResult struct {
	Levels int          `json:"levels"`
	Lat    int          `json:"lat"`
	Lon    int          `json:"lon"`
	Points []QueryPoint `json:"points"`
}

// MinSkipRatio returns the weakest pruning across points — the smaller
// of the chunk and byte ratios, minimized over queries (0 with no
// points). The CI floor checks this stays >= 5x.
func (r *QueryResult) MinSkipRatio() float64 {
	min := 0.0
	for i, p := range r.Points {
		m := math.Min(p.ChunkSkipRatio, p.ByteSkipRatio)
		if i == 0 || m < min {
			min = m
		}
	}
	return min
}

// queryFile generates the experiment's variable: QR[level][lat][lon],
// one chunk per level, values rising with level so value-threshold
// predicates prune through the zone maps alone.
func queryFile(lat, lon int) ([]byte, error) {
	w := netcdf.NewWriter()
	w.AddDim("level", queryLevels)
	w.AddDim("lat", lat)
	w.AddDim("lon", lon)
	if err := w.AddVar("QR", netcdf.Float32, []string{"level", "lat", "lon"},
		netcdf.Chunking{Shape: []int{1, lat, lon}, Deflate: 1}); err != nil {
		return nil, err
	}
	per := lat * lon
	vals := make([]float32, queryLevels*per)
	for i := range vals {
		vals[i] = float32(math.Sin(float64(i)/37.0) + 2.5*float64(i/per))
	}
	if err := w.PutVarFloat32("QR", vals); err != nil {
		return nil, err
	}
	return w.Bytes()
}

const queryPath = "/query/plot_all.nc"

// queryRunOnce executes one SQL query over the file served from a fresh
// PFS testbed, with the chunk scans offloaded to a 4-worker data plane.
func queryRunOnce(s Scale, blob []byte, sql string, mode rsql.PushdownMode) (QueryRun, error) {
	bs := s.ByteScale()
	k := sim.NewKernel()
	pool := sim.NewComputePool(4)
	defer pool.Close()
	k.SetComputePool(pool)
	reg := obs.New()
	k.SetObs(reg)
	bd := cluster.New(k, "bd", cluster.DefaultHardware(4, 8).Scaled(bs))
	fs := pfs.New(k, pfs.DefaultConfig().Scaled(bs))
	il := cluster.NewInterlink(2*1.25e9/bs, 0.0002)
	fs.Put(queryPath, blob)

	var run QueryRun
	var errOut error
	wallStart := time.Now()
	k.Go("query", func(p *sim.Proc) {
		client := fs.NewClient(il.Link, bd.Node(0).NIC)
		eng, err := client.Engine(p, queryPath)
		if err != nil {
			errOut = err
			return
		}
		b := ioengine.Bind(p, eng, ioengine.Options{Cache: ioengine.NewCache(1 << 22), Prefetch: 2, Obs: reg})
		f, err := netcdf.Open(b)
		if err != nil {
			errOut = err
			return
		}
		tab, err := aquery.NewNetCDF(f, "QR")
		if err != nil {
			errOut = err
			return
		}
		out, st, err := rsql.QueryArrays(map[string]rsql.ArrayTable{"qr": tab}, sql, rsql.ArrayQueryOpts{Mode: mode, Obs: reg})
		if err != nil {
			errOut = err
			return
		}
		run.ChunksScanned = st.ChunksScanned
		run.ChunksSkipped = st.ChunksSkipped
		run.BytesInflated = st.BytesInflated
		run.BytesAvoided = st.BytesAvoided
		run.RowsMatched = st.RowsMatched
		run.ResultDigest = digest(out.WriteCSV())
	})
	k.Run()
	if errOut != nil {
		return QueryRun{}, errOut
	}
	run.VirtualSecs = k.Now()
	run.WallSecs = time.Since(wallStart).Seconds()
	var prom hashWriter
	if err := reg.WritePrometheus(&prom); err != nil {
		return QueryRun{}, err
	}
	run.MetricsDigest = prom.Digest()
	return run, nil
}

func digest(b []byte) string {
	h := sha256.Sum256(b)
	return hex.EncodeToString(h[:8])
}

// hashWriter hashes a stream without buffering it.
type hashWriter struct{ data []byte }

func (h *hashWriter) Write(p []byte) (int, error) {
	h.data = append(h.data, p...)
	return len(p), nil
}

func (h *hashWriter) Digest() string { return digest(h.data) }

// zoneMapThreshold picks a value threshold from the written file's own
// zone maps: the midpoint between the largest and second-largest chunk
// maxima, so exactly one chunk can contain matching rows — a pure
// statistics-driven 10x selectivity, independent of the data formula.
func zoneMapThreshold(blob []byte) (float64, error) {
	f, err := netcdf.Open(netcdf.BytesReader(blob))
	if err != nil {
		return 0, err
	}
	v, err := f.Var("QR")
	if err != nil {
		return 0, err
	}
	first, second := math.Inf(-1), math.Inf(-1)
	for _, c := range v.Chunks {
		if c.Stats == nil {
			return 0, fmt.Errorf("bench: query file lacks zone maps")
		}
		if c.Stats.Max > first {
			first, second = c.Stats.Max, first
		} else if c.Stats.Max > second {
			second = c.Stats.Max
		}
	}
	return (first + second) / 2, nil
}

// RunQuery runs the pushdown experiment and returns the table plus the
// machine-readable result. A digest mismatch between modes, or a
// nondeterministic repeat, is an error, not a table row.
func RunQuery(s Scale) (*Table, *QueryResult, error) {
	blob, err := queryFile(s.Lat, s.Lon)
	if err != nil {
		return nil, nil, err
	}
	thresh, err := zoneMapThreshold(blob)
	if err != nil {
		return nil, nil, err
	}
	latCut := s.Lat / 10
	if latCut < 1 {
		latCut = 1
	}
	points := []struct{ name, sql string }{
		{"topk-sel10", `SELECT lat, lon, value FROM qr WHERE level = 5 ORDER BY value DESC LIMIT 16`},
		{"range-sel100", fmt.Sprintf(`SELECT lat, lon, value FROM qr WHERE level = 5 AND lat < %d`, latCut)},
		{"agg-sel10", `SELECT level, COUNT(*), SUM(value), MAX(value) FROM qr WHERE level >= 9 GROUP BY level ORDER BY level`},
		{"zonemap-topk", fmt.Sprintf(`SELECT level, value FROM qr WHERE value > %g ORDER BY value DESC LIMIT 16`, thresh)},
	}
	res := &QueryResult{Levels: queryLevels, Lat: s.Lat, Lon: s.Lon}
	t := &Table{
		ID:     "Query",
		Title:  "Chunk-pushdown query engine: zone-map pruning vs full-scan oracle",
		Header: []string{"query", "mode", "chunks", "skipped", "KB inflated", "KB avoided", "rows", "virt s", "speedup"},
	}
	for _, q := range points {
		push, err := queryRunOnce(s, blob, q.sql, rsql.Pushdown)
		if err != nil {
			return nil, nil, fmt.Errorf("bench: query %s (pushdown): %w", q.name, err)
		}
		oracle, err := queryRunOnce(s, blob, q.sql, rsql.PushdownOff)
		if err != nil {
			return nil, nil, fmt.Errorf("bench: query %s (oracle): %w", q.name, err)
		}
		repeat, err := queryRunOnce(s, blob, q.sql, rsql.Pushdown)
		if err != nil {
			return nil, nil, fmt.Errorf("bench: query %s (repeat): %w", q.name, err)
		}
		pt := QueryPoint{
			Name: q.name, SQL: q.sql,
			ChunksTotal:         push.ChunksScanned + push.ChunksSkipped,
			Pushdown:            push,
			Oracle:              oracle,
			RepeatMetricsDigest: repeat.MetricsDigest,
			DigestsMatch:        push.ResultDigest == oracle.ResultDigest,
			Deterministic:       repeat.MetricsDigest == push.MetricsDigest && repeat.ResultDigest == push.ResultDigest,
		}
		if push.ChunksScanned > 0 {
			pt.ChunkSkipRatio = float64(oracle.ChunksScanned) / float64(push.ChunksScanned)
		}
		if push.BytesInflated > 0 {
			pt.ByteSkipRatio = float64(oracle.BytesInflated) / float64(push.BytesInflated)
		}
		if !pt.DigestsMatch {
			return nil, nil, fmt.Errorf("bench: query %s: pushdown result %s != oracle result %s",
				q.name, push.ResultDigest, oracle.ResultDigest)
		}
		if !pt.Deterministic {
			return nil, nil, fmt.Errorf("bench: query %s: repeat run diverged (metrics %s vs %s)",
				q.name, repeat.MetricsDigest, push.MetricsDigest)
		}
		res.Points = append(res.Points, pt)
		for _, m := range []struct {
			label string
			r     QueryRun
		}{{"pushdown", push}, {"oracle", oracle}} {
			t.AddRow(q.name, m.label,
				fmt.Sprintf("%d/%d", m.r.ChunksScanned, pt.ChunksTotal),
				fmt.Sprintf("%d", m.r.ChunksSkipped),
				fmt.Sprintf("%.1f", float64(m.r.BytesInflated)/1e3),
				fmt.Sprintf("%.1f", float64(m.r.BytesAvoided)/1e3),
				fmt.Sprintf("%d", m.r.RowsMatched),
				fmt.Sprintf("%.4f", m.r.VirtualSecs),
				ratio(oracle.VirtualSecs/push.VirtualSecs))
		}
	}
	t.Notes = append(t.Notes,
		"result frames are byte-identical between pushdown and oracle (digest-checked; a mismatch fails the run)",
		"metric exports are byte-identical across same-seed pushdown repeats (digest-checked)",
		fmt.Sprintf("min skip ratio %.1fx (chunks decoded and bytes inflated, oracle/pushdown)", res.MinSkipRatio()),
		"geometry fixed at 10 levels x lat x lon, one chunk per level, so level-selective queries are exactly 10x selective")
	return t, res, nil
}

package bench

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"time"

	"scidp/internal/cluster"
	"scidp/internal/mapreduce"
	"scidp/internal/sim"
)

// This file is the scale-out experiment: it measures the simulator
// itself rather than the paper's workloads. Two parts:
//
//   - A nodes × tasks sweep driving a synthetic streaming map-only job
//     through the full stack (topology-aware locality queue, windowed
//     split feed, slot semaphores, disk/NIC/fabric flows), reporting
//     kernel events per wall-clock second at each point. Near-constant
//     events/sec across points is the "near-linear" target: simulated
//     work grows with the cluster, simulation cost per event does not.
//
//   - A kernel microbenchmark at thousands of concurrent flows comparing
//     the current scheduler (indexed 4-ary heaps + incremental
//     fair-share) against a replica of the seed implementation
//     (container/heap with boxed events, settle-every-flow and
//     recompute-every-rate on each membership change).

// ScaleResult is the machine-readable output (BENCH_scale.json).
type ScaleResult struct {
	// GoMaxProcs records the host parallelism the wall-clocks ran under.
	GoMaxProcs int `json:"gomaxprocs"`
	// Sweep holds one entry per nodes × tasks point.
	Sweep []ScalePoint `json:"sweep"`
	// Micro is the kernel-vs-seed flow scheduling comparison.
	Micro ScaleMicro `json:"micro"`
}

// ScalePoint is one sweep measurement.
type ScalePoint struct {
	Nodes        int     `json:"nodes"`
	Tasks        int     `json:"tasks"`
	Events       uint64  `json:"events"`
	VirtualSecs  float64 `json:"virtual_secs"`
	WallSecs     float64 `json:"wall_secs"`
	EventsPerSec float64 `json:"events_per_sec"`
}

// ScaleMicro compares flow-completion throughput on the same workload.
type ScaleMicro struct {
	Flows             int     `json:"flows"`
	KernelWallSecs    float64 `json:"kernel_wall_secs"`
	SeedWallSecs      float64 `json:"seed_wall_secs"`
	KernelFlowsPerSec float64 `json:"kernel_flows_per_sec"`
	SeedFlowsPerSec   float64 `json:"seed_flows_per_sec"`
	Speedup           float64 `json:"speedup"`
}

// MinEventsPerSec returns the slowest sweep point's throughput (0 with
// no sweep) — what the CI floor checks.
func (r *ScaleResult) MinEventsPerSec() float64 {
	min := 0.0
	for i, p := range r.Sweep {
		if i == 0 || p.EventsPerSec < min {
			min = p.EventsPerSec
		}
	}
	return min
}

// scaleInput is a StreamingInput minting synthetic splits on demand:
// most splits prefer one host (round-robin), every seventh floats free.
// Reading a split pulls its bytes off the preferred host's disk —
// locally when the task landed there, across the fabric otherwise.
type scaleInput struct {
	cl    *cluster.Cluster
	total int
	bytes float64
	next  int
}

func (si *scaleInput) Splits(p *sim.Proc) ([]*mapreduce.Split, error) {
	return nil, fmt.Errorf("bench: scaleInput must stream")
}

func (si *scaleInput) SplitSource(p *sim.Proc) (mapreduce.SplitSource, error) {
	return si, nil
}

func (si *scaleInput) Next(p *sim.Proc) (*mapreduce.Split, error) {
	if si.next >= si.total {
		return nil, nil
	}
	i := si.next
	si.next++
	s := &mapreduce.Split{
		Label:   fmt.Sprintf("blk-%d", i),
		Payload: i,
		Length:  int64(si.bytes),
	}
	if i%7 != 0 {
		s.Locations = []string{si.cl.Node(i % len(si.cl.Nodes)).Name}
	}
	return s, nil
}

func (si *scaleInput) ForEach(tc *mapreduce.TaskContext, s *mapreduce.Split, fn func(key string, value any) error) error {
	i := s.Payload.(int)
	home := si.cl.Node(i % len(si.cl.Nodes))
	tc.Phase("Read", func() {
		if home == tc.Node() {
			tc.Proc().Transfer(si.bytes, cluster.LocalReadPath(home)...)
		} else {
			tc.Proc().Transfer(si.bytes, si.cl.RemoteReadPath(home, tc.Node())...)
		}
	})
	return fn(s.Label, i)
}

// scaleSweepPoint runs one synthetic job and measures the kernel.
func scaleSweepPoint(nodes, tasks int) (ScalePoint, error) {
	k := sim.NewKernel()
	cl := cluster.New(k, "sc", cluster.Config{
		Nodes: nodes, SlotsPerNode: 2,
		DiskBW: 100e6, DiskLatency: 0.002,
		NICBW: 1.25e9, NetLatency: 0.0002,
		FabricBW:     float64(nodes) * 1.25e9 / 2,
		NodesPerRack: 8, RacksPerZone: 4,
	})
	in := &scaleInput{cl: cl, total: tasks, bytes: 32e6}
	job := &mapreduce.Job{
		Name: "scale", Cluster: cl, Input: in,
		TaskStartup: 0.5, SplitWindow: 4096,
		Map: func(tc *mapreduce.TaskContext, key string, value any) error {
			tc.Charge("Compute", 0.01)
			return nil
		},
	}
	var res *mapreduce.Result
	var jerr error
	k.Go("driver", func(p *sim.Proc) {
		res, jerr = job.Run(p)
	})
	start := time.Now()
	k.Run()
	wall := time.Since(start).Seconds()
	if jerr != nil {
		return ScalePoint{}, jerr
	}
	if len(res.MapStats) != tasks {
		return ScalePoint{}, fmt.Errorf("bench: scale point ran %d tasks, want %d", len(res.MapStats), tasks)
	}
	pt := ScalePoint{
		Nodes: nodes, Tasks: tasks,
		Events:      k.EventsProcessed(),
		VirtualSecs: res.Elapsed(),
		WallSecs:    wall,
	}
	if wall > 0 {
		pt.EventsPerSec = float64(pt.Events) / wall
	}
	return pt, nil
}

// microFlow is one flow of the kernel microbenchmark workload.
type microFlow struct {
	at     float64
	bytes  float64
	r1, r2 int
}

// microWorkload draws a deterministic staggered-start flow population
// over a shared resource pool; at the default sizes roughly the whole
// population is concurrently active mid-run.
func microWorkload(flows, nRes int) []microFlow {
	rng := rand.New(rand.NewSource(7))
	out := make([]microFlow, flows)
	for i := range out {
		out[i] = microFlow{
			at:    rng.Float64() * 2,
			bytes: 1000 + rng.Float64()*9000,
			r1:    rng.Intn(nRes),
			r2:    rng.Intn(nRes),
		}
	}
	return out
}

// runMicroKernel replays the workload on the current kernel.
func runMicroKernel(work []microFlow, nRes int) (wall float64, completed int) {
	k := sim.NewKernel()
	res := make([]*sim.Resource, nRes)
	for i := range res {
		res[i] = sim.NewResource("r", 1000)
	}
	for _, mf := range work {
		mf := mf
		k.After(mf.at, func() {
			k.StartFlow(mf.bytes, func() { completed++ }, res[mf.r1], res[mf.r2])
		})
	}
	start := time.Now()
	k.Run()
	return time.Since(start).Seconds(), completed
}

// --- seed replica -----------------------------------------------------
//
// A faithful copy of the seed kernel's scheduling shape: a boxed
// container/heap event queue, a flow map, and on every membership change
// a settle of every flow followed by a recompute of every rate and a
// full-scan completion reschedule — O(F) per change, O(F²) to drain F
// flows. Kept as the microbenchmark baseline so the speedup is measured
// against the real replaced algorithm, not a guess.

type seedEvent struct {
	at  float64
	seq uint64
	fn  func()
}

type seedEventHeap []*seedEvent

func (h seedEventHeap) Len() int { return len(h) }
func (h seedEventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h seedEventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *seedEventHeap) Push(x any)   { *h = append(*h, x.(*seedEvent)) }
func (h *seedEventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

type seedRes struct {
	capacity float64
	active   int
}

type seedFlow struct {
	id        uint64
	remaining float64
	rate      float64
	res       []*seedRes
	done      func()
}

type seedSim struct {
	now        float64
	seq        uint64
	lastSettle float64
	events     seedEventHeap
	flows      map[uint64]*seedFlow
	nextID     uint64
	epoch      uint64
	completed  int
}

func newSeedSim() *seedSim { return &seedSim{flows: map[uint64]*seedFlow{}} }

func (s *seedSim) after(at float64, fn func()) {
	s.seq++
	heap.Push(&s.events, &seedEvent{at: s.now + at, seq: s.seq, fn: fn})
}

func (s *seedSim) settleAll() {
	dt := s.now - s.lastSettle
	if dt > 0 {
		for _, f := range s.flows {
			if f.rate > 0 {
				f.remaining -= f.rate * dt
			}
		}
	}
	s.lastSettle = s.now
}

func (s *seedSim) recomputeAll() {
	for _, f := range s.flows {
		rate := math.MaxFloat64
		for _, r := range f.res {
			share := r.capacity / float64(r.active)
			if share < rate {
				rate = share
			}
		}
		f.rate = rate
	}
	s.scheduleCompletion()
}

func (s *seedSim) scheduleCompletion() {
	s.epoch++
	next := math.Inf(1)
	for _, f := range s.flows {
		if f.rate <= 0 {
			continue
		}
		if d := s.now + f.remaining/f.rate; d < next {
			next = d
		}
	}
	if math.IsInf(next, 1) {
		return
	}
	epoch := s.epoch
	s.after(next-s.now, func() {
		if epoch != s.epoch {
			return
		}
		s.completeFlows()
	})
}

func (s *seedSim) completeFlows() {
	s.settleAll()
	for id, f := range s.flows {
		if f.remaining <= 1e-6 {
			for _, r := range f.res {
				r.active--
			}
			delete(s.flows, id)
			s.completed++
			f.done()
		}
	}
	s.recomputeAll()
}

func (s *seedSim) startFlow(bytes float64, done func(), res ...*seedRes) {
	s.settleAll()
	s.nextID++
	f := &seedFlow{id: s.nextID, remaining: bytes, res: res, done: done}
	for _, r := range res {
		r.active++
	}
	s.flows[f.id] = f
	s.recomputeAll()
}

func (s *seedSim) run() {
	for s.events.Len() > 0 {
		ev := heap.Pop(&s.events).(*seedEvent)
		s.now = ev.at
		ev.fn()
	}
}

// runMicroSeed replays the workload on the seed replica.
func runMicroSeed(work []microFlow, nRes int) (wall float64, completed int) {
	s := newSeedSim()
	res := make([]*seedRes, nRes)
	for i := range res {
		res[i] = &seedRes{capacity: 1000}
	}
	for _, mf := range work {
		mf := mf
		s.after(mf.at, func() {
			s.startFlow(mf.bytes, func() {}, res[mf.r1], res[mf.r2])
		})
	}
	start := time.Now()
	s.run()
	return time.Since(start).Seconds(), s.completed
}

// RunScale runs the sweep at each nodes count (tasks = tasksPerNode ×
// nodes, weak scaling) and the flow microbenchmark, returning the table
// and the JSON result.
func RunScale(nodesList []int, tasksPerNode, microFlows int) (*Table, *ScaleResult, error) {
	r := &ScaleResult{GoMaxProcs: runtime.GOMAXPROCS(0)}
	t := &Table{
		ID:     "Scale",
		Title:  "simulator throughput: nodes × tasks sweep and kernel microbenchmark",
		Header: []string{"nodes", "tasks", "events", "virtual s", "wall s", "events/s"},
	}
	for _, nodes := range nodesList {
		pt, err := scaleSweepPoint(nodes, tasksPerNode*nodes)
		if err != nil {
			return nil, nil, err
		}
		r.Sweep = append(r.Sweep, pt)
		t.AddRow(fmt.Sprintf("%d", pt.Nodes), fmt.Sprintf("%d", pt.Tasks),
			fmt.Sprintf("%d", pt.Events), secs(pt.VirtualSecs),
			fmt.Sprintf("%.3f", pt.WallSecs), fmt.Sprintf("%.0f", pt.EventsPerSec))
	}

	work := microWorkload(microFlows, 64)
	kWall, kDone := runMicroKernel(work, 64)
	sWall, sDone := runMicroSeed(work, 64)
	if kDone != len(work) {
		return nil, nil, fmt.Errorf("bench: kernel completed %d/%d micro flows", kDone, len(work))
	}
	if sDone != len(work) {
		return nil, nil, fmt.Errorf("bench: seed replica completed %d/%d micro flows", sDone, len(work))
	}
	r.Micro = ScaleMicro{
		Flows:          microFlows,
		KernelWallSecs: kWall,
		SeedWallSecs:   sWall,
	}
	if kWall > 0 {
		r.Micro.KernelFlowsPerSec = float64(microFlows) / kWall
		r.Micro.Speedup = sWall / kWall
	}
	if sWall > 0 {
		r.Micro.SeedFlowsPerSec = float64(microFlows) / sWall
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("micro: %d concurrent-flow workload — kernel %.3fs (%.0f flows/s) vs seed replica %.3fs (%.0f flows/s): %.1fx",
			microFlows, kWall, r.Micro.KernelFlowsPerSec, sWall, r.Micro.SeedFlowsPerSec, r.Micro.Speedup),
		"events/s should stay near-flat across the sweep (near-linear total throughput); the floor is enforced by -scale-floor / make scale-smoke")
	return t, r, nil
}

package bench

import (
	"bytes"
	"testing"

	"scidp/internal/ioengine"
	"scidp/internal/obs"
	"scidp/internal/sim"
	"scidp/internal/solutions"
	"scidp/internal/workloads"
)

// exportRunMode is exportRun with the kernel's fair-share scheduler
// pinned to a mode: the full scidp pipeline runs on a fresh registry and
// both export streams are returned.
func exportRunMode(t *testing.T, mode sim.FairShareMode) (trace, prom []byte) {
	t.Helper()
	prev := Obs
	defer func() { Obs = prev }()
	Obs = obs.New()
	ioengine.RegisterObs(Obs)
	ClearCache()
	s := QuickScale()
	blobs, ds, err := dataset(s, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := obsEnvConfig(s.EnvConfig(0), "scidp@4ts")
	cfg.FairShare = mode
	env := solutions.NewEnv(cfg)
	workloads.Install(env.PFS, blobs)
	wl := &solutions.Workload{Dataset: ds, Var: "QR"}
	run := solutions.All()["scidp"]
	var rerr error
	env.K.Go("driver", func(p *sim.Proc) {
		_, rerr = run(p, env, wl)
	})
	env.K.Run()
	if rerr != nil {
		t.Fatal(rerr)
	}
	env.ExportSimMetrics()
	var tb, pb bytes.Buffer
	if err := Obs.WriteChromeTrace(&tb); err != nil {
		t.Fatal(err)
	}
	if err := Obs.WritePrometheus(&pb); err != nil {
		t.Fatal(err)
	}
	return tb.Bytes(), pb.Bytes()
}

// TestExportsIdenticalAcrossSchedulerModes is the scale-out refactor's
// acceptance check: the incremental fair-share scheduler must reproduce
// the full-recompute oracle bit for bit at the pipeline level — the
// whole scidp run's Chrome trace and Prometheus dump byte-identical
// across modes.
func TestExportsIdenticalAcrossSchedulerModes(t *testing.T) {
	ti, pi := exportRunMode(t, sim.FairShareIncremental)
	tf, pf := exportRunMode(t, sim.FairShareFull)
	if !bytes.Equal(ti, tf) {
		t.Error("Chrome traces differ between incremental and full-recompute scheduling")
	}
	if !bytes.Equal(pi, pf) {
		t.Error("Prometheus dumps differ between incremental and full-recompute scheduling")
	}
}

// TestRunScaleSmoke exercises the sweep and the microbenchmark at a tiny
// size: every task must run, throughput must be measured, and the new
// kernel must beat the seed replica on the same workload.
func TestRunScaleSmoke(t *testing.T) {
	tab, r, err := RunScale([]int{4}, 30, 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Sweep) != 1 || len(tab.Rows) != 1 {
		t.Fatalf("sweep points = %d, want 1", len(r.Sweep))
	}
	pt := r.Sweep[0]
	if pt.Tasks != 120 || pt.Events == 0 || pt.EventsPerSec <= 0 {
		t.Fatalf("sweep point = %+v", pt)
	}
	if r.Micro.Speedup < 1.5 {
		t.Fatalf("kernel speedup over seed replica = %.2fx, want comfortably > 1", r.Micro.Speedup)
	}
	if r.MinEventsPerSec() != pt.EventsPerSec {
		t.Fatalf("MinEventsPerSec = %v, want %v", r.MinEventsPerSec(), pt.EventsPerSec)
	}
}

package bench

import (
	"fmt"

	"scidp/internal/sim"
	"scidp/internal/solutions"
)

// Workflow runs the end-to-end simulate-then-analyze experiment: an MPI
// simulation writes outputs to the PFS (collective I/O) while SciDP
// either analyzes each file the moment it lands (in-situ) or waits for
// the full run (offline) — quantifying the paper's "launch data analysis
// ... immediately after data is generated" claim.
func Workflow(s Scale, timestamps int, computePerStep float64) (*Table, error) {
	blobs, ds, err := dataset(s, timestamps)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "Workflow",
		Title:  fmt.Sprintf("End-to-end simulate+analyze (%d timestamps, %.0f s compute/step)", timestamps, computePerStep),
		Header: []string{"strategy", "simulation(s)", "end-to-end(s)", "analysis lag(s)"},
	}
	for _, inSitu := range []bool{false, true} {
		env := solutions.NewEnv(s.EnvConfig(0))
		var rep *solutions.WorkflowReport
		var rerr error
		env.K.Go("driver", func(p *sim.Proc) {
			rep, rerr = solutions.RunWorkflow(p, env, solutions.WorkflowConfig{
				Blobs: copyBlobs(blobs), Dataset: ds, Var: "QR",
				ComputeSecondsPerStep: computePerStep, InSitu: inSitu,
			})
		})
		env.K.Run()
		if rerr != nil {
			return nil, rerr
		}
		t.AddRow(rep.Strategy, secs(rep.SimulationSeconds), secs(rep.EndToEndSeconds), secs(rep.AnalysisLagSeconds))
	}
	t.Notes = append(t.Notes,
		"in-situ maps and processes each output immediately after the simulation writes it; analysis overlaps the remaining simulation",
		"offline waits for the full run, then executes the standard SciDP pipeline")
	return t, nil
}

func copyBlobs(in map[string][]byte) map[string][]byte {
	out := make(map[string][]byte, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}

// Package chaos is the deterministic fault-injection subsystem: it
// compiles a declarative, seeded Plan into events on the sim kernel's
// virtual clock that flip fault state on the storage and compute layers
// (pfs OSTs, hdfs DataNodes, MapReduce task slots), exercising the
// stack's recovery machinery — HDFS replica failover, the PFS Reader's
// retry-with-backoff and read-around, task re-execution, and speculative
// execution.
//
// Everything is deterministic: scheduled faults fire at plan-specified
// virtual times, and probabilistic faults (flaky reads, stragglers, task
// failures) draw from a single PRNG seeded by the plan, consumed in
// kernel event order. Same seed + same plan ⇒ byte-identical job output
// and byte-identical observability exports, so resilience is a
// regression-testable property rather than a flaky one.
//
// The dependency order matters: chaos imports pfs/hdfs/sim to flip their
// state, while those layers import only internal/fault for the error
// contract. The MapReduce engine never sees this package — its
// mapreduce.TaskFaults interface is satisfied structurally by *Injector.
package chaos

import (
	"encoding/json"
	"fmt"
)

// Rule kinds. Scheduled kinds flip component state over a [At, Until)
// window; probabilistic kinds arm a window inside which each read or
// task attempt draws against Rate.
const (
	// KindOSTDegrade multiplies one OST's service time by Factor — a
	// Lustre target limping on a failing disk or busy controller.
	KindOSTDegrade = "ost-degrade"
	// KindOSTOutage takes one OST offline: striped reads lose the
	// stripes it holds and must read around them.
	KindOSTOutage = "ost-outage"
	// KindDNCrash kills one DataNode: its replicas go dark and reads
	// fail over to survivors; writes place around it.
	KindDNCrash = "dn-crash"
	// KindMDSLatency multiplies PFS metadata-op latency by Factor.
	KindMDSLatency = "mds-latency"
	// KindNNLatency multiplies NameNode RPC latency by Factor.
	KindNNLatency = "nn-latency"
	// KindFlakyReads makes each read inside the window fail with
	// probability Rate; of those, a Corrupt fraction deliver damaged
	// bytes (caught by checksums) instead of an I/O error.
	KindFlakyReads = "flaky-reads"
	// KindStraggler slows each task attempt inside the window by Factor
	// with probability Rate — the paper testbed's wandering slow node.
	KindStraggler = "straggler"
	// KindTaskFail crashes each task attempt inside the window with
	// probability Rate (after its startup cost).
	KindTaskFail = "task-fail"
)

// Rule is one declarative fault. Which fields matter depends on Kind;
// Validate enforces the combinations.
type Rule struct {
	// Kind is one of the Kind* constants.
	Kind string `json:"kind"`
	// At is when the fault begins, in virtual seconds.
	At float64 `json:"at"`
	// Until is when it ends; 0 means it never lifts.
	Until float64 `json:"until,omitempty"`
	// Target indexes the component (OST number, DataNode index) for the
	// scheduled kinds.
	Target int `json:"target,omitempty"`
	// Factor is the slowdown multiple for ost-degrade, mds-latency,
	// nn-latency and straggler (> 1).
	Factor float64 `json:"factor,omitempty"`
	// Rate is the per-event probability in [0, 1] for the probabilistic
	// kinds.
	Rate float64 `json:"rate,omitempty"`
	// Corrupt is the fraction of flaky-read hits that corrupt bytes
	// rather than erroring, in [0, 1].
	Corrupt float64 `json:"corrupt,omitempty"`
}

// activeAt reports whether the rule's window covers virtual time t.
func (r *Rule) activeAt(t float64) bool {
	return t >= r.At && (r.Until == 0 || t < r.Until)
}

// scheduled reports whether the rule flips component state on the clock
// (as opposed to arming a probabilistic window).
func (r *Rule) scheduled() bool {
	switch r.Kind {
	case KindOSTDegrade, KindOSTOutage, KindDNCrash, KindMDSLatency, KindNNLatency:
		return true
	}
	return false
}

// Plan is a complete fault schedule: a PRNG seed plus rules. The zero
// plan injects nothing.
type Plan struct {
	// Seed seeds the injector's PRNG for the probabilistic rules.
	Seed int64 `json:"seed"`
	// Rules are the faults, applied independently.
	Rules []Rule `json:"rules"`
}

// ParsePlan decodes and validates a JSON plan (the scidpctl -chaos
// format).
func ParsePlan(data []byte) (*Plan, error) {
	var p Plan
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("chaos: parse plan: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// Validate checks every rule's fields against its kind.
func (p *Plan) Validate() error {
	for i := range p.Rules {
		r := &p.Rules[i]
		bad := func(format string, args ...any) error {
			return fmt.Errorf("chaos: rule %d (%s): %s", i, r.Kind, fmt.Sprintf(format, args...))
		}
		if r.At < 0 {
			return bad("negative start time %g", r.At)
		}
		if r.Until != 0 && r.Until <= r.At {
			return bad("window ends at %g, before it starts at %g", r.Until, r.At)
		}
		if r.Target < 0 {
			return bad("negative target %d", r.Target)
		}
		switch r.Kind {
		case KindOSTDegrade, KindMDSLatency, KindNNLatency:
			if r.Factor <= 1 {
				return bad("needs a slowdown factor > 1, got %g", r.Factor)
			}
		case KindOSTOutage, KindDNCrash:
			// Window and target only.
		case KindFlakyReads:
			if r.Rate <= 0 || r.Rate > 1 {
				return bad("rate must be in (0, 1], got %g", r.Rate)
			}
			if r.Corrupt < 0 || r.Corrupt > 1 {
				return bad("corrupt fraction must be in [0, 1], got %g", r.Corrupt)
			}
		case KindStraggler:
			if r.Rate <= 0 || r.Rate > 1 {
				return bad("rate must be in (0, 1], got %g", r.Rate)
			}
			if r.Factor <= 1 {
				return bad("needs a slowdown factor > 1, got %g", r.Factor)
			}
		case KindTaskFail:
			if r.Rate <= 0 || r.Rate > 1 {
				return bad("rate must be in (0, 1], got %g", r.Rate)
			}
		default:
			return bad("unknown kind")
		}
	}
	return nil
}

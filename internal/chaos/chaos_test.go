package chaos

import (
	"strings"
	"testing"
)

func TestParsePlan(t *testing.T) {
	plan, err := ParsePlan([]byte(`{
		"seed": 99,
		"rules": [
			{"kind": "dn-crash", "at": 20, "target": 1},
			{"kind": "ost-degrade", "at": 10, "until": 60, "target": 2, "factor": 3},
			{"kind": "flaky-reads", "at": 25, "until": 60, "rate": 0.1, "corrupt": 0.25},
			{"kind": "straggler", "at": 5, "until": 60, "rate": 0.2, "factor": 4},
			{"kind": "task-fail", "at": 10, "rate": 0.05}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Seed != 99 || len(plan.Rules) != 5 {
		t.Fatalf("plan = %+v", plan)
	}
	if plan.Rules[0].Kind != KindDNCrash || plan.Rules[0].Target != 1 {
		t.Fatalf("rule 0 = %+v", plan.Rules[0])
	}
}

func TestParsePlanRejectsBadPlans(t *testing.T) {
	cases := []struct {
		name, json, want string
	}{
		{"not json", `{`, "unexpected end"},
		{"unknown kind", `{"rules":[{"kind":"meteor-strike","at":1}]}`, "unknown kind"},
		{"negative at", `{"rules":[{"kind":"dn-crash","at":-1}]}`, "at"},
		{"until before at", `{"rules":[{"kind":"ost-outage","at":10,"until":5,"target":0}]}`, "before it starts"},
		{"degrade without factor", `{"rules":[{"kind":"ost-degrade","at":1,"target":0}]}`, "factor"},
		{"flaky without rate", `{"rules":[{"kind":"flaky-reads","at":1}]}`, "rate"},
		{"rate above one", `{"rules":[{"kind":"task-fail","at":1,"rate":1.5}]}`, "rate"},
		{"corrupt above one", `{"rules":[{"kind":"flaky-reads","at":1,"rate":0.5,"corrupt":2}]}`, "corrupt"},
		{"negative target", `{"rules":[{"kind":"dn-crash","at":1,"target":-2}]}`, "target"},
		{"straggler without factor", `{"rules":[{"kind":"straggler","at":1,"rate":0.5}]}`, "factor"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParsePlan([]byte(tc.json))
			if err == nil {
				t.Fatalf("ParsePlan accepted %s", tc.json)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestRuleWindows(t *testing.T) {
	windowed := Rule{Kind: KindFlakyReads, At: 10, Until: 20, Rate: 0.5}
	for _, tc := range []struct {
		t    float64
		want bool
	}{{9.9, false}, {10, true}, {19.9, true}, {20, false}} {
		if got := windowed.activeAt(tc.t); got != tc.want {
			t.Errorf("activeAt(%v) = %v, want %v", tc.t, got, tc.want)
		}
	}
	permanent := Rule{Kind: KindDNCrash, At: 5, Target: 1}
	if permanent.activeAt(4.9) || !permanent.activeAt(5) || !permanent.activeAt(1e9) {
		t.Error("a rule without until must stay active forever")
	}
	if !permanent.scheduled() || windowed.scheduled() {
		t.Error("dn-crash is scheduled state, flaky-reads is probabilistic")
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var inj *Injector
	if inj != New(nil) {
		t.Fatal("New(nil) must return a nil injector")
	}
	inj.Arm(nil, nil, nil, nil)
	if err, slow := inj.TaskFault("map", 0, 1); err != nil || slow != 1 {
		t.Fatalf("nil injector TaskFault = (%v, %v)", err, slow)
	}
	if inj.Plan() != nil {
		t.Fatal("nil injector has no plan")
	}
}

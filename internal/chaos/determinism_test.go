package chaos_test

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"testing"

	"scidp/internal/bench"
	"scidp/internal/chaos"
	"scidp/internal/obs"
	"scidp/internal/sim"
	"scidp/internal/solutions"
	"scidp/internal/workloads"
)

// testPlan exercises every fault kind with windows sized for the quick
// geometry: a permanent DataNode crash, OST degradation, a short full
// OST outage (inside the read-retry budget), metadata latency spikes,
// and probabilistic flaky reads / stragglers / task failures.
const testPlan = `{
	"seed": 1234,
	"rules": [
		{"kind": "dn-crash", "at": 20, "target": 1},
		{"kind": "ost-degrade", "at": 10, "until": 60, "target": 3, "factor": 3},
		{"kind": "ost-outage", "at": 30, "until": 32, "target": 5},
		{"kind": "mds-latency", "at": 15, "until": 40, "factor": 4},
		{"kind": "nn-latency", "at": 15, "until": 40, "factor": 4},
		{"kind": "flaky-reads", "at": 18, "until": 70, "rate": 0.1, "corrupt": 0.3},
		{"kind": "straggler", "at": 5, "until": 70, "rate": 0.15, "factor": 4},
		{"kind": "task-fail", "at": 10, "until": 60, "rate": 0.05}
	]
}`

// chaosRun is one full pipeline execution under a plan on a fresh
// recovery-enabled testbed: it returns the sha256 over every /results
// file (read back in sorted order) and the raw export byte streams.
// workers sizes the data-plane compute pool (0 = no data plane, the
// pre-two-plane engine).
func chaosRun(t *testing.T, solution string, plan *chaos.Plan, workers int) (digest string, trace, prom []byte) {
	t.Helper()
	s := bench.QuickScale()
	cfg := bench.FaultsEnvConfig(s)
	reg := obs.New()
	reg.SetProcess("chaos-test-" + solution)
	cfg.Obs = reg
	cfg.Chaos = plan
	cfg.Workers = workers
	env := solutions.NewEnv(cfg)
	defer env.Close()
	ds, err := workloads.Generate(env.PFS, s.Spec(16))
	if err != nil {
		t.Fatal(err)
	}
	wl := &solutions.Workload{Dataset: ds, Var: "QR"}
	var runErr error
	env.K.Go("driver", func(p *sim.Proc) {
		switch solution {
		case "scidp":
			_, runErr = solutions.RunSciDP(p, env, wl)
		case "vanilla-hadoop":
			_, runErr = solutions.RunVanillaHadoop(p, env, wl)
		default:
			runErr = fmt.Errorf("unknown solution %q", solution)
		}
		if runErr != nil {
			return
		}
		digest, runErr = resultsDigest(p, env)
	})
	env.K.Run()
	env.ExportSimMetrics()
	if runErr != nil {
		t.Fatalf("%s under chaos: %v", solution, runErr)
	}
	var tb, pb bytes.Buffer
	if err := reg.WriteChromeTrace(&tb); err != nil {
		t.Fatal(err)
	}
	if err := reg.WritePrometheus(&pb); err != nil {
		t.Fatal(err)
	}
	return digest, tb.Bytes(), pb.Bytes()
}

// resultsDigest reads every /results file back from node 0 in sorted
// order and folds (path, size, bytes) into a sha256.
func resultsDigest(p *sim.Proc, env *solutions.Env) (string, error) {
	files, err := env.HDFS.Walk(p, "/results")
	if err != nil {
		return "", err
	}
	var paths []string
	for _, f := range files {
		if !f.Virtual {
			paths = append(paths, f.Path)
		}
	}
	sort.Strings(paths)
	if len(paths) == 0 {
		return "", fmt.Errorf("no result files to digest")
	}
	h := sha256.New()
	for _, path := range paths {
		data, err := env.HDFS.ReadFileRetry(p, env.BD.Node(0), path, 6, 0.05)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(h, "%s %d\n", path, len(data))
		h.Write(data)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// TestDeterminismUnderChaos is the subsystem's headline guarantee: the
// same seed and plan produce byte-identical job output AND byte-identical
// observability exports across runs — for a PFS-direct workload (SciDP:
// striped netCDF reads, replica failover only on the result audit) and an
// HDFS-backed one (Vanilla Hadoop: distcp onto HDFS, replicated block
// reads in the map phase).
func TestDeterminismUnderChaos(t *testing.T) {
	for _, solution := range []string{"scidp", "vanilla-hadoop"} {
		t.Run(solution, func(t *testing.T) {
			plan, err := chaos.ParsePlan([]byte(testPlan))
			if err != nil {
				t.Fatal(err)
			}
			d1, trace1, prom1 := chaosRun(t, solution, plan, 0)
			d2, trace2, prom2 := chaosRun(t, solution, plan, 0)
			if d1 != d2 {
				t.Errorf("output digests differ across same-seed runs: %s vs %s", d1, d2)
			}
			if !bytes.Equal(trace1, trace2) {
				t.Error("Chrome-trace exports differ across same-seed runs")
			}
			if !bytes.Equal(prom1, prom2) {
				t.Error("Prometheus exports differ across same-seed runs")
			}

			// The fault-free run must produce the same output bytes: the
			// chaos plan may only cost time, never change results.
			clean, _, _ := chaosRun(t, solution, nil, 0)
			if clean != d1 {
				t.Errorf("output under chaos differs from fault-free output: %s vs %s", d1, clean)
			}
		})
	}
}

// TestDeterminismAcrossWorkerCounts extends the headline guarantee to
// the two-plane executor: with the data plane enabled, the worker count
// is invisible — workers=1 and workers=4 produce byte-identical output
// digests and observability exports, with and without a chaos plan, and
// two same-seed runs at workers=4 are byte-identical too.
func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	plan, err := chaos.ParsePlan([]byte(testPlan))
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		plan *chaos.Plan
	}{
		{"chaos", plan},
		{"clean", nil},
	} {
		t.Run(tc.name, func(t *testing.T) {
			d1, trace1, prom1 := chaosRun(t, "scidp", tc.plan, 1)
			d4, trace4, prom4 := chaosRun(t, "scidp", tc.plan, 4)
			if d1 != d4 {
				t.Errorf("output digests differ across worker counts: %s vs %s", d1, d4)
			}
			if !bytes.Equal(trace1, trace4) {
				t.Error("Chrome-trace exports differ across worker counts")
			}
			if !bytes.Equal(prom1, prom4) {
				t.Error("Prometheus exports differ across worker counts")
			}
			// Same-seed repeat at workers=4: pooled runs are also
			// reproducible against themselves, not just against workers=1.
			d4b, trace4b, prom4b := chaosRun(t, "scidp", tc.plan, 4)
			if d4 != d4b {
				t.Errorf("workers=4 digests differ across same-seed runs: %s vs %s", d4, d4b)
			}
			if !bytes.Equal(trace4, trace4b) || !bytes.Equal(prom4, prom4b) {
				t.Error("workers=4 exports differ across same-seed runs")
			}
		})
	}
}

// TestChaosInjectsAndRecovers asserts the plan actually bites: the run
// records injected faults and the recovery machinery does work.
func TestChaosInjectsAndRecovers(t *testing.T) {
	plan, err := chaos.ParsePlan([]byte(testPlan))
	if err != nil {
		t.Fatal(err)
	}
	s := bench.QuickScale()
	cfg := bench.FaultsEnvConfig(s)
	reg := obs.New()
	cfg.Obs = reg
	cfg.Chaos = plan
	env := solutions.NewEnv(cfg)
	ds, err := workloads.Generate(env.PFS, s.Spec(16))
	if err != nil {
		t.Fatal(err)
	}
	wl := &solutions.Workload{Dataset: ds, Var: "QR"}
	var runErr error
	env.K.Go("driver", func(p *sim.Proc) {
		_, runErr = solutions.RunSciDP(p, env, wl)
	})
	env.K.Run()
	if runErr != nil {
		t.Fatal(runErr)
	}
	var injected float64
	for _, kind := range []string{
		chaos.KindOSTDegrade, chaos.KindOSTOutage, chaos.KindDNCrash,
		chaos.KindMDSLatency, chaos.KindNNLatency,
		chaos.KindFlakyReads, chaos.KindStraggler, chaos.KindTaskFail,
	} {
		injected += reg.Counter("chaos/faults_injected_total", obs.L("kind", kind)).Value()
	}
	if injected == 0 {
		t.Fatal("plan injected no faults")
	}
	var retries float64
	for _, kind := range []string{"flaky-read", "corrupt", "ost-down", "no-live-replica"} {
		retries += reg.Counter("core/read_retries_total", obs.L("kind", kind)).Value()
	}
	if retries == 0 {
		t.Fatal("no PFS read retries despite flaky reads in the plan")
	}
}

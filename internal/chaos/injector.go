package chaos

import (
	"math/rand"

	"scidp/internal/fault"
	"scidp/internal/hdfs"
	"scidp/internal/obs"
	"scidp/internal/pfs"
	"scidp/internal/sim"
)

// Injector owns one plan's execution: it schedules the state-flipping
// rules as kernel events, installs the probabilistic read-fault hooks on
// the file systems, and serves as the MapReduce engine's TaskFaults
// source (satisfied structurally — chaos does not import mapreduce).
// A nil *Injector is inert: every method no-ops.
type Injector struct {
	plan *Plan
	rng  *rand.Rand

	k    *sim.Kernel
	pfs  *pfs.FS
	hdfs *hdfs.FS
	obs  *obs.Registry
}

// New builds an injector for the plan (nil plan ⇒ nil injector).
func New(plan *Plan) *Injector {
	if plan == nil {
		return nil
	}
	return &Injector{plan: plan, rng: rand.New(rand.NewSource(plan.Seed))}
}

// Plan returns the armed plan (nil on a nil injector).
func (inj *Injector) Plan() *Plan {
	if inj == nil {
		return nil
	}
	return inj.plan
}

// count bumps the injected-fault counter for one fault kind.
func (inj *Injector) count(kind string) {
	inj.obs.Counter("chaos/faults_injected_total", obs.L("kind", kind)).Inc()
}

// span opens a chaos-track span marking one rule's window; the caller
// ends it when the window closes.
func (inj *Injector) span(r Rule) *obs.Span {
	if inj.obs == nil {
		return nil
	}
	sp := inj.obs.StartSpan("chaos:"+r.Kind, "chaos", nil)
	sp.SetTrack("chaos")
	sp.Arg("target", r.Target)
	if r.Factor > 0 {
		sp.Arg("factor", r.Factor)
	}
	if r.Rate > 0 {
		sp.Arg("rate", r.Rate)
	}
	return sp
}

// Arm wires the injector into one simulation: scheduled rules become
// kernel-clock events flipping fault state on the given file systems,
// and the read-fault hooks are installed. Call once per run, before
// Kernel.Run, from setup context (time 0). Either file system may be nil
// when the workload does not use it.
func (inj *Injector) Arm(k *sim.Kernel, pfsFS *pfs.FS, hdfsFS *hdfs.FS, r *obs.Registry) {
	if inj == nil {
		return
	}
	inj.k = k
	inj.pfs = pfsFS
	inj.hdfs = hdfsFS
	inj.obs = r
	if pfsFS != nil {
		pfsFS.SetReadFault(func(path string, off, n int64) fault.Outcome {
			return inj.readOutcome()
		})
	}
	if hdfsFS != nil {
		hdfsFS.SetReadFault(func(blockID, bytes int64) fault.Outcome {
			return inj.readOutcome()
		})
	}
	for i := range inj.plan.Rules {
		rule := inj.plan.Rules[i]
		if rule.scheduled() {
			inj.armScheduled(rule)
		} else {
			inj.armWindow(rule)
		}
	}
}

// armScheduled schedules one state-flipping rule: apply at At, revert at
// Until (never, when Until is 0), with a chaos-track span covering the
// window.
func (inj *Injector) armScheduled(r Rule) {
	var sp *obs.Span
	inj.k.After(r.At-inj.k.Now(), func() {
		sp = inj.span(r)
		inj.apply(r, true)
		inj.count(r.Kind)
		if r.Until == 0 {
			// Permanent fault: close the marker span now so exports
			// don't carry it as open forever.
			sp.End()
		}
	})
	if r.Until > 0 {
		inj.k.After(r.Until-inj.k.Now(), func() {
			inj.apply(r, false)
			sp.End()
		})
	}
}

// apply flips one scheduled rule's component state on (or back off).
func (inj *Injector) apply(r Rule, on bool) {
	switch r.Kind {
	case KindOSTDegrade:
		factor := r.Factor
		if !on {
			factor = 1
		}
		if inj.pfs != nil {
			inj.pfs.SetOSTSlowdown(r.Target, factor)
		}
	case KindOSTOutage:
		if inj.pfs != nil {
			inj.pfs.SetOSTDown(r.Target, on)
		}
	case KindDNCrash:
		if inj.hdfs != nil {
			inj.hdfs.SetDataNodeDown(r.Target, on)
		}
	case KindMDSLatency:
		factor := r.Factor
		if !on {
			factor = 1
		}
		if inj.pfs != nil {
			inj.pfs.SetMDSLatencyFactor(factor)
		}
	case KindNNLatency:
		factor := r.Factor
		if !on {
			factor = 1
		}
		if inj.hdfs != nil {
			inj.hdfs.SetNNLatencyFactor(factor)
		}
	}
}

// armWindow marks a probabilistic rule's window with a chaos-track span;
// the rule itself is evaluated lazily by readOutcome / TaskFault.
func (inj *Injector) armWindow(r Rule) {
	var sp *obs.Span
	inj.k.After(r.At-inj.k.Now(), func() {
		sp = inj.span(r)
		if r.Until == 0 {
			sp.End()
		}
	})
	if r.Until > 0 {
		inj.k.After(r.Until-inj.k.Now(), func() { sp.End() })
	}
}

// readOutcome is the shared read-fault hook: inside any active
// flaky-reads window, each read fails with probability Rate; of the
// failures, a Corrupt fraction deliver damaged bytes instead of an
// error. PRNG draws happen only inside active windows, in kernel event
// order, so they are deterministic.
func (inj *Injector) readOutcome() fault.Outcome {
	if inj == nil {
		return fault.OK
	}
	now := inj.k.Now()
	for i := range inj.plan.Rules {
		r := &inj.plan.Rules[i]
		if r.Kind != KindFlakyReads || !r.activeAt(now) {
			continue
		}
		if inj.rng.Float64() >= r.Rate {
			continue
		}
		inj.count(KindFlakyReads)
		if r.Corrupt > 0 && inj.rng.Float64() < r.Corrupt {
			return fault.Corrupt
		}
		return fault.Fail
	}
	return fault.OK
}

// TaskFault implements the MapReduce engine's TaskFaults interface
// (structurally): inside active windows, task-fail rules crash the
// attempt with probability Rate and straggler rules stretch its modeled
// compute by Factor with probability Rate.
func (inj *Injector) TaskFault(phase string, task, attempt int) (error, float64) {
	slow := 1.0
	if inj == nil {
		return nil, slow
	}
	now := inj.k.Now()
	var err error
	for i := range inj.plan.Rules {
		r := &inj.plan.Rules[i]
		if !r.activeAt(now) {
			continue
		}
		switch r.Kind {
		case KindTaskFail:
			if err == nil && inj.rng.Float64() < r.Rate {
				inj.count(KindTaskFail)
				err = fault.Transient("task-fail",
					"chaos: injected failure on %s task %d attempt %d", phase, task, attempt)
			}
		case KindStraggler:
			if inj.rng.Float64() < r.Rate {
				inj.count(KindStraggler)
				slow *= r.Factor
			}
		}
	}
	return err, slow
}

// Package cluster models the hardware the SciDP paper runs on: compute
// nodes with a local disk, a NIC, and a bounded number of task slots,
// joined by a switch fabric. Two builders produce the paper's two-cluster
// deployment (Figure 1(c)): an HPC cluster whose storage is a remote
// parallel file system, and a big-data (Hadoop) cluster whose storage is
// node-local disks, with a shared inter-cluster link between them.
package cluster

import (
	"fmt"

	"scidp/internal/sim"
)

// Node is one machine: local disk, network interface, and execution slots.
type Node struct {
	// Name identifies the node (e.g. "bd-3", "oss-1").
	Name string
	// Rack and Zone place the node in the cluster topology ("" on flat
	// clusters). Schedulers use them for host→rack→zone locality
	// escalation.
	Rack, Zone string
	// Disk is the node's local storage bandwidth resource.
	Disk *sim.Resource
	// NIC is the node's network interface resource.
	NIC *sim.Resource
	// Slots bounds concurrently running tasks on the node (YARN
	// containers, MPI ranks). Nil for storage-only nodes.
	Slots *sim.Semaphore
	// BurstBufferBytes is the node-local burst-buffer capacity the
	// cooperative cache tier may occupy (0 = no buffer provisioned).
	BurstBufferBytes int64
}

// Place locates a host in the topology hierarchy.
type Place struct {
	// Rack and Zone name the host's enclosing domains ("" when the
	// cluster is flat at that level).
	Rack, Zone string
}

// Cluster is a named set of nodes connected by one switch fabric.
type Cluster struct {
	// Name identifies the cluster ("hpc", "bd").
	Name string
	// Nodes are the member machines in stable order.
	Nodes []*Node
	// Fabric is the shared intra-cluster switching capacity every
	// cross-node transfer traverses.
	Fabric *sim.Resource

	places map[string]Place
	// rackSw/zoneSw are the per-rack and per-zone switch resources peer
	// transfers traverse instead of the top fabric when both endpoints
	// share the domain (empty on flat clusters).
	rackSw map[string]*sim.Resource
	zoneSw map[string]*sim.Resource
}

// Config carries the hardware constants for building a cluster. The zero
// value is unusable; start from DefaultHardware and adjust.
type Config struct {
	// Nodes is the number of compute nodes.
	Nodes int
	// SlotsPerNode is the task-slot count per node (the paper runs 8
	// tasks per Hadoop node).
	SlotsPerNode int
	// DiskBW is per-node local disk bandwidth, bytes/second.
	DiskBW float64
	// DiskLatency is the per-operation seek/setup delay, seconds.
	DiskLatency float64
	// NICBW is per-node network interface bandwidth, bytes/second.
	NICBW float64
	// NetLatency is the per-operation network round-trip charge, seconds.
	NetLatency float64
	// FabricBW is the cluster switch's aggregate capacity, bytes/second.
	FabricBW float64
	// NodesPerRack, when positive, groups consecutive nodes into racks
	// ("<name>-rack-<i>"). Zero leaves the cluster flat — the paper's
	// 8-node testbed shape.
	NodesPerRack int
	// RacksPerZone, when positive (and NodesPerRack is set), groups
	// consecutive racks into zones ("<name>-zone-<i>") — the third
	// locality tier for O(100k)-node sweeps.
	RacksPerZone int
	// RackBW and ZoneBW size the per-rack and per-zone switches peer
	// transfers cross (zero picks half the aggregate bandwidth below:
	// NICBW*NodesPerRack/2 per rack, RackBW*RacksPerZone/2 per zone).
	RackBW, ZoneBW float64
	// BurstBufferBytes provisions each node's burst buffer for the
	// cooperative cache tier (0 = none).
	BurstBufferBytes int64
}

// DefaultHardware mirrors the paper's Chameleon testbed: 250 GB 7200 RPM
// SATA disks (~100 MB/s), 10 GbE NICs, and a fabric provisioned at half of
// the sum of NIC bandwidth for eight nodes.
func DefaultHardware(nodes, slotsPerNode int) Config {
	return Config{
		Nodes:        nodes,
		SlotsPerNode: slotsPerNode,
		DiskBW:       100e6,
		DiskLatency:  0.004,
		NICBW:        1.25e9,
		NetLatency:   0.0002,
		FabricBW:     float64(nodes) * 1.25e9 / 2,
	}
}

// Scaled returns a copy of c with every bandwidth divided by factor.
// Latencies and slot counts are untouched. Experiments run on data scaled
// down by the same factor, so virtual times stay at paper scale while the
// working set fits in memory.
func (c Config) Scaled(factor float64) Config {
	if factor <= 0 {
		panic("cluster: scale factor must be positive")
	}
	c.DiskBW /= factor
	c.NICBW /= factor
	c.FabricBW /= factor
	return c
}

// New builds a cluster from the config on the given kernel.
func New(k *sim.Kernel, name string, c Config) *Cluster {
	if c.Nodes <= 0 {
		panic("cluster: need at least one node")
	}
	cl := &Cluster{
		Name:   name,
		Fabric: sim.NewResource(name+"/fabric", c.FabricBW),
		places: map[string]Place{},
		rackSw: map[string]*sim.Resource{},
		zoneSw: map[string]*sim.Resource{},
	}
	rackBW := c.RackBW
	if rackBW <= 0 && c.NodesPerRack > 0 {
		rackBW = c.NICBW * float64(c.NodesPerRack) / 2
	}
	zoneBW := c.ZoneBW
	if zoneBW <= 0 && c.RacksPerZone > 0 {
		zoneBW = rackBW * float64(c.RacksPerZone) / 2
	}
	for i := 0; i < c.Nodes; i++ {
		n := &Node{Name: fmt.Sprintf("%s-%d", name, i), BurstBufferBytes: c.BurstBufferBytes}
		if c.NodesPerRack > 0 {
			rack := i / c.NodesPerRack
			n.Rack = fmt.Sprintf("%s-rack-%d", name, rack)
			if _, ok := cl.rackSw[n.Rack]; !ok {
				sw := sim.NewResource(n.Rack+"/switch", rackBW)
				sw.Latency = c.NetLatency
				cl.rackSw[n.Rack] = sw
			}
			if c.RacksPerZone > 0 {
				n.Zone = fmt.Sprintf("%s-zone-%d", name, rack/c.RacksPerZone)
				if _, ok := cl.zoneSw[n.Zone]; !ok {
					sw := sim.NewResource(n.Zone+"/switch", zoneBW)
					sw.Latency = c.NetLatency
					cl.zoneSw[n.Zone] = sw
				}
			}
		}
		n.Disk = sim.NewResource(n.Name+"/disk", c.DiskBW)
		n.Disk.Latency = c.DiskLatency
		n.NIC = sim.NewResource(n.Name+"/nic", c.NICBW)
		n.NIC.Latency = c.NetLatency
		if c.SlotsPerNode > 0 {
			n.Slots = k.NewSemaphore(c.SlotsPerNode)
		}
		cl.Nodes = append(cl.Nodes, n)
		cl.places[n.Name] = Place{Rack: n.Rack, Zone: n.Zone}
	}
	return cl
}

// Place returns the topology placement of the named host (zero Place for
// unknown hosts or flat clusters).
func (c *Cluster) Place(host string) Place { return c.places[host] }

// HasTopology reports whether the cluster carries rack (and possibly
// zone) structure.
func (c *Cluster) HasTopology() bool {
	return len(c.Nodes) > 0 && c.Nodes[0].Rack != ""
}

// Node returns the i-th node.
func (c *Cluster) Node(i int) *Node { return c.Nodes[i] }

// Lookup returns the node with the given name, or nil.
func (c *Cluster) Lookup(name string) *Node {
	for _, n := range c.Nodes {
		if n.Name == name {
			return n
		}
	}
	return nil
}

// LocalReadPath is the resource chain for reading a node's own disk.
func LocalReadPath(n *Node) []*sim.Resource { return []*sim.Resource{n.Disk} }

// LocalWritePath is the resource chain for writing a node's own disk.
func LocalWritePath(n *Node) []*sim.Resource { return []*sim.Resource{n.Disk} }

// RemoteReadPath is the chain for dst pulling bytes off src's disk across
// the fabric: source disk, source NIC, fabric, destination NIC.
func (c *Cluster) RemoteReadPath(src, dst *Node) []*sim.Resource {
	return []*sim.Resource{src.Disk, src.NIC, c.Fabric, dst.NIC}
}

// NetPath is the chain for a memory-to-memory transfer between two nodes
// of this cluster (no disk on either end).
func (c *Cluster) NetPath(src, dst *Node) []*sim.Resource {
	return []*sim.Resource{src.NIC, c.Fabric, dst.NIC}
}

// PeerPath is the locality-aware chain for a memory-to-memory peer
// transfer: rack-local traffic crosses only the rack switch, zone-local
// traffic climbs through both rack switches and the zone switch, and
// cross-zone traffic takes the top fabric between the rack switches.
// Flat clusters fall back to NetPath; src == dst transfers nothing.
func (c *Cluster) PeerPath(src, dst *Node) []*sim.Resource {
	if src == dst {
		return nil
	}
	if src.Rack == "" || dst.Rack == "" {
		return c.NetPath(src, dst)
	}
	if src.Rack == dst.Rack {
		return []*sim.Resource{src.NIC, c.rackSw[src.Rack], dst.NIC}
	}
	if src.Zone != "" && src.Zone == dst.Zone {
		return []*sim.Resource{src.NIC, c.rackSw[src.Rack], c.zoneSw[src.Zone], c.rackSw[dst.Rack], dst.NIC}
	}
	return []*sim.Resource{src.NIC, c.rackSw[src.Rack], c.Fabric, c.rackSw[dst.Rack], dst.NIC}
}

// PeerPathByName resolves node names and returns their PeerPath (nil
// when either name is unknown — the transfer is then free). Together
// with Distance this satisfies ioengine.TierTopology.
func (c *Cluster) PeerPathByName(src, dst string) []*sim.Resource {
	s, d := c.Lookup(src), c.Lookup(dst)
	if s == nil || d == nil {
		return nil
	}
	return c.PeerPath(s, d)
}

// Distance ranks the locality of two hosts: 0 same host, 1 same rack,
// 2 same zone, 3 beyond (which includes every pair on a flat cluster).
func (c *Cluster) Distance(src, dst string) int {
	if src == dst {
		return 0
	}
	a, b := c.places[src], c.places[dst]
	if a.Rack != "" && a.Rack == b.Rack {
		return 1
	}
	if a.Zone != "" && a.Zone == b.Zone {
		return 2
	}
	return 3
}

// Interlink joins two clusters with a shared cross-cluster link of the
// given bandwidth — the paper's path between the Lustre storage nodes and
// the Hadoop nodes.
type Interlink struct {
	// Link is the shared cross-cluster capacity.
	Link *sim.Resource
}

// NewInterlink creates a cross-cluster link.
func NewInterlink(bw float64, latency float64) *Interlink {
	r := sim.NewResource("interlink", bw)
	r.Latency = latency
	return &Interlink{Link: r}
}

// Path is the chain for moving bytes from src (in one cluster) to dst (in
// the other) without touching disks: NICs plus the shared link.
func (il *Interlink) Path(src, dst *Node) []*sim.Resource {
	return []*sim.Resource{src.NIC, il.Link, dst.NIC}
}

package cluster

import (
	"math"
	"testing"

	"scidp/internal/sim"
)

func TestNewClusterShape(t *testing.T) {
	k := sim.NewKernel()
	cfg := DefaultHardware(8, 8)
	cl := New(k, "bd", cfg)
	if len(cl.Nodes) != 8 {
		t.Fatalf("nodes = %d, want 8", len(cl.Nodes))
	}
	for i, n := range cl.Nodes {
		if n.Slots == nil || n.Slots.Capacity() != 8 {
			t.Errorf("node %d slots wrong", i)
		}
		if n.Disk.Capacity != 100e6 {
			t.Errorf("node %d disk bw = %v", i, n.Disk.Capacity)
		}
	}
	if cl.Lookup("bd-3") != cl.Node(3) {
		t.Error("Lookup(bd-3) != Node(3)")
	}
	if cl.Lookup("nope") != nil {
		t.Error("Lookup of missing node should be nil")
	}
	if cl.HasTopology() {
		t.Error("DefaultHardware cluster should be flat")
	}
	if p := cl.Place("bd-3"); p.Rack != "" || p.Zone != "" {
		t.Errorf("flat cluster placement = %+v, want empty", p)
	}
}

func TestTopologyPlacement(t *testing.T) {
	k := sim.NewKernel()
	cfg := DefaultHardware(12, 2)
	cfg.NodesPerRack = 3
	cfg.RacksPerZone = 2
	cl := New(k, "bd", cfg)
	if !cl.HasTopology() {
		t.Fatal("cluster with NodesPerRack should report topology")
	}
	// 12 nodes / 3 per rack = 4 racks; 4 racks / 2 per zone = 2 zones.
	wants := []struct {
		host, rack, zone string
	}{
		{"bd-0", "bd-rack-0", "bd-zone-0"},
		{"bd-2", "bd-rack-0", "bd-zone-0"},
		{"bd-3", "bd-rack-1", "bd-zone-0"},
		{"bd-6", "bd-rack-2", "bd-zone-1"},
		{"bd-11", "bd-rack-3", "bd-zone-1"},
	}
	for _, w := range wants {
		p := cl.Place(w.host)
		if p.Rack != w.rack || p.Zone != w.zone {
			t.Errorf("Place(%s) = %+v, want rack %s zone %s", w.host, p, w.rack, w.zone)
		}
		n := cl.Lookup(w.host)
		if n.Rack != w.rack || n.Zone != w.zone {
			t.Errorf("node %s carries rack %q zone %q", w.host, n.Rack, n.Zone)
		}
	}
}

func TestPeerPathAndDistance(t *testing.T) {
	k := sim.NewKernel()
	cfg := DefaultHardware(12, 2)
	cfg.NodesPerRack = 3
	cfg.RacksPerZone = 2
	cfg.BurstBufferBytes = 1 << 20
	cl := New(k, "bd", cfg)
	for _, n := range cl.Nodes {
		if n.BurstBufferBytes != 1<<20 {
			t.Fatalf("node %s burst buffer = %d, want %d", n.Name, n.BurstBufferBytes, 1<<20)
		}
	}
	// bd-0/bd-2 share rack-0; bd-0/bd-3 share zone-0 across racks;
	// bd-0/bd-6 are in different zones.
	wants := []struct {
		src, dst string
		dist     int
		hops     int
	}{
		{"bd-0", "bd-0", 0, 0},
		{"bd-0", "bd-2", 1, 3}, // NIC, rack switch, NIC
		{"bd-0", "bd-3", 2, 5}, // NIC, rack, zone, rack, NIC
		{"bd-0", "bd-6", 3, 5}, // NIC, rack, fabric, rack, NIC
	}
	for _, w := range wants {
		if d := cl.Distance(w.src, w.dst); d != w.dist {
			t.Errorf("Distance(%s,%s) = %d, want %d", w.src, w.dst, d, w.dist)
		}
		path := cl.PeerPathByName(w.src, w.dst)
		if len(path) != w.hops {
			t.Errorf("PeerPath(%s,%s) has %d hops, want %d", w.src, w.dst, len(path), w.hops)
		}
		for i, r := range path {
			if r == nil {
				t.Errorf("PeerPath(%s,%s) hop %d is nil", w.src, w.dst, i)
			}
		}
	}
	// Rack-local traffic must not cross the top fabric.
	for _, r := range cl.PeerPathByName("bd-0", "bd-2") {
		if r == cl.Fabric {
			t.Error("rack-local peer path must not use the fabric")
		}
	}
	// Cross-zone traffic must.
	cross := cl.PeerPathByName("bd-0", "bd-6")
	found := false
	for _, r := range cross {
		if r == cl.Fabric {
			found = true
		}
	}
	if !found {
		t.Error("cross-zone peer path must use the fabric")
	}
	if cl.PeerPathByName("bd-0", "nope") != nil {
		t.Error("unknown node must yield a nil peer path")
	}
}

func TestPeerPathFlatFallsBackToNetPath(t *testing.T) {
	k := sim.NewKernel()
	cl := New(k, "bd", DefaultHardware(4, 2))
	got := cl.PeerPath(cl.Node(0), cl.Node(1))
	want := cl.NetPath(cl.Node(0), cl.Node(1))
	if len(got) != len(want) {
		t.Fatalf("flat peer path %d hops, want NetPath's %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("flat peer path hop %d differs from NetPath", i)
		}
	}
}

func TestStorageOnlyNodesHaveNoSlots(t *testing.T) {
	k := sim.NewKernel()
	cfg := DefaultHardware(3, 0)
	cl := New(k, "oss", cfg)
	for _, n := range cl.Nodes {
		if n.Slots != nil {
			t.Errorf("storage node %s should have nil slots", n.Name)
		}
	}
}

func TestScaledDividesBandwidthOnly(t *testing.T) {
	cfg := DefaultHardware(4, 8)
	s := cfg.Scaled(10)
	if s.DiskBW != cfg.DiskBW/10 || s.NICBW != cfg.NICBW/10 || s.FabricBW != cfg.FabricBW/10 {
		t.Error("Scaled must divide every bandwidth by the factor")
	}
	if s.DiskLatency != cfg.DiskLatency || s.NetLatency != cfg.NetLatency {
		t.Error("Scaled must not change latencies")
	}
	if s.SlotsPerNode != cfg.SlotsPerNode || s.Nodes != cfg.Nodes {
		t.Error("Scaled must not change counts")
	}
}

func TestScaledRejectsNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Scaled(0) should panic")
		}
	}()
	DefaultHardware(1, 1).Scaled(0)
}

func TestLocalVersusRemoteReadTime(t *testing.T) {
	k := sim.NewKernel()
	cfg := Config{Nodes: 2, SlotsPerNode: 1, DiskBW: 100, NICBW: 1000, FabricBW: 1000}
	cl := New(k, "bd", cfg)
	var local, remote float64
	k.Go("local", func(p *sim.Proc) {
		p.Transfer(100, LocalReadPath(cl.Node(0))...)
		local = p.Now()
	})
	k.Run()
	k2 := sim.NewKernel()
	cl2 := New(k2, "bd", cfg)
	k2.Go("remote", func(p *sim.Proc) {
		p.Transfer(100, cl2.RemoteReadPath(cl2.Node(1), cl2.Node(0))...)
		remote = p.Now()
	})
	k2.Run()
	if local <= 0 || remote < local {
		t.Fatalf("remote read (%v) should not beat local read (%v)", remote, local)
	}
}

func TestFabricContention(t *testing.T) {
	// Two cross-node transfers sharing a fabric slower than the NIC sum
	// must take longer than one alone.
	cfg := Config{Nodes: 4, SlotsPerNode: 1, DiskBW: 1e9, NICBW: 1000, FabricBW: 1000}
	solo := func(n int) float64 {
		k := sim.NewKernel()
		cl := New(k, "bd", cfg)
		var last float64
		for i := 0; i < n; i++ {
			src, dst := cl.Node(i*2), cl.Node(i*2+1)
			k.Go("t", func(p *sim.Proc) {
				p.Transfer(1000, cl.NetPath(src, dst)...)
				if p.Now() > last {
					last = p.Now()
				}
			})
		}
		k.Run()
		return last
	}
	one, two := solo(1), solo(2)
	if two < 1.9*one {
		t.Fatalf("fabric contention missing: 1 flow %v, 2 flows %v", one, two)
	}
}

func TestInterlinkShared(t *testing.T) {
	k := sim.NewKernel()
	cfg := Config{Nodes: 2, SlotsPerNode: 1, DiskBW: 1e9, NICBW: 1e9, FabricBW: 1e9}
	hpc := New(k, "hpc", cfg)
	bd := New(k, "bd", cfg)
	il := NewInterlink(1000, 0)
	var ends []float64
	for i := 0; i < 2; i++ {
		src, dst := hpc.Node(i), bd.Node(i)
		k.Go("x", func(p *sim.Proc) {
			p.Transfer(1000, il.Path(src, dst)...)
			ends = append(ends, p.Now())
		})
	}
	k.Run()
	for _, e := range ends {
		if math.Abs(e-2.0) > 1e-6 {
			t.Fatalf("shared interlink: end %v, want 2.0", e)
		}
	}
}

// Package core implements SciDP itself — the paper's contribution
// (Section III). Three components cooperate to let a Hadoop-style engine
// process scientific data in place on a parallel file system:
//
//   - File Explorer (explorer.go): scans a PFS input path, probes each
//     file with the installed scientific-format plugins (the Sci-format
//     Head Reader), and classifies files as scientific or flat.
//
//   - Data Mapper (mapper.go): mirrors each input on HDFS as virtual
//     inodes. A flat file becomes one virtual file of fixed-size dummy
//     blocks; a scientific file becomes a directory whose virtual files
//     correspond to variables (group paths mirror as deeper directories),
//     with dummy blocks aligned to storage chunks by default and tunable
//     to coarser or finer granularity. Dummy blocks carry only a Source
//     payload — no bytes move at mapping time.
//
//   - PFS Reader (reader.go): inside each map task, resolves the task's
//     dummy block back to a PFS read — a single whole-block request for
//     flat data, a netCDF/HDF5 hyperslab read for scientific data — and
//     converts the result to R-ready structures.
//
// InputFormat (inputformat.go) packages the three as a mapreduce input
// format, which is how user jobs consume SciDP.
package core

import (
	"fmt"
	"math"

	"scidp/internal/rframe"
)

// Slab is the value delivered to map tasks for scientific dummy blocks:
// one decoded hyperslab of one variable.
type Slab struct {
	// PFSPath is the source file on the PFS.
	PFSPath string
	// VarPath is the variable's path within the file.
	VarPath string
	// TypeName names the element type ("float").
	TypeName string
	// ElemSize is the element width in bytes.
	ElemSize int
	// DimNames names the dimensions (may be empty).
	DimNames []string
	// Start is the hyperslab origin in global variable coordinates.
	Start []int
	// Count is the hyperslab extent.
	Count []int
	// Raw is the decoded little-endian row-major payload.
	Raw []byte
}

// NumElems returns the slab's element count.
func (s *Slab) NumElems() int {
	n := 1
	for _, c := range s.Count {
		n *= c
	}
	return n
}

// Float32s decodes the payload (valid for 4-byte float data).
func (s *Slab) Float32s() ([]float32, error) {
	if s.TypeName != "float" && s.TypeName != "float32" {
		return nil, fmt.Errorf("core: slab %s/%s is %s, not float", s.PFSPath, s.VarPath, s.TypeName)
	}
	if len(s.Raw) != s.NumElems()*4 {
		return nil, fmt.Errorf("core: slab %s/%s has %d bytes for %d float32s", s.PFSPath, s.VarPath, len(s.Raw), s.NumElems())
	}
	out := make([]float32, s.NumElems())
	for i := range out {
		out[i] = leF32(s.Raw[i*4:])
	}
	return out, nil
}

// Frame converts a rank-3 float slab into a tidy R data frame with global
// coordinate columns — the paper's "Multi-dimensional array will be
// prepared as R data frame".
func (s *Slab) Frame(valueName string) (*rframe.Frame, error) {
	if len(s.Count) != 3 {
		return nil, fmt.Errorf("core: Frame needs a rank-3 slab, got rank %d", len(s.Count))
	}
	vals, err := s.Float32s()
	if err != nil {
		return nil, err
	}
	names := [3]string{"dim0", "dim1", "dim2"}
	for i := 0; i < 3 && i < len(s.DimNames); i++ {
		if s.DimNames[i] != "" {
			names[i] = s.DimNames[i]
		}
	}
	return rframe.FromArray3D(names,
		[3]int{s.Start[0], s.Start[1], s.Start[2]},
		[3]int{s.Count[0], s.Count[1], s.Count[2]},
		vals, valueName)
}

func leF32(b []byte) float32 {
	u := uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
	return math.Float32frombits(u)
}

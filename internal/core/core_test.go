package core

import (
	"bytes"
	"strings"
	"testing"

	"scidp/internal/cluster"
	"scidp/internal/fault"
	"scidp/internal/grads"
	"scidp/internal/hdf5lite"
	"scidp/internal/hdfs"
	"scidp/internal/ioengine"
	"scidp/internal/mapreduce"
	"scidp/internal/netcdf"
	"scidp/internal/obs"
	"scidp/internal/pfs"
	"scidp/internal/scifmt"
	"scidp/internal/sim"
)

// rig is a two-cluster testbed: a PFS with input files and an HDFS over a
// small BD cluster, joined by an interlink.
type rig struct {
	k    *sim.Kernel
	pfs  *pfs.FS
	hdfs *hdfs.FS
	bd   *cluster.Cluster
	il   *cluster.Interlink
}

func newRig(t *testing.T) *rig {
	t.Helper()
	k := sim.NewKernel()
	bd := cluster.New(k, "bd", cluster.Config{
		Nodes: 4, SlotsPerNode: 2,
		DiskBW: 1e6, NICBW: 1e6, FabricBW: 4e6,
	})
	pcfg := pfs.DefaultConfig()
	pcfg.OSTBW = 1e6
	pcfg.OSSNICBW = 4e6
	pcfg.FabricBW = 8e6
	pcfg.DefaultStripeSize = 1024
	fs := pfs.New(k, pcfg)
	hfs := hdfs.New(k, bd, hdfs.Config{BlockSize: 4096, Replication: 1, NNOpsPerSec: 1e9})
	return &rig{k: k, pfs: fs, hdfs: hfs, bd: bd, il: cluster.NewInterlink(8e6, 0)}
}

// mount returns a PFS client for a BD node across the interlink.
func (r *rig) mount(n *cluster.Node) *pfs.Client {
	return r.pfs.NewClient(r.il.Link, n.NIC)
}

// ncFile writes a 3-var netCDF file to the PFS and returns the QR values.
func (r *rig) ncFile(t *testing.T, path string, nz, ny, nx int) []float32 {
	t.Helper()
	w := netcdf.NewWriter()
	w.AddDim("level", nz)
	w.AddDim("lat", ny)
	w.AddDim("lon", nx)
	var qr []float32
	for _, name := range []string{"QR", "T", "P"} {
		if err := w.AddVar(name, netcdf.Float32, []string{"level", "lat", "lon"},
			netcdf.Chunking{Shape: []int{1, ny, nx}, Deflate: 1}); err != nil {
			t.Fatal(err)
		}
		vals := make([]float32, nz*ny*nx)
		for i := range vals {
			vals[i] = float32(i%97) * 0.5
		}
		if name == "QR" {
			qr = vals
		}
		w.PutVarFloat32(name, vals)
	}
	blob, err := w.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	r.pfs.Put(path, blob)
	return qr
}

func (r *rig) run(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	r.k.Go("test", fn)
	r.k.Run()
}

func TestExplorerClassifiesFiles(t *testing.T) {
	r := newRig(t)
	r.ncFile(t, "/in/plot_18_00_00.nc", 4, 8, 8)
	r.pfs.Put("/in/plot_19_00_00.csv", []byte("time,lat,lon,value\n0,1,2,3.5\n"))
	r.run(t, func(p *sim.Proc) {
		ex := NewExplorer(nil)
		files, err := ex.ExplorePath(p, r.mount(r.bd.Node(0)), "/in")
		if err != nil {
			t.Fatal(err)
		}
		if len(files) != 2 {
			t.Fatalf("files = %d", len(files))
		}
		nc, csv := files[0], files[1]
		if !nc.Sci() || nc.Format != "netcdf" || len(nc.Info.Vars) != 3 {
			t.Fatalf("nc class = %+v", nc)
		}
		if csv.Sci() {
			t.Fatalf("csv misclassified as %s", csv.Format)
		}
		if _, err := ex.ExplorePath(p, r.mount(r.bd.Node(0)), "/empty"); err == nil {
			t.Fatal("empty dir should fail")
		}
	})
}

func TestMapperMirrorsNetCDF(t *testing.T) {
	r := newRig(t)
	r.ncFile(t, "/in/plot.nc", 5, 8, 8)
	r.run(t, func(p *sim.Proc) {
		m := NewMapper(r.hdfs, nil, "/scidp")
		mapping, err := m.MapPath(p, r.mount(r.bd.Node(0)), "/in", MapOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if mapping.Root != "/scidp/in" {
			t.Fatalf("root = %s", mapping.Root)
		}
		if len(mapping.Files) != 1 || len(mapping.Files[0].Vars) != 3 {
			t.Fatalf("mapping = %+v", mapping.Files)
		}
		// Directory mirrors the file name; virtual files mirror variables.
		if !r.hdfs.Exists("/scidp/in/plot.nc/QR") {
			t.Fatal("missing virtual file for QR")
		}
		inode, _ := r.hdfs.Lookup("/scidp/in/plot.nc/QR")
		if !inode.Virtual || len(inode.Blocks) != 5 {
			t.Fatalf("QR inode: virtual=%v blocks=%d, want 5 chunk-aligned", inode.Virtual, len(inode.Blocks))
		}
		src := inode.Blocks[2].Source.(*SlabSource)
		if src.Start[0] != 2 || src.Count[0] != 1 || src.Count[1] != 8 {
			t.Fatalf("block 2 slab = %v+%v", src.Start, src.Count)
		}
		if r.hdfs.TotalUsed() != 0 {
			t.Fatal("mapping must not move data into HDFS")
		}
	})
}

func TestMapperVariableSubsetting(t *testing.T) {
	r := newRig(t)
	r.ncFile(t, "/in/plot.nc", 4, 4, 4)
	r.run(t, func(p *sim.Proc) {
		m := NewMapper(r.hdfs, nil, "/scidp")
		mapping, err := m.MapPath(p, r.mount(r.bd.Node(0)), "/in", MapOptions{Vars: []string{"QR"}})
		if err != nil {
			t.Fatal(err)
		}
		if len(mapping.Files[0].Vars) != 1 || mapping.Files[0].Vars[0].VarPath != "QR" {
			t.Fatalf("vars = %+v", mapping.Files[0].Vars)
		}
		if r.hdfs.Exists("/scidp/in/plot.nc/T") {
			t.Fatal("unrequested variable should not be mapped")
		}
		if _, err := m.MapPath(p, r.mount(r.bd.Node(0)), "/in2", MapOptions{Vars: []string{"ghost"}}); err == nil {
			// /in2 doesn't exist; set one up to test the var check below.
		}
	})
}

func TestMapperRejectsUnknownVars(t *testing.T) {
	r := newRig(t)
	r.ncFile(t, "/in/plot.nc", 2, 4, 4)
	r.run(t, func(p *sim.Proc) {
		m := NewMapper(r.hdfs, nil, "/scidp")
		if _, err := m.MapPath(p, r.mount(r.bd.Node(0)), "/in", MapOptions{Vars: []string{"ghost"}}); err == nil {
			t.Fatal("mapping a nonexistent variable should fail")
		}
	})
}

func TestMapperRowsPerBlockGranularity(t *testing.T) {
	r := newRig(t)
	r.ncFile(t, "/in/plot.nc", 6, 4, 4)
	r.run(t, func(p *sim.Proc) {
		m := NewMapper(r.hdfs, nil, "/coarse")
		mp, err := m.MapPath(p, r.mount(r.bd.Node(0)), "/in", MapOptions{Vars: []string{"QR"}, RowsPerBlock: 3})
		if err != nil {
			t.Fatal(err)
		}
		inode := mp.Files[0].Vars[0].INode
		if len(inode.Blocks) != 2 {
			t.Fatalf("coarse blocks = %d, want 2", len(inode.Blocks))
		}
		src := inode.Blocks[1].Source.(*SlabSource)
		if src.Start[0] != 3 || src.Count[0] != 3 {
			t.Fatalf("coarse block 1 = %v+%v", src.Start, src.Count)
		}
	})
}

func TestMapperFlatFiles(t *testing.T) {
	r := newRig(t)
	data := make([]byte, 10000)
	r.pfs.Put("/in/log.csv", data)
	r.run(t, func(p *sim.Proc) {
		m := NewMapper(r.hdfs, nil, "/scidp")
		mp, err := m.MapPath(p, r.mount(r.bd.Node(0)), "/in", MapOptions{FlatBlockSize: 4096})
		if err != nil {
			t.Fatal(err)
		}
		f := mp.Files[0]
		if f.Flat == nil || len(f.Flat.Blocks) != 3 {
			t.Fatalf("flat blocks = %+v", f.Flat)
		}
		last := f.Flat.Blocks[2].Source.(*FlatSource)
		if last.Offset != 8192 || last.Length != 10000-8192 {
			t.Fatalf("last block = %+v", last)
		}
		if got := len(mp.VirtualPaths()); got != 1 {
			t.Fatalf("virtual paths = %d", got)
		}
	})
}

func TestMapperHierarchicalFormatMirrorsGroups(t *testing.T) {
	r := newRig(t)
	w := hdf5lite.NewWriter()
	g := w.Root().EnsureGroup("model/physics")
	vals := make([]float32, 4*4)
	g.AddFloat32("QC", []int{4, 4}, 2, 1, vals)
	blob, err := w.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	r.pfs.Put("/in/out.h5", blob)
	r.run(t, func(p *sim.Proc) {
		m := NewMapper(r.hdfs, nil, "/scidp")
		mp, err := m.MapPath(p, r.mount(r.bd.Node(0)), "/in", MapOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if mp.Files[0].Format != "hdf5" {
			t.Fatalf("format = %s", mp.Files[0].Format)
		}
		// Deeper directory structure mirrors the group tree.
		if !r.hdfs.Exists("/scidp/in/out.h5/model/physics/QC") {
			t.Fatal("group path not mirrored into directories")
		}
	})
}

func TestPFSReaderFlatAndSlab(t *testing.T) {
	r := newRig(t)
	qr := r.ncFile(t, "/in/plot.nc", 4, 6, 6)
	flat := []byte("0123456789")
	r.pfs.Put("/in/notes.txt", flat)
	r.run(t, func(p *sim.Proc) {
		m := NewMapper(r.hdfs, nil, "/scidp")
		mp, err := m.MapPath(p, r.mount(r.bd.Node(0)), "/in", MapOptions{})
		if err != nil {
			t.Fatal(err)
		}
		reader := NewPFSReader(nil, r.mount(r.bd.Node(1)))
		// Flat block roundtrip.
		var flatFile *MappedFile
		var ncFile *MappedFile
		for i := range mp.Files {
			if mp.Files[i].Flat != nil {
				flatFile = &mp.Files[i]
			} else {
				ncFile = &mp.Files[i]
			}
		}
		got, err := reader.ReadBlock(p, flatFile.Flat.Blocks[0])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.([]byte), flat) {
			t.Fatalf("flat read = %q", got)
		}
		// Slab block roundtrip: block 2 of QR = level 2.
		var qrVar *MappedVar
		for i := range ncFile.Vars {
			if ncFile.Vars[i].VarPath == "QR" {
				qrVar = &ncFile.Vars[i]
			}
		}
		v, err := reader.ReadBlock(p, qrVar.INode.Blocks[2])
		if err != nil {
			t.Fatal(err)
		}
		slab := v.(*Slab)
		vals, err := slab.Float32s()
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 36; i++ {
			if vals[i] != qr[2*36+i] {
				t.Fatalf("slab elem %d = %v, want %v", i, vals[i], qr[2*36+i])
			}
		}
		// Frame conversion with global coordinates.
		df, err := slab.Frame("QR")
		if err != nil {
			t.Fatal(err)
		}
		if df.NumRows() != 36 || df.Col("level").I[0] != 2 {
			t.Fatalf("frame rows=%d level0=%v", df.NumRows(), df.Col("level").I[0])
		}
	})
}

func TestPFSReaderErrors(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		reader := NewPFSReader(nil, r.mount(r.bd.Node(0)))
		if _, err := reader.ReadBlock(p, &hdfs.Block{ID: 1}); err == nil {
			t.Error("non-virtual block should fail")
		}
		if _, err := reader.ReadBlock(p, &hdfs.Block{ID: 2, Virtual: true, Source: 42}); err == nil {
			t.Error("unknown source type should fail")
		}
		if _, err := reader.ReadFlat(p, &FlatSource{PFSPath: "/ghost", Length: 10}); err == nil {
			t.Error("missing flat file should fail")
		}
		if _, err := reader.ReadSlab(p, &SlabSource{PFSPath: "/ghost", Format: "netcdf"}); err == nil {
			t.Error("missing nc file should fail")
		}
		if _, err := reader.ReadSlab(p, &SlabSource{PFSPath: "/ghost", Format: "grib"}); err == nil {
			t.Error("unknown format should fail")
		}
	})
}

func TestInputFormatEndToEnd(t *testing.T) {
	// The headline path: map a netCDF directory, run a MapReduce job over
	// the virtual blocks, verify every level's data arrives exactly once.
	r := newRig(t)
	qr := r.ncFile(t, "/in/t0.nc", 4, 6, 6)
	r.ncFile(t, "/in/t1.nc", 4, 6, 6)
	seen := map[string]float64{}
	r.run(t, func(p *sim.Proc) {
		m := NewMapper(r.hdfs, nil, "/scidp")
		mapping, err := m.MapPath(p, r.mount(r.bd.Node(0)), "/in", MapOptions{Vars: []string{"QR"}})
		if err != nil {
			t.Fatal(err)
		}
		in := &InputFormat{
			HDFS:     r.hdfs,
			Dir:      mapping.Root,
			Registry: scifmt.Default(),
			MountFor: r.mount,
			Cost:     DefaultCostModel(),
		}
		job := &mapreduce.Job{
			Name: "sum-levels", Cluster: r.bd, Input: in, TaskStartup: 0.1,
			Map: func(tc *mapreduce.TaskContext, key string, value any) error {
				slab := value.(*Slab)
				vals, err := slab.Float32s()
				if err != nil {
					return err
				}
				var sum float64
				for _, v := range vals {
					sum += float64(v)
				}
				tc.Emit(key, sum)
				return nil
			},
		}
		res, err := job.Run(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, kv := range res.Output {
			seen[kv.K] = kv.V.(float64)
		}
		if res.PhaseMean("Read") <= 0 {
			t.Error("Read phase should be charged")
		}
		if res.PhaseMean("Convert") <= 0 {
			t.Error("Convert phase should be charged")
		}
	})
	if len(seen) != 8 { // 2 files x 4 levels
		t.Fatalf("records = %d, want 8", len(seen))
	}
	// Check one level's sum against the source data.
	var want float64
	for i := 0; i < 36; i++ {
		want += float64(qr[36+i])
	}
	got, ok := seen["/scidp/in/t0.nc/QR#1"]
	if !ok {
		var keys []string
		for k := range seen {
			keys = append(keys, k)
		}
		t.Fatalf("missing level key; have %s", strings.Join(keys, ", "))
	}
	if got != want {
		t.Fatalf("level 1 sum = %v, want %v", got, want)
	}
}

func TestInputFormatSubsetReadsLessFromPFS(t *testing.T) {
	// Variable subsetting (23 vars, 1 analyzed) must shrink mapping time
	// relative to mapping everything — the Section IV-B claim.
	r := newRig(t)
	r.ncFile(t, "/in/t0.nc", 8, 16, 16)
	var allT, oneT float64
	r.run(t, func(p *sim.Proc) {
		m := NewMapper(r.hdfs, nil, "/all")
		start := p.Now()
		if _, err := m.MapPath(p, r.mount(r.bd.Node(0)), "/in", MapOptions{}); err != nil {
			t.Fatal(err)
		}
		allT = p.Now() - start
		m2 := NewMapper(r.hdfs, nil, "/one")
		start = p.Now()
		if _, err := m2.MapPath(p, r.mount(r.bd.Node(0)), "/in", MapOptions{Vars: []string{"QR"}}); err != nil {
			t.Fatal(err)
		}
		oneT = p.Now() - start
	})
	if oneT > allT {
		t.Fatalf("subset mapping (%v) should not exceed full mapping (%v)", oneT, allT)
	}
}

func TestInputFormatErrors(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		in := &InputFormat{HDFS: r.hdfs, Dir: "/nope", Registry: scifmt.Default(), MountFor: r.mount}
		if _, err := in.Splits(p); err == nil {
			t.Error("walking a missing dir should fail")
		}
		r.hdfs.Mkdir(p, "/empty")
		in.Dir = "/empty"
		if _, err := in.Splits(p); err == nil {
			t.Error("no virtual blocks should fail")
		}
	})
}

func TestSlabValidation(t *testing.T) {
	s := &Slab{TypeName: "double", Count: []int{2}}
	if _, err := s.Float32s(); err == nil {
		t.Error("non-float slab should fail Float32s")
	}
	s2 := &Slab{TypeName: "float", Count: []int{2}, Raw: []byte{0}}
	if _, err := s2.Float32s(); err == nil {
		t.Error("short raw should fail")
	}
	if _, err := s2.Frame("v"); err == nil {
		t.Error("rank-1 slab should fail Frame")
	}
}

func TestPFSReaderShortReadFlat(t *testing.T) {
	r := newRig(t)
	r.pfs.Put("/in/data.bin", make([]byte, 100))
	r.run(t, func(p *sim.Proc) {
		reader := NewPFSReader(nil, r.mount(r.bd.Node(0)))
		_, err := reader.ReadFlat(p, &FlatSource{PFSPath: "/in/data.bin", Offset: 40, Length: 200})
		if err == nil || !strings.Contains(err.Error(), "short read") {
			t.Fatalf("want short-read error, got %v", err)
		}
	})
}

func TestMapperRejectsNegativeFlatBlockSize(t *testing.T) {
	r := newRig(t)
	r.pfs.Put("/in/log.csv", make([]byte, 100))
	r.run(t, func(p *sim.Proc) {
		m := NewMapper(r.hdfs, nil, "/scidp")
		_, err := m.MapPath(p, r.mount(r.bd.Node(0)), "/in", MapOptions{FlatBlockSize: -1})
		if err == nil || !strings.Contains(err.Error(), "negative FlatBlockSize") {
			t.Fatalf("want negative-FlatBlockSize error, got %v", err)
		}
	})
}

// TestPFSReaderGradsCrossFormat proves the shared ioengine interface
// carries a third format end to end: a GrADS file on the PFS, read as a
// slab through the same PFSReader path netCDF and HDF5-lite use.
func TestPFSReaderGradsCrossFormat(t *testing.T) {
	r := newRig(t)
	const nz, ny, nx = 3, 4, 4
	vals := make([]float32, nz*ny*nx)
	for i := range vals {
		vals[i] = float32(i) * 0.25
	}
	blob, err := grads.Encode([]grads.VarSpec{{Name: "QR", Levels: nz, Lat: ny, Lon: nx}}, [][]float32{vals})
	if err != nil {
		t.Fatal(err)
	}
	r.pfs.Put("/in/plot.grd", blob)
	reg := scifmt.Default()
	reg.Register(grads.Format())
	r.run(t, func(p *sim.Proc) {
		reader := NewPFSReader(reg, r.mount(r.bd.Node(0)))
		slab, err := reader.ReadSlab(p, &SlabSource{
			PFSPath: "/in/plot.grd", Format: "grads", VarPath: "QR",
			TypeName: "float", ElemSize: 4,
			Start: []int{1, 0, 0}, Count: []int{2, ny, nx},
		})
		if err != nil {
			t.Fatal(err)
		}
		got, err := slab.Float32s()
		if err != nil {
			t.Fatal(err)
		}
		want := vals[ny*nx : 3*ny*nx]
		if len(got) != len(want) {
			t.Fatalf("got %d values, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("value %d = %v, want %v", i, got[i], want[i])
			}
		}
	})
}

// TestPFSReaderSharedCache verifies the engine wiring end to end: a
// second slab read through the same cache decodes nothing and finishes
// strictly faster in virtual time.
func TestPFSReaderSharedCache(t *testing.T) {
	r := newRig(t)
	r.ncFile(t, "/in/plot.nc", 4, 6, 6)
	r.run(t, func(p *sim.Proc) {
		cache := ioengine.NewCache(0)
		reader := NewPFSReader(nil, r.mount(r.bd.Node(0)))
		reader.Cache = cache
		src := &SlabSource{
			PFSPath: "/in/plot.nc", Format: "netcdf", VarPath: "QR",
			TypeName: "float", ElemSize: 4,
			Start: []int{0, 0, 0}, Count: []int{4, 6, 6},
		}
		read := func() (*Slab, float64) {
			start := p.Now()
			slab, err := reader.ReadSlab(p, src)
			if err != nil {
				t.Fatal(err)
			}
			return slab, p.Now() - start
		}
		first, cold := read()
		second, warm := read()
		if !bytes.Equal(first.Raw, second.Raw) {
			t.Fatal("cached slab differs from cold read")
		}
		if warm >= cold {
			t.Fatalf("warm read took %v, cold %v; want strictly faster", warm, cold)
		}
		st := cache.Stats()
		if st.Hits != 4 || st.Misses != 4 {
			t.Fatalf("cache stats = %+v, want 4 hits / 4 misses (one per chunk)", st)
		}
	})
}

func TestPFSReaderRetriesTransientReadFaults(t *testing.T) {
	r := newRig(t)
	flat := []byte("0123456789")
	r.pfs.Put("/in/notes.txt", flat)
	reg := obs.New()
	fails := 0
	r.pfs.SetReadFault(func(path string, off, n int64) fault.Outcome {
		if fails < 2 {
			fails++
			return fault.Fail
		}
		return fault.OK
	})
	r.run(t, func(p *sim.Proc) {
		reader := NewPFSReader(nil, r.mount(r.bd.Node(0)))
		reader.Obs = reg
		reader.Retry = RetryPolicy{MaxRetries: 3, Backoff: 0.01}
		got, err := reader.ReadFlat(p, &FlatSource{PFSPath: "/in/notes.txt", Length: int64(len(flat))})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, flat) {
			t.Fatalf("retried read = %q", got)
		}
	})
	if v := reg.Counter("core/read_retries_total", obs.L("kind", "flaky-read")).Value(); v != 2 {
		t.Fatalf("read retries = %v, want 2", v)
	}
}

func TestPFSReaderFailsFastWithoutRetryPolicy(t *testing.T) {
	r := newRig(t)
	r.pfs.Put("/in/notes.txt", []byte("0123456789"))
	r.pfs.SetReadFault(func(path string, off, n int64) fault.Outcome { return fault.Fail })
	r.run(t, func(p *sim.Proc) {
		reader := NewPFSReader(nil, r.mount(r.bd.Node(0)))
		_, err := reader.ReadFlat(p, &FlatSource{PFSPath: "/in/notes.txt", Length: 10})
		if err == nil {
			t.Fatal("zero-value policy must fail fast")
		}
		if !fault.IsTransient(err) {
			t.Fatalf("want transient error, got %v", err)
		}
	})
}

func TestPFSReaderReadsAroundOSTOutage(t *testing.T) {
	// Every OST goes down before the read and comes back mid-backoff: the
	// first attempt returns all ranges missing (zero-filled), and the
	// read-around pass re-requests only the missing ranges after the
	// outage ends.
	r := newRig(t)
	flat := []byte("0123456789abcdef0123456789abcdef")
	r.pfs.Put("/in/notes.txt", flat)
	reg := obs.New()
	for i := 0; i < r.pfs.OSTCount(); i++ {
		r.pfs.SetOSTDown(i, true)
	}
	r.k.After(0.05, func() {
		for i := 0; i < r.pfs.OSTCount(); i++ {
			r.pfs.SetOSTDown(i, false)
		}
	})
	r.run(t, func(p *sim.Proc) {
		reader := NewPFSReader(nil, r.mount(r.bd.Node(0)))
		reader.Obs = reg
		reader.Retry = RetryPolicy{MaxRetries: 5, Backoff: 0.02}
		got, err := reader.ReadFlat(p, &FlatSource{PFSPath: "/in/notes.txt", Length: int64(len(flat))})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, flat) {
			t.Fatalf("read-around returned wrong bytes: %q", got)
		}
	})
	if v := reg.Counter("core/read_around_total").Value(); v == 0 {
		t.Fatal("expected nonzero read-arounds")
	}
}

func TestPFSReaderExhaustsRetriesOnPermanentOutage(t *testing.T) {
	r := newRig(t)
	r.pfs.Put("/in/notes.txt", []byte("0123456789"))
	for i := 0; i < r.pfs.OSTCount(); i++ {
		r.pfs.SetOSTDown(i, true)
	}
	r.run(t, func(p *sim.Proc) {
		reader := NewPFSReader(nil, r.mount(r.bd.Node(0)))
		reader.Retry = RetryPolicy{MaxRetries: 2, Backoff: 0.01}
		_, err := reader.ReadFlat(p, &FlatSource{PFSPath: "/in/notes.txt", Length: 10})
		if err == nil {
			t.Fatal("permanent outage must surface after retries")
		}
		if !fault.IsTransient(err) || fault.KindOf(err) != "ost-down" {
			t.Fatalf("want transient ost-down, got %v", err)
		}
	})
}

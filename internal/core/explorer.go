package core

import (
	"fmt"

	"scidp/internal/pfs"
	"scidp/internal/scifmt"
	"scidp/internal/sim"
)

// FileClass is the File Explorer's verdict on one input file.
type FileClass struct {
	// Path is the PFS file path.
	Path string
	// Size is the file length in bytes.
	Size int64
	// Format names the detecting scientific format ("" for flat files).
	Format string
	// Info is the explored structure (nil for flat files).
	Info *scifmt.Info
}

// Sci reports whether the file was recognized as scientific.
func (fc *FileClass) Sci() bool { return fc.Info != nil }

// Explorer is SciDP's File Explorer: the Path Reader walks the input path
// and the Sci-format Head Reader probes each file against the installed
// format plugins.
type Explorer struct {
	// Registry holds the installed scientific formats.
	Registry *scifmt.Registry
}

// NewExplorer returns an explorer over the given format registry.
func NewExplorer(reg *scifmt.Registry) *Explorer {
	if reg == nil {
		reg = scifmt.Default()
	}
	return &Explorer{Registry: reg}
}

// ExploreFile classifies a single PFS file, charging the magic probe and
// (for scientific files) the header read in virtual time.
func (e *Explorer) ExploreFile(p *sim.Proc, client *pfs.Client, path string) (*FileClass, error) {
	r, err := client.OpenReader(p, path)
	if err != nil {
		return nil, err
	}
	fc := &FileClass{Path: path, Size: r.Size()}
	format, ok := e.Registry.Detect(r)
	if !ok {
		return fc, nil // flat file
	}
	info, err := format.Explore(r)
	if err != nil {
		return nil, fmt.Errorf("core: explore %s: %w", path, err)
	}
	fc.Format = format.Name()
	fc.Info = info
	return fc, nil
}

// ExplorePath lists the PFS directory and classifies every file in it, in
// sorted path order. An empty directory is an error (nothing to map).
func (e *Explorer) ExplorePath(p *sim.Proc, client *pfs.Client, dir string) ([]*FileClass, error) {
	paths, err := client.List(p, dir)
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("core: input path %s is empty", dir)
	}
	out := make([]*FileClass, 0, len(paths))
	for _, path := range paths {
		fc, err := e.ExploreFile(p, client, path)
		if err != nil {
			return nil, err
		}
		out = append(out, fc)
	}
	return out, nil
}

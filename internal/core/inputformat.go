package core

import (
	"fmt"

	"scidp/internal/cluster"
	"scidp/internal/hdfs"
	"scidp/internal/ioengine"
	"scidp/internal/mapreduce"
	"scidp/internal/obs"
	"scidp/internal/pfs"
	"scidp/internal/scifmt"
	"scidp/internal/sim"
)

// CostModel carries the modeled CPU costs of the read path.
type CostModel struct {
	// DecompressPerRawMB is seconds of CPU charged per decompressed MB.
	DecompressPerRawMB float64
	// ConvertPerRawMB is seconds charged per MB of binary-to-R-structure
	// conversion (the paper: "The binary data fetched from the PFS can be
	// converted to R structure in a very short time").
	ConvertPerRawMB float64
}

// DefaultCostModel returns constants calibrated to the paper's Figure 7:
// SciDP reads+converts a 50-level variable in well under 2 s of task time.
func DefaultCostModel() CostModel {
	return CostModel{DecompressPerRawMB: 0.004, ConvertPerRawMB: 0.002}
}

// InputFormat plugs SciDP into the MapReduce engine: splits are the dummy
// blocks of a virtual mapping, and reading a split spawns a PFS Reader on
// the task's node. Records are delivered as (label, *Slab) for scientific
// blocks and (label, []byte) for flat blocks.
type InputFormat struct {
	// HDFS holds the virtual inodes.
	HDFS *hdfs.FS
	// Dir is the HDFS mirror directory to walk (a Mapping.Root).
	Dir string
	// Registry resolves formats for slab reads.
	Registry *scifmt.Registry
	// MountFor returns the PFS mount for a task's node (the mount's
	// resource path should traverse the cross-cluster link and the
	// node's NIC).
	MountFor func(node *cluster.Node) *pfs.Client
	// Cost is the CPU cost model (zero value charges nothing).
	Cost CostModel
	// Engine configures each task's PFS Reader I/O engine (zero value:
	// no cache, no readahead — the pre-engine behavior).
	Engine EngineOptions
	// Caches holds the per-node chunk caches when Engine.CacheBytes > 0.
	// Leave nil to have ForEach create one lazily; set it to share (or
	// inspect) the caches across jobs.
	Caches *ioengine.CacheSet
	// Tier, when non-nil, is the cluster-wide cooperative cache every
	// task's reader consults between the job cache and the PFS.
	Tier *ioengine.Tier
	// Obs, when non-nil, is handed to each task's PFS Reader so block
	// reads produce spans and I/O-engine counters.
	Obs *obs.Registry
	// Retry is each task's PFS Reader recovery policy (zero = fail fast;
	// a transient fault then surfaces to MapReduce task re-execution).
	Retry RetryPolicy
}

// EngineOptions configures the per-task I/O engine of an InputFormat.
type EngineOptions struct {
	// CacheBytes is the per-node decompressed-chunk cache budget
	// (0 disables caching, < 0 means unbounded).
	CacheBytes int64
	// Prefetch is the chunk readahead depth per slab read (0 disables).
	Prefetch int
}

// Splits walks the mirror directory: one split per dummy block, with no
// location constraint (data lives on the PFS, so any node is equally
// close — the scheduler spreads the tasks).
func (in *InputFormat) Splits(p *sim.Proc) ([]*mapreduce.Split, error) {
	files, err := in.HDFS.Walk(p, in.Dir)
	if err != nil {
		return nil, err
	}
	var out []*mapreduce.Split
	for _, f := range files {
		if !f.Virtual {
			continue
		}
		for i, b := range f.Blocks {
			out = append(out, &mapreduce.Split{
				Label:   fmt.Sprintf("%s#%d", f.Path, i),
				Payload: b,
				Length:  b.Size,
			})
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("core: no virtual blocks under %s", in.Dir)
	}
	return out, nil
}

// ForEach resolves the split's dummy block through a PFS Reader bound to
// the task's node and delivers a single record. The transfer and
// decompression/conversion costs land in the task's "Read" and "Convert"
// phases (the paper's Figure 7 decomposition).
func (in *InputFormat) ForEach(tc *mapreduce.TaskContext, s *mapreduce.Split, fn func(key string, value any) error) error {
	if in.MountFor == nil {
		return fmt.Errorf("core: InputFormat needs MountFor")
	}
	reader := NewPFSReader(in.Registry, in.MountFor(tc.Node()))
	if in.Engine.CacheBytes != 0 {
		if in.Caches == nil {
			in.Caches = ioengine.NewCacheSet(in.Engine.CacheBytes)
		}
		reader.Cache = in.Caches.For(tc.Node().Name)
	}
	reader.Tier = in.Tier
	reader.Node = tc.Node().Name
	reader.Prefetch = in.Engine.Prefetch
	reader.Obs = in.Obs
	reader.Retry = in.Retry
	block := s.Payload.(*hdfs.Block)
	var value any
	var err error
	tc.Phase("Read", func() {
		value, err = reader.ReadBlock(tc.Proc(), block)
	})
	if err != nil {
		return err
	}
	var rawMB float64
	switch v := value.(type) {
	case *Slab:
		rawMB = float64(len(v.Raw)) / 1e6
	case []byte:
		rawMB = float64(len(v)) / 1e6
	}
	if in.Cost.DecompressPerRawMB > 0 {
		tc.Charge("Read", in.Cost.DecompressPerRawMB*rawMB)
	}
	if in.Cost.ConvertPerRawMB > 0 {
		tc.Charge("Convert", in.Cost.ConvertPerRawMB*rawMB)
	}
	return fn(s.Label, value)
}

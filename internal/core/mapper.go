package core

import (
	"fmt"
	"path"
	"strings"

	"scidp/internal/hdfs"
	"scidp/internal/pfs"
	"scidp/internal/scifmt"
	"scidp/internal/sim"
)

// FlatSource is a dummy block's payload for flat files: a raw byte range
// of the PFS file, read back with one whole-block request.
type FlatSource struct {
	// PFSPath is the source file.
	PFSPath string
	// Offset is the byte range start.
	Offset int64
	// Length is the byte range length.
	Length int64
}

// SlabSource is a dummy block's payload for scientific files: a hyperslab
// of one variable, read back through the format's reader.
type SlabSource struct {
	// PFSPath is the source file.
	PFSPath string
	// Format names the scientific format plugin to read with.
	Format string
	// VarPath is the variable within the file.
	VarPath string
	// TypeName and ElemSize describe the element type.
	TypeName string
	// ElemSize is the element width in bytes.
	ElemSize int
	// DimNames names the variable's dimensions.
	DimNames []string
	// Start is the hyperslab origin.
	Start []int
	// Count is the hyperslab extent.
	Count []int
	// StoredBytes estimates the on-disk bytes the read will touch.
	StoredBytes int64
}

// MapOptions tunes the Data Mapper.
type MapOptions struct {
	// Vars restricts mapping to the named variable paths (SciDP's
	// variable-level subsetting: "SciDP will ignore the unrelated
	// variables"). Nil maps every variable.
	Vars []string
	// RowsPerBlock overrides dummy-block granularity for scientific
	// variables: each block covers this many leading-dimension entries.
	// Zero keeps the default chunk-aligned blocks (one block per storage
	// chunk, avoiding reads of extra compressed chunks); smaller values
	// split chunks across tasks, larger values merge them.
	RowsPerBlock int
	// FlatBlockSize overrides the dummy-block size for flat files
	// (zero: the HDFS block size, 128 MB in the paper). Negative values
	// are rejected.
	FlatBlockSize int64
	// Paths restricts MapPath to the named source files (nil maps every
	// file under the directory) — for jobs that consume a window of a
	// dataset rather than the whole of it.
	Paths []string
}

// MappedVar records one variable's virtual file.
type MappedVar struct {
	// HDFSPath is the virtual file mirroring the variable.
	HDFSPath string
	// VarPath is the variable within the source file.
	VarPath string
	// INode is the created virtual inode.
	INode *hdfs.INode
}

// MappedFile records one input file's mirror.
type MappedFile struct {
	// PFSPath is the source file.
	PFSPath string
	// HDFSPath is the mirror root (a directory for scientific files, the
	// virtual file itself for flat files).
	HDFSPath string
	// Format names the scientific format ("" for flat).
	Format string
	// Vars lists the mapped variables (flat files have none).
	Vars []MappedVar
	// Flat is the virtual inode for a flat file (nil for scientific).
	Flat *hdfs.INode
}

// Mapping is the result of mapping one PFS input path.
type Mapping struct {
	// Root is the HDFS directory holding the mirrors.
	Root string
	// Files lists the mapped inputs in sorted order.
	Files []MappedFile
}

// VirtualPaths returns every virtual HDFS file path in the mapping.
func (m *Mapping) VirtualPaths() []string {
	var out []string
	for _, f := range m.Files {
		if f.Flat != nil {
			out = append(out, f.HDFSPath)
			continue
		}
		for _, v := range f.Vars {
			out = append(out, v.HDFSPath)
		}
	}
	return out
}

// Mapper is SciDP's Data Mapper: it turns File Explorer verdicts into
// virtual HDFS inodes whose dummy blocks carry PFS mapping payloads.
type Mapper struct {
	// HDFS is the target namespace.
	HDFS *hdfs.FS
	// Explorer classifies inputs.
	Explorer *Explorer
	// MirrorRoot is the HDFS directory mirrors are created under
	// (default "/scidp").
	MirrorRoot string
}

// NewMapper returns a mapper writing mirrors under mirrorRoot.
func NewMapper(fs *hdfs.FS, reg *scifmt.Registry, mirrorRoot string) *Mapper {
	if mirrorRoot == "" {
		mirrorRoot = "/scidp"
	}
	return &Mapper{HDFS: fs, Explorer: NewExplorer(reg), MirrorRoot: mirrorRoot}
}

// MapPath explores the PFS directory and creates the virtual mirror on
// HDFS. Only metadata moves: the PFS is read for file headers, the HDFS
// NameNode records virtual inodes and dummy blocks.
func (m *Mapper) MapPath(p *sim.Proc, client *pfs.Client, pfsDir string, opts MapOptions) (*Mapping, error) {
	files, err := m.Explorer.ExplorePath(p, client, pfsDir)
	if err != nil {
		return nil, err
	}
	root := path.Join(m.MirrorRoot, strings.Trim(pfsDir, "/"))
	mapping := &Mapping{Root: root}
	var want map[string]bool
	if opts.Paths != nil {
		want = make(map[string]bool, len(opts.Paths))
		for _, pth := range opts.Paths {
			want[pth] = true
		}
	}
	for _, fc := range files {
		if want != nil && !want[fc.Path] {
			continue
		}
		mf, err := m.mapOne(p, fc, root, opts)
		if err != nil {
			return nil, err
		}
		mapping.Files = append(mapping.Files, *mf)
	}
	return mapping, nil
}

// MapFile explores and mirrors a single PFS file — the in-situ path,
// where each output is mapped the moment the simulation finishes writing
// it ("Users can launch data analysis ... immediately after data is
// generated", Section I).
func (m *Mapper) MapFile(p *sim.Proc, client *pfs.Client, pfsPath string, opts MapOptions) (*MappedFile, error) {
	fc, err := m.Explorer.ExploreFile(p, client, pfsPath)
	if err != nil {
		return nil, err
	}
	root := path.Join(m.MirrorRoot, strings.Trim(path.Dir(pfsPath), "/"))
	return m.mapOne(p, fc, root, opts)
}

func (m *Mapper) mapOne(p *sim.Proc, fc *FileClass, root string, opts MapOptions) (*MappedFile, error) {
	base := path.Base(fc.Path)
	if !fc.Sci() {
		return m.mapFlat(p, fc, path.Join(root, base), opts)
	}
	mf := &MappedFile{PFSPath: fc.Path, HDFSPath: path.Join(root, base), Format: fc.Format}
	if err := m.HDFS.Mkdir(p, mf.HDFSPath); err != nil {
		return nil, err
	}
	wanted := map[string]bool{}
	for _, v := range opts.Vars {
		wanted[v] = true
	}
	matched := 0
	for i := range fc.Info.Vars {
		v := &fc.Info.Vars[i]
		if len(wanted) > 0 && !wanted[v.Path] {
			continue
		}
		matched++
		blocks, err := slabBlocks(fc, v, opts.RowsPerBlock)
		if err != nil {
			return nil, err
		}
		hdfsPath := path.Join(mf.HDFSPath, v.Path)
		inode, err := m.HDFS.CreateVirtualFile(p, hdfsPath, blocks)
		if err != nil {
			return nil, err
		}
		mf.Vars = append(mf.Vars, MappedVar{HDFSPath: hdfsPath, VarPath: v.Path, INode: inode})
	}
	if len(wanted) > 0 && matched == 0 {
		return nil, fmt.Errorf("core: %s: none of the requested variables %v exist", fc.Path, opts.Vars)
	}
	return mf, nil
}

func (m *Mapper) mapFlat(p *sim.Proc, fc *FileClass, hdfsPath string, opts MapOptions) (*MappedFile, error) {
	if opts.FlatBlockSize < 0 {
		return nil, fmt.Errorf("core: negative FlatBlockSize %d", opts.FlatBlockSize)
	}
	blockSize := opts.FlatBlockSize
	if blockSize == 0 {
		blockSize = m.HDFS.Config().BlockSize
	}
	var blocks []hdfs.VirtualBlockSpec
	for off := int64(0); off < fc.Size; off += blockSize {
		l := blockSize
		if off+l > fc.Size {
			l = fc.Size - off
		}
		blocks = append(blocks, hdfs.VirtualBlockSpec{
			Size:   l,
			Source: &FlatSource{PFSPath: fc.Path, Offset: off, Length: l},
		})
	}
	inode, err := m.HDFS.CreateVirtualFile(p, hdfsPath, blocks)
	if err != nil {
		return nil, err
	}
	return &MappedFile{PFSPath: fc.Path, HDFSPath: hdfsPath, Flat: inode}, nil
}

// slabBlocks partitions a variable along its leading dimension into dummy
// blocks. With rowsPerBlock == 0 the partition follows the storage chunks
// exactly (one block per chunk, the paper's default: "the first dummy
// block is created with the same size as the original chunk size").
func slabBlocks(fc *FileClass, v *scifmt.VarEntry, rowsPerBlock int) ([]hdfs.VirtualBlockSpec, error) {
	if len(v.Shape) == 0 {
		return nil, fmt.Errorf("core: %s/%s has no shape", fc.Path, v.Path)
	}
	rows := v.Shape[0]
	// Bytes stored per leading-dimension row, for block-size estimates.
	storedPerRow := float64(v.StoredBytes) / float64(rows)

	type span struct{ start, count int }
	var spans []span
	if rowsPerBlock > 0 {
		for r := 0; r < rows; r += rowsPerBlock {
			n := rowsPerBlock
			if r+n > rows {
				n = rows - r
			}
			spans = append(spans, span{r, n})
		}
	} else if len(v.Segments) > 0 {
		// Chunk-aligned: group segments by leading-dim range (trailing
		// dims of a chunk may split a row range into several segments;
		// they share the same leading range for row-major chunk grids
		// only when the chunk spans the trailing dims — otherwise fall
		// back to per-segment spans merged by start row).
		seen := map[int]int{} // start row -> span index
		for _, seg := range v.Segments {
			s0 := seg.Start[0]
			n := seg.Extent[0]
			if i, ok := seen[s0]; ok {
				if spans[i].count < n {
					spans[i].count = n
				}
				continue
			}
			seen[s0] = len(spans)
			spans = append(spans, span{s0, n})
		}
	} else {
		spans = append(spans, span{0, rows})
	}

	blocks := make([]hdfs.VirtualBlockSpec, 0, len(spans))
	for _, sp := range spans {
		start := make([]int, len(v.Shape))
		count := append([]int(nil), v.Shape...)
		start[0] = sp.start
		count[0] = sp.count
		blocks = append(blocks, hdfs.VirtualBlockSpec{
			Size: int64(storedPerRow * float64(sp.count)),
			Source: &SlabSource{
				PFSPath:     fc.Path,
				Format:      fc.Format,
				VarPath:     v.Path,
				TypeName:    v.TypeName,
				ElemSize:    v.ElemSize,
				DimNames:    v.DimNames,
				Start:       start,
				Count:       count,
				StoredBytes: int64(storedPerRow * float64(sp.count)),
			},
		})
	}
	return blocks, nil
}

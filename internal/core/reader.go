package core

import (
	"fmt"

	"scidp/internal/hdfs"
	"scidp/internal/ioengine"
	"scidp/internal/obs"
	"scidp/internal/pfs"
	"scidp/internal/scifmt"
	"scidp/internal/sim"
)

// PFSReader resolves dummy blocks against the parallel file system from
// inside a task — the paper's PFS Reader. Each task constructs (or is
// handed) one, bound to the task's own PFS mount so the transfer crosses
// that node's NIC. Slab reads go through a per-task I/O engine: an
// optional shared chunk cache (typically one per node, holding
// decompressed chunks across tasks) and optional readahead.
type PFSReader struct {
	// Registry resolves format names from SlabSource payloads.
	Registry *scifmt.Registry
	// Client is the PFS mount of the node the task runs on.
	Client *pfs.Client
	// Cache, when non-nil, serves decompressed chunks across slab reads.
	Cache *ioengine.Cache
	// Prefetch is the readahead depth for announced chunk plans (0 off).
	Prefetch int
	// Obs, when non-nil, wraps each block read in a span and feeds the
	// I/O-engine counters.
	Obs *obs.Registry
}

// readSpan opens a child span of p's current span, installs it as the
// current span for the duration of the read (so PFS access spans nest
// under it), and returns the restore-and-end closure. No-op when no
// registry is attached.
func (r *PFSReader) readSpan(p *sim.Proc, name, path string) func() {
	if r.Obs == nil {
		return func() {}
	}
	sp := r.Obs.StartSpan(name, "core", p.Span())
	sp.Arg("path", path)
	prev := p.SetSpan(sp)
	return func() {
		p.SetSpan(prev)
		sp.End()
	}
}

// NewPFSReader returns a reader over the given mount.
func NewPFSReader(reg *scifmt.Registry, client *pfs.Client) *PFSReader {
	if reg == nil {
		reg = scifmt.Default()
	}
	return &PFSReader{Registry: reg, Client: client}
}

// ReadBlock resolves any dummy block: flat sources return raw bytes,
// slab sources return a decoded *Slab.
func (r *PFSReader) ReadBlock(p *sim.Proc, b *hdfs.Block) (any, error) {
	if !b.Virtual {
		return nil, fmt.Errorf("core: block %d is not virtual; read it via HDFS", b.ID)
	}
	switch src := b.Source.(type) {
	case *FlatSource:
		return r.ReadFlat(p, src)
	case *SlabSource:
		return r.ReadSlab(p, src)
	default:
		return nil, fmt.Errorf("core: block %d has unknown source %T", b.ID, b.Source)
	}
}

// ReadFlat reads a flat byte range with a single whole-block request
// (SciDP "reads the entire block in a single I/O request to maximize the
// bandwidth", unlike Hadoop's 64 KB streaming reads).
func (r *PFSReader) ReadFlat(p *sim.Proc, src *FlatSource) ([]byte, error) {
	defer r.readSpan(p, "PFSReader.ReadFlat", src.PFSPath)()
	data, err := r.Client.ReadAt(p, src.PFSPath, src.Offset, src.Length)
	if err != nil {
		return nil, err
	}
	if int64(len(data)) != src.Length {
		return nil, fmt.Errorf("core: %s: short read %d of %d at %d", src.PFSPath, len(data), src.Length, src.Offset)
	}
	return data, nil
}

// ReadSlab opens the scientific file (header reads charged) and pulls the
// block's hyperslab through the format plugin — the nc_open / nc_get_vara
// / nc_close sequence the paper's map tasks perform.
func (r *PFSReader) ReadSlab(p *sim.Proc, src *SlabSource) (*Slab, error) {
	defer r.readSpan(p, "PFSReader.ReadSlab", src.PFSPath+"/"+src.VarPath)()
	format, ok := r.Registry.Lookup(src.Format)
	if !ok {
		return nil, fmt.Errorf("core: format %q not installed", src.Format)
	}
	eng, err := r.Client.Engine(p, src.PFSPath)
	if err != nil {
		return nil, err
	}
	reader := ioengine.Bind(p, eng, ioengine.Options{Cache: r.Cache, Prefetch: r.Prefetch, Obs: r.Obs})
	raw, err := format.ReadSlab(reader, src.VarPath, src.Start, src.Count)
	if err != nil {
		return nil, fmt.Errorf("core: %s/%s: %w", src.PFSPath, src.VarPath, err)
	}
	return &Slab{
		PFSPath:  src.PFSPath,
		VarPath:  src.VarPath,
		TypeName: src.TypeName,
		ElemSize: src.ElemSize,
		DimNames: src.DimNames,
		Start:    src.Start,
		Count:    src.Count,
		Raw:      raw,
	}, nil
}

package core

import (
	"fmt"

	"scidp/internal/fault"
	"scidp/internal/hdfs"
	"scidp/internal/ioengine"
	"scidp/internal/obs"
	"scidp/internal/pfs"
	"scidp/internal/scifmt"
	"scidp/internal/sim"
)

// RetryPolicy bounds the PFS Reader's recovery loop for transient read
// faults (flaky reads, corruption, OST outage windows). The zero value
// disables retries — the first transient failure surfaces to the task,
// where MapReduce-level re-execution takes over.
type RetryPolicy struct {
	// MaxRetries is how many extra attempts follow the first failure.
	MaxRetries int
	// Backoff is the virtual-seconds sleep before retry i (0-based),
	// doubled each attempt: Backoff, 2*Backoff, 4*Backoff, ...
	// The sleeps advance virtual time, so a retry loop naturally rides
	// out a chaos outage window instead of spinning inside it.
	Backoff float64
}

// PFSReader resolves dummy blocks against the parallel file system from
// inside a task — the paper's PFS Reader. Each task constructs (or is
// handed) one, bound to the task's own PFS mount so the transfer crosses
// that node's NIC. Slab reads go through a per-task I/O engine: an
// optional shared chunk cache (typically one per node, holding
// decompressed chunks across tasks) and optional readahead.
type PFSReader struct {
	// Registry resolves format names from SlabSource payloads.
	Registry *scifmt.Registry
	// Client is the PFS mount of the node the task runs on.
	Client *pfs.Client
	// Cache, when non-nil, serves decompressed chunks across slab reads.
	Cache *ioengine.Cache
	// Tier, when non-nil, is the cluster-wide cooperative cache chunk
	// reads consult after the per-job cache; Node names the burst buffer
	// local to the task (the node the task was scheduled on).
	Tier *ioengine.Tier
	Node string
	// Prefetch is the readahead depth for announced chunk plans (0 off).
	Prefetch int
	// Obs, when non-nil, wraps each block read in a span and feeds the
	// I/O-engine counters.
	Obs *obs.Registry
	// Retry governs recovery from transient PFS faults: full-request
	// retry-with-backoff for flaky/corrupt reads, and read-around (re-
	// requesting only the byte ranges on offline OSTs) for degraded
	// stripes. Zero value = fail fast.
	Retry RetryPolicy
}

// readRange is every PFS byte range's path through the reader: one
// ReadAtParts, then — while transient faults or offline ranges remain and
// the retry budget lasts — exponential-backoff retries. A flaky or
// corrupt read re-requests the whole range; a degraded stripe re-requests
// only the missing ranges (read-around), patching them into the buffer
// already in hand. Backoff sleeps advance virtual time, so an OST outage
// window scheduled on the kernel clock can end mid-loop.
func (r *PFSReader) readRange(p *sim.Proc, path string, off, n int64) ([]byte, error) {
	out, missing, err := r.Client.ReadAtParts(p, path, off, n)
	if err == nil && len(missing) == 0 {
		return out, nil
	}
	for attempt := 0; attempt < r.Retry.MaxRetries; attempt++ {
		if err != nil && !fault.IsTransient(err) {
			return nil, err
		}
		p.Sleep(r.Retry.Backoff * float64(int64(1)<<attempt))
		if err != nil {
			r.Obs.Counter("core/read_retries_total", obs.L("kind", fault.KindOf(err))).Inc()
			out, missing, err = r.Client.ReadAtParts(p, path, off, n)
		} else {
			r.Obs.Counter("core/read_around_total").Inc()
			var still []ioengine.Range
			for _, m := range missing {
				data, miss, rerr := r.Client.ReadAtParts(p, path, m.Off, m.Len)
				if rerr != nil {
					err = rerr
					still = nil
					break
				}
				copy(out[m.Off-off:m.Off-off+int64(len(data))], data)
				still = append(still, miss...)
			}
			if err == nil {
				missing = still
			}
		}
		if err == nil && len(missing) == 0 {
			return out, nil
		}
	}
	if err != nil {
		return nil, err
	}
	return nil, fault.Transient("ost-down",
		"core: read %s [%d,+%d): %d range(s) still offline after %d retries",
		path, off, n, len(missing), r.Retry.MaxRetries)
}

// retryEngine routes engine-level chunk reads (the ReadSlab path) through
// the reader's recovery loop, so cached/prefetched scientific reads get
// the same retry and read-around behavior as flat block reads.
type retryEngine struct {
	r    *PFSReader
	path string
	size int64
}

func (e *retryEngine) ReadAt(p *sim.Proc, off, n int64) ([]byte, error) {
	return e.r.readRange(p, e.path, off, n)
}

func (e *retryEngine) Size() int64 { return e.size }

// Name namespaces cache keys with the file path, matching pfs.fileEngine.
func (e *retryEngine) Name() string { return e.path }

// readSpan opens a child span of p's current span, installs it as the
// current span for the duration of the read (so PFS access spans nest
// under it), and returns the restore-and-end closure. No-op when no
// registry is attached.
func (r *PFSReader) readSpan(p *sim.Proc, name, path string) func() {
	if r.Obs == nil {
		return func() {}
	}
	sp := r.Obs.StartSpan(name, "core", p.Span())
	sp.Arg("path", path)
	prev := p.SetSpan(sp)
	return func() {
		p.SetSpan(prev)
		sp.End()
	}
}

// NewPFSReader returns a reader over the given mount.
func NewPFSReader(reg *scifmt.Registry, client *pfs.Client) *PFSReader {
	if reg == nil {
		reg = scifmt.Default()
	}
	return &PFSReader{Registry: reg, Client: client}
}

// ReadBlock resolves any dummy block: flat sources return raw bytes,
// slab sources return a decoded *Slab.
func (r *PFSReader) ReadBlock(p *sim.Proc, b *hdfs.Block) (any, error) {
	if !b.Virtual {
		return nil, fmt.Errorf("core: block %d is not virtual; read it via HDFS", b.ID)
	}
	switch src := b.Source.(type) {
	case *FlatSource:
		return r.ReadFlat(p, src)
	case *SlabSource:
		return r.ReadSlab(p, src)
	default:
		return nil, fmt.Errorf("core: block %d has unknown source %T", b.ID, b.Source)
	}
}

// ReadFlat reads a flat byte range with a single whole-block request
// (SciDP "reads the entire block in a single I/O request to maximize the
// bandwidth", unlike Hadoop's 64 KB streaming reads).
func (r *PFSReader) ReadFlat(p *sim.Proc, src *FlatSource) ([]byte, error) {
	defer r.readSpan(p, "PFSReader.ReadFlat", src.PFSPath)()
	data, err := r.readRange(p, src.PFSPath, src.Offset, src.Length)
	if err != nil {
		return nil, err
	}
	if int64(len(data)) != src.Length {
		return nil, fmt.Errorf("core: %s: short read %d of %d at %d", src.PFSPath, len(data), src.Length, src.Offset)
	}
	return data, nil
}

// ReadSlab opens the scientific file (header reads charged) and pulls the
// block's hyperslab through the format plugin — the nc_open / nc_get_vara
// / nc_close sequence the paper's map tasks perform.
func (r *PFSReader) ReadSlab(p *sim.Proc, src *SlabSource) (*Slab, error) {
	defer r.readSpan(p, "PFSReader.ReadSlab", src.PFSPath+"/"+src.VarPath)()
	format, ok := r.Registry.Lookup(src.Format)
	if !ok {
		return nil, fmt.Errorf("core: format %q not installed", src.Format)
	}
	eng, err := r.Client.Engine(p, src.PFSPath)
	if err != nil {
		return nil, err
	}
	if r.Retry.MaxRetries > 0 {
		eng = &retryEngine{r: r, path: src.PFSPath, size: eng.Size()}
	}
	reader := ioengine.Bind(p, eng, ioengine.Options{Cache: r.Cache, Prefetch: r.Prefetch,
		Obs: r.Obs, Tier: r.Tier, TierNode: r.Node})
	raw, err := format.ReadSlab(reader, src.VarPath, src.Start, src.Count)
	if err != nil {
		return nil, fmt.Errorf("core: %s/%s: %w", src.PFSPath, src.VarPath, err)
	}
	return &Slab{
		PFSPath:  src.PFSPath,
		VarPath:  src.VarPath,
		TypeName: src.TypeName,
		ElemSize: src.ElemSize,
		DimNames: src.DimNames,
		Start:    src.Start,
		Count:    src.Count,
		Raw:      raw,
	}, nil
}

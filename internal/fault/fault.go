// Package fault defines the error contract shared by the fault-injection
// subsystem (internal/chaos) and the storage/compute layers it targets
// (pfs, hdfs, core, mapreduce). It sits at the bottom of the dependency
// order — chaos imports the substrates to flip their fault state, while
// the substrates only need this package to classify the errors they
// surface — so no import cycle forms.
//
// A transient error means "this exact operation may succeed if retried":
// a flaky read, a checksum mismatch on corrupt bytes, an OST outage
// window, a dead replica. Recovery layers (the PFS Reader's
// retry-with-backoff, HDFS replica failover, MapReduce task re-execution)
// retry transient errors and give up immediately on everything else.
package fault

import (
	"errors"
	"fmt"
)

// Error is a transient, retryable failure injected by (or attributed to)
// a fault condition.
type Error struct {
	// Kind classifies the fault ("flaky-read", "corrupt", "ost-down",
	// "dn-down", "task-fail"). It labels retry metrics.
	Kind string
	// Msg is the human-readable description.
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("fault(%s): %s", e.Kind, e.Msg) }

// Transient constructs a retryable fault error of the given kind.
func Transient(kind, format string, args ...any) error {
	return &Error{Kind: kind, Msg: fmt.Sprintf(format, args...)}
}

// IsTransient reports whether err is (or wraps) a retryable fault error.
func IsTransient(err error) bool {
	var fe *Error
	return errors.As(err, &fe)
}

// KindOf returns the fault kind of a transient error ("" for other
// errors) — the label retry counters carry.
func KindOf(err error) string {
	var fe *Error
	if errors.As(err, &fe) {
		return fe.Kind
	}
	return ""
}

// Outcome is a read-fault hook's verdict on one simulated read. The
// storage layers call the installed hook once per read; the chaos
// injector draws from its seeded PRNG to decide.
type Outcome int

const (
	// OK lets the read proceed untouched.
	OK Outcome = iota
	// Fail makes the read return a transient error without moving data.
	Fail
	// Corrupt lets the transfer complete but flips bytes in the returned
	// copy; the layer's checksum detects the damage and surfaces a
	// transient error, so corrupt bytes never escape upward.
	Corrupt
)

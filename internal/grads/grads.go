// Package grads implements a third scientific format — a GrADS-style raw
// gridded binary: uncompressed float32 records, one per (variable, level)
// pair, with a compact self-describing header. It exists to demonstrate
// the SciDP paper's modularity claim end to end: "Users only need to
// provide a file structure explorer and a corresponding reader to add
// support of arbitrary file formats" (Section III-B). Format implements
// scifmt.Format, so registering it makes the File Explorer, Data Mapper,
// and PFS Reader handle these files with no other change.
//
// Layout (little-endian):
//
//	magic "GRD1" | headerLen u64 | header | records
//
// header: nvars u32, then per var: name, nlevels u32, lat u32, lon u32.
// Records follow in declared variable order; each record is one level
// (lat*lon float32s), so a variable occupies nlevels consecutive records
// and every offset is implicit in the header — no per-chunk index needed.
package grads

import (
	"encoding/binary"
	"fmt"
	"math"

	"scidp/internal/ioengine"
	"scidp/internal/scifmt"
)

// Magic is the 4-byte signature.
const Magic = "GRD1"

// VarSpec declares one variable of a writer.
type VarSpec struct {
	// Name is the variable name.
	Name string
	// Levels, Lat, Lon are the grid dimensions.
	Levels, Lat, Lon int
}

// Encode builds a file from variable specs and their full payloads
// (parallel slices). Values are stored raw (uncompressed), the GrADS
// convention.
func Encode(specs []VarSpec, payloads [][]float32) ([]byte, error) {
	if len(specs) != len(payloads) {
		return nil, fmt.Errorf("grads: %d specs, %d payloads", len(specs), len(payloads))
	}
	var hdr []byte
	u32 := func(v uint32) { hdr = binary.LittleEndian.AppendUint32(hdr, v) }
	str := func(s string) { u32(uint32(len(s))); hdr = append(hdr, s...) }
	u32(uint32(len(specs)))
	total := 0
	for i, sp := range specs {
		if sp.Levels <= 0 || sp.Lat <= 0 || sp.Lon <= 0 {
			return nil, fmt.Errorf("grads: var %s: bad dims %dx%dx%d", sp.Name, sp.Levels, sp.Lat, sp.Lon)
		}
		if len(payloads[i]) != sp.Levels*sp.Lat*sp.Lon {
			return nil, fmt.Errorf("grads: var %s: %d values for %dx%dx%d", sp.Name, len(payloads[i]), sp.Levels, sp.Lat, sp.Lon)
		}
		str(sp.Name)
		u32(uint32(sp.Levels))
		u32(uint32(sp.Lat))
		u32(uint32(sp.Lon))
		total += len(payloads[i])
	}
	out := make([]byte, 0, len(Magic)+8+len(hdr)+total*4)
	out = append(out, Magic...)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(hdr)))
	out = append(out, hdr...)
	for _, vals := range payloads {
		for _, v := range vals {
			out = binary.LittleEndian.AppendUint32(out, math.Float32bits(v))
		}
	}
	return out, nil
}

// Format returns the scifmt plugin.
func Format() scifmt.Format { return gradsFormat{} }

type gradsFormat struct{}

func (gradsFormat) Name() string { return "grads" }

func (gradsFormat) Detect(r scifmt.ReaderAt) bool {
	b, err := r.ReadAt(0, int64(len(Magic)))
	return err == nil && string(b) == Magic
}

// header is the parsed metadata plus each variable's data offset.
type header struct {
	vars    []VarSpec
	offsets []int64 // absolute offset of each variable's first record
}

func parseHeader(r scifmt.ReaderAt) (*header, error) {
	prefix, err := r.ReadAt(0, int64(len(Magic))+8)
	if err != nil {
		return nil, err
	}
	if len(prefix) < len(Magic)+8 || string(prefix[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("grads: not a %s file", Magic)
	}
	hlen := int64(binary.LittleEndian.Uint64(prefix[len(Magic):]))
	if hlen <= 0 || hlen > r.Size() {
		return nil, fmt.Errorf("grads: corrupt header length %d", hlen)
	}
	raw, err := r.ReadAt(int64(len(Magic))+8, hlen)
	if err != nil {
		return nil, err
	}
	if int64(len(raw)) < hlen {
		return nil, fmt.Errorf("grads: truncated header")
	}
	off := 0
	need := func(n int) ([]byte, error) {
		if off+n > len(raw) {
			return nil, fmt.Errorf("grads: truncated header at %d", off)
		}
		b := raw[off : off+n]
		off += n
		return b, nil
	}
	u32 := func() (uint32, error) {
		b, err := need(4)
		if err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(b), nil
	}
	nv, err := u32()
	if err != nil {
		return nil, err
	}
	h := &header{}
	cur := int64(len(Magic)) + 8 + hlen
	for i := 0; i < int(nv); i++ {
		nameLen, err := u32()
		if err != nil {
			return nil, err
		}
		nameB, err := need(int(nameLen))
		if err != nil {
			return nil, err
		}
		var sp VarSpec
		sp.Name = string(nameB)
		for _, dst := range []*int{&sp.Levels, &sp.Lat, &sp.Lon} {
			v, err := u32()
			if err != nil {
				return nil, err
			}
			*dst = int(v)
		}
		h.vars = append(h.vars, sp)
		h.offsets = append(h.offsets, cur)
		cur += int64(sp.Levels*sp.Lat*sp.Lon) * 4
	}
	if cur > r.Size() {
		return nil, fmt.Errorf("grads: declared data %d exceeds file size %d", cur, r.Size())
	}
	return h, nil
}

func (gradsFormat) Explore(r scifmt.ReaderAt) (*scifmt.Info, error) {
	h, err := parseHeader(r)
	if err != nil {
		return nil, err
	}
	info := &scifmt.Info{Format: "grads", Attrs: map[string]string{}}
	for i, sp := range h.vars {
		recBytes := int64(sp.Lat*sp.Lon) * 4
		entry := scifmt.VarEntry{
			Path:        sp.Name,
			TypeName:    "float",
			ElemSize:    4,
			Shape:       []int{sp.Levels, sp.Lat, sp.Lon},
			DimNames:    []string{"level", "lat", "lon"},
			RawBytes:    int64(sp.Levels) * recBytes,
			StoredBytes: int64(sp.Levels) * recBytes, // uncompressed
		}
		for l := 0; l < sp.Levels; l++ {
			entry.Segments = append(entry.Segments, scifmt.Segment{
				Offset:     h.offsets[i] + int64(l)*recBytes,
				StoredSize: recBytes,
				RawSize:    recBytes,
				Start:      []int{l, 0, 0},
				Extent:     []int{1, sp.Lat, sp.Lon},
			})
		}
		info.Vars = append(info.Vars, entry)
	}
	return info, nil
}

func (gradsFormat) ReadSlab(r scifmt.ReaderAt, varPath string, start, count []int) ([]byte, error) {
	h, err := parseHeader(r)
	if err != nil {
		return nil, err
	}
	for i, sp := range h.vars {
		if sp.Name != varPath {
			continue
		}
		if len(start) != 3 || len(count) != 3 {
			return nil, fmt.Errorf("grads: slab rank must be 3")
		}
		if start[1] != 0 || start[2] != 0 || count[1] != sp.Lat || count[2] != sp.Lon {
			return nil, fmt.Errorf("grads: only whole-level slabs supported")
		}
		if start[0] < 0 || count[0] <= 0 || start[0]+count[0] > sp.Levels {
			return nil, fmt.Errorf("grads: levels [%d,+%d) outside [0,%d)", start[0], count[0], sp.Levels)
		}
		recBytes := int64(sp.Lat*sp.Lon) * 4
		off := h.offsets[i] + int64(start[0])*recBytes
		n := int64(count[0]) * recBytes
		// One contiguous uncompressed slab, read through the engine's
		// chunk path so a caching source serves repeats without the PFS
		// transfer.
		ioengine.Announce(r, []ioengine.Range{{Off: off, Len: n}})
		return ioengine.ReadChunk(r, off, n, func(raw []byte) ([]byte, error) {
			if int64(len(raw)) < n {
				return nil, fmt.Errorf("grads: truncated data for %s", varPath)
			}
			return raw, nil
		})
	}
	return nil, fmt.Errorf("grads: no variable %q", varPath)
}

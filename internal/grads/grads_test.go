package grads

import (
	"testing"

	"scidp/internal/cluster"
	"scidp/internal/core"
	"scidp/internal/hdfs"
	"scidp/internal/netcdf"
	"scidp/internal/pfs"
	"scidp/internal/scifmt"
	"scidp/internal/sim"
)

func sample(t *testing.T) []byte {
	t.Helper()
	u := make([]float32, 2*3*4)
	v := make([]float32, 1*3*4)
	for i := range u {
		u[i] = float32(i)
	}
	for i := range v {
		v[i] = float32(i) * 10
	}
	blob, err := Encode(
		[]VarSpec{{Name: "U", Levels: 2, Lat: 3, Lon: 4}, {Name: "V", Levels: 1, Lat: 3, Lon: 4}},
		[][]float32{u, v})
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

func TestEncodeValidation(t *testing.T) {
	if _, err := Encode([]VarSpec{{Name: "a", Levels: 1, Lat: 1, Lon: 1}}, nil); err == nil {
		t.Error("spec/payload mismatch should fail")
	}
	if _, err := Encode([]VarSpec{{Name: "a", Levels: 0, Lat: 1, Lon: 1}}, [][]float32{nil}); err == nil {
		t.Error("zero dims should fail")
	}
	if _, err := Encode([]VarSpec{{Name: "a", Levels: 1, Lat: 2, Lon: 2}}, [][]float32{{1}}); err == nil {
		t.Error("short payload should fail")
	}
}

func TestDetect(t *testing.T) {
	blob := sample(t)
	f := Format()
	if !f.Detect(netcdf.BytesReader(blob)) {
		t.Fatal("Detect should accept a grads file")
	}
	if f.Detect(netcdf.BytesReader([]byte("NCL1..."))) {
		t.Fatal("Detect should reject netCDF")
	}
}

func TestExplore(t *testing.T) {
	info, err := Format().Explore(netcdf.BytesReader(sample(t)))
	if err != nil {
		t.Fatal(err)
	}
	if info.Format != "grads" || len(info.Vars) != 2 {
		t.Fatalf("info = %+v", info)
	}
	u, err := info.Var("U")
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Segments) != 2 || u.RawBytes != 2*3*4*4 || u.StoredBytes != u.RawBytes {
		t.Fatalf("U = %+v", u)
	}
	if u.Segments[1].Start[0] != 1 {
		t.Fatalf("segment 1 start = %v", u.Segments[1].Start)
	}
	// Records are laid out back to back: V starts right after U ends.
	v, _ := info.Var("V")
	if v.Segments[0].Offset != u.Segments[1].Offset+u.Segments[1].StoredSize {
		t.Fatal("V offset not contiguous after U")
	}
}

func TestReadSlab(t *testing.T) {
	blob := sample(t)
	raw, err := Format().ReadSlab(netcdf.BytesReader(blob), "U", []int{1, 0, 0}, []int{1, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != 3*4*4 {
		t.Fatalf("raw = %d bytes", len(raw))
	}
	// First value of level 1 is element 12.
	if raw[0] != 0 || raw[1] != 0 || raw[2] != 0x40 || raw[3] != 0x41 { // float32(12) LE
		t.Fatalf("level 1 first value bytes = %v", raw[:4])
	}
	if _, err := Format().ReadSlab(netcdf.BytesReader(blob), "W", []int{0, 0, 0}, []int{1, 3, 4}); err == nil {
		t.Error("missing var should fail")
	}
	if _, err := Format().ReadSlab(netcdf.BytesReader(blob), "U", []int{0, 1, 0}, []int{1, 2, 4}); err == nil {
		t.Error("partial-level slab should fail")
	}
	if _, err := Format().ReadSlab(netcdf.BytesReader(blob), "U", []int{2, 0, 0}, []int{1, 3, 4}); err == nil {
		t.Error("out-of-range level should fail")
	}
}

func TestCorruptHeaders(t *testing.T) {
	blob := sample(t)
	if _, err := Format().Explore(netcdf.BytesReader(blob[:6])); err == nil {
		t.Error("truncated prefix should fail")
	}
	bad := append([]byte(nil), blob...)
	bad[0] = 'X'
	if _, err := Format().Explore(netcdf.BytesReader(bad)); err == nil {
		t.Error("bad magic should fail")
	}
	short := append([]byte(nil), blob[:len(blob)-8]...)
	if _, err := Format().Explore(netcdf.BytesReader(short)); err == nil {
		t.Error("declared data beyond EOF should fail")
	}
}

// TestPluginWorksThroughSciDPCore: registering the plugin is ALL that is
// needed — the File Explorer detects the file, the Data Mapper mirrors
// its variables per level, and the PFS Reader resolves slabs.
func TestPluginWorksThroughSciDPCore(t *testing.T) {
	k := sim.NewKernel()
	bd := cluster.New(k, "bd", cluster.Config{Nodes: 2, SlotsPerNode: 2, DiskBW: 1e6, NICBW: 1e6, FabricBW: 1e6})
	pcfg := pfs.DefaultConfig()
	pcfg.MDSLatency = 0
	fs := pfs.New(k, pcfg)
	hfs := hdfs.New(k, bd, hdfs.Config{BlockSize: 4096, Replication: 1, NNOpsPerSec: 1e9})
	fs.Put("/in/run.grd", sample(t))

	reg := scifmt.Default()
	reg.Register(Format())

	k.Go("driver", func(p *sim.Proc) {
		mount := fs.NewClient(bd.Node(0).NIC)
		m := core.NewMapper(hfs, reg, "/scidp")
		mapping, err := m.MapPath(p, mount, "/in", core.MapOptions{Vars: []string{"U"}})
		if err != nil {
			t.Error(err)
			return
		}
		if mapping.Files[0].Format != "grads" {
			t.Errorf("format = %s", mapping.Files[0].Format)
		}
		inode := mapping.Files[0].Vars[0].INode
		if len(inode.Blocks) != 2 {
			t.Errorf("blocks = %d, want one per level", len(inode.Blocks))
		}
		reader := core.NewPFSReader(reg, fs.NewClient(bd.Node(1).NIC))
		v, err := reader.ReadBlock(p, inode.Blocks[1])
		if err != nil {
			t.Error(err)
			return
		}
		vals, err := v.(*core.Slab).Float32s()
		if err != nil {
			t.Error(err)
			return
		}
		if vals[0] != 12 { // level 1 starts at element 12
			t.Errorf("slab[0] = %v, want 12", vals[0])
		}
	})
	k.Run()
}

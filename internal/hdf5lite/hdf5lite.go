// Package hdf5lite implements a hierarchical scientific format — groups
// nested like directories, each holding typed datasets — standing in for
// HDF5 in SciDP's modular format support. Where the netCDF-like format is
// flat (one list of variables), this one exercises the paper's deeper
// mapping: "if the input files are in the data formats which support
// hierarchical structure, such as HDF5, deeper directory structures will
// be created correspondingly" (Section III-A).
//
// Layout (little-endian):
//
//	magic "HL5F" | headerLen u64 | encoded root group | chunk payloads
//
// Datasets are chunked along the leading dimension (rows per chunk) with
// optional per-chunk DEFLATE, and carry a chunk index in the header so a
// mapper can address segments without reading data.
package hdf5lite

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"strings"

	"scidp/internal/ioengine"
	"scidp/internal/sim"
)

// Magic is the 4-byte file signature.
const Magic = "HL5F"

// Type enumerates dataset element types.
type Type uint8

// Element types.
const (
	Float32 Type = iota + 1
	Float64
	Int32
)

// Size returns the element width in bytes.
func (t Type) Size() int {
	switch t {
	case Float32, Int32:
		return 4
	case Float64:
		return 8
	}
	panic(fmt.Sprintf("hdf5lite: unknown type %d", t))
}

// String names the type.
func (t Type) String() string {
	switch t {
	case Float32:
		return "float32"
	case Float64:
		return "float64"
	case Int32:
		return "int32"
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// Chunk locates one stored chunk of a dataset.
type Chunk struct {
	// RowStart is the first leading-dimension index the chunk covers.
	RowStart int
	// Rows is how many leading-dimension entries it covers.
	Rows int
	// Offset is the absolute file offset of the payload.
	Offset int64
	// StoredSize is the on-disk payload length.
	StoredSize int64
	// RawSize is the decompressed length.
	RawSize int64
	// Stats is the chunk's write-time zone map, or nil for files written
	// before the statistics trailer existed (or with it disabled).
	Stats *ChunkStats
}

// Dataset is one array within a group.
type Dataset struct {
	// Name is the dataset's leaf name.
	Name string
	// Type is the element type.
	Type Type
	// Shape is the extent per dimension.
	Shape []int
	// ChunkRows is the leading-dimension extent per chunk (0 =
	// contiguous single chunk).
	ChunkRows int
	// Deflate is the DEFLATE level (0 = stored).
	Deflate int
	// Chunks is the chunk index in row order.
	Chunks []Chunk

	data []byte // writer-side payload
}

// NumElems returns the element count.
func (d *Dataset) NumElems() int {
	n := 1
	for _, s := range d.Shape {
		n *= s
	}
	return n
}

// RawBytes returns the uncompressed payload size.
func (d *Dataset) RawBytes() int64 { return int64(d.NumElems()) * int64(d.Type.Size()) }

// StoredBytes returns the on-disk payload size.
func (d *Dataset) StoredBytes() int64 {
	var s int64
	for _, c := range d.Chunks {
		s += c.StoredSize
	}
	return s
}

// rowBytes returns the byte width of one leading-dimension entry.
func (d *Dataset) rowBytes() int64 {
	inner := 1
	for _, s := range d.Shape[1:] {
		inner *= s
	}
	return int64(inner) * int64(d.Type.Size())
}

// Group is a node of the hierarchy.
type Group struct {
	// Name is the group's leaf name ("" for the root).
	Name string
	// Attrs are string key/value annotations.
	Attrs map[string]string
	// Children are sub-groups in insertion order.
	Children []*Group
	// Datasets are this group's datasets in insertion order.
	Datasets []*Dataset
}

// Child returns the named sub-group, or nil.
func (g *Group) Child(name string) *Group {
	for _, c := range g.Children {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// Dataset returns the named dataset, or nil.
func (g *Group) Dataset(name string) *Dataset {
	for _, d := range g.Datasets {
		if d.Name == name {
			return d
		}
	}
	return nil
}

// Writer assembles a file: build the group tree, then call Bytes.
type Writer struct {
	root    *Group
	noStats bool
}

// NewWriter returns a writer with an empty root group.
func NewWriter() *Writer {
	return &Writer{root: &Group{Attrs: map[string]string{}}}
}

// Root returns the root group.
func (w *Writer) Root() *Group { return w.root }

// DisableChunkStats omits the per-chunk statistics trailer, producing the
// pre-zone-map header layout — what legacy-compatibility tests exercise.
func (w *Writer) DisableChunkStats() { w.noStats = true }

// EnsureGroup walks/creates the slash-separated path below g and returns
// the final group.
func (g *Group) EnsureGroup(path string) *Group {
	cur := g
	for _, part := range strings.Split(strings.Trim(path, "/"), "/") {
		if part == "" {
			continue
		}
		next := cur.Child(part)
		if next == nil {
			next = &Group{Name: part, Attrs: map[string]string{}}
			cur.Children = append(cur.Children, next)
		}
		cur = next
	}
	return cur
}

// AddFloat32 adds a float32 dataset to the group. chunkRows of 0 stores
// the dataset contiguously.
func (g *Group) AddFloat32(name string, shape []int, chunkRows, deflate int, vals []float32) (*Dataset, error) {
	raw := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(raw[i*4:], math.Float32bits(v))
	}
	return g.addRaw(name, Float32, shape, chunkRows, deflate, raw)
}

// AddInt32 adds an int32 dataset to the group.
func (g *Group) AddInt32(name string, shape []int, chunkRows, deflate int, vals []int32) (*Dataset, error) {
	raw := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(raw[i*4:], uint32(v))
	}
	return g.addRaw(name, Int32, shape, chunkRows, deflate, raw)
}

func (g *Group) addRaw(name string, t Type, shape []int, chunkRows, deflate int, raw []byte) (*Dataset, error) {
	if g.Dataset(name) != nil {
		return nil, fmt.Errorf("hdf5lite: dataset %s exists", name)
	}
	if len(shape) == 0 {
		return nil, fmt.Errorf("hdf5lite: dataset %s: need a shape", name)
	}
	n := 1
	for _, s := range shape {
		if s <= 0 {
			return nil, fmt.Errorf("hdf5lite: dataset %s: bad extent %d", name, s)
		}
		n *= s
	}
	if len(raw) != n*t.Size() {
		return nil, fmt.Errorf("hdf5lite: dataset %s: %d bytes, want %d", name, len(raw), n*t.Size())
	}
	if chunkRows < 0 || chunkRows > shape[0] {
		return nil, fmt.Errorf("hdf5lite: dataset %s: chunkRows %d outside [0,%d]", name, chunkRows, shape[0])
	}
	d := &Dataset{Name: name, Type: t, Shape: append([]int(nil), shape...), ChunkRows: chunkRows, Deflate: deflate, data: raw}
	g.Datasets = append(g.Datasets, d)
	return d, nil
}

// Bytes encodes the file.
func (w *Writer) Bytes() ([]byte, error) {
	// Chunk and compress all datasets first (depth-first order fixes the
	// payload layout).
	var payloads [][]byte
	var prep func(g *Group) error
	prep = func(g *Group) error {
		for _, d := range g.Datasets {
			rows := d.Shape[0]
			per := d.ChunkRows
			if per == 0 {
				per = rows
			}
			rb := d.rowBytes()
			d.Chunks = d.Chunks[:0]
			for r := 0; r < rows; r += per {
				n := per
				if r+n > rows {
					n = rows - r
				}
				raw := d.data[int64(r)*rb : int64(r+n)*rb]
				payload := raw
				if d.Deflate > 0 {
					var buf bytes.Buffer
					fw, err := flate.NewWriter(&buf, d.Deflate)
					if err != nil {
						return err
					}
					fw.Write(raw)
					fw.Close()
					payload = buf.Bytes()
				}
				ck := Chunk{RowStart: r, Rows: n, StoredSize: int64(len(payload)), RawSize: int64(len(raw))}
				if !w.noStats {
					st := computeChunkStats(d.Type, raw)
					ck.Stats = &st
				}
				d.Chunks = append(d.Chunks, ck)
				payloads = append(payloads, payload)
			}
		}
		for _, c := range g.Children {
			if err := prep(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := prep(w.root); err != nil {
		return nil, err
	}

	encodeTree := func(withOffsets bool, base int64) []byte {
		var buf []byte
		u32 := func(v uint32) { buf = binary.LittleEndian.AppendUint32(buf, v) }
		u64 := func(v uint64) { buf = binary.LittleEndian.AppendUint64(buf, v) }
		str := func(s string) { u32(uint32(len(s))); buf = append(buf, s...) }
		cur := base
		var walk func(g *Group)
		walk = func(g *Group) {
			str(g.Name)
			u32(uint32(len(g.Attrs)))
			for _, k := range sortedKeys(g.Attrs) {
				str(k)
				str(g.Attrs[k])
			}
			u32(uint32(len(g.Datasets)))
			for _, d := range g.Datasets {
				str(d.Name)
				buf = append(buf, byte(d.Type))
				u32(uint32(len(d.Shape)))
				for _, s := range d.Shape {
					u64(uint64(s))
				}
				u32(uint32(d.ChunkRows))
				buf = append(buf, byte(d.Deflate))
				u32(uint32(len(d.Chunks)))
				for i := range d.Chunks {
					c := &d.Chunks[i]
					off := int64(0)
					if withOffsets {
						off = cur
						c.Offset = cur
					}
					u64(uint64(off))
					u64(uint64(c.StoredSize))
					u64(uint64(c.RawSize))
					u32(uint32(c.RowStart))
					u32(uint32(c.Rows))
					cur += c.StoredSize
				}
			}
			u32(uint32(len(g.Children)))
			for _, c := range g.Children {
				walk(c)
			}
		}
		walk(w.root)
		// Zone maps ride in a tagged trailer after the tree, one record per
		// chunk in the same depth-first dataset order, each a fixed 32
		// bytes so both encoding passes agree on the header size. Readers
		// that stop at the root group skip it untouched.
		if !w.noStats {
			u32(zoneMapTag)
			for _, d := range datasetsDF(w.root) {
				u32(uint32(len(d.Chunks)))
				for i := range d.Chunks {
					s := d.Chunks[i].Stats
					u64(math.Float64bits(s.Min))
					u64(math.Float64bits(s.Max))
					u64(uint64(s.Count))
					u64(uint64(s.Fill))
				}
			}
		}
		return buf
	}
	probe := encodeTree(false, 0)
	base := int64(len(Magic)) + 8 + int64(len(probe))
	header := encodeTree(true, base)

	out := make([]byte, 0, base)
	out = append(out, Magic...)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(header)))
	out = append(out, header...)
	for _, p := range payloads {
		out = append(out, p...)
	}
	return out, nil
}

func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// ReaderAt is the shared ioengine random-access view (the same interface
// the netcdf package parses from).
type ReaderAt = ioengine.Source

// IsHDF5 reports whether r starts with the format magic — the analogue of
// H5Fis_hdf5.
func IsHDF5(r ReaderAt) bool {
	b, err := r.ReadAt(0, int64(len(Magic)))
	return err == nil && string(b) == Magic
}

// File is an opened file.
type File struct {
	r    ReaderAt
	root *Group
	// HeaderBytes is the metadata-only read cost of Open.
	HeaderBytes int64
}

// Open parses the group tree without touching dataset payloads.
func Open(r ReaderAt) (*File, error) {
	prefix, err := r.ReadAt(0, int64(len(Magic))+8)
	if err != nil {
		return nil, err
	}
	if len(prefix) < len(Magic)+8 || string(prefix[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("hdf5lite: not an %s file", Magic)
	}
	hlen := int64(binary.LittleEndian.Uint64(prefix[len(Magic):]))
	if hlen <= 0 || hlen > r.Size() {
		return nil, fmt.Errorf("hdf5lite: corrupt header length %d", hlen)
	}
	hdr, err := r.ReadAt(int64(len(Magic))+8, hlen)
	if err != nil {
		return nil, err
	}
	if int64(len(hdr)) < hlen {
		return nil, fmt.Errorf("hdf5lite: truncated header")
	}
	d := &treeDec{buf: hdr}
	root := d.group()
	// Optional tagged trailer: per-chunk zone maps in depth-first dataset
	// order. Legacy files end at the tree; unrecognized trailing bytes are
	// ignored, mirroring what pre-zone-map readers do with the trailer.
	if d.err == nil && d.off+4 <= len(d.buf) && binary.LittleEndian.Uint32(d.buf[d.off:]) == zoneMapTag {
		d.off += 4
		for _, ds := range datasetsDF(root) {
			n := int(d.u32())
			if d.err != nil {
				break
			}
			if n != len(ds.Chunks) {
				d.err = fmt.Errorf("hdf5lite: %s: stats trailer has %d chunks, index has %d", ds.Name, n, len(ds.Chunks))
				break
			}
			for j := 0; j < n && d.err == nil; j++ {
				st := ChunkStats{
					Min:   math.Float64frombits(d.u64()),
					Max:   math.Float64frombits(d.u64()),
					Count: int64(d.u64()),
					Fill:  int64(d.u64()),
				}
				ds.Chunks[j].Stats = &st
			}
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	return &File{r: r, root: root, HeaderBytes: int64(len(prefix)) + hlen}, nil
}

type treeDec struct {
	buf []byte
	off int
	err error
}

func (d *treeDec) need(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.buf) {
		d.err = fmt.Errorf("hdf5lite: truncated header at %d", d.off)
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *treeDec) u32() uint32 {
	b := d.need(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *treeDec) u64() uint64 {
	b := d.need(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *treeDec) u8() uint8 {
	b := d.need(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *treeDec) str() string { return string(d.need(int(d.u32()))) }

func (d *treeDec) group() *Group {
	g := &Group{Name: d.str(), Attrs: map[string]string{}}
	na := int(d.u32())
	for i := 0; i < na && d.err == nil; i++ {
		k := d.str()
		g.Attrs[k] = d.str()
	}
	nd := int(d.u32())
	for i := 0; i < nd && d.err == nil; i++ {
		ds := &Dataset{Name: d.str(), Type: Type(d.u8())}
		rank := int(d.u32())
		for j := 0; j < rank && d.err == nil; j++ {
			ds.Shape = append(ds.Shape, int(d.u64()))
		}
		ds.ChunkRows = int(d.u32())
		ds.Deflate = int(d.u8())
		nc := int(d.u32())
		for j := 0; j < nc && d.err == nil; j++ {
			c := Chunk{Offset: int64(d.u64()), StoredSize: int64(d.u64()), RawSize: int64(d.u64())}
			c.RowStart = int(d.u32())
			c.Rows = int(d.u32())
			ds.Chunks = append(ds.Chunks, c)
		}
		g.Datasets = append(g.Datasets, ds)
	}
	ng := int(d.u32())
	for i := 0; i < ng && d.err == nil; i++ {
		g.Children = append(g.Children, d.group())
	}
	return g
}

// Root returns the root group.
func (f *File) Root() *Group { return f.root }

// Find resolves a slash-separated path to a dataset ("model/physics/QR").
func (f *File) Find(path string) (*Dataset, error) {
	parts := strings.Split(strings.Trim(path, "/"), "/")
	g := f.root
	for i, part := range parts {
		if i == len(parts)-1 {
			if d := g.Dataset(part); d != nil {
				return d, nil
			}
			return nil, fmt.Errorf("hdf5lite: no dataset %q", path)
		}
		g = g.Child(part)
		if g == nil {
			return nil, fmt.Errorf("hdf5lite: no group %q in %q", part, path)
		}
	}
	return nil, fmt.Errorf("hdf5lite: empty path")
}

// ReadRows reads leading-dimension entries [start, start+count) of d,
// touching only overlapping chunks, and returns raw little-endian bytes.
func (f *File) ReadRows(d *Dataset, start, count int) ([]byte, error) {
	if start < 0 || count <= 0 || start+count > d.Shape[0] {
		return nil, fmt.Errorf("hdf5lite: rows [%d,+%d) outside [0,%d)", start, count, d.Shape[0])
	}
	rb := d.rowBytes()
	out := make([]byte, int64(count)*rb)
	// Announce the overlapping chunks so a prefetching source overlaps
	// their transfers, then read them in plan order.
	var touched []Chunk
	for _, c := range d.Chunks {
		if c.RowStart+c.Rows <= start || c.RowStart >= start+count {
			continue
		}
		touched = append(touched, c)
	}
	plan := make([]ioengine.Range, len(touched))
	for i, c := range touched {
		plan[i] = ioengine.Range{Off: c.Offset, Len: c.StoredSize}
	}
	ioengine.Announce(f.r, plan)
	// Row ranges of distinct chunks are disjoint, so each assembly copy
	// forks onto the data plane and all join after the last fetch.
	var futs []*sim.Future
	for _, c := range touched {
		raw, err := f.readChunk(d, c)
		if err != nil {
			ioengine.Join(f.r, futs...)
			return nil, err
		}
		lo := max(start, c.RowStart)
		hi := min(start+count, c.RowStart+c.Rows)
		c, raw := c, raw
		if fut := ioengine.Fork(f.r, func() {
			copy(out[int64(lo-start)*rb:int64(hi-start)*rb], raw[int64(lo-c.RowStart)*rb:int64(hi-c.RowStart)*rb])
		}); fut != nil {
			futs = append(futs, fut)
		}
	}
	ioengine.Join(f.r, futs...)
	return out, nil
}

// ReadAll reads the full dataset payload.
func (f *File) ReadAll(d *Dataset) ([]byte, error) { return f.ReadRows(d, 0, d.Shape[0]) }

// chunkDecoder builds the decompress-and-verify step for chunk c of d,
// shared by the caching read path and the single-pass scan path.
func chunkDecoder(d *Dataset, c Chunk) func(raw []byte) ([]byte, error) {
	return func(raw []byte) ([]byte, error) {
		if int64(len(raw)) < c.StoredSize {
			return nil, fmt.Errorf("hdf5lite: truncated chunk at %d", c.Offset)
		}
		if d.Deflate > 0 {
			fr := flate.NewReader(bytes.NewReader(raw))
			out, err := io.ReadAll(fr)
			if err != nil {
				return nil, err
			}
			raw = out
		}
		if int64(len(raw)) != c.RawSize {
			return nil, fmt.Errorf("hdf5lite: chunk raw size %d, want %d", len(raw), c.RawSize)
		}
		return raw, nil
	}
}

// readChunk fetches and decompresses chunk c through the engine's chunk
// path, so caching/prefetching sources can serve or stage it.
func (f *File) readChunk(d *Dataset, c Chunk) ([]byte, error) {
	return ioengine.ReadChunk(f.r, c.Offset, c.StoredSize, chunkDecoder(d, c))
}

// Source returns the random-access source the file was opened over — the
// handle query adapters use to fork fused-scan work onto the data plane.
func (f *File) Source() ReaderAt { return f.r }

// ScanChunk reads and decompresses the i-th chunk of d through the
// engine's single-pass scan path (cache may serve, never fills on miss).
func (f *File) ScanChunk(d *Dataset, i int) ([]byte, error) {
	if i < 0 || i >= len(d.Chunks) {
		return nil, fmt.Errorf("hdf5lite: %s: chunk %d out of range [0,%d)", d.Name, i, len(d.Chunks))
	}
	c := d.Chunks[i]
	return ioengine.ReadChunkOnce(f.r, c.Offset, c.StoredSize, chunkDecoder(d, c))
}

// AnnounceChunks declares the surviving chunks of a pruned scan so a
// prefetching source stages exactly those.
func (f *File) AnnounceChunks(d *Dataset, chunks []int) {
	plan := make([]ioengine.Range, 0, len(chunks))
	for _, i := range chunks {
		if i < 0 || i >= len(d.Chunks) {
			continue
		}
		plan = append(plan, ioengine.Range{Off: d.Chunks[i].Offset, Len: d.Chunks[i].StoredSize})
	}
	ioengine.Announce(f.r, plan)
}

// Float32s decodes raw little-endian bytes as float32 values.
func Float32s(raw []byte) []float32 {
	out := make([]float32, len(raw)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[i*4:]))
	}
	return out
}

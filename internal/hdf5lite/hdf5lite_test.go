package hdf5lite

import (
	"testing"
	"testing/quick"

	"scidp/internal/netcdf"
)

func sampleFile(t *testing.T) ([]byte, []float32) {
	t.Helper()
	w := NewWriter()
	w.Root().Attrs["title"] = "nested"
	phys := w.Root().EnsureGroup("model/physics")
	phys.Attrs["scheme"] = "GCE"
	vals := make([]float32, 6*4*4)
	for i := range vals {
		vals[i] = float32(i) * 0.5
	}
	if _, err := phys.AddFloat32("QR", []int{6, 4, 4}, 2, 3, vals); err != nil {
		t.Fatal(err)
	}
	dyn := w.Root().EnsureGroup("model/dynamics")
	if _, err := dyn.AddInt32("steps", []int{3}, 0, 0, []int32{10, 20, 30}); err != nil {
		t.Fatal(err)
	}
	blob, err := w.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	return blob, vals
}

func TestIsHDF5(t *testing.T) {
	blob, _ := sampleFile(t)
	if !IsHDF5(netcdf.BytesReader(blob)) {
		t.Fatal("IsHDF5 should accept a valid file")
	}
	if IsHDF5(netcdf.BytesReader([]byte("NCL1 something"))) {
		t.Fatal("IsHDF5 should reject a netCDF file")
	}
}

func TestGroupTreeRoundtrip(t *testing.T) {
	blob, _ := sampleFile(t)
	f, err := Open(netcdf.BytesReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	if f.Root().Attrs["title"] != "nested" {
		t.Fatalf("root attrs = %v", f.Root().Attrs)
	}
	model := f.Root().Child("model")
	if model == nil {
		t.Fatal("missing group model")
	}
	phys := model.Child("physics")
	if phys == nil || phys.Attrs["scheme"] != "GCE" {
		t.Fatalf("physics group wrong: %+v", phys)
	}
	if len(model.Children) != 2 {
		t.Fatalf("model children = %d, want 2", len(model.Children))
	}
	d, err := f.Find("model/physics/QR")
	if err != nil {
		t.Fatal(err)
	}
	if d.Type != Float32 || len(d.Shape) != 3 || d.Shape[0] != 6 {
		t.Fatalf("dataset = %+v", d)
	}
	if len(d.Chunks) != 3 { // 6 rows / 2 per chunk
		t.Fatalf("chunks = %d, want 3", len(d.Chunks))
	}
	if _, err := f.Find("model/nope/QR"); err == nil {
		t.Fatal("missing group path should fail")
	}
	if _, err := f.Find("model/physics/nope"); err == nil {
		t.Fatal("missing dataset should fail")
	}
}

func TestReadAllRoundtrip(t *testing.T) {
	blob, vals := sampleFile(t)
	f, _ := Open(netcdf.BytesReader(blob))
	d, _ := f.Find("model/physics/QR")
	raw, err := f.ReadAll(d)
	if err != nil {
		t.Fatal(err)
	}
	got := Float32s(raw)
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("elem %d = %v, want %v", i, got[i], vals[i])
		}
	}
}

func TestReadRowsPartial(t *testing.T) {
	blob, vals := sampleFile(t)
	f, _ := Open(netcdf.BytesReader(blob))
	d, _ := f.Find("model/physics/QR")
	raw, err := f.ReadRows(d, 3, 2) // crosses the chunk boundary at row 4
	if err != nil {
		t.Fatal(err)
	}
	got := Float32s(raw)
	want := vals[3*16 : 5*16]
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row slab elem %d = %v, want %v", i, got[i], want[i])
		}
	}
	if _, err := f.ReadRows(d, 5, 3); err == nil {
		t.Fatal("out-of-range rows should fail")
	}
}

func TestHeaderOnlyOpen(t *testing.T) {
	blob, _ := sampleFile(t)
	cr := &netcdf.CountingReader{R: netcdf.BytesReader(blob)}
	f, err := Open(cr)
	if err != nil {
		t.Fatal(err)
	}
	if cr.Calls != 2 {
		t.Fatalf("Open used %d reads, want 2", cr.Calls)
	}
	if f.HeaderBytes != cr.BytesRead {
		t.Fatalf("HeaderBytes=%d counted=%d", f.HeaderBytes, cr.BytesRead)
	}
}

func TestInt32Dataset(t *testing.T) {
	blob, _ := sampleFile(t)
	f, _ := Open(netcdf.BytesReader(blob))
	d, err := f.Find("model/dynamics/steps")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := f.ReadAll(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != 12 {
		t.Fatalf("raw len = %d", len(raw))
	}
	if raw[4] != 20 {
		t.Fatalf("steps[1] low byte = %d, want 20", raw[4])
	}
}

func TestWriterValidation(t *testing.T) {
	w := NewWriter()
	g := w.Root()
	if _, err := g.AddFloat32("d", nil, 0, 0, nil); err == nil {
		t.Error("empty shape should fail")
	}
	if _, err := g.AddFloat32("d", []int{2, 0}, 0, 0, nil); err == nil {
		t.Error("zero extent should fail")
	}
	if _, err := g.AddFloat32("d", []int{2}, 0, 0, []float32{1}); err == nil {
		t.Error("short payload should fail")
	}
	if _, err := g.AddFloat32("d", []int{2}, 3, 0, []float32{1, 2}); err == nil {
		t.Error("chunkRows > rows should fail")
	}
	if _, err := g.AddFloat32("d", []int{2}, 0, 0, []float32{1, 2}); err != nil {
		t.Error(err)
	}
	if _, err := g.AddFloat32("d", []int{2}, 0, 0, []float32{1, 2}); err == nil {
		t.Error("duplicate dataset should fail")
	}
}

func TestOpenRejectsCorrupt(t *testing.T) {
	blob, _ := sampleFile(t)
	if _, err := Open(netcdf.BytesReader(blob[:6])); err == nil {
		t.Error("truncated prefix should fail")
	}
	bad := append([]byte(nil), blob...)
	bad[2] = 'X'
	if _, err := Open(netcdf.BytesReader(bad)); err == nil {
		t.Error("bad magic should fail")
	}
}

// TestRowsRoundtripProperty: arbitrary row slabs must equal the same slice
// of the original data for random shapes and chunkings.
func TestRowsRoundtripProperty(t *testing.T) {
	f := func(rows8, cols8, chunk8, start8, count8, defl8 uint8) bool {
		rows := int(rows8)%12 + 1
		cols := int(cols8)%6 + 1
		chunk := int(chunk8) % (rows + 1) // 0 = contiguous
		start := int(start8) % rows
		count := int(count8)%(rows-start) + 1
		vals := make([]float32, rows*cols)
		for i := range vals {
			vals[i] = float32(i * 7 % 13)
		}
		w := NewWriter()
		if _, err := w.Root().AddFloat32("d", []int{rows, cols}, chunk, int(defl8)%3, vals); err != nil {
			return false
		}
		blob, err := w.Bytes()
		if err != nil {
			return false
		}
		file, err := Open(netcdf.BytesReader(blob))
		if err != nil {
			return false
		}
		d, err := file.Find("d")
		if err != nil {
			return false
		}
		raw, err := file.ReadRows(d, start, count)
		if err != nil {
			return false
		}
		got := Float32s(raw)
		for i := 0; i < count*cols; i++ {
			if got[i] != vals[start*cols+i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

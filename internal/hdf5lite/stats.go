package hdf5lite

import (
	"encoding/binary"
	"math"
)

// zoneMapTag marks the optional per-chunk statistics trailer appended to
// the header after the encoded group tree. The tree decoder never looks
// past the root group, so tagged files open under pre-zone-map readers
// and untagged (legacy) files open here with Stats left nil.
const zoneMapTag uint32 = 0x50414D5A // "ZMAP" little-endian

// ChunkStats is the write-time zone map of one stored chunk. Min/Max
// cover the non-fill elements; Count is the total element count; Fill
// counts fill elements (NaN for floating-point datasets — Int32 datasets
// have no fill representation, so Fill is 0).
type ChunkStats struct {
	// Min is the smallest non-fill value (+Inf when the chunk is all fill).
	Min float64
	// Max is the largest non-fill value (-Inf when the chunk is all fill).
	Max float64
	// Count is the total number of elements in the chunk.
	Count int64
	// Fill is the number of fill (NaN) elements.
	Fill int64
}

// AllFill reports whether the chunk holds no real values.
func (s ChunkStats) AllFill() bool { return s.Count == s.Fill }

// Float64At returns element i of a raw little-endian payload as float64.
func Float64At(t Type, raw []byte, i int) float64 {
	switch t {
	case Float32:
		return float64(math.Float32frombits(binary.LittleEndian.Uint32(raw[i*4:])))
	case Float64:
		return math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
	case Int32:
		return float64(int32(binary.LittleEndian.Uint32(raw[i*4:])))
	}
	panic("hdf5lite: unknown type")
}

// computeChunkStats summarizes one raw (decompressed) chunk payload.
func computeChunkStats(t Type, raw []byte) ChunkStats {
	n := len(raw) / t.Size()
	st := ChunkStats{Min: math.Inf(1), Max: math.Inf(-1), Count: int64(n)}
	for i := 0; i < n; i++ {
		v := Float64At(t, raw, i)
		if v != v { // NaN is the fill value
			st.Fill++
			continue
		}
		st.Min = min(st.Min, v)
		st.Max = max(st.Max, v)
	}
	return st
}

// datasetsDF lists every dataset under g in depth-first encoding order —
// the order the statistics trailer uses.
func datasetsDF(g *Group) []*Dataset {
	out := append([]*Dataset(nil), g.Datasets...)
	for _, c := range g.Children {
		out = append(out, datasetsDF(c)...)
	}
	return out
}

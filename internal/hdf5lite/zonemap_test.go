package hdf5lite

import (
	"math"
	"math/rand"
	"testing"

	"scidp/internal/netcdf"
)

// TestChunkStatsProperty checks each dataset chunk's recorded zone map
// against brute-force recomputation, including NaN handling and an
// all-NaN chunk, across both typed datasets in a nested group tree.
func TestChunkStatsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const rows, cols = 9, 5 // chunkRows=4 -> partial final chunk
	fvals := make([]float32, rows*cols)
	for i := range fvals {
		fvals[i] = float32(rng.NormFloat64() * 3)
		if rng.Intn(6) == 0 {
			fvals[i] = float32(math.NaN())
		}
	}
	// Rows 4..7 form the middle chunk; make it all fill.
	for i := 4 * cols; i < 8*cols; i++ {
		fvals[i] = float32(math.NaN())
	}
	ivals := make([]int32, rows*cols)
	for i := range ivals {
		ivals[i] = int32(rng.Intn(2000) - 1000)
	}

	w := NewWriter()
	g := w.Root().EnsureGroup("model/physics")
	if _, err := g.AddFloat32("QR", []int{rows, cols}, 4, 2, fvals); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddInt32("steps", []int{rows, cols}, 4, 0, ivals); err != nil {
		t.Fatal(err)
	}
	blob, err := w.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	f, err := Open(netcdf.BytesReader(blob))
	if err != nil {
		t.Fatal(err)
	}

	check := func(path string, at func(i int) float64) {
		d, err := f.Find(path)
		if err != nil {
			t.Fatal(err)
		}
		for ci, c := range d.Chunks {
			if c.Stats == nil {
				t.Fatalf("%s chunk %d: no stats", path, ci)
			}
			want := ChunkStats{Min: math.Inf(1), Max: math.Inf(-1)}
			for i := c.RowStart * cols; i < (c.RowStart+c.Rows)*cols; i++ {
				want.Count++
				v := at(i)
				if math.IsNaN(v) {
					want.Fill++
				} else {
					want.Min = math.Min(want.Min, v)
					want.Max = math.Max(want.Max, v)
				}
			}
			if *c.Stats != want {
				t.Fatalf("%s chunk %d: stats %+v, brute force %+v", path, ci, *c.Stats, want)
			}
		}
	}
	check("model/physics/QR", func(i int) float64 { return float64(fvals[i]) })
	check("model/physics/steps", func(i int) float64 { return float64(ivals[i]) })

	// The deliberately all-NaN chunk must carry the empty interval.
	d, _ := f.Find("model/physics/QR")
	mid := d.Chunks[1]
	if !mid.Stats.AllFill() || !math.IsInf(mid.Stats.Min, 1) || !math.IsInf(mid.Stats.Max, -1) {
		t.Fatalf("all-fill chunk stats %+v", *mid.Stats)
	}
}

// TestLegacyFileWithoutStats checks the compatibility path: a writer with
// stats disabled yields the old layout, which still opens and reads, with
// nil Stats on every chunk.
func TestLegacyFileWithoutStats(t *testing.T) {
	build := func(noStats bool) []byte {
		w := NewWriter()
		if noStats {
			w.DisableChunkStats()
		}
		g := w.Root().EnsureGroup("m")
		if _, err := g.AddFloat32("v", []int{6, 2}, 2, 1, []float32{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}); err != nil {
			t.Fatal(err)
		}
		blob, err := w.Bytes()
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}
	legacy := build(true)
	tagged := build(false)
	if len(legacy) >= len(tagged) {
		t.Fatal("stats section should add bytes")
	}
	f, err := Open(netcdf.BytesReader(legacy))
	if err != nil {
		t.Fatalf("legacy open: %v", err)
	}
	d, err := f.Find("m/v")
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range d.Chunks {
		if c.Stats != nil {
			t.Fatal("legacy chunks should have nil Stats")
		}
	}
	raw, err := f.ReadAll(d)
	if err != nil {
		t.Fatal(err)
	}
	got := Float32s(raw)
	if got[0] != 1 || got[11] != 12 {
		t.Fatalf("legacy data mismatch: %v", got)
	}

	f2, err := Open(netcdf.BytesReader(tagged))
	if err != nil {
		t.Fatal(err)
	}
	d2, _ := f2.Find("m/v")
	if st := d2.Chunks[0].Stats; st == nil || st.Min != 1 || st.Max != 4 || st.Count != 4 || st.Fill != 0 {
		t.Fatalf("tagged stats wrong: %+v", st)
	}
}

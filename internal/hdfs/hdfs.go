// Package hdfs implements a Hadoop Distributed File System substrate: a
// NameNode holding the namespace and block map, DataNodes co-located with
// the big-data cluster's compute nodes, fixed-size blocks with replication,
// and locality-aware reads (a task reading a block that has a replica on
// its own node pays local-disk cost only; otherwise the bytes cross the
// cluster fabric).
//
// Two extensions carry SciDP (Section III of the paper):
//
//   - Virtual inodes and dummy blocks. A virtual file's blocks hold no
//     bytes and no replica locations — only a Size and an opaque Source
//     payload that SciDP's Data Mapper fills with the PFS file segment or
//     netCDF hyperslab the block stands for. The MapReduce layer schedules
//     over them exactly like real blocks (the paper: "The dummy HDFS block
//     works as a placeholder").
//
//   - A pluggable placement cursor, so tests can pin block layouts.
//
// Bytes of real blocks are stored once and shared by replicas; replication
// affects placement, fault surface, and write cost, not storage in this
// simulation.
package hdfs

import (
	"fmt"
	"hash/crc32"
	"slices"
	"strings"

	"scidp/internal/cluster"
	"scidp/internal/fault"
	"scidp/internal/ioengine"
	"scidp/internal/obs"
	"scidp/internal/sim"
)

// Config sizes the file system. DefaultConfig matches the paper's
// deployment: 128 MB blocks (Cloudera default) and replication 1 (as the
// paper sets for its experiments).
type Config struct {
	// BlockSize is the split size for real files, bytes.
	BlockSize int64
	// Replication is the number of replicas per real block.
	Replication int
	// NNOpsPerSec bounds NameNode RPC throughput.
	NNOpsPerSec float64
	// NNLatency is one NameNode RPC round trip, seconds.
	NNLatency float64
}

// DefaultConfig returns the paper's HDFS settings.
func DefaultConfig() Config {
	return Config{BlockSize: 128 << 20, Replication: 1, NNOpsPerSec: 50000, NNLatency: 0.0005}
}

// Block is one unit of a file. Real blocks carry bytes and replica
// locations; virtual (dummy) blocks carry a Source payload instead.
type Block struct {
	// ID is the cluster-unique block id.
	ID int64
	// Size is the block length in bytes (for virtual blocks, the length
	// the mapper advertises to the scheduler).
	Size int64
	// Replicas lists the DataNodes holding the block; empty for virtual
	// blocks.
	Replicas []*DataNode
	// Virtual marks a dummy block whose bytes live on the PFS.
	Virtual bool
	// Source is the opaque mapping payload of a virtual block (a PFS
	// segment or hyperslab reference installed by SciDP's Data Mapper).
	Source any

	data []byte
}

// Data returns a real block's bytes (nil for virtual blocks). The slice is
// shared; callers must not mutate it.
func (b *Block) Data() []byte { return b.data }

// INode is a file or directory in the namespace.
type INode struct {
	// Path is the absolute HDFS path.
	Path string
	// Dir marks directories.
	Dir bool
	// Blocks are the file's blocks in order; nil for directories.
	Blocks []*Block
	// Virtual marks files consisting of dummy blocks.
	Virtual bool
}

// Size returns the file length (sum of block sizes).
func (n *INode) Size() int64 {
	var s int64
	for _, b := range n.Blocks {
		s += b.Size
	}
	return s
}

// DataNode is the storage daemon on one cluster node.
type DataNode struct {
	// Node is the machine the daemon runs on.
	Node *cluster.Node
	// Used is the total bytes of real blocks stored here.
	Used int64
	// BlockCount is the number of real block replicas stored here.
	BlockCount int

	// down marks a crashed/decommissioned daemon: replica selection and
	// placement skip it until it comes back.
	down bool
}

// Down reports whether the daemon is crashed/decommissioned.
func (dn *DataNode) Down() bool { return dn.down }

// FS is one HDFS instance over a cluster.
type FS struct {
	k       *sim.Kernel
	cfg     Config
	cluster *cluster.Cluster
	dns     []*DataNode
	byNode  map[*cluster.Node]*DataNode
	nn      *sim.Resource
	inodes  map[string]*INode
	nextID  int64
	cursor  int

	// baseNNLatency is the healthy RPC round trip; latency spikes scale
	// from it.
	baseNNLatency float64
	// readFault, when installed, is consulted once per block-replica
	// read — the chaos injector's flaky-read hook.
	readFault func(blockID, bytes int64) fault.Outcome

	obs             *obs.Registry
	nnOps           *obs.Counter
	localReads      *obs.Counter
	remoteReads     *obs.Counter
	localReadBytes  *obs.Counter
	remoteReadBytes *obs.Counter
	writeBytes      *obs.Counter
	pipelineHops    *obs.Counter
	failovers       *obs.Counter
}

// SetObs attaches an observability registry: NameNode op counts,
// local-versus-remote block read counts and bytes, write bytes, and
// replication-pipeline hop counts. Detached (the default), every site
// costs one nil check.
func (fs *FS) SetObs(r *obs.Registry) {
	fs.obs = r
	fs.nnOps = r.Counter("hdfs/namenode_ops_total")
	fs.localReads = r.Counter("hdfs/block_reads_total", obs.L("locality", "local"))
	fs.remoteReads = r.Counter("hdfs/block_reads_total", obs.L("locality", "remote"))
	fs.localReadBytes = r.Counter("hdfs/read_bytes_total", obs.L("locality", "local"))
	fs.remoteReadBytes = r.Counter("hdfs/read_bytes_total", obs.L("locality", "remote"))
	fs.writeBytes = r.Counter("hdfs/write_bytes_total")
	fs.pipelineHops = r.Counter("hdfs/replication_hops_total")
	fs.failovers = r.Counter("hdfs/replica_failovers_total")
}

// New builds an HDFS whose DataNodes are every node of cl.
func New(k *sim.Kernel, cl *cluster.Cluster, cfg Config) *FS {
	if cfg.BlockSize <= 0 {
		panic("hdfs: block size must be positive")
	}
	if cfg.Replication <= 0 {
		cfg.Replication = 1
	}
	fs := &FS{
		k:       k,
		cfg:     cfg,
		cluster: cl,
		byNode:  make(map[*cluster.Node]*DataNode),
		inodes:  map[string]*INode{"/": {Path: "/", Dir: true}},
	}
	fs.nn = sim.NewResource("hdfs/namenode", cfg.NNOpsPerSec)
	fs.nn.Latency = cfg.NNLatency
	fs.baseNNLatency = cfg.NNLatency
	for _, n := range cl.Nodes {
		dn := &DataNode{Node: n}
		fs.dns = append(fs.dns, dn)
		fs.byNode[n] = dn
	}
	return fs
}

// ---- Fault state (flipped by the chaos injector from kernel events).

// SetDataNodeDown crashes (or revives) the i-th DataNode: replica
// selection fails over around it and placement skips it.
func (fs *FS) SetDataNodeDown(i int, down bool) {
	fs.dns[i].down = down
	if fs.obs != nil {
		v := 0.0
		if down {
			v = 1
		}
		fs.obs.Gauge("hdfs/datanode_down", obs.L("node", fs.dns[i].Node.Name)).Set(v)
	}
}

// SetNNLatencyFactor multiplies the NameNode RPC round trip (an op
// latency spike); factor <= 1 restores the configured value.
func (fs *FS) SetNNLatencyFactor(factor float64) {
	if factor <= 1 {
		fs.nn.Latency = fs.baseNNLatency
		return
	}
	fs.nn.Latency = fs.baseNNLatency * factor
}

// SetReadFault installs (or removes, with nil) the per-read fault hook.
func (fs *FS) SetReadFault(fn func(blockID, bytes int64) fault.Outcome) {
	fs.readFault = fn
}

// Config returns the configuration the FS was built with.
func (fs *FS) Config() Config { return fs.cfg }

// Cluster returns the backing cluster.
func (fs *FS) Cluster() *cluster.Cluster { return fs.cluster }

// DataNodes returns the storage daemons in node order.
func (fs *FS) DataNodes() []*DataNode { return fs.dns }

// nnOp charges one NameNode RPC.
func (fs *FS) nnOp(p *sim.Proc) {
	fs.nnOps.Inc()
	p.Transfer(1, fs.nn)
}

// readReplica charges the transfer for reading `bytes` of block b from
// reader's best LIVE replica — the local disk when a live replica lives
// on the reader's node, otherwise the fabric from the first live replica
// — and accounts the read in the locality counters. Replica selection
// routes through DataNode health: dead replicas are skipped (each skip
// that forces a different source counts as a failover), and a block
// whose replicas are all down returns a transient error for the task
// layer to retry. The corrupt return asks the caller to checksum the
// bytes it hands out (an injected corrupt read).
func (fs *FS) readReplica(p *sim.Proc, reader *cluster.Node, b *Block, bytes float64) (corrupt bool, err error) {
	var src *DataNode
	local := false
	for _, dn := range b.Replicas {
		if dn.Node == reader && !dn.down {
			src, local = dn, true
			break
		}
	}
	if src == nil {
		for _, dn := range b.Replicas {
			if !dn.down {
				src = dn
				break
			}
		}
	}
	if src == nil {
		if fs.obs != nil {
			fs.obs.Counter("hdfs/read_faults_total", obs.L("kind", "no-live-replica")).Inc()
		}
		return false, fault.Transient("dn-down", "hdfs: block %d: all %d replica(s) on dead DataNodes", b.ID, len(b.Replicas))
	}
	// A failover is any read that had to pass over a dead replica it
	// would otherwise have used: the preferred (first) replica, or a
	// local one.
	failover := b.Replicas[0].down
	for _, dn := range b.Replicas {
		if dn.Node == reader && dn.down {
			failover = true
		}
	}
	if failover {
		fs.failovers.Inc()
	}
	if fs.readFault != nil {
		switch fs.readFault(b.ID, int64(bytes)) {
		case fault.Fail:
			if fs.obs != nil {
				fs.obs.Counter("hdfs/read_faults_total", obs.L("kind", "flaky-read")).Inc()
			}
			return false, fault.Transient("flaky-read", "hdfs: block %d: transient read error from %s", b.ID, src.Node.Name)
		case fault.Corrupt:
			corrupt = true
		}
	}
	if local {
		fs.localReads.Inc()
		fs.localReadBytes.Add(bytes)
		p.Transfer(bytes, cluster.LocalReadPath(src.Node)...)
	} else {
		fs.remoteReads.Inc()
		fs.remoteReadBytes.Add(bytes)
		p.Transfer(bytes, fs.cluster.RemoteReadPath(src.Node, reader)...)
	}
	return corrupt, nil
}

// checksumCopy models a corrupt-on-the-wire read of data: the returned
// copy is damaged, the block checksum detects it, and a transient error
// surfaces instead of bad bytes. The copy + double crc32 is pure byte
// work and runs on the data plane; the fault counter and the error stay
// on the kernel thread so injection accounting remains deterministic.
func (fs *FS) checksumCopy(p *sim.Proc, b *Block, data []byte) error {
	var mismatch bool
	p.Await(p.Compute(func() {
		out := append([]byte(nil), data...)
		if len(out) > 0 {
			out[len(out)/2] ^= 0xFF
		}
		mismatch = crc32.ChecksumIEEE(out) != crc32.ChecksumIEEE(data)
	}))
	if mismatch {
		if fs.obs != nil {
			fs.obs.Counter("hdfs/read_faults_total", obs.L("kind", "corrupt")).Inc()
		}
		return fault.Transient("corrupt", "hdfs: block %d: checksum mismatch", b.ID)
	}
	return nil
}

// mkdirAll creates path and its ancestors as directories (no time charge;
// callers charge RPCs).
func (fs *FS) mkdirAll(path string) error {
	path = clean(path)
	if n, ok := fs.inodes[path]; ok {
		if !n.Dir {
			return fmt.Errorf("hdfs: mkdir %s: file exists", path)
		}
		return nil
	}
	parts := strings.Split(strings.TrimPrefix(path, "/"), "/")
	cur := ""
	for _, part := range parts {
		cur += "/" + part
		if n, ok := fs.inodes[cur]; ok {
			if !n.Dir {
				return fmt.Errorf("hdfs: mkdir %s: %s is a file", path, cur)
			}
			continue
		}
		fs.inodes[cur] = &INode{Path: cur, Dir: true}
	}
	return nil
}

func clean(p string) string {
	if p == "" || p == "/" {
		return "/"
	}
	return "/" + strings.Trim(p, "/")
}

func parent(p string) string {
	i := strings.LastIndex(p, "/")
	if i <= 0 {
		return "/"
	}
	return p[:i]
}

// placeReplicas picks Replication distinct LIVE DataNodes, preferring
// the writer's own node for the first replica (standard HDFS policy).
// Dead daemons are skipped; fewer replicas than configured come back
// when not enough daemons are alive (nil when none are).
func (fs *FS) placeReplicas(writer *cluster.Node) []*DataNode {
	reps := make([]*DataNode, 0, fs.cfg.Replication)
	seen := map[*DataNode]bool{}
	live := 0
	for _, dn := range fs.dns {
		if !dn.down {
			live++
		}
	}
	if dn, ok := fs.byNode[writer]; ok && !dn.down {
		reps = append(reps, dn)
		seen[dn] = true
	}
	for len(reps) < fs.cfg.Replication && len(reps) < live {
		dn := fs.dns[fs.cursor%len(fs.dns)]
		fs.cursor++
		if !seen[dn] && !dn.down {
			reps = append(reps, dn)
			seen[dn] = true
		}
	}
	return reps
}

// Mkdir creates a directory (and parents), charging one NameNode RPC.
func (fs *FS) Mkdir(p *sim.Proc, path string) error {
	fs.nnOp(p)
	return fs.mkdirAll(path)
}

// WriteFile stores data as a new real file written by client, charging a
// NameNode RPC per block plus the replication pipeline transfers. The
// first replica lands on the client's node when the client is a DataNode.
func (fs *FS) WriteFile(p *sim.Proc, client *cluster.Node, path string, data []byte) error {
	path = clean(path)
	if _, exists := fs.inodes[path]; exists {
		return fmt.Errorf("hdfs: create %s: file exists", path)
	}
	if err := fs.mkdirAll(parent(path)); err != nil {
		return err
	}
	fs.nnOp(p)
	node := &INode{Path: path}
	if len(data) == 0 {
		fs.inodes[path] = node
		return nil
	}
	for off := int64(0); off < int64(len(data)); off += fs.cfg.BlockSize {
		end := off + fs.cfg.BlockSize
		if end > int64(len(data)) {
			end = int64(len(data))
		}
		chunk := data[off:end]
		fs.nnOp(p)
		reps := fs.placeReplicas(client)
		if len(reps) == 0 {
			return fault.Transient("dn-down", "hdfs: create %s: no live DataNodes", path)
		}
		fs.nextID++
		b := &Block{ID: fs.nextID, Size: int64(len(chunk)), Replicas: reps}
		b.data = append([]byte(nil), chunk...)
		// Replication pipeline: client -> r1 -> r2 -> ... Each hop is a
		// leg of the parallel transfer (pipelining overlaps hops).
		var parts []sim.Part
		prev := client
		for _, dn := range reps {
			var chain []*sim.Resource
			if dn.Node != prev {
				chain = append(chain, fs.cluster.NetPath(prev, dn.Node)...)
			}
			chain = append(chain, dn.Node.Disk)
			parts = append(parts, sim.Part{Bytes: float64(len(chunk)), Res: chain})
			dn.Used += int64(len(chunk))
			dn.BlockCount++
			prev = dn.Node
		}
		fs.writeBytes.Add(float64(len(chunk)))
		fs.pipelineHops.Add(float64(len(parts)))
		p.TransferAll(parts...)
		node.Blocks = append(node.Blocks, b)
	}
	fs.inodes[path] = node
	return nil
}

// Put installs a real file instantly (no virtual time) with round-robin
// replica placement — the workload-setup back door, mirroring pfs.Put.
func (fs *FS) Put(path string, data []byte) (*INode, error) {
	path = clean(path)
	if _, exists := fs.inodes[path]; exists {
		return nil, fmt.Errorf("hdfs: put %s: file exists", path)
	}
	if err := fs.mkdirAll(parent(path)); err != nil {
		return nil, err
	}
	node := &INode{Path: path}
	for off := int64(0); off < int64(len(data)); off += fs.cfg.BlockSize {
		end := off + fs.cfg.BlockSize
		if end > int64(len(data)) {
			end = int64(len(data))
		}
		chunk := data[off:end]
		reps := fs.placeReplicas(nil)
		if len(reps) == 0 {
			return nil, fault.Transient("dn-down", "hdfs: put %s: no live DataNodes", path)
		}
		fs.nextID++
		b := &Block{ID: fs.nextID, Size: int64(len(chunk)), Replicas: reps}
		b.data = append([]byte(nil), chunk...)
		for _, dn := range reps {
			dn.Used += b.Size
			dn.BlockCount++
		}
		node.Blocks = append(node.Blocks, b)
	}
	fs.inodes[path] = node
	return node, nil
}

// VirtualBlockSpec describes one dummy block of a virtual file.
type VirtualBlockSpec struct {
	// Size is the advertised block length in bytes.
	Size int64
	// Source is the opaque PFS mapping payload.
	Source any
}

// CreateVirtualFile installs a virtual inode whose dummy blocks map to PFS
// data. Only NameNode metadata is touched: no bytes move (the core of
// SciDP's Data Mapper). One RPC is charged for the file plus one per 100
// blocks of mapping-table upload.
func (fs *FS) CreateVirtualFile(p *sim.Proc, path string, blocks []VirtualBlockSpec) (*INode, error) {
	path = clean(path)
	if _, exists := fs.inodes[path]; exists {
		return nil, fmt.Errorf("hdfs: create %s: file exists", path)
	}
	if err := fs.mkdirAll(parent(path)); err != nil {
		return nil, err
	}
	fs.nnOp(p)
	for i := 0; i < len(blocks); i += 100 {
		fs.nnOp(p)
	}
	node := &INode{Path: path, Virtual: true}
	for _, spec := range blocks {
		fs.nextID++
		node.Blocks = append(node.Blocks, &Block{
			ID:      fs.nextID,
			Size:    spec.Size,
			Virtual: true,
			Source:  spec.Source,
		})
	}
	fs.inodes[path] = node
	return node, nil
}

// Stat returns the inode after one NameNode RPC.
func (fs *FS) Stat(p *sim.Proc, path string) (*INode, error) {
	fs.nnOp(p)
	return fs.Lookup(path)
}

// Lookup returns the inode without charging time, or an error.
func (fs *FS) Lookup(path string) (*INode, error) {
	n, ok := fs.inodes[clean(path)]
	if !ok {
		return nil, fmt.Errorf("hdfs: %s: no such file or directory", path)
	}
	return n, nil
}

// Exists reports whether path names an inode (no time charge).
func (fs *FS) Exists(path string) bool {
	_, ok := fs.inodes[clean(path)]
	return ok
}

// List returns the sorted inodes directly under dir after one RPC.
func (fs *FS) List(p *sim.Proc, dir string) ([]*INode, error) {
	fs.nnOp(p)
	dir = clean(dir)
	n, ok := fs.inodes[dir]
	if !ok {
		return nil, fmt.Errorf("hdfs: %s: no such directory", dir)
	}
	if !n.Dir {
		return []*INode{n}, nil
	}
	prefix := dir
	if prefix != "/" {
		prefix += "/"
	} else {
		prefix = "/"
	}
	var out []*INode
	for path, in := range fs.inodes {
		if path == dir || !strings.HasPrefix(path, prefix) {
			continue
		}
		if strings.Contains(path[len(prefix):], "/") {
			continue
		}
		out = append(out, in)
	}
	slices.SortFunc(out, func(a, b *INode) int { return strings.Compare(a.Path, b.Path) })
	return out, nil
}

// Walk returns every file inode under dir (recursively), sorted by path,
// after one RPC. Directories themselves are omitted.
func (fs *FS) Walk(p *sim.Proc, dir string) ([]*INode, error) {
	fs.nnOp(p)
	dir = clean(dir)
	prefix := dir
	if prefix != "/" {
		prefix += "/"
	}
	var out []*INode
	for path, in := range fs.inodes {
		if in.Dir {
			continue
		}
		if path == dir || strings.HasPrefix(path, prefix) {
			out = append(out, in)
		}
	}
	slices.SortFunc(out, func(a, b *INode) int { return strings.Compare(a.Path, b.Path) })
	return out, nil
}

// Remove deletes a file or empty directory after one RPC.
func (fs *FS) Remove(p *sim.Proc, path string) error {
	fs.nnOp(p)
	path = clean(path)
	n, ok := fs.inodes[path]
	if !ok {
		return fmt.Errorf("hdfs: remove %s: no such file", path)
	}
	if n.Dir {
		children, _ := fs.List(p, path)
		if len(children) > 0 {
			return fmt.Errorf("hdfs: remove %s: directory not empty", path)
		}
	}
	for _, b := range n.Blocks {
		for _, dn := range b.Replicas {
			dn.Used -= b.Size
			dn.BlockCount--
		}
	}
	delete(fs.inodes, path)
	return nil
}

// ReadBlock reads one real block from the reader's best live replica:
// the local disk when a live replica lives on reader's node, otherwise a
// remote read over the fabric from the first live replica (failing over
// past dead DataNodes). Virtual blocks return an error — the caller
// (SciDP's PFS Reader) must resolve those against the PFS.
func (fs *FS) ReadBlock(p *sim.Proc, reader *cluster.Node, b *Block) ([]byte, error) {
	if b.Virtual {
		return nil, fmt.Errorf("hdfs: block %d is virtual; resolve via its Source", b.ID)
	}
	if len(b.Replicas) == 0 {
		return nil, fmt.Errorf("hdfs: block %d has no replicas", b.ID)
	}
	corrupt, err := fs.readReplica(p, reader, b, float64(b.Size))
	if err != nil {
		return nil, err
	}
	if corrupt {
		if err := fs.checksumCopy(p, b, b.data); err != nil {
			return nil, err
		}
	}
	return b.data, nil
}

// ReadAt reads the byte range [off, off+n) of a real file, touching only
// the blocks that overlap the range — what a netCDF-aware reader
// (SciHadoop) uses to pull just one variable's chunks out of an
// HDFS-resident file. Short reads at EOF return what exists.
func (fs *FS) ReadAt(p *sim.Proc, reader *cluster.Node, path string, off, n int64) ([]byte, error) {
	node, err := fs.Lookup(path)
	if err != nil {
		return nil, err
	}
	if node.Dir {
		return nil, fmt.Errorf("hdfs: read %s: is a directory", path)
	}
	if off < 0 {
		return nil, fmt.Errorf("hdfs: read %s: negative offset", path)
	}
	size := node.Size()
	if off >= size {
		return nil, nil
	}
	if off+n > size {
		n = size - off
	}
	// Decompose the request against each block's extent with the shared
	// range helper; only the intersecting slice of each block transfers.
	want := ioengine.Range{Off: off, Len: n}
	out := make([]byte, 0, n)
	var blockStart int64
	for _, b := range node.Blocks {
		ext := ioengine.Range{Off: blockStart, Len: b.Size}
		blockStart = ext.End()
		piece, ok := want.Intersect(ext)
		if !ok {
			continue
		}
		if b.Virtual {
			return nil, fmt.Errorf("hdfs: block %d is virtual; resolve via its Source", b.ID)
		}
		corrupt, err := fs.readReplica(p, reader, b, float64(piece.Len))
		if err != nil {
			return nil, err
		}
		slice := b.data[piece.Off-ext.Off : piece.End()-ext.Off]
		if corrupt {
			if err := fs.checksumCopy(p, b, slice); err != nil {
				return nil, err
			}
		}
		out = append(out, slice...)
	}
	return out, nil
}

// ReadFile reads every block of a real file in order from reader's
// perspective and returns the concatenated bytes.
func (fs *FS) ReadFile(p *sim.Proc, reader *cluster.Node, path string) ([]byte, error) {
	n, err := fs.Stat(p, path)
	if err != nil {
		return nil, err
	}
	if n.Dir {
		return nil, fmt.Errorf("hdfs: read %s: is a directory", path)
	}
	var out []byte
	for _, b := range n.Blocks {
		data, err := fs.ReadBlock(p, reader, b)
		if err != nil {
			return nil, err
		}
		out = append(out, data...)
	}
	return out, nil
}

// ReadFileRetry is ReadFile with client-side recovery of transient block
// faults — what a DFS client does when a read returns a checksum mismatch
// or a flaky replica: back off (exponentially, starting at backoff
// seconds) and re-read, up to attempts tries. Non-transient errors
// surface immediately.
func (fs *FS) ReadFileRetry(p *sim.Proc, reader *cluster.Node, path string, attempts int, backoff float64) ([]byte, error) {
	if attempts < 1 {
		attempts = 1
	}
	var data []byte
	var err error
	for i := 0; i < attempts; i++ {
		if data, err = fs.ReadFile(p, reader, path); err == nil || !fault.IsTransient(err) {
			return data, err
		}
		p.Sleep(backoff * float64(int64(1)<<i))
	}
	return nil, err
}

// HostsOf returns the node names holding replicas of b (empty for virtual
// blocks) — what the MapReduce scheduler feeds its locality preference.
func HostsOf(b *Block) []string {
	hosts := make([]string, 0, len(b.Replicas))
	for _, dn := range b.Replicas {
		hosts = append(hosts, dn.Node.Name)
	}
	return hosts
}

// TotalUsed returns the bytes stored across all DataNodes.
func (fs *FS) TotalUsed() int64 {
	var t int64
	for _, dn := range fs.dns {
		t += dn.Used
	}
	return t
}

package hdfs

import (
	"bytes"
	"fmt"
	"testing"

	"scidp/internal/cluster"
	"scidp/internal/fault"
	"scidp/internal/obs"
	"scidp/internal/sim"
)

func testCluster(k *sim.Kernel, nodes int) *cluster.Cluster {
	cfg := cluster.Config{
		Nodes: nodes, SlotsPerNode: 2,
		DiskBW: 100, NICBW: 1000, FabricBW: 1000,
	}
	return cluster.New(k, "bd", cfg)
}

func testConfig() Config {
	return Config{BlockSize: 128, Replication: 1, NNOpsPerSec: 1e9}
}

func run(k *sim.Kernel, fn func(p *sim.Proc)) {
	k.Go("test", fn)
	k.Run()
}

func TestWriteReadRoundtrip(t *testing.T) {
	k := sim.NewKernel()
	cl := testCluster(k, 4)
	fs := New(k, cl, testConfig())
	data := make([]byte, 300)
	for i := range data {
		data[i] = byte(i)
	}
	run(k, func(p *sim.Proc) {
		if err := fs.WriteFile(p, cl.Node(0), "/d/f", data); err != nil {
			t.Fatal(err)
		}
		got, err := fs.ReadFile(p, cl.Node(1), "/d/f")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("roundtrip mismatch")
		}
	})
}

func TestBlockSplitting(t *testing.T) {
	k := sim.NewKernel()
	cl := testCluster(k, 4)
	fs := New(k, cl, testConfig())
	run(k, func(p *sim.Proc) {
		fs.WriteFile(p, cl.Node(0), "/f", make([]byte, 300))
		n, _ := fs.Lookup("/f")
		if len(n.Blocks) != 3 {
			t.Fatalf("blocks = %d, want 3 (128+128+44)", len(n.Blocks))
		}
		if n.Blocks[0].Size != 128 || n.Blocks[2].Size != 44 {
			t.Fatalf("block sizes = %d,%d,%d", n.Blocks[0].Size, n.Blocks[1].Size, n.Blocks[2].Size)
		}
		if n.Size() != 300 {
			t.Fatalf("Size = %d", n.Size())
		}
	})
}

func TestFirstReplicaLocal(t *testing.T) {
	k := sim.NewKernel()
	cl := testCluster(k, 4)
	fs := New(k, cl, testConfig())
	run(k, func(p *sim.Proc) {
		fs.WriteFile(p, cl.Node(2), "/f", make([]byte, 100))
		n, _ := fs.Lookup("/f")
		if n.Blocks[0].Replicas[0].Node != cl.Node(2) {
			t.Fatal("first replica should land on the writer's node")
		}
	})
}

func TestReplicationPlacesDistinctNodes(t *testing.T) {
	k := sim.NewKernel()
	cl := testCluster(k, 4)
	cfg := testConfig()
	cfg.Replication = 3
	fs := New(k, cl, cfg)
	run(k, func(p *sim.Proc) {
		fs.WriteFile(p, cl.Node(0), "/f", make([]byte, 100))
		n, _ := fs.Lookup("/f")
		reps := n.Blocks[0].Replicas
		if len(reps) != 3 {
			t.Fatalf("replicas = %d, want 3", len(reps))
		}
		seen := map[*DataNode]bool{}
		for _, r := range reps {
			if seen[r] {
				t.Fatal("duplicate replica node")
			}
			seen[r] = true
		}
	})
}

func TestLocalReadFasterThanRemote(t *testing.T) {
	elapsed := func(reader int) float64 {
		k := sim.NewKernel()
		// NIC slower than disk so the remote path's extra hops bite.
		cl := cluster.New(k, "bd", cluster.Config{
			Nodes: 4, SlotsPerNode: 2,
			DiskBW: 100, NICBW: 50, FabricBW: 1000,
		})
		fs := New(k, cl, testConfig())
		var out float64
		run(k, func(p *sim.Proc) {
			fs.WriteFile(p, cl.Node(0), "/f", make([]byte, 128))
			start := p.Now()
			fs.ReadFile(p, cl.Node(reader), "/f")
			out = p.Now() - start
		})
		return out
	}
	local, remote := elapsed(0), elapsed(1)
	if local <= 0 || remote <= local {
		t.Fatalf("local %v should beat remote %v", local, remote)
	}
}

func TestVirtualFile(t *testing.T) {
	k := sim.NewKernel()
	cl := testCluster(k, 4)
	fs := New(k, cl, testConfig())
	type src struct{ path string }
	run(k, func(p *sim.Proc) {
		specs := []VirtualBlockSpec{
			{Size: 1000, Source: src{"/pfs/a.nc#chunk0"}},
			{Size: 500, Source: src{"/pfs/a.nc#chunk1"}},
		}
		n, err := fs.CreateVirtualFile(p, "/mirror/a.nc/var", specs)
		if err != nil {
			t.Fatal(err)
		}
		if !n.Virtual || n.Size() != 1500 {
			t.Fatalf("virtual=%v size=%d", n.Virtual, n.Size())
		}
		if !fs.Exists("/mirror/a.nc") {
			t.Fatal("parent directories should be created")
		}
		if _, err := fs.ReadBlock(p, cl.Node(0), n.Blocks[0]); err == nil {
			t.Fatal("reading a virtual block via HDFS should fail")
		}
		if got := n.Blocks[1].Source.(src).path; got != "/pfs/a.nc#chunk1" {
			t.Fatalf("source payload = %q", got)
		}
		if fs.TotalUsed() != 0 {
			t.Fatalf("virtual files must store no bytes, used=%d", fs.TotalUsed())
		}
	})
}

func TestVirtualFileCostsOnlyMetadata(t *testing.T) {
	// Creating a virtual mirror of a large file must be metadata-cheap:
	// orders of magnitude faster than writing the same bytes.
	k := sim.NewKernel()
	cl := testCluster(k, 4)
	cfg := testConfig()
	cfg.NNOpsPerSec = 1000
	fs := New(k, cl, cfg)
	var virtualT, writeT float64
	run(k, func(p *sim.Proc) {
		start := p.Now()
		specs := make([]VirtualBlockSpec, 100)
		for i := range specs {
			specs[i] = VirtualBlockSpec{Size: 128}
		}
		fs.CreateVirtualFile(p, "/v", specs)
		virtualT = p.Now() - start
		start = p.Now()
		fs.WriteFile(p, cl.Node(0), "/w", make([]byte, 100*128))
		writeT = p.Now() - start
	})
	if virtualT*10 > writeT {
		t.Fatalf("virtual create %v not much cheaper than write %v", virtualT, writeT)
	}
}

func TestListAndWalk(t *testing.T) {
	k := sim.NewKernel()
	cl := testCluster(k, 2)
	fs := New(k, cl, testConfig())
	run(k, func(p *sim.Proc) {
		fs.WriteFile(p, cl.Node(0), "/a/x", []byte("1"))
		fs.WriteFile(p, cl.Node(0), "/a/y", []byte("2"))
		fs.WriteFile(p, cl.Node(0), "/a/sub/z", []byte("3"))
		ls, err := fs.List(p, "/a")
		if err != nil {
			t.Fatal(err)
		}
		if len(ls) != 3 { // x, y, sub
			t.Fatalf("List /a = %d entries, want 3", len(ls))
		}
		files, err := fs.Walk(p, "/a")
		if err != nil {
			t.Fatal(err)
		}
		if len(files) != 3 {
			t.Fatalf("Walk /a = %d files, want 3", len(files))
		}
		for _, f := range files {
			if f.Dir {
				t.Fatal("Walk must omit directories")
			}
		}
	})
}

func TestRemoveAccounting(t *testing.T) {
	k := sim.NewKernel()
	cl := testCluster(k, 2)
	fs := New(k, cl, testConfig())
	run(k, func(p *sim.Proc) {
		fs.WriteFile(p, cl.Node(0), "/f", make([]byte, 256))
		if fs.TotalUsed() != 256 {
			t.Fatalf("used = %d", fs.TotalUsed())
		}
		if err := fs.Remove(p, "/f"); err != nil {
			t.Fatal(err)
		}
		if fs.TotalUsed() != 0 {
			t.Fatalf("used after remove = %d", fs.TotalUsed())
		}
		if fs.Exists("/f") {
			t.Fatal("file still exists")
		}
	})
}

func TestRemoveNonEmptyDirFails(t *testing.T) {
	k := sim.NewKernel()
	cl := testCluster(k, 2)
	fs := New(k, cl, testConfig())
	run(k, func(p *sim.Proc) {
		fs.WriteFile(p, cl.Node(0), "/d/f", []byte("x"))
		if err := fs.Remove(p, "/d"); err == nil {
			t.Fatal("removing non-empty dir should fail")
		}
	})
}

func TestDuplicateCreateFails(t *testing.T) {
	k := sim.NewKernel()
	cl := testCluster(k, 2)
	fs := New(k, cl, testConfig())
	run(k, func(p *sim.Proc) {
		fs.WriteFile(p, cl.Node(0), "/f", []byte("x"))
		if err := fs.WriteFile(p, cl.Node(0), "/f", []byte("y")); err == nil {
			t.Fatal("duplicate create should fail")
		}
		if _, err := fs.CreateVirtualFile(p, "/f", nil); err == nil {
			t.Fatal("virtual create over existing file should fail")
		}
	})
}

func TestMkdirOverFileFails(t *testing.T) {
	k := sim.NewKernel()
	cl := testCluster(k, 2)
	fs := New(k, cl, testConfig())
	run(k, func(p *sim.Proc) {
		fs.WriteFile(p, cl.Node(0), "/f", []byte("x"))
		if err := fs.Mkdir(p, "/f"); err == nil {
			t.Fatal("mkdir over a file should fail")
		}
		if err := fs.WriteFile(p, cl.Node(0), "/f/child", []byte("x")); err == nil {
			t.Fatal("creating a child under a file should fail")
		}
	})
}

func TestEmptyFile(t *testing.T) {
	k := sim.NewKernel()
	cl := testCluster(k, 2)
	fs := New(k, cl, testConfig())
	run(k, func(p *sim.Proc) {
		if err := fs.WriteFile(p, cl.Node(0), "/empty", nil); err != nil {
			t.Fatal(err)
		}
		n, _ := fs.Lookup("/empty")
		if n.Size() != 0 || len(n.Blocks) != 0 {
			t.Fatalf("empty file: size=%d blocks=%d", n.Size(), len(n.Blocks))
		}
		got, err := fs.ReadFile(p, cl.Node(0), "/empty")
		if err != nil || len(got) != 0 {
			t.Fatalf("read empty = %v, %v", got, err)
		}
	})
}

func TestHostsOf(t *testing.T) {
	k := sim.NewKernel()
	cl := testCluster(k, 3)
	cfg := testConfig()
	cfg.Replication = 2
	fs := New(k, cl, cfg)
	run(k, func(p *sim.Proc) {
		fs.WriteFile(p, cl.Node(1), "/f", make([]byte, 10))
		n, _ := fs.Lookup("/f")
		hosts := HostsOf(n.Blocks[0])
		if len(hosts) != 2 || hosts[0] != "bd-1" {
			t.Fatalf("hosts = %v", hosts)
		}
	})
}

func TestManyFilesSpreadAcrossNodes(t *testing.T) {
	k := sim.NewKernel()
	cl := testCluster(k, 4)
	fs := New(k, cl, testConfig())
	// Writer outside the cluster: all replicas placed by cursor.
	outside := &cluster.Node{Name: "edge", Disk: sim.NewResource("edge/disk", 100), NIC: sim.NewResource("edge/nic", 1000)}
	run(k, func(p *sim.Proc) {
		for i := 0; i < 8; i++ {
			fs.WriteFile(p, outside, fmt.Sprintf("/f%d", i), make([]byte, 10))
		}
	})
	for _, dn := range fs.DataNodes() {
		if dn.BlockCount != 2 {
			t.Fatalf("node %s holds %d blocks, want 2 (round-robin)", dn.Node.Name, dn.BlockCount)
		}
	}
}

func TestReadAtRangeAcrossBlocks(t *testing.T) {
	k := sim.NewKernel()
	cl := testCluster(k, 3)
	fs := New(k, cl, testConfig()) // 128-byte blocks
	data := make([]byte, 400)
	for i := range data {
		data[i] = byte(i)
	}
	run(k, func(p *sim.Proc) {
		fs.WriteFile(p, cl.Node(0), "/f", data)
		// Range spanning the block-1/block-2 boundary.
		got, err := fs.ReadAt(p, cl.Node(1), "/f", 120, 20)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data[120:140]) {
			t.Fatal("cross-block range mismatch")
		}
		// Short read at EOF.
		got, err = fs.ReadAt(p, cl.Node(1), "/f", 390, 100)
		if err != nil || len(got) != 10 {
			t.Fatalf("EOF read = %d bytes, %v", len(got), err)
		}
		// Past EOF.
		got, err = fs.ReadAt(p, cl.Node(1), "/f", 500, 10)
		if err != nil || got != nil {
			t.Fatalf("past-EOF = %v, %v", got, err)
		}
		if _, err := fs.ReadAt(p, cl.Node(1), "/f", -1, 10); err == nil {
			t.Fatal("negative offset should fail")
		}
		if _, err := fs.ReadAt(p, cl.Node(1), "/missing", 0, 10); err == nil {
			t.Fatal("missing file should fail")
		}
	})
}

func TestReadAtChargesOnlyTouchedBlocks(t *testing.T) {
	// Reading 10 bytes out of a 3-block file must be much cheaper than
	// reading the whole file — the SciHadoop selective-read property.
	elapsed := func(whole bool) float64 {
		k := sim.NewKernel()
		cl := testCluster(k, 2)
		fs := New(k, cl, testConfig())
		var out float64
		run(k, func(p *sim.Proc) {
			fs.WriteFile(p, cl.Node(0), "/f", make([]byte, 384))
			start := p.Now()
			if whole {
				fs.ReadFile(p, cl.Node(0), "/f")
			} else {
				fs.ReadAt(p, cl.Node(0), "/f", 130, 10)
			}
			out = p.Now() - start
		})
		return out
	}
	whole, partial := elapsed(true), elapsed(false)
	if partial*3 > whole {
		t.Fatalf("partial read (%v) should be far cheaper than whole (%v)", partial, whole)
	}
}

func TestReadAtVirtualBlockFails(t *testing.T) {
	k := sim.NewKernel()
	cl := testCluster(k, 2)
	fs := New(k, cl, testConfig())
	run(k, func(p *sim.Proc) {
		fs.CreateVirtualFile(p, "/v", []VirtualBlockSpec{{Size: 100}})
		if _, err := fs.ReadAt(p, cl.Node(0), "/v", 0, 10); err == nil {
			t.Fatal("reading a virtual block range should fail")
		}
	})
}

func TestPutInstantPlacement(t *testing.T) {
	k := sim.NewKernel()
	cl := testCluster(k, 3)
	fs := New(k, cl, testConfig())
	if _, err := fs.Put("/p", make([]byte, 300)); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Put("/p", nil); err == nil {
		t.Fatal("duplicate Put should fail")
	}
	n, err := fs.Lookup("/p")
	if err != nil || len(n.Blocks) != 3 {
		t.Fatalf("blocks = %v, %v", n, err)
	}
	if fs.TotalUsed() != 300 {
		t.Fatalf("used = %d", fs.TotalUsed())
	}
	if k.Now() != 0 {
		t.Fatal("Put must not advance virtual time")
	}
	run(k, func(p *sim.Proc) {
		got, err := fs.ReadFile(p, cl.Node(0), "/p")
		if err != nil || len(got) != 300 {
			t.Fatalf("read back = %d, %v", len(got), err)
		}
	})
}

func TestReplicaFailoverOnDeadDataNode(t *testing.T) {
	k := sim.NewKernel()
	cl := testCluster(k, 4)
	cfg := testConfig()
	cfg.Replication = 2
	fs := New(k, cl, cfg)
	reg := obs.New()
	fs.SetObs(reg)
	data := make([]byte, 300)
	for i := range data {
		data[i] = byte(i * 7)
	}
	run(k, func(p *sim.Proc) {
		// The writer holds each block's first replica, so killing it
		// forces every remote read through failover.
		if err := fs.WriteFile(p, cl.Node(1), "/f", data); err != nil {
			t.Fatal(err)
		}
		fs.SetDataNodeDown(1, true)
		got, err := fs.ReadFile(p, cl.Node(0), "/f")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("failover read returned wrong bytes")
		}
		// New placements must skip the dead DataNode.
		if err := fs.WriteFile(p, cl.Node(0), "/g", data); err != nil {
			t.Fatal(err)
		}
		n, _ := fs.Lookup("/g")
		for _, b := range n.Blocks {
			if len(b.Replicas) != 2 {
				t.Fatalf("replicas = %d, want 2", len(b.Replicas))
			}
			for _, dn := range b.Replicas {
				if dn.Node == cl.Node(1) {
					t.Fatal("placement used a dead DataNode")
				}
			}
		}
	})
	if v := reg.Counter("hdfs/replica_failovers_total").Value(); v == 0 {
		t.Fatal("expected nonzero replica failovers")
	}
}

func TestAllReplicasDeadIsTransient(t *testing.T) {
	k := sim.NewKernel()
	cl := testCluster(k, 4)
	fs := New(k, cl, testConfig())
	run(k, func(p *sim.Proc) {
		if err := fs.WriteFile(p, cl.Node(1), "/f", make([]byte, 64)); err != nil {
			t.Fatal(err)
		}
		fs.SetDataNodeDown(1, true)
		_, err := fs.ReadFile(p, cl.Node(0), "/f")
		if err == nil {
			t.Fatal("read with no live replica must fail")
		}
		if !fault.IsTransient(err) || fault.KindOf(err) != "dn-down" {
			t.Fatalf("want transient dn-down, got %v", err)
		}
		// Recovery: the daemon comes back and the read succeeds.
		fs.SetDataNodeDown(1, false)
		if _, err := fs.ReadFile(p, cl.Node(0), "/f"); err != nil {
			t.Fatal(err)
		}
	})
}

package ioengine

import (
	"container/list"
	"sync"
)

const cacheShards = 8

// CacheStats is a point-in-time snapshot of a cache's counters.
type CacheStats struct {
	// Hits counts Get calls that found an entry.
	Hits int64
	// Misses counts Get calls that did not.
	Misses int64
	// Evictions counts entries dropped to stay under budget.
	Evictions int64
	// Bytes is the sum of resident entry sizes.
	Bytes int64
	// Entries is the resident entry count.
	Entries int64
}

// HitRate returns Hits / (Hits + Misses), or 0 with no lookups.
func (s CacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Sub returns the delta of s over an earlier snapshot (counters only;
// Bytes and Entries stay absolute).
func (s CacheStats) Sub(prev CacheStats) CacheStats {
	return CacheStats{
		Hits:      s.Hits - prev.Hits,
		Misses:    s.Misses - prev.Misses,
		Evictions: s.Evictions - prev.Evictions,
		Bytes:     s.Bytes,
		Entries:   s.Entries,
	}
}

// Cache is a sharded LRU byte-slice cache with a total byte budget.
// A budget <= 0 means unbounded. Values are shared, not copied: callers
// must treat returned slices as read-only.
//
// Concurrency contract: the cache is safe for concurrent use from any
// goroutine — each shard is guarded by its own mutex, and the counters
// live under the same locks, so Stats is always a coherent snapshot.
// Determinism of the counter *values*, however, is a property of the
// caller: the simulation keeps every Get/Put on the kernel thread, in
// event order (data-plane closures never touch the cache — see the sim
// package's two-plane contract), which is what keeps hit/miss counts
// and the Prometheus export byte-identical run to run. Callers outside
// a kernel get thread safety, not reproducible counter interleavings.
// Both properties are exercised under -race in concurrency_test.go.
type Cache struct {
	shards [cacheShards]cacheShard
}

type cacheShard struct {
	mu      sync.Mutex
	budget  int64
	bytes   int64
	lru     *list.List // front = most recent; values are *cacheEntry
	entries map[string]*list.Element

	hits      int64
	misses    int64
	evictions int64
}

type cacheEntry struct {
	key string
	val []byte
}

// NewCache returns a cache holding at most budget bytes of values
// (<= 0 for unbounded), split evenly across shards.
func NewCache(budget int64) *Cache {
	c := &Cache{}
	per := int64(0)
	if budget > 0 {
		per = budget / cacheShards
		if per == 0 {
			per = 1
		}
	}
	for i := range c.shards {
		c.shards[i].budget = per
		c.shards[i].lru = list.New()
		c.shards[i].entries = map[string]*list.Element{}
	}
	return c
}

// shard routes a key to its shard with an inline FNV-1a (no allocation,
// unlike hash/fnv's heap-allocated state).
func (c *Cache) shard(key string) *cacheShard {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return &c.shards[h%cacheShards]
}

// Get returns the cached value for key, counting a hit or miss and
// refreshing the entry's recency.
func (c *Cache) Get(key string) ([]byte, bool) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[key]
	if !ok {
		s.misses++
		return nil, false
	}
	s.hits++
	s.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// peek is Get without touching the hit/miss counters or recency — used
// by the raw-prefetch staging path so the reported hit rate reflects
// only consumer chunk lookups.
func (c *Cache) peek(key string) ([]byte, bool) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[key]; ok {
		return el.Value.(*cacheEntry).val, true
	}
	return nil, false
}

// contains reports residency without counter or recency effects.
func (c *Cache) contains(key string) bool {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.entries[key]
	return ok
}

// Put inserts or refreshes key, evicting least-recently-used entries in
// its shard as needed. Values larger than the shard budget are not
// cached at all.
func (c *Cache) Put(key string, val []byte) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.budget > 0 && int64(len(val)) > s.budget {
		return
	}
	if el, ok := s.entries[key]; ok {
		e := el.Value.(*cacheEntry)
		s.bytes += int64(len(val)) - int64(len(e.val))
		e.val = val
		s.lru.MoveToFront(el)
	} else {
		s.entries[key] = s.lru.PushFront(&cacheEntry{key: key, val: val})
		s.bytes += int64(len(val))
	}
	for s.budget > 0 && s.bytes > s.budget {
		back := s.lru.Back()
		if back == nil {
			break
		}
		e := back.Value.(*cacheEntry)
		s.lru.Remove(back)
		delete(s.entries, e.key)
		s.bytes -= int64(len(e.val))
		s.evictions++
	}
}

// Stats sums the shard counters.
func (c *Cache) Stats() CacheStats {
	var out CacheStats
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		out.Hits += s.hits
		out.Misses += s.misses
		out.Evictions += s.evictions
		out.Bytes += s.bytes
		out.Entries += int64(len(s.entries))
		s.mu.Unlock()
	}
	return out
}

// CacheSet lazily maintains one Cache per name — the per-node chunk
// caches a job shares across its tasks.
type CacheSet struct {
	mu     sync.Mutex
	budget int64
	caches map[string]*Cache
}

// NewCacheSet returns a set whose caches each hold budgetPerCache bytes
// (<= 0 for unbounded).
func NewCacheSet(budgetPerCache int64) *CacheSet {
	return &CacheSet{budget: budgetPerCache, caches: map[string]*Cache{}}
}

// For returns the cache for name, creating it on first use.
func (cs *CacheSet) For(name string) *Cache {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	c, ok := cs.caches[name]
	if !ok {
		c = NewCache(cs.budget)
		cs.caches[name] = c
	}
	return c
}

// Stats aggregates the counters of every cache in the set.
func (cs *CacheSet) Stats() CacheStats {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	var out CacheStats
	for _, c := range cs.caches {
		s := c.Stats()
		out.Hits += s.Hits
		out.Misses += s.Misses
		out.Evictions += s.Evictions
		out.Bytes += s.Bytes
		out.Entries += s.Entries
	}
	return out
}

package ioengine

import (
	"fmt"
	"sync"
	"testing"

	"scidp/internal/obs"
	"scidp/internal/sim"
)

// These tests pin the package's concurrency contract: Stats, Trace,
// Bound, and the cache counters are mutated only from kernel context —
// chunk decodes offload to the data plane, but every cache Get/Put and
// counter increment stays on the kernel thread in event order — so the
// totals are race-free and deterministic at any worker count. The Cache
// itself is additionally safe for arbitrary concurrent use (per-shard
// mutexes); TestCacheConcurrentAccess hammers that from real
// goroutines. `make race` runs this package under the race detector; a
// contract violation shows up here as a detected race or as a counter
// divergence between runs.

// contendedRun drives many processes through one shared Trace, Cache,
// and prefetching Bound on a single kernel, and returns the final
// counter values. workers < 0 runs without a data plane; otherwise a
// pool of that size decodes the chunks.
func contendedRun(procs, chunks, workers int) (Trace, CacheStats, float64, float64) {
	k := sim.NewKernel()
	if workers >= 0 {
		pool := sim.NewComputePool(workers)
		defer pool.Close()
		k.SetComputePool(pool)
	}
	reg := obs.New()
	k.SetObs(reg)
	const chunkSz = 64
	data := make([]byte, chunks*chunkSz)
	for i := range data {
		data[i] = byte(i)
	}
	eng := &Trace{R: &slowReader{data: data, latency: 0.001}}
	cache := NewCache(0)
	ident := func(raw []byte) ([]byte, error) { return raw, nil }
	for pi := 0; pi < procs; pi++ {
		k.Go(fmt.Sprintf("reader-%d", pi), func(p *sim.Proc) {
			b := Bind(p, eng, Options{Cache: cache, Prefetch: 2, Obs: reg})
			plan := make([]Range, chunks)
			for i := range plan {
				plan[i] = Range{Off: int64(i) * chunkSz, Len: chunkSz}
			}
			b.Announce(plan)
			for i := 0; i < chunks; i++ {
				if _, err := b.ReadChunk(int64(i)*chunkSz, chunkSz, ident); err != nil {
					panic(err)
				}
			}
		})
	}
	k.Run()
	hits := reg.Counter("ioengine/chunk_reads_total", obs.L("result", "hit")).Value()
	misses := reg.Counter("ioengine/chunk_reads_total", obs.L("result", "miss")).Value()
	counters := Trace{BytesRead: eng.BytesRead, Calls: eng.Calls}
	return counters, cache.Stats(), hits, misses
}

func TestCountersDeterministicUnderKernelConcurrency(t *testing.T) {
	tr1, cs1, h1, m1 := contendedRun(8, 16, -1)
	tr2, cs2, h2, m2 := contendedRun(8, 16, -1)
	if tr1 != tr2 {
		t.Fatalf("Trace counters diverged: %+v vs %+v", tr1, tr2)
	}
	if cs1 != cs2 {
		t.Fatalf("cache counters diverged: %+v vs %+v", cs1, cs2)
	}
	if h1 != h2 || m1 != m2 {
		t.Fatalf("registry counters diverged: hit %v/%v miss %v/%v", h1, h2, m1, m2)
	}
	if tr1.Calls == 0 || cs1.Hits == 0 || cs1.Misses == 0 {
		t.Fatalf("degenerate run: trace=%+v cache=%+v", tr1, cs1)
	}
	if h1+m1 != 8*16 {
		t.Fatalf("chunk reads = %v, want %v", h1+m1, 8*16)
	}
}

func TestStatsDeterministicAcrossInterleavedProcs(t *testing.T) {
	run := func() (Stats, Stats) {
		k := sim.NewKernel()
		eng := &slowReader{data: make([]byte, 4096), latency: 0.0007}
		var a, b Stats
		k.Go("a", func(p *sim.Proc) {
			s := Bind(p, eng, Options{})
			a.R = s
			for i := 0; i < 10; i++ {
				a.ReadAt(int64(i)*64, 64)
			}
		})
		k.Go("b", func(p *sim.Proc) {
			s := Bind(p, eng, Options{})
			b.R = s
			for i := 0; i < 7; i++ {
				b.ReadAt(int64(i)*128, 128)
			}
		})
		k.Run()
		a.R, b.R = nil, nil // compare counters only
		return a, b
	}
	a1, b1 := run()
	a2, b2 := run()
	if a1 != a2 || b1 != b2 {
		t.Fatalf("Stats diverged: %+v/%+v vs %+v/%+v", a1, b1, a2, b2)
	}
	if a1.Calls != 10 || a1.BytesRead != 640 || b1.Calls != 7 || b1.BytesRead != 896 {
		t.Fatalf("unexpected totals: %+v %+v", a1, b1)
	}
}

// TestCountersDeterministicAcrossWorkerCounts re-runs the contended
// read mix through the two-plane engine: chunk decodes offload to the
// pool, yet every counter — trace, cache, registry — must match between
// one worker and many.
func TestCountersDeterministicAcrossWorkerCounts(t *testing.T) {
	tr1, cs1, h1, m1 := contendedRun(8, 16, 1)
	tr2, cs2, h2, m2 := contendedRun(8, 16, 8)
	if tr1 != tr2 {
		t.Fatalf("Trace counters diverged across worker counts: %+v vs %+v", tr1, tr2)
	}
	if cs1 != cs2 {
		t.Fatalf("cache counters diverged across worker counts: %+v vs %+v", cs1, cs2)
	}
	if h1 != h2 || m1 != m2 {
		t.Fatalf("registry counters diverged: hit %v/%v miss %v/%v", h1, h2, m1, m2)
	}
	if h1+m1 != 8*16 {
		t.Fatalf("chunk reads = %v, want %v", h1+m1, 8*16)
	}
}

// TestCacheConcurrentAccess hammers one cache from real goroutines with
// overlapping keys — the thread-safety half of the cache contract. Run
// under -race this validates the per-shard locking; the final snapshot
// must be internally consistent regardless of interleaving.
func TestCacheConcurrentAccess(t *testing.T) {
	cache := NewCache(1 << 16)
	const goroutines, ops, keys = 8, 2000, 64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			val := make([]byte, 128)
			for i := 0; i < ops; i++ {
				key := fmt.Sprintf("chunk-%d", (g*31+i)%keys)
				switch i % 3 {
				case 0:
					cache.Put(key, val)
				case 1:
					cache.Get(key)
				default:
					cache.contains(key)
				}
			}
			cache.Stats()
		}()
	}
	wg.Wait()
	s := cache.Stats()
	if s.Hits+s.Misses == 0 {
		t.Fatal("no lookups recorded")
	}
	if s.Entries < 0 || s.Bytes < 0 || s.Bytes != s.Entries*128 {
		t.Fatalf("inconsistent final snapshot: %+v", s)
	}
}

// Package ioengine is the shared read path every storage and format layer
// consumes: one engine-level interface (ReaderAt, charging virtual time
// per call), one proc-bound view (Source, what format parsers take), and
// composable wrappers — a sharded LRU chunk cache holding decompressed
// chunks, a readahead prefetcher issuing upcoming chunk reads on
// background sim processes, and a stats wrapper replacing the old
// ad-hoc counting readers. The PFS client, the HDFS range reader, the
// MPI-IO range math, and the netcdf/hdf5lite/grads plugins all build on
// this package instead of private copies.
//
// Caching assumes the read-only in-place contract SciDP's analysis path
// has: input files are immutable once analysis starts, so cache entries
// are never invalidated.
package ioengine

import (
	"fmt"

	"scidp/internal/obs"
	"scidp/internal/sim"
)

// ReaderAt is the engine-level random-access interface: every read names
// the simulated process it charges virtual time to, so one engine (and
// one cache behind it) can serve many tasks.
type ReaderAt interface {
	// ReadAt returns up to n bytes starting at off; short reads at EOF
	// return what is available.
	ReadAt(p *sim.Proc, off, n int64) ([]byte, error)
	// Size returns the total length.
	Size() int64
}

// Source is the proc-bound view of a ReaderAt — the random-access
// interface format parsers consume. The netcdf, hdf5lite, and scifmt
// ReaderAt names are aliases of this type.
type Source interface {
	ReadAt(off, n int64) ([]byte, error)
	Size() int64
}

// Bytes adapts an in-memory blob to Source.
type Bytes []byte

// ReadAt implements Source.
func (b Bytes) ReadAt(off, n int64) ([]byte, error) {
	if off < 0 || off >= int64(len(b)) {
		return nil, nil
	}
	end := off + n
	if end > int64(len(b)) {
		end = int64(len(b))
	}
	return b[off:end], nil
}

// Size implements Source.
func (b Bytes) Size() int64 { return int64(len(b)) }

// Stats wraps a Source and tallies bytes and calls — the tracing hook the
// I/O-efficiency experiments and header-cost tests use.
//
// Concurrency contract: BytesRead and Calls are plain ints deliberately
// left unsynchronized. They are mutated only from sim-process context,
// and the kernel runs exactly one process or event callback at a time
// (see the sim package comment), so there is no data race and totals
// are deterministic. Do not share a Stats across kernels or touch it
// from a real goroutine while Kernel.Run is executing; the invariant is
// exercised under the race detector in concurrency_test.go.
type Stats struct {
	// R is the wrapped source.
	R Source
	// BytesRead is the running total of bytes returned.
	BytesRead int64
	// Calls is the number of ReadAt invocations.
	Calls int64
}

// ReadAt implements Source.
func (s *Stats) ReadAt(off, n int64) ([]byte, error) {
	b, err := s.R.ReadAt(off, n)
	s.BytesRead += int64(len(b))
	s.Calls++
	return b, err
}

// Size implements Source.
func (s *Stats) Size() int64 { return s.R.Size() }

// Trace is the engine-level stats wrapper: it counts the calls and bytes
// crossing a ReaderAt, including background prefetch reads. It has the
// same concurrency contract as Stats: plain counters, safe because the
// sim kernel serializes all process execution.
type Trace struct {
	// R is the wrapped engine reader.
	R ReaderAt
	// BytesRead is the running total of bytes returned.
	BytesRead int64
	// Calls is the number of ReadAt invocations.
	Calls int64
}

// ReadAt implements ReaderAt.
func (t *Trace) ReadAt(p *sim.Proc, off, n int64) ([]byte, error) {
	b, err := t.R.ReadAt(p, off, n)
	t.BytesRead += int64(len(b))
	t.Calls++
	return b, err
}

// Size implements ReaderAt.
func (t *Trace) Size() int64 { return t.R.Size() }

// ChunkReader is the optional Source extension the format plugins probe
// for: a source that can satisfy a (read stored bytes, decode) pair from
// a decompressed-chunk cache, skipping both the transfer and the decode.
type ChunkReader interface {
	ReadChunk(off, stored int64, decode func(raw []byte) ([]byte, error)) ([]byte, error)
}

// ReadChunk reads the stored bytes [off, off+stored) of r and decodes
// them (validation + decompression). When r is a ChunkReader the cache
// and prefetcher get a chance to serve or stage the chunk; otherwise it
// is a plain read-then-decode.
func ReadChunk(r Source, off, stored int64, decode func(raw []byte) ([]byte, error)) ([]byte, error) {
	if cr, ok := r.(ChunkReader); ok {
		return cr.ReadChunk(off, stored, decode)
	}
	raw, err := r.ReadAt(off, stored)
	if err != nil {
		return nil, err
	}
	return decode(raw)
}

// ScanReader is the optional Source extension the query planner's fused
// single-pass scans probe for: serve a chunk from the decompressed cache
// when it is already resident, but do not populate the cache on a miss —
// a one-shot scan over a pruned chunk list must not evict the hot
// working set that iterative slab readers depend on.
type ScanReader interface {
	ReadChunkOnce(off, stored int64, decode func(raw []byte) ([]byte, error)) ([]byte, error)
}

// ReadChunkOnce reads and decodes the stored bytes [off, off+stored) of r
// for a single-pass scan. When r is a ScanReader the cache may serve the
// chunk but is never filled by it; otherwise it is a plain
// read-then-decode.
func ReadChunkOnce(r Source, off, stored int64, decode func(raw []byte) ([]byte, error)) ([]byte, error) {
	if sr, ok := r.(ScanReader); ok {
		return sr.ReadChunkOnce(off, stored, decode)
	}
	raw, err := r.ReadAt(off, stored)
	if err != nil {
		return nil, err
	}
	return decode(raw)
}

// Offloader is the optional Source extension a format plugin probes for
// to fork pure assembly work (hyperslab scatter copies, row-chunk
// assembly) onto the simulation's data plane. Bound implements it via
// its process; plain sources run the work inline.
type Offloader interface {
	// Fork submits fn to the data plane and returns its join handle
	// (nil when no pool is attached — fn already ran inline).
	Fork(fn func()) *sim.Future
	// Join blocks until every non-nil future has resolved.
	Join(futs ...*sim.Future)
}

// Fork runs fn on r's data plane when r supports offloading; otherwise
// inline, returning nil. Anything fn writes must not be read before the
// matching Join.
func Fork(r Source, fn func()) *sim.Future {
	if o, ok := r.(Offloader); ok {
		return o.Fork(fn)
	}
	fn()
	return nil
}

// Join waits for futures forked from r. Safe with nil entries and on
// sources without offload support.
func Join(r Source, futs ...*sim.Future) {
	if o, ok := r.(Offloader); ok {
		o.Join(futs...)
	}
}

// Planner is the optional Source extension a format plugin uses to
// announce the chunk ranges an upcoming slab read will touch, in read
// order — the prefetcher's readahead plan.
type Planner interface {
	Announce(plan []Range)
}

// Announce passes the upcoming chunk-read plan to r if it accepts one.
func Announce(r Source, plan []Range) {
	if pl, ok := r.(Planner); ok {
		pl.Announce(plan)
	}
}

// Options configures Bind.
type Options struct {
	// Cache is the (possibly shared) chunk cache reads go through; nil
	// disables caching unless Prefetch forces a private staging cache.
	Cache *Cache
	// Prefetch is the readahead depth: after each announced chunk is
	// consumed, up to this many upcoming chunks are read on background
	// processes. Zero disables readahead.
	Prefetch int
	// Name namespaces cache keys (defaults to the reader's Name() when
	// it has one).
	Name string
	// Obs, when non-nil, receives chunk-read and prefetch counters
	// (ioengine/chunk_reads_total{result=hit|miss},
	// ioengine/prefetch_issued_total, ioengine/prefetch_hits_total).
	Obs *obs.Registry
	// Tier is the cluster-wide cooperative cache chunk reads consult
	// between the per-job cache and the engine; nil disables it.
	Tier *Tier
	// TierNode names the node the bound process runs on — the burst
	// buffer Tier lookups are local to.
	TierNode string
}

// Bound couples a process to an engine reader and implements Source (plus
// ChunkReader and Planner), applying the configured cache and prefetcher.
type Bound struct {
	p        *sim.Proc
	r        ReaderAt
	name     string
	cache    *Cache
	tier     *Tier
	tnode    string
	prefetch int
	plan     []Range
	next     int // plan index of the first not-yet-consumed chunk
	inflight map[int64]*sim.WaitGroup

	// Observability handles (nil when Options.Obs was nil — nil-check
	// fast path, same single-threaded contract as Stats).
	chunkHits      *obs.Counter
	chunkMisses    *obs.Counter
	prefetchIssued *obs.Counter
	prefetchHits   *obs.Counter
}

// Bind returns a Source over (p, r). With a Cache, chunk reads are served
// from (and fill) the decompressed-chunk cache; with Prefetch > 0,
// announced chunks are read ahead on background processes spawned from
// p's kernel.
func Bind(p *sim.Proc, r ReaderAt, opts Options) *Bound {
	b := &Bound{p: p, r: r, name: opts.Name, cache: opts.Cache,
		tier: opts.Tier, tnode: opts.TierNode, prefetch: opts.Prefetch}
	if b.name == "" {
		if nr, ok := r.(interface{ Name() string }); ok {
			b.name = nr.Name()
		}
	}
	if b.prefetch > 0 {
		if b.cache == nil {
			b.cache = NewCache(0) // private staging cache for raw readahead
		}
		b.inflight = map[int64]*sim.WaitGroup{}
	}
	if opts.Obs != nil {
		b.chunkHits = opts.Obs.Counter("ioengine/chunk_reads_total", obs.L("result", "hit"))
		b.chunkMisses = opts.Obs.Counter("ioengine/chunk_reads_total", obs.L("result", "miss"))
		b.prefetchIssued = opts.Obs.Counter("ioengine/prefetch_issued_total")
		b.prefetchHits = opts.Obs.Counter("ioengine/prefetch_hits_total")
	}
	return b
}

// Size implements Source.
func (b *Bound) Size() int64 { return b.r.Size() }

// ReadAt implements Source: a plain engine read charged to the bound
// process (header and probe reads take this path; only chunk reads
// cache).
func (b *Bound) ReadAt(off, n int64) ([]byte, error) {
	return b.r.ReadAt(b.p, off, n)
}

// Fork implements Offloader on the bound process.
func (b *Bound) Fork(fn func()) *sim.Future { return b.p.Compute(fn) }

// Join implements Offloader on the bound process.
func (b *Bound) Join(futs ...*sim.Future) { b.p.Await(futs...) }

// Announce implements Planner and kicks off the first readahead window.
func (b *Bound) Announce(plan []Range) {
	b.plan = plan
	b.next = 0
	b.startPrefetch()
}

// ReadChunk implements ChunkReader: decompressed-cache hit, else raw
// bytes (possibly staged by the prefetcher), decode, fill the cache, and
// advance the readahead window.
func (b *Bound) ReadChunk(off, stored int64, decode func(raw []byte) ([]byte, error)) ([]byte, error) {
	b.advance(off)
	dkey := b.key('d', off, stored)
	if b.cache != nil {
		if v, ok := b.cache.Get(dkey); ok {
			b.chunkHits.Inc()
			b.startPrefetch()
			return v, nil
		}
	}
	// The cooperative tier sits between the per-job cache and the
	// engine: a local buffer hit is free (decoded bytes already on this
	// node), a peer hit charges the intra-rack/zone transfer inside
	// Tier.Read, and only a full tier miss falls through to the OSTs.
	if b.tier != nil {
		if v, ok := b.tier.Read(b.p, b.tnode, dkey); ok {
			b.chunkHits.Inc()
			b.startPrefetch()
			return v, nil
		}
	}
	b.chunkMisses.Inc()
	raw, err := b.fetchRaw(off, stored)
	if err != nil {
		return nil, err
	}
	// Decode on the data plane: the closure is pure (validation +
	// decompression of private bytes), so it may overlap decodes from
	// other tasks parked at the same virtual instant. Cache Get/Put stay
	// on the kernel thread, keeping the hit/miss counters deterministic.
	var out []byte
	var derr error
	b.p.Await(b.p.Compute(func() { out, derr = decode(raw) }))
	if derr != nil {
		return nil, derr
	}
	if b.cache != nil {
		b.cache.Put(dkey, out)
	}
	if b.tier != nil {
		b.tier.MissOST(stored)
		b.tier.Admit(b.p, b.tnode, dkey, out, stored)
	}
	b.startPrefetch()
	return out, nil
}

// ReadChunkOnce implements ScanReader: a resident decompressed chunk is
// served (peek — no LRU promotion), a miss reads and decodes without
// filling the cache, so a pruned one-shot scan leaves the cache's working
// set untouched. Raw prefetch-staged bytes are still consumed, and the
// readahead window still advances, so announced scan plans overlap their
// transfers exactly like the caching path.
func (b *Bound) ReadChunkOnce(off, stored int64, decode func(raw []byte) ([]byte, error)) ([]byte, error) {
	b.advance(off)
	if b.cache != nil {
		if v, ok := b.cache.peek(b.key('d', off, stored)); ok {
			b.chunkHits.Inc()
			b.startPrefetch()
			return v, nil
		}
	}
	// One-shot scans may be served by a chunk already resident in this
	// node's burst buffer, but never admit, promote, or pull from peers
	// — the no-pollution contract extends to the cluster tier.
	if b.tier != nil {
		if v, ok := b.tier.PeekLocal(b.tnode, b.key('d', off, stored)); ok {
			b.chunkHits.Inc()
			b.startPrefetch()
			return v, nil
		}
	}
	b.chunkMisses.Inc()
	raw, err := b.fetchRaw(off, stored)
	if err != nil {
		return nil, err
	}
	var out []byte
	var derr error
	b.p.Await(b.p.Compute(func() { out, derr = decode(raw) }))
	if derr != nil {
		return nil, derr
	}
	b.startPrefetch()
	return out, nil
}

// fetchRaw returns the stored chunk bytes: wait out an in-flight
// prefetch, check the raw staging entries (peek — hit/miss counters
// track only the decompressed-chunk lookups), else read on the bound
// process.
func (b *Bound) fetchRaw(off, n int64) ([]byte, error) {
	if b.inflight != nil {
		if wg := b.inflight[off]; wg != nil {
			b.p.Wait(wg)
		}
	}
	if b.cache != nil {
		if raw, ok := b.cache.peek(b.key('r', off, n)); ok {
			b.prefetchHits.Inc()
			return raw, nil
		}
	}
	return b.r.ReadAt(b.p, off, n)
}

// advance moves the readahead window past the announced chunk at off.
func (b *Bound) advance(off int64) {
	for i := b.next; i < len(b.plan); i++ {
		if b.plan[i].Off == off {
			b.next = i + 1
			return
		}
	}
}

// startPrefetch issues background reads for up to Prefetch upcoming
// chunks of the announced plan that are neither cached nor in flight.
func (b *Bound) startPrefetch() {
	if b.prefetch <= 0 || b.next >= len(b.plan) {
		return
	}
	k := b.p.Kernel()
	issued := 0
	for i := b.next; i < len(b.plan) && issued < b.prefetch; i++ {
		rg := b.plan[i]
		if _, busy := b.inflight[rg.Off]; busy {
			issued++ // outstanding reads occupy the window
			continue
		}
		rkey := b.key('r', rg.Off, rg.Len)
		if b.cache.contains(b.key('d', rg.Off, rg.Len)) || b.cache.contains(rkey) {
			continue
		}
		wg := k.NewWaitGroup()
		wg.Add(1)
		b.inflight[rg.Off] = wg
		b.prefetchIssued.Inc()
		k.Go("ioengine/prefetch", func(pp *sim.Proc) {
			if raw, err := b.r.ReadAt(pp, rg.Off, rg.Len); err == nil {
				b.cache.Put(rkey, raw)
			}
			delete(b.inflight, rg.Off)
			wg.Done()
		})
		issued++
	}
}

// key builds a cache key: namespace, entry kind ('d' decompressed chunk,
// 'r' raw staged bytes), and the byte range.
func (b *Bound) key(kind byte, off, n int64) string {
	return fmt.Sprintf("%s#%c@%d+%d", b.name, kind, off, n)
}

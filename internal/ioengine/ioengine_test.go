package ioengine

import (
	"bytes"
	"fmt"
	"testing"

	"scidp/internal/sim"
)

func TestBytesSource(t *testing.T) {
	b := Bytes([]byte("0123456789"))
	if b.Size() != 10 {
		t.Fatalf("Size = %d, want 10", b.Size())
	}
	got, err := b.ReadAt(3, 4)
	if err != nil || string(got) != "3456" {
		t.Fatalf("ReadAt(3,4) = %q, %v", got, err)
	}
	if got, _ := b.ReadAt(8, 10); string(got) != "89" {
		t.Fatalf("short read at EOF = %q, want \"89\"", got)
	}
	if got, _ := b.ReadAt(20, 4); got != nil {
		t.Fatalf("read past EOF = %q, want nil", got)
	}
}

func TestStatsWrapper(t *testing.T) {
	s := &Stats{R: Bytes([]byte("0123456789"))}
	if _, err := s.ReadAt(0, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadAt(8, 10); err != nil {
		t.Fatal(err)
	}
	if s.Calls != 2 || s.BytesRead != 6 {
		t.Fatalf("Calls=%d BytesRead=%d, want 2 and 6", s.Calls, s.BytesRead)
	}
	if s.Size() != 10 {
		t.Fatalf("Size = %d, want 10", s.Size())
	}
}

func TestRangeIntersect(t *testing.T) {
	a := Range{Off: 10, Len: 10}
	if got, ok := a.Intersect(Range{Off: 15, Len: 10}); !ok || got != (Range{Off: 15, Len: 5}) {
		t.Fatalf("Intersect = %+v, %v", got, ok)
	}
	if _, ok := a.Intersect(Range{Off: 20, Len: 5}); ok {
		t.Fatal("adjacent ranges should not intersect")
	}
	if _, ok := a.Intersect(Range{Off: 0, Len: 10}); ok {
		t.Fatal("disjoint ranges should not intersect")
	}
}

func TestMerge(t *testing.T) {
	got := Merge([]Range{
		{Off: 30, Len: 5},
		{Off: 0, Len: 10},
		{Off: 8, Len: 4},
		{Off: 12, Len: 3},
		{Off: 40, Len: 0},
	})
	want := []Range{{Off: 0, Len: 15}, {Off: 30, Len: 5}}
	if len(got) != len(want) {
		t.Fatalf("Merge = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Merge[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
	if out := Merge(nil); len(out) != 0 {
		t.Fatalf("Merge(nil) = %+v, want empty", out)
	}
}

func TestCacheHitMissAccounting(t *testing.T) {
	c := NewCache(0)
	if _, ok := c.Get("a"); ok {
		t.Fatal("unexpected hit on empty cache")
	}
	c.Put("a", []byte("hello"))
	v, ok := c.Get("a")
	if !ok || string(v) != "hello" {
		t.Fatalf("Get(a) = %q, %v", v, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Evictions != 0 {
		t.Fatalf("stats = %+v, want 1 hit, 1 miss, 0 evictions", st)
	}
	if st.Bytes != 5 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 5 bytes in 1 entry", st)
	}
	if got := st.HitRate(); got != 0.5 {
		t.Fatalf("HitRate = %v, want 0.5", got)
	}
	if got := (CacheStats{}).HitRate(); got != 0 {
		t.Fatalf("empty HitRate = %v, want 0", got)
	}
}

func TestCacheEvictionUnderBudget(t *testing.T) {
	const budget = 8 * 64 // 64 bytes per shard
	c := NewCache(budget)
	val := make([]byte, 32)
	for i := 0; i < 100; i++ {
		c.Put(fmt.Sprintf("key-%d", i), val)
	}
	st := c.Stats()
	if st.Bytes > budget {
		t.Fatalf("resident bytes %d exceed budget %d", st.Bytes, budget)
	}
	if st.Evictions == 0 {
		t.Fatal("expected evictions after overfilling the budget")
	}
	if st.Entries*32 != st.Bytes {
		t.Fatalf("entries %d inconsistent with bytes %d", st.Entries, st.Bytes)
	}
	// A value larger than its shard's budget is rejected outright.
	before := c.Stats()
	c.Put("huge", make([]byte, 65))
	if _, ok := c.peek("huge"); ok {
		t.Fatal("oversized value should not be cached")
	}
	if after := c.Stats(); after.Bytes != before.Bytes {
		t.Fatal("oversized Put changed resident bytes")
	}
}

func TestCacheLRUOrder(t *testing.T) {
	// Single-shard-sized test via an unbounded cache and manual check:
	// refreshing an entry must protect it from eviction order. Use keys
	// until two land in the same shard with a tiny budget.
	c := NewCache(8 * 2) // 2 bytes per shard: one 1-byte entry each, maybe two
	sh := c.shard("x")
	var same []string
	for i := 0; len(same) < 3; i++ {
		k := fmt.Sprintf("k%d", i)
		if c.shard(k) == sh {
			same = append(same, k)
		}
	}
	c.Put(same[0], []byte{1})
	c.Put(same[1], []byte{2})
	c.Get(same[0]) // refresh: same[1] is now LRU
	c.Put(same[2], []byte{3})
	if !c.contains(same[0]) {
		t.Fatal("recently used entry was evicted")
	}
	if c.contains(same[1]) {
		t.Fatal("least recently used entry survived")
	}
}

func TestCacheSet(t *testing.T) {
	cs := NewCacheSet(0)
	a, b := cs.For("node-a"), cs.For("node-b")
	if a == b {
		t.Fatal("distinct names share a cache")
	}
	if cs.For("node-a") != a {
		t.Fatal("For is not stable per name")
	}
	a.Put("k", []byte("vv"))
	a.Get("k")
	b.Get("k")
	st := cs.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Bytes != 2 || st.Entries != 1 {
		t.Fatalf("aggregate stats = %+v", st)
	}
}

// slowReader charges a fixed virtual latency per engine read.
type slowReader struct {
	data    []byte
	latency float64
	reads   int
}

func (r *slowReader) ReadAt(p *sim.Proc, off, n int64) ([]byte, error) {
	r.reads++
	p.Sleep(r.latency)
	return Bytes(r.data).ReadAt(off, n)
}

func (r *slowReader) Size() int64 { return int64(len(r.data)) }

func (r *slowReader) Name() string { return "slow" }

func TestTraceWrapper(t *testing.T) {
	k := sim.NewKernel()
	tr := &Trace{R: &slowReader{data: make([]byte, 64), latency: 0.001}}
	k.Go("p", func(p *sim.Proc) {
		tr.ReadAt(p, 0, 16)
		tr.ReadAt(p, 16, 16)
	})
	k.Run()
	if tr.Calls != 2 || tr.BytesRead != 32 {
		t.Fatalf("Calls=%d BytesRead=%d, want 2 and 32", tr.Calls, tr.BytesRead)
	}
	if tr.Size() != 64 {
		t.Fatalf("Size = %d, want 64", tr.Size())
	}
}

// chunkedRead reads nchunks chunks of size sz in order through b,
// validating content, and returns any error.
func chunkedRead(tb testing.TB, b *Bound, nchunks int, sz int64, data []byte) {
	tb.Helper()
	ident := func(raw []byte) ([]byte, error) { return raw, nil }
	for i := 0; i < nchunks; i++ {
		off := int64(i) * sz
		got, err := b.ReadChunk(off, sz, ident)
		if err != nil {
			tb.Fatalf("ReadChunk(%d): %v", off, err)
		}
		if !bytes.Equal(got, data[off:off+sz]) {
			tb.Fatalf("chunk %d content mismatch", i)
		}
	}
}

func TestBoundChunkCacheSkipsReadAndDecode(t *testing.T) {
	data := []byte("abcdefghijklmnop")
	r := &slowReader{data: data, latency: 0.01}
	cache := NewCache(0)
	decodes := 0
	var first, second float64
	k := sim.NewKernel()
	k.Go("p", func(p *sim.Proc) {
		b := Bind(p, r, Options{Cache: cache})
		decode := func(raw []byte) ([]byte, error) { decodes++; return raw, nil }
		start := p.Now()
		if _, err := b.ReadChunk(0, 8, decode); err != nil {
			t.Error(err)
		}
		first = p.Now() - start
		start = p.Now()
		if _, err := b.ReadChunk(0, 8, decode); err != nil {
			t.Error(err)
		}
		second = p.Now() - start
	})
	k.Run()
	if decodes != 1 {
		t.Fatalf("decode ran %d times, want 1 (second read cached)", decodes)
	}
	if r.reads != 1 {
		t.Fatalf("engine reads = %d, want 1", r.reads)
	}
	if second >= first {
		t.Fatalf("cached read took %v, cold took %v; want strictly faster", second, first)
	}
	st := cache.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("cache stats = %+v, want 1 hit / 1 miss", st)
	}
}

func TestPrefetchOverlap(t *testing.T) {
	const nchunks, sz = 6, int64(8)
	data := make([]byte, int(sz)*nchunks)
	for i := range data {
		data[i] = byte(i)
	}
	plan := make([]Range, nchunks)
	for i := range plan {
		plan[i] = Range{Off: int64(i) * sz, Len: sz}
	}

	run := func(prefetch int) float64 {
		r := &slowReader{data: data, latency: 0.01}
		k := sim.NewKernel()
		var elapsed float64
		k.Go("p", func(p *sim.Proc) {
			b := Bind(p, r, Options{Prefetch: prefetch})
			b.Announce(plan)
			chunkedRead(t, b, nchunks, sz, data)
			elapsed = p.Now()
		})
		k.Run()
		return elapsed
	}

	sequential := run(0)
	overlapped := run(4)
	if want := 0.01 * nchunks; sequential < want {
		t.Fatalf("sequential run took %v, want >= %v", sequential, want)
	}
	if overlapped >= sequential {
		t.Fatalf("prefetch run took %v, sequential %v; want strictly faster", overlapped, sequential)
	}
}

func TestAnnounceOnPlainSourceIsNoOp(t *testing.T) {
	Announce(Bytes([]byte("xy")), []Range{{Off: 0, Len: 2}}) // must not panic
	got, err := ReadChunk(Bytes([]byte("xy")), 0, 2, func(raw []byte) ([]byte, error) {
		return append([]byte("!"), raw...), nil
	})
	if err != nil || string(got) != "!xy" {
		t.Fatalf("ReadChunk fallback = %q, %v", got, err)
	}
}

package ioengine

import (
	"scidp/internal/obs"
)

// Observability bridge. Cache and CacheSet counters stay where they are
// (mutex-guarded ints, see the concurrency contract in cache.go) and
// are mirrored into a registry by collectors at export time; the Bound
// read path publishes chunk/prefetch counters directly.

// RegisterObs installs the package-level derived metrics on r once per
// registry: ioengine/cache_hit_ratio, computed from the chunk-read
// hit/miss counters every Bound with Options.Obs feeds. Call it when
// the registry is created (not per run).
func RegisterObs(r *obs.Registry) {
	if r == nil {
		return
	}
	hits := r.Counter("ioengine/chunk_reads_total", obs.L("result", "hit"))
	misses := r.Counter("ioengine/chunk_reads_total", obs.L("result", "miss"))
	ratio := r.Gauge("ioengine/cache_hit_ratio")
	r.AddCollector(func() {
		total := hits.Value() + misses.Value()
		if total > 0 {
			ratio.Set(hits.Value() / total)
		} else {
			ratio.Set(0)
		}
	})
}

// RegisterObs mirrors the cache's counters into r at every export:
// hits/misses/evictions as counters, resident bytes/entries and the hit
// ratio as gauges, all under ioengine/cache_* with the given labels.
func (c *Cache) RegisterObs(r *obs.Registry, labels ...obs.Label) {
	if r == nil || c == nil {
		return
	}
	hits := r.Counter("ioengine/cache_hits_total", labels...)
	misses := r.Counter("ioengine/cache_misses_total", labels...)
	evictions := r.Counter("ioengine/cache_evictions_total", labels...)
	bytes := r.Gauge("ioengine/cache_bytes", labels...)
	entries := r.Gauge("ioengine/cache_entries", labels...)
	ratio := r.Gauge("ioengine/cache_hit_ratio", labels...)
	r.AddCollector(func() {
		st := c.Stats()
		hits.Set(float64(st.Hits))
		misses.Set(float64(st.Misses))
		evictions.Set(float64(st.Evictions))
		bytes.Set(float64(st.Bytes))
		entries.Set(float64(st.Entries))
		ratio.Set(st.HitRate())
	})
}

// RegisterObs mirrors the set's aggregated counters into r at every
// export, under the same ioengine/cache_* names as Cache.RegisterObs.
func (cs *CacheSet) RegisterObs(r *obs.Registry, labels ...obs.Label) {
	if r == nil || cs == nil {
		return
	}
	hits := r.Counter("ioengine/cache_hits_total", labels...)
	misses := r.Counter("ioengine/cache_misses_total", labels...)
	evictions := r.Counter("ioengine/cache_evictions_total", labels...)
	bytes := r.Gauge("ioengine/cache_bytes", labels...)
	entries := r.Gauge("ioengine/cache_entries", labels...)
	ratio := r.Gauge("ioengine/cache_hit_ratio", labels...)
	r.AddCollector(func() {
		st := cs.Stats()
		hits.Set(float64(st.Hits))
		misses.Set(float64(st.Misses))
		evictions.Set(float64(st.Evictions))
		bytes.Set(float64(st.Bytes))
		entries.Set(float64(st.Entries))
		ratio.Set(st.HitRate())
	})
}

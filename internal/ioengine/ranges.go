package ioengine

import (
	"cmp"
	"slices"
)

// Range is a half-open byte range [Off, Off+Len). It is the shared
// currency of the read path: MPI-IO file views, HDFS block stitching,
// and chunk readahead plans all decompose into Ranges.
type Range struct {
	// Off is the starting byte offset.
	Off int64
	// Len is the length in bytes.
	Len int64
}

// End returns the exclusive end offset.
func (r Range) End() int64 { return r.Off + r.Len }

// Intersect returns the overlap of r and o, and whether it is non-empty.
func (r Range) Intersect(o Range) (Range, bool) {
	s := max(r.Off, o.Off)
	e := min(r.End(), o.End())
	if e <= s {
		return Range{}, false
	}
	return Range{Off: s, Len: e - s}, true
}

// Merge coalesces overlapping or adjacent ranges into a minimal sorted
// set, dropping empty ones. The input is not modified.
func Merge(rs []Range) []Range {
	var out []Range
	for _, r := range rs {
		if r.Len > 0 {
			out = append(out, r)
		}
	}
	slices.SortFunc(out, func(a, b Range) int { return cmp.Compare(a.Off, b.Off) })
	w := 0
	for _, r := range out {
		if w > 0 && r.Off <= out[w-1].End() {
			out[w-1].Len = max(out[w-1].End(), r.End()) - out[w-1].Off
			continue
		}
		out[w] = r
		w++
	}
	return out[:w]
}

package ioengine

import (
	"sync"

	"scidp/internal/obs"
	"scidp/internal/sim"
)

// Tier is the cluster-wide cooperative cache: per-node burst buffers
// holding decoded chunks, a directory mapping keys to holder nodes, and
// hot-key promotion. A local hit costs nothing (the decoded bytes are
// already on the node); a peer hit charges a transfer over the
// topology's intra-rack/zone links; only a full miss falls back to the
// storage engine. The tier sits above the per-job Cache in Bound's
// lookup order and below it in lifetime: job caches die with the run,
// tier buffers persist across every job sharing the Env.
//
// Concurrency contract: one mutex guards all tier state, so the tier is
// safe from any goroutine; the mutex is never held across a virtual
// transfer (Read unlocks before charging the peer path). Determinism of
// the counters and of victim selection is again a property of the
// caller — all mutations happen on the kernel thread in event order —
// plus the victim orders below, which are total (unique seq for LRU,
// key tie-break for cost) so map iteration order can never leak in.
// Values are shared, not copied: callers must treat them as read-only,
// and must copy before admitting bytes a task will mutate.

// Eviction policy names for TierConfig.Policy.
const (
	PolicyLRU  = "lru"
	PolicyCost = "cost"
)

// TierTopology resolves peer transfer costs. *cluster.Cluster satisfies
// it; the indirection keeps ioengine free of a cluster dependency.
type TierTopology interface {
	// PeerPathByName returns the resource chain a node-to-node transfer
	// crosses (nil for unknown nodes — the transfer is then free).
	PeerPathByName(src, dst string) []*sim.Resource
	// Distance ranks locality: 0 same node, 1 same rack, 2 same zone,
	// 3 beyond.
	Distance(src, dst string) int
}

// TierConfig selects the tier's capacity model and policies.
type TierConfig struct {
	// NodeBytes is each node's burst-buffer capacity; 0 disables the
	// tier entirely.
	NodeBytes int64
	// Policy is the admission/eviction policy: PolicyLRU (default) or
	// PolicyCost, which weighs refetch cost (stored size scaled by the
	// live OST queue depth) against retained bytes.
	Policy string
	// PromoteThreshold replicates a key to one more node every this
	// many tier accesses (default 4; < 0 disables promotion).
	PromoteThreshold int
	// MaxReplicas caps a key's holder count (default 2).
	MaxReplicas int
}

// Enabled reports whether the config describes an active tier.
func (c TierConfig) Enabled() bool { return c.NodeBytes > 0 }

// TierStats is a point-in-time snapshot of the tier's counters.
type TierStats struct {
	// LocalHits/PeerHits/OSTReads classify every ReadChunk the tier
	// arbitrated: served from the node's own buffer, fetched from a
	// peer's, or fallen through to the storage engine.
	LocalHits int64
	PeerHits  int64
	OSTReads  int64
	// LocalBytes/PeerBytes count decoded bytes served per level;
	// OSTBytes counts the stored bytes read on fallbacks.
	LocalBytes int64
	PeerBytes  int64
	OSTBytes   int64
	Admits     int64
	Evictions  int64
	// Promotions counts hot-key replicas that actually landed.
	Promotions      int64
	ResidentBytes   int64
	ResidentEntries int64
}

// HitRate returns the cross-job hit rate: reads served from the tier
// (local or peer) over all tier-arbitrated reads.
func (s TierStats) HitRate() float64 {
	total := s.LocalHits + s.PeerHits + s.OSTReads
	if total == 0 {
		return 0
	}
	return float64(s.LocalHits+s.PeerHits) / float64(total)
}

// CostScore is the cost-aware policy's retention score: the modeled
// cost of refetching the entry — transferring its stored bytes over
// OSTs inflated by the live queue depth, plus re-decoding it to its
// decoded size. The eviction victim is the entry with the LOWEST score
// (cheapest to bring back); object size enters through both terms, and
// a congested OST pool shifts retention toward transfer-heavy entries,
// while an idle pool favors keeping decode-heavy ones. Exported so the
// brute-force oracle in the tests ranks independently.
func CostScore(stored, decoded int64, queueDepth float64) float64 {
	return float64(stored)*(1+queueDepth) + 0.25*float64(decoded)
}

type tierEntry struct {
	key    string
	val    []byte
	stored int64 // engine-level (compressed) size, the refetch cost basis
	seq    uint64
}

type tierBuffer struct {
	name    string
	cap     int64
	bytes   int64
	entries map[string]*tierEntry
}

// Tier implements the cooperative cache. The zero value is not usable;
// a nil *Tier is: every method no-ops or misses, so call sites need no
// enable checks.
type Tier struct {
	mu         sync.Mutex
	cfg        TierConfig
	topo       TierTopology
	queueDepth func() float64
	buffers    map[string]*tierBuffer
	names      []string // registration order, the promotion scan order
	dir        map[string][]string
	access     map[string]int64
	promoting  map[string]bool
	seq        uint64
	stats      TierStats
}

// NewTier builds a tier over topo. queueDepth supplies the cost-aware
// policy's congestion signal (typically pfs.FS.MeanQueueDepth); nil
// means zero depth. An unknown policy name panics — configs are
// validated at flag-parse time.
func NewTier(cfg TierConfig, topo TierTopology, queueDepth func() float64) *Tier {
	if cfg.Policy == "" {
		cfg.Policy = PolicyLRU
	}
	if cfg.Policy != PolicyLRU && cfg.Policy != PolicyCost {
		panic("ioengine: unknown tier policy " + cfg.Policy)
	}
	if cfg.PromoteThreshold == 0 {
		cfg.PromoteThreshold = 4
	}
	if cfg.MaxReplicas <= 0 {
		cfg.MaxReplicas = 2
	}
	return &Tier{
		cfg: cfg, topo: topo, queueDepth: queueDepth,
		buffers: map[string]*tierBuffer{}, dir: map[string][]string{},
		access: map[string]int64{}, promoting: map[string]bool{},
	}
}

// Register creates node's burst buffer with an explicit capacity.
// Unregistered nodes get a buffer with the config's NodeBytes on first
// touch; registering up front pins the promotion scan order to the
// cluster's node order.
func (t *Tier) Register(name string, capBytes int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if b, ok := t.buffers[name]; ok {
		b.cap = capBytes
		return
	}
	t.buffers[name] = &tierBuffer{name: name, cap: capBytes, entries: map[string]*tierEntry{}}
	t.names = append(t.names, name)
}

func (t *Tier) bufferLocked(name string) *tierBuffer {
	b, ok := t.buffers[name]
	if !ok {
		b = &tierBuffer{name: name, cap: t.cfg.NodeBytes, entries: map[string]*tierEntry{}}
		t.buffers[name] = b
		t.names = append(t.names, name)
	}
	return b
}

// Read serves key for a task on node: local buffer first (free), then
// the nearest directory holder (charged over the peer path, and the
// fetched copy is installed locally so the working set spreads), else a
// miss. The caller reads from the engine on a miss and calls MissOST +
// Admit.
func (t *Tier) Read(p *sim.Proc, node, key string) ([]byte, bool) {
	if t == nil {
		return nil, false
	}
	t.mu.Lock()
	buf := t.bufferLocked(node)
	if e, ok := buf.entries[key]; ok {
		t.seq++
		e.seq = t.seq
		t.access[key]++
		t.stats.LocalHits++
		t.stats.LocalBytes += int64(len(e.val))
		val := e.val
		t.maybePromoteLocked(p, key)
		t.mu.Unlock()
		return val, true
	}
	holder, val, stored := t.pickHolderLocked(node, key)
	if holder == "" {
		t.mu.Unlock()
		return nil, false
	}
	t.access[key]++
	t.stats.PeerHits++
	t.stats.PeerBytes += int64(len(val))
	var path []*sim.Resource
	if t.topo != nil {
		path = t.topo.PeerPathByName(holder, node)
	}
	// Unlock before charging the transfer: Transfer parks the process,
	// and other processes must be able to use the tier meanwhile.
	t.mu.Unlock()
	if len(val) > 0 && len(path) > 0 {
		p.Transfer(float64(len(val)), path...)
	}
	t.mu.Lock()
	t.admitLocked(node, key, val, stored)
	t.maybePromoteLocked(p, key)
	t.mu.Unlock()
	return val, true
}

// pickHolderLocked returns the holder nearest to node (ties to the
// earliest admitted holder) and its entry's value.
func (t *Tier) pickHolderLocked(node, key string) (string, []byte, int64) {
	best, bestDist := "", 0
	var val []byte
	var stored int64
	for _, h := range t.dir[key] {
		if h == node {
			continue
		}
		hb := t.buffers[h]
		if hb == nil {
			continue
		}
		e, ok := hb.entries[key]
		if !ok {
			continue
		}
		d := 0
		if t.topo != nil {
			d = t.topo.Distance(h, node)
		}
		if best == "" || d < bestDist {
			best, bestDist, val, stored = h, d, e.val, e.stored
		}
	}
	return best, val, stored
}

// PeekLocal serves key only if node already holds it — the one-shot
// scan path's lookup, which must not admit, promote, or pull from
// peers (a pruned scan must leave the cluster working set untouched).
func (t *Tier) PeekLocal(node, key string) ([]byte, bool) {
	if t == nil {
		return nil, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	b := t.buffers[node]
	if b == nil {
		return nil, false
	}
	e, ok := b.entries[key]
	if !ok {
		return nil, false
	}
	t.stats.LocalHits++
	t.stats.LocalBytes += int64(len(e.val))
	return e.val, true
}

// MissOST books an engine fallback of the given stored size.
func (t *Tier) MissOST(stored int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.stats.OSTReads++
	t.stats.OSTBytes += stored
	t.mu.Unlock()
}

// Admit offers (key, val) decoded from stored engine bytes to node's
// buffer after a miss.
func (t *Tier) Admit(p *sim.Proc, node, key string, val []byte, stored int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.access[key]++
	t.admitLocked(node, key, val, stored)
	t.maybePromoteLocked(p, key)
	t.mu.Unlock()
}

func (t *Tier) admitLocked(node, key string, val []byte, stored int64) {
	buf := t.bufferLocked(node)
	if e, ok := buf.entries[key]; ok {
		t.seq++
		e.seq = t.seq
		return
	}
	if buf.cap > 0 && int64(len(val)) > buf.cap {
		return
	}
	t.seq++
	buf.entries[key] = &tierEntry{key: key, val: val, stored: stored, seq: t.seq}
	buf.bytes += int64(len(val))
	t.addHolderLocked(key, node)
	t.stats.Admits++
	// Under the cost policy the newcomer competes on score and may be
	// the immediate victim — that IS the admission decision.
	for buf.cap > 0 && buf.bytes > buf.cap {
		victim := t.victimLocked(buf)
		if victim == nil {
			break
		}
		t.evictLocked(buf, victim)
	}
}

// victimLocked picks the eviction victim under a total order: LRU by
// unique sequence number, cost by score with a key tie-break — map
// iteration order cannot influence either.
func (t *Tier) victimLocked(buf *tierBuffer) *tierEntry {
	var victim *tierEntry
	if t.cfg.Policy == PolicyCost {
		qd := 0.0
		if t.queueDepth != nil {
			qd = t.queueDepth()
		}
		best := 0.0
		for _, e := range buf.entries {
			s := CostScore(e.stored, int64(len(e.val)), qd)
			if victim == nil || s < best || (s == best && e.key < victim.key) {
				victim, best = e, s
			}
		}
		return victim
	}
	for _, e := range buf.entries {
		if victim == nil || e.seq < victim.seq {
			victim = e
		}
	}
	return victim
}

func (t *Tier) evictLocked(buf *tierBuffer, e *tierEntry) {
	delete(buf.entries, e.key)
	buf.bytes -= int64(len(e.val))
	t.stats.Evictions++
	t.removeHolderLocked(e.key, buf.name)
}

func (t *Tier) holdsLocked(key, node string) bool {
	for _, h := range t.dir[key] {
		if h == node {
			return true
		}
	}
	return false
}

func (t *Tier) addHolderLocked(key, node string) {
	if t.holdsLocked(key, node) {
		return
	}
	t.dir[key] = append(t.dir[key], node)
}

func (t *Tier) removeHolderLocked(key, node string) {
	hs := t.dir[key]
	for i, h := range hs {
		if h == node {
			hs = append(hs[:i], hs[i+1:]...)
			break
		}
	}
	if len(hs) == 0 {
		delete(t.dir, key) // access counts survive; holder set is empty
		return
	}
	t.dir[key] = hs
}

// maybePromoteLocked replicates a hot key to one more node when its
// access count crosses a multiple of the promotion threshold: the
// target is the registered node with the fewest resident bytes that
// does not hold the key (registration order breaks ties), the source
// the holder nearest the target. The copy runs on a background process
// so the reader never waits on promotion traffic.
func (t *Tier) maybePromoteLocked(p *sim.Proc, key string) {
	th := t.cfg.PromoteThreshold
	if th <= 0 || p == nil {
		return
	}
	if t.access[key]%int64(th) != 0 || t.promoting[key] {
		return
	}
	holders := t.dir[key]
	if len(holders) == 0 || len(holders) >= t.cfg.MaxReplicas {
		return
	}
	var target *tierBuffer
	for _, n := range t.names {
		if t.holdsLocked(key, n) {
			continue
		}
		if b := t.buffers[n]; target == nil || b.bytes < target.bytes {
			target = b
		}
	}
	if target == nil {
		return
	}
	src := holders[0]
	if t.topo != nil {
		bestD := t.topo.Distance(src, target.name)
		for _, h := range holders[1:] {
			if d := t.topo.Distance(h, target.name); d < bestD {
				src, bestD = h, d
			}
		}
	}
	e := t.buffers[src].entries[key]
	if e == nil {
		return
	}
	val, stored := e.val, e.stored
	var path []*sim.Resource
	if t.topo != nil {
		path = t.topo.PeerPathByName(src, target.name)
	}
	t.promoting[key] = true
	dst := target.name
	p.Kernel().Go("ioengine/promote", func(pp *sim.Proc) {
		if len(val) > 0 && len(path) > 0 {
			pp.Transfer(float64(len(val)), path...)
		}
		t.mu.Lock()
		delete(t.promoting, key)
		if !t.holdsLocked(key, dst) {
			t.admitLocked(dst, key, val, stored)
			if t.holdsLocked(key, dst) {
				t.stats.Promotions++
			}
		}
		t.mu.Unlock()
	})
}

// Stats snapshots the tier counters plus current residency.
func (t *Tier) Stats() TierStats {
	if t == nil {
		return TierStats{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := t.stats
	for _, b := range t.buffers {
		out.ResidentBytes += b.bytes
		out.ResidentEntries += int64(len(b.entries))
	}
	return out
}

// RegisterObs mirrors the tier counters into r at every export under
// ioengine/tier_*, and derives the per-level ioengine/cache_hit_ratio
// series (level=local|peer|ost — each level's share of tier-arbitrated
// reads; the three sum to 1 once any read happened).
func (t *Tier) RegisterObs(r *obs.Registry, labels ...obs.Label) {
	if t == nil || r == nil {
		return
	}
	level := func(l string) []obs.Label {
		out := append([]obs.Label{}, labels...)
		return append(out, obs.L("level", l))
	}
	localReads := r.Counter("ioengine/tier_reads_total", level("local")...)
	peerReads := r.Counter("ioengine/tier_reads_total", level("peer")...)
	ostReads := r.Counter("ioengine/tier_reads_total", level("ost")...)
	localBytes := r.Counter("ioengine/tier_bytes_total", level("local")...)
	peerBytes := r.Counter("ioengine/tier_bytes_total", level("peer")...)
	ostBytes := r.Counter("ioengine/tier_bytes_total", level("ost")...)
	admits := r.Counter("ioengine/tier_admits_total", labels...)
	evictions := r.Counter("ioengine/tier_evictions_total", labels...)
	promotions := r.Counter("ioengine/tier_promotions_total", labels...)
	resBytes := r.Gauge("ioengine/tier_resident_bytes", labels...)
	resEntries := r.Gauge("ioengine/tier_resident_entries", labels...)
	localRatio := r.Gauge("ioengine/cache_hit_ratio", level("local")...)
	peerRatio := r.Gauge("ioengine/cache_hit_ratio", level("peer")...)
	ostRatio := r.Gauge("ioengine/cache_hit_ratio", level("ost")...)
	r.AddCollector(func() {
		st := t.Stats()
		localReads.Set(float64(st.LocalHits))
		peerReads.Set(float64(st.PeerHits))
		ostReads.Set(float64(st.OSTReads))
		localBytes.Set(float64(st.LocalBytes))
		peerBytes.Set(float64(st.PeerBytes))
		ostBytes.Set(float64(st.OSTBytes))
		admits.Set(float64(st.Admits))
		evictions.Set(float64(st.Evictions))
		promotions.Set(float64(st.Promotions))
		resBytes.Set(float64(st.ResidentBytes))
		resEntries.Set(float64(st.ResidentEntries))
		total := float64(st.LocalHits + st.PeerHits + st.OSTReads)
		if total > 0 {
			localRatio.Set(float64(st.LocalHits) / total)
			peerRatio.Set(float64(st.PeerHits) / total)
			ostRatio.Set(float64(st.OSTReads) / total)
		} else {
			localRatio.Set(0)
			peerRatio.Set(0)
			ostRatio.Set(0)
		}
	})
}

package ioengine

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"scidp/internal/sim"
)

// stubTopo is a two-rack topology over nodes n0..n3 (n0,n1 in rack a;
// n2,n3 in rack b) with free transfer paths.
type stubTopo struct{}

func (stubTopo) PeerPathByName(src, dst string) []*sim.Resource { return nil }

func (stubTopo) Distance(src, dst string) int {
	if src == dst {
		return 0
	}
	rack := func(n string) string {
		if n == "n0" || n == "n1" {
			return "a"
		}
		return "b"
	}
	if rack(src) == rack(dst) {
		return 1
	}
	return 3
}

func tierNodes(t *Tier, names ...string) {
	for _, n := range names {
		t.Register(n, t.cfg.NodeBytes)
	}
}

// residency returns a deterministic dump of every buffer's keys — the
// comparison artifact for the same-seed determinism test.
func residency(t *Tier) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := ""
	names := append([]string{}, t.names...)
	sort.Strings(names)
	for _, n := range names {
		keys := make([]string, 0, len(t.buffers[n].entries))
		for k := range t.buffers[n].entries {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		out += fmt.Sprintf("%s:%v;", n, keys)
	}
	return out
}

// TestTierCapacityNeverExceeded drives both policies with a seeded
// random admit stream and asserts no buffer ever exceeds its capacity.
func TestTierCapacityNeverExceeded(t *testing.T) {
	for _, policy := range []string{PolicyLRU, PolicyCost} {
		t.Run(policy, func(t *testing.T) {
			const capBytes = 1000
			tier := NewTier(TierConfig{NodeBytes: capBytes, Policy: policy, PromoteThreshold: -1}, stubTopo{}, nil)
			tierNodes(tier, "n0", "n1", "n2", "n3")
			rng := rand.New(rand.NewSource(7))
			for i := 0; i < 5000; i++ {
				node := fmt.Sprintf("n%d", rng.Intn(4))
				key := fmt.Sprintf("k%d", rng.Intn(200))
				size := 1 + rng.Intn(400)
				stored := 1 + rng.Intn(size)
				tier.Admit(nil, node, key, make([]byte, size), int64(stored))
				tier.mu.Lock()
				for _, b := range tier.buffers {
					if b.bytes > b.cap {
						tier.mu.Unlock()
						t.Fatalf("op %d: buffer %s holds %d > cap %d", i, b.name, b.bytes, b.cap)
					}
					var sum int64
					for _, e := range b.entries {
						sum += int64(len(e.val))
					}
					if sum != b.bytes {
						tier.mu.Unlock()
						t.Fatalf("op %d: buffer %s accounting %d != actual %d", i, b.name, b.bytes, sum)
					}
				}
				tier.mu.Unlock()
			}
			st := tier.Stats()
			if st.Admits == 0 || st.Evictions == 0 {
				t.Fatalf("stream did not exercise admit+evict: %+v", st)
			}
		})
	}
}

// TestTierVictimDeterminism replays one seeded op sequence through two
// tiers and requires byte-identical residency and stats — victim
// selection must not depend on map iteration order.
func TestTierVictimDeterminism(t *testing.T) {
	for _, policy := range []string{PolicyLRU, PolicyCost} {
		t.Run(policy, func(t *testing.T) {
			run := func() (string, TierStats) {
				tier := NewTier(TierConfig{NodeBytes: 600, Policy: policy, PromoteThreshold: -1}, stubTopo{}, nil)
				tierNodes(tier, "n0", "n1")
				rng := rand.New(rand.NewSource(42))
				for i := 0; i < 2000; i++ {
					node := fmt.Sprintf("n%d", rng.Intn(2))
					key := fmt.Sprintf("k%d", rng.Intn(60))
					if rng.Intn(3) == 0 {
						tier.PeekLocal(node, key)
						continue
					}
					size := 50 + rng.Intn(200)
					tier.Admit(nil, node, key, make([]byte, size), int64(size/2))
				}
				return residency(tier), tier.Stats()
			}
			res1, st1 := run()
			res2, st2 := run()
			if res1 != res2 {
				t.Fatalf("residency diverged:\n%s\n%s", res1, res2)
			}
			if st1 != st2 {
				t.Fatalf("stats diverged: %+v vs %+v", st1, st2)
			}
		})
	}
}

// TestTierCostOracle checks the cost-aware victim against a brute-force
// oracle on small inputs: the evicted key must be the argmin of
// CostScore (ties to the smaller key).
func TestTierCostOracle(t *testing.T) {
	type entry struct {
		key    string
		size   int
		stored int
	}
	cases := [][]entry{
		{{"a", 300, 10}, {"b", 300, 290}, {"c", 300, 150}},
		{{"a", 100, 100}, {"b", 400, 20}, {"c", 200, 200}, {"d", 250, 5}},
		{{"x", 200, 50}, {"y", 200, 50}, {"z", 500, 499}},
	}
	for ci, entries := range cases {
		var capSum int64
		for _, e := range entries {
			capSum += int64(e.size)
		}
		tier := NewTier(TierConfig{NodeBytes: capSum, Policy: PolicyCost, PromoteThreshold: -1}, stubTopo{}, nil)
		tierNodes(tier, "n0")
		for _, e := range entries {
			tier.Admit(nil, "n0", e.key, make([]byte, e.size), int64(e.stored))
		}
		// Oracle: rank every resident entry (and the newcomer) by score.
		all := append([]entry{}, entries...)
		newcomer := entry{key: "new", size: 50, stored: 200}
		all = append(all, newcomer)
		victim := all[0]
		best := CostScore(int64(all[0].stored), int64(all[0].size), 0)
		for _, e := range all[1:] {
			s := CostScore(int64(e.stored), int64(e.size), 0)
			if s < best || (s == best && e.key < victim.key) {
				victim, best = e, s
			}
		}
		tier.Admit(nil, "n0", newcomer.key, make([]byte, newcomer.size), int64(newcomer.stored))
		if _, held := tier.PeekLocal("n0", victim.key); held {
			t.Fatalf("case %d: oracle victim %q still resident", ci, victim.key)
		}
		for _, e := range all {
			if e.key == victim.key {
				continue
			}
			if _, held := tier.PeekLocal("n0", e.key); !held {
				t.Fatalf("case %d: non-victim %q evicted (oracle says %q)", ci, e.key, victim.key)
			}
		}
	}
}

// TestTierQueueDepthShiftsVictim pins the policy's congestion
// sensitivity: the same pair of entries yields a different victim at
// queue depth 0 (decode cost dominates — the decode-heavy entry is
// dear, the transfer-heavy one goes) than at depth 8 (congested OSTs
// make the transfer-heavy entry dear instead).
func TestTierQueueDepthShiftsVictim(t *testing.T) {
	run := func(depth float64) (decodeHeavyHeld, transferHeavyHeld bool) {
		tier := NewTier(TierConfig{NodeBytes: 350, Policy: PolicyCost, PromoteThreshold: -1},
			stubTopo{}, func() float64 { return depth })
		tierNodes(tier, "n0")
		// decode-heavy: inflates 6x (stored 50 -> 300 decoded).
		tier.Admit(nil, "n0", "decode-heavy", make([]byte, 300), 50)
		// transfer-heavy: barely compresses (stored 100 -> 50 decoded).
		tier.Admit(nil, "n0", "transfer-heavy", make([]byte, 50), 100)
		// The pinned entry overflows the buffer and always scores
		// highest, forcing one of the first two out.
		tier.Admit(nil, "n0", "pinned", make([]byte, 50), 300)
		_, a := tier.PeekLocal("n0", "decode-heavy")
		_, b := tier.PeekLocal("n0", "transfer-heavy")
		return a, b
	}
	if dec, tr := run(0); !dec || tr {
		t.Fatalf("depth 0: want transfer-heavy evicted (decode cost dominates), got decode=%v transfer=%v", dec, tr)
	}
	if dec, tr := run(8); dec || !tr {
		t.Fatalf("depth 8: want decode-heavy evicted (congestion dominates), got decode=%v transfer=%v", dec, tr)
	}
}

// TestTierPeerFetchAndPromotion runs the cooperative path on a kernel:
// a peer hit serves another node's entry, installs a local copy, and
// repeated access promotes the key to an extra replica.
func TestTierPeerFetchAndPromotion(t *testing.T) {
	k := sim.NewKernel()
	tier := NewTier(TierConfig{NodeBytes: 1 << 20, PromoteThreshold: 2, MaxReplicas: 3}, stubTopo{}, nil)
	tierNodes(tier, "n0", "n1", "n2", "n3")
	val := make([]byte, 100)
	k.Go("driver", func(p *sim.Proc) {
		tier.Admit(p, "n0", "hot", val, 50)
		if _, ok := tier.Read(p, "n2", "missing"); ok {
			t.Error("read of unknown key must miss")
		}
		got, ok := tier.Read(p, "n2", "hot")
		if !ok || len(got) != len(val) {
			t.Errorf("peer read failed: ok=%v len=%d", ok, len(got))
		}
		if _, ok := tier.PeekLocal("n2", "hot"); !ok {
			t.Error("peer fetch must install a local copy")
		}
		// Drive accesses past the threshold so a promotion fires.
		for i := 0; i < 4; i++ {
			tier.Read(p, "n2", "hot")
		}
	})
	k.Run()
	st := tier.Stats()
	if st.PeerHits != 1 {
		t.Fatalf("want exactly 1 peer hit, got %+v", st)
	}
	if st.LocalHits < 4 {
		t.Fatalf("repeat reads should hit locally: %+v", st)
	}
	if st.Promotions == 0 {
		t.Fatalf("hot key should have been promoted: %+v", st)
	}
	holders := len(tier.dir["hot"])
	if holders < 3 {
		t.Fatalf("want >= 3 holders after promotion, got %d", holders)
	}
}

// TestTierNearestHolderWins checks the directory pick prefers the
// rack-local holder over a cross-rack one.
func TestTierNearestHolderWins(t *testing.T) {
	tier := NewTier(TierConfig{NodeBytes: 1 << 20, PromoteThreshold: -1}, stubTopo{}, nil)
	tierNodes(tier, "n0", "n1", "n2", "n3")
	tier.Admit(nil, "n2", "k", make([]byte, 10), 5) // cross-rack from n1
	tier.Admit(nil, "n0", "k", make([]byte, 10), 5) // rack-local to n1
	holder, _, _ := func() (string, []byte, int64) {
		tier.mu.Lock()
		defer tier.mu.Unlock()
		return tier.pickHolderLocked("n1", "k")
	}()
	if holder != "n0" {
		t.Fatalf("want rack-local holder n0, got %q", holder)
	}
}

// TestTierNilSafe pins the nil-receiver contract every call site relies
// on: all methods no-op or miss on a nil tier.
func TestTierNilSafe(t *testing.T) {
	var tier *Tier
	if _, ok := tier.Read(nil, "n", "k"); ok {
		t.Fatal("nil tier must miss")
	}
	if _, ok := tier.PeekLocal("n", "k"); ok {
		t.Fatal("nil tier must miss")
	}
	tier.Admit(nil, "n", "k", []byte{1}, 1)
	tier.MissOST(1)
	tier.Register("n", 1)
	tier.RegisterObs(nil)
	if st := tier.Stats(); st != (TierStats{}) {
		t.Fatalf("nil tier stats must be zero: %+v", st)
	}
}

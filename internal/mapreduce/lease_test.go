package mapreduce

import (
	"fmt"
	"testing"

	"scidp/internal/obs"
	"scidp/internal/sim"
)

// stubLease is a minimal SlotLease for engine tests: a fixed grant,
// token bookkeeping, and an explicit kill switch the test flips from a
// kernel event.
type stubLease struct {
	granted int
	used    int
	next    uint64
	held    []uint64
	killed  map[uint64]bool
	maxUsed int
	kills   int
}

func newStubLease(granted int) *stubLease {
	return &stubLease{granted: granted, killed: map[uint64]bool{}}
}

func (l *stubLease) Available() bool { return l.used < l.granted }

func (l *stubLease) Acquire() uint64 {
	if l.used >= l.granted {
		panic("stubLease: acquire over grant")
	}
	l.next++
	l.used++
	if l.used > l.maxUsed {
		l.maxUsed = l.used
	}
	l.held = append(l.held, l.next)
	return l.next
}

func (l *stubLease) Release(token uint64) {
	l.used--
	delete(l.killed, token)
	for i, tok := range l.held {
		if tok == token {
			l.held = append(l.held[:i], l.held[i+1:]...)
			break
		}
	}
}

func (l *stubLease) Killed(token uint64) bool { return l.killed[token] }

// killNewest revokes the most recently acquired live token.
func (l *stubLease) killNewest() {
	for i := len(l.held) - 1; i >= 0; i-- {
		if !l.killed[l.held[i]] {
			l.killed[l.held[i]] = true
			l.kills++
			return
		}
	}
}

func kvString(kvs []KV) string {
	s := ""
	for _, kv := range kvs {
		s += fmt.Sprintf("%s=%v;", kv.K, kv.V)
	}
	return s
}

// TestSlotLeaseBoundsConcurrency runs a job on a 2x2 cluster whose lease
// grants a single slot: the engine must never hold more than one token
// at a time, and the output must match the unleased run exactly.
func TestSlotLeaseBoundsConcurrency(t *testing.T) {
	mkInput := func() *memInput {
		return linesInput(1.0,
			[]string{"a b a", "c"}, []string{"b b"}, []string{"a c c"},
			[]string{"d a"}, []string{"c d"}, []string{"b d d"},
		)
	}
	k0 := sim.NewKernel()
	base := runJob(t, k0, wordCountJob(k0, mkInput(), 2, 2, 2))

	k := sim.NewKernel()
	job := wordCountJob(k, mkInput(), 2, 2, 2)
	lease := newStubLease(1)
	job.Lease = lease
	res := runJob(t, k, job)

	if lease.maxUsed != 1 {
		t.Errorf("max concurrent tokens = %d, want 1", lease.maxUsed)
	}
	if lease.used != 0 {
		t.Errorf("tokens leaked: %d still held", lease.used)
	}
	if kvString(res.Output) != kvString(base.Output) {
		t.Errorf("leased output %q != unleased %q", kvString(res.Output), kvString(base.Output))
	}
	if res.Elapsed() <= base.Elapsed() {
		t.Errorf("1-slot run (%.2fs) should be slower than 4-slot run (%.2fs)",
			res.Elapsed(), base.Elapsed())
	}
}

// TestLeasePreemptionRequeues revokes a running attempt's token mid-map:
// the attempt must abandon its slot, requeue without consuming the
// MaxAttempts budget (the job runs with MaxAttempts=1), and the job must
// still produce the unleased run's exact output.
func TestLeasePreemptionRequeues(t *testing.T) {
	mkInput := func() *memInput {
		return linesInput(2.0,
			[]string{"a b a", "c"}, []string{"b b"}, []string{"a c c"}, []string{"d a"},
		)
	}
	k0 := sim.NewKernel()
	base := runJob(t, k0, wordCountJob(k0, mkInput(), 2, 2, 1))

	k := sim.NewKernel()
	reg := obs.New()
	reg.SetClock(k)
	job := wordCountJob(k, mkInput(), 2, 2, 1)
	job.Obs = reg
	lease := newStubLease(4)
	job.Lease = lease
	// Tasks start at 0.1 (startup) and Charge 2.0s in 0.25s quanta; a
	// kill at 0.6 lands mid-Charge and is seen at the next quantum edge.
	k.After(0.6, func() { lease.killNewest() })
	res := runJob(t, k, job)

	if lease.kills != 1 {
		t.Fatalf("kills = %d, want 1", lease.kills)
	}
	if got := reg.Counter("mr/tasks_preempted_total", obs.L("phase", "map")).Value(); got != 1 {
		t.Errorf("mr/tasks_preempted_total = %v, want 1", got)
	}
	if lease.used != 0 {
		t.Errorf("tokens leaked: %d still held", lease.used)
	}
	if kvString(res.Output) != kvString(base.Output) {
		t.Errorf("preempted output %q != baseline %q", kvString(res.Output), kvString(base.Output))
	}
	// The preempted attempt re-ran: one more map attempt than tasks,
	// with zero failures (preemption is not a task failure).
	attempts := reg.Counter("mr/task_attempts_total", obs.L("phase", "map")).Value()
	if attempts != float64(len(res.MapStats))+1 {
		t.Errorf("map attempts = %v, want %d", attempts, len(res.MapStats)+1)
	}
	if fails := reg.Counter("mr/task_failures_total", obs.L("phase", "map")).Value(); fails != 0 {
		t.Errorf("map failures = %v, want 0", fails)
	}
}

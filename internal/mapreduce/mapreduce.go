// Package mapreduce is a Hadoop-like MapReduce engine running under the
// simulation kernel. It provides the pieces SciDP plugs into: an
// InputFormat abstraction (SciDP's contribution is, concretely, a new
// input format whose splits are dummy blocks resolved against a PFS),
// locality-aware slot scheduling over a cluster, map output partitioning,
// a streaming sort-merge shuffle that charges the cluster fabric (sorted
// per-map runs, k-way merged at the reducer — see merge.go), and reduce
// aggregation.
//
// User map/reduce functions are real Go code operating on real data; they
// charge modeled compute time through TaskContext.Charge / Phase, and all
// I/O they perform through the simulated file systems charges virtual
// time automatically.
//
// The engine runs the map wave to completion before starting reducers
// (no slow-start); the paper's workloads are map-dominated, and the
// within-wave overlap of one task's PFS reads with other tasks' compute —
// the effect SciDP exploits — is fully modeled.
package mapreduce

import (
	"errors"
	"fmt"
	"sort"

	"scidp/internal/cluster"
	"scidp/internal/obs"
	"scidp/internal/sim"
)

// SlotLease gates a job's task slots from the outside: a multi-tenant
// scheduler grants each running job a slot budget and can shrink it
// mid-flight (preemption). The engine consults the lease from worker
// processes on the kernel thread, so implementations need no locking but
// must be deterministic — state may change only from kernel events.
//
// A nil lease (the default) leaves the engine exactly as before: every
// cluster slot belongs to the job.
type SlotLease interface {
	// Available reports whether the job may start another task attempt
	// right now. Workers finding no slot back off and re-ask.
	Available() bool
	// Acquire takes one slot and returns a token identifying the
	// attempt. The engine calls it only immediately after a true
	// Available, with no yield in between.
	Acquire() uint64
	// Release returns the attempt's slot, whatever the attempt's fate
	// (commit, failure, or preemption).
	Release(token uint64)
	// Killed reports whether the grant shrank out from under this
	// attempt. The engine polls it between compute quanta and abandons
	// the attempt (ErrPreempted) when true.
	Killed(token uint64) bool
}

// ErrPreempted marks a task attempt abandoned because its slot lease was
// revoked mid-run. Preempted attempts requeue without consuming the
// MaxAttempts budget — preemption is the scheduler's doing, not the
// task's.
var ErrPreempted = errors.New("mapreduce: task attempt preempted")

// preemptSignal is the panic payload Charge raises when the attempt's
// lease token is killed mid-compute; runBody recovers it into
// ErrPreempted. Any other panic passes through untouched.
type preemptSignal struct{}

// preemptQuantum is the virtual-time slice between lease-revocation
// checks inside a leased task's Charge, bounding how long a preempted
// attempt keeps holding its slot.
const preemptQuantum = 0.25

// KV is one key/value pair.
type KV struct {
	// K is the key.
	K string
	// V is the value.
	V any
}

// Split is one unit of map input.
type Split struct {
	// Label names the split for stats ("plot_18_00_00.nc/QR#3").
	Label string
	// Payload carries whatever the InputFormat needs to read the split.
	Payload any
	// Length is the advertised byte size (drives scheduling stats only).
	Length int64
	// Locations are preferred host names (empty = no locality, schedule
	// anywhere — the case for SciDP's dummy blocks).
	Locations []string
}

// InputFormat produces splits and reads their records.
type InputFormat interface {
	// Splits enumerates the job's input splits; p charges the metadata
	// operations this requires (NameNode RPCs, PFS stats).
	Splits(p *sim.Proc) ([]*Split, error)
	// ForEach reads one split and invokes fn per record. I/O goes
	// through tc's process so virtual time is charged where the task
	// runs.
	ForEach(tc *TaskContext, s *Split, fn func(key string, value any) error) error
}

// SplitSource yields a job's splits one at a time, so a million-split
// job never materializes its whole split table: the engine pulls splits
// lazily into a bounded scheduling window (Job.SplitWindow) as task
// slots drain it.
type SplitSource interface {
	// Next returns the next split, or (nil, nil) once the source is
	// exhausted. p is the simulated process doing the pull — the job
	// driver for the initial window, then whichever task slot drains
	// the queue below its refill mark — so any metadata cost the source
	// models lands on the puller's virtual timeline.
	Next(p *sim.Proc) (*Split, error)
}

// StreamingInput is an optional InputFormat extension: a format that can
// enumerate splits incrementally implements it and the engine will pull
// from the source instead of calling Splits, keeping split and task
// state O(SplitWindow) instead of O(total splits).
type StreamingInput interface {
	InputFormat
	// SplitSource opens the incremental split stream; p charges
	// whatever up-front metadata the format needs.
	SplitSource(p *sim.Proc) (SplitSource, error)
}

// sliceSplits adapts an eagerly-materialized split slice to SplitSource.
// It owns a private copy of the slice header array: Next releases each
// entry as consumed so huge split tables shed memory as the job drains
// them, and that must not scribble nils into the slice the InputFormat
// returned — formats may hand out a long-lived slice they reuse across
// Run calls.
type sliceSplits struct {
	splits []*Split
	next   int
}

func newSliceSplits(splits []*Split) *sliceSplits {
	own := make([]*Split, len(splits))
	copy(own, splits)
	return &sliceSplits{splits: own}
}

func (ss *sliceSplits) Next(*sim.Proc) (*Split, error) {
	if ss.next >= len(ss.splits) {
		return nil, nil
	}
	s := ss.splits[ss.next]
	ss.splits[ss.next] = nil // release as consumed
	ss.next++
	return s, nil
}

// MapFunc consumes one record and emits intermediate pairs via tc.Emit.
type MapFunc func(tc *TaskContext, key string, value any) error

// ReduceFunc consumes one grouped key and emits final pairs via tc.Emit.
type ReduceFunc func(tc *TaskContext, key string, values []any) error

// Job describes one MapReduce execution.
type Job struct {
	// Name labels the job in process names and errors.
	Name string
	// Cluster is where tasks run.
	Cluster *cluster.Cluster
	// SlotsPerNode is the concurrent task count per node (the paper runs
	// 8). Zero takes each node's slot capacity.
	SlotsPerNode int
	// Input produces the splits.
	Input InputFormat
	// Map is the map function (required).
	Map MapFunc
	// Reduce is the reduce function; nil runs a map-only job whose map
	// outputs become the job output.
	Reduce ReduceFunc
	// Combine, when set, folds each map task's output per key before the
	// shuffle (a Hadoop combiner) — same signature as Reduce, must be
	// associative and emit pairs of the same shape it consumes.
	Combine ReduceFunc
	// NumReducers is the reduce task count (default 1 when Reduce is
	// set).
	NumReducers int
	// SplitWindow bounds how many splits are materialized as schedulable
	// tasks at once (default 1024). With a StreamingInput the engine
	// pulls more splits only as the window drains, so a million-split
	// job holds O(SplitWindow) task state; with a plain InputFormat the
	// split slice exists anyway and the window only bounds queue depth.
	SplitWindow int
	// TaskStartup is the fixed per-task launch cost in seconds (YARN
	// container + JVM spin-up; default 1.0).
	TaskStartup float64
	// PairBytes sizes an intermediate pair for shuffle accounting
	// (default: len(key) + 16).
	PairBytes func(kv KV) int64
	// Partition routes a key to a reducer (default: FNV hash).
	Partition func(key string, reducers int) int
	// MaxAttempts bounds task attempts — retries after failure and
	// speculative backups both draw from the same budget (default 1 =
	// no retry, no speculation).
	MaxAttempts int
	// Faults, when set, is consulted once per task attempt and can fail
	// the attempt (after its startup cost) or slow its modeled compute.
	// The chaos injector satisfies this; tests can use any stub.
	Faults TaskFaults
	// Speculation enables backup attempts for straggling map tasks.
	// Reduce tasks never speculate: their bodies write job output to the
	// shared file systems directly, so duplicate attempts would not be
	// idempotent. See Speculation for the policy knobs.
	Speculation Speculation
	// Obs, when non-nil, receives the job's spans (job -> phase -> task,
	// with tasks placed on node/slot tracks) and metrics: task counts,
	// attempts and failures, task and phase duration histograms, shuffle
	// bytes, and a registry view of TaskContext.Counter. Nil costs one
	// check per site.
	Obs *obs.Registry
	// Lease, when non-nil, externally gates this job's slot usage: a
	// multi-tenant scheduler grants and revokes slots while the job
	// runs. Workers idle when the lease has no free slot, and a running
	// attempt whose token is killed abandons work at the next compute
	// quantum and requeues without consuming its MaxAttempts budget.
	// Nil = the job owns every cluster slot (the historical behavior).
	Lease SlotLease
}

// TaskFaults is the engine's single fault-injection point, unifying what
// used to be an ad-hoc per-job fail hook with the chaos subsystem. It is
// consulted once per task attempt; a non-nil error fails the attempt
// after its startup cost (the container launched, then the task died),
// and a slowdown factor > 1 stretches the attempt's startup and charged
// compute — a straggler. internal/chaos's Injector satisfies this
// structurally (chaos does not import mapreduce), as can any test stub.
type TaskFaults interface {
	TaskFault(phase string, task, attempt int) (err error, slowdown float64)
}

// Speculation is the backup-attempt policy for straggling map tasks,
// modeled on Hadoop speculative execution: once enough tasks have
// finished to estimate the phase's duration distribution, any running
// task older than Multiplier × the Quantile gets one backup attempt on a
// free slot; the first attempt to finish commits, the other's work is
// discarded. All timing lives on the virtual clock, so speculation is
// deterministic like everything else.
type Speculation struct {
	// Quantile of the completed-task duration distribution that anchors
	// the slowness threshold, e.g. 0.75. Zero disables speculation.
	Quantile float64
	// Multiplier scales the quantile into the threshold (default 1).
	Multiplier float64
	// MinCompleted is how many tasks must complete before the
	// distribution is trusted (default 1).
	MinCompleted int
	// Interval is the monitor's scan period in virtual seconds
	// (default 0.5).
	Interval float64
}

func (s Speculation) enabled() bool { return s.Quantile > 0 }

// taskSecondsBuckets covers task and phase durations from 1/8 s to ~17
// virtual minutes, doubling per bucket.
var taskSecondsBuckets = obs.ExpBuckets(0.125, 2, 14)

// TaskStats records one task's timing.
type TaskStats struct {
	// Label is the split label (or "reduce-N").
	Label string
	// Node is where the task ran.
	Node string
	// Start and End are virtual times.
	Start, End float64
	// Phases are named sub-phase durations (Read/Convert/Plot in the
	// paper's Figure 7), in the order first charged.
	Phases []Phase
	// Attempt is the attempt number that succeeded (1-based).
	Attempt int
}

// Phase is a named duration within a task.
type Phase struct {
	// Name is the phase label.
	Name string
	// Seconds is the accumulated virtual duration.
	Seconds float64
}

// Duration returns the task's total virtual time.
func (ts *TaskStats) Duration() float64 { return ts.End - ts.Start }

// Result is a completed job's output.
type Result struct {
	// Output holds the final pairs sorted by key then insertion order.
	Output []KV
	// Counters are the job's accumulated named counters.
	Counters map[string]int64
	// MapStats has one entry per map task in completion order.
	MapStats []TaskStats
	// ReduceStats has one entry per reduce task.
	ReduceStats []TaskStats
	// Start and End are the job's virtual time bounds.
	Start, End float64
	// ShuffleBytes is the total intermediate bytes moved between nodes.
	ShuffleBytes int64
}

// Elapsed returns the job's virtual duration.
func (r *Result) Elapsed() float64 { return r.End - r.Start }

// PhaseMean averages a named phase across map tasks (0 when absent).
func (r *Result) PhaseMean(name string) float64 {
	var sum float64
	var n int
	for i := range r.MapStats {
		for _, ph := range r.MapStats[i].Phases {
			if ph.Name == name {
				sum += ph.Seconds
				n++
			}
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// TaskContext is handed to map and reduce functions.
type TaskContext struct {
	job      *Job
	proc     *sim.Proc
	node     *cluster.Node
	stats    *TaskStats
	emit     func(KV)
	result   *Result
	counters map[string]int64
	// slow stretches modeled compute (startup + Charge) for straggler
	// injection; always >= 1.
	slow float64
	// lease/token identify this attempt's slot grant; a nil lease means
	// the job owns the cluster and Charge never checks for revocation.
	lease SlotLease
	token uint64
}

// Proc returns the task's simulated process (for file-system calls).
func (tc *TaskContext) Proc() *sim.Proc { return tc.proc }

// Node returns the machine the task runs on.
func (tc *TaskContext) Node() *cluster.Node { return tc.node }

// Now returns the current virtual time.
func (tc *TaskContext) Now() float64 { return tc.proc.Now() }

// Emit produces an intermediate (map) or final (reduce) pair.
func (tc *TaskContext) Emit(key string, value any) { tc.emit(KV{K: key, V: value}) }

// Charge blocks the task for d seconds of modeled compute and attributes
// it to the named phase. An injected straggler slowdown stretches the
// sleep (and the attributed duration — the phase histogram should show
// the straggler as slow, or speculation could never spot it).
func (tc *TaskContext) Charge(phase string, d float64) {
	d *= tc.slow
	if tc.lease == nil || d <= 0 {
		tc.proc.Sleep(d)
		tc.addPhase(phase, d)
		return
	}
	// Leased attempts sleep in preemptQuantum slices, checking between
	// slices whether the scheduler killed this attempt's token; a killed
	// attempt books the compute it actually spent, then unwinds via the
	// preemption panic that runBody converts to ErrPreempted.
	var charged float64
	for remaining := d; remaining > 0; remaining -= preemptQuantum {
		q := min(preemptQuantum, remaining)
		tc.proc.Sleep(q)
		charged += q
		if tc.lease.Killed(tc.token) {
			tc.addPhase(phase, charged)
			panic(preemptSignal{})
		}
	}
	tc.addPhase(phase, charged)
}

// Compute runs fn on the kernel's data plane (sim.ComputePool) and
// blocks the task — in real time only, zero virtual time — until it
// returns. Use it around the pure byte work of a map or reduce function
// (parsing, scanning, sorting); model the work's cost separately with
// Charge. fn must not call Charge, Phase, or any simulation API, and
// must not touch state shared with other tasks. Emit and Counter are
// safe inside fn because the task itself stays parked until fn returns.
// Without a pool on the kernel, fn runs inline — same result, serially.
func (tc *TaskContext) Compute(fn func()) {
	tc.proc.Await(tc.proc.Compute(fn))
}

// Phase runs fn and attributes its virtual duration to the named phase —
// use it around I/O so transfer time lands in the right bucket.
func (tc *TaskContext) Phase(name string, fn func()) {
	start := tc.proc.Now()
	fn()
	tc.addPhase(name, tc.proc.Now()-start)
}

func (tc *TaskContext) addPhase(name string, d float64) {
	if tc.job.Obs != nil {
		tc.job.Obs.Histogram("mr/task_phase_seconds", taskSecondsBuckets, obs.L("phase", name)).Observe(d)
	}
	for i := range tc.stats.Phases {
		if tc.stats.Phases[i].Name == name {
			tc.stats.Phases[i].Seconds += d
			return
		}
	}
	tc.stats.Phases = append(tc.stats.Phases, Phase{Name: name, Seconds: d})
}

// Counter adds delta to the named job counter. Increments accumulate
// per-attempt and merge into the job totals only when the attempt
// commits, so failed attempts and discarded speculative losers never
// pollute the counts (Hadoop's failed-attempt-counter semantics). With
// Job.Obs attached the committed increments land in the registry series
// mr/counter_total{job=..., name=...}, so user counters appear in the
// Prometheus dump alongside the engine's own metrics.
func (tc *TaskContext) Counter(name string, delta int64) {
	tc.counters[name] += delta
}

// commitCounters merges a winning attempt's counters into the job's, in
// sorted key order so registry series always register in the same order.
func (tc *TaskContext) commitCounters() {
	if len(tc.counters) == 0 {
		return
	}
	keys := make([]string, 0, len(tc.counters))
	for k := range tc.counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		tc.result.Counters[k] += tc.counters[k]
		if tc.job.Obs != nil {
			tc.job.Obs.Counter("mr/counter_total", obs.L("job", tc.job.Name), obs.L("name", k)).Add(float64(tc.counters[k]))
		}
	}
}

// task is one schedulable unit. The body does all its work against
// attempt-local state and returns a commit closure that publishes the
// result; with speculation two attempts can run the body concurrently
// (in virtual time), but exactly one commit ever runs — the first
// finisher's. A failed body returns a nil commit.
type task struct {
	index int
	label string
	locs  []string
	body  func(tc *TaskContext) (commit func(), err error)

	attempt  int     // attempts launched so far (retries + backups)
	inflight int     // attempts currently running
	started  float64 // virtual start of the oldest running attempt
	done     bool    // an attempt has committed
	// speculated marks that a backup attempt was (or is queued to be)
	// launched; at most one backup per task.
	speculated bool
	// pendingSpec marks the queued entry as a speculative backup so the
	// worker that pops it can label the attempt.
	pendingSpec bool
}

// runBody executes one task attempt's body, converting the preemption
// panic (raised by TaskContext.Charge when the attempt's lease token is
// killed mid-compute) into ErrPreempted; every other panic re-raises.
func runBody(t *task, tc *TaskContext) (commit func(), err error) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(preemptSignal); ok {
				commit, err = nil, ErrPreempted
				return
			}
			panic(r)
		}
	}()
	return t.body(tc)
}

// localityQueue hands tasks to workers, preferring node-local splits,
// then (when the cluster has topology) rack-local and zone-local ones.
// Workers that find only remote-preferring tasks back off briefly before
// widening to the next tier and finally stealing (delay scheduling), so
// locality holds whenever nearby slots exist without risking starvation
// when they do not.
//
// Entries are indexed per preferred host, rack, and zone, so every pick
// is O(1) amortized instead of a scan of the whole queue (hot at large
// task counts). Each push wraps the task in a qnode stamped with a FIFO
// sequence number; taking a node marks it consumed in every list that
// references it, and heads are trimmed lazily. Selection order within a
// tier matches the old first-match scan: the live candidate with the
// lowest sequence wins. Drained index keys are deleted and consumed
// entries are compacted out once they outnumber live ones, so a
// long-running windowed phase holds O(window) queue state instead of
// accumulating one entry per task ever pushed.
type localityQueue struct {
	seq    uint64
	live   int
	dead   int                 // consumed qnodes still referenced by lists
	fifo   []*qnode            // every live node, FIFO — pickAny's view
	byHost map[string][]*qnode // nodes preferring each host
	byRack map[string][]*qnode // nodes preferring any host in each rack
	byZone map[string][]*qnode // nodes preferring any host in each zone
	noPref []*qnode            // nodes with no preference, eligible anywhere
	topo   *cluster.Cluster    // nil when the cluster is flat
}

// qnode is one queued task entry. A task requeued after a failure (or
// for a speculative backup) gets a fresh qnode with a fresh sequence.
type qnode struct {
	t     *task
	seq   uint64
	taken bool
}

func newLocalityQueue(cl *cluster.Cluster) *localityQueue {
	q := &localityQueue{byHost: map[string][]*qnode{}}
	if cl != nil && cl.HasTopology() {
		q.topo = cl
		q.byRack = map[string][]*qnode{}
		q.byZone = map[string][]*qnode{}
	}
	return q
}

// qhead trims consumed entries off the list's front and returns the
// trimmed list plus its first live entry (nil when none remain).
func qhead(list []*qnode) ([]*qnode, *qnode) {
	for len(list) > 0 && list[0].taken {
		list = list[1:]
	}
	if len(list) == 0 {
		return list, nil
	}
	return list, list[0]
}

// mapHead trims consumed entries off m[key] and returns its first live
// entry. A drained key is deleted outright: the maps must not retain one
// slowly-growing entry per host, rack, and zone a task ever preferred.
func mapHead(m map[string][]*qnode, key string) *qnode {
	if m == nil {
		return nil
	}
	list, n := qhead(m[key])
	if n == nil {
		delete(m, key)
		return nil
	}
	m[key] = list
	return n
}

// take consumes n everywhere it is indexed and returns its task.
func (q *localityQueue) take(n *qnode) *task {
	n.taken = true
	q.live--
	q.dead++
	if q.dead > 256 && q.dead > 4*q.live {
		q.compact()
	}
	return n.t
}

// compact rewrites every list without its consumed entries. Amortized
// O(1) per take: it runs only once dead entries outnumber live ones 4:1,
// and resets the dead count to zero.
func (q *localityQueue) compact() {
	q.fifo = compactList(q.fifo)
	q.noPref = compactList(q.noPref)
	compactIndex(q.byHost)
	compactIndex(q.byRack)
	compactIndex(q.byZone)
	q.dead = 0
}

func compactList(list []*qnode) []*qnode {
	out := list[:0]
	for _, n := range list {
		if !n.taken {
			out = append(out, n)
		}
	}
	// Nil the tail so consumed nodes are collectable.
	tail := list[len(out):cap(list)]
	for i := range tail {
		tail[i] = nil
	}
	return out
}

func compactIndex(m map[string][]*qnode) {
	for key, list := range m {
		if trimmed := compactList(list); len(trimmed) == 0 {
			delete(m, key)
		} else {
			m[key] = trimmed
		}
	}
}

// pickLocal removes and returns the earliest-queued task that prefers
// nodeName or has no preference at all; nil when every queued task
// prefers another node.
func (q *localityQueue) pickLocal(nodeName string) *task {
	return q.pickPreferred(q.byHost, nodeName)
}

// pickRack is pickLocal one tier up: tasks preferring any host in the
// worker's rack.
func (q *localityQueue) pickRack(rack string) *task {
	return q.pickPreferred(q.byRack, rack)
}

// pickZone is the widest preference tier before an outright steal.
func (q *localityQueue) pickZone(zone string) *task {
	return q.pickPreferred(q.byZone, zone)
}

// pickPreferred races the earliest entry filed under key against the
// no-preference head, so selection stays global-FIFO among eligible
// candidates.
func (q *localityQueue) pickPreferred(m map[string][]*qnode, key string) *task {
	hn := mapHead(m, key)
	var nn *qnode
	q.noPref, nn = qhead(q.noPref)
	switch {
	case hn == nil && nn == nil:
		return nil
	case hn == nil:
		return q.take(nn)
	case nn == nil:
		return q.take(hn)
	case nn.seq < hn.seq:
		return q.take(nn)
	default:
		return q.take(hn)
	}
}

// pickAny removes and returns the head task regardless of preference.
func (q *localityQueue) pickAny() *task {
	var n *qnode
	q.fifo, n = qhead(q.fifo)
	if n == nil {
		return nil
	}
	return q.take(n)
}

func (q *localityQueue) empty() bool { return q.live == 0 }

func (q *localityQueue) push(t *task) {
	q.seq++
	n := &qnode{t: t, seq: q.seq}
	q.fifo = append(q.fifo, n)
	if len(t.locs) == 0 {
		q.noPref = append(q.noPref, n)
	} else {
		for _, h := range t.locs {
			q.byHost[h] = append(q.byHost[h], n)
		}
		if q.topo != nil {
			q.indexTopo(n, t.locs)
		}
	}
	q.live++
}

// indexTopo files n under the rack and zone of each preferred host.
// Within one push the only appends to a given rack/zone list are n
// itself, so a tail check dedups replicas sharing a domain without
// allocating a set.
func (q *localityQueue) indexTopo(n *qnode, locs []string) {
	for _, h := range locs {
		pl := q.topo.Place(h)
		if pl.Rack != "" && !endsWith(q.byRack[pl.Rack], n) {
			q.byRack[pl.Rack] = append(q.byRack[pl.Rack], n)
		}
		if pl.Zone != "" && !endsWith(q.byZone[pl.Zone], n) {
			q.byZone[pl.Zone] = append(q.byZone[pl.Zone], n)
		}
	}
}

func endsWith(list []*qnode, n *qnode) bool {
	return len(list) > 0 && list[len(list)-1] == n
}

// Run executes the job from within an existing simulated process (a
// driver), blocking in virtual time until the job completes.
func (j *Job) Run(p *sim.Proc) (*Result, error) {
	if j.Map == nil {
		return nil, fmt.Errorf("mapreduce: job %s has no map function", j.Name)
	}
	if j.Cluster == nil || len(j.Cluster.Nodes) == 0 {
		return nil, fmt.Errorf("mapreduce: job %s has no cluster", j.Name)
	}
	startup := j.TaskStartup
	if startup == 0 {
		startup = 1.0
	}
	partition := j.Partition
	if partition == nil {
		partition = defaultPartition
	}
	pairBytes := j.PairBytes
	if pairBytes == nil {
		pairBytes = func(kv KV) int64 { return int64(len(kv.K)) + 16 }
	}
	maxAttempts := j.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = 1
	}
	reducers := j.NumReducers
	if j.Reduce != nil && reducers <= 0 {
		reducers = 1
	}

	res := &Result{Counters: map[string]int64{}, Start: p.Now()}

	var shuffleBytes *obs.Counter
	if j.Obs != nil {
		j.Obs.Counter("mr/jobs_total").Inc()
		shuffleBytes = j.Obs.Counter("mr/shuffle_bytes_total")
		jobSpan := j.Obs.StartSpan("job:"+j.Name, "mapreduce", p.Span())
		jobSpan.SetTrack("driver")
		jobSpan.Arg("job", j.Name)
		if jobSpan != nil {
			prev := p.SetSpan(jobSpan)
			defer func() {
				p.SetSpan(prev)
				jobSpan.End()
			}()
		}
	}

	// Splits arrive through a SplitSource: a StreamingInput is pulled
	// lazily so the engine only ever holds O(SplitWindow) of them; any
	// other format materializes once via Splits and drains through the
	// same path.
	var src SplitSource
	if si, ok := j.Input.(StreamingInput); ok {
		s, err := si.SplitSource(p)
		if err != nil {
			return nil, fmt.Errorf("mapreduce: job %s: %w", j.Name, err)
		}
		src = s
	} else {
		splits, err := j.Input.Splits(p)
		if err != nil {
			return nil, fmt.Errorf("mapreduce: job %s: %w", j.Name, err)
		}
		src = newSliceSplits(splits)
	}
	window := j.SplitWindow
	if window <= 0 {
		window = 1024
	}

	// Intermediate state: per map task, per reducer sorted run. Each
	// bucket is sorted once — by sortRun at map completion, or by the
	// combiner pass — so reducers can k-way merge instead of re-sorting.
	// The slice grows as the feed mints tasks; map-only jobs skip it.
	type mapOut struct {
		node    *cluster.Node
		buckets [][]KV
		bytes   []int64
	}
	var outs []*mapOut
	var mapOnly []KV

	var firstErr error
	fail := func(err error) {
		if firstErr == nil {
			firstErr = err
		}
	}

	// Map tasks are minted on demand from the split source, at most
	// SplitWindow ahead of the slots draining them.
	nextMap := 0
	mapFeed := func(rp *sim.Proc) (*task, error) {
		s, err := src.Next(rp)
		if err != nil || s == nil {
			return nil, err
		}
		i := nextMap
		nextMap++
		if reducers > 0 {
			outs = append(outs, nil)
		}
		return &task{
			index: i,
			label: s.Label,
			locs:  s.Locations,
			body: func(tc *TaskContext) (func(), error) {
				mo := &mapOut{node: tc.node}
				if reducers > 0 {
					mo.buckets = make([][]KV, reducers)
					mo.bytes = make([]int64, reducers)
				}
				var localOnly []KV
				tc.emit = func(kv KV) {
					if reducers > 0 {
						b := partition(kv.K, reducers)
						bkt := mo.buckets[b]
						if bkt == nil {
							bkt = getKVBuf()
						}
						mo.buckets[b] = append(bkt, kv)
						mo.bytes[b] += pairBytes(kv)
					} else {
						localOnly = append(localOnly, kv)
					}
				}
				err := j.Input.ForEach(tc, s, func(key string, value any) error {
					return j.Map(tc, key, value)
				})
				if err != nil {
					return nil, err
				}
				if reducers > 0 {
					if j.Combine != nil {
						if err := combineBuckets(tc, j, mo.buckets, mo.bytes, pairBytes); err != nil {
							return nil, err
						}
					} else {
						// Buckets sort independently on the data plane:
						// fork-join within the task, and across map tasks in
						// flight at the same virtual instant the closures
						// overlap on the pool's workers.
						futs := make([]*sim.Future, 0, len(mo.buckets))
						for b := range mo.buckets {
							if bkt := mo.buckets[b]; len(bkt) > 1 {
								futs = append(futs, tc.proc.Compute(func() { sortRun(bkt) }))
							}
						}
						tc.proc.Await(futs...)
					}
				}
				return func() {
					if reducers > 0 {
						outs[i] = mo
					}
					mapOnly = append(mapOnly, localOnly...)
				}, nil
			},
		}, nil
	}
	j.runPhase(p, "map", mapFeed, window, startup, maxAttempts, &res.MapStats, res, fail)
	if firstErr != nil {
		return nil, fmt.Errorf("mapreduce: job %s: %w", j.Name, firstErr)
	}

	if reducers == 0 {
		res.Output = mapOnly
		sortKVs(res.Output)
		res.End = p.Now()
		return res, nil
	}

	// Reduce wave: reducer r pulls bucket r from every map task.
	nodes := j.Cluster.Nodes
	finalParts := make([][]KV, reducers)
	reduceTasks := make([]*task, reducers)
	for r := 0; r < reducers; r++ {
		r := r
		home := nodes[r%len(nodes)]
		reduceTasks[r] = &task{
			index: r,
			label: fmt.Sprintf("reduce-%d", r),
			locs:  []string{home.Name},
			body: func(tc *TaskContext) (func(), error) {
				// Shuffle: fetch this reducer's sorted runs, in map-task
				// order (the merge's stability tie-break). ShuffleBytes
				// accrues per attempt, not at commit — a retried reducer
				// really does re-fetch its runs over the fabric.
				var parts []sim.Part
				runs := make([][]KV, 0, len(outs))
				for _, mo := range outs {
					if mo == nil {
						continue
					}
					if len(mo.buckets[r]) > 0 {
						runs = append(runs, mo.buckets[r])
					}
					if mo.node != tc.node && mo.bytes[r] > 0 {
						parts = append(parts, sim.Part{
							Bytes: float64(mo.bytes[r]),
							Res:   j.Cluster.NetPath(mo.node, tc.node),
						})
						res.ShuffleBytes += mo.bytes[r]
						shuffleBytes.Add(float64(mo.bytes[r]))
					}
				}
				// Per-run prefetch: index each run's group boundaries on
				// the data plane while the shuffle's flows drain, joining
				// after the transfer completes.
				spans := make([][]kvSpan, len(runs))
				futs := make([]*sim.Future, len(runs))
				for i := range runs {
					i := i
					futs[i] = tc.proc.Compute(func() { spans[i] = runSpans(runs[i]) })
				}
				tc.Phase("Shuffle", func() { tc.proc.TransferAll(parts...) })
				tc.proc.Await(futs...)
				// Streaming sort-merge: span-level k-way heap merge over
				// the indexed runs, grouped values reaching Reduce through
				// a pooled buffer (valid only for the duration of each
				// call).
				var local []KV
				tc.emit = func(kv KV) { local = append(local, kv) }
				vals := getVals()
				defer putVals(vals)
				err := eachGroupSpans(runs, spans, vals, func(key string, vs []any) error {
					return j.Reduce(tc, key, vs)
				})
				for i := range spans {
					putSpanBuf(spans[i])
				}
				if err != nil {
					return nil, err
				}
				return func() { finalParts[r] = local }, nil
			},
		}
	}
	j.runPhase(p, "reduce", sliceFeed(reduceTasks), reducers, startup, maxAttempts, &res.ReduceStats, res, fail)
	if firstErr != nil {
		return nil, fmt.Errorf("mapreduce: job %s: %w", j.Name, firstErr)
	}
	// The reduce wave has consumed every run; recycle their buffers for
	// the next wave or job.
	for _, mo := range outs {
		if mo == nil {
			continue
		}
		for b := range mo.buckets {
			putKVBuf(mo.buckets[b])
			mo.buckets[b] = nil
		}
	}
	for _, part := range finalParts {
		res.Output = append(res.Output, part...)
	}
	sortKVs(res.Output)
	res.End = p.Now()
	return res, nil
}

// taskFeed produces a phase's tasks on demand: (nil, nil) once the
// phase's work is fully enumerated. runPhase pulls from it lazily, never
// holding more than the scheduling window of un-run tasks.
type taskFeed func(p *sim.Proc) (*task, error)

// sliceFeed drains a pre-built task slice — the reduce wave's shape is
// known up front.
func sliceFeed(tasks []*task) taskFeed {
	next := 0
	return func(*sim.Proc) (*task, error) {
		if next >= len(tasks) {
			return nil, nil
		}
		t := tasks[next]
		next++
		return t, nil
	}
}

// runPhase executes the feed's tasks on the cluster's worker slots and
// blocks the driver until every task commits or permanently fails. Tasks
// are pulled into the queue in windows: the driver primes the first
// window, then whichever worker drains the queue below half the window
// refills it (charging any source metadata cost to that worker's
// timeline). Failed attempts requeue while the MaxAttempts budget lasts;
// with speculation enabled (map phase only) a monitor process launches
// backup attempts for straggling tasks already minted, and whichever
// attempt finishes first commits — the loser runs out its slot but its
// work is discarded. Workers escalate their pick radius with consecutive
// misses: host-local immediately, rack-local after 3 delay beats,
// zone-local after 6, any task after the last tier the topology offers.
func (j *Job) runPhase(p *sim.Proc, phase string, feed taskFeed, window int, startup float64, maxAttempts int, stats *[]TaskStats, res *Result, fail func(error)) {
	k := p.Kernel()
	if window < 1 {
		window = 1
	}
	var phaseSpan *obs.Span
	var attempts, failures, completed, preempted *obs.Counter
	var specLaunched, specWins, specLosses *obs.Counter
	var taskSeconds *obs.Histogram
	if j.Obs != nil {
		phaseSpan = j.Obs.StartSpan("phase:"+phase, "mapreduce", p.Span())
		l := obs.L("phase", phase)
		attempts = j.Obs.Counter("mr/task_attempts_total", l)
		failures = j.Obs.Counter("mr/task_failures_total", l)
		completed = j.Obs.Counter("mr/tasks_total", l)
		preempted = j.Obs.Counter("mr/tasks_preempted_total", l)
		specLaunched = j.Obs.Counter("mr/speculative_launched_total", l)
		specWins = j.Obs.Counter("mr/speculative_wins_total", l)
		specLosses = j.Obs.Counter("mr/speculative_losses_total", l)
		taskSeconds = j.Obs.Histogram("mr/task_seconds", taskSecondsBuckets, l)
	}
	spec := j.Speculation
	speculative := phase == "map" && spec.enabled() && maxAttempts > 1
	// durations feeds the speculation threshold even when no registry is
	// attached (taskSeconds would be a nil no-op then).
	durations := obs.NewHistogram(taskSecondsBuckets)
	q := newLocalityQueue(j.Cluster)
	var (
		exhausted bool    // the feed returned its final task
		pending   int     // minted tasks not yet committed or failed
		filling   bool    // a refill is in progress (its pull may yield)
		tracked   []*task // minted tasks the speculator scans
	)
	wg := k.NewWaitGroup()
	// The source token keeps the wait group open until the feed drains,
	// when the per-task holds take over.
	wg.Add(1)
	refill := func(rp *sim.Proc) {
		if filling || exhausted {
			return
		}
		filling = true
		for !exhausted && q.live < window {
			t, err := feed(rp)
			if err != nil {
				fail(err)
				t = nil
			}
			if t == nil {
				exhausted = true
				wg.Done() // release the source token
				break
			}
			t.attempt = 0
			t.inflight = 0
			t.done = false
			t.speculated = false
			t.pendingSpec = false
			pending++
			wg.Add(1)
			if speculative {
				tracked = append(tracked, t)
			}
			q.push(t)
		}
		filling = false
	}
	refill(p)
	for _, node := range j.Cluster.Nodes {
		slots := j.SlotsPerNode
		if slots <= 0 {
			if node.Slots != nil {
				slots = node.Slots.Capacity()
			} else {
				slots = 1
			}
		}
		for s := 0; s < slots; s++ {
			node := node
			s := s
			k.Go(fmt.Sprintf("%s/%s/%s-worker", j.Name, phase, node.Name), func(wp *sim.Proc) {
				misses := 0
				// The steal threshold grows with the tiers this node's
				// topology offers: 3 delay beats per tier.
				stealAt := 3
				if node.Rack != "" {
					stealAt = 6
				}
				if node.Zone != "" {
					stealAt = 9
				}
				pull := func() *task {
					if t := q.pickLocal(node.Name); t != nil {
						return t
					}
					if misses >= 3 && node.Rack != "" {
						if t := q.pickRack(node.Rack); t != nil {
							return t
						}
					}
					if misses >= 6 && node.Zone != "" {
						if t := q.pickZone(node.Zone); t != nil {
							return t
						}
					}
					if misses >= stealAt {
						return q.pickAny()
					}
					return nil
				}
				for {
					// Refill before picking so the queue never starves
					// while the feed still has tasks.
					if !exhausted && q.live <= window/2 {
						refill(wp)
					}
					if j.Lease != nil && !q.empty() && !j.Lease.Available() {
						// Work is queued but the job's slot grant is
						// spent; idle until the scheduler re-grants.
						wp.Sleep(0.25)
						continue
					}
					t := pull()
					if t == nil {
						if q.empty() {
							if exhausted && (!speculative || pending == 0) {
								return
							}
							// The feed may refill, or speculation may
							// still queue backups; idle until every task
							// has committed or failed.
							wp.Sleep(0.25)
							continue
						}
						// Delay scheduling: give closer tiers a few beats
						// before widening the search.
						misses++
						wp.Sleep(0.2)
						continue
					}
					misses = 0
					if t.done {
						// A queued backup whose task committed before any
						// slot freed up — nothing left to do.
						continue
					}
					isSpec := t.pendingSpec
					t.pendingSpec = false
					var token uint64
					if j.Lease != nil {
						// No yield since the Available check above, so
						// the slot is still free.
						token = j.Lease.Acquire()
					}
					t.attempt++
					if t.inflight == 0 {
						t.started = wp.Now()
					}
					t.inflight++
					attempts.Inc()
					if isSpec {
						specLaunched.Inc()
					}
					slow := 1.0
					var ferr error
					if j.Faults != nil {
						ferr, slow = j.Faults.TaskFault(phase, t.index, t.attempt)
						if slow < 1 {
							slow = 1
						}
					}
					var taskSpan *obs.Span
					if j.Obs != nil {
						taskSpan = j.Obs.StartSpan("task:"+t.label, "mapreduce", phaseSpan)
						taskSpan.SetTrack(fmt.Sprintf("%s/slot-%d", node.Name, s))
						taskSpan.Arg("node", node.Name)
						taskSpan.Arg("attempt", t.attempt)
						if isSpec {
							taskSpan.Arg("speculative", true)
						}
						if slow > 1 {
							taskSpan.Arg("slowdown", slow)
						}
						// Startup (container launch) charge, recorded so
						// post-run analysis can split the attempt's wall
						// time into launch vs. useful work.
						taskSpan.Arg("startup", startup*slow)
					}
					ts := TaskStats{Label: t.label, Node: node.Name, Start: wp.Now(), Attempt: t.attempt}
					tc := &TaskContext{job: j, proc: wp, node: node, stats: &ts, result: res,
						counters: map[string]int64{}, slow: slow,
						lease: j.Lease, token: token}
					prevSpan := wp.SetSpan(taskSpan)
					wp.Sleep(startup * slow)
					var commit func()
					var err error
					switch {
					case ferr != nil:
						err = ferr
					case j.Lease != nil && j.Lease.Killed(token):
						// Revoked during container launch: nothing ran.
						err = ErrPreempted
					default:
						commit, err = runBody(t, tc)
					}
					ts.End = wp.Now()
					wp.SetSpan(prevSpan)
					t.inflight--
					if j.Lease != nil {
						j.Lease.Release(token)
					}
					if errors.Is(err, ErrPreempted) {
						preempted.Inc()
						taskSpan.Arg("preempted", true)
						taskSpan.End()
						if t.done {
							continue
						}
						// Preemption does not consume the retry budget:
						// hand the attempt back and requeue the task.
						t.attempt--
						q.push(t)
						continue
					}
					if err != nil {
						failures.Inc()
						taskSpan.Arg("failed", true)
						taskSpan.End()
						if t.done {
							// A backup's sibling already committed; this
							// failure is moot.
							continue
						}
						if t.attempt < maxAttempts {
							q.push(t)
							continue
						}
						if t.inflight > 0 {
							// Out of budget, but a sibling attempt is
							// still running and may yet commit.
							continue
						}
						fail(err)
						pending--
						wg.Done()
						continue
					}
					if t.done {
						// The other attempt committed first: discard this
						// one's work. The loss was already counted when
						// the winner committed.
						taskSpan.Arg("discarded", true)
						taskSpan.End()
						continue
					}
					t.done = true
					if isSpec {
						specWins.Inc()
					} else if t.speculated {
						// Original finished first; the backup (queued or
						// running) was wasted work.
						specLosses.Inc()
					}
					taskSpan.End()
					completed.Inc()
					taskSeconds.Observe(ts.End - ts.Start)
					durations.Observe(ts.End - ts.Start)
					tc.commitCounters()
					commit()
					*stats = append(*stats, ts)
					pending--
					wg.Done()
				}
			})
		}
	}
	if speculative {
		interval := spec.Interval
		if interval <= 0 {
			interval = 0.5
		}
		mult := spec.Multiplier
		if mult <= 0 {
			mult = 1
		}
		minDone := spec.MinCompleted
		if minDone <= 0 {
			minDone = 1
		}
		k.Go(fmt.Sprintf("%s/%s-speculator", j.Name, phase), func(sp *sim.Proc) {
			for !exhausted || pending > 0 {
				sp.Sleep(interval)
				if exhausted && pending == 0 {
					return
				}
				if int(durations.Count()) < minDone {
					continue
				}
				threshold := mult * durations.Quantile(spec.Quantile)
				if threshold <= 0 {
					continue
				}
				// Scan the minted tasks, dropping committed ones so the
				// scan set tracks the window rather than the whole job.
				live := tracked[:0]
				for _, t := range tracked {
					if t.done {
						continue
					}
					live = append(live, t)
					if t.speculated || t.inflight != 1 || t.attempt >= maxAttempts {
						continue
					}
					if sp.Now()-t.started <= threshold {
						continue
					}
					t.speculated = true
					t.pendingSpec = true
					q.push(t)
				}
				for i := len(live); i < len(tracked); i++ {
					tracked[i] = nil
				}
				tracked = live
			}
		})
	}
	p.Wait(wg)
	phaseSpan.End()
}

// combineBuckets runs the combiner over one map task's per-reducer
// buckets in place, shrinking what the shuffle must move. Every bucket it
// leaves behind is a sorted run: the combiner consumes groups in key
// order, so its output is normally sorted already and ensureSortedRun is
// a linear scan, not a re-sort.
func combineBuckets(tc *TaskContext, j *Job, buckets [][]KV, bytes []int64, pairBytes func(KV) int64) error {
	savedEmit := tc.emit
	defer func() { tc.emit = savedEmit }()
	// Pre-sort every bucket on the data plane (fork-join). The combine
	// passes themselves stay on the kernel thread: user combiners may
	// Charge virtual time or read shared state.
	futs := make([]*sim.Future, 0, len(buckets))
	for b := range buckets {
		if pairs := buckets[b]; len(pairs) > 1 {
			futs = append(futs, tc.proc.Compute(func() { sortRun(pairs) }))
		}
	}
	tc.proc.Await(futs...)
	vals := getVals()
	defer putVals(vals)
	for b := range buckets {
		pairs := buckets[b]
		if len(pairs) < 2 {
			continue
		}
		combined := getKVBuf()
		var combinedBytes int64
		tc.emit = func(kv KV) {
			combined = append(combined, kv)
			combinedBytes += pairBytes(kv)
		}
		if err := eachGroup([][]KV{pairs}, vals, func(key string, vs []any) error {
			return j.Combine(tc, key, vs)
		}); err != nil {
			return err
		}
		ensureSortedRun(combined)
		buckets[b] = combined
		bytes[b] = combinedBytes
		putKVBuf(pairs)
	}
	return nil
}

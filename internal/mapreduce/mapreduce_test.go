package mapreduce

import (
	"fmt"
	"strings"
	"testing"

	"scidp/internal/cluster"
	"scidp/internal/obs"
	"scidp/internal/sim"
)

// memInput is an in-memory InputFormat: each split is a list of lines, and
// reading charges a configurable virtual cost per split.
type memInput struct {
	splits   []*Split
	readCost float64
	splitErr error
	readErr  error
}

func (m *memInput) Splits(p *sim.Proc) ([]*Split, error) {
	if m.splitErr != nil {
		return nil, m.splitErr
	}
	return m.splits, nil
}

func (m *memInput) ForEach(tc *TaskContext, s *Split, fn func(key string, value any) error) error {
	if m.readErr != nil {
		return m.readErr
	}
	if m.readCost > 0 {
		tc.Charge("Read", m.readCost)
	}
	for i, line := range s.Payload.([]string) {
		if err := fn(fmt.Sprintf("%s:%d", s.Label, i), line); err != nil {
			return err
		}
	}
	return nil
}

func linesInput(readCost float64, groups ...[]string) *memInput {
	in := &memInput{readCost: readCost}
	for i, g := range groups {
		in.splits = append(in.splits, &Split{Label: fmt.Sprintf("s%d", i), Payload: g, Length: int64(len(g))})
	}
	return in
}

func testCluster(k *sim.Kernel, nodes, slots int) *cluster.Cluster {
	return cluster.New(k, "bd", cluster.Config{
		Nodes: nodes, SlotsPerNode: slots,
		DiskBW: 1e6, NICBW: 1e6, FabricBW: 1e6,
	})
}

// runJob drives a job from a driver proc and returns its result.
func runJob(t *testing.T, k *sim.Kernel, job *Job) *Result {
	t.Helper()
	var res *Result
	var err error
	k.Go("driver", func(p *sim.Proc) {
		res, err = job.Run(p)
	})
	k.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func wordCountJob(k *sim.Kernel, in InputFormat, nodes, slots, reducers int) *Job {
	return &Job{
		Name:         "wordcount",
		Cluster:      testCluster(k, nodes, slots),
		SlotsPerNode: slots,
		Input:        in,
		TaskStartup:  0.1,
		NumReducers:  reducers,
		Map: func(tc *TaskContext, key string, value any) error {
			for _, w := range strings.Fields(value.(string)) {
				tc.Emit(w, 1)
			}
			return nil
		},
		Reduce: func(tc *TaskContext, key string, values []any) error {
			sum := 0
			for _, v := range values {
				sum += v.(int)
			}
			tc.Emit(key, sum)
			return nil
		},
	}
}

func TestWordCount(t *testing.T) {
	k := sim.NewKernel()
	in := linesInput(0,
		[]string{"a b a", "c"},
		[]string{"b b", "a c c"},
	)
	res := runJob(t, k, wordCountJob(k, in, 2, 2, 2))
	want := map[string]int{"a": 3, "b": 3, "c": 3}
	if len(res.Output) != 3 {
		t.Fatalf("output = %+v", res.Output)
	}
	for _, kv := range res.Output {
		if kv.V.(int) != want[kv.K] {
			t.Errorf("%s = %v, want %d", kv.K, kv.V, want[kv.K])
		}
	}
	if res.Elapsed() <= 0 {
		t.Error("elapsed must be positive")
	}
}

func TestMapOnlyJob(t *testing.T) {
	k := sim.NewKernel()
	in := linesInput(0, []string{"x"}, []string{"y"})
	job := wordCountJob(k, in, 2, 1, 0)
	job.Reduce = nil
	job.NumReducers = 0
	res := runJob(t, k, job)
	if len(res.Output) != 2 {
		t.Fatalf("map-only output = %+v", res.Output)
	}
	if len(res.ReduceStats) != 0 {
		t.Fatal("map-only job should have no reduce tasks")
	}
}

func TestOutputSortedByKey(t *testing.T) {
	k := sim.NewKernel()
	in := linesInput(0, []string{"z y x w v"})
	res := runJob(t, k, wordCountJob(k, in, 2, 1, 3))
	for i := 1; i < len(res.Output); i++ {
		if res.Output[i-1].K > res.Output[i].K {
			t.Fatalf("output not sorted: %+v", res.Output)
		}
	}
}

func TestSlotsBoundConcurrency(t *testing.T) {
	// 4 splits, 1 node, 1 slot, each read costs 1 s: the map wave must
	// serialize (>= 4 s). With 4 slots it parallelizes (~1 s + startup).
	elapsed := func(slots int) float64 {
		k := sim.NewKernel()
		in := linesInput(1.0, []string{"a"}, []string{"a"}, []string{"a"}, []string{"a"})
		job := wordCountJob(k, in, 1, slots, 1)
		res := runJob(t, k, job)
		return res.Elapsed()
	}
	serial, parallel := elapsed(1), elapsed(4)
	if serial < 4.0 {
		t.Fatalf("serial wave took %v, want >= 4", serial)
	}
	if parallel > serial/2 {
		t.Fatalf("parallel wave %v should be well under serial %v", parallel, serial)
	}
}

func TestLocalityPreferred(t *testing.T) {
	k := sim.NewKernel()
	in := &memInput{}
	// Two splits pinned to bd-1; with enough slots everywhere, both must
	// run on bd-1.
	for i := 0; i < 2; i++ {
		in.splits = append(in.splits, &Split{
			Label: fmt.Sprintf("pinned-%d", i), Payload: []string{"a"},
			Locations: []string{"bd-1"},
		})
	}
	job := wordCountJob(k, in, 3, 2, 1)
	res := runJob(t, k, job)
	for _, ts := range res.MapStats {
		if ts.Node != "bd-1" {
			t.Fatalf("task %s ran on %s, want bd-1", ts.Label, ts.Node)
		}
	}
}

func TestTaskStartupCharged(t *testing.T) {
	k := sim.NewKernel()
	in := linesInput(0, []string{"a"})
	job := wordCountJob(k, in, 1, 1, 0)
	job.Reduce = nil
	job.TaskStartup = 2.5
	res := runJob(t, k, job)
	if res.Elapsed() < 2.5 {
		t.Fatalf("elapsed %v < startup 2.5", res.Elapsed())
	}
}

func TestPhasesRecorded(t *testing.T) {
	k := sim.NewKernel()
	in := linesInput(0.5, []string{"a"}, []string{"b"})
	job := wordCountJob(k, in, 2, 1, 1)
	job.Map = func(tc *TaskContext, key string, value any) error {
		tc.Charge("Plot", 0.25)
		tc.Emit(value.(string), 1)
		return nil
	}
	res := runJob(t, k, job)
	if got := res.PhaseMean("Read"); got != 0.5 {
		t.Fatalf("Read mean = %v, want 0.5", got)
	}
	if got := res.PhaseMean("Plot"); got != 0.25 {
		t.Fatalf("Plot mean = %v, want 0.25", got)
	}
	if got := res.PhaseMean("Nope"); got != 0 {
		t.Fatalf("missing phase mean = %v", got)
	}
}

func TestCounters(t *testing.T) {
	k := sim.NewKernel()
	in := linesInput(0, []string{"a a a"})
	job := wordCountJob(k, in, 1, 1, 1)
	inner := job.Map
	job.Map = func(tc *TaskContext, key string, value any) error {
		tc.Counter("records", 1)
		return inner(tc, key, value)
	}
	res := runJob(t, k, job)
	if res.Counters["records"] != 1 {
		t.Fatalf("counters = %v", res.Counters)
	}
}

func TestShuffleBytesAccounted(t *testing.T) {
	k := sim.NewKernel()
	in := linesInput(0, []string{"a b"}, []string{"c d"})
	job := wordCountJob(k, in, 2, 1, 1)
	res := runJob(t, k, job)
	// Two map tasks on two nodes, one reducer: at least one map output
	// must cross the network.
	if res.ShuffleBytes <= 0 {
		t.Fatal("expected nonzero shuffle bytes")
	}
}

// stubFaults adapts a func to the TaskFaults interface — tests stand in
// for the chaos injector the same way it plugs in: structurally.
type stubFaults func(phase string, task, attempt int) (error, float64)

func (f stubFaults) TaskFault(phase string, task, attempt int) (error, float64) {
	return f(phase, task, attempt)
}

func TestRetrySucceeds(t *testing.T) {
	k := sim.NewKernel()
	in := linesInput(0, []string{"a"}, []string{"b"})
	job := wordCountJob(k, in, 2, 1, 1)
	job.MaxAttempts = 3
	job.Faults = stubFaults(func(phase string, task, attempt int) (error, float64) {
		if phase == "map" && task == 0 && attempt < 3 {
			return fmt.Errorf("injected failure on task %d attempt %d", task, attempt), 1
		}
		return nil, 1
	})
	res := runJob(t, k, job)
	if len(res.Output) != 2 {
		t.Fatalf("output = %+v", res.Output)
	}
	for _, ts := range res.MapStats {
		if ts.Label == "s0" && ts.Attempt != 3 {
			t.Fatalf("task s0 succeeded on attempt %d, want 3", ts.Attempt)
		}
	}
}

func TestPermanentFailureSurfacesError(t *testing.T) {
	k := sim.NewKernel()
	in := linesInput(0, []string{"a"})
	job := wordCountJob(k, in, 1, 1, 1)
	job.MaxAttempts = 2
	job.Faults = stubFaults(func(phase string, task, attempt int) (error, float64) {
		return fmt.Errorf("injected failure"), 1
	})
	var err error
	k.Go("driver", func(p *sim.Proc) {
		_, err = job.Run(p)
	})
	k.Run()
	if err == nil {
		t.Fatal("permanently failing task should fail the job")
	}
}

func TestSplitErrorPropagates(t *testing.T) {
	k := sim.NewKernel()
	in := &memInput{splitErr: fmt.Errorf("no such input path")}
	job := wordCountJob(k, in, 1, 1, 1)
	var err error
	k.Go("driver", func(p *sim.Proc) {
		_, err = job.Run(p)
	})
	k.Run()
	if err == nil || !strings.Contains(err.Error(), "no such input path") {
		t.Fatalf("err = %v", err)
	}
}

func TestMapErrorPropagates(t *testing.T) {
	k := sim.NewKernel()
	in := linesInput(0, []string{"a"})
	job := wordCountJob(k, in, 1, 1, 1)
	job.Map = func(tc *TaskContext, key string, value any) error {
		return fmt.Errorf("map exploded")
	}
	var err error
	k.Go("driver", func(p *sim.Proc) {
		_, err = job.Run(p)
	})
	k.Run()
	if err == nil || !strings.Contains(err.Error(), "map exploded") {
		t.Fatalf("err = %v", err)
	}
}

func TestReduceErrorPropagates(t *testing.T) {
	k := sim.NewKernel()
	in := linesInput(0, []string{"a"})
	job := wordCountJob(k, in, 1, 1, 1)
	job.Reduce = func(tc *TaskContext, key string, values []any) error {
		return fmt.Errorf("reduce exploded")
	}
	var err error
	k.Go("driver", func(p *sim.Proc) {
		_, err = job.Run(p)
	})
	k.Run()
	if err == nil || !strings.Contains(err.Error(), "reduce exploded") {
		t.Fatalf("err = %v", err)
	}
}

func TestCustomPartitioner(t *testing.T) {
	k := sim.NewKernel()
	in := linesInput(0, []string{"a b c d"})
	job := wordCountJob(k, in, 2, 1, 2)
	job.Partition = func(key string, reducers int) int {
		if key < "c" {
			return 0
		}
		return 1
	}
	res := runJob(t, k, job)
	if len(res.Output) != 4 {
		t.Fatalf("output = %+v", res.Output)
	}
	if len(res.ReduceStats) != 2 {
		t.Fatalf("reduce tasks = %d", len(res.ReduceStats))
	}
}

func TestJobValidation(t *testing.T) {
	k := sim.NewKernel()
	var err error
	k.Go("driver", func(p *sim.Proc) {
		job := &Job{Name: "bad", Cluster: testCluster(k, 1, 1), Input: linesInput(0)}
		_, err = job.Run(p)
	})
	k.Run()
	if err == nil {
		t.Fatal("job without Map should fail")
	}
}

func TestSequentialJobsComposeInOneDriver(t *testing.T) {
	// A driver can run job B after job A completes (the SciHadoop
	// copy-then-process pipeline shape).
	k := sim.NewKernel()
	cl := testCluster(k, 2, 2)
	mk := func(name string) *Job {
		j := wordCountJob(k, linesInput(0.5, []string{"a"}, []string{"b"}), 2, 2, 1)
		j.Name = name
		j.Cluster = cl
		return j
	}
	var t1, t2 float64
	k.Go("driver", func(p *sim.Proc) {
		r1, err := mk("first").Run(p)
		if err != nil {
			t.Error(err)
			return
		}
		t1 = r1.End
		r2, err := mk("second").Run(p)
		if err != nil {
			t.Error(err)
			return
		}
		t2 = r2.Start
	})
	k.Run()
	if t2 < t1 {
		t.Fatalf("second job started at %v before first ended at %v", t2, t1)
	}
}

func TestDeterministicScheduling(t *testing.T) {
	trace := func() string {
		k := sim.NewKernel()
		in := linesInput(0.3,
			[]string{"a"}, []string{"b"}, []string{"c"}, []string{"d"},
			[]string{"e"}, []string{"f"}, []string{"g"}, []string{"h"},
		)
		res := runJob(t, k, wordCountJob(k, in, 3, 2, 2))
		var sb strings.Builder
		for _, ts := range res.MapStats {
			fmt.Fprintf(&sb, "%s@%s:%.3f;", ts.Label, ts.Node, ts.End)
		}
		return sb.String()
	}
	if a, b := trace(), trace(); a != b {
		t.Fatalf("nondeterministic scheduling:\n%s\n%s", a, b)
	}
}

func TestCombinerShrinksShuffle(t *testing.T) {
	run := func(useCombiner bool) (*Result, map[string]int) {
		k := sim.NewKernel()
		in := linesInput(0, []string{"a a a b"}, []string{"a b b b"})
		job := wordCountJob(k, in, 2, 1, 1)
		job.SlotsPerNode = 1
		if useCombiner {
			job.Combine = func(tc *TaskContext, key string, values []any) error {
				sum := 0
				for _, v := range values {
					sum += v.(int)
				}
				tc.Emit(key, sum)
				return nil
			}
		}
		res := runJob(t, k, job)
		out := map[string]int{}
		for _, kv := range res.Output {
			out[kv.K] = kv.V.(int)
		}
		return res, out
	}
	plain, plainOut := run(false)
	combined, combinedOut := run(true)
	for _, k := range []string{"a", "b"} {
		if plainOut[k] != 4 || combinedOut[k] != 4 {
			t.Fatalf("counts differ: plain=%v combined=%v", plainOut, combinedOut)
		}
	}
	if combined.ShuffleBytes >= plain.ShuffleBytes {
		t.Fatalf("combiner shuffle (%d) should be below plain (%d)", combined.ShuffleBytes, plain.ShuffleBytes)
	}
}

func TestCombinerErrorPropagates(t *testing.T) {
	k := sim.NewKernel()
	in := linesInput(0, []string{"a a"})
	job := wordCountJob(k, in, 1, 1, 1)
	job.Combine = func(tc *TaskContext, key string, values []any) error {
		return fmt.Errorf("combiner exploded")
	}
	var err error
	k.Go("driver", func(p *sim.Proc) {
		_, err = job.Run(p)
	})
	k.Run()
	if err == nil || !strings.Contains(err.Error(), "combiner exploded") {
		t.Fatalf("err = %v", err)
	}
}

func TestSpeculativeBackupWins(t *testing.T) {
	// One straggling first-attempt map task (50x slowdown) on a cluster
	// with spare wave-2 slots: the speculator must launch a backup, the
	// backup must commit first, and the straggler's late finish must be
	// discarded without double-counting its output.
	k := sim.NewKernel()
	in := linesInput(1.0,
		[]string{"a a"}, []string{"a"}, []string{"a"}, []string{"a"},
		[]string{"a"}, []string{"a"}, []string{"a"}, []string{"a"},
	)
	reg := obs.New()
	job := wordCountJob(k, in, 2, 2, 1)
	job.Obs = reg
	job.MaxAttempts = 2
	job.Speculation = Speculation{Quantile: 0.5, Multiplier: 1.5, MinCompleted: 3, Interval: 0.1}
	job.Faults = stubFaults(func(phase string, task, attempt int) (error, float64) {
		if phase == "map" && task == 0 && attempt == 1 {
			return nil, 50
		}
		return nil, 1
	})
	res := runJob(t, k, job)
	if len(res.Output) != 1 || res.Output[0].V.(int) != 9 {
		t.Fatalf("output = %+v, want a=9 exactly once", res.Output)
	}
	wins := reg.Counter("mr/speculative_wins_total", obs.L("phase", "map")).Value()
	launched := reg.Counter("mr/speculative_launched_total", obs.L("phase", "map")).Value()
	if launched == 0 || wins == 0 {
		t.Fatalf("speculation launched=%v wins=%v, want both nonzero", launched, wins)
	}
}

func TestSpeculativeBackupLoses(t *testing.T) {
	// A mild straggler crosses the speculation threshold but still beats
	// its backup (which pays full startup + read again): the original
	// commits, the backup is discarded, and the loss is counted once.
	k := sim.NewKernel()
	in := linesInput(1.0,
		[]string{"a"}, []string{"a"}, []string{"a"}, []string{"a"},
		[]string{"a"}, []string{"a"}, []string{"a"}, []string{"a"},
	)
	reg := obs.New()
	job := wordCountJob(k, in, 2, 2, 1)
	job.Obs = reg
	job.MaxAttempts = 2
	job.Speculation = Speculation{Quantile: 0.5, Multiplier: 1.2, MinCompleted: 3, Interval: 0.1}
	job.Faults = stubFaults(func(phase string, task, attempt int) (error, float64) {
		if phase == "map" && task == 0 && attempt == 1 {
			return nil, 2.6
		}
		return nil, 1
	})
	res := runJob(t, k, job)
	if len(res.Output) != 1 || res.Output[0].V.(int) != 8 {
		t.Fatalf("output = %+v, want a=8 exactly once", res.Output)
	}
	wins := reg.Counter("mr/speculative_wins_total", obs.L("phase", "map")).Value()
	losses := reg.Counter("mr/speculative_losses_total", obs.L("phase", "map")).Value()
	if wins != 0 || losses != 1 {
		t.Fatalf("speculation wins=%v losses=%v, want 0 and 1", wins, losses)
	}
}

// TestInputFormatReusableAcrossRuns guards the split-source adapter's
// copy semantics: an InputFormat that hands out the same long-lived
// []*Split on every Splits call (the TeraSort wall benchmark does, and
// any format caching its split table would) must survive repeated Run
// calls. A destructive drain that nils entries in the returned slice
// makes the second job see zero splits and silently reduce nothing.
func TestInputFormatReusableAcrossRuns(t *testing.T) {
	in := linesInput(0,
		[]string{"a b a", "c"},
		[]string{"b b", "a c c"},
	)
	for run := 0; run < 2; run++ {
		k := sim.NewKernel()
		res := runJob(t, k, wordCountJob(k, in, 2, 2, 2))
		if len(res.Output) != 3 {
			t.Fatalf("run %d: output = %+v, want 3 groups", run, res.Output)
		}
	}
	for i, s := range in.splits {
		if s == nil {
			t.Fatalf("engine nilled caller's split %d", i)
		}
	}
}

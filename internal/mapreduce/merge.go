// Streaming sort-merge shuffle engine.
//
// Each map task's per-reducer bucket is turned into a *sorted run* once,
// when the map (or its combiner) completes. Reducers consume their runs
// through a k-way heap merge with streaming group iteration instead of
// concatenating everything and re-sorting it, and grouped values reach
// Reduce/Combine through a pooled buffer that is reused across keys — the
// Hadoop iterator contract: the slice is valid only for the duration of
// the call.
//
// The merge is stable in exactly the order the old concat-and-stable-sort
// produced: pairs come out in (key, run index, position-within-run)
// order, where run index is map-task arrival order. Job outputs are
// byte-identical to the previous path.
//
// Two-plane split: sortRun and runSpans are pure byte work and run on
// the data plane (sim.ComputePool) — reducers index each run's group
// boundaries while their shuffle flows drain, then merge span-at-a-time
// on the kernel thread. All scratch buffers here are sync.Pool-backed,
// so data-plane workers draw per-worker (per-P) buffers and never share
// a scratch slice.
package mapreduce

import (
	"slices"
	"strings"
	"sync"
)

// sortRun stable-sorts one run by key, preserving emission order within
// equal keys.
func sortRun(kvs []KV) {
	slices.SortStableFunc(kvs, func(a, b KV) int { return strings.Compare(a.K, b.K) })
}

// runIsSorted reports whether a run is already in key order.
func runIsSorted(kvs []KV) bool {
	for i := 1; i < len(kvs); i++ {
		if kvs[i].K < kvs[i-1].K {
			return false
		}
	}
	return true
}

// ensureSortedRun sorts only when needed — combiner output is emitted in
// group (key) order and is normally already sorted, so this is an O(n)
// scan on the hot path rather than an O(n log n) re-sort.
func ensureSortedRun(kvs []KV) {
	if !runIsSorted(kvs) {
		sortRun(kvs)
	}
}

// runCursor walks one sorted run. idx is the run's arrival order (map
// task order), the tie-break that keeps the merge stable across runs.
type runCursor struct {
	kvs []KV
	pos int
	idx int
}

// mergeIter yields pairs from sorted runs in (key, run index, position)
// order. Runs are read through cursors and never mutated, so a retried
// reduce attempt sees them intact.
type mergeIter struct {
	cursors []runCursor
	heap    []*runCursor
	single  *runCursor // fast path when at most one run is non-empty
}

// newMerge builds a merge over the given runs; empty runs are skipped up
// front so the heap only ever holds live cursors.
func newMerge(runs [][]KV) *mergeIter {
	m := &mergeIter{}
	live := 0
	for _, r := range runs {
		if len(r) > 0 {
			live++
		}
	}
	if live == 0 {
		return m
	}
	m.cursors = make([]runCursor, 0, live)
	for i, r := range runs {
		if len(r) == 0 {
			continue
		}
		m.cursors = append(m.cursors, runCursor{kvs: r, idx: i})
	}
	if live == 1 {
		m.single = &m.cursors[0]
		return m
	}
	m.heap = make([]*runCursor, len(m.cursors))
	for i := range m.cursors {
		m.heap[i] = &m.cursors[i]
	}
	for i := len(m.heap)/2 - 1; i >= 0; i-- {
		m.siftDown(i)
	}
	return m
}

// less orders cursors by (head key, run index) — the stability contract.
func (m *mergeIter) less(a, b *runCursor) bool {
	ka, kb := a.kvs[a.pos].K, b.kvs[b.pos].K
	if ka != kb {
		return ka < kb
	}
	return a.idx < b.idx
}

func (m *mergeIter) siftDown(i int) {
	h := m.heap
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		least := l
		if r := l + 1; r < n && m.less(h[r], h[l]) {
			least = r
		}
		if !m.less(h[least], h[i]) {
			return
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
}

// next pops the globally least pair; ok is false when the merge is done.
func (m *mergeIter) next() (kv KV, ok bool) {
	if m.single != nil {
		c := m.single
		if c.pos >= len(c.kvs) {
			return KV{}, false
		}
		kv = c.kvs[c.pos]
		c.pos++
		return kv, true
	}
	if len(m.heap) == 0 {
		return KV{}, false
	}
	top := m.heap[0]
	kv = top.kvs[top.pos]
	top.pos++
	if top.pos >= len(top.kvs) {
		last := len(m.heap) - 1
		m.heap[0] = m.heap[last]
		m.heap = m.heap[:last]
	}
	if len(m.heap) > 1 {
		m.siftDown(0)
	}
	return kv, true
}

// eachGroup merges sorted runs and invokes fn once per distinct key with
// that key's values in (run, emission) order. The vals buffer is reused
// across calls: the slice passed to fn is valid only for the duration of
// the call and must not be retained.
func eachGroup(runs [][]KV, vals *[]any, fn func(key string, vals []any) error) error {
	m := newMerge(runs)
	kv, ok := m.next()
	for ok {
		key := kv.K
		buf := (*vals)[:0]
		buf = append(buf, kv.V)
		for {
			kv, ok = m.next()
			if !ok || kv.K != key {
				break
			}
			buf = append(buf, kv.V)
		}
		*vals = buf
		if err := fn(key, buf); err != nil {
			return err
		}
	}
	return nil
}

// kvSpan is one maximal [start, end) range of equal-key pairs within a
// sorted run.
type kvSpan struct{ start, end int }

// runSpans indexes a sorted run's group boundaries. It is pure and
// allocation-local, so reducers run it on the data plane — the per-run
// prefetch pass — overlapping the shuffle. Return the slice with
// putSpanBuf when the merge is done.
func runSpans(kvs []KV) []kvSpan {
	spans := getSpanBuf()
	for i := 0; i < len(kvs); {
		j := i + 1
		for j < len(kvs) && kvs[j].K == kvs[i].K {
			j++
		}
		spans = append(spans, kvSpan{start: i, end: j})
		i = j
	}
	return spans
}

// spanCursor walks one indexed run a group at a time. idx is the run's
// arrival order, the cross-run stability tie-break.
type spanCursor struct {
	kvs   []KV
	spans []kvSpan
	pos   int
	idx   int
}

// key returns the cursor's current group key.
func (c *spanCursor) key() string { return c.kvs[c.spans[c.pos].start].K }

// spanMerge is mergeIter lifted from pairs to group spans.
type spanMerge struct {
	cursors []spanCursor
	heap    []*spanCursor
	single  *spanCursor // fast path when at most one run is non-empty
}

// newSpanMerge builds a merge over indexed runs; empty runs are skipped
// so the heap only ever holds live cursors.
func newSpanMerge(runs [][]KV, spans [][]kvSpan) *spanMerge {
	m := &spanMerge{}
	live := 0
	for _, s := range spans {
		if len(s) > 0 {
			live++
		}
	}
	if live == 0 {
		return m
	}
	m.cursors = make([]spanCursor, 0, live)
	for i := range runs {
		if len(spans[i]) == 0 {
			continue
		}
		m.cursors = append(m.cursors, spanCursor{kvs: runs[i], spans: spans[i], idx: i})
	}
	if live == 1 {
		m.single = &m.cursors[0]
		return m
	}
	m.heap = make([]*spanCursor, len(m.cursors))
	for i := range m.cursors {
		m.heap[i] = &m.cursors[i]
	}
	for i := len(m.heap)/2 - 1; i >= 0; i-- {
		m.siftDown(i)
	}
	return m
}

// less orders cursors by (group key, run index) — the same stability
// contract as the pairwise merge.
func (m *spanMerge) less(a, b *spanCursor) bool {
	ka, kb := a.key(), b.key()
	if ka != kb {
		return ka < kb
	}
	return a.idx < b.idx
}

func (m *spanMerge) siftDown(i int) {
	h := m.heap
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		least := l
		if r := l + 1; r < n && m.less(h[r], h[l]) {
			least = r
		}
		if !m.less(h[least], h[i]) {
			return
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
}

// eachGroupSpans is eachGroup over pre-indexed runs: the heap advances a
// whole group span per step and values append span-wise. Output order is
// identical to eachGroup — cursors with equal keys pop in run-index
// order, and each span's values land in position order.
func eachGroupSpans(runs [][]KV, spans [][]kvSpan, vals *[]any, fn func(key string, vals []any) error) error {
	m := newSpanMerge(runs, spans)
	if m.single != nil {
		c := m.single
		for ; c.pos < len(c.spans); c.pos++ {
			sp := c.spans[c.pos]
			buf := (*vals)[:0]
			for _, kv := range c.kvs[sp.start:sp.end] {
				buf = append(buf, kv.V)
			}
			*vals = buf
			if err := fn(c.kvs[sp.start].K, buf); err != nil {
				return err
			}
		}
		return nil
	}
	for len(m.heap) > 0 {
		key := m.heap[0].key()
		buf := (*vals)[:0]
		for len(m.heap) > 0 && m.heap[0].key() == key {
			c := m.heap[0]
			sp := c.spans[c.pos]
			for _, kv := range c.kvs[sp.start:sp.end] {
				buf = append(buf, kv.V)
			}
			c.pos++
			if c.pos >= len(c.spans) {
				last := len(m.heap) - 1
				m.heap[0] = m.heap[last]
				m.heap = m.heap[:last]
			}
			if len(m.heap) > 1 {
				m.siftDown(0)
			}
		}
		*vals = buf
		if err := fn(key, buf); err != nil {
			return err
		}
	}
	return nil
}

// spanBufPool recycles group-boundary indexes across reduce attempts.
var spanBufPool sync.Pool

// getSpanBuf returns a recycled span buffer (possibly nil; append grows
// it normally).
func getSpanBuf() []kvSpan {
	if p, _ := spanBufPool.Get().(*[]kvSpan); p != nil {
		return (*p)[:0]
	}
	return nil
}

// putSpanBuf returns a span buffer to the pool.
func putSpanBuf(s []kvSpan) {
	if cap(s) == 0 {
		return
	}
	s = s[:0]
	spanBufPool.Put(&s)
}

// kvBufPool recycles run buffers ([]KV) between map waves and jobs: map
// tasks draw from it on first emit to a bucket and Run returns every
// consumed run after the reduce wave. sync.Pool hands each P (and so
// each data-plane worker) its own cached buffers — concurrent emitters
// never receive the same scratch slice.
var kvBufPool sync.Pool

// getKVBuf returns a recycled run buffer, or nil when the pool is empty
// (append grows it normally in that case).
func getKVBuf() []KV {
	if p, _ := kvBufPool.Get().(*[]KV); p != nil {
		return (*p)[:0]
	}
	return nil
}

// putKVBuf clears a run buffer (dropping key/value references) and
// returns it to the pool.
func putKVBuf(s []KV) {
	if cap(s) == 0 {
		return
	}
	s = s[:cap(s)]
	clear(s)
	s = s[:0]
	kvBufPool.Put(&s)
}

// valsPool recycles the grouped-value buffers handed to Reduce/Combine.
// Same per-worker property as kvBufPool: workers draw distinct buffers.
var valsPool sync.Pool

func getVals() *[]any {
	if p, _ := valsPool.Get().(*[]any); p != nil {
		return p
	}
	s := make([]any, 0, 16)
	return &s
}

func putVals(p *[]any) {
	s := (*p)[:cap(*p)]
	clear(s)
	*p = s[:0]
	valsPool.Put(p)
}

// sortKVs stable-sorts final job output by key, preserving insertion
// order within equal keys.
func sortKVs(kvs []KV) {
	slices.SortStableFunc(kvs, func(a, b KV) int { return strings.Compare(a.K, b.K) })
}

package mapreduce

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// concatSortGroups is the pre-merge-engine reference path: concatenate
// every run, stable-sort the whole thing, then group. The merge engine
// must reproduce its output byte for byte; it is also the baseline leg of
// BenchmarkShuffleMerge.
func concatSortGroups(runs [][]KV, fn func(key string, vals []any) error) error {
	var pairs []KV
	for _, r := range runs {
		pairs = append(pairs, r...)
	}
	sort.SliceStable(pairs, func(a, b int) bool { return pairs[a].K < pairs[b].K })
	for i := 0; i < len(pairs); {
		jj := i
		var vals []any
		for jj < len(pairs) && pairs[jj].K == pairs[i].K {
			vals = append(vals, pairs[jj].V)
			jj++
		}
		if err := fn(pairs[i].K, vals); err != nil {
			return err
		}
		i = jj
	}
	return nil
}

// group is one observed (key, values) callback, values flattened to a
// comparable string.
type group struct {
	key  string
	vals string
}

func collectGroups(t *testing.T, runs [][]KV) []group {
	t.Helper()
	var out []group
	var vals []any
	err := eachGroup(runs, &vals, func(key string, vs []any) error {
		out = append(out, group{key: key, vals: fmt.Sprint(vs)})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func collectBaseline(t *testing.T, runs [][]KV) []group {
	t.Helper()
	var out []group
	err := concatSortGroups(runs, func(key string, vs []any) error {
		out = append(out, group{key: key, vals: fmt.Sprint(vs)})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func sameGroups(t *testing.T, got, want []group) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("group count = %d, want %d\ngot:  %v\nwant: %v", len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("group %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestMergeDuplicateKeysAcrossRuns(t *testing.T) {
	runs := [][]KV{
		{{K: "a", V: 1}, {K: "c", V: 2}, {K: "c", V: 3}},
		{{K: "a", V: 4}, {K: "b", V: 5}},
		{{K: "c", V: 6}},
	}
	got := collectGroups(t, runs)
	want := []group{
		{"a", "[1 4]"},
		{"b", "[5]"},
		{"c", "[2 3 6]"},
	}
	sameGroups(t, got, want)
}

func TestMergeEmptyRuns(t *testing.T) {
	if got := collectGroups(t, nil); len(got) != 0 {
		t.Fatalf("no runs should yield no groups, got %v", got)
	}
	if got := collectGroups(t, [][]KV{nil, {}, nil}); len(got) != 0 {
		t.Fatalf("empty runs should yield no groups, got %v", got)
	}
	runs := [][]KV{nil, {{K: "x", V: 1}}, {}, {{K: "x", V: 2}, {K: "y", V: 3}}}
	sameGroups(t, collectGroups(t, runs), []group{{"x", "[1 2]"}, {"y", "[3]"}})
}

func TestMergeSingleRunFastPath(t *testing.T) {
	runs := [][]KV{nil, {{K: "a", V: 1}, {K: "a", V: 2}, {K: "b", V: 3}}, nil}
	m := newMerge(runs)
	if m.single == nil {
		t.Fatal("one non-empty run should take the single-run fast path")
	}
	if m.heap != nil {
		t.Fatal("single-run merge should not build a heap")
	}
	sameGroups(t, collectGroups(t, runs), []group{{"a", "[1 2]"}, {"b", "[3]"}})
}

func TestMergeStableIntraKeyOrder(t *testing.T) {
	// Equal keys must come out in (run index, position-within-run) order:
	// run 0's values before run 1's, and emission order within each run.
	runs := [][]KV{
		{{K: "k", V: "r0p0"}, {K: "k", V: "r0p1"}},
		{{K: "k", V: "r1p0"}, {K: "k", V: "r1p1"}},
		{{K: "k", V: "r2p0"}},
	}
	sameGroups(t, collectGroups(t, runs), []group{{"k", "[r0p0 r0p1 r1p0 r1p1 r2p0]"}})
}

func TestMergeMatchesConcatSortRandomized(t *testing.T) {
	// Fuzz-style check: random emission-order buckets, grouped through the
	// old concat+stable-sort path versus per-run sort + k-way merge. The
	// two must agree exactly, including intra-key value order.
	rng := rand.New(rand.NewSource(42))
	keys := []string{"", "a", "aa", "ab", "b", "c", "ca", "d", "e", "zz"}
	for trial := 0; trial < 200; trial++ {
		numRuns := rng.Intn(6)
		raw := make([][]KV, numRuns)
		serial := 0
		for r := range raw {
			n := rng.Intn(20)
			for i := 0; i < n; i++ {
				raw[r] = append(raw[r], KV{K: keys[rng.Intn(len(keys))], V: serial})
				serial++
			}
		}
		want := collectBaseline(t, raw)
		sorted := make([][]KV, numRuns)
		for r := range raw {
			sorted[r] = append([]KV(nil), raw[r]...)
			sortRun(sorted[r])
		}
		got := collectGroups(t, sorted)
		sameGroups(t, got, want)
	}
}

func TestEachGroupErrorStopsIteration(t *testing.T) {
	runs := [][]KV{{{K: "a", V: 1}, {K: "b", V: 2}, {K: "c", V: 3}}}
	calls := 0
	var vals []any
	err := eachGroup(runs, &vals, func(key string, vs []any) error {
		calls++
		if key == "b" {
			return fmt.Errorf("boom at %s", key)
		}
		return nil
	})
	if err == nil || err.Error() != "boom at b" {
		t.Fatalf("err = %v", err)
	}
	if calls != 2 {
		t.Fatalf("calls = %d, want 2", calls)
	}
}

func TestEachGroupReusesValueBuffer(t *testing.T) {
	// The vals slice handed to fn shares one backing buffer across calls —
	// the iterator contract that kills the per-key []any allocation.
	runs := [][]KV{{{K: "a", V: 1}, {K: "a", V: 2}, {K: "b", V: 3}}}
	var vals []any
	var first, second []any
	if err := eachGroup(runs, &vals, func(key string, vs []any) error {
		if key == "a" {
			first = vs
		} else {
			second = vs
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(first) != 2 || len(second) != 1 {
		t.Fatalf("lens = %d, %d", len(first), len(second))
	}
	if &first[0] != &second[0] {
		t.Fatal("value buffer was not reused across groups")
	}
}

func TestEnsureSortedRun(t *testing.T) {
	sorted := []KV{{K: "a", V: 1}, {K: "a", V: 2}, {K: "b", V: 3}}
	if !runIsSorted(sorted) {
		t.Fatal("sorted run misreported")
	}
	unsorted := []KV{{K: "b", V: 1}, {K: "a", V: 2}, {K: "a", V: 3}}
	if runIsSorted(unsorted) {
		t.Fatal("unsorted run misreported")
	}
	ensureSortedRun(unsorted)
	if !runIsSorted(unsorted) {
		t.Fatal("ensureSortedRun left run unsorted")
	}
	// Stability: the two "a" values keep their relative order.
	if unsorted[0].V != 2 || unsorted[1].V != 3 {
		t.Fatalf("ensureSortedRun not stable: %v", unsorted)
	}
}

func TestKVBufPoolRoundTrip(t *testing.T) {
	buf := append(getKVBuf(), KV{K: "k", V: "v"})
	putKVBuf(buf)
	got := getKVBuf()
	if len(got) != 0 {
		t.Fatalf("recycled buffer not empty: %v", got)
	}
	// References must have been dropped on Put.
	if cap(got) > 0 {
		full := got[:1]
		if full[0].K != "" || full[0].V != nil {
			t.Fatalf("recycled buffer retains data: %+v", full[0])
		}
	}
	putKVBuf(got)
}

package mapreduce

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"scidp/internal/obs"
	"scidp/internal/sim"
)

// parallelRun executes one deterministic TeraSort-shaped job with the
// given data-plane worker count (-1 = no pool) and returns the result
// plus the raw observability exports. The map function forks one scan
// closure per reducer, so pooled runs genuinely emit from concurrent
// workers into disjoint buckets.
func parallelRun(t *testing.T, workers int, combine bool, faults TaskFaults) (*Result, []byte, []byte) {
	t.Helper()
	const rec, splitsN, recsPerSplit, reducers = 100, 4, 600, 3
	rng := rand.New(rand.NewSource(23))
	splits := make([]*Split, splitsN)
	for i := range splits {
		data := make([]byte, recsPerSplit*rec)
		rng.Read(data)
		for off := 0; off < len(data); off += rec {
			for j := 0; j < 10; j++ {
				data[off+j] = 'A' + data[off+j]%26
			}
		}
		splits[i] = &Split{Label: fmt.Sprintf("t%d", i), Payload: data, Length: int64(len(data))}
	}
	var pool *sim.ComputePool
	if workers >= 0 {
		pool = sim.NewComputePool(workers)
		defer pool.Close()
	}
	k := sim.NewKernel()
	k.SetComputePool(pool)
	reg := obs.New()
	reg.SetProcess("parallel-test")
	k.SetObs(reg)
	maxAttempts := 1
	var spec Speculation
	if faults != nil {
		maxAttempts = 3
		spec = Speculation{Quantile: 0.75, Multiplier: 1.5, MinCompleted: 2, Interval: 0.25}
	}
	job := &Job{
		Name:        "parallel-determinism",
		Cluster:     testCluster(k, 4, 2),
		TaskStartup: 0.1,
		Obs:         reg,
		Input:       byteRecords(splits),
		NumReducers: reducers,
		MaxAttempts: maxAttempts,
		Speculation: spec,
		Faults:      faults,
		PairBytes:   func(kv KV) int64 { return rec },
		Partition:   func(key string, n int) int { return int(key[0]) % n },
		Map: func(tc *TaskContext, key string, value any) error {
			data := value.([]byte)
			p := tc.Proc()
			futs := make([]*sim.Future, 0, reducers)
			for r := 0; r < reducers; r++ {
				r := r
				futs = append(futs, p.Compute(func() {
					for off := 0; off+rec <= len(data); off += rec {
						if int(data[off])%reducers != r {
							continue
						}
						tc.Emit(string(data[off:off+10]), data[off:off+rec])
					}
				}))
			}
			p.Await(futs...)
			tc.Counter("records", int64(recsPerSplit))
			return nil
		},
		Reduce: func(tc *TaskContext, key string, values []any) error {
			tc.Counter("groups", 1)
			tc.Emit(key, len(values))
			return nil
		},
	}
	if combine {
		job.Combine = func(tc *TaskContext, key string, values []any) error {
			// Re-emit pairs unchanged: exercises the combiner's
			// data-plane pre-sort without changing the output shape.
			for _, v := range values {
				tc.Emit(key, v)
			}
			return nil
		}
	}
	var res *Result
	var err error
	k.Go("driver", func(p *sim.Proc) { res, err = job.Run(p) })
	k.Run()
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	var tb, pb bytes.Buffer
	if err := reg.WriteChromeTrace(&tb); err != nil {
		t.Fatal(err)
	}
	if err := reg.WritePrometheus(&pb); err != nil {
		t.Fatal(err)
	}
	return res, tb.Bytes(), pb.Bytes()
}

// assertSameRun fails unless two runs match on everything the engine
// promises to keep worker-count invariant: output pairs, counters,
// shuffle accounting, per-task stats, virtual duration, and both
// observability export streams, byte for byte.
func assertSameRun(t *testing.T, label string, ref, got *Result, refTrace, gotTrace, refProm, gotProm []byte) {
	t.Helper()
	if !reflect.DeepEqual(ref.Output, got.Output) {
		t.Errorf("%s: outputs differ (%d vs %d pairs)", label, len(ref.Output), len(got.Output))
	}
	if !reflect.DeepEqual(ref.Counters, got.Counters) {
		t.Errorf("%s: counters differ: %v vs %v", label, ref.Counters, got.Counters)
	}
	if ref.ShuffleBytes != got.ShuffleBytes {
		t.Errorf("%s: shuffle bytes %d vs %d", label, ref.ShuffleBytes, got.ShuffleBytes)
	}
	if !reflect.DeepEqual(ref.MapStats, got.MapStats) || !reflect.DeepEqual(ref.ReduceStats, got.ReduceStats) {
		t.Errorf("%s: task stats differ", label)
	}
	if ref.Elapsed() != got.Elapsed() {
		t.Errorf("%s: virtual duration %v vs %v", label, ref.Elapsed(), got.Elapsed())
	}
	if !bytes.Equal(refTrace, gotTrace) {
		t.Errorf("%s: Chrome-trace exports differ", label)
	}
	if !bytes.Equal(refProm, gotProm) {
		t.Errorf("%s: Prometheus exports differ", label)
	}
}

// TestJobDeterministicAcrossWorkerCounts is the engine-level tentpole
// check: identical jobs at workers=1 and workers=8 produce byte-
// identical outputs, stats, and exports — with and without a combiner.
func TestJobDeterministicAcrossWorkerCounts(t *testing.T) {
	for _, combine := range []bool{false, true} {
		name := "plain"
		if combine {
			name = "combiner"
		}
		t.Run(name, func(t *testing.T) {
			ref, refTrace, refProm := parallelRun(t, 1, combine, nil)
			if len(ref.Output) == 0 || ref.ShuffleBytes == 0 {
				t.Fatal("degenerate reference run")
			}
			for _, workers := range []int{0, 8} {
				got, gotTrace, gotProm := parallelRun(t, workers, combine, nil)
				assertSameRun(t, fmt.Sprintf("workers=%d", workers), ref, got, refTrace, gotTrace, refProm, gotProm)
			}
		})
	}
}

// TestJobDeterministicUnderFaults repeats the worker-count comparison
// with injected task failures and stragglers plus speculation enabled —
// retries and backup attempts must also be worker-count invariant.
func TestJobDeterministicUnderFaults(t *testing.T) {
	faults := stubFaults(func(phase string, task, attempt int) (error, float64) {
		if phase == "map" && task == 1 && attempt == 1 {
			return fmt.Errorf("injected map failure"), 1
		}
		if phase == "map" && task == 2 && attempt == 1 {
			return nil, 6 // straggler: speculation should back it up
		}
		if phase == "reduce" && task == 0 && attempt == 1 {
			return fmt.Errorf("injected reduce failure"), 1
		}
		return nil, 1
	})
	ref, refTrace, refProm := parallelRun(t, 1, false, faults)
	for _, workers := range []int{0, 4} {
		got, gotTrace, gotProm := parallelRun(t, workers, false, faults)
		assertSameRun(t, fmt.Sprintf("workers=%d", workers), ref, got, refTrace, gotTrace, refProm, gotProm)
	}
}

// TestPooledMatchesNoPoolOutput compares the two-plane engine against
// the legacy no-pool path. Same-instant process interleavings differ
// (Await yields the kernel where inline execution does not), so exports
// are not comparable — but the job's semantic result must agree.
func TestPooledMatchesNoPoolOutput(t *testing.T) {
	legacy, _, _ := parallelRun(t, -1, false, nil)
	pooled, _, _ := parallelRun(t, 4, false, nil)
	if !reflect.DeepEqual(legacy.Output, pooled.Output) {
		t.Errorf("pooled output differs from no-pool output (%d vs %d pairs)", len(legacy.Output), len(pooled.Output))
	}
	if !reflect.DeepEqual(legacy.Counters, pooled.Counters) {
		t.Errorf("pooled counters differ from no-pool counters: %v vs %v", legacy.Counters, pooled.Counters)
	}
	if legacy.ShuffleBytes != pooled.ShuffleBytes {
		t.Errorf("shuffle bytes %d vs %d", legacy.ShuffleBytes, pooled.ShuffleBytes)
	}
}

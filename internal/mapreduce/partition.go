package mapreduce

// FNV-1a constants (hash/fnv's, inlined for a zero-allocation hot path).
const (
	fnvOffset32 = 2166136261
	fnvPrime32  = 16777619
)

// fnv1a32 hashes s with 32-bit FNV-1a, bit-identical to hash/fnv's
// New32a over the same bytes.
func fnv1a32(s string) uint32 {
	h := uint32(fnvOffset32)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= fnvPrime32
	}
	return h
}

// defaultPartition routes a key to a reducer by FNV-1a hash. The hash is
// inlined rather than going through hash/fnv, which costs a heap-allocated
// hasher plus a []byte conversion per emitted key.
func defaultPartition(key string, reducers int) int {
	return int(fnv1a32(key) % uint32(reducers))
}

package mapreduce

import (
	"fmt"
	"hash/fnv"
	"testing"
)

// hasherPartition is the pre-inline partitioner (one fnv.New32a per key)
// kept as the equivalence reference and the BenchmarkPartition baseline.
func hasherPartition(key string, reducers int) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(reducers))
}

func TestDefaultPartitionMatchesHasher(t *testing.T) {
	keys := []string{
		"", "a", "b", "ab", "ba", "count", "the", "rain",
		"plot_18_00_00.nc/QR#3", "héllo wörld", "\x00\xff\x10",
		"a-rather-long-key-with-structure/0123456789/abcdef",
	}
	for i := 0; i < 256; i++ {
		keys = append(keys, fmt.Sprintf("gen-%04d", i*31))
	}
	for _, reducers := range []int{1, 2, 3, 7, 8, 16, 17, 64} {
		for _, k := range keys {
			if got, want := defaultPartition(k, reducers), hasherPartition(k, reducers); got != want {
				t.Fatalf("defaultPartition(%q, %d) = %d, want %d", k, reducers, got, want)
			}
		}
	}
}

func TestFNV1a32MatchesStdlib(t *testing.T) {
	for _, s := range []string{"", "x", "chongo was here", "\xff\xfe"} {
		h := fnv.New32a()
		h.Write([]byte(s))
		if got, want := fnv1a32(s), h.Sum32(); got != want {
			t.Fatalf("fnv1a32(%q) = %#x, want %#x", s, got, want)
		}
	}
}

func TestDefaultPartitionAllocFree(t *testing.T) {
	keys := []string{"a", "count", "plot_18_00_00.nc/QR#3"}
	avg := testing.AllocsPerRun(100, func() {
		for _, k := range keys {
			defaultPartition(k, 8)
		}
	})
	if avg != 0 {
		t.Fatalf("defaultPartition allocates %v per run, want 0", avg)
	}
}

package mapreduce

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"scidp/internal/obs"
	"scidp/internal/sim"
)

// benchRuns builds numRuns sorted runs of perRun pairs each, with keys
// drawn from a shared space so duplicates straddle runs — the shape a
// combiner-fed reducer sees.
func benchRuns(numRuns, perRun int) [][]KV {
	rng := rand.New(rand.NewSource(7))
	runs := make([][]KV, numRuns)
	for r := range runs {
		kvs := make([]KV, perRun)
		for i := range kvs {
			kvs[i] = KV{K: fmt.Sprintf("key-%05d", rng.Intn(perRun*2)), V: i}
		}
		sortRun(kvs)
		runs[r] = kvs
	}
	return runs
}

// BenchmarkShuffleMerge compares the reducer-side data plane on identical
// sorted runs: the streaming k-way merge with a pooled value buffer
// versus the pre-PR concat + sort.SliceStable + per-key []any path.
func BenchmarkShuffleMerge(b *testing.B) {
	const numRuns, perRun = 8, 4096
	runs := benchRuns(numRuns, perRun)
	b.Run("merge", func(b *testing.B) {
		b.ReportAllocs()
		var vals []any
		for i := 0; i < b.N; i++ {
			n := 0
			if err := eachGroup(runs, &vals, func(key string, vs []any) error {
				n += len(vs)
				return nil
			}); err != nil {
				b.Fatal(err)
			}
			if n != numRuns*perRun {
				b.Fatalf("consumed %d pairs, want %d", n, numRuns*perRun)
			}
		}
	})
	b.Run("concat-sort-baseline", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			n := 0
			if err := concatSortGroups(runs, func(key string, vs []any) error {
				n += len(vs)
				return nil
			}); err != nil {
				b.Fatal(err)
			}
			if n != numRuns*perRun {
				b.Fatalf("consumed %d pairs, want %d", n, numRuns*perRun)
			}
		}
	})
}

// BenchmarkPartition compares the inlined FNV-1a partitioner against the
// old per-key fnv.New32a hasher.
func BenchmarkPartition(b *testing.B) {
	keys := make([]string, 64)
	for i := range keys {
		keys[i] = fmt.Sprintf("plot_18_%02d_00.nc/QR#%d", i%24, i)
	}
	b.Run("inline", func(b *testing.B) {
		b.ReportAllocs()
		sink := 0
		for i := 0; i < b.N; i++ {
			sink += defaultPartition(keys[i%len(keys)], 8)
		}
		if sink < 0 {
			b.Fatal("impossible")
		}
	})
	b.Run("hasher-baseline", func(b *testing.B) {
		b.ReportAllocs()
		sink := 0
		for i := 0; i < b.N; i++ {
			sink += hasherPartition(keys[i%len(keys)], 8)
		}
		if sink < 0 {
			b.Fatal("impossible")
		}
	})
}

// byteRecords is an InputFormat whose splits carry pre-built byte
// payloads of fixed-width records (the TeraSort shape).
type byteRecords []*Split

func (s byteRecords) Splits(p *sim.Proc) ([]*Split, error) { return s, nil }

func (s byteRecords) ForEach(tc *TaskContext, sp *Split, fn func(key string, value any) error) error {
	return fn(sp.Label, sp.Payload)
}

// benchTeraSort runs the full TeraSort-shaped job — map emits every
// 100-byte record keyed by its 10-byte prefix, 4 reducers merge and
// count — through the whole engine (scheduling, partitioning, shuffle,
// sort-merge, reduce). withObs attaches a fresh metrics registry (and
// kernel span tracer) per iteration, measuring the instrumented path.
// workers < 0 runs without a data plane (the pre-two-plane engine);
// workers >= 0 attaches a ComputePool of that size, and the map
// function forks one scan closure per reducer — each closure extracts
// only its own bucket's records in record order, so buckets (and the
// job output) are identical to a serial scan.
func benchTeraSort(b *testing.B, withObs bool, workers, splitsN, recsPerSplit int) {
	const rec = 100
	const reducers = 4
	rng := rand.New(rand.NewSource(11))
	splits := make([]*Split, splitsN)
	for i := range splits {
		data := make([]byte, recsPerSplit*rec)
		rng.Read(data)
		for off := 0; off < len(data); off += rec {
			for j := 0; j < 10; j++ {
				data[off+j] = 'A' + data[off+j]%26
			}
		}
		splits[i] = &Split{Label: fmt.Sprintf("t%d", i), Payload: data, Length: int64(len(data))}
	}
	var pool *sim.ComputePool
	if workers >= 0 {
		pool = sim.NewComputePool(workers)
		defer pool.Close()
	}
	// The serial shape is exactly PR 4's job (single-scan map, range
	// partition); the pooled shape spreads keys with a modulo partition
	// and forks one scan closure per reducer — closure r emits only
	// bucket r's records, in record order, so the closures write
	// disjoint buckets and can run concurrently on the data plane.
	partition := func(key string, n int) int { return int(key[0]) * n / 256 }
	mapFn := func(tc *TaskContext, key string, value any) error {
		data := value.([]byte)
		for off := 0; off+rec <= len(data); off += rec {
			tc.Emit(string(data[off:off+10]), data[off:off+rec])
		}
		return nil
	}
	if workers >= 0 {
		partition = func(key string, n int) int { return int(key[0]) % n }
		mapFn = func(tc *TaskContext, key string, value any) error {
			data := value.([]byte)
			p := tc.Proc()
			futs := make([]*sim.Future, 0, reducers)
			for r := 0; r < reducers; r++ {
				r := r
				futs = append(futs, p.Compute(func() {
					for off := 0; off+rec <= len(data); off += rec {
						if int(data[off])%reducers != r {
							continue
						}
						tc.Emit(string(data[off:off+10]), data[off:off+rec])
					}
				}))
			}
			p.Await(futs...)
			return nil
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := sim.NewKernel()
		k.SetComputePool(pool)
		var reg *obs.Registry
		if withObs {
			reg = obs.New()
			k.SetObs(reg)
		}
		var total int
		job := &Job{
			Name:        "terasort-wall",
			Cluster:     testCluster(k, 4, 2),
			TaskStartup: 0.1,
			Obs:         reg,
			Input:       byteRecords(splits),
			NumReducers: reducers,
			PairBytes:   func(kv KV) int64 { return rec },
			Partition:   partition,
			Map:         mapFn,
			Reduce: func(tc *TaskContext, key string, values []any) error {
				total += len(values)
				tc.Emit(key, len(values))
				return nil
			},
		}
		var res *Result
		var err error
		k.Go("driver", func(p *sim.Proc) { res, err = job.Run(p) })
		k.Run()
		if err != nil {
			b.Fatal(err)
		}
		if total != splitsN*recsPerSplit {
			b.Fatalf("reduced %d records, want %d", total, splitsN*recsPerSplit)
		}
		if res.Elapsed() <= 0 {
			b.Fatal("no virtual time elapsed")
		}
		if withObs && reg.SpanCount() == 0 {
			b.Fatal("attached run recorded no spans")
		}
	}
}

// BenchmarkTeraSortWall measures the engine's real wall-clock. The
// serial sub-benchmark runs the PR 4 geometry with no data plane (every
// instrumentation site takes the nil fast path — comparable against
// BENCH_obs.json). The workers=N family runs a larger geometry through
// the two-plane executor; speedup over workers=1 tracks the machine's
// core count on the map/sort phases (on a single-core host all worker
// counts are within noise of each other, by design — determinism never
// depends on the count).
func BenchmarkTeraSortWall(b *testing.B) {
	b.Run("serial", func(b *testing.B) { benchTeraSort(b, false, -1, 4, 2000) })
	counts := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		counts = append(counts, n)
	}
	for _, w := range counts {
		w := w
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			benchTeraSort(b, false, w, 8, 6000)
		})
	}
}

// BenchmarkTeraSortWallObs is the serial job with metrics and spans on.
func BenchmarkTeraSortWallObs(b *testing.B) { benchTeraSort(b, true, -1, 4, 2000) }

package mapreduce

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"scidp/internal/cluster"
	"scidp/internal/sim"
)

// streamInput is a StreamingInput that mints splits on demand and records
// how far the engine pulled ahead of completed reads — the lazy-window
// contract under test. Splits must never be called on it.
type streamInput struct {
	total   int
	line    string
	failAt  int // >0: Next errors after this many pulls
	pulled  int
	done    int // splits fully read
	maxLive int // max pulled-but-unread splits observed
	eager   bool
}

func (s *streamInput) Splits(p *sim.Proc) ([]*Split, error) {
	if !s.eager {
		return nil, errors.New("Splits called on a StreamingInput")
	}
	var splits []*Split
	for i := 0; i < s.total; i++ {
		splits = append(splits, &Split{Label: fmt.Sprintf("st%d", i), Payload: s.line})
	}
	return splits, nil
}

func (s *streamInput) SplitSource(p *sim.Proc) (SplitSource, error) { return s, nil }

func (s *streamInput) Next(p *sim.Proc) (*Split, error) {
	if s.failAt > 0 && s.pulled == s.failAt {
		return nil, errors.New("stream broke")
	}
	if s.pulled >= s.total {
		return nil, nil
	}
	i := s.pulled
	s.pulled++
	if live := s.pulled - s.done; live > s.maxLive {
		s.maxLive = live
	}
	return &Split{Label: fmt.Sprintf("st%d", i), Payload: s.line}, nil
}

func (s *streamInput) ForEach(tc *TaskContext, sp *Split, fn func(key string, value any) error) error {
	tc.Charge("Read", 0.05)
	if err := fn(sp.Label, sp.Payload.(string)); err != nil {
		return err
	}
	s.done++
	return nil
}

func streamJob(k *sim.Kernel, in InputFormat, nodes, slots, reducers, window int) *Job {
	j := wordCountJob(k, in, nodes, slots, reducers)
	j.Input = in
	j.SplitWindow = window
	return j
}

func TestStreamingWindowBoundsOutstandingSplits(t *testing.T) {
	k := sim.NewKernel()
	in := &streamInput{total: 200, line: "a b"}
	res := runJob(t, k, streamJob(k, in, 2, 2, 2, 16))
	if in.pulled != 200 || in.done != 200 {
		t.Fatalf("pulled %d done %d, want 200/200", in.pulled, in.done)
	}
	// The engine may hold a full window queued plus one task per slot in
	// flight; anything past that means splits were materialized eagerly.
	if limit := 16 + 2*2 + 1; in.maxLive > limit {
		t.Fatalf("engine ran %d splits ahead, want <= %d", in.maxLive, limit)
	}
	want := map[string]int{"a": 200, "b": 200}
	for _, kv := range res.Output {
		if kv.V.(int) != want[kv.K] {
			t.Errorf("%s = %v, want %d", kv.K, kv.V, want[kv.K])
		}
	}
	if len(res.MapStats) != 200 {
		t.Fatalf("map stats = %d, want 200", len(res.MapStats))
	}
}

func TestStreamingMatchesEagerInput(t *testing.T) {
	run := func(eager bool) *Result {
		k := sim.NewKernel()
		in := &streamInput{total: 40, line: "x y z", eager: eager}
		var j *Job
		if eager {
			// Route around the StreamingInput interface so the engine
			// takes the Splits path with identical data.
			j = streamJob(k, eagerOnly{in}, 3, 2, 2, 0)
		} else {
			j = streamJob(k, in, 3, 2, 2, 0)
		}
		return runJob(t, k, j)
	}
	se, le := run(false), run(true)
	if se.Elapsed() != le.Elapsed() {
		t.Fatalf("streaming elapsed %v != eager elapsed %v", se.Elapsed(), le.Elapsed())
	}
	if len(se.Output) != len(le.Output) {
		t.Fatalf("output sizes differ: %d vs %d", len(se.Output), len(le.Output))
	}
	for i := range se.Output {
		if se.Output[i] != le.Output[i] {
			t.Fatalf("output[%d]: %+v vs %+v", i, se.Output[i], le.Output[i])
		}
	}
}

// eagerOnly hides the StreamingInput methods of the wrapped format.
type eagerOnly struct{ in *streamInput }

func (e eagerOnly) Splits(p *sim.Proc) ([]*Split, error) { return e.in.Splits(p) }
func (e eagerOnly) ForEach(tc *TaskContext, s *Split, fn func(key string, value any) error) error {
	return e.in.ForEach(tc, s, fn)
}

func TestStreamingErrorMidwayFailsJob(t *testing.T) {
	k := sim.NewKernel()
	in := &streamInput{total: 100, line: "a", failAt: 20}
	job := streamJob(k, in, 2, 2, 1, 8)
	var err error
	k.Go("driver", func(p *sim.Proc) {
		_, err = job.Run(p)
	})
	k.Run()
	if err == nil || !strings.Contains(err.Error(), "stream broke") {
		t.Fatalf("err = %v, want stream broke", err)
	}
}

func topoCluster(k *sim.Kernel, nodes, slots, perRack, racksPerZone int) *cluster.Cluster {
	return cluster.New(k, "bd", cluster.Config{
		Nodes: nodes, SlotsPerNode: slots,
		DiskBW: 1e6, NICBW: 1e6, FabricBW: 1e6,
		NodesPerRack: perRack, RacksPerZone: racksPerZone,
	})
}

// TestRackLocalityEscalation: two splits pinned to bd-0 on a 4-node,
// 2-per-rack cluster with one slot each. bd-0 runs one; its rack mate
// bd-1 picks the other after 3 delay beats (0.6 s), well before the other
// rack's steal threshold (6 beats) — so both tasks stay on rack 0.
func TestRackLocalityEscalation(t *testing.T) {
	k := sim.NewKernel()
	in := &memInput{readCost: 2.0}
	for i := 0; i < 2; i++ {
		in.splits = append(in.splits, &Split{
			Label: fmt.Sprintf("pin-%d", i), Payload: []string{"a"},
			Locations: []string{"bd-0"},
		})
	}
	job := wordCountJob(k, in, 4, 1, 1)
	job.Cluster = topoCluster(k, 4, 1, 2, 0)
	res := runJob(t, k, job)
	nodes := map[string]bool{}
	for _, ts := range res.MapStats {
		nodes[ts.Node] = true
	}
	if !nodes["bd-0"] || !nodes["bd-1"] || len(nodes) != 2 {
		t.Fatalf("tasks ran on %v, want exactly {bd-0, bd-1} (rack-local pickup)", nodes)
	}
}

// TestZoneLocalityEscalation: one node per rack, two racks per zone. The
// zone mate (bd-1) reaches its zone tier at 6 beats while out-of-zone
// nodes cannot steal before 9 — the second pinned task must land on bd-1.
func TestZoneLocalityEscalation(t *testing.T) {
	k := sim.NewKernel()
	in := &memInput{readCost: 3.0}
	for i := 0; i < 2; i++ {
		in.splits = append(in.splits, &Split{
			Label: fmt.Sprintf("pin-%d", i), Payload: []string{"a"},
			Locations: []string{"bd-0"},
		})
	}
	job := wordCountJob(k, in, 4, 1, 1)
	job.Cluster = topoCluster(k, 4, 1, 1, 2)
	res := runJob(t, k, job)
	nodes := map[string]bool{}
	for _, ts := range res.MapStats {
		nodes[ts.Node] = true
	}
	if !nodes["bd-0"] || !nodes["bd-1"] || len(nodes) != 2 {
		t.Fatalf("tasks ran on %v, want exactly {bd-0, bd-1} (zone-local pickup)", nodes)
	}
}

// TestQueueCompaction drains a large pushed set and checks consumed
// entries do not accumulate: lists stay near the live count and drained
// index keys disappear.
func TestQueueCompaction(t *testing.T) {
	q := newLocalityQueue(nil)
	const n = 20000
	for i := 0; i < n; i++ {
		q.push(&task{index: i, locs: []string{fmt.Sprintf("h%d", i%7)}})
	}
	for i := 0; i < n; i++ {
		var got *task
		if i%2 == 0 {
			got = q.pickLocal(fmt.Sprintf("h%d", i%7))
		}
		if got == nil {
			got = q.pickAny()
		}
		if got == nil {
			t.Fatalf("queue empty after %d picks, want %d", i, n)
		}
	}
	if !q.empty() {
		t.Fatalf("live = %d after draining", q.live)
	}
	if len(q.fifo) > 4*256 {
		t.Fatalf("fifo retains %d consumed entries", len(q.fifo))
	}
	// Only the last sub-threshold batch of consumed entries may linger in
	// the host index; the old queue kept one entry per task forever.
	residual := 0
	for _, list := range q.byHost {
		residual += len(list)
	}
	if residual > 256 {
		t.Fatalf("byHost retains %d consumed entries: leak", residual)
	}
}

// TestDrainedHostKeyDeleted is the narrow regression test for the old
// leak: a host's index entry must vanish once its queued tasks drain.
func TestDrainedHostKeyDeleted(t *testing.T) {
	q := newLocalityQueue(nil)
	q.push(&task{index: 0, locs: []string{"h1"}})
	if q.pickLocal("h1") == nil {
		t.Fatal("pickLocal missed the pushed task")
	}
	if q.pickLocal("h1") != nil {
		t.Fatal("queue should be empty")
	}
	if _, ok := q.byHost["h1"]; ok {
		t.Fatal("drained byHost entry not deleted")
	}
}

// Package mpiio models MPI-IO over the parallel file system: independent
// reads (each rank issues its own requests, MPI_File_read_at) and
// two-phase collective reads (requests are merged into large contiguous
// regions, a subset of ranks acts as aggregators that read those regions,
// then pieces are redistributed to their owners over the compute fabric —
// MPI_File_read_at_all). Figure 6 of the SciDP paper contrasts exactly
// these modes against SciDP's per-task readers.
package mpiio

import (
	"fmt"

	"scidp/internal/cluster"
	"scidp/internal/ioengine"
	"scidp/internal/pfs"
	"scidp/internal/sim"
)

// Rank is one MPI process: where it runs and how it mounts the PFS.
type Rank struct {
	// Node is the machine the rank runs on.
	Node *cluster.Node
	// Client is the rank's PFS mount.
	Client *pfs.Client
}

// Comm is a communicator: the ranks plus the compute cluster whose fabric
// carries the redistribution phase of collective I/O.
type Comm struct {
	k       *sim.Kernel
	cluster *cluster.Cluster
	ranks   []Rank
}

// NewComm builds a communicator over the given ranks.
func NewComm(k *sim.Kernel, cl *cluster.Cluster, ranks []Rank) *Comm {
	if len(ranks) == 0 {
		panic("mpiio: communicator needs at least one rank")
	}
	return &Comm{k: k, cluster: cl, ranks: ranks}
}

// Size returns the rank count.
func (c *Comm) Size() int { return len(c.ranks) }

// Ranks returns the communicator's ranks in order.
func (c *Comm) Ranks() []Rank { return c.ranks }

// Range is one rank's byte request against the shared file — the
// ioengine byte range, so file views, HDFS stitching, and chunk plans
// share one type.
type Range = ioengine.Range

// Result collects a collective operation's outcome. Fields are valid
// after the kernel has drained (sim.Kernel.Run) or after Await returns.
type Result struct {
	done *sim.WaitGroup

	// Data holds each rank's bytes, indexed by rank.
	Data [][]byte
	// Start is the virtual time the operation began.
	Start float64
	// End is the virtual time the last rank finished.
	End float64
	// Err is the first error any rank hit.
	Err error
}

// Elapsed returns the operation's virtual duration.
func (r *Result) Elapsed() float64 { return r.End - r.Start }

// Await blocks the calling process until the operation completes —
// the collective's implicit barrier, usable from a driver that issued
// the operation mid-simulation.
func (r *Result) Await(p *sim.Proc) { p.Wait(r.done) }

func (r *Result) fail(err error) {
	if r.Err == nil {
		r.Err = err
	}
}

// IndependentRead starts one process per rank, each issuing its own
// ReadAt for its request (reqs is indexed by rank; a zero-length Range
// makes that rank a no-op). Returns immediately; run the kernel to
// completion before reading the Result.
func (c *Comm) IndependentRead(path string, reqs []Range) *Result {
	if len(reqs) != len(c.ranks) {
		panic(fmt.Sprintf("mpiio: %d requests for %d ranks", len(reqs), len(c.ranks)))
	}
	res := &Result{Data: make([][]byte, len(reqs)), Start: c.k.Now(), done: c.k.NewWaitGroup()}
	res.done.Add(len(c.ranks))
	for i := range c.ranks {
		i := i
		c.k.Go(fmt.Sprintf("mpiio/ind-%d", i), func(p *sim.Proc) {
			defer res.done.Done()
			req := reqs[i]
			if req.Len > 0 {
				data, err := c.ranks[i].Client.ReadAt(p, path, req.Off, req.Len)
				if err != nil {
					res.fail(err)
					return
				}
				res.Data[i] = data
			}
			if p.Now() > res.End {
				res.End = p.Now()
			}
		})
	}
	return res
}

// region is a merged contiguous area owned by one aggregator.
type region struct {
	off, length int64
	agg         int // rank index of the aggregator
}

// CollectiveRead performs a two-phase collective read: the union of all
// requests is split into contiguous regions across the first `aggregators`
// ranks (0 = every rank aggregates); each aggregator reads its region in
// one large PFS request; then each rank receives its pieces over the
// compute fabric. Returns immediately; run the kernel before reading the
// Result.
func (c *Comm) CollectiveRead(path string, reqs []Range, aggregators int) *Result {
	if len(reqs) != len(c.ranks) {
		panic(fmt.Sprintf("mpiio: %d requests for %d ranks", len(reqs), len(c.ranks)))
	}
	if aggregators <= 0 || aggregators > len(c.ranks) {
		aggregators = len(c.ranks)
	}
	res := &Result{Data: make([][]byte, len(reqs)), Start: c.k.Now(), done: c.k.NewWaitGroup()}
	res.done.Add(len(c.ranks))

	// Merge requests into the covering span and carve it into equal
	// regions, one per aggregator (two-phase I/O's file-domain split).
	lo, hi := int64(-1), int64(-1)
	for _, r := range reqs {
		if r.Len <= 0 {
			continue
		}
		if lo < 0 || r.Off < lo {
			lo = r.Off
		}
		if r.Off+r.Len > hi {
			hi = r.Off + r.Len
		}
	}
	if lo < 0 {
		res.End = c.k.Now()
		res.done.Add(-len(c.ranks))
		return res // nothing requested
	}
	span := hi - lo
	per := (span + int64(aggregators) - 1) / int64(aggregators)
	var regions []region
	for a := 0; a < aggregators; a++ {
		off := lo + int64(a)*per
		if off >= hi {
			break
		}
		l := per
		if off+l > hi {
			l = hi - off
		}
		regions = append(regions, region{off: off, length: l, agg: a})
	}

	phase1 := c.k.NewWaitGroup()
	phase1.Add(len(regions))
	buffers := make([][]byte, len(regions))

	for ri := range regions {
		ri := ri
		rg := regions[ri]
		c.k.Go(fmt.Sprintf("mpiio/agg-%d", rg.agg), func(p *sim.Proc) {
			data, err := c.ranks[rg.agg].Client.ReadAt(p, path, rg.off, rg.length)
			if err != nil {
				res.fail(err)
			}
			buffers[ri] = data
			phase1.Done()
		})
	}

	// Phase 2: each rank waits for phase 1 then pulls its pieces from the
	// aggregators that hold them.
	for i := range c.ranks {
		i := i
		c.k.Go(fmt.Sprintf("mpiio/recv-%d", i), func(p *sim.Proc) {
			defer res.done.Done()
			p.Wait(phase1)
			if res.Err != nil {
				return
			}
			req := reqs[i]
			if req.Len > 0 {
				out := make([]byte, req.Len)
				var parts []sim.Part
				for ri, rg := range regions {
					piece, ok := req.Intersect(Range{Off: rg.off, Len: rg.length})
					if !ok {
						continue
					}
					s, e := piece.Off, piece.End()
					copy(out[s-req.Off:e-req.Off], buffers[ri][s-rg.off:e-rg.off])
					src := c.ranks[rg.agg].Node
					if src != c.ranks[i].Node {
						parts = append(parts, sim.Part{
							Bytes: float64(e - s),
							Res:   c.cluster.NetPath(src, c.ranks[i].Node),
						})
					}
				}
				p.TransferAll(parts...)
				res.Data[i] = out
			}
			if p.Now() > res.End {
				res.End = p.Now()
			}
		})
	}
	return res
}

// CollectiveWrite performs a two-phase collective write: each rank's
// piece is gathered to aggregators over the compute fabric, and each
// aggregator issues one large contiguous write to the PFS —
// MPI_File_write_at_all, the pattern a simulation's I/O phase uses. reqs
// and data are indexed by rank; the file must already exist (Create it
// first). Returns immediately; run the kernel before reading the Result.
func (c *Comm) CollectiveWrite(path string, reqs []Range, data [][]byte, aggregators int) *Result {
	if len(reqs) != len(c.ranks) || len(data) != len(c.ranks) {
		panic(fmt.Sprintf("mpiio: %d requests / %d buffers for %d ranks", len(reqs), len(data), len(c.ranks)))
	}
	if aggregators <= 0 || aggregators > len(c.ranks) {
		aggregators = len(c.ranks)
	}
	res := &Result{Start: c.k.Now(), done: c.k.NewWaitGroup()}

	lo, hi := int64(-1), int64(-1)
	for i, r := range reqs {
		if r.Len <= 0 {
			continue
		}
		if int64(len(data[i])) != r.Len {
			res.fail(fmt.Errorf("mpiio: rank %d buffer %d bytes, request %d", i, len(data[i]), r.Len))
			return res
		}
		if lo < 0 || r.Off < lo {
			lo = r.Off
		}
		if r.Off+r.Len > hi {
			hi = r.Off + r.Len
		}
	}
	if lo < 0 {
		res.End = c.k.Now()
		return res
	}
	span := hi - lo
	per := (span + int64(aggregators) - 1) / int64(aggregators)
	var regions []region
	for a := 0; a < aggregators; a++ {
		off := lo + int64(a)*per
		if off >= hi {
			break
		}
		l := per
		if off+l > hi {
			l = hi - off
		}
		regions = append(regions, region{off: off, length: l, agg: a})
	}
	res.done.Add(len(regions))

	// Phase 1: every rank pushes its overlapping pieces to the owning
	// aggregators; buffers assemble in aggregator memory.
	buffers := make([][]byte, len(regions))
	for ri, rg := range regions {
		buffers[ri] = make([]byte, rg.length)
	}
	gather := c.k.NewWaitGroup()
	gather.Add(len(c.ranks))
	for i := range c.ranks {
		i := i
		c.k.Go(fmt.Sprintf("mpiio/send-%d", i), func(p *sim.Proc) {
			defer gather.Done()
			req := reqs[i]
			if req.Len <= 0 {
				return
			}
			var parts []sim.Part
			for ri, rg := range regions {
				piece, ok := req.Intersect(Range{Off: rg.off, Len: rg.length})
				if !ok {
					continue
				}
				s, e := piece.Off, piece.End()
				copy(buffers[ri][s-rg.off:e-rg.off], data[i][s-req.Off:e-req.Off])
				dst := c.ranks[rg.agg].Node
				if dst != c.ranks[i].Node {
					parts = append(parts, sim.Part{
						Bytes: float64(e - s),
						Res:   c.cluster.NetPath(c.ranks[i].Node, dst),
					})
				}
			}
			p.TransferAll(parts...)
		})
	}
	// Phase 2: aggregators write their regions after the gather.
	for ri := range regions {
		ri := ri
		rg := regions[ri]
		c.k.Go(fmt.Sprintf("mpiio/agg-write-%d", rg.agg), func(p *sim.Proc) {
			defer res.done.Done()
			p.Wait(gather)
			if res.Err != nil {
				return
			}
			if err := c.ranks[rg.agg].Client.WriteAt(p, path, buffers[ri], rg.off); err != nil {
				res.fail(err)
			}
			if p.Now() > res.End {
				res.End = p.Now()
			}
		})
	}
	return res
}

// ContiguousSplit carves [0, size) into count near-equal rank requests —
// the flat-file decomposition used for the "MPI Coll I/O" ideal-bandwidth
// series.
func ContiguousSplit(size int64, count int) []Range {
	out := make([]Range, count)
	per := (size + int64(count) - 1) / int64(count)
	var off int64
	for i := 0; i < count; i++ {
		l := per
		if off+l > size {
			l = size - off
		}
		if l < 0 {
			l = 0
		}
		out[i] = Range{Off: off, Len: l}
		off += l
	}
	return out
}

// MergeRanges sorts and coalesces overlapping or adjacent ranges — the
// shared ioengine.Merge.
func MergeRanges(in []Range) []Range { return ioengine.Merge(in) }

package mpiio

import (
	"bytes"
	"testing"
	"testing/quick"

	"scidp/internal/cluster"
	"scidp/internal/pfs"
	"scidp/internal/sim"
)

// rig builds a kernel, an HPC cluster, a PFS with a test file, and a
// communicator with one rank per node.
func rig(t *testing.T, nodes int, fileSize int) (*sim.Kernel, *Comm, []byte) {
	t.Helper()
	k := sim.NewKernel()
	cl := cluster.New(k, "hpc", cluster.Config{
		Nodes: nodes, SlotsPerNode: 1,
		DiskBW: 1e6, NICBW: 1000, FabricBW: float64(nodes) * 1000,
	})
	pcfg := pfs.DefaultConfig()
	pcfg.OSTBW = 500
	pcfg.OSSNICBW = 1e6
	pcfg.FabricBW = 1e6
	pcfg.DefaultStripeSize = 64
	pcfg.DefaultStripeCount = 8
	pcfg.OSTLatency = 0.01
	pcfg.MDSLatency = 0
	fs := pfs.New(k, pcfg)
	data := make([]byte, fileSize)
	for i := range data {
		data[i] = byte(i * 31)
	}
	fs.Put("/f", data)
	ranks := make([]Rank, nodes)
	for i := range ranks {
		ranks[i] = Rank{Node: cl.Node(i), Client: fs.NewClient(cl.Node(i).NIC)}
	}
	return k, NewComm(k, cl, ranks), data
}

func TestIndependentReadCorrectness(t *testing.T) {
	k, comm, data := rig(t, 4, 1024)
	reqs := ContiguousSplit(1024, 4)
	res := comm.IndependentRead("/f", reqs)
	k.Run()
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	var all []byte
	for _, d := range res.Data {
		all = append(all, d...)
	}
	if !bytes.Equal(all, data) {
		t.Fatal("independent read reassembly mismatch")
	}
	if res.Elapsed() <= 0 {
		t.Fatal("elapsed should be positive")
	}
}

func TestCollectiveReadCorrectness(t *testing.T) {
	k, comm, data := rig(t, 4, 1024)
	// Interleaved small requests: rank i reads bytes [i*16 + 64*j ...).
	reqs := make([]Range, 4)
	for i := range reqs {
		reqs[i] = Range{Off: int64(i) * 256, Len: 256}
	}
	res := comm.CollectiveRead("/f", reqs, 2)
	k.Run()
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	for i, d := range res.Data {
		if !bytes.Equal(d, data[i*256:(i+1)*256]) {
			t.Fatalf("rank %d data mismatch", i)
		}
	}
}

func TestCollectiveBeatsIndependentOnFragmentedRequests(t *testing.T) {
	// Many small strided requests pay per-request OST latency when
	// independent; two-phase coalesces them into two large reads.
	const nodes, size = 8, 4096
	frag := func(collective bool) float64 {
		k, comm, _ := rig(t, nodes, size)
		reqs := make([]Range, nodes)
		for i := range reqs {
			reqs[i] = Range{Off: int64(i) * (size / nodes), Len: size / nodes}
		}
		// Each rank's request further fragments into 8 sub-reads when
		// independent (simulating per-chunk reads).
		var res *Result
		if collective {
			res = comm.CollectiveRead("/f", reqs, 2)
		} else {
			sub := make([]Range, nodes)
			copy(sub, reqs)
			res = comm.IndependentRead("/f", sub)
			// Issue 7 more fragmented rounds to model chunk-at-a-time reads.
			for r := 1; r < 8; r++ {
				for i := range sub {
					sub[i] = Range{Off: reqs[i].Off + int64(r)*(size/nodes/8), Len: size / nodes / 8}
				}
				res = comm.IndependentRead("/f", sub)
			}
		}
		k.Run()
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		return k.Now()
	}
	ind, coll := frag(false), frag(true)
	if coll >= ind {
		t.Fatalf("collective (%v) should beat fragmented independent (%v)", coll, ind)
	}
}

func TestCollectiveEmptyRequests(t *testing.T) {
	k, comm, _ := rig(t, 3, 256)
	res := comm.CollectiveRead("/f", make([]Range, 3), 0)
	k.Run()
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	for _, d := range res.Data {
		if d != nil {
			t.Fatal("no data expected")
		}
	}
}

func TestIndependentReadError(t *testing.T) {
	k, comm, _ := rig(t, 2, 256)
	res := comm.IndependentRead("/missing", ContiguousSplit(256, 2))
	k.Run()
	if res.Err == nil {
		t.Fatal("missing file should surface an error")
	}
}

func TestContiguousSplit(t *testing.T) {
	rs := ContiguousSplit(100, 3)
	if len(rs) != 3 {
		t.Fatalf("len = %d", len(rs))
	}
	var total int64
	prevEnd := int64(0)
	for _, r := range rs {
		if r.Off != prevEnd {
			t.Fatalf("gap at %d", r.Off)
		}
		prevEnd = r.Off + r.Len
		total += r.Len
	}
	if total != 100 {
		t.Fatalf("total = %d", total)
	}
	// More ranks than bytes: trailing ranks get zero-length requests.
	rs = ContiguousSplit(2, 4)
	if rs[0].Len+rs[1].Len+rs[2].Len+rs[3].Len != 2 {
		t.Fatal("tiny split must still cover the file")
	}
}

func TestMergeRanges(t *testing.T) {
	in := []Range{{Off: 10, Len: 5}, {Off: 0, Len: 4}, {Off: 14, Len: 6}, {Off: 4, Len: 2}, {Off: 30, Len: 0}}
	out := MergeRanges(in)
	want := []Range{{Off: 0, Len: 6}, {Off: 10, Len: 10}}
	if len(out) != len(want) {
		t.Fatalf("merged = %+v", out)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("merged[%d] = %+v, want %+v", i, out[i], want[i])
		}
	}
}

// TestMergeRangesProperty: merged ranges are sorted, disjoint, and cover
// exactly the union of the inputs.
func TestMergeRangesProperty(t *testing.T) {
	f := func(offs [6]uint8, lens [6]uint8) bool {
		in := make([]Range, 6)
		covered := map[int64]bool{}
		for i := range in {
			in[i] = Range{Off: int64(offs[i]), Len: int64(lens[i]) % 16}
			for b := in[i].Off; b < in[i].Off+in[i].Len; b++ {
				covered[b] = true
			}
		}
		out := MergeRanges(in)
		var prevEnd int64 = -1
		outCovered := map[int64]bool{}
		for _, r := range out {
			if r.Off <= prevEnd || r.Len <= 0 {
				return false
			}
			prevEnd = r.Off + r.Len - 1
			for b := r.Off; b < r.Off+r.Len; b++ {
				outCovered[b] = true
			}
		}
		if len(covered) != len(outCovered) {
			return false
		}
		for b := range covered {
			if !outCovered[b] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMoreReadersRaiseAggregateBandwidth(t *testing.T) {
	// Doubling ranks over a wide-striped file should cut wall time, up to
	// OST saturation — the shape of the paper's Figure 6.
	elapsed := func(nodes int) float64 {
		k, comm, _ := rig(t, nodes, 8192)
		res := comm.IndependentRead("/f", ContiguousSplit(8192, nodes))
		k.Run()
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		return k.Now()
	}
	t1, t4 := elapsed(1), elapsed(4)
	if t4 >= t1 {
		t.Fatalf("4 readers (%v) should beat 1 reader (%v)", t4, t1)
	}
}

func TestCollectiveWriteCorrectness(t *testing.T) {
	k, comm, _ := rig(t, 4, 16)
	// Each rank writes 256 bytes of its own pattern into a fresh file.
	reqs := make([]Range, 4)
	data := make([][]byte, 4)
	for i := range reqs {
		reqs[i] = Range{Off: int64(i) * 256, Len: 256}
		data[i] = bytes.Repeat([]byte{byte('A' + i)}, 256)
	}
	var res *Result
	k.Go("setup", func(p *sim.Proc) {
		c := comm.ranks[0].Client
		if _, err := c.Create(p, "/out", 0, 0); err != nil {
			t.Error(err)
			return
		}
		res = comm.CollectiveWrite("/out", reqs, data, 2)
	})
	k.Run()
	if res == nil || res.Err != nil {
		t.Fatalf("write failed: %+v", res)
	}
	got := comm.ranks[0].Client.FS().Get("/out")
	if len(got) != 1024 {
		t.Fatalf("file = %d bytes", len(got))
	}
	for i := 0; i < 4; i++ {
		if got[i*256] != byte('A'+i) || got[i*256+255] != byte('A'+i) {
			t.Fatalf("rank %d region corrupted", i)
		}
	}
	if res.Elapsed() <= 0 {
		t.Fatal("elapsed must be positive")
	}
}

func TestCollectiveWriteValidation(t *testing.T) {
	k, comm, _ := rig(t, 2, 16)
	var res *Result
	k.Go("driver", func(p *sim.Proc) {
		comm.ranks[0].Client.Create(p, "/w", 0, 0)
		res = comm.CollectiveWrite("/w", []Range{{Off: 0, Len: 4}, {}}, [][]byte{{1, 2}, nil}, 0)
	})
	k.Run()
	if res.Err == nil {
		t.Fatal("buffer/request mismatch should fail")
	}
}

func TestCollectiveWriteEmpty(t *testing.T) {
	k, comm, _ := rig(t, 2, 16)
	var res *Result
	k.Go("driver", func(p *sim.Proc) {
		res = comm.CollectiveWrite("/nope", make([]Range, 2), make([][]byte, 2), 0)
	})
	k.Run()
	if res.Err != nil {
		t.Fatal("all-empty write should be a no-op")
	}
}

package netcdf

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Little-endian scalar helpers shared by the writer and reader.

func leUint32(b []byte) uint32 { return binary.LittleEndian.Uint32(b) }
func leUint64(b []byte) uint64 { return binary.LittleEndian.Uint64(b) }
func leFloat32(b []byte) float32 {
	return math.Float32frombits(binary.LittleEndian.Uint32(b))
}
func leFloat64(b []byte) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

// putFloat32s encodes vals row-major into a fresh byte slice.
func putFloat32s(vals []float32) []byte {
	out := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(out[i*4:], math.Float32bits(v))
	}
	return out
}

// putFloat64s encodes vals into a fresh byte slice.
func putFloat64s(vals []float64) []byte {
	out := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(v))
	}
	return out
}

// putInt32s encodes vals into a fresh byte slice.
func putInt32s(vals []int32) []byte {
	out := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(out[i*4:], uint32(v))
	}
	return out
}

// enc is a growing little-endian encoder.
type enc struct{ buf []byte }

func (e *enc) u8(v uint8)   { e.buf = append(e.buf, v) }
func (e *enc) u32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *enc) u64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *enc) f64(v float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
}
func (e *enc) str(s string) {
	e.u32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}
func (e *enc) attrs(as []Attr) {
	e.u32(uint32(len(as)))
	for _, a := range as {
		e.str(a.Name)
		e.u8(uint8(a.Kind))
		switch a.Kind {
		case AttrString:
			e.str(a.Str)
		case AttrFloat64:
			e.f64(a.F64)
		case AttrInt64:
			e.u64(uint64(a.I64))
		default:
			panic(fmt.Sprintf("netcdf: unknown attr kind %d", a.Kind))
		}
	}
}

// dec is a bounds-checked little-endian decoder.
type dec struct {
	buf []byte
	off int
	err error
}

func (d *dec) need(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.buf) {
		d.err = fmt.Errorf("netcdf: truncated header (want %d bytes at %d, have %d)", n, d.off, len(d.buf))
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *dec) u8() uint8 {
	b := d.need(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *dec) u32() uint32 {
	b := d.need(4)
	if b == nil {
		return 0
	}
	return leUint32(b)
}

func (d *dec) u64() uint64 {
	b := d.need(8)
	if b == nil {
		return 0
	}
	return leUint64(b)
}

func (d *dec) f64() float64 {
	b := d.need(8)
	if b == nil {
		return 0
	}
	return leFloat64(b)
}

func (d *dec) str() string {
	n := int(d.u32())
	if n > len(d.buf) {
		d.err = fmt.Errorf("netcdf: corrupt string length %d", n)
		return ""
	}
	b := d.need(n)
	return string(b)
}

func (d *dec) attrs() []Attr {
	n := int(d.u32())
	if d.err != nil || n < 0 || n > 1<<20 {
		if d.err == nil {
			d.err = fmt.Errorf("netcdf: corrupt attribute count %d", n)
		}
		return nil
	}
	out := make([]Attr, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		a := Attr{Name: d.str(), Kind: AttrKind(d.u8())}
		switch a.Kind {
		case AttrString:
			a.Str = d.str()
		case AttrFloat64:
			a.F64 = d.f64()
		case AttrInt64:
			a.I64 = int64(d.u64())
		default:
			if d.err == nil {
				d.err = fmt.Errorf("netcdf: unknown attr kind %d", a.Kind)
			}
		}
		out = append(out, a)
	}
	return out
}

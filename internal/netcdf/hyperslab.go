package netcdf

// n-dimensional index and box-copy helpers shared by the chunk writer and
// the hyperslab reader.

// volume returns the element count of a shape.
func volume(shape []int) int {
	n := 1
	for _, s := range shape {
		n *= s
	}
	return n
}

// zeros returns an n-length zero index.
func zeros(n int) []int { return make([]int, n) }

// strides returns row-major element strides for a shape.
func strides(shape []int) []int {
	st := make([]int, len(shape))
	acc := 1
	for i := len(shape) - 1; i >= 0; i-- {
		st[i] = acc
		acc *= shape[i]
	}
	return st
}

// incIndex advances idx row-major within grid; it returns false when idx
// wraps past the last cell.
func incIndex(idx, grid []int) bool {
	for d := len(idx) - 1; d >= 0; d-- {
		idx[d]++
		if idx[d] < grid[d] {
			return true
		}
		idx[d] = 0
	}
	return false
}

// dot returns the offset of coordinate idx under the given strides.
func dot(idx, strides []int) int {
	off := 0
	for i, v := range idx {
		off += v * strides[i]
	}
	return off
}

// copyBox copies a box of the given extent from src (shape srcShape,
// starting at srcStart) into dst (shape dstShape, starting at dstStart).
// Both arrays are row-major with es bytes per element; the innermost run
// is a single copy.
func copyBox(dst []byte, dstShape, dstStart []int, src []byte, srcShape, srcStart, extent []int, es int) {
	rank := len(extent)
	if rank == 0 {
		return
	}
	dstStr := strides(dstShape)
	srcStr := strides(srcShape)
	runElems := extent[rank-1]
	runBytes := runElems * es
	idx := zeros(rank - 1)
	for {
		srcOff := dot(srcStart[:rank-1], srcStr[:rank-1]) + dot(idx, srcStr[:rank-1]) + srcStart[rank-1]*srcStr[rank-1]
		dstOff := dot(dstStart[:rank-1], dstStr[:rank-1]) + dot(idx, dstStr[:rank-1]) + dstStart[rank-1]*dstStr[rank-1]
		copy(dst[dstOff*es:dstOff*es+runBytes], src[srcOff*es:srcOff*es+runBytes])
		if rank == 1 || !incIndex(idx, extent[:rank-1]) {
			break
		}
	}
}

// boxIntersect intersects [aStart, aStart+aExtent) with [bStart,
// bStart+bExtent) per dimension, returning the intersection start and
// extent and whether it is non-empty.
func boxIntersect(aStart, aExtent, bStart, bExtent []int) (start, extent []int, ok bool) {
	rank := len(aStart)
	start = make([]int, rank)
	extent = make([]int, rank)
	for i := 0; i < rank; i++ {
		lo := aStart[i]
		if bStart[i] > lo {
			lo = bStart[i]
		}
		hiA := aStart[i] + aExtent[i]
		hiB := bStart[i] + bExtent[i]
		hi := hiA
		if hiB < hi {
			hi = hiB
		}
		if hi <= lo {
			return nil, nil, false
		}
		start[i] = lo
		extent[i] = hi - lo
	}
	return start, extent, true
}

// Package netcdf implements a self-describing scientific array format with
// the structure SciDP depends on: named dimensions, typed multi-dimensional
// variables with attributes, chunked storage, per-chunk DEFLATE
// compression, a header that can be read without touching variable data,
// and hyperslab access (netCDF's nc_get_vara). The binary layout is this
// repository's own ("NCL1"), but the API mirrors the C netCDF library —
// Open / InqVar / GetVara — so the paper's Data Mapper and PFS Reader
// translate directly.
//
// Layout (little-endian):
//
//	magic "NCL1" | headerLen u64 | header | chunk payloads
//
// The header carries dimensions, global attributes, and per-variable
// metadata including the full chunk index (offset, stored size, raw size
// per chunk). Reading it costs two small range-reads, which is what makes
// SciDP's File Explorer cheap relative to copying data.
package netcdf

import (
	"fmt"
)

// Magic is the 4-byte file signature.
const Magic = "NCL1"

// Type enumerates element types.
type Type uint8

// Element types supported by the format.
const (
	Byte Type = iota + 1
	Int32
	Int64
	Float32
	Float64
)

// Size returns the element width in bytes.
func (t Type) Size() int {
	switch t {
	case Byte:
		return 1
	case Int32, Float32:
		return 4
	case Int64, Float64:
		return 8
	}
	panic(fmt.Sprintf("netcdf: unknown type %d", t))
}

// String returns the CDL-style name of the type.
func (t Type) String() string {
	switch t {
	case Byte:
		return "byte"
	case Int32:
		return "int"
	case Int64:
		return "int64"
	case Float32:
		return "float"
	case Float64:
		return "double"
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// Dim is a named dimension.
type Dim struct {
	// Name is the dimension name ("time", "level", "lat").
	Name string
	// Len is the dimension length.
	Len int
}

// Attr is a named attribute; exactly one of the value fields is used
// according to Kind.
type Attr struct {
	// Name is the attribute name ("units", "long_name").
	Name string
	// Kind selects which value field is populated.
	Kind AttrKind
	// Str holds AttrString values.
	Str string
	// F64 holds AttrFloat64 values.
	F64 float64
	// I64 holds AttrInt64 values.
	I64 int64
}

// AttrKind tags the value type of an attribute.
type AttrKind uint8

// Attribute value kinds.
const (
	AttrString AttrKind = iota + 1
	AttrFloat64
	AttrInt64
)

// StringAttr builds a string attribute.
func StringAttr(name, v string) Attr { return Attr{Name: name, Kind: AttrString, Str: v} }

// Float64Attr builds a double attribute.
func Float64Attr(name string, v float64) Attr { return Attr{Name: name, Kind: AttrFloat64, F64: v} }

// Int64Attr builds an int64 attribute.
func Int64Attr(name string, v int64) Attr { return Attr{Name: name, Kind: AttrInt64, I64: v} }

// ChunkInfo locates one stored chunk of a variable.
type ChunkInfo struct {
	// Index is the chunk's coordinate in the chunk grid (row-major order
	// matches the position in the variable's chunk list).
	Index []int
	// Offset is the absolute file offset of the stored payload.
	Offset int64
	// StoredSize is the on-disk payload length (compressed).
	StoredSize int64
	// RawSize is the decompressed payload length.
	RawSize int64
	// Stats is the chunk's write-time zone map, or nil for files written
	// before the statistics section existed (or with it disabled).
	Stats *ChunkStats
}

// Var is one variable's metadata.
type Var struct {
	// Name is the variable name ("QR").
	Name string
	// Type is the element type.
	Type Type
	// Dims are the variable's dimensions in storage order.
	Dims []Dim
	// Attrs are the variable attributes.
	Attrs []Attr
	// ChunkShape is the chunk extent per dimension; nil means contiguous
	// storage (a single chunk spanning the variable).
	ChunkShape []int
	// Deflate is the DEFLATE level (0 = stored uncompressed).
	Deflate int
	// Chunks is the chunk index in row-major chunk-grid order.
	Chunks []ChunkInfo
}

// Shape returns the dimension lengths.
func (v *Var) Shape() []int {
	s := make([]int, len(v.Dims))
	for i, d := range v.Dims {
		s[i] = d.Len
	}
	return s
}

// NumElems returns the total element count.
func (v *Var) NumElems() int {
	n := 1
	for _, d := range v.Dims {
		n *= d.Len
	}
	return n
}

// RawBytes returns the uncompressed payload size of the whole variable.
func (v *Var) RawBytes() int64 { return int64(v.NumElems()) * int64(v.Type.Size()) }

// StoredBytes returns the on-disk (compressed) payload size.
func (v *Var) StoredBytes() int64 {
	var s int64
	for _, c := range v.Chunks {
		s += c.StoredSize
	}
	return s
}

// Attr returns the named variable attribute, or false.
func (v *Var) Attr(name string) (Attr, bool) {
	for _, a := range v.Attrs {
		if a.Name == name {
			return a, true
		}
	}
	return Attr{}, false
}

// chunkGrid returns chunks-per-dimension counts for a variable.
func (v *Var) chunkGrid() []int {
	shape := v.Shape()
	cs := v.ChunkShape
	if cs == nil {
		g := make([]int, len(shape))
		for i := range g {
			g[i] = 1
		}
		return g
	}
	g := make([]int, len(shape))
	for i := range shape {
		g[i] = (shape[i] + cs[i] - 1) / cs[i]
	}
	return g
}

// chunkExtent returns the clamped extent of the chunk at grid index idx
// (edge chunks may be partial) and its start coordinate.
func (v *Var) chunkExtent(idx []int) (start, extent []int) {
	shape := v.Shape()
	cs := v.ChunkShape
	if cs == nil {
		return make([]int, len(shape)), shape
	}
	start = make([]int, len(shape))
	extent = make([]int, len(shape))
	for i := range shape {
		start[i] = idx[i] * cs[i]
		e := cs[i]
		if start[i]+e > shape[i] {
			e = shape[i] - start[i]
		}
		extent[i] = e
	}
	return start, extent
}

// ChunkBox returns the start coordinate and clamped extent of the i-th
// chunk in v.Chunks — the geometry a planner needs to turn chunk position
// into coordinate bounds without reading anything.
func (v *Var) ChunkBox(i int) (start, extent []int) {
	return v.chunkExtent(v.Chunks[i].Index)
}

// Array is an in-memory n-dimensional array: raw little-endian bytes plus
// shape and type. It is the value GetVara returns and what the R layer
// converts into data frames.
type Array struct {
	// Type is the element type.
	Type Type
	// Shape is the extent per dimension.
	Shape []int
	// Data is the row-major little-endian payload.
	Data []byte
}

// NumElems returns the element count.
func (a *Array) NumElems() int {
	n := 1
	for _, s := range a.Shape {
		n *= s
	}
	return n
}

// Float32s decodes the payload as []float32 (only valid for Float32).
func (a *Array) Float32s() []float32 {
	if a.Type != Float32 {
		panic("netcdf: Float32s on " + a.Type.String() + " array")
	}
	out := make([]float32, a.NumElems())
	for i := range out {
		out[i] = leFloat32(a.Data[i*4:])
	}
	return out
}

// Float64At returns element i as float64 regardless of numeric type.
func (a *Array) Float64At(i int) float64 {
	switch a.Type {
	case Byte:
		return float64(a.Data[i])
	case Int32:
		return float64(int32(leUint32(a.Data[i*4:])))
	case Int64:
		return float64(int64(leUint64(a.Data[i*8:])))
	case Float32:
		return float64(leFloat32(a.Data[i*4:]))
	case Float64:
		return leFloat64(a.Data[i*8:])
	}
	panic("netcdf: unknown array type")
}

// Sub returns the sub-array at the given leading index (e.g. one level of
// a [level][lat][lon] array), sharing the underlying bytes.
func (a *Array) Sub(i int) *Array {
	if len(a.Shape) < 2 {
		panic("netcdf: Sub on rank<2 array")
	}
	inner := 1
	for _, s := range a.Shape[1:] {
		inner *= s
	}
	es := a.Type.Size()
	return &Array{Type: a.Type, Shape: a.Shape[1:], Data: a.Data[i*inner*es : (i+1)*inner*es]}
}

package netcdf

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// buildFile assembles a small 3-D float32 file resembling one NU-WRF
// timestamp: var QR[level][lat][lon], chunked one level per chunk.
func buildFile(t *testing.T, nz, ny, nx, deflate int) ([]byte, []float32) {
	t.Helper()
	w := NewWriter()
	for _, d := range []struct {
		n string
		l int
	}{{"level", nz}, {"lat", ny}, {"lon", nx}} {
		if err := w.AddDim(d.n, d.l); err != nil {
			t.Fatal(err)
		}
	}
	w.GlobalAttr(StringAttr("model", "NU-WRF"))
	err := w.AddVar("QR", Float32, []string{"level", "lat", "lon"},
		Chunking{Shape: []int{1, ny, nx}, Deflate: deflate},
		StringAttr("units", "kg/kg"), Float64Attr("scale", 1.0))
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]float32, nz*ny*nx)
	for i := range vals {
		vals[i] = float32(math.Sin(float64(i) / 37.0))
	}
	if err := w.PutVarFloat32("QR", vals); err != nil {
		t.Fatal(err)
	}
	blob, err := w.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	return blob, vals
}

func TestDetect(t *testing.T) {
	blob, _ := buildFile(t, 2, 4, 4, 0)
	if !Detect(BytesReader(blob)) {
		t.Fatal("Detect should accept a valid file")
	}
	if Detect(BytesReader([]byte("not a netcdf file"))) {
		t.Fatal("Detect should reject garbage")
	}
	if Detect(BytesReader(nil)) {
		t.Fatal("Detect should reject empty input")
	}
}

func TestOpenParsesMetadata(t *testing.T) {
	blob, _ := buildFile(t, 3, 5, 7, 1)
	f, err := Open(BytesReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Dims()) != 3 || f.Dims()[0].Name != "level" || f.Dims()[0].Len != 3 {
		t.Fatalf("dims = %+v", f.Dims())
	}
	if len(f.GlobalAttrs()) != 1 || f.GlobalAttrs()[0].Str != "NU-WRF" {
		t.Fatalf("gattrs = %+v", f.GlobalAttrs())
	}
	v, err := f.Var("QR")
	if err != nil {
		t.Fatal(err)
	}
	if v.Type != Float32 || len(v.Chunks) != 3 || v.Deflate != 1 {
		t.Fatalf("var = %+v", v)
	}
	if u, ok := v.Attr("units"); !ok || u.Str != "kg/kg" {
		t.Fatalf("units attr = %+v, %v", u, ok)
	}
	if v.RawBytes() != 3*5*7*4 {
		t.Fatalf("RawBytes = %d", v.RawBytes())
	}
	if _, err := f.Var("nope"); err == nil {
		t.Fatal("missing var should error")
	}
}

func TestHeaderOnlyOpenIsCheap(t *testing.T) {
	blob, _ := buildFile(t, 50, 64, 64, 1)
	cr := &CountingReader{R: BytesReader(blob)}
	f, err := Open(cr)
	if err != nil {
		t.Fatal(err)
	}
	if cr.Calls != 2 {
		t.Fatalf("Open used %d reads, want 2", cr.Calls)
	}
	if cr.BytesRead > int64(len(blob))/10 {
		t.Fatalf("Open read %d of %d bytes; header must be a small fraction", cr.BytesRead, len(blob))
	}
	if f.HeaderBytes != cr.BytesRead {
		t.Fatalf("HeaderBytes=%d, counted=%d", f.HeaderBytes, cr.BytesRead)
	}
}

func TestGetVarRoundtrip(t *testing.T) {
	for _, deflate := range []int{0, 1, 6} {
		blob, vals := buildFile(t, 4, 6, 8, deflate)
		f, err := Open(BytesReader(blob))
		if err != nil {
			t.Fatal(err)
		}
		arr, err := f.GetVar("QR")
		if err != nil {
			t.Fatal(err)
		}
		got := arr.Float32s()
		if len(got) != len(vals) {
			t.Fatalf("deflate=%d: len=%d want %d", deflate, len(got), len(vals))
		}
		for i := range got {
			if got[i] != vals[i] {
				t.Fatalf("deflate=%d: elem %d = %v want %v", deflate, i, got[i], vals[i])
			}
		}
	}
}

func TestCompressionShrinks(t *testing.T) {
	raw, _ := buildFile(t, 8, 32, 32, 0)
	comp, _ := buildFile(t, 8, 32, 32, 6)
	if len(comp) >= len(raw) {
		t.Fatalf("deflate did not shrink: %d >= %d", len(comp), len(raw))
	}
	f, _ := Open(BytesReader(comp))
	v, _ := f.Var("QR")
	if v.StoredBytes() >= v.RawBytes() {
		t.Fatalf("StoredBytes %d >= RawBytes %d", v.StoredBytes(), v.RawBytes())
	}
}

func TestGetVaraSingleLevel(t *testing.T) {
	blob, vals := buildFile(t, 5, 4, 3, 1)
	f, _ := Open(BytesReader(blob))
	arr, err := f.GetVara("QR", []int{2, 0, 0}, []int{1, 4, 3})
	if err != nil {
		t.Fatal(err)
	}
	got := arr.Float32s()
	want := vals[2*12 : 3*12]
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("level slab wrong at %d", i)
		}
	}
}

func TestGetVaraReadsOnlyNeededChunks(t *testing.T) {
	blob, _ := buildFile(t, 50, 16, 16, 1)
	cr := &CountingReader{R: BytesReader(blob)}
	f, err := Open(cr)
	if err != nil {
		t.Fatal(err)
	}
	headerBytes := cr.BytesRead
	if _, err := f.GetVara("QR", []int{10, 0, 0}, []int{1, 16, 16}); err != nil {
		t.Fatal(err)
	}
	v, _ := f.Var("QR")
	dataRead := cr.BytesRead - headerBytes
	if dataRead != v.Chunks[10].StoredSize {
		t.Fatalf("read %d data bytes, want exactly chunk 10's %d", dataRead, v.Chunks[10].StoredSize)
	}
}

func TestGetVaraCrossChunk(t *testing.T) {
	// Chunk shape that does NOT align with the slab, including partial
	// edge chunks: 3x5x7 var with 2x2x2 chunks.
	w := NewWriter()
	w.AddDim("z", 3)
	w.AddDim("y", 5)
	w.AddDim("x", 7)
	if err := w.AddVar("v", Float32, []string{"z", "y", "x"}, Chunking{Shape: []int{2, 2, 2}, Deflate: 1}); err != nil {
		t.Fatal(err)
	}
	vals := make([]float32, 3*5*7)
	for i := range vals {
		vals[i] = float32(i)
	}
	w.PutVarFloat32("v", vals)
	blob, err := w.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	f, err := Open(BytesReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	start, count := []int{1, 1, 2}, []int{2, 3, 4}
	arr, err := f.GetVara("v", start, count)
	if err != nil {
		t.Fatal(err)
	}
	got := arr.Float32s()
	for z := 0; z < count[0]; z++ {
		for y := 0; y < count[1]; y++ {
			for x := 0; x < count[2]; x++ {
				want := vals[(z+start[0])*35+(y+start[1])*7+(x+start[2])]
				if got[z*12+y*4+x] != want {
					t.Fatalf("slab[%d,%d,%d] = %v, want %v", z, y, x, got[z*12+y*4+x], want)
				}
			}
		}
	}
}

func TestGetVaraValidation(t *testing.T) {
	blob, _ := buildFile(t, 2, 3, 4, 0)
	f, _ := Open(BytesReader(blob))
	cases := [][2][]int{
		{{0, 0}, {1, 1}},        // wrong rank
		{{0, 0, 0}, {3, 3, 4}},  // count too big
		{{-1, 0, 0}, {1, 1, 1}}, // negative start
		{{0, 0, 0}, {0, 1, 1}},  // zero count
		{{2, 0, 0}, {1, 1, 1}},  // start at edge
	}
	for i, c := range cases {
		if _, err := f.GetVara("QR", c[0], c[1]); err == nil {
			t.Errorf("case %d: slab %v/%v should be rejected", i, c[0], c[1])
		}
	}
}

func TestContiguousStorage(t *testing.T) {
	w := NewWriter()
	w.AddDim("n", 10)
	if err := w.AddVar("v", Float64, []string{"n"}, Chunking{}); err != nil {
		t.Fatal(err)
	}
	vals := make([]float64, 10)
	for i := range vals {
		vals[i] = float64(i) * 1.5
	}
	w.PutVarFloat64("v", vals)
	blob, err := w.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	f, _ := Open(BytesReader(blob))
	v, _ := f.Var("v")
	if v.ChunkShape != nil || len(v.Chunks) != 1 {
		t.Fatalf("contiguous var: chunks=%d shape=%v", len(v.Chunks), v.ChunkShape)
	}
	arr, err := f.GetVara("v", []int{3}, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if arr.Float64At(i) != vals[3+i] {
			t.Fatalf("elem %d = %v", i, arr.Float64At(i))
		}
	}
}

func TestMultipleVariables(t *testing.T) {
	w := NewWriter()
	w.AddDim("n", 6)
	w.AddVar("a", Int32, []string{"n"}, Chunking{Shape: []int{2}})
	w.AddVar("b", Float32, []string{"n"}, Chunking{Deflate: 3})
	w.PutVarInt32("a", []int32{1, 2, 3, 4, 5, 6})
	w.PutVarFloat32("b", []float32{1, 4, 9, 16, 25, 36})
	blob, err := w.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	f, _ := Open(BytesReader(blob))
	if len(f.Vars()) != 2 {
		t.Fatalf("vars = %d", len(f.Vars()))
	}
	a, err := f.GetVar("a")
	if err != nil {
		t.Fatal(err)
	}
	if a.Float64At(4) != 5 {
		t.Fatalf("a[4] = %v", a.Float64At(4))
	}
	b, _ := f.GetVar("b")
	if b.Float64At(5) != 36 {
		t.Fatalf("b[5] = %v", b.Float64At(5))
	}
}

func TestWriterValidation(t *testing.T) {
	w := NewWriter()
	if err := w.AddDim("n", 0); err == nil {
		t.Error("zero-length dim should fail")
	}
	w.AddDim("n", 4)
	if err := w.AddDim("n", 5); err == nil {
		t.Error("redeclared dim with new length should fail")
	}
	if err := w.AddDim("n", 4); err != nil {
		t.Error("identical redeclare should be a no-op")
	}
	if err := w.AddVar("v", Float32, []string{"missing"}, Chunking{}); err == nil {
		t.Error("unknown dim should fail")
	}
	if err := w.AddVar("v", Float32, nil, Chunking{}); err == nil {
		t.Error("scalar var should fail")
	}
	w.AddVar("v", Float32, []string{"n"}, Chunking{})
	if err := w.AddVar("v", Float32, []string{"n"}, Chunking{}); err == nil {
		t.Error("duplicate var should fail")
	}
	if err := w.AddVar("w", Float32, []string{"n"}, Chunking{Shape: []int{9}}); err == nil {
		t.Error("chunk bigger than dim should fail")
	}
	if err := w.AddVar("x", Float32, []string{"n"}, Chunking{Deflate: 11}); err == nil {
		t.Error("deflate 11 should fail")
	}
	if err := w.PutVarFloat32("v", []float32{1}); err == nil {
		t.Error("short payload should fail")
	}
	if err := w.PutVarFloat64("v", make([]float64, 4)); err == nil {
		t.Error("wrong-type put should fail")
	}
	if _, err := w.Bytes(); err == nil {
		t.Error("Bytes with missing data should fail")
	}
}

func TestOpenCorruptInputs(t *testing.T) {
	blob, _ := buildFile(t, 2, 3, 3, 1)
	if _, err := Open(BytesReader(blob[:8])); err == nil {
		t.Error("truncated prefix should fail")
	}
	if _, err := Open(BytesReader(blob[:20])); err == nil {
		t.Error("truncated header should fail")
	}
	bad := append([]byte(nil), blob...)
	bad[0] = 'X'
	if _, err := Open(BytesReader(bad)); err == nil {
		t.Error("bad magic should fail")
	}
	// Corrupt a chunk payload: decompress must fail loudly.
	f, _ := Open(BytesReader(blob))
	v, _ := f.Var("QR")
	cut := append([]byte(nil), blob...)
	for i := v.Chunks[0].Offset; i < v.Chunks[0].Offset+v.Chunks[0].StoredSize; i++ {
		cut[i] ^= 0xFF
	}
	f2, err := Open(BytesReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f2.GetVar("QR"); err == nil {
		t.Error("corrupt chunk should fail to read")
	}
}

func TestArraySub(t *testing.T) {
	blob, vals := buildFile(t, 3, 2, 2, 0)
	f, _ := Open(BytesReader(blob))
	arr, _ := f.GetVar("QR")
	lvl := arr.Sub(1)
	if len(lvl.Shape) != 2 || lvl.Shape[0] != 2 || lvl.Shape[1] != 2 {
		t.Fatalf("Sub shape = %v", lvl.Shape)
	}
	got := lvl.Float32s()
	for i := 0; i < 4; i++ {
		if got[i] != vals[4+i] {
			t.Fatalf("Sub elem %d = %v", i, got[i])
		}
	}
}

// TestHyperslabMatchesNaive: for random shapes, chunkings, and slabs, the
// chunked GetVara must agree with a naive index-by-index extraction.
func TestHyperslabMatchesNaive(t *testing.T) {
	type spec struct {
		Shape [3]uint8
		Chunk [3]uint8
		Start [3]uint8
		Count [3]uint8
		Seed  int64
		Defl  uint8
	}
	f := func(s spec) bool {
		shape := make([]int, 3)
		chunk := make([]int, 3)
		start := make([]int, 3)
		count := make([]int, 3)
		for i := 0; i < 3; i++ {
			shape[i] = int(s.Shape[i])%7 + 1
			chunk[i] = int(s.Chunk[i])%shape[i] + 1
			start[i] = int(s.Start[i]) % shape[i]
			rem := shape[i] - start[i]
			count[i] = int(s.Count[i])%rem + 1
		}
		rng := rand.New(rand.NewSource(s.Seed))
		vals := make([]float32, shape[0]*shape[1]*shape[2])
		for i := range vals {
			vals[i] = rng.Float32()
		}
		w := NewWriter()
		w.AddDim("z", shape[0])
		w.AddDim("y", shape[1])
		w.AddDim("x", shape[2])
		if err := w.AddVar("v", Float32, []string{"z", "y", "x"},
			Chunking{Shape: chunk, Deflate: int(s.Defl) % 3}); err != nil {
			return false
		}
		w.PutVarFloat32("v", vals)
		blob, err := w.Bytes()
		if err != nil {
			return false
		}
		file, err := Open(BytesReader(blob))
		if err != nil {
			return false
		}
		arr, err := file.GetVara("v", start, count)
		if err != nil {
			return false
		}
		got := arr.Float32s()
		i := 0
		for z := 0; z < count[0]; z++ {
			for y := 0; y < count[1]; y++ {
				for x := 0; x < count[2]; x++ {
					want := vals[(z+start[0])*shape[1]*shape[2]+(y+start[1])*shape[2]+(x+start[2])]
					if got[i] != want {
						return false
					}
					i++
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestEncodeDecodeHeaderRoundtrip: metadata written is metadata read.
func TestEncodeDecodeHeaderRoundtrip(t *testing.T) {
	w := NewWriter()
	w.AddDim("time", 48)
	w.AddDim("level", 50)
	w.GlobalAttr(StringAttr("title", "case"))
	w.GlobalAttr(Int64Attr("run", 7))
	w.GlobalAttr(Float64Attr("dt", 0.5))
	w.AddVar("T", Float32, []string{"time", "level"}, Chunking{Shape: []int{1, 50}, Deflate: 2},
		StringAttr("units", "K"))
	w.PutVarFloat32("T", make([]float32, 48*50))
	blob, err := w.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	f, err := Open(BytesReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.GlobalAttrs()) != 3 {
		t.Fatalf("gattrs = %d", len(f.GlobalAttrs()))
	}
	if f.GlobalAttrs()[1].I64 != 7 || f.GlobalAttrs()[2].F64 != 0.5 {
		t.Fatalf("attr values wrong: %+v", f.GlobalAttrs())
	}
	v, _ := f.Var("T")
	if len(v.Chunks) != 48 {
		t.Fatalf("chunks = %d, want 48", len(v.Chunks))
	}
	if v.Chunks[5].Index[0] != 5 || v.Chunks[5].Index[1] != 0 {
		t.Fatalf("chunk index = %v", v.Chunks[5].Index)
	}
}

func TestChunkOffsetsAreDisjointAndOrdered(t *testing.T) {
	blob, _ := buildFile(t, 10, 8, 8, 1)
	f, _ := Open(BytesReader(blob))
	v, _ := f.Var("QR")
	var prevEnd int64 = f.HeaderBytes
	for i, c := range v.Chunks {
		if c.Offset < prevEnd {
			t.Fatalf("chunk %d offset %d overlaps previous end %d", i, c.Offset, prevEnd)
		}
		prevEnd = c.Offset + c.StoredSize
	}
	if prevEnd != int64(len(blob)) {
		t.Fatalf("chunks end at %d, file is %d", prevEnd, len(blob))
	}
}

func TestBytesReaderShortRead(t *testing.T) {
	r := BytesReader([]byte("abc"))
	if b, _ := r.ReadAt(2, 10); !bytes.Equal(b, []byte("c")) {
		t.Fatalf("short read = %q", b)
	}
	if b, _ := r.ReadAt(5, 1); b != nil {
		t.Fatalf("past-EOF read = %q", b)
	}
}

func TestPutVaraPartialWrites(t *testing.T) {
	w := NewWriter()
	w.AddDim("z", 3)
	w.AddDim("x", 4)
	if err := w.AddVar("v", Float32, []string{"z", "x"}, Chunking{Shape: []int{1, 4}, Deflate: 1}); err != nil {
		t.Fatal(err)
	}
	// Write level 1 then level 0; leave level 2 as zeros.
	if err := w.PutVaraFloat32("v", []int{1, 0}, []int{1, 4}, []float32{10, 11, 12, 13}); err != nil {
		t.Fatal(err)
	}
	if err := w.PutVaraFloat32("v", []int{0, 1}, []int{1, 2}, []float32{1, 2}); err != nil {
		t.Fatal(err)
	}
	blob, err := w.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	f, _ := Open(BytesReader(blob))
	arr, err := f.GetVar("v")
	if err != nil {
		t.Fatal(err)
	}
	got := arr.Float32s()
	want := []float32{0, 1, 2, 0, 10, 11, 12, 13, 0, 0, 0, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("elem %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestPutVaraValidation(t *testing.T) {
	w := NewWriter()
	w.AddDim("n", 4)
	w.AddVar("v", Float32, []string{"n"}, Chunking{})
	w.AddVar("d", Float64, []string{"n"}, Chunking{})
	if err := w.PutVaraFloat32("v", []int{0}, []int{5}, make([]float32, 5)); err == nil {
		t.Error("out-of-range slab should fail")
	}
	if err := w.PutVaraFloat32("v", []int{0, 0}, []int{1, 1}, make([]float32, 1)); err == nil {
		t.Error("wrong rank should fail")
	}
	if err := w.PutVara("v", []int{0}, []int{2}, make([]byte, 4)); err == nil {
		t.Error("short payload should fail")
	}
	if err := w.PutVaraFloat32("d", []int{0}, []int{1}, []float32{1}); err == nil {
		t.Error("wrong type should fail")
	}
	if err := w.PutVaraFloat32("ghost", []int{0}, []int{1}, []float32{1}); err == nil {
		t.Error("unknown var should fail")
	}
}

// TestPutVaraTilingEqualsFullWrite: writing a variable tile by tile must
// produce the same file payload as one full write.
func TestPutVaraTilingEqualsFullWrite(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nz, ny := rng.Intn(4)+1, rng.Intn(5)+1
		vals := make([]float32, nz*ny)
		for i := range vals {
			vals[i] = rng.Float32()
		}
		build := func(tiled bool) []byte {
			w := NewWriter()
			w.AddDim("z", nz)
			w.AddDim("y", ny)
			w.AddVar("v", Float32, []string{"z", "y"}, Chunking{Shape: []int{1, ny}})
			if tiled {
				for z := 0; z < nz; z++ {
					if err := w.PutVaraFloat32("v", []int{z, 0}, []int{1, ny}, vals[z*ny:(z+1)*ny]); err != nil {
						return nil
					}
				}
			} else {
				w.PutVarFloat32("v", vals)
			}
			blob, err := w.Bytes()
			if err != nil {
				return nil
			}
			return blob
		}
		a, b := build(true), build(false)
		return a != nil && bytes.Equal(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

package netcdf

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"

	"scidp/internal/ioengine"
	"scidp/internal/sim"
)

// ReaderAt is the random-access source a file is parsed from — the shared
// ioengine view. The PFS client's engine-backed reader implements it
// (charging virtual time per call, optionally caching and prefetching
// chunks); BytesReader implements it over a plain in-memory blob.
type ReaderAt = ioengine.Source

// BytesReader adapts an in-memory blob to ReaderAt.
type BytesReader = ioengine.Bytes

// CountingReader wraps a ReaderAt and tallies bytes and calls — the hook
// the I/O-efficiency experiments (Figure 6) and the header-cost tests use.
type CountingReader = ioengine.Stats

// Detect reports whether r starts with the format magic — the format-
// checking probe the Sci-format Head Reader uses (the analogue of
// nc_open succeeding / H5Fis_hdf5).
func Detect(r ReaderAt) bool {
	b, err := r.ReadAt(0, int64(len(Magic)))
	return err == nil && string(b) == Magic
}

// File is an opened file: parsed metadata plus the data source for chunk
// reads.
type File struct {
	r      ReaderAt
	dims   []Dim
	gattrs []Attr
	vars   []*Var
	byName map[string]*Var
	// HeaderBytes is how many bytes Open consumed — the metadata-only
	// cost of exploring the file.
	HeaderBytes int64
}

// Open parses the header (two range-reads: the fixed prefix, then the
// header body) without touching any variable data.
func Open(r ReaderAt) (*File, error) {
	prefix, err := r.ReadAt(0, int64(len(Magic))+8)
	if err != nil {
		return nil, err
	}
	if len(prefix) < len(Magic)+8 || string(prefix[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("netcdf: not a %s file", Magic)
	}
	hlen := int64(leUint64(prefix[len(Magic):]))
	if hlen <= 0 || hlen > r.Size() {
		return nil, fmt.Errorf("netcdf: corrupt header length %d", hlen)
	}
	hdr, err := r.ReadAt(int64(len(Magic))+8, hlen)
	if err != nil {
		return nil, err
	}
	if int64(len(hdr)) < hlen {
		return nil, fmt.Errorf("netcdf: truncated header: got %d of %d bytes", len(hdr), hlen)
	}
	f := &File{r: r, byName: map[string]*Var{}, HeaderBytes: int64(len(prefix)) + hlen}
	if err := f.decodeHeader(hdr); err != nil {
		return nil, err
	}
	return f, nil
}

func (f *File) decodeHeader(hdr []byte) error {
	d := &dec{buf: hdr}
	nd := int(d.u32())
	for i := 0; i < nd && d.err == nil; i++ {
		f.dims = append(f.dims, Dim{Name: d.str(), Len: int(d.u64())})
	}
	f.gattrs = d.attrs()
	nv := int(d.u32())
	for i := 0; i < nv && d.err == nil; i++ {
		v := &Var{Name: d.str(), Type: Type(d.u8())}
		ndv := int(d.u32())
		for j := 0; j < ndv && d.err == nil; j++ {
			v.Dims = append(v.Dims, Dim{Name: d.str(), Len: int(d.u64())})
		}
		v.Attrs = d.attrs()
		if d.u8() == 1 {
			v.ChunkShape = make([]int, len(v.Dims))
			for j := range v.ChunkShape {
				v.ChunkShape[j] = int(d.u64())
			}
		}
		v.Deflate = int(d.u8())
		nc := int(d.u32())
		grid := v.chunkGrid()
		idx := zeros(len(v.Dims))
		for j := 0; j < nc && d.err == nil; j++ {
			ci := ChunkInfo{
				Index:      append([]int(nil), idx...),
				Offset:     int64(d.u64()),
				StoredSize: int64(d.u64()),
				RawSize:    int64(d.u64()),
			}
			v.Chunks = append(v.Chunks, ci)
			incIndex(idx, grid)
		}
		f.vars = append(f.vars, v)
		f.byName[v.Name] = v
	}
	// Optional tagged trailer: per-chunk zone maps. Legacy files end at the
	// variable table; anything after it that doesn't carry the tag is
	// ignored, which is also what pre-zone-map readers do with the trailer.
	if d.err == nil && d.off+4 <= len(d.buf) && leUint32(d.buf[d.off:]) == zoneMapTag {
		d.off += 4
		for _, v := range f.vars {
			n := int(d.u32())
			if d.err != nil {
				break
			}
			if n != len(v.Chunks) {
				d.err = fmt.Errorf("netcdf: %s: stats section has %d chunks, index has %d", v.Name, n, len(v.Chunks))
				break
			}
			for j := 0; j < n && d.err == nil; j++ {
				st := ChunkStats{Min: d.f64(), Max: d.f64(), Count: int64(d.u64()), Fill: int64(d.u64())}
				v.Chunks[j].Stats = &st
			}
		}
	}
	if d.err != nil {
		return d.err
	}
	return nil
}

// Dims returns the file's dimensions.
func (f *File) Dims() []Dim { return f.dims }

// GlobalAttrs returns the file-level attributes.
func (f *File) GlobalAttrs() []Attr { return f.gattrs }

// Vars returns every variable's metadata — nc_inq.
func (f *File) Vars() []*Var { return f.vars }

// Var returns the named variable's metadata — nc_inq_var.
func (f *File) Var(name string) (*Var, error) {
	v, ok := f.byName[name]
	if !ok {
		return nil, fmt.Errorf("netcdf: no variable %q", name)
	}
	return v, nil
}

// chunkDecoder builds the decompress-and-verify step for chunk ci of v,
// shared by the caching read path and the single-pass scan path.
func chunkDecoder(v *Var, ci ChunkInfo) func(raw []byte) ([]byte, error) {
	return func(raw []byte) ([]byte, error) {
		if int64(len(raw)) < ci.StoredSize {
			return nil, fmt.Errorf("netcdf: %s: truncated chunk at %d", v.Name, ci.Offset)
		}
		if v.Deflate > 0 {
			fr := flate.NewReader(bytes.NewReader(raw))
			out, err := io.ReadAll(fr)
			if err != nil {
				return nil, fmt.Errorf("netcdf: %s: inflate: %w", v.Name, err)
			}
			raw = out
		}
		if int64(len(raw)) != ci.RawSize {
			return nil, fmt.Errorf("netcdf: %s: chunk raw size %d, want %d", v.Name, len(raw), ci.RawSize)
		}
		return raw, nil
	}
}

// readChunk fetches and decompresses chunk ci of v through the engine's
// chunk path, so a caching source serves (and stores) the decompressed
// payload and a prefetching source stages upcoming chunks.
func (f *File) readChunk(v *Var, ci ChunkInfo) ([]byte, error) {
	return ioengine.ReadChunk(f.r, ci.Offset, ci.StoredSize, chunkDecoder(v, ci))
}

// Source returns the random-access source the file was opened over — the
// handle query adapters use to fork fused-scan work onto the data plane.
func (f *File) Source() ReaderAt { return f.r }

// ScanChunk reads and decompresses the i-th chunk of v through the
// engine's single-pass scan path: a caching source serves it if resident
// but does not populate the cache on a miss, so a one-shot query scan
// never evicts hot working-set chunks.
func (f *File) ScanChunk(v *Var, i int) ([]byte, error) {
	if i < 0 || i >= len(v.Chunks) {
		return nil, fmt.Errorf("netcdf: %s: chunk %d out of range [0,%d)", v.Name, i, len(v.Chunks))
	}
	ci := v.Chunks[i]
	return ioengine.ReadChunkOnce(f.r, ci.Offset, ci.StoredSize, chunkDecoder(v, ci))
}

// AnnounceChunks declares the surviving chunks of a pruned scan to the
// engine so a prefetching source stages exactly those — skipped chunks
// are never fetched, never inflated, never cached.
func (f *File) AnnounceChunks(v *Var, chunks []int) {
	plan := make([]ioengine.Range, 0, len(chunks))
	for _, i := range chunks {
		if i < 0 || i >= len(v.Chunks) {
			continue
		}
		ci := v.Chunks[i]
		plan = append(plan, ioengine.Range{Off: ci.Offset, Len: ci.StoredSize})
	}
	ioengine.Announce(f.r, plan)
}

// GetVara reads the hyperslab [start, start+count) of the named variable —
// nc_get_vara. Only chunks overlapping the slab are read (and
// decompressed); that selective I/O is what SciDP's dummy-block reads
// resolve to.
func (f *File) GetVara(name string, start, count []int) (*Array, error) {
	v, err := f.Var(name)
	if err != nil {
		return nil, err
	}
	shape := v.Shape()
	if len(start) != len(shape) || len(count) != len(shape) {
		return nil, fmt.Errorf("netcdf: %s: slab rank %d/%d != var rank %d", name, len(start), len(count), len(shape))
	}
	for i := range shape {
		if start[i] < 0 || count[i] <= 0 || start[i]+count[i] > shape[i] {
			return nil, fmt.Errorf("netcdf: %s: slab [%d,+%d) outside dim %s(%d)", name, start[i], count[i], v.Dims[i].Name, shape[i])
		}
	}
	es := v.Type.Size()
	out := &Array{Type: v.Type, Shape: append([]int(nil), count...), Data: make([]byte, volume(count)*es)}

	grid := v.chunkGrid()
	gstr := strides(grid)
	// Chunk-grid sub-range overlapping the slab.
	lo := make([]int, len(shape))
	hi := make([]int, len(shape)) // inclusive
	cs := v.ChunkShape
	for i := range shape {
		if cs == nil {
			lo[i], hi[i] = 0, 0
			continue
		}
		lo[i] = start[i] / cs[i]
		hi[i] = (start[i] + count[i] - 1) / cs[i]
	}
	// Enumerate the overlapping chunks up front so the read plan can be
	// announced to the engine (a prefetching source overlaps the chunk
	// transfers), then read and scatter them in plan order.
	var touched [][]int
	idx := append([]int(nil), lo...)
	for {
		touched = append(touched, append([]int(nil), idx...))
		// Advance idx within [lo, hi].
		d := len(idx) - 1
		for d >= 0 {
			idx[d]++
			if idx[d] <= hi[d] {
				break
			}
			idx[d] = lo[d]
			d--
		}
		if d < 0 {
			break
		}
	}
	plan := make([]ioengine.Range, 0, len(touched))
	for _, ix := range touched {
		linear := dot(ix, gstr)
		if linear >= len(v.Chunks) {
			return nil, fmt.Errorf("netcdf: %s: chunk index %v out of range", name, ix)
		}
		ci := v.Chunks[linear]
		plan = append(plan, ioengine.Range{Off: ci.Offset, Len: ci.StoredSize})
	}
	ioengine.Announce(f.r, plan)
	// Chunks scatter into disjoint regions of out.Data (the chunk grid
	// partitions index space), so each copyBox forks onto the data plane
	// and all of them join once after the last chunk is fetched.
	var futs []*sim.Future
	for _, ix := range touched {
		ci := v.Chunks[dot(ix, gstr)]
		raw, err := f.readChunk(v, ci)
		if err != nil {
			ioengine.Join(f.r, futs...)
			return nil, err
		}
		cStart, cExtent := v.chunkExtent(ix)
		iStart, iExtent, ok := boxIntersect(start, count, cStart, cExtent)
		if ok {
			srcStart := make([]int, len(shape))
			dstStart := make([]int, len(shape))
			for i := range shape {
				srcStart[i] = iStart[i] - cStart[i]
				dstStart[i] = iStart[i] - start[i]
			}
			raw := raw
			if fut := ioengine.Fork(f.r, func() {
				copyBox(out.Data, count, dstStart, raw, cExtent, srcStart, iExtent, es)
			}); fut != nil {
				futs = append(futs, fut)
			}
		}
	}
	ioengine.Join(f.r, futs...)
	return out, nil
}

// GetVar reads a whole variable.
func (f *File) GetVar(name string) (*Array, error) {
	v, err := f.Var(name)
	if err != nil {
		return nil, err
	}
	return f.GetVara(name, zeros(len(v.Dims)), v.Shape())
}

package netcdf

import "math"

// zoneMapTag marks the optional per-chunk statistics section appended to
// the header after the variable table. Decoders that predate it (or that
// simply don't care) never look past the variable table, so tagged files
// open everywhere; untagged (legacy) files open here with Stats left nil.
const zoneMapTag uint32 = 0x50414D5A // "ZMAP" little-endian

// ChunkStats is the write-time zone map of one stored chunk: the summary
// a query planner consults to prove a chunk irrelevant without reading
// it. Min/Max cover the non-fill elements; Count is the total element
// count; Fill counts fill elements (NaN for floating-point variables —
// integer variables have no fill representation, so Fill is 0).
type ChunkStats struct {
	// Min is the smallest non-fill value (+Inf when the chunk is all fill,
	// an empty interval that every range predicate excludes).
	Min float64
	// Max is the largest non-fill value (-Inf when the chunk is all fill).
	Max float64
	// Count is the total number of elements in the chunk.
	Count int64
	// Fill is the number of fill (NaN) elements.
	Fill int64
}

// AllFill reports whether the chunk holds no real values.
func (s ChunkStats) AllFill() bool { return s.Count == s.Fill }

// computeChunkStats summarizes one raw (decompressed) chunk payload.
func computeChunkStats(t Type, raw []byte) ChunkStats {
	es := t.Size()
	n := len(raw) / es
	st := ChunkStats{Min: math.Inf(1), Max: math.Inf(-1), Count: int64(n)}
	for i := 0; i < n; i++ {
		var v float64
		switch t {
		case Byte:
			v = float64(raw[i])
		case Int32:
			v = float64(int32(leUint32(raw[i*4:])))
		case Int64:
			v = float64(int64(leUint64(raw[i*8:])))
		case Float32:
			v = float64(leFloat32(raw[i*4:]))
		case Float64:
			v = leFloat64(raw[i*8:])
		}
		if v != v { // NaN is the fill value
			st.Fill++
			continue
		}
		st.Min = min(st.Min, v)
		st.Max = max(st.Max, v)
	}
	return st
}

package netcdf

import (
	"bytes"
	"compress/flate"
	"fmt"
)

// Writer assembles a file in memory: declare dimensions and variables,
// supply each variable's data, then call Bytes to encode — the pattern of
// netCDF's define mode followed by data mode.
type Writer struct {
	dims    []Dim
	dimIdx  map[string]int
	gattrs  []Attr
	vars    []*writerVar
	varIdx  map[string]int
	noStats bool
}

type writerVar struct {
	v    Var
	data []byte // raw row-major payload, set by PutVar*
}

// NewWriter returns an empty file under construction.
func NewWriter() *Writer {
	return &Writer{dimIdx: map[string]int{}, varIdx: map[string]int{}}
}

// AddDim declares a dimension. Redeclaring a name with the same length is
// a no-op; a different length is an error.
func (w *Writer) AddDim(name string, length int) error {
	if length <= 0 {
		return fmt.Errorf("netcdf: dim %s: non-positive length %d", name, length)
	}
	if i, ok := w.dimIdx[name]; ok {
		if w.dims[i].Len != length {
			return fmt.Errorf("netcdf: dim %s redeclared with length %d (was %d)", name, length, w.dims[i].Len)
		}
		return nil
	}
	w.dimIdx[name] = len(w.dims)
	w.dims = append(w.dims, Dim{Name: name, Len: length})
	return nil
}

// GlobalAttr attaches a file-level attribute.
func (w *Writer) GlobalAttr(a Attr) { w.gattrs = append(w.gattrs, a) }

// DisableChunkStats omits the per-chunk statistics section, producing the
// pre-zone-map header layout — what legacy-compatibility tests exercise.
func (w *Writer) DisableChunkStats() { w.noStats = true }

// Chunking configures a variable's storage.
type Chunking struct {
	// Shape is the chunk extent per dimension; nil stores the variable
	// contiguously as one chunk.
	Shape []int
	// Deflate is the DEFLATE level 0–9 (0 = no compression).
	Deflate int
}

// AddVar declares a variable over previously declared dimensions.
func (w *Writer) AddVar(name string, t Type, dimNames []string, ck Chunking, attrs ...Attr) error {
	if _, dup := w.varIdx[name]; dup {
		return fmt.Errorf("netcdf: var %s already declared", name)
	}
	if len(dimNames) == 0 {
		return fmt.Errorf("netcdf: var %s: need at least one dimension", name)
	}
	v := Var{Name: name, Type: t, Attrs: attrs, Deflate: ck.Deflate}
	for _, dn := range dimNames {
		i, ok := w.dimIdx[dn]
		if !ok {
			return fmt.Errorf("netcdf: var %s: unknown dimension %q", name, dn)
		}
		v.Dims = append(v.Dims, w.dims[i])
	}
	if ck.Shape != nil {
		if len(ck.Shape) != len(v.Dims) {
			return fmt.Errorf("netcdf: var %s: chunk rank %d != var rank %d", name, len(ck.Shape), len(v.Dims))
		}
		for i, c := range ck.Shape {
			if c <= 0 || c > v.Dims[i].Len {
				return fmt.Errorf("netcdf: var %s: chunk extent %d invalid for dim %s(%d)", name, c, v.Dims[i].Name, v.Dims[i].Len)
			}
		}
		v.ChunkShape = append([]int(nil), ck.Shape...)
	}
	if ck.Deflate < 0 || ck.Deflate > 9 {
		return fmt.Errorf("netcdf: var %s: deflate level %d out of range", name, ck.Deflate)
	}
	w.varIdx[name] = len(w.vars)
	w.vars = append(w.vars, &writerVar{v: v})
	return nil
}

func (w *Writer) lookup(name string) (*writerVar, error) {
	i, ok := w.varIdx[name]
	if !ok {
		return nil, fmt.Errorf("netcdf: unknown variable %q", name)
	}
	return w.vars[i], nil
}

// PutVarBytes supplies a variable's full payload as raw little-endian
// row-major bytes.
func (w *Writer) PutVarBytes(name string, raw []byte) error {
	wv, err := w.lookup(name)
	if err != nil {
		return err
	}
	if want := wv.v.RawBytes(); int64(len(raw)) != want {
		return fmt.Errorf("netcdf: var %s: payload %d bytes, want %d", name, len(raw), want)
	}
	wv.data = raw
	return nil
}

// PutVarFloat32 supplies a Float32 variable's full payload.
func (w *Writer) PutVarFloat32(name string, vals []float32) error {
	wv, err := w.lookup(name)
	if err != nil {
		return err
	}
	if wv.v.Type != Float32 {
		return fmt.Errorf("netcdf: var %s is %s, not float", name, wv.v.Type)
	}
	return w.PutVarBytes(name, putFloat32s(vals))
}

// PutVarFloat64 supplies a Float64 variable's full payload.
func (w *Writer) PutVarFloat64(name string, vals []float64) error {
	wv, err := w.lookup(name)
	if err != nil {
		return err
	}
	if wv.v.Type != Float64 {
		return fmt.Errorf("netcdf: var %s is %s, not double", name, wv.v.Type)
	}
	return w.PutVarBytes(name, putFloat64s(vals))
}

// PutVarInt32 supplies an Int32 variable's full payload.
func (w *Writer) PutVarInt32(name string, vals []int32) error {
	wv, err := w.lookup(name)
	if err != nil {
		return err
	}
	if wv.v.Type != Int32 {
		return fmt.Errorf("netcdf: var %s is %s, not int", name, wv.v.Type)
	}
	return w.PutVarBytes(name, putInt32s(vals))
}

// PutVara writes the hyperslab [start, start+count) of a variable from
// raw little-endian row-major bytes — nc_put_vara. Regions never written
// stay zero. Mixing PutVara with a later full PutVarBytes overwrites
// everything.
func (w *Writer) PutVara(name string, start, count []int, raw []byte) error {
	wv, err := w.lookup(name)
	if err != nil {
		return err
	}
	shape := wv.v.Shape()
	if len(start) != len(shape) || len(count) != len(shape) {
		return fmt.Errorf("netcdf: var %s: slab rank %d/%d != var rank %d", name, len(start), len(count), len(shape))
	}
	for i := range shape {
		if start[i] < 0 || count[i] <= 0 || start[i]+count[i] > shape[i] {
			return fmt.Errorf("netcdf: var %s: slab [%d,+%d) outside dim %s(%d)", name, start[i], count[i], wv.v.Dims[i].Name, shape[i])
		}
	}
	es := wv.v.Type.Size()
	if len(raw) != volume(count)*es {
		return fmt.Errorf("netcdf: var %s: slab payload %d bytes, want %d", name, len(raw), volume(count)*es)
	}
	if wv.data == nil {
		wv.data = make([]byte, wv.v.RawBytes())
	}
	copyBox(wv.data, shape, start, raw, count, zeros(len(count)), count, es)
	return nil
}

// PutVaraFloat32 writes a float32 hyperslab — nc_put_vara_float.
func (w *Writer) PutVaraFloat32(name string, start, count []int, vals []float32) error {
	wv, err := w.lookup(name)
	if err != nil {
		return err
	}
	if wv.v.Type != Float32 {
		return fmt.Errorf("netcdf: var %s is %s, not float", name, wv.v.Type)
	}
	return w.PutVara(name, start, count, putFloat32s(vals))
}

// Bytes encodes the file: header (with per-chunk index) followed by chunk
// payloads. Every declared variable must have received data.
func (w *Writer) Bytes() ([]byte, error) {
	// First pass: chunk and compress every variable's payload, summarizing
	// each raw chunk into its zone map while the bytes are in hand.
	type stored struct {
		payloads [][]byte
		raws     []int64
		stats    []ChunkStats
	}
	perVar := make([]stored, len(w.vars))
	for vi, wv := range w.vars {
		if wv.data == nil {
			return nil, fmt.Errorf("netcdf: var %s has no data", wv.v.Name)
		}
		chunks, err := splitChunks(&wv.v, wv.data)
		if err != nil {
			return nil, err
		}
		st := stored{}
		for _, raw := range chunks {
			st.raws = append(st.raws, int64(len(raw)))
			if !w.noStats {
				st.stats = append(st.stats, computeChunkStats(wv.v.Type, raw))
			}
			if wv.v.Deflate > 0 {
				comp, err := deflateBytes(raw, wv.v.Deflate)
				if err != nil {
					return nil, err
				}
				st.payloads = append(st.payloads, comp)
			} else {
				st.payloads = append(st.payloads, raw)
			}
		}
		perVar[vi] = st
	}

	// Second pass: fix the header size so chunk offsets are final. The
	// header length depends only on metadata and chunk counts, both known.
	assignAndEncode := func(offsets bool, base int64) []byte {
		e := &enc{}
		e.u32(uint32(len(w.dims)))
		for _, d := range w.dims {
			e.str(d.Name)
			e.u64(uint64(d.Len))
		}
		e.attrs(w.gattrs)
		e.u32(uint32(len(w.vars)))
		cur := base
		for vi, wv := range w.vars {
			v := &wv.v
			e.str(v.Name)
			e.u8(uint8(v.Type))
			e.u32(uint32(len(v.Dims)))
			for _, d := range v.Dims {
				e.str(d.Name)
				e.u64(uint64(d.Len))
			}
			e.attrs(v.Attrs)
			if v.ChunkShape != nil {
				e.u8(1)
				for _, c := range v.ChunkShape {
					e.u64(uint64(c))
				}
			} else {
				e.u8(0)
			}
			e.u8(uint8(v.Deflate))
			st := perVar[vi]
			e.u32(uint32(len(st.payloads)))
			for ci, payload := range st.payloads {
				off := int64(0)
				if offsets {
					off = cur
				}
				e.u64(uint64(off))
				e.u64(uint64(len(payload)))
				e.u64(uint64(st.raws[ci]))
				cur += int64(len(payload))
			}
		}
		// Zone maps ride in a tagged trailer after the variable table: a
		// fixed 32 bytes per chunk, so the probe/offset passes agree on the
		// header size, and old readers (which stop at the variable table)
		// skip it untouched.
		if !w.noStats {
			e.u32(zoneMapTag)
			for vi := range w.vars {
				sts := perVar[vi].stats
				e.u32(uint32(len(sts)))
				for _, s := range sts {
					e.f64(s.Min)
					e.f64(s.Max)
					e.u64(uint64(s.Count))
					e.u64(uint64(s.Fill))
				}
			}
		}
		return e.buf
	}
	probe := assignAndEncode(false, 0)
	base := int64(len(Magic)) + 8 + int64(len(probe))
	header := assignAndEncode(true, base)
	if len(header) != len(probe) {
		return nil, fmt.Errorf("netcdf: internal error: header size changed %d -> %d", len(probe), len(header))
	}

	out := make([]byte, 0, base)
	out = append(out, Magic...)
	e := &enc{buf: out}
	e.u64(uint64(len(header)))
	e.buf = append(e.buf, header...)
	for _, st := range perVar {
		for _, payload := range st.payloads {
			e.buf = append(e.buf, payload...)
		}
	}
	return e.buf, nil
}

// splitChunks slices a variable's raw payload into row-major chunk
// payloads, clamping edge chunks.
func splitChunks(v *Var, raw []byte) ([][]byte, error) {
	if v.ChunkShape == nil {
		return [][]byte{raw}, nil
	}
	grid := v.chunkGrid()
	n := 1
	for _, g := range grid {
		n *= g
	}
	out := make([][]byte, 0, n)
	idx := make([]int, len(grid))
	shape := v.Shape()
	es := v.Type.Size()
	for {
		start, extent := v.chunkExtent(idx)
		payload := make([]byte, volume(extent)*es)
		copyBox(payload, extent, zeros(len(extent)), raw, shape, start, extent, es)
		out = append(out, payload)
		if !incIndex(idx, grid) {
			break
		}
	}
	return out, nil
}

// deflateBytes compresses b at the given level.
func deflateBytes(b []byte, level int) ([]byte, error) {
	var buf bytes.Buffer
	fw, err := flate.NewWriter(&buf, level)
	if err != nil {
		return nil, err
	}
	if _, err := fw.Write(b); err != nil {
		return nil, err
	}
	if err := fw.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

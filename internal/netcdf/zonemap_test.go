package netcdf

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
)

// TestChunkStatsProperty writes random arrays under random geometries and
// checks every recorded zone map against a brute-force pass over the
// chunk's elements.
func TestChunkStatsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		rank := 1 + rng.Intn(3)
		shape := make([]int, rank)
		cs := make([]int, rank)
		for i := range shape {
			shape[i] = 1 + rng.Intn(7)
			cs[i] = 1 + rng.Intn(shape[i]) // may not divide evenly: partial edge chunks
		}
		typ := []Type{Byte, Int32, Int64, Float32, Float64}[rng.Intn(5)]
		n := 1
		for _, s := range shape {
			n *= s
		}
		es := typ.Size()
		raw := make([]byte, n*es)
		vals := make([]float64, n)
		for i := range vals {
			var v float64
			switch typ {
			case Byte:
				v = float64(rng.Intn(256))
				raw[i] = byte(v)
			case Int32:
				v = float64(int32(rng.Int63()))
				putInt32Raw(raw[i*4:], int32(v))
			case Int64:
				iv := rng.Int63() - rng.Int63()
				v = float64(iv)
				putInt64Raw(raw[i*8:], iv)
			case Float32:
				f := float32(rng.NormFloat64() * 10)
				if rng.Intn(5) == 0 {
					f = float32(math.NaN())
				}
				v = float64(f)
				putFloat32Raw(raw[i*4:], f)
			case Float64:
				v = rng.NormFloat64() * 10
				if rng.Intn(5) == 0 {
					v = math.NaN()
				}
				putFloat64Raw(raw[i*8:], v)
			}
			vals[i] = v
		}

		w := NewWriter()
		dims := make([]string, rank)
		for i := range dims {
			dims[i] = []string{"x", "y", "z"}[i]
			if err := w.AddDim(dims[i], shape[i]); err != nil {
				t.Fatal(err)
			}
		}
		deflate := rng.Intn(2)
		if err := w.AddVar("v", typ, dims, Chunking{Shape: cs, Deflate: deflate}); err != nil {
			t.Fatal(err)
		}
		if err := w.PutVarBytes("v", raw); err != nil {
			t.Fatal(err)
		}
		blob, err := w.Bytes()
		if err != nil {
			t.Fatal(err)
		}
		f, err := Open(BytesReader(blob))
		if err != nil {
			t.Fatal(err)
		}
		v, err := f.Var("v")
		if err != nil {
			t.Fatal(err)
		}
		str := strides(shape)
		for ci := range v.Chunks {
			st := v.Chunks[ci].Stats
			if st == nil {
				t.Fatalf("trial %d: chunk %d has no stats", trial, ci)
			}
			start, extent := v.ChunkBox(ci)
			want := ChunkStats{Min: math.Inf(1), Max: math.Inf(-1)}
			idx := make([]int, rank)
			for {
				flat := 0
				for d := range idx {
					flat += (start[d] + idx[d]) * str[d]
				}
				want.Count++
				x := vals[flat]
				if math.IsNaN(x) {
					want.Fill++
				} else {
					want.Min = math.Min(want.Min, x)
					want.Max = math.Max(want.Max, x)
				}
				if !incIndex(idx, extent) {
					break
				}
			}
			if *st != want {
				t.Fatalf("trial %d chunk %d (type %s, shape %v, chunk %v): stats %+v, brute force %+v",
					trial, ci, typ, shape, cs, *st, want)
			}
		}
	}
}

func putInt32Raw(b []byte, v int32)     { binary.LittleEndian.PutUint32(b, uint32(v)) }
func putInt64Raw(b []byte, v int64)     { binary.LittleEndian.PutUint64(b, uint64(v)) }
func putFloat32Raw(b []byte, v float32) { binary.LittleEndian.PutUint32(b, math.Float32bits(v)) }
func putFloat64Raw(b []byte, v float64) { binary.LittleEndian.PutUint64(b, math.Float64bits(v)) }

// TestGetVaraPartialChunksWithStats reads hyperslabs crossing partial
// edge chunks of a stats-bearing file and checks the data against the
// original values.
func TestGetVaraPartialChunksWithStats(t *testing.T) {
	const ny, nx = 5, 7
	w := NewWriter()
	if err := w.AddDim("y", ny); err != nil {
		t.Fatal(err)
	}
	if err := w.AddDim("x", nx); err != nil {
		t.Fatal(err)
	}
	// 2x3 chunks over a 5x7 array: partial chunks on both edges.
	if err := w.AddVar("v", Float64, []string{"y", "x"}, Chunking{Shape: []int{2, 3}, Deflate: 1}); err != nil {
		t.Fatal(err)
	}
	vals := make([]float64, ny*nx)
	for i := range vals {
		vals[i] = float64(i) * 1.5
	}
	if err := w.PutVarFloat64("v", vals); err != nil {
		t.Fatal(err)
	}
	blob, err := w.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	f, err := Open(BytesReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	v, _ := f.Var("v")
	for _, c := range v.Chunks {
		if c.Stats == nil {
			t.Fatal("chunk missing stats")
		}
		if c.Stats.Fill != 0 || c.Stats.Count == 0 {
			t.Fatalf("unexpected stats %+v", *c.Stats)
		}
	}
	// Slabs chosen to cross chunk boundaries including the partial edges.
	slabs := [][2][]int{
		{{1, 2}, {3, 4}}, // interior crossing 4 chunks
		{{3, 5}, {2, 2}}, // touches both partial edge chunks
		{{0, 0}, {ny, nx}},
		{{4, 6}, {1, 1}}, // the corner partial chunk alone
	}
	for _, s := range slabs {
		start, count := s[0], s[1]
		arr, err := f.GetVara("v", start, count)
		if err != nil {
			t.Fatalf("GetVara(%v,%v): %v", start, count, err)
		}
		for yy := 0; yy < count[0]; yy++ {
			for xx := 0; xx < count[1]; xx++ {
				got := arr.Float64At(yy*count[1] + xx)
				want := vals[(start[0]+yy)*nx+(start[1]+xx)]
				if got != want {
					t.Fatalf("slab %v+%v at (%d,%d): got %v want %v", start, count, yy, xx, got, want)
				}
			}
		}
	}
}

// TestLegacyFileWithoutStats checks both compatibility directions: a
// writer with stats disabled produces the old header layout (readable,
// Stats nil), and appending unknown trailing bytes after the variable
// table — what an even newer section would look like — is ignored.
func TestLegacyFileWithoutStats(t *testing.T) {
	build := func(noStats bool) []byte {
		w := NewWriter()
		if noStats {
			w.DisableChunkStats()
		}
		if err := w.AddDim("x", 6); err != nil {
			t.Fatal(err)
		}
		if err := w.AddVar("v", Float32, []string{"x"}, Chunking{Shape: []int{4}, Deflate: 1}); err != nil {
			t.Fatal(err)
		}
		if err := w.PutVarFloat32("v", []float32{1, 2, 3, 4, 5, 6}); err != nil {
			t.Fatal(err)
		}
		blob, err := w.Bytes()
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}
	legacy := build(true)
	tagged := build(false)
	if len(legacy) >= len(tagged) {
		t.Fatal("stats section should add header bytes")
	}

	f, err := Open(BytesReader(legacy))
	if err != nil {
		t.Fatalf("legacy file failed to open: %v", err)
	}
	v, _ := f.Var("v")
	for _, c := range v.Chunks {
		if c.Stats != nil {
			t.Fatal("legacy file should have nil Stats")
		}
	}
	arr, err := f.GetVar("v")
	if err != nil {
		t.Fatal(err)
	}
	if arr.Float64At(5) != 6 {
		t.Fatal("legacy data mismatch")
	}

	f2, err := Open(BytesReader(tagged))
	if err != nil {
		t.Fatal(err)
	}
	v2, _ := f2.Var("v")
	if v2.Chunks[0].Stats == nil {
		t.Fatal("tagged file should carry stats")
	}
	if got := *v2.Chunks[0].Stats; got.Min != 1 || got.Max != 4 || got.Count != 4 || got.Fill != 0 {
		t.Fatalf("bad stats %+v", got)
	}
}

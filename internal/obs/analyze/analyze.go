// Package analyze is the post-run performance-analysis plane: a
// deterministic engine that reads a finished run's span tree and metric
// registry (internal/obs) and answers "where did the time go?" —
//
//   - the weighted critical path of each job (the longest virtual-time
//     chain through job→phase→task→reader→pfs→flow spans) and which
//     spans on it dominate;
//   - every task attempt's wall time attributed into buckets
//     (scheduling wait, input I/O, compute, shuffle, fault recovery),
//     summed per phase and per job;
//   - resources ranked by busy time / bytes / peak concurrency, and the
//     bottleneck resource per phase;
//   - straggler detection via per-phase task-duration percentiles
//     (p50/p90/p99) and IQR outliers.
//
// Everything here is a pure function of the registry contents: given
// byte-identical exports (the determinism contract the simulator
// upholds for a fixed seed, at any ComputePool worker count), Analyze
// produces byte-identical reports. No wall-clock, no map-iteration
// order, no randomness.
package analyze

import (
	"cmp"
	"slices"
	"strings"

	"scidp/internal/obs"
)

// Bucket names used throughout attribution and critical-path output.
const (
	BucketSched    = "sched"
	BucketIO       = "io"
	BucketCompute  = "compute"
	BucketShuffle  = "shuffle"
	BucketRecovery = "recovery"
	BucketOther    = "other"
)

// Attribution splits a quantity of time (seconds) across the five
// accounting buckets plus a remainder.
type Attribution struct {
	Sched    float64 `json:"sched_seconds"`
	IO       float64 `json:"io_seconds"`
	Compute  float64 `json:"compute_seconds"`
	Shuffle  float64 `json:"shuffle_seconds"`
	Recovery float64 `json:"recovery_seconds"`
	Other    float64 `json:"other_seconds"`
}

// Total sums every bucket.
func (a *Attribution) Total() float64 {
	return a.Sched + a.IO + a.Compute + a.Shuffle + a.Recovery + a.Other
}

func (a *Attribution) add(bucket string, s float64) {
	switch bucket {
	case BucketSched:
		a.Sched += s
	case BucketIO:
		a.IO += s
	case BucketCompute:
		a.Compute += s
	case BucketShuffle:
		a.Shuffle += s
	case BucketRecovery:
		a.Recovery += s
	default:
		a.Other += s
	}
}

func (a *Attribution) addAll(b Attribution) {
	a.Sched += b.Sched
	a.IO += b.IO
	a.Compute += b.Compute
	a.Shuffle += b.Shuffle
	a.Recovery += b.Recovery
	a.Other += b.Other
}

// Percentiles summarizes a sample of task durations with exact order
// statistics (no interpolation: p(q) is the smallest sample ≥ a q
// fraction of the sorted set, so every reported value is an observed
// duration).
type Percentiles struct {
	Count int     `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// Straggler is one task-duration outlier (Tukey IQR rule within its
// phase).
type Straggler struct {
	Task    string  `json:"task"`
	Node    string  `json:"node"`
	Seconds float64 `json:"seconds"`
	// XMedian is the duration as a multiple of the phase median (0 when
	// the median is 0).
	XMedian float64 `json:"x_median"`
}

// PathSegment is one hop of a job's critical path, in chronological
// order; segments tile [job.Start, job.End] exactly.
type PathSegment struct {
	Span    string  `json:"span"`
	Cat     string  `json:"cat"`
	Bucket  string  `json:"bucket"`
	Start   float64 `json:"start"`
	End     float64 `json:"end"`
	Seconds float64 `json:"seconds"`
}

// PathContrib aggregates a span name's total residence on the critical
// path.
type PathContrib struct {
	Span    string  `json:"span"`
	Seconds float64 `json:"seconds"`
	// Share is Seconds over the job's span (0 when the job is empty).
	Share float64 `json:"share"`
}

// CriticalPath is the longest virtual-time chain through one job's span
// tree.
type CriticalPath struct {
	Segments []PathSegment `json:"segments"`
	// Dominant ranks span names by residence time, descending (top
	// maxDominant).
	Dominant []PathContrib `json:"dominant"`
	// Buckets attributes the whole path into accounting buckets; its
	// Total equals the job duration.
	Buckets Attribution `json:"buckets"`
}

// maxDominant bounds the Dominant ranking; maxStragglers bounds each
// phase's straggler list. Both keep reports readable on huge runs.
const (
	maxDominant   = 12
	maxStragglers = 16
)

// PhaseReport accounts for one phase of a job.
type PhaseReport struct {
	Name    string  `json:"name"`
	Start   float64 `json:"start"`
	End     float64 `json:"end"`
	Seconds float64 `json:"seconds"`
	// Tasks counts distinct task labels; Attempts counts attempt spans
	// (≥ Tasks under retry/speculation).
	Tasks     int `json:"tasks"`
	Attempts  int `json:"attempts"`
	Failed    int `json:"failed"`
	Discarded int `json:"discarded"`
	// Buckets sums attributed task-seconds (not wall seconds: parallel
	// tasks each contribute their own time).
	Buckets     Attribution `json:"buckets"`
	TaskSeconds Percentiles `json:"task_seconds"`
	Stragglers  []Straggler `json:"stragglers,omitempty"`
	// Bottleneck names the resource with the most busy time inside the
	// phase window ("" when the phase moved no flows).
	Bottleneck string `json:"bottleneck,omitempty"`
	// BottleneckBusy is that resource's busy seconds within the phase.
	BottleneckBusy float64 `json:"bottleneck_busy_seconds,omitempty"`
}

// JobReport accounts for one job span.
type JobReport struct {
	// Process is the obs process the job ran under; Name is the job name.
	Process      string        `json:"process"`
	Name         string        `json:"name"`
	Start        float64       `json:"start"`
	End          float64       `json:"end"`
	Seconds      float64       `json:"seconds"`
	Phases       []PhaseReport `json:"phases"`
	Buckets      Attribution   `json:"buckets"`
	CriticalPath CriticalPath  `json:"critical_path"`
}

// ResourceUse is one simulated resource's whole-run utilization, from
// the sim.ExportResourceMetrics counters (or re-derived from flow spans
// when those were never exported).
type ResourceUse struct {
	Name        string  `json:"name"`
	BusySeconds float64 `json:"busy_seconds"`
	Bytes       float64 `json:"bytes"`
	Flows       float64 `json:"flows"`
	PeakFlows   float64 `json:"peak_flows,omitempty"`
	// QueueDepthMax is the peak request queue depth observed for OST
	// resources (joined from the pfs/ost_queue_depth gauge timeline).
	QueueDepthMax float64 `json:"queue_depth_max,omitempty"`
}

// CacheTierLevel is one cache-tier level's share of tier-arbitrated
// reads, joined from the ioengine/tier_* and cache_hit_ratio series.
type CacheTierLevel struct {
	// Level is "local", "peer", or "ost".
	Level string  `json:"level"`
	Reads float64 `json:"reads"`
	Bytes float64 `json:"bytes"`
	// HitRatio is this level's share of all tier-arbitrated reads (the
	// three levels sum to 1).
	HitRatio float64 `json:"hit_ratio"`
}

// CacheTierReport summarizes the cooperative burst-buffer tier: where
// reads were served (node-local buffer, a peer's buffer over the
// network, or the OST fallback) plus the admission/eviction/promotion
// churn and resident footprint at export time.
type CacheTierReport struct {
	// Levels holds local, peer, ost in that fixed order.
	Levels          []CacheTierLevel `json:"levels"`
	Admits          float64          `json:"admits"`
	Evictions       float64          `json:"evictions"`
	Promotions      float64          `json:"promotions"`
	ResidentBytes   float64          `json:"resident_bytes"`
	ResidentEntries float64          `json:"resident_entries"`
}

// Report is the full analysis of one registry.
type Report struct {
	Jobs []JobReport `json:"jobs"`
	// Resources ranks every simulated resource by busy time, descending.
	Resources []ResourceUse `json:"resources"`
	// CacheTier summarizes the ioengine cooperative cache when a tier
	// was attached and served at least one read; nil otherwise.
	CacheTier *CacheTierReport `json:"cache_tier,omitempty"`
	// SpansDropped echoes the registry's span-buffer overflow count; a
	// nonzero value means the analysis below is partial.
	SpansDropped int `json:"spans_dropped,omitempty"`
}

// node is one span with its children resolved.
type node struct {
	s        obs.SpanInfo
	children []*node
	// byEnd caches children sorted ascending by (End, Start, ID) for the
	// critical-path walk; built lazily.
	byEnd []*node
}

func (n *node) seconds() float64 { return n.s.End - n.s.Start }

// Analyze runs the full engine over a registry. Safe on nil (returns an
// empty report).
func Analyze(r *obs.Registry) *Report {
	// Non-nil slices so an empty analysis marshals as [] rather than
	// null — downstream tooling iterates without a nil check.
	rep := &Report{Jobs: []JobReport{}, Resources: []ResourceUse{}}
	if r == nil {
		return rep
	}
	rep.SpansDropped = int(r.Dropped())

	spans := r.Spans()
	byID := make(map[uint64]*node, len(spans))
	nodes := make([]*node, 0, len(spans))
	for i := range spans {
		n := &node{s: spans[i]}
		byID[n.s.ID] = n
		nodes = append(nodes, n)
	}
	// Spans() is id (creation) order, so children lists are born sorted
	// by id and the whole build is deterministic.
	for _, n := range nodes {
		if p := byID[n.s.Parent]; n.s.Parent != 0 && p != nil {
			p.children = append(p.children, n)
		}
	}

	for _, n := range nodes {
		if n.s.Cat == "mapreduce" && strings.HasPrefix(n.s.Name, "job:") && !n.s.Open {
			rep.Jobs = append(rep.Jobs, analyzeJob(n))
		}
	}
	snap := r.Snapshot()
	rep.Resources = resourceTable(snap, nodes)
	rep.CacheTier = cacheTierTable(snap)
	return rep
}

// ---- Per-job analysis.

func analyzeJob(job *node) JobReport {
	jr := JobReport{
		Process: job.s.Process,
		Name:    strings.TrimPrefix(job.s.Name, "job:"),
		Start:   job.s.Start,
		End:     job.s.End,
		Seconds: job.seconds(),
	}
	for _, c := range job.children {
		if c.s.Cat == "mapreduce" && strings.HasPrefix(c.s.Name, "phase:") && !c.s.Open {
			pr := analyzePhase(c)
			jr.Buckets.addAll(pr.Buckets)
			jr.Phases = append(jr.Phases, pr)
		}
	}
	jr.CriticalPath = criticalPath(job)
	return jr
}

// attempt is one task-attempt span, decoded.
type attempt struct {
	n         *node
	label     string
	nodeName  string
	num       float64
	spec      bool
	failed    bool
	discarded bool
	startup   float64
	wait      float64 // scheduling wait before launch, filled by analyzePhase
	io        float64
	shuffle   float64
	compute   float64
}

func analyzePhase(phase *node) PhaseReport {
	pr := PhaseReport{
		Name:    strings.TrimPrefix(phase.s.Name, "phase:"),
		Start:   phase.s.Start,
		End:     phase.s.End,
		Seconds: phase.seconds(),
	}

	byLabel := map[string][]*attempt{}
	labels := []string{}
	for _, c := range phase.children {
		if c.s.Cat != "mapreduce" || !strings.HasPrefix(c.s.Name, "task:") || c.s.Open {
			continue
		}
		a := decodeAttempt(c)
		if byLabel[a.label] == nil {
			labels = append(labels, a.label)
		}
		byLabel[a.label] = append(byLabel[a.label], a)
	}
	pr.Tasks = len(labels)

	var durations []float64
	var finished []timed
	for _, label := range labels {
		atts := byLabel[label]
		// Launch order = creation order (already sorted by span id);
		// scheduling wait chains off the phase start for the first
		// attempt and off the previous attempt's end for retries.
		// Speculative backups run concurrently with their original, so
		// they charge no wait.
		prevEnd := phase.s.Start
		for _, a := range atts {
			if !a.spec {
				a.wait = max(0, a.n.s.Start-prevEnd)
				prevEnd = a.n.s.End
			}
			pr.Attempts++
			wall := a.n.seconds()
			if a.failed || a.discarded {
				// A failed or thrown-away attempt contributed nothing to
				// the job: every second it held (including the wait to
				// launch it) is the price of fault recovery.
				if a.failed {
					pr.Failed++
				} else {
					pr.Discarded++
				}
				pr.Buckets.add(BucketRecovery, a.wait+wall)
				continue
			}
			pr.Buckets.add(BucketSched, a.wait+a.startup)
			pr.Buckets.add(BucketIO, a.io)
			pr.Buckets.add(BucketShuffle, a.shuffle)
			pr.Buckets.add(BucketCompute, a.compute)
			durations = append(durations, wall)
			finished = append(finished, timed{task: a.label, node: a.nodeName, seconds: wall})
		}
	}

	pr.TaskSeconds = percentiles(durations)
	pr.Stragglers = stragglers(durations, finished)
	pr.Bottleneck, pr.BottleneckBusy = phaseBottleneck(phase)
	return pr
}

func decodeAttempt(c *node) *attempt {
	a := &attempt{n: c, label: strings.TrimPrefix(c.s.Name, "task:")}
	a.nodeName = c.s.ArgString("node")
	a.num, _ = c.s.ArgFloat("attempt")
	a.spec = c.s.ArgBool("speculative")
	a.failed = c.s.ArgBool("failed")
	a.discarded = c.s.ArgBool("discarded")
	a.startup, _ = c.s.ArgFloat("startup")

	// I/O time is the union of the attempt's maximal reader/filesystem
	// descendant intervals (core wraps pfs wraps stripe flows; counting
	// only the outermost of each chain avoids double-charging the nested
	// time). Raw flows parented directly on the task span are the task
	// body's own transfers: shuffle fetches for reducers, output
	// pipeline writes otherwise.
	var ioIvs, shIvs []interval
	reduce := strings.HasPrefix(a.label, "reduce-")
	for _, ch := range c.children {
		switch {
		case ch.s.Cat == "core" || ch.s.Cat == "pfs":
			ioIvs = append(ioIvs, interval{ch.s.Start, ch.s.End})
		case ch.s.Name == "flow":
			if reduce {
				shIvs = append(shIvs, interval{ch.s.Start, ch.s.End})
			} else {
				ioIvs = append(ioIvs, interval{ch.s.Start, ch.s.End})
			}
		}
	}
	wall := c.seconds()
	a.io = unionSeconds(clip(ioIvs, c.s.Start, c.s.End))
	a.shuffle = unionSeconds(clip(shIvs, c.s.Start, c.s.End))
	if a.startup > wall {
		a.startup = wall
	}
	a.compute = max(0, wall-a.startup-a.io-a.shuffle)
	return a
}

// ---- Percentiles and stragglers.

// percentiles computes exact order statistics; q is resolved as the
// sample at index ceil(q·n)-1 of the ascending sort.
func percentiles(ds []float64) Percentiles {
	p := Percentiles{Count: len(ds)}
	if len(ds) == 0 {
		return p
	}
	sorted := slices.Clone(ds)
	slices.Sort(sorted)
	var sum float64
	for _, d := range sorted {
		sum += d
	}
	p.Mean = sum / float64(len(sorted))
	p.P50 = quantile(sorted, 0.50)
	p.P90 = quantile(sorted, 0.90)
	p.P99 = quantile(sorted, 0.99)
	p.Max = sorted[len(sorted)-1]
	return p
}

// quantile indexes an ascending sample set: the smallest element such
// that at least a q fraction of samples are ≤ it. Same convention as
// the speculation threshold in internal/mapreduce.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(float64(len(sorted))*q+0.999999) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// timed is one successful attempt's identity and duration, the
// straggler candidates.
type timed struct {
	task, node string
	seconds    float64
}

func stragglers(durations []float64, finished []timed) []Straggler {
	if len(durations) < 4 {
		return nil // quartiles of a tiny sample flag noise, not stragglers
	}
	sorted := slices.Clone(durations)
	slices.Sort(sorted)
	q1 := quantile(sorted, 0.25)
	q3 := quantile(sorted, 0.75)
	cut := q3 + 1.5*(q3-q1)
	med := quantile(sorted, 0.50)
	var out []Straggler
	for _, f := range finished {
		if f.seconds > cut {
			s := Straggler{Task: f.task, Node: f.node, Seconds: f.seconds}
			if med > 0 {
				s.XMedian = f.seconds / med
			}
			out = append(out, s)
		}
	}
	slices.SortFunc(out, func(a, b Straggler) int {
		if c := cmp.Compare(b.Seconds, a.Seconds); c != 0 {
			return c
		}
		return strings.Compare(a.Task, b.Task)
	})
	if len(out) > maxStragglers {
		out = out[:maxStragglers]
	}
	return out
}

// ---- Interval arithmetic.

type interval struct{ lo, hi float64 }

func clip(ivs []interval, lo, hi float64) []interval {
	out := ivs[:0]
	for _, iv := range ivs {
		if iv.lo < lo {
			iv.lo = lo
		}
		if iv.hi > hi {
			iv.hi = hi
		}
		if iv.hi > iv.lo {
			out = append(out, iv)
		}
	}
	return out
}

// unionSeconds measures the union of the intervals — overlapping
// parallel transfers count once.
func unionSeconds(ivs []interval) float64 {
	if len(ivs) == 0 {
		return 0
	}
	slices.SortFunc(ivs, func(a, b interval) int {
		if c := cmp.Compare(a.lo, b.lo); c != 0 {
			return c
		}
		return cmp.Compare(a.hi, b.hi)
	})
	var total float64
	cur := ivs[0]
	for _, iv := range ivs[1:] {
		if iv.lo > cur.hi {
			total += cur.hi - cur.lo
			cur = iv
			continue
		}
		if iv.hi > cur.hi {
			cur.hi = iv.hi
		}
	}
	return total + (cur.hi - cur.lo)
}

// ---- Phase bottleneck.

// phaseBottleneck unions each resource's flow intervals within the
// phase window and names the busiest (ties break by name).
func phaseBottleneck(phase *node) (string, float64) {
	perRes := map[string][]interval{}
	var visit func(n *node)
	visit = func(n *node) {
		for _, c := range n.children {
			if c.s.Name == "flow" && !c.s.Open {
				for _, res := range strings.Split(c.s.ArgString("res"), "+") {
					if res != "" {
						perRes[res] = append(perRes[res], interval{c.s.Start, c.s.End})
					}
				}
			}
			visit(c)
		}
	}
	visit(phase)

	best, bestBusy := "", 0.0
	names := make([]string, 0, len(perRes))
	for res := range perRes {
		names = append(names, res)
	}
	slices.Sort(names)
	for _, res := range names {
		busy := unionSeconds(clip(perRes[res], phase.s.Start, phase.s.End))
		if busy > bestBusy {
			best, bestBusy = res, busy
		}
	}
	return best, bestBusy
}

// ---- Critical path.

// criticalPath walks the job tree backwards from the job end: at every
// step the path descends into the child span whose end reaches closest
// to the current frontier, charges the uncovered gap to the parent
// itself, and continues from the child's start. The result tiles
// [job.Start, job.End] exactly with the chain of spans that gated
// completion — the virtual-time longest path.
func criticalPath(job *node) CriticalPath {
	cp := CriticalPath{}
	var segs []PathSegment // built latest-first, reversed at the end

	push := func(n *node, bucket string, lo, hi float64) {
		if hi > lo {
			segs = append(segs, PathSegment{Span: n.s.Name, Cat: n.s.Cat, Bucket: bucket, Start: lo, End: hi, Seconds: hi - lo})
		}
	}
	emit := func(n *node, lo, hi float64, task *taskCtx) {
		if hi <= lo {
			return
		}
		bucket := classify(n, task)
		if bucket == BucketCompute && task != nil && task.launchEnd > lo {
			// Split the task's own residence at the end of its startup
			// charge: launch cost is scheduling, the rest is compute.
			// (Segments build latest-first, so compute precedes sched.)
			launchEnd := min(hi, task.launchEnd)
			push(n, BucketCompute, launchEnd, hi)
			push(n, BucketSched, lo, launchEnd)
			return
		}
		push(n, bucket, lo, hi)
	}

	var walk func(n *node, lo, hi float64, task *taskCtx)
	walk = func(n *node, lo, hi float64, task *taskCtx) {
		if hi <= lo {
			return
		}
		if n.s.Cat == "mapreduce" && strings.HasPrefix(n.s.Name, "task:") {
			startup, _ := n.s.ArgFloat("startup")
			task = &taskCtx{
				reduce:    strings.HasPrefix(strings.TrimPrefix(n.s.Name, "task:"), "reduce-"),
				failed:    n.s.ArgBool("failed") || n.s.ArgBool("discarded"),
				launchEnd: n.s.Start + startup,
			}
		}
		if n.byEnd == nil {
			kids := make([]*node, 0, len(n.children))
			for _, c := range n.children {
				if !c.s.Open {
					kids = append(kids, c)
				}
			}
			slices.SortFunc(kids, func(a, b *node) int {
				if c := cmp.Compare(a.s.End, b.s.End); c != 0 {
					return c
				}
				if c := cmp.Compare(a.s.Start, b.s.Start); c != 0 {
					return c
				}
				return cmp.Compare(a.s.ID, b.s.ID)
			})
			n.byEnd = kids
		}
		frontier := hi
		i := len(n.byEnd) - 1
		for frontier > lo {
			for i >= 0 && n.byEnd[i].s.End > frontier {
				i--
			}
			// Skip children that end at or before lo, or that cover no
			// time: the parent owns that stretch.
			for i >= 0 && (n.byEnd[i].s.End <= lo || n.byEnd[i].s.End <= n.byEnd[i].s.Start) {
				i--
			}
			if i < 0 {
				emit(n, lo, frontier, task)
				return
			}
			c := n.byEnd[i]
			emit(n, c.s.End, frontier, task) // gap the parent itself spent
			childLo := max(lo, c.s.Start)
			walk(c, childLo, c.s.End, task)
			frontier = childLo
			i--
		}
	}
	walk(job, job.s.Start, job.s.End, nil)

	slices.Reverse(segs)
	total := job.seconds()
	contrib := map[string]float64{}
	order := []string{}
	for _, s := range segs {
		if _, ok := contrib[s.Span]; !ok {
			order = append(order, s.Span)
		}
		contrib[s.Span] += s.Seconds
		cp.Buckets.add(s.Bucket, s.Seconds)
	}
	for _, name := range order {
		pc := PathContrib{Span: name, Seconds: contrib[name]}
		if total > 0 {
			pc.Share = pc.Seconds / total
		}
		cp.Dominant = append(cp.Dominant, pc)
	}
	slices.SortFunc(cp.Dominant, func(a, b PathContrib) int {
		if c := cmp.Compare(b.Seconds, a.Seconds); c != 0 {
			return c
		}
		return strings.Compare(a.Span, b.Span)
	})
	if len(cp.Dominant) > maxDominant {
		cp.Dominant = cp.Dominant[:maxDominant]
	}
	cp.Segments = segs
	return cp
}

// taskCtx carries the enclosing task attempt's facts down the walk so
// descendant flows classify correctly.
type taskCtx struct {
	reduce    bool
	failed    bool
	launchEnd float64
}

// classify maps a span to its accounting bucket given the enclosing
// task (nil above the task level).
func classify(n *node, task *taskCtx) string {
	if task != nil && task.failed {
		return BucketRecovery
	}
	switch n.s.Cat {
	case "core", "pfs":
		return BucketIO
	case "chaos":
		return BucketRecovery
	case "mapreduce":
		switch {
		case strings.HasPrefix(n.s.Name, "task:"):
			return BucketCompute
		case strings.HasPrefix(n.s.Name, "phase:"):
			return BucketSched // the phase's own residence is scheduling/stitching
		default:
			return BucketOther
		}
	}
	if n.s.Name == "flow" {
		if task != nil && task.reduce {
			return BucketShuffle
		}
		return BucketIO
	}
	return BucketOther
}

// ---- Resource table.

// resourceTable ranks resources by busy time. It prefers the
// sim/resource_* counters (exact whole-run totals exported by
// sim.Tracer.ExportResourceMetrics) and falls back to re-deriving the
// same figures from flow spans when the counters are absent. OST queue
// depth peaks join in from the pfs gauge timelines.
func resourceTable(snap []obs.SeriesInfo, nodes []*node) []ResourceUse {
	byName := map[string]*ResourceUse{}
	get := func(name string) *ResourceUse {
		u := byName[name]
		if u == nil {
			u = &ResourceUse{Name: name}
			byName[name] = u
		}
		return u
	}

	fromCounters := false
	for i := range snap {
		s := &snap[i]
		res := s.Label("res")
		switch s.Name {
		case "sim/resource_busy_seconds":
			get(res).BusySeconds = s.Value
			fromCounters = true
		case "sim/resource_bytes_total":
			get(res).Bytes = s.Value
		case "sim/resource_flows_total":
			get(res).Flows = s.Value
		case "sim/resource_peak_flows":
			get(res).PeakFlows = s.Value
		}
	}

	if !fromCounters {
		byName = map[string]*ResourceUse{}
		perRes := map[string][]interval{}
		for _, n := range nodes {
			if n.s.Name != "flow" || n.s.Open {
				continue
			}
			bytes, _ := n.s.ArgFloat("bytes")
			for _, res := range strings.Split(n.s.ArgString("res"), "+") {
				if res == "" {
					continue
				}
				u := get(res)
				u.Bytes += bytes
				u.Flows++
				perRes[res] = append(perRes[res], interval{n.s.Start, n.s.End})
			}
		}
		for res, ivs := range perRes {
			byName[res].BusySeconds = unionSeconds(ivs)
		}
	}

	// Join OST queue-depth peaks: pfs labels OSTs "ost-N", the kernel
	// resource is "pfs/ost-N".
	for i := range snap {
		s := &snap[i]
		if s.Name != "pfs/ost_queue_depth" {
			continue
		}
		peak := s.Value
		for _, sm := range s.Samples {
			if sm.V > peak {
				peak = sm.V
			}
		}
		if u := byName["pfs/"+s.Label("ost")]; u != nil && peak > u.QueueDepthMax {
			u.QueueDepthMax = peak
		}
	}

	out := make([]ResourceUse, 0, len(byName))
	for _, u := range byName {
		out = append(out, *u)
	}
	slices.SortFunc(out, func(a, b ResourceUse) int {
		if c := cmp.Compare(b.BusySeconds, a.BusySeconds); c != 0 {
			return c
		}
		return strings.Compare(a.Name, b.Name)
	})
	return out
}

// ---- Cache-tier table.

// cacheTierTable joins the ioengine/tier_* counters and the derived
// cache_hit_ratio gauges into a per-level summary. Returns nil when no
// tier was registered or the tier never arbitrated a read — a report
// without a cache section means the cache played no part in the run.
func cacheTierTable(snap []obs.SeriesInfo) *CacheTierReport {
	byLevel := map[string]*CacheTierLevel{}
	ct := &CacheTierReport{}
	seen := false
	for _, s := range snap {
		level := func() *CacheTierLevel {
			l := s.Label("level")
			e := byLevel[l]
			if e == nil {
				e = &CacheTierLevel{Level: l}
				byLevel[l] = e
			}
			return e
		}
		switch s.Name {
		case "ioengine/tier_reads_total":
			level().Reads = s.Value
			seen = true
		case "ioengine/tier_bytes_total":
			level().Bytes = s.Value
		case "ioengine/cache_hit_ratio":
			level().HitRatio = s.Value
		case "ioengine/tier_admits_total":
			ct.Admits = s.Value
		case "ioengine/tier_evictions_total":
			ct.Evictions = s.Value
		case "ioengine/tier_promotions_total":
			ct.Promotions = s.Value
		case "ioengine/tier_resident_bytes":
			ct.ResidentBytes = s.Value
		case "ioengine/tier_resident_entries":
			ct.ResidentEntries = s.Value
		}
	}
	total := 0.0
	for _, e := range byLevel {
		total += e.Reads
	}
	if !seen || total == 0 {
		return nil
	}
	// Fixed order so the JSON is byte-stable regardless of map walks.
	for _, l := range []string{"local", "peer", "ost"} {
		if e := byLevel[l]; e != nil {
			ct.Levels = append(ct.Levels, *e)
		}
	}
	return ct
}

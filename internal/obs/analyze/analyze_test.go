package analyze

import (
	"bytes"
	"strings"
	"testing"

	"scidp/internal/obs"
)

type clock struct{ t float64 }

func (c *clock) Now() float64 { return c.t }

// builder wires a registry + clock for hand-built span trees.
type builder struct {
	r   *obs.Registry
	clk *clock
}

func newBuilder() *builder {
	b := &builder{r: obs.New(), clk: &clock{}}
	b.r.SetClock(b.clk)
	b.r.SetProcess("test")
	return b
}

func (b *builder) at(t float64) *builder { b.clk.t = t; return b }

func (b *builder) span(name, cat string, parent *obs.Span, start, end float64, args ...any) *obs.Span {
	b.clk.t = start
	s := b.r.StartSpan(name, cat, parent)
	for i := 0; i+1 < len(args); i += 2 {
		s.Arg(args[i].(string), args[i+1])
	}
	b.clk.t = end
	s.End()
	return s
}

func TestAnalyzeNilAndEmpty(t *testing.T) {
	if rep := Analyze(nil); len(rep.Jobs) != 0 || len(rep.Resources) != 0 {
		t.Fatalf("nil registry: %+v", rep)
	}
	rep := Analyze(obs.New())
	if len(rep.Jobs) != 0 {
		t.Fatalf("empty registry: %+v", rep)
	}
	var buf bytes.Buffer
	if err := rep.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no jobs recorded") {
		t.Fatalf("empty text report: %q", buf.String())
	}
}

func TestAnalyzeEmptyJob(t *testing.T) {
	b := newBuilder()
	b.span("job:empty", "mapreduce", nil, 0, 5, "job", "empty")
	rep := Analyze(b.r)
	if len(rep.Jobs) != 1 {
		t.Fatalf("jobs = %d", len(rep.Jobs))
	}
	j := rep.Jobs[0]
	if j.Name != "empty" || j.Seconds != 5 || len(j.Phases) != 0 {
		t.Fatalf("job = %+v", j)
	}
	// The whole job is its own critical path, bucketed "other".
	if len(j.CriticalPath.Segments) != 1 || j.CriticalPath.Buckets.Other != 5 {
		t.Fatalf("critical path = %+v", j.CriticalPath)
	}
}

// TestAnalyzeSingleTask covers one job/phase/task chain with a reader
// and a flow:
//
//	job:j     0........10
//	phase:map 0........10
//	task:m-0    1......9    startup 0.5
//	  core      2...5       (reader)
//	    pfs     2..4
//	      flow  2.5-3.5
func TestAnalyzeSingleTask(t *testing.T) {
	b := newBuilder()
	b.at(0)
	job := b.r.StartSpan("job:j", "mapreduce", nil)
	phase := b.r.StartSpan("phase:map", "mapreduce", job)
	b.at(1)
	task := b.r.StartSpan("task:m-0", "mapreduce", phase)
	task.Arg("node", "node-0")
	task.Arg("attempt", 1)
	task.Arg("startup", 0.5)
	core := func() *obs.Span { b.clk.t = 2; return b.r.StartSpan("PFSReader.ReadFlat", "core", task) }()
	pfs := func() *obs.Span { b.clk.t = 2; return b.r.StartSpan("pfs.ReadAt", "pfs", core) }()
	b.span("flow", "sim", pfs, 2.5, 3.5, "res", "pfs/ost-0+pfs/fabric", "bytes", 1024)
	b.at(4)
	pfs.End()
	b.at(5)
	core.End()
	b.at(9)
	task.End()
	b.at(10)
	phase.End()
	job.End()

	rep := Analyze(b.r)
	if len(rep.Jobs) != 1 || len(rep.Jobs[0].Phases) != 1 {
		t.Fatalf("shape: %+v", rep)
	}
	ph := rep.Jobs[0].Phases[0]
	if ph.Tasks != 1 || ph.Attempts != 1 || ph.Failed != 0 {
		t.Fatalf("phase counts: %+v", ph)
	}
	// Wall 8s = wait 1 (phase start→launch) is sched-side, plus inside
	// the attempt: startup 0.5 sched, io 3 (core span 2..5), compute
	// 8−0.5−3 = 4.5.
	wantSched := 1 + 0.5
	if ph.Buckets.Sched != wantSched || ph.Buckets.IO != 3 || ph.Buckets.Compute != 4.5 {
		t.Fatalf("buckets: %+v", ph.Buckets)
	}
	if ph.TaskSeconds.Count != 1 || ph.TaskSeconds.P50 != 8 || ph.TaskSeconds.Max != 8 {
		t.Fatalf("percentiles: %+v", ph.TaskSeconds)
	}
	// Bottleneck: both resources carry the same 1s flow; tie breaks by
	// name ("pfs/fabric" < "pfs/ost-0").
	if ph.Bottleneck != "pfs/fabric" || ph.BottleneckBusy != 1 {
		t.Fatalf("bottleneck: %q %v", ph.Bottleneck, ph.BottleneckBusy)
	}

	// Critical path tiles [0,10] exactly, chronologically.
	cp := rep.Jobs[0].CriticalPath
	var sum float64
	last := 0.0
	for _, s := range cp.Segments {
		if s.Start != last {
			t.Fatalf("path gap at %v: %+v", last, cp.Segments)
		}
		last = s.End
		sum += s.Seconds
	}
	if last != 10 || sum != 10 {
		t.Fatalf("path covers [0,%v], sum %v, want [0,10]", last, sum)
	}
	// Expect: phase-self 0→1 (sched), task sched 1→1.5 (startup),
	// task compute 1.5→2, core 2→2 (none: pfs covers), pfs 2→2.5,
	// flow 2.5→3.5, pfs 3.5→4, core 4→5, task 5→9, phase/job tail 9→10.
	if cp.Buckets.IO != 3 {
		t.Fatalf("path io = %v, want 3 (core+pfs+flow chain)", cp.Buckets.IO)
	}
	if cp.Buckets.Sched != 1+0.5+1 { // phase lead-in + startup + phase tail
		t.Fatalf("path sched = %v", cp.Buckets.Sched)
	}
	// No jobs-resources counters were exported: fallback derives from
	// the one flow span.
	if len(rep.Resources) != 2 || rep.Resources[0].Bytes != 1024 || rep.Resources[0].BusySeconds != 1 {
		t.Fatalf("resources: %+v", rep.Resources)
	}
}

func TestAnalyzeFaultRetryChain(t *testing.T) {
	b := newBuilder()
	b.at(0)
	job := b.r.StartSpan("job:j", "mapreduce", nil)
	phase := b.r.StartSpan("phase:map", "mapreduce", job)
	// Attempt 1 fails after 3s; attempt 2 starts at 4 and succeeds at 7.
	b.span("task:m-0", "mapreduce", phase, 0, 3,
		"node", "node-0", "attempt", 1, "startup", 0.5, "failed", true)
	b.span("task:m-0", "mapreduce", phase, 4, 7,
		"node", "node-1", "attempt", 2, "startup", 0.5)
	b.at(7)
	phase.End()
	job.End()

	ph := Analyze(b.r).Jobs[0].Phases[0]
	if ph.Tasks != 1 || ph.Attempts != 2 || ph.Failed != 1 {
		t.Fatalf("counts: %+v", ph)
	}
	// Failed attempt: wall 3 + wait 0 → recovery. Retry: wait 1
	// (4 − prev end 3) + startup 0.5 → sched; compute 2.5.
	if ph.Buckets.Recovery != 3 {
		t.Fatalf("recovery = %v, want 3", ph.Buckets.Recovery)
	}
	if ph.Buckets.Sched != 1.5 || ph.Buckets.Compute != 2.5 {
		t.Fatalf("buckets: %+v", ph.Buckets)
	}
	// Only the successful attempt counts toward percentiles.
	if ph.TaskSeconds.Count != 1 || ph.TaskSeconds.Max != 3 {
		t.Fatalf("percentiles: %+v", ph.TaskSeconds)
	}
	// The failed attempt's residence on the critical path is recovery.
	cp := Analyze(b.r).Jobs[0].CriticalPath
	if cp.Buckets.Recovery == 0 {
		t.Fatalf("critical path shows no recovery: %+v", cp)
	}
}

func TestAnalyzeSpeculationWinnerLoser(t *testing.T) {
	b := newBuilder()
	b.at(0)
	job := b.r.StartSpan("job:j", "mapreduce", nil)
	phase := b.r.StartSpan("phase:map", "mapreduce", job)
	// Original runs 0→10 but loses; backup launched at 5 wins at 8.
	b.span("task:m-0", "mapreduce", phase, 0, 10,
		"node", "node-0", "attempt", 1, "startup", 0.5, "discarded", true)
	b.span("task:m-0", "mapreduce", phase, 5, 8,
		"node", "node-1", "attempt", 2, "startup", 0.5, "speculative", true)
	b.at(10)
	phase.End()
	job.End()

	ph := Analyze(b.r).Jobs[0].Phases[0]
	if ph.Discarded != 1 || ph.Attempts != 2 || ph.Tasks != 1 {
		t.Fatalf("counts: %+v", ph)
	}
	// Loser: 10s wall → recovery. Winner (speculative): no wait charge,
	// startup 0.5 sched, compute 2.5.
	if ph.Buckets.Recovery != 10 || ph.Buckets.Sched != 0.5 || ph.Buckets.Compute != 2.5 {
		t.Fatalf("buckets: %+v", ph.Buckets)
	}
	if ph.TaskSeconds.Count != 1 || ph.TaskSeconds.Max != 3 {
		t.Fatalf("percentiles: %+v", ph.TaskSeconds)
	}
}

func TestAnalyzeStragglerDetection(t *testing.T) {
	b := newBuilder()
	b.at(0)
	job := b.r.StartSpan("job:j", "mapreduce", nil)
	phase := b.r.StartSpan("phase:map", "mapreduce", job)
	ends := []float64{1, 1.1, 1.2, 1.05, 1.15, 9}
	for i, e := range ends {
		b.span("task:m-"+string(rune('0'+i)), "mapreduce", phase, 0, e,
			"node", "node-0", "attempt", 1)
	}
	b.at(9)
	phase.End()
	job.End()

	ph := Analyze(b.r).Jobs[0].Phases[0]
	if len(ph.Stragglers) != 1 {
		t.Fatalf("stragglers: %+v", ph.Stragglers)
	}
	s := ph.Stragglers[0]
	if s.Task != "m-5" || s.Seconds != 9 {
		t.Fatalf("straggler: %+v", s)
	}
	if s.XMedian < 8 || s.XMedian > 9 {
		t.Fatalf("xmedian = %v", s.XMedian)
	}
	if ph.TaskSeconds.P50 != 1.1 || ph.TaskSeconds.P99 != 9 {
		t.Fatalf("percentiles: %+v", ph.TaskSeconds)
	}
}

func TestAnalyzeShuffleBucketsForReducers(t *testing.T) {
	b := newBuilder()
	b.at(0)
	job := b.r.StartSpan("job:j", "mapreduce", nil)
	phase := b.r.StartSpan("phase:reduce", "mapreduce", job)
	b.at(0)
	task := b.r.StartSpan("task:reduce-0", "mapreduce", phase)
	task.Arg("node", "node-0")
	task.Arg("attempt", 1)
	// Two overlapping shuffle fetches 1..3 and 2..4: union 3s, not 4.
	b.span("flow", "sim", task, 1, 3, "res", "net/nic-0", "bytes", 100)
	b.span("flow", "sim", task, 2, 4, "res", "net/nic-1", "bytes", 100)
	b.at(6)
	task.End()
	phase.End()
	job.End()

	ph := Analyze(b.r).Jobs[0].Phases[0]
	if ph.Buckets.Shuffle != 3 {
		t.Fatalf("shuffle = %v, want 3 (interval union)", ph.Buckets.Shuffle)
	}
	if ph.Buckets.Compute != 3 {
		t.Fatalf("compute = %v, want 3", ph.Buckets.Compute)
	}
	// On the critical path the reducer's flows classify as shuffle.
	cp := Analyze(b.r).Jobs[0].CriticalPath
	if cp.Buckets.Shuffle == 0 {
		t.Fatalf("path shuffle missing: %+v", cp.Buckets)
	}
}

func TestAnalyzeUsesSimCountersWhenPresent(t *testing.T) {
	b := newBuilder()
	b.span("job:j", "mapreduce", nil, 0, 1, "job", "j")
	b.r.Counter("sim/resource_busy_seconds", obs.L("res", "pfs/ost-0")).Add(7)
	b.r.Counter("sim/resource_bytes_total", obs.L("res", "pfs/ost-0")).Add(4096)
	b.r.Counter("sim/resource_flows_total", obs.L("res", "pfs/ost-0")).Add(3)
	b.r.Gauge("sim/resource_peak_flows", obs.L("res", "pfs/ost-0")).Set(2)
	g := b.r.Gauge("pfs/ost_queue_depth", obs.L("ost", "ost-0"))
	b.at(0.5)
	g.Set(5)
	b.at(0.6)
	g.Set(0)

	rep := Analyze(b.r)
	if len(rep.Resources) != 1 {
		t.Fatalf("resources: %+v", rep.Resources)
	}
	u := rep.Resources[0]
	if u.Name != "pfs/ost-0" || u.BusySeconds != 7 || u.Bytes != 4096 || u.Flows != 3 || u.PeakFlows != 2 {
		t.Fatalf("use: %+v", u)
	}
	if u.QueueDepthMax != 5 {
		t.Fatalf("queue depth = %v, want 5 (gauge timeline peak)", u.QueueDepthMax)
	}
}

// buildFullTree assembles a two-phase job with retry, speculation, and
// nested I/O — the determinism workload.
func buildFullTree() *obs.Registry {
	b := newBuilder()
	b.at(0)
	job := b.r.StartSpan("job:full", "mapreduce", nil)
	mp := b.r.StartSpan("phase:map", "mapreduce", job)
	for i := 0; i < 4; i++ {
		b.at(float64(i))
		task := b.r.StartSpan("task:m-"+string(rune('0'+i)), "mapreduce", mp)
		task.Arg("node", "node-0")
		task.Arg("attempt", 1)
		task.Arg("startup", 0.25)
		core := b.r.StartSpan("PFSReader.ReadFlat", "core", task)
		b.span("flow", "sim", core, float64(i)+0.5, float64(i)+1, "res", "pfs/ost-0", "bytes", 512)
		b.at(float64(i) + 1.5)
		core.End()
		b.at(float64(i) + 2)
		task.End()
	}
	b.at(6)
	mp.End()
	rp := b.r.StartSpan("phase:reduce", "mapreduce", job)
	b.at(6)
	task := b.r.StartSpan("task:reduce-0", "mapreduce", rp)
	task.Arg("node", "node-1")
	task.Arg("attempt", 1)
	task.Arg("startup", 0.25)
	b.span("flow", "sim", task, 6.5, 7.5, "res", "net/nic-1", "bytes", 2048)
	b.at(9)
	task.End()
	b.at(10)
	rp.End()
	job.End()
	return b.r
}

func TestAnalyzeDeterminism(t *testing.T) {
	r1, r2 := buildFullTree(), buildFullTree()
	j1, err := Analyze(r1).JSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, err := Analyze(r2).JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Fatalf("JSON reports differ:\n%s\n----\n%s", j1, j2)
	}
	var t1, t2 bytes.Buffer
	if err := Analyze(r1).WriteText(&t1); err != nil {
		t.Fatal(err)
	}
	if err := Analyze(r2).WriteText(&t2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(t1.Bytes(), t2.Bytes()) {
		t.Fatal("text reports differ between identical registries")
	}
}

func TestAnalyzeTextReportContents(t *testing.T) {
	var buf bytes.Buffer
	if err := Analyze(buildFullTree()).WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"job full",
		"phase map",
		"phase reduce",
		"task seconds: n=4",
		"critical path:",
		"dominant critical-path spans:",
		"resources by busy time:",
		"pfs/ost-0",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("text report missing %q:\n%s", want, out)
		}
	}
}

func TestCriticalPathTilesJob(t *testing.T) {
	rep := Analyze(buildFullTree())
	cp := rep.Jobs[0].CriticalPath
	last := rep.Jobs[0].Start
	for _, s := range cp.Segments {
		if s.Start != last {
			t.Fatalf("gap/overlap at %v in %+v", last, cp.Segments)
		}
		if s.Seconds != s.End-s.Start {
			t.Fatalf("segment seconds mismatch: %+v", s)
		}
		last = s.End
	}
	if last != rep.Jobs[0].End {
		t.Fatalf("path ends at %v, job ends at %v", last, rep.Jobs[0].End)
	}
	if got := cp.Buckets.Total(); got != rep.Jobs[0].Seconds {
		t.Fatalf("path buckets total %v != job seconds %v", got, rep.Jobs[0].Seconds)
	}
}

func TestUnionSeconds(t *testing.T) {
	cases := []struct {
		ivs  []interval
		want float64
	}{
		{nil, 0},
		{[]interval{{0, 1}}, 1},
		{[]interval{{0, 2}, {1, 3}}, 3},
		{[]interval{{0, 1}, {2, 3}}, 2},
		{[]interval{{0, 10}, {1, 2}, {3, 4}}, 10},
	}
	for _, c := range cases {
		if got := unionSeconds(c.ivs); got != c.want {
			t.Fatalf("union(%v) = %v, want %v", c.ivs, got, c.want)
		}
	}
}

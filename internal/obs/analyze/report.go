package analyze

import (
	"encoding/json"
	"fmt"
	"io"
)

// JSON renders the report as indented JSON. Output is byte-identical
// for identical reports: encoding/json renders struct fields in
// declaration order, every slice is deterministically sorted by the
// engine, and all values are finite (the engine never divides by an
// unguarded zero).
func (rep *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(rep, "", "  ")
}

// WriteText renders the human report.
func (rep *Report) WriteText(w io.Writer) error {
	tw := &errWriter{w: w}
	p := func(format string, args ...any) { tw.printf(format, args...) }

	if rep.SpansDropped > 0 {
		p("WARNING: %d spans dropped (buffer overflow) — analysis is partial\n\n", rep.SpansDropped)
	}
	if len(rep.Jobs) == 0 {
		p("no jobs recorded (nothing ran under a job span)\n")
	}
	for i := range rep.Jobs {
		rep.Jobs[i].writeText(p)
	}

	if len(rep.Resources) > 0 {
		p("resources by busy time:\n")
		p("  %-18s %10s %12s %8s %6s %7s\n", "resource", "busy(s)", "bytes", "flows", "peak", "queue")
		for i := range rep.Resources {
			u := &rep.Resources[i]
			p("  %-18s %10.3f %12.0f %8.0f %6.0f %7.0f\n",
				u.Name, u.BusySeconds, u.Bytes, u.Flows, u.PeakFlows, u.QueueDepthMax)
		}
	}

	if ct := rep.CacheTier; ct != nil {
		p("\ncache tier (reads by serving level):\n")
		p("  %-6s %10s %14s %8s\n", "level", "reads", "bytes", "ratio")
		for i := range ct.Levels {
			l := &ct.Levels[i]
			p("  %-6s %10.0f %14.0f %7.1f%%\n", l.Level, l.Reads, l.Bytes, l.HitRatio*100)
		}
		p("  admits %.0f, evictions %.0f, promotions %.0f, resident %.0f B in %.0f entries\n",
			ct.Admits, ct.Evictions, ct.Promotions, ct.ResidentBytes, ct.ResidentEntries)
	}
	return tw.err
}

func (jr *JobReport) writeText(p func(string, ...any)) {
	p("job %s (process %s): %.3fs  [%.3f → %.3f]\n", jr.Name, jr.Process, jr.Seconds, jr.Start, jr.End)

	p("  attribution (task-seconds):\n")
	writeBuckets(p, "    ", &jr.Buckets)

	for i := range jr.Phases {
		ph := &jr.Phases[i]
		p("  phase %s: %.3fs, %d tasks / %d attempts", ph.Name, ph.Seconds, ph.Tasks, ph.Attempts)
		if ph.Failed > 0 || ph.Discarded > 0 {
			p(" (%d failed, %d discarded)", ph.Failed, ph.Discarded)
		}
		p("\n")
		ts := &ph.TaskSeconds
		if ts.Count > 0 {
			p("    task seconds: n=%d mean=%.3f p50=%.3f p90=%.3f p99=%.3f max=%.3f\n",
				ts.Count, ts.Mean, ts.P50, ts.P90, ts.P99, ts.Max)
		}
		writeBuckets(p, "    ", &ph.Buckets)
		if ph.Bottleneck != "" {
			p("    bottleneck: %s (%.3fs busy in phase)\n", ph.Bottleneck, ph.BottleneckBusy)
		}
		for _, s := range ph.Stragglers {
			p("    straggler: %s on %s: %.3fs (%.1f× median)\n", s.Task, s.Node, s.Seconds, s.XMedian)
		}
	}

	cp := &jr.CriticalPath
	p("  critical path: %d segments, buckets:\n", len(cp.Segments))
	writeBuckets(p, "    ", &cp.Buckets)
	if len(cp.Dominant) > 0 {
		p("  dominant critical-path spans:\n")
		for _, d := range cp.Dominant {
			p("    %6.1f%% %10.3fs  %s\n", d.Share*100, d.Seconds, d.Span)
		}
	}
	p("\n")
}

func writeBuckets(p func(string, ...any), indent string, a *Attribution) {
	total := a.Total()
	row := func(name string, v float64) {
		if v == 0 {
			return
		}
		share := 0.0
		if total > 0 {
			share = v / total * 100
		}
		p("%s%-9s %10.3fs %6.1f%%\n", indent, name, v, share)
	}
	row(BucketSched, a.Sched)
	row(BucketIO, a.IO)
	row(BucketCompute, a.Compute)
	row(BucketShuffle, a.Shuffle)
	row(BucketRecovery, a.Recovery)
	row(BucketOther, a.Other)
}

// errWriter latches the first write error so render code stays linear.
type errWriter struct {
	w   io.Writer
	err error
}

func (ew *errWriter) printf(format string, args ...any) {
	if ew.err != nil {
		return
	}
	_, ew.err = fmt.Fprintf(ew.w, format, args...)
}

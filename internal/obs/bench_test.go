package obs

import "testing"

// The detached benchmarks quantify the "zero-cost when no registry is
// attached" contract: a producer holding nil handles pays a nil check
// and nothing else (0 allocs/op, sub-nanosecond). The attached variants
// give the comparison point. BENCH_obs.json records the end-to-end
// version of the same claim on BenchmarkTeraSortWall.

func BenchmarkCounterDetached(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkCounterAttached(b *testing.B) {
	c := New().Counter("bench/counter")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkGaugeDetached(b *testing.B) {
	var g *Gauge
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Set(float64(i))
	}
}

func BenchmarkGaugeAttached(b *testing.B) {
	r := New()
	r.SetClock(&fakeClock{})
	g := r.Gauge("bench/gauge")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Set(float64(i))
	}
}

func BenchmarkSpanDetached(b *testing.B) {
	var r *Registry
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := r.StartSpan("x", "y", nil)
		s.End()
	}
}

func BenchmarkSpanAttached(b *testing.B) {
	r := New()
	r.SetClock(&fakeClock{})
	r.SetMaxSpans(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := r.StartSpan("x", "y", nil)
		s.End()
	}
	if r.SpanCount() != b.N {
		b.Fatal("span count mismatch")
	}
}

package obs

import (
	"bufio"
	"cmp"
	"encoding/json"
	"io"
	"slices"
)

// Chrome trace-event exporter. The output is the Trace Event Format's
// JSON object form ({"traceEvents":[...]}), loadable in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing:
//
//   - each span becomes a complete ("ph":"X") event with ts/dur in
//     virtual-time microseconds;
//   - each (process, track) pair becomes a (pid, tid) row, named via
//     metadata ("ph":"M") events;
//   - gauge sample timelines become counter ("ph":"C") tracks under a
//     synthetic "metrics" process.
//
// Output is deterministic: pids/tids are assigned in sorted order, span
// events are sorted by (start, id), and encoding/json renders map keys
// sorted.

type chromeMeta struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

type chromeX struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeC struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

const metricsProcess = "metrics"

// WriteChromeTrace renders the registry's spans and gauge timelines as
// Chrome trace-event JSON. Collectors run first. Safe on a nil
// registry (writes an empty trace).
func (r *Registry) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := &chromeEncoder{w: bw}
	enc.begin()

	if r != nil {
		r.runCollectors()

		// Assign pids to sorted process names, tids to sorted tracks
		// within each process.
		procSet := map[string]map[string]bool{}
		track := func(process, track string) {
			if process == "" {
				process = "scidp"
			}
			if procSet[process] == nil {
				procSet[process] = map[string]bool{}
			}
			procSet[process][track] = true
		}
		for _, s := range r.spans {
			track(s.process, s.track)
		}
		hasGaugeSamples := false
		for _, s := range r.sortedSeries() {
			if s.kind == kindGauge && len(s.g.Samples()) > 0 {
				hasGaugeSamples = true
				track(metricsProcess, "main")
			}
		}

		procs := make([]string, 0, len(procSet))
		for p := range procSet {
			procs = append(procs, p)
		}
		slices.Sort(procs)
		pid := map[string]int{}
		tid := map[string]map[string]int{}
		for i, p := range procs {
			pid[p] = i + 1
			tracks := make([]string, 0, len(procSet[p]))
			for t := range procSet[p] {
				tracks = append(tracks, t)
			}
			slices.Sort(tracks)
			tid[p] = map[string]int{}
			for j, t := range tracks {
				tid[p][t] = j + 1
			}
			enc.event(chromeMeta{Name: "process_name", Ph: "M", Pid: pid[p], Args: map[string]any{"name": p}})
			for _, t := range tracks {
				enc.event(chromeMeta{Name: "thread_name", Ph: "M", Pid: pid[p], Tid: tid[p][t], Args: map[string]any{"name": t}})
			}
		}

		spans := make([]*Span, len(r.spans))
		copy(spans, r.spans)
		slices.SortFunc(spans, func(a, b *Span) int {
			if c := cmp.Compare(a.start, b.start); c != 0 {
				return c
			}
			return cmp.Compare(a.id, b.id)
		})
		// Spans still open at export time get a synthetic end at the
		// export clock — the region ran at least this long — flagged
		// "unfinished" rather than being rendered with zero duration.
		exportClock := r.now()
		for _, s := range spans {
			p := s.process
			if p == "" {
				p = "scidp"
			}
			end := s.end
			if s.open {
				end = max(s.start, exportClock)
			}
			args := map[string]any{"id": s.id}
			if s.parent != 0 {
				args["parent"] = s.parent
			}
			if s.open {
				args["unfinished"] = true
			}
			for _, a := range s.args {
				args[a.k] = a.v
			}
			enc.event(chromeX{
				Name: s.name, Cat: s.cat, Ph: "X",
				Ts: s.start * 1e6, Dur: (end - s.start) * 1e6,
				Pid: pid[p], Tid: tid[p][s.track], Args: args,
			})
		}

		if hasGaugeSamples {
			mp, mt := pid[metricsProcess], tid[metricsProcess]["main"]
			for _, s := range r.sortedSeries() {
				if s.kind != kindGauge {
					continue
				}
				key, _ := seriesKey(s.name, s.labels)
				for _, sm := range s.g.Samples() {
					enc.event(chromeC{
						Name: key, Ph: "C", Ts: sm.At * 1e6,
						Pid: mp, Tid: mt,
						Args: map[string]any{"value": sm.V},
					})
				}
			}
		}
	}

	enc.end()
	if enc.err != nil {
		return enc.err
	}
	return bw.Flush()
}

// chromeEncoder streams the traceEvents array so a large trace never
// needs a second in-memory copy.
type chromeEncoder struct {
	w     *bufio.Writer
	first bool
	err   error
}

func (e *chromeEncoder) begin() {
	e.first = true
	_, e.err = e.w.WriteString(`{"traceEvents":[`)
}

func (e *chromeEncoder) event(v any) {
	if e.err != nil {
		return
	}
	b, err := json.Marshal(v)
	if err != nil {
		e.err = err
		return
	}
	if !e.first {
		e.w.WriteByte(',')
	}
	e.first = false
	e.w.WriteByte('\n')
	_, e.err = e.w.Write(b)
}

func (e *chromeEncoder) end() {
	if e.err != nil {
		return
	}
	_, e.err = e.w.WriteString("\n]}\n")
}

// Package obs is the unified observability layer: a metrics registry
// (counters, gauges, histograms stamped with virtual time) plus a span
// tracer, both layered on the sim kernel's clock. Producers throughout
// the stack (pfs, hdfs, ioengine, mapreduce, sim) publish into one
// Registry; exporters render it as a Chrome trace-event JSON (chrome.go)
// or a Prometheus-style text dump (prom.go).
//
// # Attachment and zero cost
//
// Every handle type (*Registry, *Counter, *Gauge, *Histogram, *Span) is
// nil-safe: methods on a nil receiver are no-ops that return zero values.
// Producers cache handles once at attach time and call them
// unconditionally on hot paths, so a detached component pays only a
// nil-check (benchmarked in bench_test.go).
//
// # Concurrency and determinism
//
// A Registry is not internally synchronized. It follows the sim kernel's
// determinism contract: all mutation happens from kernel context (event
// callbacks and Proc bodies), which the kernel serializes — exactly one
// process or event callback runs at a time. Exports sort every family,
// series, and span before rendering and never consult wall-clock time,
// so two identical runs produce byte-identical output.
package obs

import (
	"fmt"
	"slices"
	"sort"
	"strings"
)

// Clock supplies virtual time for samples and spans. *sim.Kernel
// satisfies it; obs deliberately does not import sim so it can sit below
// the kernel in the dependency order.
type Clock interface {
	Now() float64
}

// Label is one metric dimension, e.g. {res, ost-3}.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one registered metric instance: a name plus a canonical
// (sorted) label set and the kind-specific state.
type series struct {
	kind   metricKind
	name   string // "component/name"
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry holds every metric series and span for one program run.
// The zero value is unusable; call New.
type Registry struct {
	clock      Clock
	process    string
	metrics    map[string]*series
	collectors []func()

	spans        []*Span
	spanSeq      uint64
	maxSpans     int
	droppedSpans uint64

	gaugeSampleCap int
}

// DefaultGaugeSampleCap bounds the timestamped sample ring kept per
// gauge (the current value is always retained regardless).
const DefaultGaugeSampleCap = 1024

// DefaultMaxSpans bounds the span buffer so a long sweep cannot grow a
// trace without limit; later spans are counted as dropped.
const DefaultMaxSpans = 1 << 19

// New returns an empty registry with default caps and no clock (samples
// and spans are stamped 0 until SetClock).
func New() *Registry {
	r := &Registry{
		metrics:        make(map[string]*series),
		maxSpans:       DefaultMaxSpans,
		gaugeSampleCap: DefaultGaugeSampleCap,
	}
	// The registry's own health is a metric like any other: span-buffer
	// overflow (droppedSpans is otherwise reachable only via Dropped())
	// and the live span count surface in every export instead of
	// failing silently.
	r.AddCollector(func() {
		r.Counter("obs/spans_dropped_total").Set(float64(r.droppedSpans))
		r.Gauge("obs/spans_live").Set(float64(len(r.spans)))
	})
	return r
}

// SetClock attaches the virtual-time source. Re-attach per simulation
// kernel when one registry spans several runs.
func (r *Registry) SetClock(c Clock) {
	if r == nil {
		return
	}
	r.clock = c
}

// SetProcess names the logical process (one Chrome-trace pid group) that
// subsequently started spans belong to, e.g. "scidp@96ts".
func (r *Registry) SetProcess(name string) {
	if r == nil {
		return
	}
	r.process = name
}

// SetMaxSpans adjusts the span-buffer bound (0 = unlimited).
func (r *Registry) SetMaxSpans(n int) {
	if r == nil {
		return
	}
	r.maxSpans = n
}

// AddCollector registers fn to run at the start of every export, in
// registration order. Collectors pull values from external sources
// (e.g. cache stats) into registry metrics; they must be deterministic
// and idempotent.
func (r *Registry) AddCollector(fn func()) {
	if r == nil {
		return
	}
	r.collectors = append(r.collectors, fn)
}

func (r *Registry) runCollectors() {
	for _, fn := range r.collectors {
		fn()
	}
}

func (r *Registry) now() float64 {
	if r == nil || r.clock == nil {
		return 0
	}
	return r.clock.Now()
}

// seriesKey canonicalizes name+labels; labels are sorted by key so the
// same logical series always resolves to the same handle.
func seriesKey(name string, labels []Label) (string, []Label) {
	if len(labels) == 0 {
		return name, nil
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	slices.SortFunc(ls, func(a, b Label) int { return strings.Compare(a.Key, b.Key) })
	var sb strings.Builder
	sb.WriteString(name)
	sb.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", l.Key, l.Value)
	}
	sb.WriteByte('}')
	return sb.String(), ls
}

func (r *Registry) lookup(kind metricKind, name string, labels []Label) *series {
	key, ls := seriesKey(name, labels)
	if s, ok := r.metrics[key]; ok {
		if s.kind != kind {
			panic(fmt.Sprintf("obs: %q registered as %s, requested as %s", key, s.kind, kind))
		}
		return s
	}
	s := &series{kind: kind, name: name, labels: ls}
	r.metrics[key] = s
	return s
}

// Counter returns (registering on first use) the counter series for
// name+labels. Nil registry returns a nil, no-op counter.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	s := r.lookup(kindCounter, name, labels)
	if s.c == nil {
		s.c = &Counter{}
	}
	return s.c
}

// Gauge returns (registering on first use) the gauge series for
// name+labels. Nil registry returns a nil, no-op gauge.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	s := r.lookup(kindGauge, name, labels)
	if s.g == nil {
		s.g = &Gauge{r: r, cap: r.gaugeSampleCap}
	}
	return s.g
}

// Histogram returns (registering on first use) the histogram series for
// name+labels with the given ascending upper-bound buckets (a final
// +Inf bucket is implicit). Buckets are fixed at first registration.
// Nil registry returns a nil, no-op histogram.
func (r *Registry) Histogram(name string, buckets []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	s := r.lookup(kindHistogram, name, labels)
	if s.h == nil {
		b := make([]float64, len(buckets))
		copy(b, buckets)
		s.h = &Histogram{bounds: b, counts: make([]uint64, len(b)+1)}
	}
	return s.h
}

// Counter is a monotonically-growing float64 total.
type Counter struct {
	v float64
}

// Add increases the counter by d. No-op on a nil counter.
func (c *Counter) Add(d float64) {
	if c == nil {
		return
	}
	c.v += d
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Set overwrites the value; intended for collectors that mirror an
// externally-accumulated total into the registry at export time.
func (c *Counter) Set(v float64) {
	if c == nil {
		return
	}
	c.v = v
}

// Value reports the current total (0 on nil).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Sample is one timestamped gauge observation.
type Sample struct {
	At float64 // virtual seconds
	V  float64
}

// Gauge is an instantaneous value; every mutation also records a
// virtual-time-stamped sample into a bounded ring so exporters can
// render the value's timeline (e.g. OST queue depth).
type Gauge struct {
	r       *Registry
	cur     float64
	ring    []Sample
	head, n int
	cap     int
}

// Set stores v as the current value and samples it. No-op on nil.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.cur = v
	g.sample(v)
}

// Add shifts the current value by d and samples the result.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	g.Set(g.cur + d)
}

func (g *Gauge) sample(v float64) {
	s := Sample{At: g.r.now(), V: v}
	if g.cap <= 0 {
		g.ring = append(g.ring, s)
		g.n = len(g.ring)
		return
	}
	if len(g.ring) < g.cap {
		g.ring = append(g.ring, s)
		g.n = len(g.ring)
		return
	}
	g.ring[g.head] = s
	g.head = (g.head + 1) % g.cap
}

// Value reports the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.cur
}

// Samples returns the retained timeline in occurrence order.
func (g *Gauge) Samples() []Sample {
	if g == nil || len(g.ring) == 0 {
		return nil
	}
	out := make([]Sample, 0, len(g.ring))
	if g.head == 0 {
		return append(out, g.ring[:g.n]...)
	}
	for i := 0; i < len(g.ring); i++ {
		out = append(out, g.ring[(g.head+i)%len(g.ring)])
	}
	return out
}

// NewHistogram returns a standalone histogram with the given ascending
// upper bounds (+Inf implicit) — not registered in any Registry, for
// callers that need the distribution math (e.g. the speculation monitor)
// without exporting a series.
func NewHistogram(buckets []float64) *Histogram {
	b := make([]float64, len(buckets))
	copy(b, buckets)
	return &Histogram{bounds: b, counts: make([]uint64, len(b)+1)}
}

// Histogram counts observations into fixed upper-bound buckets and
// tracks sum/count, Prometheus-style.
type Histogram struct {
	bounds []float64 // ascending upper bounds; +Inf implicit
	counts []uint64  // len(bounds)+1
	sum    float64
	count  uint64
}

// Observe records v. No-op on nil.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.sum += v
	h.count++
}

// Count reports total observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum reports the running sum (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Quantile estimates the q-quantile (0 < q <= 1) of the observed
// distribution from the bucket counts: it finds the bucket holding the
// q-th observation and returns that bucket's upper bound (the previous
// bound for the +Inf bucket, since it has no upper edge). A conservative
// over-estimate by design — the speculative-execution trigger wants "this
// task is slower than the qth-fastest bucket", not an interpolated
// midpoint. Returns 0 when empty or nil.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	rank := uint64(q * float64(h.count))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			// +Inf bucket: fall back to the largest finite bound.
			if len(h.bounds) > 0 {
				return h.bounds[len(h.bounds)-1]
			}
			return h.sum / float64(h.count)
		}
	}
	return 0
}

// ExpBuckets returns n upper bounds start, start*factor, ... — the usual
// shape for duration and size histograms.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// sortedSeries returns every registered series ordered by canonical key,
// the iteration order both exporters use.
func (r *Registry) sortedSeries() []*series {
	keys := make([]string, 0, len(r.metrics))
	for k := range r.metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*series, len(keys))
	for i, k := range keys {
		out[i] = r.metrics[k]
	}
	return out
}

package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

type fakeClock struct{ t float64 }

func (c *fakeClock) Now() float64 { return c.t }

func TestSeriesCanonicalization(t *testing.T) {
	r := New()
	a := r.Counter("pfs/ost_bytes_total", L("res", "ost-0"), L("kind", "read"))
	b := r.Counter("pfs/ost_bytes_total", L("kind", "read"), L("res", "ost-0"))
	if a != b {
		t.Fatal("label order should not create a distinct series")
	}
	a.Add(5)
	if got := b.Value(); got != 5 {
		t.Fatalf("shared series value = %v, want 5", got)
	}
	if c := r.Counter("pfs/ost_bytes_total", L("res", "ost-1"), L("kind", "read")); c == a {
		t.Fatal("distinct label values must be distinct series")
	}
}

func TestKindConflictPanics(t *testing.T) {
	r := New()
	r.Counter("x/y")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic registering x/y as gauge after counter")
		}
	}()
	r.Gauge("x/y")
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("a/b")
	g := r.Gauge("a/c")
	h := r.Histogram("a/d", []float64{1})
	s := r.StartSpan("x", "y", nil)
	c.Add(1)
	c.Inc()
	g.Set(2)
	g.Add(1)
	h.Observe(3)
	s.Arg("k", "v")
	s.SetTrack("t")
	s.End()
	if c != nil || g != nil || h != nil || s != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || s.ID() != 0 {
		t.Fatal("nil handles must read as zero")
	}
	r.SetClock(&fakeClock{})
	r.SetProcess("p")
	r.AddCollector(func() {})
	if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var top map[string]any
	if err := json.Unmarshal(buf.Bytes(), &top); err != nil {
		t.Fatalf("nil-registry trace is not valid JSON: %v", err)
	}
}

func TestGaugeTimelineAndRing(t *testing.T) {
	clk := &fakeClock{}
	r := New()
	r.SetClock(clk)
	r.gaugeSampleCap = 4
	g := r.Gauge("x/depth")
	for i := 0; i < 6; i++ {
		clk.t = float64(i)
		g.Set(float64(i * 10))
	}
	if g.Value() != 50 {
		t.Fatalf("current = %v, want 50", g.Value())
	}
	got := g.Samples()
	if len(got) != 4 {
		t.Fatalf("ring kept %d samples, want 4", len(got))
	}
	for i, s := range got {
		wantAt := float64(i + 2)
		if s.At != wantAt || s.V != wantAt*10 {
			t.Fatalf("sample %d = %+v, want {%v %v}", i, s, wantAt, wantAt*10)
		}
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("x/lat", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 556.5 {
		t.Fatalf("count=%d sum=%v", h.Count(), h.Sum())
	}
	want := []uint64{2, 1, 1, 1} // le=1 gets 0.5 and exactly-1.0
	for i, w := range want {
		if h.counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all %v)", i, h.counts[i], w, h.counts)
		}
	}
}

func TestSpanTreeAndMaxSpans(t *testing.T) {
	clk := &fakeClock{}
	r := New()
	r.SetClock(clk)
	r.SetProcess("run-a")
	r.SetMaxSpans(2)
	root := r.StartSpan("job", "mr", nil)
	root.SetTrack("driver")
	clk.t = 1
	child := r.StartSpan("task", "mr", root)
	if child.parent != root.ID() {
		t.Fatalf("child parent = %d, want %d", child.parent, root.ID())
	}
	if child.process != "run-a" || child.track != "driver" {
		t.Fatalf("child should inherit process/track, got %q/%q", child.process, child.track)
	}
	if s := r.StartSpan("overflow", "", root); s != nil {
		t.Fatal("span over MaxSpans must be dropped")
	}
	if r.Dropped() != 1 || r.SpanCount() != 2 {
		t.Fatalf("dropped=%d count=%d", r.Dropped(), r.SpanCount())
	}
	clk.t = 2
	child.End()
	clk.t = 3
	child.End() // second End keeps first timestamp
	if child.end != 2 || child.open {
		t.Fatalf("end=%v open=%v", child.end, child.open)
	}
}

// buildExportRegistry assembles a registry exercising every feature, for
// the exporter tests.
func buildExportRegistry() *Registry {
	clk := &fakeClock{}
	r := New()
	r.SetClock(clk)
	r.SetProcess("runA")
	r.Counter("pfs/ost_bytes_total", L("res", "ost-1")).Add(4096)
	r.Counter("pfs/ost_bytes_total", L("res", "ost-0")).Add(8192)
	h := r.Histogram("mr/task_seconds", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(99)
	g := r.Gauge("pfs/ost_queue_depth", L("res", "ost-0"))
	job := r.StartSpan("job", "mr", nil)
	job.SetTrack("driver")
	clk.t = 1
	g.Set(3)
	task := r.StartSpan("task", "mr", job)
	task.SetTrack("node-0/slot-0")
	task.Arg("split", "t0")
	clk.t = 2
	task.End()
	clk.t = 4
	g.Set(0)
	job.End()
	r.AddCollector(func() { r.Gauge("cache/hit_ratio").Set(0.75) })
	return r
}

func TestPrometheusExport(t *testing.T) {
	var buf bytes.Buffer
	if err := buildExportRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE pfs_ost_bytes_total counter",
		`pfs_ost_bytes_total{res="ost-0"} 8192`,
		`pfs_ost_bytes_total{res="ost-1"} 4096`,
		"# TYPE mr_task_seconds histogram",
		`mr_task_seconds_bucket{le="1"} 1`,
		`mr_task_seconds_bucket{le="+Inf"} 2`,
		"mr_task_seconds_sum 99.5",
		"mr_task_seconds_count 2",
		"cache_hit_ratio 0.75", // collector ran
		`pfs_ost_queue_depth{res="ost-0"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus dump missing %q:\n%s", want, out)
		}
	}
	if strings.Index(out, "cache_hit_ratio") > strings.Index(out, "mr_task_seconds") {
		t.Fatal("families must be sorted by name")
	}
}

func TestChromeTraceExport(t *testing.T) {
	var buf bytes.Buffer
	if err := buildExportRegistry().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var top struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &top); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var xNames, threadNames []string
	counterEvents := 0
	for _, ev := range top.TraceEvents {
		switch ev["ph"] {
		case "X":
			xNames = append(xNames, ev["name"].(string))
		case "C":
			counterEvents++
		case "M":
			if ev["name"] == "thread_name" {
				threadNames = append(threadNames, ev["args"].(map[string]any)["name"].(string))
			}
		}
	}
	for _, want := range []string{"job", "task"} {
		found := false
		for _, n := range xNames {
			found = found || n == want
		}
		if !found {
			t.Fatalf("trace missing X event %q (have %v)", want, xNames)
		}
	}
	for _, want := range []string{"driver", "node-0/slot-0"} {
		found := false
		for _, n := range threadNames {
			found = found || n == want
		}
		if !found {
			t.Fatalf("trace missing thread row %q (have %v)", want, threadNames)
		}
	}
	if counterEvents == 0 {
		t.Fatal("gauge samples should emit counter events")
	}
}

func TestExportsDeterministic(t *testing.T) {
	var t1, t2, p1, p2 bytes.Buffer
	r1, r2 := buildExportRegistry(), buildExportRegistry()
	if err := r1.WriteChromeTrace(&t1); err != nil {
		t.Fatal(err)
	}
	if err := r2.WriteChromeTrace(&t2); err != nil {
		t.Fatal(err)
	}
	if err := r1.WritePrometheus(&p1); err != nil {
		t.Fatal(err)
	}
	if err := r2.WritePrometheus(&p2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(t1.Bytes(), t2.Bytes()) {
		t.Fatal("chrome traces differ between identical runs")
	}
	if !bytes.Equal(p1.Bytes(), p2.Bytes()) {
		t.Fatal("prometheus dumps differ between identical runs")
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(0.001, 10, 4)
	want := []float64{0.001, 0.01, 0.1, 1}
	for i := range want {
		if diff := got[i] - want[i]; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("bucket %d = %v, want %v", i, got[i], want[i])
		}
	}
}

package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"slices"
	"strconv"
	"strings"
)

// Prometheus text-exposition exporter. Metric names are sanitized
// ("pfs/ost_bytes_total" -> "pfs_ost_bytes_total"); families are sorted
// by name, series within a family by label set; histograms emit
// cumulative _bucket{le=...}, _sum, and _count lines. Values render via
// strconv.FormatFloat(g, -1), so identical runs dump identical bytes.

// WritePrometheus renders every registered metric in the Prometheus
// text format. Collectors run first. Safe on a nil registry (writes
// nothing).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.runCollectors()

	type line struct {
		labels string // canonical rendered label set ("" for none)
		s      *series
	}
	families := map[string][]line{}
	kinds := map[string]metricKind{}
	for _, s := range r.sortedSeries() {
		fam := sanitizeMetricName(s.name)
		if prev, ok := kinds[fam]; ok && prev != s.kind {
			return fmt.Errorf("obs: family %q has conflicting kinds %s and %s", fam, prev, s.kind)
		}
		kinds[fam] = s.kind
		families[fam] = append(families[fam], line{labels: promLabels(s.labels), s: s})
	}
	names := make([]string, 0, len(families))
	for n := range families {
		names = append(names, n)
	}
	slices.Sort(names)

	bw := bufio.NewWriter(w)
	for _, fam := range names {
		lines := families[fam]
		slices.SortFunc(lines, func(a, b line) int { return strings.Compare(a.labels, b.labels) })
		fmt.Fprintf(bw, "# TYPE %s %s\n", fam, kinds[fam])
		for _, ln := range lines {
			switch ln.s.kind {
			case kindCounter:
				fmt.Fprintf(bw, "%s%s %s\n", fam, ln.labels, fmtFloat(ln.s.c.Value()))
			case kindGauge:
				fmt.Fprintf(bw, "%s%s %s\n", fam, ln.labels, fmtFloat(ln.s.g.Value()))
			case kindHistogram:
				h := ln.s.h
				cum := uint64(0)
				for i, b := range h.bounds {
					cum += h.counts[i]
					fmt.Fprintf(bw, "%s_bucket%s %d\n", fam, promLabelsWith(ln.s.labels, "le", fmtFloat(b)), cum)
				}
				fmt.Fprintf(bw, "%s_bucket%s %d\n", fam, promLabelsWith(ln.s.labels, "le", "+Inf"), h.count)
				fmt.Fprintf(bw, "%s_sum%s %s\n", fam, ln.labels, fmtFloat(h.sum))
				fmt.Fprintf(bw, "%s_count%s %d\n", fam, ln.labels, h.count)
			}
		}
	}
	return bw.Flush()
}

func fmtFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// sanitizeMetricName maps a registry name onto the Prometheus charset
// [a-zA-Z0-9_:], replacing everything else with '_'.
func sanitizeMetricName(name string) string {
	var sb strings.Builder
	sb.Grow(len(name))
	for i, c := range name {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if ok {
			sb.WriteRune(c)
		} else {
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

func sanitizeLabelName(name string) string {
	s := sanitizeMetricName(name)
	return strings.ReplaceAll(s, ":", "_")
}

func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

func promLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	return promLabelsWith(labels, "", "")
}

// promLabelsWith renders labels (already canonically sorted) plus an
// optional extra pair appended last (used for histogram "le").
func promLabelsWith(labels []Label, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `%s="%s"`, sanitizeLabelName(l.Key), escapeLabelValue(l.Value))
	}
	if extraKey != "" {
		if len(labels) > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `%s="%s"`, extraKey, extraVal)
	}
	sb.WriteByte('}')
	return sb.String()
}

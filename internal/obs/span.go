package obs

import (
	"slices"
	"strings"
)

// Span is one timed region on the virtual clock: a job, phase, task,
// reader call, or kernel flow. Spans form an explicit tree via parent
// IDs and are placed on a (process, track) grid that maps 1:1 onto
// Chrome-trace (pid, tid) rows.
//
// Like every obs handle, a nil *Span is a valid no-op receiver, so
// producers can thread spans unconditionally.
type Span struct {
	r      *Registry
	id     uint64
	parent uint64

	name    string
	cat     string
	process string
	track   string

	start float64
	end   float64
	open  bool

	args []spanArg
}

type spanArg struct {
	k string
	v any
}

// StartSpan opens a span at the current virtual time under parent (nil
// for a root). The span inherits the parent's process and track unless
// overridden with SetTrack; roots default to the registry's process and
// track "main". Returns nil on a nil registry or when the span buffer
// is full (the drop is counted and surfaced at export).
func (r *Registry) StartSpan(name, cat string, parent *Span) *Span {
	if r == nil {
		return nil
	}
	if r.maxSpans > 0 && len(r.spans) >= r.maxSpans {
		r.droppedSpans++
		return nil
	}
	r.spanSeq++
	s := &Span{
		r:       r,
		id:      r.spanSeq,
		name:    name,
		cat:     cat,
		process: r.process,
		track:   "main",
		start:   r.now(),
		open:    true,
	}
	if parent != nil {
		s.parent = parent.id
		s.process = parent.process
		s.track = parent.track
	}
	r.spans = append(r.spans, s)
	return s
}

// SetTrack moves the span onto the named track (one Chrome-trace thread
// row), e.g. a simulated node or worker slot.
func (s *Span) SetTrack(track string) {
	if s == nil {
		return
	}
	s.track = track
}

// Arg attaches a key/value annotation rendered into the Chrome trace's
// args object. Values must be JSON-encodable (strings and numbers).
func (s *Span) Arg(key string, v any) {
	if s == nil {
		return
	}
	s.args = append(s.args, spanArg{k: key, v: v})
}

// End closes the span at the current virtual time. Ending twice keeps
// the first end time.
func (s *Span) End() {
	if s == nil || !s.open {
		return
	}
	s.end = s.r.now()
	s.open = false
}

// ID reports the span's registry-unique id (0 on nil), usable for
// cross-referencing from other event streams.
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// Dropped reports how many spans were discarded because the buffer hit
// MaxSpans.
func (r *Registry) Dropped() uint64 {
	if r == nil {
		return 0
	}
	return r.droppedSpans
}

// SpanCount reports how many spans are buffered.
func (r *Registry) SpanCount() int {
	if r == nil {
		return 0
	}
	return len(r.spans)
}

// SpanStat aggregates the closed spans sharing a name.
type SpanStat struct {
	// Name is the span name.
	Name string
	// Count is how many closed spans carry it.
	Count int
	// Seconds is their summed virtual duration.
	Seconds float64
}

// SpanRollup sums the closed spans by name, sorted by name — the
// per-phase table a verbose CLI prints. Open spans are skipped.
func (r *Registry) SpanRollup() []SpanStat {
	if r == nil {
		return nil
	}
	byName := map[string]*SpanStat{}
	for _, s := range r.spans {
		if s.open {
			continue
		}
		st, ok := byName[s.name]
		if !ok {
			st = &SpanStat{Name: s.name}
			byName[s.name] = st
		}
		st.Count++
		st.Seconds += s.end - s.start
	}
	out := make([]SpanStat, 0, len(byName))
	for _, st := range byName {
		out = append(out, *st)
	}
	slices.SortFunc(out, func(a, b SpanStat) int { return strings.Compare(a.Name, b.Name) })
	return out
}

package obs

// Read-side views of a registry: immutable snapshots of the span buffer
// and the metric series, for post-run consumers (the analysis engine in
// obs/analyze, report generators, tests). Exporters keep their private
// fast paths; these views trade a copy for a stable, exported shape.

// SpanArg is one span annotation as recorded by Span.Arg.
type SpanArg struct {
	// Key is the annotation name.
	Key string
	// Value is the recorded value (a string or a number).
	Value any
}

// SpanInfo is one span's immutable view.
type SpanInfo struct {
	// ID is the registry-unique span id; Parent is the parent's id (0
	// for roots).
	ID, Parent uint64
	// Name and Cat are the span's name and category.
	Name, Cat string
	// Process and Track locate the span on the (pid, tid) grid.
	Process, Track string
	// Start and End are virtual times. For a span still open End is the
	// start time; check Open.
	Start, End float64
	// Open reports the span had not ended when the view was taken.
	Open bool
	// Args are the recorded annotations, in Arg call order.
	Args []SpanArg
}

// Seconds is the span's closed duration (0 while open).
func (s *SpanInfo) Seconds() float64 {
	if s.Open {
		return 0
	}
	return s.End - s.Start
}

// Arg returns the first annotation recorded under key, or (nil, false).
func (s *SpanInfo) Arg(key string) (any, bool) {
	for _, a := range s.Args {
		if a.Key == key {
			return a.Value, true
		}
	}
	return nil, false
}

// ArgFloat returns a numeric annotation as float64 (ok=false when absent
// or not a number).
func (s *SpanInfo) ArgFloat(key string) (float64, bool) {
	v, ok := s.Arg(key)
	if !ok {
		return 0, false
	}
	switch n := v.(type) {
	case float64:
		return n, true
	case float32:
		return float64(n), true
	case int:
		return float64(n), true
	case int64:
		return float64(n), true
	case uint64:
		return float64(n), true
	}
	return 0, false
}

// ArgBool reports whether key was recorded with a true value.
func (s *SpanInfo) ArgBool(key string) bool {
	v, ok := s.Arg(key)
	if !ok {
		return false
	}
	b, ok := v.(bool)
	return ok && b
}

// ArgString returns a string annotation ("" when absent or non-string).
func (s *SpanInfo) ArgString(key string) string {
	v, ok := s.Arg(key)
	if !ok {
		return ""
	}
	str, _ := v.(string)
	return str
}

// Spans snapshots the buffered spans in creation (id) order. The copy is
// independent of the registry; args share backing arrays but are never
// mutated after recording.
func (r *Registry) Spans() []SpanInfo {
	if r == nil {
		return nil
	}
	out := make([]SpanInfo, len(r.spans))
	for i, s := range r.spans {
		out[i] = SpanInfo{
			ID: s.id, Parent: s.parent,
			Name: s.name, Cat: s.cat,
			Process: s.process, Track: s.track,
			Start: s.start, End: s.end, Open: s.open,
		}
		if len(s.args) > 0 {
			args := make([]SpanArg, len(s.args))
			for j, a := range s.args {
				args[j] = SpanArg{Key: a.k, Value: a.v}
			}
			out[i].Args = args
		}
	}
	return out
}

// SeriesInfo is one metric series' immutable view.
type SeriesInfo struct {
	// Name is the registry name ("sim/resource_busy_seconds").
	Name string
	// Labels is the canonical (key-sorted) label set.
	Labels []Label
	// Kind is "counter", "gauge", or "histogram".
	Kind string
	// Value is the counter total or current gauge value (histograms: 0).
	Value float64
	// Samples is the gauge's retained timeline (nil for other kinds).
	Samples []Sample
	// Sum and Count are the histogram's running sum and observation
	// count (zero for other kinds).
	Sum float64
	// Count is the histogram observation count.
	Count uint64
}

// Label returns the value recorded under the given label key ("" when
// absent).
func (s *SeriesInfo) Label(key string) string {
	for _, l := range s.Labels {
		if l.Key == key {
			return l.Value
		}
	}
	return ""
}

// Snapshot runs the collectors and returns every registered series in
// canonical key order — the same order and values the exporters render.
func (r *Registry) Snapshot() []SeriesInfo {
	if r == nil {
		return nil
	}
	r.runCollectors()
	series := r.sortedSeries()
	out := make([]SeriesInfo, 0, len(series))
	for _, s := range series {
		si := SeriesInfo{Name: s.name, Labels: s.labels, Kind: s.kind.String()}
		switch s.kind {
		case kindCounter:
			si.Value = s.c.Value()
		case kindGauge:
			si.Value = s.g.Value()
			si.Samples = s.g.Samples()
		case kindHistogram:
			si.Sum = s.h.Sum()
			si.Count = s.h.Count()
		}
		out = append(out, si)
	}
	return out
}

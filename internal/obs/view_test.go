package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestChromeTraceUnfinishedSpan(t *testing.T) {
	clk := &fakeClock{}
	r := New()
	r.SetClock(clk)
	r.SetProcess("runA")
	done := r.StartSpan("done", "mr", nil)
	clk.t = 1
	done.End()
	clk.t = 2
	r.StartSpan("stuck", "mr", nil) // never ended
	clk.t = 5

	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var top struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &top); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	found := false
	for _, ev := range top.TraceEvents {
		if ev["ph"] != "X" || ev["name"] != "stuck" {
			continue
		}
		found = true
		// Synthetic end at the export clock: started at t=2, exported at
		// t=5 ⇒ 3 s = 3e6 µs.
		if dur := ev["dur"].(float64); dur != 3e6 {
			t.Fatalf("unfinished span dur = %v µs, want 3e6", dur)
		}
		args := ev["args"].(map[string]any)
		if v, ok := args["unfinished"].(bool); !ok || !v {
			t.Fatalf("unfinished span missing \"unfinished\":true arg: %v", args)
		}
	}
	if !found {
		t.Fatal("open span was skipped by the chrome exporter")
	}
	// Closed spans must not carry the flag.
	for _, ev := range top.TraceEvents {
		if ev["ph"] == "X" && ev["name"] == "done" {
			if _, ok := ev["args"].(map[string]any)["unfinished"]; ok {
				t.Fatal("closed span wrongly flagged unfinished")
			}
		}
	}
}

func TestChromeTraceUnfinishedSpanClockBehindStart(t *testing.T) {
	// A clock that rewound (or a nil clock reading 0) must not produce a
	// negative duration: the synthetic end clamps to the span start.
	clk := &fakeClock{t: 7}
	r := New()
	r.SetClock(clk)
	r.StartSpan("stuck", "mr", nil)
	clk.t = 0
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var top struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &top); err != nil {
		t.Fatal(err)
	}
	for _, ev := range top.TraceEvents {
		if ev["ph"] == "X" && ev["name"] == "stuck" {
			if dur := ev["dur"].(float64); dur != 0 {
				t.Fatalf("dur = %v, want 0 (clamped)", dur)
			}
			return
		}
	}
	t.Fatal("span missing from trace")
}

func TestHealthMetricsExported(t *testing.T) {
	r := New()
	r.SetMaxSpans(1)
	r.StartSpan("keep", "x", nil)
	r.StartSpan("lost-1", "x", nil)
	r.StartSpan("lost-2", "x", nil)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"obs_spans_dropped_total 2",
		"obs_spans_live 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus dump missing %q:\n%s", want, out)
		}
	}
}

func TestSpansView(t *testing.T) {
	clk := &fakeClock{}
	r := New()
	r.SetClock(clk)
	r.SetProcess("runA")
	job := r.StartSpan("job", "mr", nil)
	job.SetTrack("driver")
	clk.t = 1
	task := r.StartSpan("task", "mr", job)
	task.Arg("node", "node-0")
	task.Arg("attempt", 1)
	task.Arg("speculative", true)
	clk.t = 3
	task.End()
	open := r.StartSpan("open", "mr", job)
	_ = open

	spans := r.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	j, tk, op := spans[0], spans[1], spans[2]
	if j.Name != "job" || j.Parent != 0 || j.Track != "driver" || j.Process != "runA" {
		t.Fatalf("job view = %+v", j)
	}
	if tk.Parent != j.ID || tk.Start != 1 || tk.End != 3 || tk.Open {
		t.Fatalf("task view = %+v", tk)
	}
	if tk.Seconds() != 2 {
		t.Fatalf("task seconds = %v, want 2", tk.Seconds())
	}
	if got := tk.ArgString("node"); got != "node-0" {
		t.Fatalf("ArgString(node) = %q", got)
	}
	if v, ok := tk.ArgFloat("attempt"); !ok || v != 1 {
		t.Fatalf("ArgFloat(attempt) = %v, %v", v, ok)
	}
	if !tk.ArgBool("speculative") {
		t.Fatal("ArgBool(speculative) = false, want true")
	}
	if _, ok := tk.Arg("absent"); ok {
		t.Fatal("Arg(absent) should report ok=false")
	}
	if !op.Open || op.Seconds() != 0 {
		t.Fatalf("open view = %+v", op)
	}

	var nilReg *Registry
	if nilReg.Spans() != nil {
		t.Fatal("nil registry must return nil spans")
	}
}

func TestSnapshotView(t *testing.T) {
	clk := &fakeClock{}
	r := New()
	r.SetClock(clk)
	r.Counter("a/bytes_total", L("res", "ost-0")).Add(64)
	g := r.Gauge("a/depth", L("res", "ost-0"))
	clk.t = 1
	g.Set(4)
	h := r.Histogram("a/lat", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	r.AddCollector(func() { r.Gauge("a/collected").Set(9) })

	snap := r.Snapshot()
	byKey := map[string]SeriesInfo{}
	for _, s := range snap {
		byKey[s.Name+"|"+s.Label("res")] = s
	}
	c := byKey["a/bytes_total|ost-0"]
	if c.Kind != "counter" || c.Value != 64 {
		t.Fatalf("counter view = %+v", c)
	}
	gv := byKey["a/depth|ost-0"]
	if gv.Kind != "gauge" || gv.Value != 4 || len(gv.Samples) != 1 || gv.Samples[0].At != 1 {
		t.Fatalf("gauge view = %+v", gv)
	}
	hv := byKey["a/lat|"]
	if hv.Kind != "histogram" || hv.Count != 2 || hv.Sum != 5.5 {
		t.Fatalf("histogram view = %+v", hv)
	}
	if cv := byKey["a/collected|"]; cv.Value != 9 {
		t.Fatalf("collector did not run before snapshot: %+v", cv)
	}

	var nilReg *Registry
	if nilReg.Snapshot() != nil {
		t.Fatal("nil registry must return nil snapshot")
	}
}

func TestSpanRollupEdgeCases(t *testing.T) {
	clk := &fakeClock{}
	r := New()
	r.SetClock(clk)
	if got := r.SpanRollup(); len(got) != 0 {
		t.Fatalf("empty registry rollup = %v", got)
	}
	a := r.StartSpan("task", "mr", nil)
	clk.t = 2
	a.End()
	b := r.StartSpan("task", "mr", nil)
	clk.t = 5
	b.End()
	r.StartSpan("task", "mr", nil) // still open: excluded
	zz := r.StartSpan("aaa", "mr", nil)
	zz.End() // zero duration, still counted

	got := r.SpanRollup()
	if len(got) != 2 {
		t.Fatalf("rollup has %d names, want 2: %v", len(got), got)
	}
	if got[0].Name != "aaa" || got[1].Name != "task" {
		t.Fatalf("rollup must be name-sorted: %v", got)
	}
	task := got[1]
	if task.Count != 2 || task.Seconds != 5 {
		t.Fatalf("task stat = %+v, want count=2 seconds=5", task)
	}
}

// Package pfs implements a Lustre-like parallel file system: a metadata
// server (MDS), object storage servers (OSS) each fronting several object
// storage targets (OST), and files striped round-robin across a set of
// OSTs. File bytes are held for real (so formats, compression, and
// checksums are exact) while every access charges virtual time on the OST
// disks, OSS NICs, the storage fabric, and whatever client-side path the
// caller attaches (an HPC fabric, or the cross-cluster interlink the
// Hadoop nodes use).
//
// The decomposition of a byte range into per-OST segments is the property
// the SciDP paper leans on: many concurrent readers aggregate bandwidth
// from many OSTs, which is why direct PFS reads from every map task beat a
// staged copy.
package pfs

import (
	"fmt"
	"hash/crc32"
	"sort"
	"strings"

	"scidp/internal/fault"
	"scidp/internal/ioengine"
	"scidp/internal/obs"
	"scidp/internal/sim"
)

// Config sizes the storage cluster. DefaultConfig mirrors the paper's
// testbed: 24 OSTs behind two OSS nodes plus one MDS.
type Config struct {
	// OSSCount is the number of object storage servers.
	OSSCount int
	// OSTsPerOSS is how many targets each server fronts.
	OSTsPerOSS int
	// OSTBW is per-OST disk bandwidth, bytes/second.
	OSTBW float64
	// OSTLatency is the per-request seek charge on a target, seconds.
	OSTLatency float64
	// OSSNICBW is each server's network interface bandwidth, bytes/second.
	OSSNICBW float64
	// FabricBW is the storage network's aggregate capacity, bytes/second.
	FabricBW float64
	// MDSOpsPerSec bounds metadata operation throughput.
	MDSOpsPerSec float64
	// MDSLatency is the fixed round-trip of one metadata op, seconds.
	MDSLatency float64
	// DefaultStripeSize is the stripe width used when Create is not given
	// an explicit one. Lustre's default is 1 MiB.
	DefaultStripeSize int64
	// DefaultStripeCount is the number of OSTs a new file stripes over.
	DefaultStripeCount int
}

// DefaultConfig returns the paper-scale storage cluster: two OSS nodes,
// twelve 2 TB 7200 RPM SAS targets each (~120 MB/s), 10 GbE server NICs.
func DefaultConfig() Config {
	return Config{
		OSSCount:           2,
		OSTsPerOSS:         12,
		OSTBW:              120e6,
		OSTLatency:         0.004,
		OSSNICBW:           1.25e9,
		FabricBW:           2 * 1.25e9,
		MDSOpsPerSec:       20000,
		MDSLatency:         0.0005,
		DefaultStripeSize:  1 << 20,
		DefaultStripeCount: 8,
	}
}

// Scaled divides every bandwidth by factor, leaving latencies, op rates,
// and layout constants alone. Stripe size is divided too so that scaled
// files still spread across the same number of OSTs.
func (c Config) Scaled(factor float64) Config {
	if factor <= 0 {
		panic("pfs: scale factor must be positive")
	}
	c.OSTBW /= factor
	c.OSSNICBW /= factor
	c.FabricBW /= factor
	ss := float64(c.DefaultStripeSize) / factor
	if ss < 1 {
		ss = 1
	}
	c.DefaultStripeSize = int64(ss)
	return c
}

// ost is one object storage target. The obs handles are nil until
// FS.SetObs and therefore free to touch (nil-check fast path).
type ost struct {
	disk *sim.Resource
	oss  *ossNode

	// baseBW is the healthy disk capacity; slowdowns scale from it.
	baseBW float64
	// down marks an outage window: reads covering this target's stripes
	// are returned as missing ranges for the reader to read around.
	down bool

	// depth tracks in-flight striped transfers touching this target. It
	// is maintained unconditionally (unlike the obs gauge below, which
	// exists only when a registry is attached) so congestion-sensitive
	// policies see the same signal with and without observability.
	depth int

	readBytes  *obs.Counter
	writeBytes *obs.Counter
	requests   *obs.Counter
	queueDepth *obs.Gauge
}

// ossNode is one object storage server.
type ossNode struct {
	nic *sim.Resource
}

// File is a stored file with its stripe layout.
type File struct {
	// Path is the absolute file name ("/nuwrf/plot_18_00_00.nc").
	Path string
	// StripeSize is the width of each stripe in bytes.
	StripeSize int64
	// StripeCount is how many OSTs the file stripes across.
	StripeCount int
	startOST    int
	data        []byte
}

// Size returns the file's current length in bytes.
func (f *File) Size() int64 { return int64(len(f.data)) }

// FS is the parallel file system instance.
type FS struct {
	k      *sim.Kernel
	cfg    Config
	fabric *sim.Resource
	mds    *sim.Resource
	osts   []*ost
	files  map[string]*File
	next   int // round-robin OST allocation cursor

	// baseMDSLatency is the healthy metadata round trip; latency spikes
	// scale from it.
	baseMDSLatency float64
	// readFault, when installed, is consulted once per simulated read —
	// the chaos injector's flaky-read hook.
	readFault func(path string, off, n int64) fault.Outcome

	obs    *obs.Registry
	mdsOps *obs.Counter
}

// SetObs attaches an observability registry: per-OST byte/request
// counters and queue-depth gauges (labeled ost="ost-N", matching the
// sim resource "pfs/ost-N"), an MDS op counter, and read/write spans on
// every simulated access. Detached (the default), instrumentation costs
// one nil check per site.
func (fs *FS) SetObs(r *obs.Registry) {
	fs.obs = r
	fs.mdsOps = r.Counter("pfs/mds_ops_total")
	for i, o := range fs.osts {
		l := obs.L("ost", fmt.Sprintf("ost-%d", i))
		o.readBytes = r.Counter("pfs/ost_read_bytes_total", l)
		o.writeBytes = r.Counter("pfs/ost_write_bytes_total", l)
		o.requests = r.Counter("pfs/ost_requests_total", l)
		o.queueDepth = r.Gauge("pfs/ost_queue_depth", l)
	}
}

// New builds a PFS on the kernel from the given config.
func New(k *sim.Kernel, cfg Config) *FS {
	if cfg.OSSCount <= 0 || cfg.OSTsPerOSS <= 0 {
		panic("pfs: need at least one OSS and one OST")
	}
	fs := &FS{
		k:      k,
		cfg:    cfg,
		fabric: sim.NewResource("pfs/fabric", cfg.FabricBW),
		files:  make(map[string]*File),
	}
	fs.mds = sim.NewResource("pfs/mds", cfg.MDSOpsPerSec)
	fs.mds.Latency = cfg.MDSLatency
	fs.baseMDSLatency = cfg.MDSLatency
	for i := 0; i < cfg.OSSCount; i++ {
		oss := &ossNode{nic: sim.NewResource(fmt.Sprintf("pfs/oss-%d/nic", i), cfg.OSSNICBW)}
		for j := 0; j < cfg.OSTsPerOSS; j++ {
			d := sim.NewResource(fmt.Sprintf("pfs/ost-%d", i*cfg.OSTsPerOSS+j), cfg.OSTBW)
			d.Latency = cfg.OSTLatency
			fs.osts = append(fs.osts, &ost{disk: d, oss: oss, baseBW: cfg.OSTBW})
		}
	}
	return fs
}

// ---- Fault state (flipped by the chaos injector from kernel events).

// SetReadFault installs (or removes, with nil) the per-read fault hook.
func (fs *FS) SetReadFault(fn func(path string, off, n int64) fault.Outcome) {
	fs.readFault = fn
}

// SetOSTDown marks target i offline (reads covering its stripes come
// back as missing ranges) or back online.
func (fs *FS) SetOSTDown(i int, down bool) {
	o := fs.osts[i]
	o.down = down
	if fs.obs != nil {
		v := 0.0
		if down {
			v = 1
		}
		fs.obs.Gauge("pfs/ost_down", obs.L("ost", fmt.Sprintf("ost-%d", i))).Set(v)
	}
}

// OSTDown reports target i's outage state.
func (fs *FS) OSTDown(i int) bool { return fs.osts[i].down }

// SetOSTSlowdown divides target i's bandwidth by factor (a degraded
// disk); factor <= 1 restores full speed. In-flight flows re-share the
// new capacity immediately.
func (fs *FS) SetOSTSlowdown(i int, factor float64) {
	o := fs.osts[i]
	if factor <= 1 {
		o.disk.Capacity = o.baseBW
	} else {
		o.disk.Capacity = o.baseBW / factor
	}
	fs.k.RefreshRates()
}

// SetMDSLatencyFactor multiplies the metadata round-trip latency (an MDS
// op-latency spike); factor <= 1 restores the configured value.
func (fs *FS) SetMDSLatencyFactor(factor float64) {
	if factor <= 1 {
		fs.mds.Latency = fs.baseMDSLatency
		return
	}
	fs.mds.Latency = fs.baseMDSLatency * factor
}

// countReadFault lands one observed read fault in the metrics (cold
// path: only runs when a fault actually fires).
func (fs *FS) countReadFault(kind string) {
	if fs.obs != nil {
		fs.obs.Counter("pfs/read_faults_total", obs.L("kind", kind)).Inc()
	}
}

// OSTCount reports the number of object storage targets.
func (fs *FS) OSTCount() int { return len(fs.osts) }

// Config returns the configuration the FS was built with.
func (fs *FS) Config() Config { return fs.cfg }

// ---- Instant (non-simulated) access, for dataset setup and verification.

// Put stores data at path with the default stripe layout, charging no
// virtual time. It is the generator/test back door.
func (fs *FS) Put(path string, data []byte) *File {
	return fs.PutStriped(path, data, fs.cfg.DefaultStripeSize, fs.cfg.DefaultStripeCount)
}

// PutStriped stores data with an explicit stripe layout, charging no
// virtual time.
func (fs *FS) PutStriped(path string, data []byte, stripeSize int64, stripeCount int) *File {
	f := fs.allocate(path, stripeSize, stripeCount)
	f.data = append([]byte(nil), data...)
	return f
}

// Get returns the raw stored bytes, or nil if the file does not exist. No
// virtual time is charged.
func (fs *FS) Get(path string) []byte {
	if f, ok := fs.files[path]; ok {
		return f.data
	}
	return nil
}

// LookupFile returns the file record without charging time, or nil.
func (fs *FS) LookupFile(path string) *File { return fs.files[path] }

// Paths returns every stored path in sorted order.
func (fs *FS) Paths() []string {
	out := make([]string, 0, len(fs.files))
	for p := range fs.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

func (fs *FS) allocate(path string, stripeSize int64, stripeCount int) *File {
	if stripeSize <= 0 {
		stripeSize = fs.cfg.DefaultStripeSize
	}
	if stripeCount <= 0 || stripeCount > len(fs.osts) {
		stripeCount = fs.cfg.DefaultStripeCount
		if stripeCount > len(fs.osts) {
			stripeCount = len(fs.osts)
		}
	}
	f := &File{Path: path, StripeSize: stripeSize, StripeCount: stripeCount, startOST: fs.next}
	fs.next = (fs.next + stripeCount) % len(fs.osts)
	fs.files[path] = f
	return f
}

// ostFor maps a stripe index of f to its target.
func (fs *FS) ostFor(f *File, stripeIdx int64) *ost {
	return fs.osts[(int64(f.startOST)+stripeIdx%int64(f.StripeCount))%int64(len(fs.osts))]
}

// segments decomposes the byte range [off, off+n) of f into per-OST byte
// totals, in OST order for determinism. The returned targets parallel
// the parts, so callers can attribute each leg to its OST.
func (fs *FS) segments(f *File, off, n int64) ([]sim.Part, []*ost) {
	perOST := map[*ost]float64{}
	var order []*ost
	end := off + n
	for cur := off; cur < end; {
		idx := cur / f.StripeSize
		stripeEnd := (idx + 1) * f.StripeSize
		if stripeEnd > end {
			stripeEnd = end
		}
		o := fs.ostFor(f, idx)
		if _, seen := perOST[o]; !seen {
			order = append(order, o)
		}
		perOST[o] += float64(stripeEnd - cur)
		cur = stripeEnd
	}
	parts := make([]sim.Part, 0, len(order))
	for _, o := range order {
		parts = append(parts, sim.Part{Bytes: perOST[o], Res: []*sim.Resource{o.disk, o.oss.nic, fs.fabric}})
	}
	return parts, order
}

// segmentsLive is segments restricted to healthy targets: stripe pieces
// landing on offline OSTs are returned as merged missing byte ranges
// (file-absolute) instead of transfer legs, so the caller can zero-fill
// and read around them.
func (fs *FS) segmentsLive(f *File, off, n int64) ([]sim.Part, []*ost, []ioengine.Range) {
	perOST := map[*ost]float64{}
	var order []*ost
	var missing []ioengine.Range
	end := off + n
	for cur := off; cur < end; {
		idx := cur / f.StripeSize
		stripeEnd := (idx + 1) * f.StripeSize
		if stripeEnd > end {
			stripeEnd = end
		}
		o := fs.ostFor(f, idx)
		if o.down {
			missing = append(missing, ioengine.Range{Off: cur, Len: stripeEnd - cur})
		} else {
			if _, seen := perOST[o]; !seen {
				order = append(order, o)
			}
			perOST[o] += float64(stripeEnd - cur)
		}
		cur = stripeEnd
	}
	parts := make([]sim.Part, 0, len(order))
	for _, o := range order {
		parts = append(parts, sim.Part{Bytes: perOST[o], Res: []*sim.Resource{o.disk, o.oss.nic, fs.fabric}})
	}
	return parts, order, ioengine.Merge(missing)
}

// transferStriped runs the striped parallel transfer for parts while
// charging the per-OST observability counters around it.
func (fs *FS) transferStriped(p *sim.Proc, parts []sim.Part, osts []*ost, write bool) {
	for i, o := range osts {
		o.depth++
		if fs.obs != nil {
			o.requests.Inc()
			if write {
				o.writeBytes.Add(parts[i].Bytes)
			} else {
				o.readBytes.Add(parts[i].Bytes)
			}
			o.queueDepth.Add(1)
		}
	}
	p.TransferAll(parts...)
	for _, o := range osts {
		o.depth--
		if fs.obs != nil {
			o.queueDepth.Add(-1)
		}
	}
}

// MeanQueueDepth returns the current average in-flight striped-transfer
// count across all OSTs — the congestion signal cost-aware cache
// policies weigh. Identical with and without an attached registry, and
// deterministic because it is only sampled from kernel context.
func (fs *FS) MeanQueueDepth() float64 {
	if len(fs.osts) == 0 {
		return 0
	}
	total := 0
	for _, o := range fs.osts {
		total += o.depth
	}
	return float64(total) / float64(len(fs.osts))
}

// accessSpan opens a span for one simulated file access under the
// process's current span and installs it as current, so the stripe
// flows nest beneath it. It returns a restore func (never nil).
func (fs *FS) accessSpan(p *sim.Proc, name, path string, off, n int64) func() {
	if fs.obs == nil {
		return func() {}
	}
	sp := fs.obs.StartSpan(name, "pfs", p.Span())
	sp.Arg("path", path)
	sp.Arg("off", off)
	sp.Arg("bytes", n)
	prev := p.SetSpan(sp)
	return func() {
		p.SetSpan(prev)
		sp.End()
	}
}

// ---- Simulated client API.

// Client is a mount point: a PFS handle plus the client-side resource path
// (fabric hops and the client NIC) appended to every data transfer.
type Client struct {
	fs   *FS
	path []*sim.Resource
}

// NewClient returns a client whose transfers additionally traverse
// clientPath (outermost first, e.g. interlink then node NIC).
func (fs *FS) NewClient(clientPath ...*sim.Resource) *Client {
	return &Client{fs: fs, path: clientPath}
}

// FS returns the underlying file system.
func (c *Client) FS() *FS { return c.fs }

// metaOp charges one metadata round trip on the MDS.
func (c *Client) metaOp(p *sim.Proc) {
	c.fs.mdsOps.Inc()
	p.Transfer(1, c.fs.mds)
}

// Stat returns the file's size after one MDS round trip.
func (c *Client) Stat(p *sim.Proc, path string) (int64, error) {
	c.metaOp(p)
	f, ok := c.fs.files[path]
	if !ok {
		return 0, fmt.Errorf("pfs: stat %s: no such file", path)
	}
	return f.Size(), nil
}

// List returns the sorted paths directly under dir (one MDS op per
// directory page of 1000 entries).
func (c *Client) List(p *sim.Proc, dir string) ([]string, error) {
	c.metaOp(p)
	prefix := strings.TrimSuffix(dir, "/") + "/"
	var out []string
	for path := range c.fs.files {
		if strings.HasPrefix(path, prefix) && !strings.Contains(path[len(prefix):], "/") {
			out = append(out, path)
		}
	}
	sort.Strings(out)
	for i := 1000; i < len(out); i += 1000 {
		c.metaOp(p)
	}
	return out, nil
}

// Create allocates an empty file (one MDS op). Stripe parameters <= 0 take
// the FS defaults.
func (c *Client) Create(p *sim.Proc, path string, stripeSize int64, stripeCount int) (*File, error) {
	c.metaOp(p)
	if _, exists := c.fs.files[path]; exists {
		return nil, fmt.Errorf("pfs: create %s: file exists", path)
	}
	return c.fs.allocate(path, stripeSize, stripeCount), nil
}

// ReadAt reads n bytes at offset off, blocking in virtual time while the
// per-OST segments stream in parallel over the storage fabric and the
// client path. Short reads at EOF return what is available. A range
// touching an offline OST, an injected flaky read, or detected
// corruption returns a transient fault error (see ReadAtParts for the
// degraded-read variant that returns partial data instead).
func (c *Client) ReadAt(p *sim.Proc, path string, off, n int64) ([]byte, error) {
	out, missing, err := c.ReadAtParts(p, path, off, n)
	if err != nil {
		return nil, err
	}
	if len(missing) > 0 {
		return nil, fault.Transient("ost-down",
			"pfs: read %s [%d,+%d): %d byte range(s) on offline OSTs", path, off, n, len(missing))
	}
	return out, nil
}

// ReadAtParts is the degraded-read primitive behind ReadAt: it streams
// every live per-OST segment and returns the assembled buffer plus the
// file-absolute byte ranges that could not be served because their OSTs
// are offline (those bytes are zero-filled in the buffer). Injected
// flaky reads and detected corruption still fail the whole call with a
// transient error. The PFS Reader's recovery loop re-requests only the
// missing ranges after a backoff — the read-around path.
func (c *Client) ReadAtParts(p *sim.Proc, path string, off, n int64) ([]byte, []ioengine.Range, error) {
	f, ok := c.fs.files[path]
	if !ok {
		return nil, nil, fmt.Errorf("pfs: read %s: no such file", path)
	}
	if off < 0 {
		return nil, nil, fmt.Errorf("pfs: read %s: negative offset", path)
	}
	if off >= f.Size() {
		return nil, nil, nil
	}
	if off+n > f.Size() {
		n = f.Size() - off
	}
	corrupt := false
	if c.fs.readFault != nil {
		switch c.fs.readFault(path, off, n) {
		case fault.Fail:
			c.fs.countReadFault("flaky-read")
			return nil, nil, fault.Transient("flaky-read",
				"pfs: read %s [%d,+%d): transient I/O error", path, off, n)
		case fault.Corrupt:
			corrupt = true
		}
	}
	done := c.fs.accessSpan(p, "pfs.ReadAt", path, off, n)
	parts, osts, missing := c.fs.segmentsLive(f, off, n)
	for i := range parts {
		parts[i].Res = append(parts[i].Res, c.path...)
	}
	c.fs.transferStriped(p, parts, osts, false)
	done()
	out := make([]byte, n)
	copy(out, f.data[off:off+n])
	if corrupt && len(out) > 0 {
		// Model on-the-wire corruption: damage the returned copy, then
		// verify it against the stored bytes the way a block checksum
		// would. The damaged copy never escapes — callers see a
		// transient error and retry.
		out[len(out)/2] ^= 0xFF
		if crc32.ChecksumIEEE(out) != crc32.ChecksumIEEE(f.data[off:off+n]) {
			c.fs.countReadFault("corrupt")
			return nil, nil, fault.Transient("corrupt",
				"pfs: read %s [%d,+%d): checksum mismatch", path, off, n)
		}
	}
	for _, m := range missing {
		for i := m.Off; i < m.End(); i++ {
			out[i-off] = 0
		}
	}
	if len(missing) > 0 {
		c.fs.countReadFault("ost-down")
	}
	return out, missing, nil
}

// WriteAt writes data at offset off, extending the file with zeros if the
// offset is past EOF, charging the same striped parallel path as ReadAt.
func (c *Client) WriteAt(p *sim.Proc, path string, data []byte, off int64) error {
	f, ok := c.fs.files[path]
	if !ok {
		return fmt.Errorf("pfs: write %s: no such file", path)
	}
	if off < 0 {
		return fmt.Errorf("pfs: write %s: negative offset", path)
	}
	end := off + int64(len(data))
	if end > f.Size() {
		f.data = append(f.data, make([]byte, end-f.Size())...)
	}
	done := c.fs.accessSpan(p, "pfs.WriteAt", path, off, int64(len(data)))
	parts, osts := c.fs.segments(f, off, int64(len(data)))
	for i := range parts {
		parts[i].Res = append(parts[i].Res, c.path...)
	}
	c.fs.transferStriped(p, parts, osts, true)
	done()
	copy(f.data[off:end], data)
	return nil
}

// Append writes data at the current EOF.
func (c *Client) Append(p *sim.Proc, path string, data []byte) error {
	f, ok := c.fs.files[path]
	if !ok {
		return fmt.Errorf("pfs: append %s: no such file", path)
	}
	return c.WriteAt(p, path, data, f.Size())
}

// Remove deletes a file (one MDS op).
func (c *Client) Remove(p *sim.Proc, path string) error {
	c.metaOp(p)
	if _, ok := c.fs.files[path]; !ok {
		return fmt.Errorf("pfs: remove %s: no such file", path)
	}
	delete(c.fs.files, path)
	return nil
}

// fileEngine exposes one PFS file as an ioengine.ReaderAt: any process
// can read through it, each call charging the striped parallel path.
type fileEngine struct {
	c    *Client
	path string
	size int64
}

// ReadAt implements ioengine.ReaderAt.
func (e *fileEngine) ReadAt(p *sim.Proc, off, n int64) ([]byte, error) {
	return e.c.ReadAt(p, e.path, off, n)
}

// Size implements ioengine.ReaderAt.
func (e *fileEngine) Size() int64 { return e.size }

// Name namespaces the engine's cache keys with the file path.
func (e *fileEngine) Name() string { return e.path }

// Engine stats the file (one MDS op) and returns its engine-level reader.
func (c *Client) Engine(p *sim.Proc, path string) (ioengine.ReaderAt, error) {
	size, err := c.Stat(p, path)
	if err != nil {
		return nil, err
	}
	return &fileEngine{c: c, path: path, size: size}, nil
}

// Reader adapts a file to the random-access interface scientific-format
// readers consume, charging virtual time on every call. It is an
// engine-backed ioengine.Bound, so callers can layer a chunk cache or
// readahead via Client.Engine + ioengine.Bind instead when they need to.
type Reader = ioengine.Bound

// OpenReader stats the file (one MDS op) and returns a positioned reader
// with no cache or readahead configured.
func (c *Client) OpenReader(p *sim.Proc, path string) (*Reader, error) {
	eng, err := c.Engine(p, path)
	if err != nil {
		return nil, err
	}
	return ioengine.Bind(p, eng, ioengine.Options{}), nil
}

package pfs

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"scidp/internal/sim"
)

func testConfig() Config {
	c := DefaultConfig()
	c.OSTBW = 100
	c.OSSNICBW = 10000
	c.FabricBW = 10000
	c.DefaultStripeSize = 64
	c.DefaultStripeCount = 4
	c.OSTLatency = 0
	c.MDSLatency = 0
	return c
}

func TestPutGetRoundtrip(t *testing.T) {
	fs := New(sim.NewKernel(), testConfig())
	data := []byte("hello parallel world")
	fs.Put("/a/b.nc", data)
	if got := fs.Get("/a/b.nc"); !bytes.Equal(got, data) {
		t.Fatalf("Get = %q, want %q", got, data)
	}
	if fs.Get("/missing") != nil {
		t.Fatal("Get of missing file should be nil")
	}
}

func TestSimReadMatchesData(t *testing.T) {
	k := sim.NewKernel()
	fs := New(k, testConfig())
	data := make([]byte, 1000)
	for i := range data {
		data[i] = byte(i)
	}
	fs.Put("/f", data)
	c := fs.NewClient()
	var got []byte
	k.Go("r", func(p *sim.Proc) {
		var err error
		got, err = c.ReadAt(p, "/f", 100, 300)
		if err != nil {
			t.Errorf("ReadAt: %v", err)
		}
	})
	k.Run()
	if !bytes.Equal(got, data[100:400]) {
		t.Fatal("sim read returned wrong bytes")
	}
}

func TestReadPastEOFTruncates(t *testing.T) {
	k := sim.NewKernel()
	fs := New(k, testConfig())
	fs.Put("/f", []byte("0123456789"))
	c := fs.NewClient()
	k.Go("r", func(p *sim.Proc) {
		got, err := c.ReadAt(p, "/f", 8, 100)
		if err != nil || string(got) != "89" {
			t.Errorf("short read = %q, %v; want \"89\"", got, err)
		}
		got, err = c.ReadAt(p, "/f", 20, 10)
		if err != nil || got != nil {
			t.Errorf("read past EOF = %q, %v; want nil", got, err)
		}
		if _, err := c.ReadAt(p, "/f", -1, 10); err == nil {
			t.Error("negative offset should error")
		}
	})
	k.Run()
}

func TestStripingAggregatesBandwidth(t *testing.T) {
	// One file striped over 4 OSTs at 100 B/s each: a 400 B read should
	// take ~1 s (parallel), not 4 s (serial).
	k := sim.NewKernel()
	cfg := testConfig()
	cfg.DefaultStripeSize = 100
	cfg.DefaultStripeCount = 4
	fs := New(k, cfg)
	fs.Put("/wide", make([]byte, 400))
	c := fs.NewClient()
	var end float64
	k.Go("r", func(p *sim.Proc) {
		if _, err := c.ReadAt(p, "/wide", 0, 400); err != nil {
			t.Error(err)
		}
		end = p.Now()
	})
	k.Run()
	if end < 0.99 || end > 1.2 {
		t.Fatalf("striped read took %v s, want ~1.0", end)
	}
}

func TestStripeCountOneIsSerial(t *testing.T) {
	k := sim.NewKernel()
	cfg := testConfig()
	fs := New(k, cfg)
	fs.PutStriped("/narrow", make([]byte, 400), 100, 1)
	c := fs.NewClient()
	var end float64
	k.Go("r", func(p *sim.Proc) {
		c.ReadAt(p, "/narrow", 0, 400)
		end = p.Now()
	})
	k.Run()
	if end < 3.99 || end > 4.1 {
		t.Fatalf("single-stripe read took %v s, want ~4.0", end)
	}
}

func TestConcurrentReadersShareOST(t *testing.T) {
	k := sim.NewKernel()
	cfg := testConfig()
	fs := New(k, cfg)
	fs.PutStriped("/f", make([]byte, 100), 100, 1)
	c := fs.NewClient()
	var ends []float64
	for i := 0; i < 2; i++ {
		k.Go("r", func(p *sim.Proc) {
			c.ReadAt(p, "/f", 0, 100)
			ends = append(ends, p.Now())
		})
	}
	k.Run()
	for _, e := range ends {
		if e < 1.99 || e > 2.1 {
			t.Fatalf("two readers on one OST: end %v, want ~2.0", e)
		}
	}
}

func TestWriteAtExtendsAndOverwrites(t *testing.T) {
	k := sim.NewKernel()
	fs := New(k, testConfig())
	fs.Put("/f", []byte("abcdef"))
	c := fs.NewClient()
	k.Go("w", func(p *sim.Proc) {
		if err := c.WriteAt(p, "/f", []byte("XY"), 2); err != nil {
			t.Error(err)
		}
		if err := c.WriteAt(p, "/f", []byte("Z"), 9); err != nil {
			t.Error(err)
		}
	})
	k.Run()
	want := []byte("abXYef\x00\x00\x00Z")
	if got := fs.Get("/f"); !bytes.Equal(got, want) {
		t.Fatalf("file = %q, want %q", got, want)
	}
}

func TestCreateAppendList(t *testing.T) {
	k := sim.NewKernel()
	fs := New(k, testConfig())
	c := fs.NewClient()
	k.Go("w", func(p *sim.Proc) {
		if _, err := c.Create(p, "/dir/a", 0, 0); err != nil {
			t.Error(err)
		}
		if _, err := c.Create(p, "/dir/a", 0, 0); err == nil {
			t.Error("duplicate create should fail")
		}
		c.Create(p, "/dir/b", 0, 0)
		c.Create(p, "/dir/sub/c", 0, 0)
		c.Append(p, "/dir/a", []byte("xx"))
		c.Append(p, "/dir/a", []byte("yy"))
		ls, err := c.List(p, "/dir")
		if err != nil {
			t.Error(err)
		}
		if len(ls) != 2 || ls[0] != "/dir/a" || ls[1] != "/dir/b" {
			t.Errorf("List = %v, want [/dir/a /dir/b]", ls)
		}
		sz, _ := c.Stat(p, "/dir/a")
		if sz != 4 {
			t.Errorf("size = %d, want 4", sz)
		}
	})
	k.Run()
	if got := fs.Get("/dir/a"); string(got) != "xxyy" {
		t.Fatalf("appended = %q", got)
	}
}

func TestRemove(t *testing.T) {
	k := sim.NewKernel()
	fs := New(k, testConfig())
	fs.Put("/f", []byte("x"))
	c := fs.NewClient()
	k.Go("w", func(p *sim.Proc) {
		if err := c.Remove(p, "/f"); err != nil {
			t.Error(err)
		}
		if err := c.Remove(p, "/f"); err == nil {
			t.Error("double remove should fail")
		}
	})
	k.Run()
	if fs.Get("/f") != nil {
		t.Fatal("file still present after Remove")
	}
}

func TestReaderAdapter(t *testing.T) {
	k := sim.NewKernel()
	fs := New(k, testConfig())
	data := []byte("0123456789abcdef")
	fs.Put("/f", data)
	c := fs.NewClient()
	k.Go("r", func(p *sim.Proc) {
		r, err := c.OpenReader(p, "/f")
		if err != nil {
			t.Error(err)
			return
		}
		if r.Size() != 16 {
			t.Errorf("Size = %d", r.Size())
		}
		got, err := r.ReadAt(4, 4)
		if err != nil || string(got) != "4567" {
			t.Errorf("ReadAt = %q, %v", got, err)
		}
	})
	k.Run()
}

// TestSegmentsCoverRange: for random layouts and ranges, the per-OST
// segment sizes must sum exactly to the requested length.
func TestSegmentsCoverRange(t *testing.T) {
	fs := New(sim.NewKernel(), testConfig())
	f := func(stripeSize16 uint8, stripeCount8 uint8, off16, n16 uint16) bool {
		stripeSize := int64(stripeSize16)%512 + 1
		stripeCount := int(stripeCount8)%fs.OSTCount() + 1
		off := int64(off16)
		n := int64(n16)%4096 + 1
		file := &File{Path: "/q", StripeSize: stripeSize, StripeCount: stripeCount}
		file.data = make([]byte, off+n)
		var total float64
		parts, osts := fs.segments(file, off, n)
		if len(parts) != len(osts) {
			return false
		}
		for _, part := range parts {
			total += part.Bytes
		}
		return total == float64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestScaledPreservesRatios: scaling the config must keep the ratio of a
// striped read's time invariant (both data and bandwidth scale together).
func TestScaledPreservesRatios(t *testing.T) {
	elapsed := func(cfg Config, size int64) float64 {
		k := sim.NewKernel()
		fs := New(k, cfg)
		fs.Put("/f", make([]byte, size))
		c := fs.NewClient()
		var end float64
		k.Go("r", func(p *sim.Proc) {
			c.ReadAt(p, "/f", 0, size)
			end = p.Now()
		})
		k.Run()
		return end
	}
	cfg := testConfig()
	base := elapsed(cfg, 4096)
	scaled := elapsed(cfg.Scaled(8), 4096/8)
	if diff := base - scaled; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("scaled time %v != base time %v", scaled, base)
	}
}

func TestManyFilesRoundRobinDistinctOSTs(t *testing.T) {
	fs := New(sim.NewKernel(), testConfig())
	starts := map[int]bool{}
	for i := 0; i < fs.OSTCount(); i++ {
		f := fs.Put(fmt.Sprintf("/f%d", i), []byte("x"))
		starts[f.startOST] = true
	}
	if len(starts) < fs.OSTCount()/4 {
		t.Fatalf("allocation not spreading: %d distinct start OSTs", len(starts))
	}
}

func TestFuzzReadWriteConsistency(t *testing.T) {
	k := sim.NewKernel()
	fs := New(k, testConfig())
	rng := rand.New(rand.NewSource(7))
	ref := make([]byte, 2048)
	fs.Put("/f", make([]byte, 2048))
	c := fs.NewClient()
	k.Go("rw", func(p *sim.Proc) {
		for i := 0; i < 50; i++ {
			off := int64(rng.Intn(2000))
			n := int64(rng.Intn(48) + 1)
			if rng.Intn(2) == 0 {
				buf := make([]byte, n)
				rng.Read(buf)
				c.WriteAt(p, "/f", buf, off)
				copy(ref[off:], buf)
			} else {
				got, err := c.ReadAt(p, "/f", off, n)
				if err != nil {
					t.Errorf("read: %v", err)
				}
				if !bytes.Equal(got, ref[off:off+int64(len(got))]) {
					t.Errorf("iteration %d: read mismatch at %d+%d", i, off, n)
				}
			}
		}
	})
	k.Run()
}

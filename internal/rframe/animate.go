package rframe

import (
	"bytes"
	"fmt"
	"image"
	"image/color"
	"image/gif"
	"image/png"
)

// jetPalette is the 64-entry color table animations quantize to (the
// same blue-cyan-yellow-red ramp Image2D uses, plus black for highlight
// marks).
var jetPalette = func() color.Palette {
	p := make(color.Palette, 0, 65)
	for i := 0; i < 64; i++ {
		p = append(p, jet(float64(i)/63))
	}
	p = append(p, color.RGBA{A: 255}) // highlight black
	return p
}()

// AnimateGIF assembles PNG frames (as produced by Image2D) into one
// animated GIF — the paper's animation phase: "The visual outputs are
// usually animations which consist of a series of images generated along
// a specific dimension." delayCS is the per-frame delay in hundredths of
// a second.
func AnimateGIF(pngFrames [][]byte, delayCS int) ([]byte, error) {
	if len(pngFrames) == 0 {
		return nil, fmt.Errorf("rframe: AnimateGIF needs at least one frame")
	}
	if delayCS <= 0 {
		delayCS = 10
	}
	anim := &gif.GIF{}
	var bounds image.Rectangle
	for i, data := range pngFrames {
		img, err := png.Decode(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("rframe: frame %d: %w", i, err)
		}
		if i == 0 {
			bounds = img.Bounds()
		} else if img.Bounds() != bounds {
			return nil, fmt.Errorf("rframe: frame %d bounds %v != %v", i, img.Bounds(), bounds)
		}
		pal := image.NewPaletted(bounds, jetPalette)
		for y := bounds.Min.Y; y < bounds.Max.Y; y++ {
			for x := bounds.Min.X; x < bounds.Max.X; x++ {
				pal.Set(x, y, img.At(x, y))
			}
		}
		anim.Image = append(anim.Image, pal)
		anim.Delay = append(anim.Delay, delayCS)
	}
	var buf bytes.Buffer
	if err := gif.EncodeAll(&buf, anim); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Package rframe provides the R-style data layer SciDP exposes to users:
// column-oriented data frames with filtering/ordering/summary verbs, a
// read.table-style CSV parser (the slow text path the baseline solutions
// pay for), conversion from multi-dimensional scientific arrays into
// frames ("Multi-dimensional array will be prepared as R data frame",
// Section IV-E2), and 2-D image plotting (plot.go).
package rframe

import (
	"cmp"
	"fmt"
	"math"
	"slices"
	"strconv"
	"strings"
)

// Kind is a column's element type.
type Kind uint8

// Column kinds.
const (
	Float Kind = iota + 1
	Int
	String
)

// Column is one named, typed vector.
type Column struct {
	// Name is the column label.
	Name string
	// Kind selects which slice is populated.
	Kind Kind
	// F holds Float data.
	F []float64
	// I holds Int data.
	I []int64
	// S holds String data.
	S []string
}

// Len returns the column length.
func (c *Column) Len() int {
	switch c.Kind {
	case Float:
		return len(c.F)
	case Int:
		return len(c.I)
	case String:
		return len(c.S)
	}
	return 0
}

// Float64At returns row i as float64 (strings parse, NaN on failure).
func (c *Column) Float64At(i int) float64 {
	switch c.Kind {
	case Float:
		return c.F[i]
	case Int:
		return float64(c.I[i])
	case String:
		v, err := strconv.ParseFloat(c.S[i], 64)
		if err != nil {
			return math.NaN()
		}
		return v
	}
	return math.NaN()
}

// StringAt renders row i as a string.
func (c *Column) StringAt(i int) string {
	switch c.Kind {
	case Float:
		return strconv.FormatFloat(c.F[i], 'g', -1, 64)
	case Int:
		return strconv.FormatInt(c.I[i], 10)
	case String:
		return c.S[i]
	}
	return ""
}

// Frame is a column-oriented table.
type Frame struct {
	cols  []*Column
	index map[string]int
}

// New returns an empty frame.
func New() *Frame { return &Frame{index: map[string]int{}} }

// NumRows returns the row count (0 for an empty frame).
func (f *Frame) NumRows() int {
	if len(f.cols) == 0 {
		return 0
	}
	return f.cols[0].Len()
}

// NumCols returns the column count.
func (f *Frame) NumCols() int { return len(f.cols) }

// Names returns the column names in order.
func (f *Frame) Names() []string {
	out := make([]string, len(f.cols))
	for i, c := range f.cols {
		out[i] = c.Name
	}
	return out
}

// Col returns the named column, or nil.
func (f *Frame) Col(name string) *Column {
	if i, ok := f.index[name]; ok {
		return f.cols[i]
	}
	return nil
}

// Columns returns the columns in order.
func (f *Frame) Columns() []*Column { return f.cols }

func (f *Frame) add(c *Column) error {
	if _, dup := f.index[c.Name]; dup {
		return fmt.Errorf("rframe: duplicate column %q", c.Name)
	}
	if len(f.cols) > 0 && c.Len() != f.NumRows() {
		return fmt.Errorf("rframe: column %q has %d rows, frame has %d", c.Name, c.Len(), f.NumRows())
	}
	f.index[c.Name] = len(f.cols)
	f.cols = append(f.cols, c)
	return nil
}

// AddFloat appends a float column.
func (f *Frame) AddFloat(name string, vals []float64) error {
	return f.add(&Column{Name: name, Kind: Float, F: vals})
}

// AddInt appends an integer column.
func (f *Frame) AddInt(name string, vals []int64) error {
	return f.add(&Column{Name: name, Kind: Int, I: vals})
}

// AddString appends a string column.
func (f *Frame) AddString(name string, vals []string) error {
	return f.add(&Column{Name: name, Kind: String, S: vals})
}

// MustAddFloat is AddFloat that panics on error (builder convenience).
func (f *Frame) MustAddFloat(name string, vals []float64) *Frame {
	if err := f.AddFloat(name, vals); err != nil {
		panic(err)
	}
	return f
}

// MustAddInt is AddInt that panics on error.
func (f *Frame) MustAddInt(name string, vals []int64) *Frame {
	if err := f.AddInt(name, vals); err != nil {
		panic(err)
	}
	return f
}

// MustAddString is AddString that panics on error.
func (f *Frame) MustAddString(name string, vals []string) *Frame {
	if err := f.AddString(name, vals); err != nil {
		panic(err)
	}
	return f
}

// Select returns a frame with only the named columns (shared storage).
func (f *Frame) Select(names ...string) (*Frame, error) {
	out := New()
	for _, n := range names {
		c := f.Col(n)
		if c == nil {
			return nil, fmt.Errorf("rframe: no column %q", n)
		}
		if err := out.add(c); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// gather builds a new frame keeping rows[i] order from f.
func (f *Frame) gather(rows []int) *Frame {
	out := New()
	for _, c := range f.cols {
		nc := &Column{Name: c.Name, Kind: c.Kind}
		switch c.Kind {
		case Float:
			nc.F = make([]float64, len(rows))
			for i, r := range rows {
				nc.F[i] = c.F[r]
			}
		case Int:
			nc.I = make([]int64, len(rows))
			for i, r := range rows {
				nc.I[i] = c.I[r]
			}
		case String:
			nc.S = make([]string, len(rows))
			for i, r := range rows {
				nc.S[i] = c.S[r]
			}
		}
		out.add(nc)
	}
	return out
}

// Filter keeps rows where keep(i) is true.
func (f *Frame) Filter(keep func(row int) bool) *Frame {
	var rows []int
	for i := 0; i < f.NumRows(); i++ {
		if keep(i) {
			rows = append(rows, i)
		}
	}
	return f.gather(rows)
}

// OrderBy returns a copy sorted by the named column (stable).
func (f *Frame) OrderBy(name string, desc bool) (*Frame, error) {
	c := f.Col(name)
	if c == nil {
		return nil, fmt.Errorf("rframe: no column %q", name)
	}
	rows := make([]int, f.NumRows())
	for i := range rows {
		rows[i] = i
	}
	slices.SortStableFunc(rows, func(a, b int) int {
		var r int
		if c.Kind == String {
			r = cmp.Compare(c.S[a], c.S[b])
		} else {
			// NaNs stay unordered (compare equal), as the pre-slices
			// comparator behaved.
			va, vb := c.Float64At(a), c.Float64At(b)
			if va < vb {
				r = -1
			} else if vb < va {
				r = 1
			}
		}
		if desc {
			r = -r
		}
		return r
	})
	return f.gather(rows), nil
}

// Head returns the first n rows (all rows if n exceeds the count).
func (f *Frame) Head(n int) *Frame {
	if n > f.NumRows() {
		n = f.NumRows()
	}
	if n < 0 {
		n = 0
	}
	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}
	return f.gather(rows)
}

// TopK returns the k rows with the largest values in the named column —
// the paper's "top 10 data points are highlighted" analysis.
func (f *Frame) TopK(name string, k int) (*Frame, error) {
	sorted, err := f.OrderBy(name, true)
	if err != nil {
		return nil, err
	}
	return sorted.Head(k), nil
}

// TopFraction returns the top fraction (0 < frac <= 1) of rows by the
// named column — the paper's "top 1% data is selected" analysis.
func (f *Frame) TopFraction(name string, frac float64) (*Frame, error) {
	if frac <= 0 || frac > 1 {
		return nil, fmt.Errorf("rframe: fraction %v outside (0,1]", frac)
	}
	k := int(math.Ceil(frac * float64(f.NumRows())))
	return f.TopK(name, k)
}

// Append concatenates other's rows below f's (schemas must match).
func (f *Frame) Append(other *Frame) error {
	if len(f.cols) == 0 {
		for _, c := range other.cols {
			nc := *c
			if err := f.add(&nc); err != nil {
				return err
			}
		}
		return nil
	}
	if len(other.cols) != len(f.cols) {
		return fmt.Errorf("rframe: append schema mismatch: %d vs %d columns", len(other.cols), len(f.cols))
	}
	for i, c := range f.cols {
		oc := other.cols[i]
		if oc.Name != c.Name || oc.Kind != c.Kind {
			return fmt.Errorf("rframe: append column %d mismatch: %s/%v vs %s/%v", i, c.Name, c.Kind, oc.Name, oc.Kind)
		}
		c.F = append(c.F, oc.F...)
		c.I = append(c.I, oc.I...)
		c.S = append(c.S, oc.S...)
	}
	return nil
}

// Stats summarizes a numeric column.
type Stats struct {
	// N is the value count.
	N int
	// Min and Max bound the values.
	Min, Max float64
	// Mean is the arithmetic mean.
	Mean float64
	// SD is the population standard deviation.
	SD float64
}

// Summary computes Stats over the named numeric column.
func (f *Frame) Summary(name string) (Stats, error) {
	c := f.Col(name)
	if c == nil {
		return Stats{}, fmt.Errorf("rframe: no column %q", name)
	}
	n := c.Len()
	if n == 0 {
		return Stats{}, nil
	}
	st := Stats{N: n, Min: math.Inf(1), Max: math.Inf(-1)}
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := c.Float64At(i)
		if v < st.Min {
			st.Min = v
		}
		if v > st.Max {
			st.Max = v
		}
		sum += v
		sumsq += v * v
	}
	st.Mean = sum / float64(n)
	st.SD = math.Sqrt(sumsq/float64(n) - st.Mean*st.Mean)
	return st, nil
}

// FromArray3D converts one 3-D float32 slab into a tidy frame: one row per
// cell with integer coordinate columns (global coordinates = origin +
// local index) and a float value column. This is SciDP's array-to-R
// conversion; the coordinate columns are what the paper's SQL analyses
// group and join on.
func FromArray3D(dimNames [3]string, origin [3]int, shape [3]int, vals []float32, valueName string) (*Frame, error) {
	n := shape[0] * shape[1] * shape[2]
	if len(vals) != n {
		return nil, fmt.Errorf("rframe: %d values for shape %v", len(vals), shape)
	}
	d0 := make([]int64, n)
	d1 := make([]int64, n)
	d2 := make([]int64, n)
	v := make([]float64, n)
	i := 0
	for a := 0; a < shape[0]; a++ {
		for b := 0; b < shape[1]; b++ {
			for c := 0; c < shape[2]; c++ {
				d0[i] = int64(origin[0] + a)
				d1[i] = int64(origin[1] + b)
				d2[i] = int64(origin[2] + c)
				v[i] = float64(vals[i])
				i++
			}
		}
	}
	f := New()
	if err := f.AddInt(dimNames[0], d0); err != nil {
		return nil, err
	}
	if err := f.AddInt(dimNames[1], d1); err != nil {
		return nil, err
	}
	if err := f.AddInt(dimNames[2], d2); err != nil {
		return nil, err
	}
	if err := f.AddFloat(valueName, v); err != nil {
		return nil, err
	}
	return f, nil
}

// WriteCSV renders the frame as a header line plus comma-separated rows.
func (f *Frame) WriteCSV() []byte {
	var sb strings.Builder
	sb.WriteString(strings.Join(f.Names(), ","))
	sb.WriteByte('\n')
	for r := 0; r < f.NumRows(); r++ {
		for i, c := range f.cols {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(c.StringAt(r))
		}
		sb.WriteByte('\n')
	}
	return []byte(sb.String())
}

// ReadTable parses CSV text with a header row, inferring each column as
// Int, Float, or String — the read.table path whose sequential parse
// dominates the text-based baselines in the paper's Figure 7.
func ReadTable(text []byte) (*Frame, error) {
	lines := strings.Split(strings.TrimRight(string(text), "\n"), "\n")
	if len(lines) == 0 || lines[0] == "" {
		return nil, fmt.Errorf("rframe: empty table")
	}
	names := strings.Split(lines[0], ",")
	ncol := len(names)
	raw := make([][]string, ncol)
	for _, line := range lines[1:] {
		if line == "" {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) != ncol {
			return nil, fmt.Errorf("rframe: row has %d fields, header has %d", len(fields), ncol)
		}
		for i, v := range fields {
			raw[i] = append(raw[i], v)
		}
	}
	f := New()
	for i, name := range names {
		col := inferColumn(strings.TrimSpace(name), raw[i])
		if err := f.add(col); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// inferColumn type-infers a raw string vector: all-int, else all-float,
// else string.
func inferColumn(name string, vals []string) *Column {
	isInt, isFloat := true, true
	for _, v := range vals {
		if _, err := strconv.ParseInt(v, 10, 64); err != nil {
			isInt = false
		}
		if _, err := strconv.ParseFloat(v, 64); err != nil {
			isFloat = false
		}
		if !isInt && !isFloat {
			break
		}
	}
	switch {
	case isInt:
		out := make([]int64, len(vals))
		for i, v := range vals {
			out[i], _ = strconv.ParseInt(v, 10, 64)
		}
		return &Column{Name: name, Kind: Int, I: out}
	case isFloat:
		out := make([]float64, len(vals))
		for i, v := range vals {
			out[i], _ = strconv.ParseFloat(v, 64)
		}
		return &Column{Name: name, Kind: Float, F: out}
	default:
		return &Column{Name: name, Kind: String, S: vals}
	}
}

package rframe

import (
	"bytes"
	"image/gif"
	"image/png"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func sampleFrame(t *testing.T) *Frame {
	t.Helper()
	f := New()
	if err := f.AddInt("lat", []int64{0, 0, 1, 1}); err != nil {
		t.Fatal(err)
	}
	if err := f.AddInt("lon", []int64{0, 1, 0, 1}); err != nil {
		t.Fatal(err)
	}
	if err := f.AddFloat("value", []float64{1.5, -2, 8, 4}); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestFrameShape(t *testing.T) {
	f := sampleFrame(t)
	if f.NumRows() != 4 || f.NumCols() != 3 {
		t.Fatalf("shape = %dx%d", f.NumRows(), f.NumCols())
	}
	if got := f.Names(); got[2] != "value" {
		t.Fatalf("names = %v", got)
	}
	if f.Col("nope") != nil {
		t.Fatal("missing column should be nil")
	}
}

func TestAddValidation(t *testing.T) {
	f := sampleFrame(t)
	if err := f.AddFloat("value", []float64{1, 2, 3, 4}); err == nil {
		t.Error("duplicate column should fail")
	}
	if err := f.AddFloat("short", []float64{1}); err == nil {
		t.Error("length mismatch should fail")
	}
}

func TestFilterOrderHead(t *testing.T) {
	f := sampleFrame(t)
	pos := f.Filter(func(r int) bool { return f.Col("value").F[r] > 0 })
	if pos.NumRows() != 3 {
		t.Fatalf("filtered rows = %d", pos.NumRows())
	}
	desc, err := pos.OrderBy("value", true)
	if err != nil {
		t.Fatal(err)
	}
	if desc.Col("value").F[0] != 8 || desc.Col("value").F[2] != 1.5 {
		t.Fatalf("order = %v", desc.Col("value").F)
	}
	if desc.Head(2).NumRows() != 2 || desc.Head(99).NumRows() != 3 || desc.Head(-1).NumRows() != 0 {
		t.Fatal("Head bounds wrong")
	}
}

func TestTopKAndFraction(t *testing.T) {
	f := sampleFrame(t)
	top, err := f.TopK("value", 2)
	if err != nil {
		t.Fatal(err)
	}
	if top.NumRows() != 2 || top.Col("value").F[0] != 8 || top.Col("value").F[1] != 4 {
		t.Fatalf("top2 = %v", top.Col("value").F)
	}
	frac, err := f.TopFraction("value", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if frac.NumRows() != 2 {
		t.Fatalf("top 50%% rows = %d", frac.NumRows())
	}
	if _, err := f.TopFraction("value", 0); err == nil {
		t.Error("zero fraction should fail")
	}
	if _, err := f.TopFraction("value", 1.5); err == nil {
		t.Error("fraction > 1 should fail")
	}
}

func TestSummary(t *testing.T) {
	f := sampleFrame(t)
	st, err := f.Summary("value")
	if err != nil {
		t.Fatal(err)
	}
	if st.N != 4 || st.Min != -2 || st.Max != 8 {
		t.Fatalf("stats = %+v", st)
	}
	if math.Abs(st.Mean-2.875) > 1e-12 {
		t.Fatalf("mean = %v", st.Mean)
	}
	if _, err := f.Summary("nope"); err == nil {
		t.Error("missing column summary should fail")
	}
}

func TestSelectSharesData(t *testing.T) {
	f := sampleFrame(t)
	sel, err := f.Select("value", "lat")
	if err != nil {
		t.Fatal(err)
	}
	if sel.NumCols() != 2 || sel.Names()[0] != "value" {
		t.Fatalf("select = %v", sel.Names())
	}
	if _, err := f.Select("ghost"); err == nil {
		t.Error("selecting missing column should fail")
	}
}

func TestAppend(t *testing.T) {
	a, b := sampleFrame(t), sampleFrame(t)
	if err := a.Append(b); err != nil {
		t.Fatal(err)
	}
	if a.NumRows() != 8 {
		t.Fatalf("rows after append = %d", a.NumRows())
	}
	// Appending onto empty adopts the schema.
	e := New()
	if err := e.Append(sampleFrame(t)); err != nil {
		t.Fatal(err)
	}
	if e.NumRows() != 4 {
		t.Fatalf("empty append rows = %d", e.NumRows())
	}
	// Mismatched schema fails.
	bad := New().MustAddFloat("x", []float64{1})
	if err := a.Append(bad); err == nil {
		t.Error("schema mismatch append should fail")
	}
}

func TestFromArray3D(t *testing.T) {
	vals := []float32{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	f, err := FromArray3D([3]string{"level", "lat", "lon"}, [3]int{5, 10, 20}, [3]int{2, 2, 3}, vals, "QR")
	if err != nil {
		t.Fatal(err)
	}
	if f.NumRows() != 12 {
		t.Fatalf("rows = %d", f.NumRows())
	}
	// Row 7 = level 1, lat 0, lon 1 locally -> global (6, 10, 21).
	if f.Col("level").I[7] != 6 || f.Col("lat").I[7] != 10 || f.Col("lon").I[7] != 21 {
		t.Fatalf("coords row 7 = %d,%d,%d", f.Col("level").I[7], f.Col("lat").I[7], f.Col("lon").I[7])
	}
	if f.Col("QR").F[7] != 8 {
		t.Fatalf("value row 7 = %v", f.Col("QR").F[7])
	}
	if _, err := FromArray3D([3]string{"a", "b", "c"}, [3]int{0, 0, 0}, [3]int{2, 2, 2}, vals, "v"); err == nil {
		t.Error("length mismatch should fail")
	}
}

func TestCSVRoundtrip(t *testing.T) {
	f := sampleFrame(t)
	text := f.WriteCSV()
	back, err := ReadTable(text)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != 4 || back.NumCols() != 3 {
		t.Fatalf("roundtrip shape = %dx%d", back.NumRows(), back.NumCols())
	}
	if back.Col("lat").Kind != Int {
		t.Fatal("lat should infer as Int")
	}
	if back.Col("value").Kind != Float {
		t.Fatal("value should infer as Float")
	}
	for i := 0; i < 4; i++ {
		if back.Col("value").F[i] != f.Col("value").F[i] {
			t.Fatalf("value[%d] = %v", i, back.Col("value").F[i])
		}
	}
}

func TestReadTableStringsAndErrors(t *testing.T) {
	f, err := ReadTable([]byte("name,score\nalice,3\nbob,4.5\n"))
	if err != nil {
		t.Fatal(err)
	}
	if f.Col("name").Kind != String || f.Col("score").Kind != Float {
		t.Fatalf("kinds = %v %v", f.Col("name").Kind, f.Col("score").Kind)
	}
	if _, err := ReadTable([]byte("")); err == nil {
		t.Error("empty text should fail")
	}
	if _, err := ReadTable([]byte("a,b\n1\n")); err == nil {
		t.Error("ragged row should fail")
	}
}

func TestColumnAccessors(t *testing.T) {
	c := &Column{Name: "s", Kind: String, S: []string{"2.5", "oops"}}
	if c.Float64At(0) != 2.5 {
		t.Fatalf("parse = %v", c.Float64At(0))
	}
	if !math.IsNaN(c.Float64At(1)) {
		t.Fatal("unparsable string should be NaN")
	}
	ci := &Column{Name: "i", Kind: Int, I: []int64{7}}
	if ci.StringAt(0) != "7" {
		t.Fatalf("StringAt = %q", ci.StringAt(0))
	}
}

func TestImage2DProducesValidPNG(t *testing.T) {
	z := make([]float32, 16*16)
	for i := range z {
		z[i] = float32(i)
	}
	data, err := Image2D(z, 16, 16, PlotOpts{Width: 64, Height: 48})
	if err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if img.Bounds().Dx() != 64 || img.Bounds().Dy() != 48 {
		t.Fatalf("decoded size = %v", img.Bounds())
	}
}

func TestImage2DDefaultsAndValidation(t *testing.T) {
	if _, err := Image2D([]float32{1, 2}, 2, 2, PlotOpts{}); err == nil {
		t.Error("size mismatch should fail")
	}
	if _, err := Image2D(nil, 0, 0, PlotOpts{}); err == nil {
		t.Error("empty grid should fail")
	}
	// Constant field must not divide by zero.
	z := make([]float32, 4)
	if _, err := Image2D(z, 2, 2, PlotOpts{Width: 8, Height: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestImage2DHighlightChangesPixels(t *testing.T) {
	z := make([]float32, 8*8)
	for i := range z {
		z[i] = float32(i % 5)
	}
	plain, err := Image2D(z, 8, 8, PlotOpts{Width: 32, Height: 32})
	if err != nil {
		t.Fatal(err)
	}
	marked, err := Image2D(z, 8, 8, PlotOpts{Width: 32, Height: 32, Highlight: []GridPoint{{Row: 3, Col: 4}}})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(plain, marked) {
		t.Fatal("highlight did not change the image")
	}
}

func TestJetRampEndpoints(t *testing.T) {
	lo, hi := jet(0), jet(1)
	if lo.B <= lo.R {
		t.Fatalf("low end should be blue-ish: %+v", lo)
	}
	if hi.R <= hi.B {
		t.Fatalf("high end should be red-ish: %+v", hi)
	}
}

// TestCSVRoundtripProperty: any frame of ints and floats survives
// WriteCSV/ReadTable with values intact.
func TestCSVRoundtripProperty(t *testing.T) {
	f := func(ints []int16, seed int64) bool {
		if len(ints) == 0 {
			return true
		}
		iv := make([]int64, len(ints))
		fv := make([]float64, len(ints))
		for i, v := range ints {
			iv[i] = int64(v)
			fv[i] = float64(v) * 0.25
		}
		fr := New().MustAddInt("i", iv).MustAddFloat("f", fv)
		back, err := ReadTable(fr.WriteCSV())
		if err != nil {
			return false
		}
		if back.NumRows() != len(ints) {
			return false
		}
		for i := range iv {
			if back.Col("i").Float64At(i) != float64(iv[i]) {
				return false
			}
			if back.Col("f").Float64At(i) != fv[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestOrderByIsPermutation: ordering preserves the multiset of values.
func TestOrderByIsPermutation(t *testing.T) {
	f := func(vals []float32) bool {
		fv := make([]float64, len(vals))
		for i, v := range vals {
			fv[i] = float64(v)
		}
		fr := New().MustAddFloat("v", fv)
		sorted, err := fr.OrderBy("v", false)
		if err != nil {
			return false
		}
		if sorted.NumRows() != len(fv) {
			return false
		}
		got := sorted.Col("v").F
		for i := 1; i < len(got); i++ {
			less := got[i-1] <= got[i]
			// NaNs sort unstably but must not be lost.
			if !less && !math.IsNaN(got[i-1]) && !math.IsNaN(got[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteCSVHeaderOnly(t *testing.T) {
	f := New().MustAddFloat("x", nil)
	if got := string(f.WriteCSV()); !strings.HasPrefix(got, "x\n") {
		t.Fatalf("csv = %q", got)
	}
}

func TestAnimateGIF(t *testing.T) {
	var frames [][]byte
	for f := 0; f < 3; f++ {
		z := make([]float32, 8*8)
		for i := range z {
			z[i] = float32((i + f*7) % 11)
		}
		png, err := Image2D(z, 8, 8, PlotOpts{Width: 24, Height: 24})
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, png)
	}
	data, err := AnimateGIF(frames, 15)
	if err != nil {
		t.Fatal(err)
	}
	anim, err := gif.DecodeAll(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(anim.Image) != 3 {
		t.Fatalf("frames = %d", len(anim.Image))
	}
	for _, d := range anim.Delay {
		if d != 15 {
			t.Fatalf("delay = %d", d)
		}
	}
	if anim.Image[0].Bounds().Dx() != 24 {
		t.Fatalf("bounds = %v", anim.Image[0].Bounds())
	}
}

func TestAnimateGIFErrors(t *testing.T) {
	if _, err := AnimateGIF(nil, 10); err == nil {
		t.Error("no frames should fail")
	}
	if _, err := AnimateGIF([][]byte{{1, 2, 3}}, 10); err == nil {
		t.Error("non-PNG frame should fail")
	}
	a, _ := Image2D(make([]float32, 4), 2, 2, PlotOpts{Width: 8, Height: 8})
	b, _ := Image2D(make([]float32, 4), 2, 2, PlotOpts{Width: 16, Height: 16})
	if _, err := AnimateGIF([][]byte{a, b}, 10); err == nil {
		t.Error("mismatched frame sizes should fail")
	}
	// Zero delay takes a sane default.
	if _, err := AnimateGIF([][]byte{a}, 0); err != nil {
		t.Errorf("single frame with default delay: %v", err)
	}
}

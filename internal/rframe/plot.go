package rframe

import (
	"bytes"
	"fmt"
	"image"
	"image/color"
	"image/png"
	"math"
)

// PlotOpts configures Image2D, mirroring plot3D::image2D on a CairoPNG
// device.
type PlotOpts struct {
	// Width and Height are the output image dimensions in pixels
	// (defaults 1200x1200, the paper's default resolution).
	Width, Height int
	// Min and Max fix the color scale; both zero auto-scales to the data.
	Min, Max float64
	// Highlight marks the given (row, col) grid cells with a contrasting
	// ring — the paper's "top 10 data points are highlighted" analysis.
	Highlight []GridPoint
}

// GridPoint addresses one cell of the plotted grid.
type GridPoint struct {
	// Row is the grid row (first array dimension).
	Row int
	// Col is the grid column (second array dimension).
	Col int
}

// Image2D rasterizes a ny-by-nx float32 grid into a PNG using a jet-style
// color ramp, nearest-neighbor scaled to the requested resolution. It
// returns the encoded PNG bytes (what a Map task writes to HDFS).
func Image2D(z []float32, ny, nx int, opts PlotOpts) ([]byte, error) {
	if len(z) != ny*nx {
		return nil, fmt.Errorf("rframe: Image2D got %d values for %dx%d grid", len(z), ny, nx)
	}
	if ny <= 0 || nx <= 0 {
		return nil, fmt.Errorf("rframe: Image2D grid %dx%d invalid", ny, nx)
	}
	w, h := opts.Width, opts.Height
	if w <= 0 {
		w = 1200
	}
	if h <= 0 {
		h = 1200
	}
	lo, hi := opts.Min, opts.Max
	if lo == 0 && hi == 0 {
		lo, hi = math.Inf(1), math.Inf(-1)
		for _, v := range z {
			fv := float64(v)
			if fv < lo {
				lo = fv
			}
			if fv > hi {
				hi = fv
			}
		}
	}
	if hi <= lo {
		hi = lo + 1
	}
	img := image.NewRGBA(image.Rect(0, 0, w, h))
	for py := 0; py < h; py++ {
		gy := py * ny / h
		for px := 0; px < w; px++ {
			gx := px * nx / w
			v := (float64(z[gy*nx+gx]) - lo) / (hi - lo)
			img.SetRGBA(px, py, jet(v))
		}
	}
	for _, pt := range opts.Highlight {
		markCell(img, pt, ny, nx)
	}
	var buf bytes.Buffer
	if err := png.Encode(&buf, img); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// jet maps v in [0,1] onto a blue-cyan-yellow-red ramp.
func jet(v float64) color.RGBA {
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	r := clamp01(1.5 - math.Abs(4*v-3))
	g := clamp01(1.5 - math.Abs(4*v-2))
	b := clamp01(1.5 - math.Abs(4*v-1))
	return color.RGBA{R: uint8(r * 255), G: uint8(g * 255), B: uint8(b * 255), A: 255}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// markCell draws a small black ring around the pixel block of one grid
// cell.
func markCell(img *image.RGBA, pt GridPoint, ny, nx int) {
	b := img.Bounds()
	w, h := b.Dx(), b.Dy()
	x0 := pt.Col * w / nx
	x1 := (pt.Col + 1) * w / nx
	y0 := pt.Row * h / ny
	y1 := (pt.Row + 1) * h / ny
	black := color.RGBA{A: 255}
	for x := x0; x < x1 && x < w; x++ {
		img.SetRGBA(x, clampInt(y0, h-1), black)
		img.SetRGBA(x, clampInt(y1-1, h-1), black)
	}
	for y := y0; y < y1 && y < h; y++ {
		img.SetRGBA(clampInt(x0, w-1), y, black)
		img.SetRGBA(clampInt(x1-1, w-1), y, black)
	}
}

func clampInt(v, hi int) int {
	if v < 0 {
		return 0
	}
	if v > hi {
		return hi
	}
	return v
}

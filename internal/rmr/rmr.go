// Package rmr is the analogue of RHadoop's rmr2 and rhdfs packages: it
// lets R-style user code — functions over rframe data frames — run as
// MapReduce jobs, and moves frames and binary artifacts (plotted PNGs) in
// and out of HDFS. The paper's point is that SciDP "only requires the
// rhdfs and rmr2 package to work" (Section IV-E3); this package is that
// minimal contract.
package rmr

import (
	"fmt"

	"scidp/internal/cluster"
	"scidp/internal/hdfs"
	"scidp/internal/mapreduce"
	"scidp/internal/rframe"
	"scidp/internal/sim"
)

// Ctx wraps the engine's task context with frame-aware emission.
type Ctx struct {
	// TC is the underlying engine context (Charge, Phase, Counter,
	// Proc all available).
	TC *mapreduce.TaskContext
}

// Keyval emits a keyed data frame.
func (c *Ctx) Keyval(key string, df *rframe.Frame) { c.TC.Emit(key, df) }

// KeyvalBytes emits a keyed binary artifact (e.g. an encoded PNG).
func (c *Ctx) KeyvalBytes(key string, data []byte) { c.TC.Emit(key, data) }

// MapFn is an R-style map function: one input record (a keyed frame, or
// whatever the input format produces) in, keyed frames/bytes out.
type MapFn func(c *Ctx, key string, value any) error

// ReduceFn is an R-style reduce function over one key's grouped values.
type ReduceFn func(c *Ctx, key string, values []any) error

// Spec describes an rmr job.
type Spec struct {
	// Name labels the job.
	Name string
	// Cluster is the Hadoop cluster to run on.
	Cluster *cluster.Cluster
	// SlotsPerNode bounds per-node concurrency (0 = node capacity).
	SlotsPerNode int
	// Input produces the records (SciDP's input format, an HDFS text
	// format, ...).
	Input mapreduce.InputFormat
	// Map is the user's map function.
	Map MapFn
	// Reduce is the user's reduce function (nil = map-only).
	Reduce ReduceFn
	// NumReducers is the reduce task count.
	NumReducers int
	// TaskStartup overrides the per-task launch cost.
	TaskStartup float64
	// MaxAttempts bounds task attempts (retries + speculative backups).
	MaxAttempts int
	// Faults is the engine's unified fault-injection point (the chaos
	// injector, or a test stub); nil injects nothing.
	Faults mapreduce.TaskFaults
	// Speculation enables backup attempts for straggling map tasks.
	Speculation mapreduce.Speculation
}

// MapReduce runs the job from the driver process p.
func MapReduce(p *sim.Proc, spec Spec) (*mapreduce.Result, error) {
	if spec.Map == nil {
		return nil, fmt.Errorf("rmr: spec needs a Map function")
	}
	job := &mapreduce.Job{
		Name:         spec.Name,
		Cluster:      spec.Cluster,
		SlotsPerNode: spec.SlotsPerNode,
		Input:        spec.Input,
		NumReducers:  spec.NumReducers,
		TaskStartup:  spec.TaskStartup,
		MaxAttempts:  spec.MaxAttempts,
		Faults:       spec.Faults,
		Speculation:  spec.Speculation,
		PairBytes:    PairBytes,
		Map: func(tc *mapreduce.TaskContext, key string, value any) error {
			return spec.Map(&Ctx{TC: tc}, key, value)
		},
	}
	if spec.Reduce != nil {
		job.Reduce = func(tc *mapreduce.TaskContext, key string, values []any) error {
			return spec.Reduce(&Ctx{TC: tc}, key, values)
		}
	}
	return job.Run(p)
}

// PairBytes sizes intermediate pairs for shuffle accounting: frames by
// their CSV-equivalent footprint, byte slices by length.
func PairBytes(kv mapreduce.KV) int64 {
	switch v := kv.V.(type) {
	case *rframe.Frame:
		// Approximate: 12 bytes per numeric cell, actual length for
		// strings, plus the key.
		var b int64
		for _, c := range v.Columns() {
			if c.Kind == rframe.String {
				for _, s := range c.S {
					b += int64(len(s)) + 1
				}
			} else {
				b += int64(c.Len()) * 12
			}
		}
		return b + int64(len(kv.K))
	case []byte:
		return int64(len(v)) + int64(len(kv.K))
	case string:
		return int64(len(v)) + int64(len(kv.K))
	default:
		return int64(len(kv.K)) + 16
	}
}

// ---- rhdfs-style helpers.

// WriteFrame stores df as a CSV file on HDFS, written from node.
func WriteFrame(p *sim.Proc, fs *hdfs.FS, node *cluster.Node, path string, df *rframe.Frame) error {
	return fs.WriteFile(p, node, path, df.WriteCSV())
}

// ReadFrame loads a CSV file from HDFS into a frame, read from node.
func ReadFrame(p *sim.Proc, fs *hdfs.FS, node *cluster.Node, path string) (*rframe.Frame, error) {
	data, err := fs.ReadFile(p, node, path)
	if err != nil {
		return nil, err
	}
	return rframe.ReadTable(data)
}

// WriteBytes stores a binary artifact (an image) on HDFS from node.
func WriteBytes(p *sim.Proc, fs *hdfs.FS, node *cluster.Node, path string, data []byte) error {
	return fs.WriteFile(p, node, path, data)
}

package rmr

import (
	"fmt"
	"testing"

	"scidp/internal/cluster"
	"scidp/internal/hdfs"
	"scidp/internal/mapreduce"
	"scidp/internal/rframe"
	"scidp/internal/sim"
)

func testCluster(k *sim.Kernel) *cluster.Cluster {
	return cluster.New(k, "bd", cluster.Config{
		Nodes: 2, SlotsPerNode: 2,
		DiskBW: 1e6, NICBW: 1e6, FabricBW: 1e6,
	})
}

// frameInput yields one keyed frame per split.
type frameInput struct {
	frames map[string]*rframe.Frame
}

func (fi *frameInput) Splits(p *sim.Proc) ([]*mapreduce.Split, error) {
	var keys []string
	for k := range fi.frames {
		keys = append(keys, k)
	}
	// Deterministic order.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	var out []*mapreduce.Split
	for _, k := range keys {
		out = append(out, &mapreduce.Split{Label: k, Payload: k})
	}
	return out, nil
}

func (fi *frameInput) ForEach(tc *mapreduce.TaskContext, s *mapreduce.Split, fn func(key string, value any) error) error {
	key := s.Payload.(string)
	return fn(key, fi.frames[key])
}

func TestMapReduceOverFrames(t *testing.T) {
	k := sim.NewKernel()
	cl := testCluster(k)
	in := &frameInput{frames: map[string]*rframe.Frame{
		"t0": rframe.New().MustAddFloat("v", []float64{1, 2, 3}),
		"t1": rframe.New().MustAddFloat("v", []float64{10, 20}),
	}}
	var res *mapreduce.Result
	var err error
	k.Go("driver", func(p *sim.Proc) {
		res, err = MapReduce(p, Spec{
			Name: "mean", Cluster: cl, Input: in, TaskStartup: 0.1,
			Map: func(c *Ctx, key string, value any) error {
				df := value.(*rframe.Frame)
				st, e := df.Summary("v")
				if e != nil {
					return e
				}
				c.Keyval("sum", rframe.New().MustAddFloat("s", []float64{st.Mean * float64(st.N)}).MustAddFloat("n", []float64{float64(st.N)}))
				return nil
			},
			Reduce: func(c *Ctx, key string, values []any) error {
				var sum, n float64
				for _, v := range values {
					df := v.(*rframe.Frame)
					sum += df.Col("s").F[0]
					n += df.Col("n").F[0]
				}
				c.Keyval("mean", rframe.New().MustAddFloat("mean", []float64{sum / n}))
				return nil
			},
		})
	})
	k.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 1 {
		t.Fatalf("output = %+v", res.Output)
	}
	mean := res.Output[0].V.(*rframe.Frame).Col("mean").F[0]
	if mean != 36.0/5 {
		t.Fatalf("mean = %v, want 7.2", mean)
	}
}

func TestMapReduceRequiresMap(t *testing.T) {
	k := sim.NewKernel()
	cl := testCluster(k)
	var err error
	k.Go("driver", func(p *sim.Proc) {
		_, err = MapReduce(p, Spec{Name: "bad", Cluster: cl, Input: &frameInput{}})
	})
	k.Run()
	if err == nil {
		t.Fatal("missing Map should fail")
	}
}

func TestPairBytes(t *testing.T) {
	df := rframe.New().MustAddFloat("a", []float64{1, 2}).MustAddString("s", []string{"xy", "z"})
	got := PairBytes(mapreduce.KV{K: "k", V: df})
	want := int64(2*12 + 3 + 2 + 1) // 2 numeric cells + "xy"+1 + "z"+1 + key
	if got != want {
		t.Fatalf("frame PairBytes = %d, want %d", got, want)
	}
	if PairBytes(mapreduce.KV{K: "ab", V: []byte{1, 2, 3}}) != 5 {
		t.Fatal("bytes PairBytes wrong")
	}
	if PairBytes(mapreduce.KV{K: "ab", V: "xyz"}) != 5 {
		t.Fatal("string PairBytes wrong")
	}
	if PairBytes(mapreduce.KV{K: "ab", V: 7}) != 18 {
		t.Fatal("default PairBytes wrong")
	}
}

func TestFrameHDFSRoundtrip(t *testing.T) {
	k := sim.NewKernel()
	cl := testCluster(k)
	fs := hdfs.New(k, cl, hdfs.Config{BlockSize: 64, Replication: 1, NNOpsPerSec: 1e9})
	df := rframe.New().
		MustAddInt("lat", []int64{1, 2, 3}).
		MustAddFloat("value", []float64{0.5, 1.5, 2.5})
	var back *rframe.Frame
	k.Go("driver", func(p *sim.Proc) {
		if err := WriteFrame(p, fs, cl.Node(0), "/out/result.csv", df); err != nil {
			t.Error(err)
			return
		}
		var err error
		back, err = ReadFrame(p, fs, cl.Node(1), "/out/result.csv")
		if err != nil {
			t.Error(err)
		}
	})
	k.Run()
	if back == nil || back.NumRows() != 3 {
		t.Fatalf("roundtrip frame = %+v", back)
	}
	for i := 0; i < 3; i++ {
		if back.Col("value").F[i] != df.Col("value").F[i] {
			t.Fatalf("value[%d] = %v", i, back.Col("value").F[i])
		}
	}
}

func TestWriteBytes(t *testing.T) {
	k := sim.NewKernel()
	cl := testCluster(k)
	fs := hdfs.New(k, cl, hdfs.Config{BlockSize: 64, Replication: 1, NNOpsPerSec: 1e9})
	payload := []byte{0x89, 'P', 'N', 'G'}
	k.Go("driver", func(p *sim.Proc) {
		if err := WriteBytes(p, fs, cl.Node(0), "/img/p.png", payload); err != nil {
			t.Error(err)
		}
		got, err := fs.ReadFile(p, cl.Node(0), "/img/p.png")
		if err != nil || len(got) != 4 {
			t.Errorf("read back = %v, %v", got, err)
		}
	})
	k.Run()
}

func TestShuffleUsesFrameSizes(t *testing.T) {
	// Big frames must account for proportionally bigger shuffles.
	shuffle := func(rows int) int64 {
		k := sim.NewKernel()
		cl := testCluster(k)
		vals := make([]float64, rows)
		in := &frameInput{frames: map[string]*rframe.Frame{
			"a": rframe.New().MustAddFloat("v", vals),
			"b": rframe.New().MustAddFloat("v", vals),
		}}
		var res *mapreduce.Result
		k.Go("driver", func(p *sim.Proc) {
			res, _ = MapReduce(p, Spec{
				Name: "s", Cluster: cl, Input: in, TaskStartup: 0.1, SlotsPerNode: 1,
				Map: func(c *Ctx, key string, value any) error {
					c.Keyval("all", value.(*rframe.Frame))
					return nil
				},
				Reduce: func(c *Ctx, key string, values []any) error { return nil },
			})
		})
		k.Run()
		if res == nil {
			t.Fatal("job failed")
		}
		return res.ShuffleBytes
	}
	small, big := shuffle(10), shuffle(1000)
	if big <= small {
		t.Fatalf("shuffle bytes %d (big) should exceed %d (small)", big, small)
	}
}

func TestMapErrorSurfacesWithJobName(t *testing.T) {
	k := sim.NewKernel()
	cl := testCluster(k)
	in := &frameInput{frames: map[string]*rframe.Frame{"a": rframe.New()}}
	var err error
	k.Go("driver", func(p *sim.Proc) {
		_, err = MapReduce(p, Spec{
			Name: "explode", Cluster: cl, Input: in, TaskStartup: 0.1,
			Map: func(c *Ctx, key string, value any) error {
				return fmt.Errorf("bad frame")
			},
		})
	})
	k.Run()
	if err == nil {
		t.Fatal("map error should surface")
	}
}

package rsql

import (
	"fmt"
	"math"
	"slices"
	"strings"

	"scidp/internal/rframe"
)

// val is a runtime value: numeric or string.
type val struct {
	f   float64
	s   string
	str bool
}

func num(f float64) val  { return val{f: f} }
func str(s string) val   { return val{s: s, str: true} }
func boolVal(b bool) val { return num(b2f(b)) }

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func (v val) truthy() bool { return !v.str && v.f != 0 }

// aggFuncs are the recognized aggregate function names.
var aggFuncs = map[string]bool{"SUM": true, "AVG": true, "MIN": true, "MAX": true, "COUNT": true}

// hasAgg reports whether the expression contains an aggregate call.
func hasAgg(e expr) bool {
	switch x := e.(type) {
	case call:
		if aggFuncs[x.name] {
			return true
		}
		for _, a := range x.args {
			if hasAgg(a) {
				return true
			}
		}
	case binary:
		return hasAgg(x.l) || hasAgg(x.r)
	case unary:
		return hasAgg(x.x)
	}
	return false
}

// rowEval evaluates e against one row of f.
func rowEval(e expr, f *rframe.Frame, row int) (val, error) {
	switch x := e.(type) {
	case numLit:
		return num(x.v), nil
	case strLit:
		return str(x.v), nil
	case colRef:
		c := f.Col(x.name)
		if c == nil {
			return val{}, fmt.Errorf("rsql: no column %q", x.name)
		}
		if c.Kind == rframe.String {
			return str(c.S[row]), nil
		}
		return num(c.Float64At(row)), nil
	case unary:
		v, err := rowEval(x.x, f, row)
		if err != nil {
			return val{}, err
		}
		switch x.op {
		case "-":
			return num(-v.f), nil
		case "NOT":
			return boolVal(!v.truthy()), nil
		}
		return val{}, fmt.Errorf("rsql: unknown unary %q", x.op)
	case binary:
		l, err := rowEval(x.l, f, row)
		if err != nil {
			return val{}, err
		}
		// Short-circuit logic operators.
		switch x.op {
		case "AND":
			if !l.truthy() {
				return boolVal(false), nil
			}
			r, err := rowEval(x.r, f, row)
			if err != nil {
				return val{}, err
			}
			return boolVal(r.truthy()), nil
		case "OR":
			if l.truthy() {
				return boolVal(true), nil
			}
			r, err := rowEval(x.r, f, row)
			if err != nil {
				return val{}, err
			}
			return boolVal(r.truthy()), nil
		}
		r, err := rowEval(x.r, f, row)
		if err != nil {
			return val{}, err
		}
		return applyBinary(x.op, l, r)
	case call:
		if aggFuncs[x.name] {
			return val{}, fmt.Errorf("rsql: aggregate %s outside aggregation context", x.name)
		}
		return applyScalar(x, f, row)
	}
	return val{}, fmt.Errorf("rsql: unknown expression %T", e)
}

func applyBinary(op string, l, r val) (val, error) {
	if l.str || r.str {
		// String context: only comparisons are defined.
		if !l.str || !r.str {
			return val{}, fmt.Errorf("rsql: mixed string/number operands for %q", op)
		}
		switch op {
		case "=":
			return boolVal(l.s == r.s), nil
		case "<>", "!=":
			return boolVal(l.s != r.s), nil
		case "<":
			return boolVal(l.s < r.s), nil
		case ">":
			return boolVal(l.s > r.s), nil
		case "<=":
			return boolVal(l.s <= r.s), nil
		case ">=":
			return boolVal(l.s >= r.s), nil
		}
		return val{}, fmt.Errorf("rsql: operator %q undefined for strings", op)
	}
	switch op {
	case "+":
		return num(l.f + r.f), nil
	case "-":
		return num(l.f - r.f), nil
	case "*":
		return num(l.f * r.f), nil
	case "/":
		return num(l.f / r.f), nil
	case "%":
		return num(math.Mod(l.f, r.f)), nil
	case "=":
		return boolVal(l.f == r.f), nil
	case "<>", "!=":
		return boolVal(l.f != r.f), nil
	case "<":
		return boolVal(l.f < r.f), nil
	case ">":
		return boolVal(l.f > r.f), nil
	case "<=":
		return boolVal(l.f <= r.f), nil
	case ">=":
		return boolVal(l.f >= r.f), nil
	}
	return val{}, fmt.Errorf("rsql: unknown operator %q", op)
}

func applyScalar(x call, f *rframe.Frame, row int) (val, error) {
	argv := make([]val, len(x.args))
	for i, a := range x.args {
		v, err := rowEval(a, f, row)
		if err != nil {
			return val{}, err
		}
		argv[i] = v
	}
	switch x.name {
	case "ABS":
		if len(argv) != 1 {
			return val{}, fmt.Errorf("rsql: ABS takes 1 argument")
		}
		return num(math.Abs(argv[0].f)), nil
	case "SQRT":
		if len(argv) != 1 {
			return val{}, fmt.Errorf("rsql: SQRT takes 1 argument")
		}
		return num(math.Sqrt(argv[0].f)), nil
	}
	return val{}, fmt.Errorf("rsql: unknown function %s", x.name)
}

// aggEval evaluates an expression over a set of rows (aggregation
// context): aggregates reduce the rows; bare columns take the group's
// first row (valid for GROUP BY keys).
func aggEval(e expr, f *rframe.Frame, rows []int) (val, error) {
	switch x := e.(type) {
	case numLit, strLit:
		return rowEval(e, f, 0)
	case colRef:
		if len(rows) == 0 {
			return num(math.NaN()), nil
		}
		return rowEval(e, f, rows[0])
	case unary:
		v, err := aggEval(x.x, f, rows)
		if err != nil {
			return val{}, err
		}
		switch x.op {
		case "-":
			return num(-v.f), nil
		case "NOT":
			return boolVal(!v.truthy()), nil
		}
		return val{}, fmt.Errorf("rsql: unknown unary %q", x.op)
	case binary:
		l, err := aggEval(x.l, f, rows)
		if err != nil {
			return val{}, err
		}
		r, err := aggEval(x.r, f, rows)
		if err != nil {
			return val{}, err
		}
		switch x.op {
		case "AND":
			return boolVal(l.truthy() && r.truthy()), nil
		case "OR":
			return boolVal(l.truthy() || r.truthy()), nil
		}
		return applyBinary(x.op, l, r)
	case call:
		if !aggFuncs[x.name] {
			// Scalar over aggregate arguments.
			if len(rows) == 0 {
				return num(math.NaN()), nil
			}
			argv := make([]val, len(x.args))
			for i, a := range x.args {
				v, err := aggEval(a, f, rows)
				if err != nil {
					return val{}, err
				}
				argv[i] = v
			}
			switch x.name {
			case "ABS":
				return num(math.Abs(argv[0].f)), nil
			case "SQRT":
				return num(math.Sqrt(argv[0].f)), nil
			}
			return val{}, fmt.Errorf("rsql: unknown function %s", x.name)
		}
		if x.name == "COUNT" && x.star {
			return num(float64(len(rows))), nil
		}
		if len(x.args) != 1 {
			return val{}, fmt.Errorf("rsql: %s takes 1 argument", x.name)
		}
		var acc float64
		switch x.name {
		case "MIN":
			acc = math.Inf(1)
		case "MAX":
			acc = math.Inf(-1)
		}
		count := 0
		for _, r := range rows {
			v, err := rowEval(x.args[0], f, r)
			if err != nil {
				return val{}, err
			}
			count++
			switch x.name {
			case "SUM", "AVG":
				acc += v.f
			case "MIN":
				if v.f < acc {
					acc = v.f
				}
			case "MAX":
				if v.f > acc {
					acc = v.f
				}
			case "COUNT":
				// counting non-star: every evaluated row counts
			}
		}
		switch x.name {
		case "COUNT":
			return num(float64(count)), nil
		case "AVG":
			if count == 0 {
				return num(math.NaN()), nil
			}
			return num(acc / float64(count)), nil
		default:
			return num(acc), nil
		}
	}
	return val{}, fmt.Errorf("rsql: unknown expression %T", e)
}

// itemName derives an output column name for a select item.
func itemName(it selectItem, idx int) string {
	if it.alias != "" {
		return it.alias
	}
	if c, ok := it.ex.(colRef); ok {
		return c.name
	}
	if c, ok := it.ex.(call); ok {
		return strings.ToLower(c.name)
	}
	return fmt.Sprintf("expr%d", idx+1)
}

// Query parses and executes sql against the named frames.
func Query(tables map[string]*rframe.Frame, sql string) (*rframe.Frame, error) {
	q, err := parse(sql)
	if err != nil {
		return nil, err
	}
	src, ok := tables[q.from]
	if !ok {
		return nil, fmt.Errorf("rsql: no table %q", q.from)
	}

	// WHERE filter.
	rows := make([]int, 0, src.NumRows())
	for r := 0; r < src.NumRows(); r++ {
		if q.where != nil {
			v, err := rowEval(q.where, src, r)
			if err != nil {
				return nil, err
			}
			if !v.truthy() {
				continue
			}
		}
		rows = append(rows, r)
	}

	aggregated := len(q.groupBy) > 0
	for _, it := range q.sel {
		if !it.star && hasAgg(it.ex) {
			aggregated = true
		}
	}

	var out *rframe.Frame
	if aggregated {
		out, err = execAggregate(q, src, rows)
	} else {
		out, err = execProject(q, src, rows)
	}
	if err != nil {
		return nil, err
	}

	// ORDER BY over the output frame (aliases and projected columns).
	if len(q.orderBy) > 0 {
		out, err = orderFrame(out, q.orderBy)
		if err != nil {
			return nil, err
		}
	}
	if q.limit >= 0 {
		out = out.Head(q.limit)
	}
	return out, nil
}

// execProject evaluates a non-aggregated select list row by row.
func execProject(q *query, src *rframe.Frame, rows []int) (*rframe.Frame, error) {
	type outCol struct {
		name string
		strs []string
		nums []float64
		str  bool
		set  bool
	}
	var cols []*outCol
	star := false
	for i, it := range q.sel {
		if it.star {
			star = true
			continue
		}
		cols = append(cols, &outCol{name: itemName(it, i)})
	}
	// Star expands in place: build by gathering the filtered rows.
	out := rframe.New()
	if star {
		keep := map[int]bool{}
		for _, r := range rows {
			keep[r] = true
		}
		filtered := src.Filter(func(r int) bool { return keep[r] })
		for _, c := range filtered.Columns() {
			switch c.Kind {
			case rframe.Float:
				out.AddFloat(c.Name, c.F)
			case rframe.Int:
				out.AddInt(c.Name, c.I)
			case rframe.String:
				out.AddString(c.Name, c.S)
			}
		}
	}
	ci := 0
	for _, it := range q.sel {
		if it.star {
			continue
		}
		oc := cols[ci]
		ci++
		for _, r := range rows {
			v, err := rowEval(it.ex, src, r)
			if err != nil {
				return nil, err
			}
			if !oc.set {
				oc.str = v.str
				oc.set = true
			}
			if v.str != oc.str {
				return nil, fmt.Errorf("rsql: column %q mixes strings and numbers", oc.name)
			}
			if v.str {
				oc.strs = append(oc.strs, v.s)
			} else {
				oc.nums = append(oc.nums, v.f)
			}
		}
		var err error
		if oc.str {
			err = out.AddString(oc.name, oc.strs)
		} else {
			if oc.nums == nil {
				oc.nums = []float64{}
			}
			err = out.AddFloat(oc.name, oc.nums)
		}
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// execAggregate groups the rows and evaluates aggregate select items.
func execAggregate(q *query, src *rframe.Frame, rows []int) (*rframe.Frame, error) {
	for _, g := range q.groupBy {
		if src.Col(g) == nil {
			return nil, fmt.Errorf("rsql: GROUP BY column %q missing", g)
		}
	}
	// Group rows by composite key, preserving first-seen order.
	type group struct{ rows []int }
	var order []string
	groups := map[string]*group{}
	for _, r := range rows {
		var sb strings.Builder
		for _, g := range q.groupBy {
			sb.WriteString(src.Col(g).StringAt(r))
			sb.WriteByte('\x00')
		}
		key := sb.String()
		grp, ok := groups[key]
		if !ok {
			grp = &group{}
			groups[key] = grp
			order = append(order, key)
		}
		grp.rows = append(grp.rows, r)
	}
	if len(q.groupBy) == 0 {
		// Global aggregation: one group, even over zero rows.
		order = []string{""}
		groups[""] = &group{rows: rows}
	}
	type outCol struct {
		name string
		strs []string
		nums []float64
		str  bool
		set  bool
	}
	cols := make([]*outCol, 0, len(q.sel))
	for i, it := range q.sel {
		if it.star {
			return nil, fmt.Errorf("rsql: SELECT * cannot mix with aggregation")
		}
		cols = append(cols, &outCol{name: itemName(it, i)})
	}
	for _, key := range order {
		grp := groups[key]
		for i, it := range q.sel {
			v, err := aggEval(it.ex, src, grp.rows)
			if err != nil {
				return nil, err
			}
			oc := cols[i]
			if !oc.set {
				oc.str = v.str
				oc.set = true
			}
			if v.str != oc.str {
				return nil, fmt.Errorf("rsql: column %q mixes strings and numbers", oc.name)
			}
			if v.str {
				oc.strs = append(oc.strs, v.s)
			} else {
				oc.nums = append(oc.nums, v.f)
			}
		}
	}
	out := rframe.New()
	for _, oc := range cols {
		var err error
		if oc.str {
			err = out.AddString(oc.name, oc.strs)
		} else {
			if oc.nums == nil {
				oc.nums = []float64{}
			}
			err = out.AddFloat(oc.name, oc.nums)
		}
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// orderFrame sorts the output frame by the ORDER BY items (evaluated
// against the output's own columns).
func orderFrame(f *rframe.Frame, items []orderItem) (*rframe.Frame, error) {
	n := f.NumRows()
	keys := make([][]val, n)
	for r := 0; r < n; r++ {
		keys[r] = make([]val, len(items))
		for i, it := range items {
			v, err := rowEval(it.ex, f, r)
			if err != nil {
				return nil, err
			}
			keys[r][i] = v
		}
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	var sortErr error
	lessVal := func(a, b val) int {
		switch {
		case a.str && b.str:
			return strings.Compare(a.s, b.s)
		case !a.str && !b.str:
			switch {
			case a.f < b.f:
				return -1
			case a.f > b.f:
				return 1
			}
			return 0
		default:
			sortErr = fmt.Errorf("rsql: ORDER BY mixes strings and numbers")
			return 0
		}
	}
	slices.SortStableFunc(idx, func(a, b int) int {
		for i, it := range items {
			c := lessVal(keys[a][i], keys[b][i])
			if it.desc {
				c = -c
			}
			if c != 0 {
				return c
			}
		}
		return 0
	})
	if sortErr != nil {
		return nil, sortErr
	}
	// Rebuild via Filter-preserving gather.
	keep := make([]int, n)
	copy(keep, idx)
	out := rframe.New()
	for _, c := range f.Columns() {
		switch c.Kind {
		case rframe.Float:
			vals := make([]float64, n)
			for i, r := range keep {
				vals[i] = c.F[r]
			}
			out.AddFloat(c.Name, vals)
		case rframe.Int:
			vals := make([]int64, n)
			for i, r := range keep {
				vals[i] = c.I[r]
			}
			out.AddInt(c.Name, vals)
		case rframe.String:
			vals := make([]string, n)
			for i, r := range keep {
				vals[i] = c.S[r]
			}
			out.AddString(c.Name, vals)
		}
	}
	return out, nil
}

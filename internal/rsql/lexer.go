// Package rsql is the sqldf analogue: a SQL subset executed directly over
// rframe data frames. The paper's Anlys workload runs its analyses as SQL
// ("SQL queries are supported by the sqldf package. It converts the SQL
// queries into operations upon R data frames"). Supported:
//
//	SELECT expr [AS alias], ... | *
//	FROM table
//	[WHERE expr]
//	[GROUP BY col, ...]
//	[ORDER BY expr [ASC|DESC], ...]
//	[LIMIT n]
//
// with arithmetic, comparisons, AND/OR/NOT, the aggregates
// SUM/AVG/MIN/MAX/COUNT, and the scalar functions ABS/SQRT.
package rsql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind enumerates lexer token types.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokOp      // punctuation and operators
	tokKeyword // recognized SQL keyword, upper-cased in val
)

// token is one lexed unit.
type token struct {
	kind tokKind
	val  string
	pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"ORDER": true, "LIMIT": true, "AS": true, "AND": true, "OR": true,
	"NOT": true, "ASC": true, "DESC": true,
}

// lex tokenizes the input.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case unicode.IsDigit(c) || (c == '.' && i+1 < n && unicode.IsDigit(rune(input[i+1]))):
			start := i
			seenDot, seenExp := false, false
			for i < n {
				ch := input[i]
				if ch >= '0' && ch <= '9' {
					i++
				} else if ch == '.' && !seenDot && !seenExp {
					seenDot = true
					i++
				} else if (ch == 'e' || ch == 'E') && !seenExp {
					seenExp = true
					i++
					if i < n && (input[i] == '+' || input[i] == '-') {
						i++
					}
				} else {
					break
				}
			}
			toks = append(toks, token{kind: tokNumber, val: input[start:i], pos: start})
		case unicode.IsLetter(c) || c == '_':
			start := i
			for i < n && (unicode.IsLetter(rune(input[i])) || unicode.IsDigit(rune(input[i])) || input[i] == '_') {
				i++
			}
			word := input[start:i]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, token{kind: tokKeyword, val: up, pos: start})
			} else {
				toks = append(toks, token{kind: tokIdent, val: word, pos: start})
			}
		case c == '\'':
			i++
			start := i
			for i < n && input[i] != '\'' {
				i++
			}
			if i >= n {
				return nil, fmt.Errorf("rsql: unterminated string at %d", start-1)
			}
			toks = append(toks, token{kind: tokString, val: input[start:i], pos: start})
			i++
		default:
			two := ""
			if i+1 < n {
				two = input[i : i+2]
			}
			switch two {
			case "<=", ">=", "<>", "!=":
				toks = append(toks, token{kind: tokOp, val: two, pos: i})
				i += 2
				continue
			}
			switch c {
			case ',', '(', ')', '*', '+', '-', '/', '<', '>', '=', '%':
				toks = append(toks, token{kind: tokOp, val: string(c), pos: i})
				i++
			default:
				return nil, fmt.Errorf("rsql: unexpected character %q at %d", c, i)
			}
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: n})
	return toks, nil
}

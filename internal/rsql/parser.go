package rsql

import (
	"fmt"
	"strconv"
	"strings"
)

// expr is a parsed expression node.
type expr interface{ exprNode() }

type numLit struct{ v float64 }
type strLit struct{ v string }
type colRef struct{ name string }
type unary struct {
	op string // "-" or "NOT"
	x  expr
}
type binary struct {
	op   string
	l, r expr
}
type call struct {
	name string // upper-cased function name
	star bool   // COUNT(*)
	args []expr
}

func (numLit) exprNode() {}
func (strLit) exprNode() {}
func (colRef) exprNode() {}
func (unary) exprNode()  {}
func (binary) exprNode() {}
func (call) exprNode()   {}

// selectItem is one projection.
type selectItem struct {
	ex    expr
	alias string
	star  bool
}

// orderItem is one ORDER BY key.
type orderItem struct {
	ex   expr
	desc bool
}

// query is a parsed statement.
type query struct {
	sel     []selectItem
	from    string
	where   expr
	groupBy []string
	orderBy []orderItem
	limit   int // -1 when absent
}

// parser consumes the token stream.
type parser struct {
	toks []token
	i    int
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) acceptKw(kw string) bool {
	if p.cur().kind == tokKeyword && p.cur().val == kw {
		p.i++
		return true
	}
	return false
}

func (p *parser) acceptOp(op string) bool {
	if p.cur().kind == tokOp && p.cur().val == op {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectKw(kw string) error {
	if !p.acceptKw(kw) {
		return fmt.Errorf("rsql: expected %s at position %d, got %q", kw, p.cur().pos, p.cur().val)
	}
	return nil
}

func (p *parser) expectOp(op string) error {
	if !p.acceptOp(op) {
		return fmt.Errorf("rsql: expected %q at position %d, got %q", op, p.cur().pos, p.cur().val)
	}
	return nil
}

// parse parses a full SELECT statement.
func parse(sql string) (*query, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q := &query{limit: -1}
	if err := p.expectKw("SELECT"); err != nil {
		return nil, err
	}
	for {
		if p.acceptOp("*") {
			q.sel = append(q.sel, selectItem{star: true})
		} else {
			ex, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := selectItem{ex: ex}
			if p.acceptKw("AS") {
				t := p.next()
				if t.kind != tokIdent {
					return nil, fmt.Errorf("rsql: expected alias after AS at %d", t.pos)
				}
				item.alias = t.val
			}
			q.sel = append(q.sel, item)
		}
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	t := p.next()
	if t.kind != tokIdent {
		return nil, fmt.Errorf("rsql: expected table name at %d", t.pos)
	}
	q.from = t.val
	if p.acceptKw("WHERE") {
		ex, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		q.where = ex
	}
	if p.acceptKw("GROUP") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			t := p.next()
			if t.kind != tokIdent {
				return nil, fmt.Errorf("rsql: expected column in GROUP BY at %d", t.pos)
			}
			q.groupBy = append(q.groupBy, t.val)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKw("ORDER") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			ex, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := orderItem{ex: ex}
			if p.acceptKw("DESC") {
				item.desc = true
			} else {
				p.acceptKw("ASC")
			}
			q.orderBy = append(q.orderBy, item)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKw("LIMIT") {
		t := p.next()
		if t.kind != tokNumber {
			return nil, fmt.Errorf("rsql: expected number after LIMIT at %d", t.pos)
		}
		n, err := strconv.Atoi(t.val)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("rsql: bad LIMIT %q", t.val)
		}
		q.limit = n
	}
	if p.cur().kind != tokEOF {
		return nil, fmt.Errorf("rsql: trailing input at %d: %q", p.cur().pos, p.cur().val)
	}
	return q, nil
}

// Precedence climbing: OR < AND < NOT < comparison < additive <
// multiplicative < unary.

func (p *parser) parseExpr() (expr, error) { return p.parseOr() }

func (p *parser) parseOr() (expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = binary{op: "OR", l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = binary{op: "AND", l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseNot() (expr, error) {
	if p.acceptKw("NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return unary{op: "NOT", x: x}, nil
	}
	return p.parseCmp()
}

func (p *parser) parseCmp() (expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	for _, op := range []string{"<=", ">=", "<>", "!=", "<", ">", "="} {
		if p.acceptOp(op) {
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return binary{op: op, l: l, r: r}, nil
		}
	}
	return l, nil
}

func (p *parser) parseAdd() (expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptOp("+"):
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = binary{op: "+", l: l, r: r}
		case p.acceptOp("-"):
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = binary{op: "-", l: l, r: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseMul() (expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptOp("*"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = binary{op: "*", l: l, r: r}
		case p.acceptOp("/"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = binary{op: "/", l: l, r: r}
		case p.acceptOp("%"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = binary{op: "%", l: l, r: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseUnary() (expr, error) {
	if p.acceptOp("-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return unary{op: "-", x: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (expr, error) {
	t := p.next()
	switch t.kind {
	case tokNumber:
		v, err := strconv.ParseFloat(t.val, 64)
		if err != nil {
			return nil, fmt.Errorf("rsql: bad number %q at %d", t.val, t.pos)
		}
		return numLit{v: v}, nil
	case tokString:
		return strLit{v: t.val}, nil
	case tokIdent:
		if p.acceptOp("(") {
			fn := call{name: strings.ToUpper(t.val)}
			if p.acceptOp("*") {
				fn.star = true
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				return fn, nil
			}
			if !p.acceptOp(")") {
				for {
					arg, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					fn.args = append(fn.args, arg)
					if !p.acceptOp(",") {
						break
					}
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
			}
			return fn, nil
		}
		return colRef{name: t.val}, nil
	case tokOp:
		if t.val == "(" {
			ex, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return ex, nil
		}
	}
	return nil, fmt.Errorf("rsql: unexpected token %q at %d", t.val, t.pos)
}

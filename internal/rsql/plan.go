package rsql

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"scidp/internal/obs"
	"scidp/internal/rframe"
	"scidp/internal/sim"
)

// This file is the chunk-pushdown query engine: a compiled array-algebra
// plan (slice → filter → project → aggregate) that intersects WHERE
// predicates with per-chunk zone maps before any I/O, scans only the
// surviving chunks in one fused pass per chunk on the data plane, and
// merges per-chunk partials in chunk order so the output is byte-identical
// at any worker count — and byte-identical with pushdown on or off,
// because a scanned chunk with no matching rows contributes exactly what a
// skipped chunk does: nothing.

// PushdownMode selects whether the planner's chunk skip-list is applied.
type PushdownMode int

const (
	// Pushdown skips chunks the zone maps prove irrelevant (the default).
	Pushdown PushdownMode = iota
	// PushdownOff is the oracle mode: scan every chunk. Results must be
	// byte-identical to Pushdown — the correctness check the bench and
	// tests enforce, mirroring the fair-share FairShareFull oracle.
	PushdownOff
)

// String names the mode.
func (m PushdownMode) String() string {
	if m == PushdownOff {
		return "oracle"
	}
	return "pushdown"
}

// ArrayQueryOpts configures QueryArrays.
type ArrayQueryOpts struct {
	// Mode selects pushdown or the full-scan oracle.
	Mode PushdownMode
	// Obs, when non-nil, receives the query counters
	// (query/chunks_scanned_total, query/chunks_skipped_total,
	// query/bytes_avoided_total) and a per-query span.
	Obs *obs.Registry
}

// ScanStats reports what a query's scan touched and what pruning avoided.
type ScanStats struct {
	// ChunksTotal is the table's chunk count.
	ChunksTotal int
	// ChunksScanned is how many chunks were read and decoded.
	ChunksScanned int
	// ChunksSkipped is how many chunks pruning proved irrelevant.
	ChunksSkipped int
	// BytesInflated is the decompressed payload bytes of scanned chunks.
	BytesInflated int64
	// BytesAvoided is the decompressed payload bytes never inflated.
	BytesAvoided int64
	// StoredRead is the on-disk bytes of scanned chunks.
	StoredRead int64
	// StoredAvoided is the on-disk bytes never read.
	StoredAvoided int64
	// RowsScanned is the row count of scanned chunks.
	RowsScanned int
	// RowsMatched is how many scanned rows passed the WHERE clause.
	RowsMatched int
}

// Projector is the optional ArrayTable extension QueryArrays uses to
// narrow a table to the plan's referenced columns before the scan. The
// return value reports whether chunk payloads still need decoding (false
// when only geometry-derived columns are referenced).
type Projector interface {
	Project(cols []string) bool
}

// planItem is one output column of the compiled plan.
type planItem struct {
	name   string
	ex     expr
	native string // star-expanded bare column (keeps Int columns integer)
}

// ArrayPlan is a compiled pushdown query: validated against a table
// schema, with predicate bounds extracted for pruning. Its pieces —
// Survivors, ScanChunk, Finalize — are independently drivable, which is
// how sparklite distributes the same plan the local executor runs.
type ArrayPlan struct {
	q          *query
	byName     map[string]ColumnInfo
	items      []planItem
	refs       []string
	bounds     map[string]Interval
	aggregated bool
	aggs       []call
	aggIdx     map[string]int
}

// From returns the table name the query selects from.
func (pl *ArrayPlan) From() string { return pl.q.from }

// Refs returns the input columns the plan references (select list, WHERE,
// GROUP BY), deduplicated in schema order — the projection list.
func (pl *ArrayPlan) Refs() []string { return pl.refs }

// Bounds returns the per-column predicate intervals extracted from the
// WHERE clause's top-level conjuncts.
func (pl *ArrayPlan) Bounds() map[string]Interval { return pl.bounds }

// CompileArray parses sql and compiles it against a table schema. Only
// numeric single-table queries are supported (array tables have no string
// columns); the full WHERE clause is still evaluated per row, so the
// extracted bounds are purely an optimization.
func CompileArray(sql string, cols []ColumnInfo) (*ArrayPlan, error) {
	q, err := parse(sql)
	if err != nil {
		return nil, err
	}
	pl := &ArrayPlan{q: q, byName: map[string]ColumnInfo{}, aggIdx: map[string]int{}}
	for _, c := range cols {
		pl.byName[c.Name] = c
	}

	refSet := map[string]bool{}
	var validate func(e expr) error
	validate = func(e expr) error {
		switch x := e.(type) {
		case nil:
			return nil
		case numLit:
			return nil
		case strLit:
			return fmt.Errorf("rsql: array queries are numeric; string literal %q unsupported", x.v)
		case colRef:
			if _, ok := pl.byName[x.name]; !ok {
				return fmt.Errorf("rsql: no column %q", x.name)
			}
			refSet[x.name] = true
			return nil
		case unary:
			return validate(x.x)
		case binary:
			if err := validate(x.l); err != nil {
				return err
			}
			return validate(x.r)
		case call:
			if !aggFuncs[x.name] && x.name != "ABS" && x.name != "SQRT" {
				return fmt.Errorf("rsql: unknown function %s", x.name)
			}
			if aggFuncs[x.name] {
				key := renderExpr(x)
				if _, ok := pl.aggIdx[key]; !ok {
					pl.aggIdx[key] = len(pl.aggs)
					pl.aggs = append(pl.aggs, x)
				}
			}
			for _, a := range x.args {
				if err := validate(a); err != nil {
					return err
				}
			}
			return nil
		}
		return fmt.Errorf("rsql: unknown expression %T", e)
	}

	// Expand the select list: star columns first in schema order (matching
	// the frame executor's layout), then named items in select order.
	var named []planItem
	star := false
	for i, it := range q.sel {
		if it.star {
			star = true
			continue
		}
		if err := validate(it.ex); err != nil {
			return nil, err
		}
		if hasAgg(it.ex) {
			pl.aggregated = true
		}
		named = append(named, planItem{name: itemName(it, i), ex: it.ex})
	}
	if len(q.groupBy) > 0 {
		pl.aggregated = true
	}
	if star {
		if pl.aggregated {
			return nil, fmt.Errorf("rsql: SELECT * cannot mix with aggregation")
		}
		for _, c := range cols {
			refSet[c.Name] = true
			pl.items = append(pl.items, planItem{name: c.Name, ex: colRef{name: c.Name}, native: c.Name})
		}
	}
	pl.items = append(pl.items, named...)
	for _, g := range q.groupBy {
		if _, ok := pl.byName[g]; !ok {
			return nil, fmt.Errorf("rsql: GROUP BY column %q missing", g)
		}
		refSet[g] = true
	}
	if q.where != nil {
		if hasAgg(q.where) {
			return nil, fmt.Errorf("rsql: aggregate in WHERE")
		}
		if err := validate(q.where); err != nil {
			return nil, err
		}
	}
	for _, c := range cols {
		if refSet[c.Name] {
			pl.refs = append(pl.refs, c.Name)
		}
	}
	pl.bounds = extractBounds(q.where)
	return pl, nil
}

// extractBounds pulls per-column intervals from the WHERE clause's
// top-level AND conjuncts of the form `col op literal` (or flipped). OR
// and NOT subtrees contribute nothing — pruning stays a conservative
// over-approximation and the full predicate is re-evaluated per row.
func extractBounds(e expr) map[string]Interval {
	out := map[string]Interval{}
	var visit func(e expr)
	visit = func(e expr) {
		b, ok := e.(binary)
		if !ok {
			return
		}
		if b.op == "AND" {
			visit(b.l)
			visit(b.r)
			return
		}
		col, lit, op := "", 0.0, b.op
		if c, ok := b.l.(colRef); ok {
			if n, ok := b.r.(numLit); ok {
				col, lit = c.name, n.v
			}
		} else if c, ok := b.r.(colRef); ok {
			if n, ok := b.l.(numLit); ok {
				// Flip `lit op col` into `col op' lit`.
				col, lit = c.name, n.v
				switch b.op {
				case "<":
					op = ">"
				case "<=":
					op = ">="
				case ">":
					op = "<"
				case ">=":
					op = "<="
				}
			}
		}
		if col == "" {
			return
		}
		iv := Interval{Lo: math.Inf(-1), Hi: math.Inf(1)}
		switch op {
		case "<", "<=":
			iv.Hi = lit
		case ">", ">=":
			iv.Lo = lit
		case "=":
			iv.Lo, iv.Hi = lit, lit
		default:
			return
		}
		if prev, ok := out[col]; ok {
			iv.Lo = max(iv.Lo, prev.Lo)
			iv.Hi = min(iv.Hi, prev.Hi)
		}
		out[col] = iv
	}
	visit(e)
	return out
}

// Survivors returns the chunk indices the scan must read: all of them in
// oracle mode, otherwise every chunk whose metadata bounds intersect each
// extracted predicate interval.
func (pl *ArrayPlan) Survivors(t ArrayTable, mode PushdownMode) []int {
	n := t.NumChunks()
	keep := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if mode == Pushdown && pl.prunes(t.Meta(i)) {
			continue
		}
		keep = append(keep, i)
	}
	return keep
}

// Stats summarizes, before any I/O, what a scan of t under mode will
// touch and what pruning avoids, along with the surviving chunk list.
// payload reports whether chunk payloads will be decoded (false when the
// projection drops them).
func (pl *ArrayPlan) Stats(t ArrayTable, mode PushdownMode, payload bool) (*ScanStats, []int) {
	survivors := pl.Survivors(t, mode)
	st := &ScanStats{ChunksTotal: t.NumChunks()}
	surv := make(map[int]bool, len(survivors))
	for _, i := range survivors {
		surv[i] = true
	}
	for i := 0; i < t.NumChunks(); i++ {
		m := t.Meta(i)
		if surv[i] {
			st.ChunksScanned++
			st.RowsScanned += m.Rows
			if payload {
				st.BytesInflated += m.RawBytes
				st.StoredRead += m.StoredBytes
			}
		} else {
			st.ChunksSkipped++
			st.BytesAvoided += m.RawBytes
			st.StoredAvoided += m.StoredBytes
		}
	}
	return st, survivors
}

// prunes reports whether the chunk provably holds no matching row.
func (pl *ArrayPlan) prunes(m ChunkMeta) bool {
	for col, pred := range pl.bounds {
		if b, ok := m.Bounds[col]; ok && b.Disjoint(pred) {
			return true
		}
	}
	return false
}

// aggState is one aggregate call's running partial within a group.
type aggState struct {
	sum      float64
	cnt      int64
	min, max float64
}

// groupPartial is one group's accumulation within a single chunk.
type groupPartial struct {
	key   string
	rows  int64
	first map[string]float64
	aggs  []aggState
}

// ChunkPartial is the result of fusing slice+filter+project+aggregate
// over one chunk — pure data, merged on the kernel thread in chunk order.
type ChunkPartial struct {
	rows   int
	floats [][]float64
	ints   [][]int64
	groups []*groupPartial
}

// Rows returns how many of the chunk's rows passed the WHERE clause.
func (p *ChunkPartial) Rows() int { return p.rows }

// chunkEval evaluates a numeric expression against one chunk row. It
// mirrors rowEval's semantics (truthiness is v != 0, short-circuit
// AND/OR) restricted to numeric values.
func chunkEval(e expr, cols map[string]func(int) float64, row int) (float64, error) {
	switch x := e.(type) {
	case numLit:
		return x.v, nil
	case colRef:
		acc := cols[x.name]
		if acc == nil {
			return 0, fmt.Errorf("rsql: no column %q", x.name)
		}
		return acc(row), nil
	case unary:
		v, err := chunkEval(x.x, cols, row)
		if err != nil {
			return 0, err
		}
		switch x.op {
		case "-":
			return -v, nil
		case "NOT":
			return b2f(!(v != 0)), nil
		}
		return 0, fmt.Errorf("rsql: unknown unary %q", x.op)
	case binary:
		l, err := chunkEval(x.l, cols, row)
		if err != nil {
			return 0, err
		}
		switch x.op {
		case "AND":
			if !(l != 0) {
				return 0, nil
			}
			r, err := chunkEval(x.r, cols, row)
			if err != nil {
				return 0, err
			}
			return b2f(r != 0), nil
		case "OR":
			if l != 0 {
				return 1, nil
			}
			r, err := chunkEval(x.r, cols, row)
			if err != nil {
				return 0, err
			}
			return b2f(r != 0), nil
		}
		r, err := chunkEval(x.r, cols, row)
		if err != nil {
			return 0, err
		}
		v, err := applyBinary(x.op, num(l), num(r))
		return v.f, err
	case call:
		if aggFuncs[x.name] {
			return 0, fmt.Errorf("rsql: aggregate %s in row context", x.name)
		}
		if len(x.args) != 1 {
			return 0, fmt.Errorf("rsql: %s takes 1 argument", x.name)
		}
		v, err := chunkEval(x.args[0], cols, row)
		if err != nil {
			return 0, err
		}
		switch x.name {
		case "ABS":
			return math.Abs(v), nil
		case "SQRT":
			return math.Sqrt(v), nil
		}
		return 0, fmt.Errorf("rsql: unknown function %s", x.name)
	}
	return 0, fmt.Errorf("rsql: unknown expression %T", e)
}

// keyPart formats one group-key component.
func keyPart(v float64, isInt bool) string {
	if isInt {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ScanChunk runs the fused single pass over one decoded chunk: evaluate
// the WHERE clause row by row and either materialize the projected
// outputs or fold the row into per-group aggregate partials. It is pure
// (touches only c and its own buffers), so callers fork it onto the data
// plane and merge the partials after Join.
func (pl *ArrayPlan) ScanChunk(c Chunk) (*ChunkPartial, error) {
	cols := map[string]func(int) float64{}
	for _, name := range pl.refs {
		acc, err := c.Col(name)
		if err != nil {
			return nil, err
		}
		cols[name] = acc
	}
	p := &ChunkPartial{}
	if !pl.aggregated {
		p.floats = make([][]float64, len(pl.items))
		p.ints = make([][]int64, len(pl.items))
	}
	var groups map[string]*groupPartial
	if pl.aggregated {
		groups = map[string]*groupPartial{}
	}
	n := c.NumRows()
	for row := 0; row < n; row++ {
		if pl.q.where != nil {
			v, err := chunkEval(pl.q.where, cols, row)
			if err != nil {
				return nil, err
			}
			if !(v != 0) {
				continue
			}
		}
		p.rows++
		if !pl.aggregated {
			for i, it := range pl.items {
				if it.native != "" && pl.byName[it.native].Int {
					p.ints[i] = append(p.ints[i], int64(cols[it.native](row)))
					continue
				}
				v, err := chunkEval(it.ex, cols, row)
				if err != nil {
					return nil, err
				}
				p.floats[i] = append(p.floats[i], v)
			}
			continue
		}
		// Aggregated: fold the row into its group's partial.
		var sb strings.Builder
		for _, gcol := range pl.q.groupBy {
			sb.WriteString(keyPart(cols[gcol](row), pl.byName[gcol].Int))
			sb.WriteByte('\x00')
		}
		key := sb.String()
		g, ok := groups[key]
		if !ok {
			g = &groupPartial{key: key, first: map[string]float64{}, aggs: make([]aggState, len(pl.aggs))}
			for i := range g.aggs {
				g.aggs[i].min = math.Inf(1)
				g.aggs[i].max = math.Inf(-1)
			}
			for _, name := range pl.refs {
				g.first[name] = cols[name](row)
			}
			groups[key] = g
			p.groups = append(p.groups, g)
		}
		g.rows++
		for ai, agg := range pl.aggs {
			if agg.star {
				continue // COUNT(*) rides on g.rows
			}
			if len(agg.args) != 1 {
				return nil, fmt.Errorf("rsql: %s takes 1 argument", agg.name)
			}
			v, err := chunkEval(agg.args[0], cols, row)
			if err != nil {
				return nil, err
			}
			st := &g.aggs[ai]
			st.sum += v
			st.cnt++
			st.min = min(st.min, v)
			st.max = max(st.max, v)
		}
	}
	return p, nil
}

// emptyGroup synthesizes the zero-row group a global aggregation reports
// when nothing matched (SUM 0, COUNT 0, AVG NaN, MIN +Inf, MAX -Inf —
// the frame executor's semantics).
func (pl *ArrayPlan) emptyGroup() *groupPartial {
	g := &groupPartial{first: map[string]float64{}, aggs: make([]aggState, len(pl.aggs))}
	for i := range g.aggs {
		g.aggs[i].min = math.Inf(1)
		g.aggs[i].max = math.Inf(-1)
	}
	return g
}

// finalEval evaluates a select item against one merged group.
func (pl *ArrayPlan) finalEval(e expr, g *groupPartial) (float64, error) {
	switch x := e.(type) {
	case numLit:
		return x.v, nil
	case colRef:
		if g.rows == 0 {
			return math.NaN(), nil
		}
		return g.first[x.name], nil
	case unary:
		v, err := pl.finalEval(x.x, g)
		if err != nil {
			return 0, err
		}
		switch x.op {
		case "-":
			return -v, nil
		case "NOT":
			return b2f(!(v != 0)), nil
		}
		return 0, fmt.Errorf("rsql: unknown unary %q", x.op)
	case binary:
		l, err := pl.finalEval(x.l, g)
		if err != nil {
			return 0, err
		}
		r, err := pl.finalEval(x.r, g)
		if err != nil {
			return 0, err
		}
		switch x.op {
		case "AND":
			return b2f(l != 0 && r != 0), nil
		case "OR":
			return b2f(l != 0 || r != 0), nil
		}
		v, err := applyBinary(x.op, num(l), num(r))
		return v.f, err
	case call:
		if aggFuncs[x.name] {
			st := g.aggs[pl.aggIdx[renderExpr(x)]]
			switch x.name {
			case "COUNT":
				if x.star {
					return float64(g.rows), nil
				}
				return float64(st.cnt), nil
			case "SUM":
				return st.sum, nil
			case "AVG":
				if st.cnt == 0 {
					return math.NaN(), nil
				}
				return st.sum / float64(st.cnt), nil
			case "MIN":
				return st.min, nil
			case "MAX":
				return st.max, nil
			}
		}
		if g.rows == 0 {
			return math.NaN(), nil
		}
		v, err := pl.finalEval(x.args[0], g)
		if err != nil {
			return 0, err
		}
		switch x.name {
		case "ABS":
			return math.Abs(v), nil
		case "SQRT":
			return math.Sqrt(v), nil
		}
		return 0, fmt.Errorf("rsql: unknown function %s", x.name)
	}
	return 0, fmt.Errorf("rsql: unknown expression %T", e)
}

// Finalize merges per-chunk partials in chunk order and applies ORDER BY
// and LIMIT. Only chunks that produced matching rows contribute to the
// merge, so float accumulation sees the exact same operand sequence
// whether non-matching chunks were scanned (oracle) or skipped
// (pushdown) — the bitwise-equality invariant.
func (pl *ArrayPlan) Finalize(parts []*ChunkPartial) (*rframe.Frame, error) {
	out := rframe.New()
	if !pl.aggregated {
		for i, it := range pl.items {
			if it.native != "" && pl.byName[it.native].Int {
				var vals []int64
				for _, p := range parts {
					if p != nil {
						vals = append(vals, p.ints[i]...)
					}
				}
				if vals == nil {
					vals = []int64{}
				}
				if err := out.AddInt(it.name, vals); err != nil {
					return nil, err
				}
				continue
			}
			var vals []float64
			for _, p := range parts {
				if p != nil {
					vals = append(vals, p.floats[i]...)
				}
			}
			if vals == nil {
				vals = []float64{}
			}
			if err := out.AddFloat(it.name, vals); err != nil {
				return nil, err
			}
		}
	} else {
		merged := map[string]*groupPartial{}
		var order []*groupPartial
		for _, p := range parts {
			if p == nil {
				continue
			}
			for _, g := range p.groups {
				m, ok := merged[g.key]
				if !ok {
					m = &groupPartial{key: g.key, rows: g.rows, first: g.first, aggs: append([]aggState(nil), g.aggs...)}
					merged[g.key] = m
					order = append(order, m)
					continue
				}
				m.rows += g.rows
				for i := range m.aggs {
					m.aggs[i].sum += g.aggs[i].sum
					m.aggs[i].cnt += g.aggs[i].cnt
					m.aggs[i].min = min(m.aggs[i].min, g.aggs[i].min)
					m.aggs[i].max = max(m.aggs[i].max, g.aggs[i].max)
				}
			}
		}
		if len(pl.q.groupBy) == 0 && len(order) == 0 {
			order = append(order, pl.emptyGroup())
		}
		cols := make([][]float64, len(pl.items))
		for _, g := range order {
			for i, it := range pl.items {
				v, err := pl.finalEval(it.ex, g)
				if err != nil {
					return nil, err
				}
				cols[i] = append(cols[i], v)
			}
		}
		for i, it := range pl.items {
			vals := cols[i]
			if vals == nil {
				vals = []float64{}
			}
			if err := out.AddFloat(it.name, vals); err != nil {
				return nil, err
			}
		}
	}
	var err error
	if len(pl.q.orderBy) > 0 {
		out, err = orderFrame(out, pl.q.orderBy)
		if err != nil {
			return nil, err
		}
	}
	if pl.q.limit >= 0 {
		out = out.Head(pl.q.limit)
	}
	return out, nil
}

// renderExpr renders an expression to a canonical string — the identity
// key deduplicating aggregate calls across select items.
func renderExpr(e expr) string {
	switch x := e.(type) {
	case numLit:
		return strconv.FormatFloat(x.v, 'g', -1, 64)
	case strLit:
		return strconv.Quote(x.v)
	case colRef:
		return x.name
	case unary:
		return "(" + x.op + " " + renderExpr(x.x) + ")"
	case binary:
		return "(" + renderExpr(x.l) + x.op + renderExpr(x.r) + ")"
	case call:
		if x.star {
			return x.name + "(*)"
		}
		args := make([]string, len(x.args))
		for i, a := range x.args {
			args[i] = renderExpr(a)
		}
		return x.name + "(" + strings.Join(args, ",") + ")"
	}
	return fmt.Sprintf("%T", e)
}

// QueryArrays parses and executes sql against the named array tables with
// chunk pushdown: prune via zone maps, project referenced columns,
// announce and read only surviving chunks, fuse filter+project+aggregate
// into one pass per chunk on the data plane, and merge in chunk order.
func QueryArrays(tables map[string]ArrayTable, sql string, opts ArrayQueryOpts) (*rframe.Frame, *ScanStats, error) {
	q, err := parse(sql)
	if err != nil {
		return nil, nil, err
	}
	t, ok := tables[q.from]
	if !ok {
		return nil, nil, fmt.Errorf("rsql: no table %q", q.from)
	}
	pl, err := CompileArray(sql, t.Columns())
	if err != nil {
		return nil, nil, err
	}

	var sp *obs.Span
	if opts.Obs != nil {
		sp = opts.Obs.StartSpan("rsql/query", "query", nil)
		sp.Arg("table", pl.From())
		sp.Arg("mode", opts.Mode.String())
	}

	payload := true
	if pr, ok := t.(Projector); ok {
		payload = pr.Project(pl.Refs())
	}
	st, survivors := pl.Stats(t, opts.Mode, payload)

	t.Announce(survivors)
	parts := make([]*ChunkPartial, len(survivors))
	errs := make([]error, len(survivors))
	var futs []*sim.Future
	for k, ci := range survivors {
		ch, err := t.Read(ci)
		if err != nil {
			t.Join(futs...)
			return nil, nil, err
		}
		k, ch := k, ch
		if fut := t.Fork(func() { parts[k], errs[k] = pl.ScanChunk(ch) }); fut != nil {
			futs = append(futs, fut)
		}
	}
	t.Join(futs...)
	for _, e := range errs {
		if e != nil {
			return nil, nil, e
		}
	}
	for _, p := range parts {
		st.RowsMatched += p.Rows()
	}
	out, err := pl.Finalize(parts)
	if err != nil {
		return nil, nil, err
	}

	if opts.Obs != nil {
		opts.Obs.Counter("query/chunks_scanned_total").Add(float64(st.ChunksScanned))
		opts.Obs.Counter("query/chunks_skipped_total").Add(float64(st.ChunksSkipped))
		opts.Obs.Counter("query/bytes_avoided_total").Add(float64(st.BytesAvoided))
		sp.Arg("chunks_scanned", st.ChunksScanned)
		sp.Arg("chunks_skipped", st.ChunksSkipped)
		sp.Arg("bytes_avoided", st.BytesAvoided)
		sp.Arg("rows_matched", st.RowsMatched)
		sp.End()
	}
	return out, st, nil
}

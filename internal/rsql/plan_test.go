package rsql

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"scidp/internal/rframe"
	"scidp/internal/sim"
)

// fakeTable is an in-memory ArrayTable: one chunk per level, six rows per
// chunk, with lat cycling 0..5 and a synthetic float value column. It
// records which chunks were read so tests can prove skipped chunks never
// decode, and which columns the planner projected.
type fakeTable struct {
	levels    int
	vals      [][]float64 // [chunk][row]
	reads     []int
	projected []string
	payload   bool
}

const fakeRowsPerChunk = 6

func newFakeTable(levels int) *fakeTable {
	t := &fakeTable{levels: levels, payload: true}
	for l := 0; l < levels; l++ {
		rows := make([]float64, fakeRowsPerChunk)
		for r := range rows {
			rows[r] = math.Sin(float64(l*fakeRowsPerChunk+r)/3.0) + float64(l)
		}
		t.vals = append(t.vals, rows)
	}
	return t
}

func (t *fakeTable) Columns() []ColumnInfo {
	return []ColumnInfo{{Name: "level", Int: true}, {Name: "lat", Int: true}, {Name: "value"}}
}

func (t *fakeTable) NumChunks() int { return t.levels }

func (t *fakeTable) Meta(i int) ChunkMeta {
	mn, mx := math.Inf(1), math.Inf(-1)
	for _, v := range t.vals[i] {
		mn, mx = math.Min(mn, v), math.Max(mx, v)
	}
	return ChunkMeta{
		Rows:        fakeRowsPerChunk,
		RawBytes:    int64(fakeRowsPerChunk * 8),
		StoredBytes: int64(fakeRowsPerChunk * 5),
		Bounds: map[string]Interval{
			"level": {Lo: float64(i), Hi: float64(i)},
			"lat":   {Lo: 0, Hi: fakeRowsPerChunk - 1},
			"value": {Lo: mn, Hi: mx},
		},
	}
}

func (t *fakeTable) Announce(chunks []int) {}

func (t *fakeTable) Read(i int) (Chunk, error) {
	t.reads = append(t.reads, i)
	return &fakeChunk{t: t, ci: i}, nil
}

func (t *fakeTable) Fork(fn func()) *sim.Future { fn(); return nil }
func (t *fakeTable) Join(futs ...*sim.Future)   {}

func (t *fakeTable) Project(cols []string) bool {
	t.projected = append([]string(nil), cols...)
	t.payload = false
	for _, c := range cols {
		if c == "value" {
			t.payload = true
		}
	}
	return t.payload
}

type fakeChunk struct {
	t  *fakeTable
	ci int
}

func (c *fakeChunk) NumRows() int { return fakeRowsPerChunk }

func (c *fakeChunk) Col(name string) (func(int) float64, error) {
	switch name {
	case "level":
		l := float64(c.ci)
		return func(int) float64 { return l }, nil
	case "lat":
		return func(r int) float64 { return float64(r) }, nil
	case "value":
		vals := c.t.vals[c.ci]
		return func(r int) float64 { return vals[r] }, nil
	}
	return nil, errNoCol
}

var errNoCol = &compileError{"fake: no such column"}

type compileError struct{ msg string }

func (e *compileError) Error() string { return e.msg }

// legacyFrame materializes the fake table as an rframe.Frame in the same
// global row order (chunk order × row order) for oracle comparison
// against the legacy row-at-a-time executor.
func (t *fakeTable) legacyFrame() *rframe.Frame {
	var level, lat []int64
	var value []float64
	for ci := range t.vals {
		for r, v := range t.vals[ci] {
			level = append(level, int64(ci))
			lat = append(lat, int64(r))
			value = append(value, v)
		}
	}
	return rframe.New().MustAddInt("level", level).MustAddInt("lat", lat).MustAddFloat("value", value)
}

func runArray(t *testing.T, sql string, mode PushdownMode) (*rframe.Frame, *ScanStats, *fakeTable) {
	t.Helper()
	ft := newFakeTable(8)
	out, st, err := QueryArrays(map[string]ArrayTable{"t": ft}, sql, ArrayQueryOpts{Mode: mode})
	if err != nil {
		t.Fatalf("QueryArrays(%q, %s): %v", sql, mode, err)
	}
	return out, st, ft
}

var planQueries = []string{
	`SELECT * FROM t`,
	`SELECT * FROM t WHERE level = 3`,
	`SELECT lat, value FROM t WHERE level = 3 AND lat < 4 ORDER BY value DESC LIMIT 3`,
	`SELECT value * 2 + 1 AS scaled, -value AS neg FROM t WHERE level >= 6 ORDER BY neg LIMIT 5`,
	`SELECT ABS(value) AS mag FROM t WHERE value < 0.5 AND NOT (level = 0) ORDER BY mag DESC`,
	`SELECT level FROM t WHERE lat = 2 OR lat = 4 ORDER BY level`,
	`SELECT level, COUNT(*), SUM(value), MIN(value), MAX(value), AVG(value) FROM t WHERE value > 1.0 GROUP BY level ORDER BY level`,
	`SELECT COUNT(*), SUM(value) FROM t WHERE value > 100`,
	`SELECT SUM(value) + COUNT(*) FROM t WHERE level = 2 AND value > 2.0`,
	`SELECT SQRT(ABS(value)) AS root, value FROM t WHERE level <= 1 ORDER BY value LIMIT 4`,
}

// TestPushdownMatchesOracle runs every query in both modes and demands
// byte-identical CSV output, while pushdown must read no more chunks than
// the oracle.
func TestPushdownMatchesOracle(t *testing.T) {
	for _, sql := range planQueries {
		push, pst, pft := runArray(t, sql, Pushdown)
		oracle, ost, _ := runArray(t, sql, PushdownOff)
		if !bytes.Equal(push.WriteCSV(), oracle.WriteCSV()) {
			t.Fatalf("%q: pushdown and oracle differ:\n%s\nvs\n%s", sql, push.WriteCSV(), oracle.WriteCSV())
		}
		if ost.ChunksScanned != 8 || ost.ChunksSkipped != 0 {
			t.Fatalf("%q: oracle scanned %d skipped %d", sql, ost.ChunksScanned, ost.ChunksSkipped)
		}
		if pst.ChunksScanned+pst.ChunksSkipped != pst.ChunksTotal {
			t.Fatalf("%q: stats don't add up: %+v", sql, pst)
		}
		if len(pft.reads) != pst.ChunksScanned {
			t.Fatalf("%q: %d reads but %d chunks reported scanned", sql, len(pft.reads), pst.ChunksScanned)
		}
	}
}

// TestPruningSkipsReads checks the skip-list itself: equality on the
// chunking coordinate reads exactly one chunk, and the skipped bytes are
// accounted.
func TestPruningSkipsReads(t *testing.T) {
	_, st, ft := runArray(t, `SELECT value FROM t WHERE level = 3`, Pushdown)
	if len(ft.reads) != 1 || ft.reads[0] != 3 {
		t.Fatalf("reads = %v, want [3]", ft.reads)
	}
	if st.ChunksScanned != 1 || st.ChunksSkipped != 7 || st.ChunksTotal != 8 {
		t.Fatalf("stats %+v", st)
	}
	if st.BytesAvoided != 7*fakeRowsPerChunk*8 || st.BytesInflated != fakeRowsPerChunk*8 {
		t.Fatalf("byte accounting %+v", st)
	}
	if st.StoredAvoided != 7*fakeRowsPerChunk*5 {
		t.Fatalf("stored accounting %+v", st)
	}

	// Zone-map pruning on the value column: only high levels can exceed 6.
	_, st2, ft2 := runArray(t, `SELECT value FROM t WHERE value > 6.5`, Pushdown)
	if st2.ChunksSkipped == 0 {
		t.Fatalf("value predicate should prune: %+v", st2)
	}
	for _, ci := range ft2.reads {
		if ci < 6 {
			t.Fatalf("read chunk %d whose max value cannot exceed 6.5", ci)
		}
	}

	// An unsatisfiable predicate prunes everything; the result must still
	// match the oracle (zero rows, or the synthesized empty aggregate).
	out, st3, ft3 := runArray(t, `SELECT value FROM t WHERE level = 99`, Pushdown)
	if len(ft3.reads) != 0 || st3.ChunksScanned != 0 {
		t.Fatalf("nothing should be read: reads=%v stats=%+v", ft3.reads, st3)
	}
	if out.NumRows() != 0 {
		t.Fatalf("want empty frame, got %d rows", out.NumRows())
	}
}

// TestProjectionRefs checks the planner narrows tables to referenced
// columns and drops payload decoding when only geometry columns appear.
func TestProjectionRefs(t *testing.T) {
	_, _, ft := runArray(t, `SELECT level FROM t WHERE lat < 3`, Pushdown)
	if strings.Join(ft.projected, ",") != "level,lat" {
		t.Fatalf("projected %v, want [level lat]", ft.projected)
	}
	if ft.payload {
		t.Fatal("payload should be projected out when value is unreferenced")
	}
	_, _, ft2 := runArray(t, `SELECT lat FROM t WHERE value > 0`, Pushdown)
	if !ft2.payload {
		t.Fatal("payload must stay when WHERE references value")
	}
}

// TestArrayVsLegacy runs each query through the array planner and the
// legacy row-at-a-time executor over a materialized frame of the same
// rows. Non-aggregate results must match exactly; SUM/AVG may differ in
// the last bits because partial sums merge in chunk order, so aggregates
// compare within a relative tolerance.
func TestArrayVsLegacy(t *testing.T) {
	for _, sql := range planQueries {
		got, _, ft := runArray(t, sql, Pushdown)
		want, err := Query(map[string]*rframe.Frame{"t": ft.legacyFrame()}, sql)
		if err != nil {
			t.Fatalf("legacy %q: %v", sql, err)
		}
		framesClose(t, sql, got, want, 1e-12)
	}
}

func framesClose(t *testing.T, sql string, got, want *rframe.Frame, tol float64) {
	t.Helper()
	if got.NumRows() != want.NumRows() || got.NumCols() != want.NumCols() {
		t.Fatalf("%q: shape %dx%d, want %dx%d\n%s\nvs\n%s", sql,
			got.NumRows(), got.NumCols(), want.NumRows(), want.NumCols(), got.WriteCSV(), want.WriteCSV())
	}
	gn, wn := got.Names(), want.Names()
	for i := range gn {
		if gn[i] != wn[i] {
			t.Fatalf("%q: column %d named %q, want %q", sql, i, gn[i], wn[i])
		}
		gc, wc := got.Col(gn[i]), want.Col(wn[i])
		for r := 0; r < got.NumRows(); r++ {
			a, b := gc.Float64At(r), wc.Float64At(r)
			if a == b || (math.IsNaN(a) && math.IsNaN(b)) {
				continue
			}
			if math.Abs(a-b) <= tol*math.Max(math.Abs(a), math.Abs(b)) {
				continue
			}
			t.Fatalf("%q: col %s row %d: %v vs legacy %v", sql, gn[i], r, a, b)
		}
	}
}

// TestEmptyAggregateMatchesLegacy pins the synthesized zero-row group to
// the legacy executor's semantics.
func TestEmptyAggregateMatchesLegacy(t *testing.T) {
	sql := `SELECT COUNT(*), SUM(value), MIN(value), MAX(value), AVG(value) FROM t WHERE value > 1e9`
	got, _, ft := runArray(t, sql, Pushdown)
	want, err := Query(map[string]*rframe.Frame{"t": ft.legacyFrame()}, sql)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.WriteCSV(), want.WriteCSV()) {
		t.Fatalf("empty aggregate differs:\n%svs\n%s", got.WriteCSV(), want.WriteCSV())
	}
}

// TestBoundsExtraction checks the predicate intervals the planner hands
// to pruning.
func TestBoundsExtraction(t *testing.T) {
	cols := []ColumnInfo{{Name: "level", Int: true}, {Name: "lat", Int: true}, {Name: "value"}}
	pl, err := CompileArray(`SELECT value FROM t WHERE level >= 2 AND level < 5 AND 3 <= lat AND value > 0.5 AND (lat = 1 OR level = 2)`, cols)
	if err != nil {
		t.Fatal(err)
	}
	b := pl.Bounds()
	// Strict comparisons widen to the closed interval — a conservative
	// over-approximation that is always safe for pruning.
	if iv := b["level"]; iv.Lo != 2 || iv.Hi != 5 {
		t.Fatalf("level bounds %+v", iv)
	}
	// The flipped literal-first orientation must still register, and the
	// OR disjunct must not tighten lat's upper bound.
	if iv := b["lat"]; iv.Lo != 3 || iv.Hi < 5 {
		t.Fatalf("lat bounds %+v", iv)
	}
	if iv := b["value"]; iv.Lo != 0.5 || !math.IsInf(iv.Hi, 1) {
		t.Fatalf("value bounds %+v", iv)
	}
}

// TestCompileArrayErrors checks schema validation.
func TestCompileArrayErrors(t *testing.T) {
	cols := []ColumnInfo{{Name: "level", Int: true}, {Name: "value"}}
	for _, sql := range []string{
		`SELECT nope FROM t`,
		`SELECT value FROM t WHERE name = 'x'`,
		`SELECT value FROM t WHERE SUM(value) > 1`,
		`SELECT *, COUNT(*) FROM t`,
		`SELECT NOPEFN(value) FROM t`,
		`SELECT value FROM t GROUP BY nope`,
	} {
		if _, err := CompileArray(sql, cols); err == nil {
			t.Fatalf("%q should not compile", sql)
		}
	}
	if _, _, err := QueryArrays(map[string]ArrayTable{"t": newFakeTable(2)}, `SELECT value FROM missing`, ArrayQueryOpts{}); err == nil {
		t.Fatal("unknown table should fail")
	}
}

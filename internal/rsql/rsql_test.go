package rsql

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"scidp/internal/rframe"
)

func grid(t *testing.T) map[string]*rframe.Frame {
	t.Helper()
	// 12 cells: lat 0..2, lon 0..3, value = lat*10 + lon.
	var lat, lon []int64
	var val []float64
	for a := int64(0); a < 3; a++ {
		for b := int64(0); b < 4; b++ {
			lat = append(lat, a)
			lon = append(lon, b)
			val = append(val, float64(a*10+b))
		}
	}
	f := rframe.New().MustAddInt("lat", lat).MustAddInt("lon", lon).MustAddFloat("value", val)
	return map[string]*rframe.Frame{"df": f}
}

func q(t *testing.T, tables map[string]*rframe.Frame, sql string) *rframe.Frame {
	t.Helper()
	out, err := Query(tables, sql)
	if err != nil {
		t.Fatalf("query %q: %v", sql, err)
	}
	return out
}

func TestSelectStar(t *testing.T) {
	out := q(t, grid(t), "SELECT * FROM df")
	if out.NumRows() != 12 || out.NumCols() != 3 {
		t.Fatalf("shape = %dx%d", out.NumRows(), out.NumCols())
	}
}

func TestWhereFilter(t *testing.T) {
	out := q(t, grid(t), "SELECT * FROM df WHERE value >= 20 AND lon < 2")
	if out.NumRows() != 2 {
		t.Fatalf("rows = %d", out.NumRows())
	}
	for i := 0; i < out.NumRows(); i++ {
		if out.Col("lat").I[i] != 2 {
			t.Fatalf("row %d lat = %d", i, out.Col("lat").I[i])
		}
	}
}

func TestProjectionAndAlias(t *testing.T) {
	out := q(t, grid(t), "SELECT value * 2 AS double, lat FROM df WHERE lat = 1")
	if out.NumCols() != 2 || out.Names()[0] != "double" {
		t.Fatalf("names = %v", out.Names())
	}
	if out.Col("double").F[0] != 20 {
		t.Fatalf("double[0] = %v", out.Col("double").F[0])
	}
}

func TestOrderByDescLimit(t *testing.T) {
	out := q(t, grid(t), "SELECT value FROM df ORDER BY value DESC LIMIT 3")
	want := []float64{23, 22, 21}
	if out.NumRows() != 3 {
		t.Fatalf("rows = %d", out.NumRows())
	}
	for i, w := range want {
		if out.Col("value").F[i] != w {
			t.Fatalf("row %d = %v, want %v", i, out.Col("value").F[i], w)
		}
	}
}

func TestOrderByMultiKey(t *testing.T) {
	out := q(t, grid(t), "SELECT lat, lon FROM df ORDER BY lat DESC, lon ASC LIMIT 2")
	if out.Col("lat").F[0] != 2 || out.Col("lon").F[0] != 0 {
		t.Fatalf("first row = %v,%v", out.Col("lat").F[0], out.Col("lon").F[0])
	}
	if out.Col("lon").F[1] != 1 {
		t.Fatalf("second lon = %v", out.Col("lon").F[1])
	}
}

func TestGlobalAggregates(t *testing.T) {
	out := q(t, grid(t), "SELECT COUNT(*), SUM(value), AVG(value), MIN(value), MAX(value) FROM df")
	if out.NumRows() != 1 {
		t.Fatalf("rows = %d", out.NumRows())
	}
	if out.Col("count").F[0] != 12 {
		t.Fatalf("count = %v", out.Col("count").F[0])
	}
	if out.Col("sum").F[0] != 138 {
		t.Fatalf("sum = %v", out.Col("sum").F[0])
	}
	if math.Abs(out.Col("avg").F[0]-11.5) > 1e-12 {
		t.Fatalf("avg = %v", out.Col("avg").F[0])
	}
	if out.Col("min").F[0] != 0 || out.Col("max").F[0] != 23 {
		t.Fatalf("min/max = %v/%v", out.Col("min").F[0], out.Col("max").F[0])
	}
}

func TestGroupBy(t *testing.T) {
	out := q(t, grid(t), "SELECT lat, SUM(value) AS total FROM df GROUP BY lat ORDER BY lat")
	if out.NumRows() != 3 {
		t.Fatalf("groups = %d", out.NumRows())
	}
	want := []float64{6, 46, 86}
	for i, w := range want {
		if out.Col("total").F[i] != w {
			t.Fatalf("group %d total = %v, want %v", i, out.Col("total").F[i], w)
		}
	}
}

func TestGroupByWithWhereAndHavingViaWhere(t *testing.T) {
	out := q(t, grid(t), "SELECT lat, COUNT(*) AS n FROM df WHERE lon >= 2 GROUP BY lat")
	if out.NumRows() != 3 {
		t.Fatalf("groups = %d", out.NumRows())
	}
	for i := 0; i < 3; i++ {
		if out.Col("n").F[i] != 2 {
			t.Fatalf("group %d n = %v", i, out.Col("n").F[i])
		}
	}
}

func TestScalarFunctions(t *testing.T) {
	tables := map[string]*rframe.Frame{
		"t": rframe.New().MustAddFloat("x", []float64{-4, 9}),
	}
	out := q(t, tables, "SELECT ABS(x) AS a, SQRT(ABS(x)) AS s FROM t")
	if out.Col("a").F[0] != 4 || out.Col("s").F[1] != 3 {
		t.Fatalf("a=%v s=%v", out.Col("a").F, out.Col("s").F)
	}
}

func TestStringComparison(t *testing.T) {
	tables := map[string]*rframe.Frame{
		"t": rframe.New().MustAddString("name", []string{"alice", "bob", "carol"}).
			MustAddFloat("score", []float64{3, 1, 2}),
	}
	out := q(t, tables, "SELECT name FROM t WHERE name <> 'bob' ORDER BY name DESC")
	if out.NumRows() != 2 || out.Col("name").S[0] != "carol" {
		t.Fatalf("out = %v", out.Col("name").S)
	}
}

func TestArithmeticPrecedence(t *testing.T) {
	tables := map[string]*rframe.Frame{"t": rframe.New().MustAddFloat("x", []float64{10})}
	out := q(t, tables, "SELECT 2 + 3 * x - 4 / 2 AS r, -x AS neg, (2+3) * 2 AS paren FROM t")
	if out.Col("r").F[0] != 30 {
		t.Fatalf("r = %v", out.Col("r").F[0])
	}
	if out.Col("neg").F[0] != -10 {
		t.Fatalf("neg = %v", out.Col("neg").F[0])
	}
	if out.Col("paren").F[0] != 10 {
		t.Fatalf("paren = %v", out.Col("paren").F[0])
	}
}

func TestNotAndOrPrecedence(t *testing.T) {
	out := q(t, grid(t), "SELECT value FROM df WHERE NOT lat = 0 AND lon = 0 OR value = 3")
	// (NOT lat=0 AND lon=0) OR value=3 -> rows: (1,0)=10, (2,0)=20, (0,3)=3.
	got := append([]float64(nil), out.Col("value").F...)
	sort.Float64s(got)
	want := []float64{3, 10, 20}
	if len(got) != 3 {
		t.Fatalf("rows = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestTop1PercentPattern(t *testing.T) {
	// The paper's "top 1%" analysis: sort desc, limit ceil(n/100).
	n := 500
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(i * 7 % 501)
	}
	tables := map[string]*rframe.Frame{"df": rframe.New().MustAddFloat("value", vals)}
	out := q(t, tables, "SELECT value FROM df ORDER BY value DESC LIMIT 5")
	if out.NumRows() != 5 {
		t.Fatalf("rows = %d", out.NumRows())
	}
	for i := 1; i < 5; i++ {
		if out.Col("value").F[i] > out.Col("value").F[i-1] {
			t.Fatal("not descending")
		}
	}
}

func TestErrors(t *testing.T) {
	tables := grid(t)
	cases := []string{
		"SELEKT * FROM df",
		"SELECT * FROM missing",
		"SELECT nope FROM df",
		"SELECT * FROM df WHERE",
		"SELECT SUM(value) FROM df GROUP BY ghost",
		"SELECT value FROM df LIMIT -1",
		"SELECT value FROM df extra",
		"SELECT * , SUM(value) FROM df",
		"SELECT SUM(value, lat) FROM df",
		"SELECT FOO(value) FROM df",
		"SELECT value + name FROM df2",
		"SELECT 'unterminated FROM df",
	}
	for _, sql := range cases {
		if _, err := Query(tables, sql); err == nil {
			t.Errorf("query %q should fail", sql)
		}
	}
}

func TestAggregateInWhereRejected(t *testing.T) {
	if _, err := Query(grid(t), "SELECT value FROM df WHERE SUM(value) > 3"); err == nil {
		t.Fatal("aggregate in WHERE should be rejected")
	}
}

func TestEmptyResultShapes(t *testing.T) {
	out := q(t, grid(t), "SELECT value FROM df WHERE value > 1000")
	if out.NumRows() != 0 || out.NumCols() != 1 {
		t.Fatalf("shape = %dx%d", out.NumRows(), out.NumCols())
	}
	// Global aggregate over empty set still yields one row.
	out = q(t, grid(t), "SELECT COUNT(*) AS n FROM df WHERE value > 1000")
	if out.NumRows() != 1 || out.Col("n").F[0] != 0 {
		t.Fatalf("count over empty = %+v", out.Col("n").F)
	}
}

func TestCaseInsensitiveKeywords(t *testing.T) {
	out := q(t, grid(t), "select value from df where value = 12 order by value limit 1")
	if out.NumRows() != 1 || out.Col("value").F[0] != 12 {
		t.Fatalf("out = %+v", out.Col("value"))
	}
}

// TestSumMatchesManual: SUM over a WHERE subset equals a hand computation
// for arbitrary data.
func TestSumMatchesManual(t *testing.T) {
	f := func(vals []int8, threshold int8) bool {
		fv := make([]float64, len(vals))
		var want float64
		for i, v := range vals {
			fv[i] = float64(v)
			if float64(v) > float64(threshold) {
				want += float64(v)
			}
		}
		tables := map[string]*rframe.Frame{"t": rframe.New().MustAddFloat("x", fv)}
		out, err := Query(tables, "SELECT SUM(x) AS s FROM t WHERE x > "+formatFloat(float64(threshold)))
		if err != nil {
			return false
		}
		return out.Col("s").F[0] == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestOrderLimitMatchesSort: ORDER BY DESC LIMIT k equals the top-k of a
// reference sort.
func TestOrderLimitMatchesSort(t *testing.T) {
	f := func(vals []int16, k8 uint8) bool {
		if len(vals) == 0 {
			return true
		}
		fv := make([]float64, len(vals))
		for i, v := range vals {
			fv[i] = float64(v)
		}
		k := int(k8)%len(fv) + 1
		tables := map[string]*rframe.Frame{"t": rframe.New().MustAddFloat("x", fv)}
		out, err := Query(tables, "SELECT x FROM t ORDER BY x DESC LIMIT "+itoa(k))
		if err != nil {
			return false
		}
		ref := append([]float64(nil), fv...)
		sort.Sort(sort.Reverse(sort.Float64Slice(ref)))
		for i := 0; i < k; i++ {
			if out.Col("x").F[i] != ref[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func formatFloat(v float64) string {
	if v < 0 {
		return "0 - " + formatFloat(-v)
	}
	return itoa(int(v))
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var digits []byte
	for v > 0 {
		digits = append([]byte{byte('0' + v%10)}, digits...)
		v /= 10
	}
	return string(digits)
}

func TestModuloAndCountColumn(t *testing.T) {
	tables := map[string]*rframe.Frame{
		"t": rframe.New().MustAddFloat("x", []float64{1, 2, 3, 4, 5}),
	}
	out := q(t, tables, "SELECT x FROM t WHERE x % 2 = 1")
	if out.NumRows() != 3 {
		t.Fatalf("odd rows = %d", out.NumRows())
	}
	out = q(t, tables, "SELECT COUNT(x) AS n FROM t WHERE x > 2")
	if out.Col("n").F[0] != 3 {
		t.Fatalf("count(x) = %v", out.Col("n").F[0])
	}
}

func TestAggregateExpressions(t *testing.T) {
	tables := map[string]*rframe.Frame{
		"t": rframe.New().MustAddFloat("x", []float64{3, 4}),
	}
	// Arithmetic over aggregates and scalar functions of aggregates.
	out := q(t, tables, "SELECT MAX(x) - MIN(x) AS spread, SQRT(SUM(x * x)) AS norm, -SUM(x) AS neg FROM t")
	if out.Col("spread").F[0] != 1 {
		t.Fatalf("spread = %v", out.Col("spread").F[0])
	}
	if out.Col("norm").F[0] != 5 {
		t.Fatalf("norm = %v", out.Col("norm").F[0])
	}
	if out.Col("neg").F[0] != -7 {
		t.Fatalf("neg = %v", out.Col("neg").F[0])
	}
}

func TestGroupByMultipleKeys(t *testing.T) {
	tables := grid(t)
	out := q(t, tables, "SELECT lat, lon, COUNT(*) AS n FROM df GROUP BY lat, lon")
	if out.NumRows() != 12 {
		t.Fatalf("groups = %d", out.NumRows())
	}
	for i := 0; i < out.NumRows(); i++ {
		if out.Col("n").F[i] != 1 {
			t.Fatalf("group %d count = %v", i, out.Col("n").F[i])
		}
	}
}

func TestOrderByMixedTypesRejected(t *testing.T) {
	tables := map[string]*rframe.Frame{
		"t": rframe.New().MustAddString("s", []string{"a", "b"}).MustAddFloat("x", []float64{1, 2}),
	}
	// Mixing a string column and a number in one ORDER BY comparison.
	if _, err := Query(tables, "SELECT s, x FROM t ORDER BY s, x"); err != nil {
		t.Fatalf("two homogeneous keys should work: %v", err)
	}
}

func TestStringArithmeticRejected(t *testing.T) {
	tables := map[string]*rframe.Frame{
		"t": rframe.New().MustAddString("s", []string{"a"}),
	}
	if _, err := Query(tables, "SELECT s + 1 FROM t"); err == nil {
		t.Fatal("string + number should fail")
	}
	if _, err := Query(tables, "SELECT s + s FROM t"); err == nil {
		t.Fatal("string + string should fail")
	}
	out := q(t, tables, "SELECT s FROM t WHERE s >= 'a'")
	if out.NumRows() != 1 {
		t.Fatal("string comparison should work")
	}
}

func TestNotPrecedenceAndLiterals(t *testing.T) {
	tables := map[string]*rframe.Frame{
		"t": rframe.New().MustAddFloat("x", []float64{0, 1}),
	}
	out := q(t, tables, "SELECT x FROM t WHERE NOT x = 1")
	if out.NumRows() != 1 || out.Col("x").F[0] != 0 {
		t.Fatalf("NOT result = %+v", out.Col("x").F)
	}
	out = q(t, tables, "SELECT 'lit' AS l, 2.5e1 AS n FROM t LIMIT 1")
	if out.Col("l").S[0] != "lit" || out.Col("n").F[0] != 25 {
		t.Fatalf("literals = %v %v", out.Col("l").S, out.Col("n").F)
	}
}

func TestLexerEdgeCases(t *testing.T) {
	tables := map[string]*rframe.Frame{
		"t": rframe.New().MustAddFloat("x", []float64{1}),
	}
	if _, err := Query(tables, "SELECT x FROM t WHERE x @ 1"); err == nil {
		t.Error("unknown character should fail")
	}
	out := q(t, tables, "SELECT x FROM t WHERE x <> 2 AND x != 3")
	if out.NumRows() != 1 {
		t.Error("both not-equal spellings should work")
	}
	out = q(t, tables, "SELECT .5 + x AS y FROM t")
	if out.Col("y").F[0] != 1.5 {
		t.Errorf("leading-dot number = %v", out.Col("y").F[0])
	}
}

func TestGroupKeyStringColumn(t *testing.T) {
	tables := map[string]*rframe.Frame{
		"t": rframe.New().
			MustAddString("site", []string{"a", "b", "a", "a"}).
			MustAddFloat("v", []float64{1, 2, 3, 4}),
	}
	out := q(t, tables, "SELECT site, SUM(v) AS total FROM t GROUP BY site ORDER BY site")
	if out.NumRows() != 2 {
		t.Fatalf("groups = %d", out.NumRows())
	}
	if out.Col("site").S[0] != "a" || out.Col("total").F[0] != 8 {
		t.Fatalf("group a = %v/%v", out.Col("site").S[0], out.Col("total").F[0])
	}
}

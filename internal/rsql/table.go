package rsql

import "scidp/internal/sim"

// This file defines the array-table contract the pushdown planner runs
// against: a chunked array whose per-chunk metadata (geometry and
// write-time zone maps) is known before any I/O, whose chunks decode on
// demand, and whose fused-scan work can fork onto the simulation's data
// plane. The netcdf/hdf5lite adapters live in internal/aquery; sparklite
// drives the same plan over distributed partitions.

// ColumnInfo describes one column an ArrayTable exposes.
type ColumnInfo struct {
	// Name is the column name referenced from SQL.
	Name string
	// Int marks integer-valued columns (array coordinates, constants);
	// SELECT * keeps them as int64 output columns. Value columns are
	// float.
	Int bool
}

// Interval is a closed numeric range [Lo, Hi]. An inverted interval
// (Lo > Hi) is empty — how an all-fill chunk encodes its value bounds,
// since NaN fill fails every comparison.
type Interval struct {
	// Lo is the inclusive lower bound.
	Lo float64
	// Hi is the inclusive upper bound.
	Hi float64
}

// Disjoint reports whether a and b share no point.
func (a Interval) Disjoint(b Interval) bool { return a.Lo > b.Hi || a.Hi < b.Lo }

// ChunkMeta is everything the planner knows about one chunk before any
// I/O: row count, payload sizes, and per-column value bounds (coordinate
// bounds from chunk geometry, value bounds from the zone maps).
type ChunkMeta struct {
	// Rows is the number of rows the chunk contributes.
	Rows int
	// RawBytes is the decompressed payload size.
	RawBytes int64
	// StoredBytes is the on-disk payload size.
	StoredBytes int64
	// Bounds maps column name to its value interval within the chunk.
	// Columns without an entry are unbounded.
	Bounds map[string]Interval
}

// Chunk is one decoded chunk: column accessors over local row indices.
// Accessors must be pure — ScanChunk runs on the data plane.
type Chunk interface {
	// NumRows returns the chunk's row count.
	NumRows() int
	// Col returns an accessor for the named column's value at a local row.
	Col(name string) (func(row int) float64, error)
}

// ArrayTable is a chunked array a pushdown query scans.
type ArrayTable interface {
	// Columns lists the exposed columns.
	Columns() []ColumnInfo
	// NumChunks returns the chunk count.
	NumChunks() int
	// Meta returns chunk i's pre-I/O metadata.
	Meta(i int) ChunkMeta
	// Announce declares the surviving chunk list before reads, so a
	// prefetching source stages exactly those chunks.
	Announce(chunks []int)
	// Read decodes chunk i (the only per-chunk I/O a scan performs).
	Read(i int) (Chunk, error)
	// Fork submits pure scan work to the data plane (nil future = ran
	// inline); Join awaits the returned futures.
	Fork(fn func()) *sim.Future
	// Join blocks until every non-nil future has resolved.
	Join(futs ...*sim.Future)
}

package scifmt

import (
	"fmt"

	"scidp/internal/hdf5lite"
	"scidp/internal/netcdf"
)

// NetCDF returns the Format plugin for the netCDF-like format.
func NetCDF() Format { return netcdfFormat{} }

// HDF5 returns the Format plugin for the hierarchical hdf5lite format.
func HDF5() Format { return hdf5Format{} }

// Default returns a registry with both built-in formats installed, netCDF
// probed first (matching the paper's NU-WRF deployment).
func Default() *Registry {
	r := NewRegistry()
	r.Register(NetCDF())
	r.Register(HDF5())
	return r
}

// ---- netCDF adapter.

type netcdfFormat struct{}

func (netcdfFormat) Name() string { return "netcdf" }

func (netcdfFormat) Detect(r ReaderAt) bool { return netcdf.Detect(r) }

func (netcdfFormat) Explore(r ReaderAt) (*Info, error) {
	f, err := netcdf.Open(r)
	if err != nil {
		return nil, err
	}
	info := &Info{Format: "netcdf", Attrs: map[string]string{}}
	for _, a := range f.GlobalAttrs() {
		info.Attrs[a.Name] = attrString(a)
	}
	for _, v := range f.Vars() {
		entry := VarEntry{
			Path:        v.Name,
			TypeName:    v.Type.String(),
			ElemSize:    v.Type.Size(),
			Shape:       v.Shape(),
			RawBytes:    v.RawBytes(),
			StoredBytes: v.StoredBytes(),
		}
		for _, d := range v.Dims {
			entry.DimNames = append(entry.DimNames, d.Name)
		}
		for _, c := range v.Chunks {
			start, extent := chunkBox(v.Shape(), v.ChunkShape, c.Index)
			entry.Segments = append(entry.Segments, Segment{
				Offset:     c.Offset,
				StoredSize: c.StoredSize,
				RawSize:    c.RawSize,
				Start:      start,
				Extent:     extent,
			})
		}
		info.Vars = append(info.Vars, entry)
	}
	return info, nil
}

func (netcdfFormat) ReadSlab(r ReaderAt, varPath string, start, count []int) ([]byte, error) {
	f, err := netcdf.Open(r)
	if err != nil {
		return nil, err
	}
	arr, err := f.GetVara(varPath, start, count)
	if err != nil {
		return nil, err
	}
	return arr.Data, nil
}

// chunkBox computes a chunk's global start and clamped extent.
func chunkBox(shape, chunkShape, index []int) (start, extent []int) {
	start = make([]int, len(shape))
	extent = make([]int, len(shape))
	if chunkShape == nil {
		copy(extent, shape)
		return start, extent
	}
	for i := range shape {
		start[i] = index[i] * chunkShape[i]
		e := chunkShape[i]
		if start[i]+e > shape[i] {
			e = shape[i] - start[i]
		}
		extent[i] = e
	}
	return start, extent
}

func attrString(a netcdf.Attr) string {
	switch a.Kind {
	case netcdf.AttrString:
		return a.Str
	case netcdf.AttrFloat64:
		return fmt.Sprintf("%g", a.F64)
	case netcdf.AttrInt64:
		return fmt.Sprintf("%d", a.I64)
	}
	return ""
}

// ---- hdf5lite adapter.

type hdf5Format struct{}

func (hdf5Format) Name() string { return "hdf5" }

func (hdf5Format) Detect(r ReaderAt) bool { return hdf5lite.IsHDF5(r) }

func (hdf5Format) Explore(r ReaderAt) (*Info, error) {
	f, err := hdf5lite.Open(r)
	if err != nil {
		return nil, err
	}
	info := &Info{Format: "hdf5", Attrs: map[string]string{}}
	for k, v := range f.Root().Attrs {
		info.Attrs[k] = v
	}
	var walk func(g *hdf5lite.Group, prefix string)
	walk = func(g *hdf5lite.Group, prefix string) {
		for _, d := range g.Datasets {
			entry := VarEntry{
				Path:        JoinPath(prefix, d.Name),
				TypeName:    d.Type.String(),
				ElemSize:    d.Type.Size(),
				Shape:       append([]int(nil), d.Shape...),
				RawBytes:    d.RawBytes(),
				StoredBytes: d.StoredBytes(),
			}
			for _, c := range d.Chunks {
				start := make([]int, len(d.Shape))
				extent := append([]int(nil), d.Shape...)
				start[0] = c.RowStart
				extent[0] = c.Rows
				entry.Segments = append(entry.Segments, Segment{
					Offset:     c.Offset,
					StoredSize: c.StoredSize,
					RawSize:    c.RawSize,
					Start:      start,
					Extent:     extent,
				})
			}
			info.Vars = append(info.Vars, entry)
		}
		for _, c := range g.Children {
			walk(c, JoinPath(prefix, c.Name))
		}
	}
	walk(f.Root(), "")
	return info, nil
}

func (hdf5Format) ReadSlab(r ReaderAt, varPath string, start, count []int) ([]byte, error) {
	f, err := hdf5lite.Open(r)
	if err != nil {
		return nil, err
	}
	d, err := f.Find(varPath)
	if err != nil {
		return nil, err
	}
	if len(start) != len(d.Shape) || len(count) != len(d.Shape) {
		return nil, fmt.Errorf("scifmt/hdf5: slab rank %d != dataset rank %d", len(start), len(d.Shape))
	}
	// The hierarchical format chunks along the leading dimension only, so
	// slabs must span the trailing dimensions fully.
	for i := 1; i < len(d.Shape); i++ {
		if start[i] != 0 || count[i] != d.Shape[i] {
			return nil, fmt.Errorf("scifmt/hdf5: only leading-dimension slabs supported (dim %d: [%d,+%d) of %d)", i, start[i], count[i], d.Shape[i])
		}
	}
	return f.ReadRows(d, start[0], count[0])
}

// Package scifmt is the pluggable format layer behind SciDP's Sci-format
// Head Reader. The paper makes input-format support modular: "Users only
// need to provide a file structure explorer and a corresponding reader to
// add support of arbitrary file formats" (Section III-B). A Format couples
// those two pieces — Detect/Explore (the structure explorer) and ReadSlab
// (the reader) — and a Registry holds the installed formats so the File
// Explorer can classify each input file as scientific (some format
// detects it) or flat (none does).
package scifmt

import (
	"fmt"
	"strings"

	"scidp/internal/ioengine"
)

// ReaderAt is the random-access source formats parse — the shared
// ioengine view, so every plugin automatically reads through whatever
// cache/prefetch wrappers the caller bound.
type ReaderAt = ioengine.Source

// Segment locates one stored chunk of a variable within its file and the
// array box it decodes to — the unit SciDP's Data Mapper turns into a
// dummy HDFS block.
type Segment struct {
	// Offset is the chunk's absolute file offset.
	Offset int64
	// StoredSize is the on-disk (possibly compressed) payload length.
	StoredSize int64
	// RawSize is the decompressed payload length.
	RawSize int64
	// Start is the chunk origin in global array coordinates.
	Start []int
	// Extent is the chunk's (clamped) extent per dimension.
	Extent []int
}

// VarEntry describes one mappable variable of a scientific file.
type VarEntry struct {
	// Path is the variable's slash-separated location within the file —
	// a bare name for flat formats ("QR"), a group path for hierarchical
	// ones ("model/physics/QR"). It becomes the virtual file's path
	// under the mirrored HDFS directory.
	Path string
	// TypeName names the element type ("float", "int64", ...).
	TypeName string
	// ElemSize is the element width in bytes.
	ElemSize int
	// Shape is the variable extent per dimension.
	Shape []int
	// DimNames names the dimensions, parallel to Shape (may be empty for
	// formats without named dimensions).
	DimNames []string
	// Segments is the chunk index in storage order.
	Segments []Segment
	// RawBytes is the uncompressed variable payload size.
	RawBytes int64
	// StoredBytes is the on-disk payload size.
	StoredBytes int64
}

// Info is the explored structure of one scientific file.
type Info struct {
	// Format is the detecting format's name ("netcdf", "hdf5").
	Format string
	// Attrs are the file's global attributes, stringified.
	Attrs map[string]string
	// Vars lists every variable in file order.
	Vars []VarEntry
}

// Var returns the entry whose Path matches, or an error.
func (in *Info) Var(path string) (*VarEntry, error) {
	for i := range in.Vars {
		if in.Vars[i].Path == path {
			return &in.Vars[i], nil
		}
	}
	return nil, fmt.Errorf("scifmt: no variable %q in %s file", path, in.Format)
}

// Format is one scientific data format plugin.
type Format interface {
	// Name identifies the format.
	Name() string
	// Detect reports whether r is in this format (a cheap magic probe —
	// the nc_open / H5Fis_hdf5 check the paper describes).
	Detect(r ReaderAt) bool
	// Explore parses metadata only and returns the file structure.
	Explore(r ReaderAt) (*Info, error)
	// ReadSlab reads the hyperslab [start, start+count) of the variable
	// at varPath, returning raw little-endian row-major bytes.
	ReadSlab(r ReaderAt, varPath string, start, count []int) ([]byte, error)
}

// Registry holds installed formats in registration order.
type Registry struct {
	formats []Format
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Register appends a format. Registering a duplicate name panics — format
// names key mapping metadata, so a collision is a programming error.
func (r *Registry) Register(f Format) {
	for _, g := range r.formats {
		if g.Name() == f.Name() {
			panic("scifmt: duplicate format " + f.Name())
		}
	}
	r.formats = append(r.formats, f)
}

// Formats returns the installed formats in registration order.
func (r *Registry) Formats() []Format { return append([]Format(nil), r.formats...) }

// Lookup returns the named format, or false.
func (r *Registry) Lookup(name string) (Format, bool) {
	for _, f := range r.formats {
		if f.Name() == name {
			return f, true
		}
	}
	return nil, false
}

// Detect probes installed formats in order and returns the first match —
// the Sci-format Head Reader's decision. ok is false for flat files.
func (r *Registry) Detect(src ReaderAt) (Format, bool) {
	for _, f := range r.formats {
		if f.Detect(src) {
			return f, true
		}
	}
	return nil, false
}

// JoinPath joins group components into a variable path.
func JoinPath(parts ...string) string {
	var nonEmpty []string
	for _, p := range parts {
		if p != "" {
			nonEmpty = append(nonEmpty, p)
		}
	}
	return strings.Join(nonEmpty, "/")
}

package scifmt

import (
	"testing"

	"scidp/internal/hdf5lite"
	"scidp/internal/netcdf"
)

func ncBlob(t *testing.T) []byte {
	t.Helper()
	w := netcdf.NewWriter()
	w.AddDim("level", 4)
	w.AddDim("lat", 3)
	w.AddDim("lon", 3)
	w.GlobalAttr(netcdf.StringAttr("model", "NU-WRF"))
	w.GlobalAttr(netcdf.Int64Attr("run", 9))
	if err := w.AddVar("QR", netcdf.Float32, []string{"level", "lat", "lon"},
		netcdf.Chunking{Shape: []int{1, 3, 3}, Deflate: 1}); err != nil {
		t.Fatal(err)
	}
	vals := make([]float32, 4*9)
	for i := range vals {
		vals[i] = float32(i)
	}
	w.PutVarFloat32("QR", vals)
	blob, err := w.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

func h5Blob(t *testing.T) []byte {
	t.Helper()
	w := hdf5lite.NewWriter()
	g := w.Root().EnsureGroup("sim/out")
	vals := make([]float32, 4*6)
	for i := range vals {
		vals[i] = float32(i)
	}
	if _, err := g.AddFloat32("T", []int{4, 6}, 2, 1, vals); err != nil {
		t.Fatal(err)
	}
	blob, err := w.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

func TestRegistryDetect(t *testing.T) {
	reg := Default()
	nc, h5 := ncBlob(t), h5Blob(t)
	f, ok := reg.Detect(netcdf.BytesReader(nc))
	if !ok || f.Name() != "netcdf" {
		t.Fatalf("netcdf detect = %v, %v", f, ok)
	}
	f, ok = reg.Detect(netcdf.BytesReader(h5))
	if !ok || f.Name() != "hdf5" {
		t.Fatalf("hdf5 detect = %v, %v", f, ok)
	}
	if _, ok := reg.Detect(netcdf.BytesReader([]byte("time,lat,lon,value\n0,1,2,3.5\n"))); ok {
		t.Fatal("CSV should not be detected as scientific")
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register should panic")
		}
	}()
	r := NewRegistry()
	r.Register(NetCDF())
	r.Register(NetCDF())
}

func TestRegistryLookup(t *testing.T) {
	reg := Default()
	if _, ok := reg.Lookup("netcdf"); !ok {
		t.Fatal("netcdf should be installed")
	}
	if _, ok := reg.Lookup("grib2"); ok {
		t.Fatal("grib2 should not be installed")
	}
	if n := len(reg.Formats()); n != 2 {
		t.Fatalf("formats = %d", n)
	}
}

func TestNetCDFExplore(t *testing.T) {
	info, err := NetCDF().Explore(netcdf.BytesReader(ncBlob(t)))
	if err != nil {
		t.Fatal(err)
	}
	if info.Format != "netcdf" || info.Attrs["model"] != "NU-WRF" || info.Attrs["run"] != "9" {
		t.Fatalf("info = %+v", info)
	}
	v, err := info.Var("QR")
	if err != nil {
		t.Fatal(err)
	}
	if v.TypeName != "float" || v.ElemSize != 4 {
		t.Fatalf("var = %+v", v)
	}
	if len(v.Segments) != 4 {
		t.Fatalf("segments = %d, want 4 (one per level)", len(v.Segments))
	}
	for i, s := range v.Segments {
		if s.Start[0] != i || s.Extent[0] != 1 || s.Extent[1] != 3 || s.Extent[2] != 3 {
			t.Fatalf("segment %d box = %v+%v", i, s.Start, s.Extent)
		}
		if s.RawSize != 36 {
			t.Fatalf("segment %d raw = %d, want 36", i, s.RawSize)
		}
	}
	if v.RawBytes != 4*36 {
		t.Fatalf("RawBytes = %d", v.RawBytes)
	}
	if v.StoredBytes <= 0 || v.StoredBytes >= v.RawBytes*2 {
		t.Fatalf("StoredBytes = %d", v.StoredBytes)
	}
	if _, err := info.Var("missing"); err == nil {
		t.Fatal("missing var should error")
	}
}

func TestNetCDFReadSlab(t *testing.T) {
	blob := ncBlob(t)
	raw, err := NetCDF().ReadSlab(netcdf.BytesReader(blob), "QR", []int{2, 0, 0}, []int{1, 3, 3})
	if err != nil {
		t.Fatal(err)
	}
	got := hdf5lite.Float32s(raw)
	for i := 0; i < 9; i++ {
		if got[i] != float32(18+i) {
			t.Fatalf("slab elem %d = %v, want %v", i, got[i], float32(18+i))
		}
	}
}

func TestHDF5ExploreNestedPaths(t *testing.T) {
	info, err := HDF5().Explore(netcdf.BytesReader(h5Blob(t)))
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Vars) != 1 {
		t.Fatalf("vars = %d", len(info.Vars))
	}
	v := info.Vars[0]
	if v.Path != "sim/out/T" {
		t.Fatalf("path = %q, want sim/out/T (group mirror)", v.Path)
	}
	if len(v.Segments) != 2 {
		t.Fatalf("segments = %d, want 2", len(v.Segments))
	}
	if v.Segments[1].Start[0] != 2 || v.Segments[1].Extent[0] != 2 {
		t.Fatalf("segment 1 box = %v+%v", v.Segments[1].Start, v.Segments[1].Extent)
	}
}

func TestHDF5ReadSlab(t *testing.T) {
	blob := h5Blob(t)
	raw, err := HDF5().ReadSlab(netcdf.BytesReader(blob), "sim/out/T", []int{1, 0}, []int{2, 6})
	if err != nil {
		t.Fatal(err)
	}
	got := hdf5lite.Float32s(raw)
	for i := range got {
		if got[i] != float32(6+i) {
			t.Fatalf("elem %d = %v", i, got[i])
		}
	}
	// Trailing-dimension sub-slabs are not supported by the row-chunked
	// format and must be rejected, not silently wrong.
	if _, err := HDF5().ReadSlab(netcdf.BytesReader(blob), "sim/out/T", []int{0, 1}, []int{4, 2}); err == nil {
		t.Fatal("partial trailing slab should be rejected")
	}
}

func TestJoinPath(t *testing.T) {
	if got := JoinPath("", "a", "", "b"); got != "a/b" {
		t.Fatalf("JoinPath = %q", got)
	}
	if got := JoinPath("", ""); got != "" {
		t.Fatalf("JoinPath empty = %q", got)
	}
}

func TestSegmentsSumToStoredBytes(t *testing.T) {
	for _, blob := range [][]byte{ncBlob(t), h5Blob(t)} {
		reg := Default()
		f, ok := reg.Detect(netcdf.BytesReader(blob))
		if !ok {
			t.Fatal("detect failed")
		}
		info, err := f.Explore(netcdf.BytesReader(blob))
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range info.Vars {
			var stored, raw int64
			for _, s := range v.Segments {
				stored += s.StoredSize
				raw += s.RawSize
			}
			if stored != v.StoredBytes || raw != v.RawBytes {
				t.Fatalf("%s/%s: segment sums %d/%d != %d/%d", info.Format, v.Path, stored, raw, v.StoredBytes, v.RawBytes)
			}
		}
	}
}

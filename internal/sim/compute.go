// Two-plane execution: the data plane.
//
// The kernel is the control plane — a single-threaded discrete-event
// engine that owns virtual time, flow rates, and event ordering. A
// ComputePool is the data plane: a bounded set of real OS worker
// goroutines that execute pure byte-transform closures (sorting a run,
// inflating a chunk, checksumming a block) while the kernel thread is
// parked waiting for them. Offloaded closures take zero virtual time;
// they only shorten the real wall-clock of a simulation run.
//
// Determinism contract: a closure handed to Proc.Compute must be pure
// byte work. It must not call any kernel or Proc method (Sleep,
// Transfer, Charge, ...), draw from a chaos PRNG, write observability
// registries, or touch shared caches — all of those must stay on the
// kernel thread, in event order. Results join back via Proc.Await,
// which schedules a single event at the current instant and blocks the
// kernel — in real time only — until every future has resolved. The
// event schedule is therefore identical for any worker count, so job
// outputs, trace exports, and metrics stay byte-identical whether the
// pool has one worker or sixty-four.
package sim

import (
	"fmt"
	"runtime"
	"sync"
)

// ComputePool is a data-plane worker pool. The zero worker count is
// meaningful: NewComputePool(0) executes every submission inline on the
// caller's thread, which is the determinism reference the pooled modes
// are tested against.
type ComputePool struct {
	workers int

	mu     sync.Mutex
	tasks  chan poolTask
	closed bool
}

// poolTask pairs a closure with its join handle.
type poolTask struct {
	fn  func()
	fut *Future
}

// Future is the join handle for one offloaded closure. It resolves when
// the closure returns or panics; a recovered panic value is re-raised by
// Proc.Await in the awaiting process's context.
type Future struct {
	done     chan struct{}
	panicked any
}

// NewComputePool returns a pool of the given number of OS workers.
// Workers start lazily on first submission. workers <= 0 yields an
// inline pool (submissions run on the submitting thread).
func NewComputePool(workers int) *ComputePool {
	if workers < 0 {
		workers = 0
	}
	return &ComputePool{workers: workers}
}

// DefaultWorkers is the worker count used when sizing a pool to the
// machine: GOMAXPROCS at call time.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Workers reports the pool's configured worker count (0 = inline).
func (cp *ComputePool) Workers() int { return cp.workers }

// submit hands fn to a worker and returns its future. Inline pools run
// fn before returning; the future is already resolved.
func (cp *ComputePool) submit(fn func()) *Future {
	t := poolTask{fn: fn, fut: &Future{done: make(chan struct{})}}
	if cp.workers <= 0 {
		t.run()
		return t.fut
	}
	cp.mu.Lock()
	if cp.closed {
		cp.mu.Unlock()
		panic("sim: submit on closed ComputePool")
	}
	if cp.tasks == nil {
		cp.tasks = make(chan poolTask, 1024)
		for i := 0; i < cp.workers; i++ {
			go cp.work()
		}
	}
	ch := cp.tasks
	cp.mu.Unlock()
	ch <- t
	return t.fut
}

// work drains the task channel until Close.
func (cp *ComputePool) work() {
	for t := range cp.tasks {
		t.run()
	}
}

// run executes the closure, capturing a panic into the future, and
// resolves it. The close of fut.done is the happens-before edge that
// publishes the closure's writes to the kernel thread at join time.
func (t poolTask) run() {
	defer func() {
		t.fut.panicked = recover()
		close(t.fut.done)
	}()
	t.fn()
}

// Close stops the workers once in-flight tasks drain. Submitting after
// Close panics; Close is idempotent. Kernels do not own their pool —
// whoever created it closes it, typically after Kernel.Run returns.
func (cp *ComputePool) Close() {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	if cp.closed {
		return
	}
	cp.closed = true
	if cp.tasks != nil {
		close(cp.tasks)
	}
}

// SetComputePool attaches a data plane to the kernel (nil detaches it).
// Without a pool, Proc.Compute runs closures inline and schedules no
// events — byte-for-byte the pre-data-plane behavior.
func (k *Kernel) SetComputePool(cp *ComputePool) { k.pool = cp }

// ComputePool returns the attached data plane (nil when detached).
func (k *Kernel) ComputePool() *ComputePool { return k.pool }

// Compute offloads fn to the kernel's data plane and returns its join
// handle. With no pool attached it runs fn inline and returns nil
// (Await ignores nil futures). fn must follow the package-level
// determinism contract: pure byte work only, no sim/obs/cache access.
// Call Await before reading anything fn writes.
func (p *Proc) Compute(fn func()) *Future {
	k := p.k
	if k.obs != nil {
		k.obs.Counter("sim/compute_tasks_total").Inc()
	}
	if k.pool == nil {
		fn()
		return nil
	}
	return k.pool.submit(fn)
}

// Await blocks the process until every non-nil future has resolved.
// The wait costs zero virtual time: one event is scheduled at the
// current instant whose callback blocks the kernel thread — in real
// time — on the futures, then resumes the process. Because the event
// is scheduled identically for any worker count, virtual timelines and
// event ordering are worker-count invariant. If an awaited closure
// panicked, Await re-panics with its value in process context, so the
// failure is attributed to this process deterministically.
func (p *Proc) Await(futs ...*Future) {
	n := 0
	for _, f := range futs {
		if f != nil {
			n++
		}
	}
	if n == 0 {
		return
	}
	k := p.k
	k.schedule(k.now, func() {
		for _, f := range futs {
			if f != nil {
				<-f.done
			}
		}
		k.resume(p)
	})
	p.pause()
	for _, f := range futs {
		if f != nil && f.panicked != nil {
			panic(fmt.Sprintf("data-plane compute panicked: %v", f.panicked))
		}
	}
}

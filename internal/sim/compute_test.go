package sim

import (
	"fmt"
	"strings"
	"testing"
)

// TestComputeInlineWithoutPool pins the nil-pool fast path: Compute runs
// the closure synchronously, returns nil, and Await of nils schedules
// nothing — byte-for-byte the pre-data-plane behavior.
func TestComputeInlineWithoutPool(t *testing.T) {
	k := NewKernel()
	k.Go("p", func(p *Proc) {
		ran := false
		fut := p.Compute(func() { ran = true })
		if fut != nil {
			t.Error("Compute returned a future with no pool attached")
		}
		if !ran {
			t.Error("closure did not run inline")
		}
		seqBefore := k.seq
		p.Await(nil, nil)
		if k.seq != seqBefore {
			t.Error("Await of nil futures scheduled an event")
		}
	})
	k.Run()
}

// TestComputeForkJoin drives many processes forking many closures
// through a real worker pool and checks every result joins back intact.
// Under -race this is the pool's memory-visibility test: the results
// slice is written by workers and read on the kernel thread after Await.
func TestComputeForkJoin(t *testing.T) {
	pool := NewComputePool(4)
	defer pool.Close()
	k := NewKernel()
	k.SetComputePool(pool)
	const procs, tasks = 8, 16
	results := make([][]int, procs)
	for pi := 0; pi < procs; pi++ {
		pi := pi
		results[pi] = make([]int, tasks)
		k.Go(fmt.Sprintf("p%d", pi), func(p *Proc) {
			futs := make([]*Future, tasks)
			for i := 0; i < tasks; i++ {
				i := i
				futs[i] = p.Compute(func() { results[pi][i] = pi*1000 + i*i })
			}
			p.Sleep(0.001) // overlap the joins across processes
			p.Await(futs...)
			for i := 0; i < tasks; i++ {
				if results[pi][i] != pi*1000+i*i {
					t.Errorf("proc %d task %d = %d", pi, i, results[pi][i])
				}
			}
		})
	}
	k.Run()
}

// computeTimeline runs a fixed mix of sleeps, fork-joins, and transfers
// and returns every (proc, virtual time) resume observation — the
// worker-count invariance probe.
func computeTimeline(workers int) []string {
	pool := NewComputePool(workers)
	defer pool.Close()
	k := NewKernel()
	k.SetComputePool(pool)
	disk := NewResource("disk", 1e6)
	var log []string
	for pi := 0; pi < 4; pi++ {
		pi := pi
		k.Go(fmt.Sprintf("p%d", pi), func(p *Proc) {
			for round := 0; round < 3; round++ {
				p.Sleep(0.01 * float64(pi))
				var sum int
				futs := []*Future{
					p.Compute(func() { sum += busyWork(pi + round) }),
					p.Compute(func() { _ = busyWork(round) }),
				}
				p.Transfer(1000, disk)
				p.Await(futs...)
				log = append(log, fmt.Sprintf("p%d r%d t=%.6f sum=%d", pi, round, p.Now(), sum))
			}
		})
	}
	k.Run()
	return log
}

// busyWork burns real CPU so pooled runs genuinely overlap.
func busyWork(seed int) int {
	x := seed
	for i := 0; i < 2000; i++ {
		x = x*1103515245 + 12345
	}
	if x == 0 {
		return 1
	}
	return seed * seed
}

// TestComputeWorkerCountInvariance is the tentpole guarantee: the same
// simulation produces identical resume timelines (virtual times, order,
// results) with an inline pool, one worker, and many workers.
func TestComputeWorkerCountInvariance(t *testing.T) {
	ref := computeTimeline(0)
	if len(ref) != 12 {
		t.Fatalf("timeline has %d entries, want 12", len(ref))
	}
	for _, workers := range []int{1, 4} {
		got := computeTimeline(workers)
		if len(got) != len(ref) {
			t.Fatalf("workers=%d: %d entries, want %d", workers, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Errorf("workers=%d entry %d: %q, want %q", workers, i, got[i], ref[i])
			}
		}
	}
}

// TestComputePanicPropagates verifies a data-plane panic re-raises in
// the awaiting process's context, so the kernel attributes the failure
// to the right process deterministically.
func TestComputePanicPropagates(t *testing.T) {
	pool := NewComputePool(2)
	defer pool.Close()
	k := NewKernel()
	k.SetComputePool(pool)
	k.Go("fated", func(p *Proc) {
		p.Await(p.Compute(func() { panic("chunk exploded") }))
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("kernel did not propagate the data-plane panic")
		}
		msg := fmt.Sprint(r)
		if !strings.Contains(msg, "fated") || !strings.Contains(msg, "chunk exploded") {
			t.Fatalf("panic %q does not name the process and cause", msg)
		}
	}()
	k.Run()
}

// TestComputePoolCloseIdempotent pins Close semantics: double Close is
// fine, and closing an unused pool is fine.
func TestComputePoolCloseIdempotent(t *testing.T) {
	p := NewComputePool(2)
	p.Close()
	p.Close()
	unused := NewComputePool(3)
	unused.Close()
	if w := NewComputePool(-5).Workers(); w != 0 {
		t.Fatalf("negative worker count normalized to %d, want 0", w)
	}
}

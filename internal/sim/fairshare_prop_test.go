package sim

import (
	"math/rand"
	"testing"
)

// The incremental fair-share scheduler's contract is exact equivalence
// with the brute-force oracle: FairShareFull recomputes every share and
// every rate on every membership change, while the incremental path only
// touches flows crossing resources whose share moved — and both must
// produce bitwise-identical rates, completion times, completion order,
// and kernel traces under arbitrary churn.

// churnPlan is one randomized workload script, generated once per seed
// and replayed against both scheduler modes.
type churnPlan struct {
	resources []churnResource
	starts    []churnStart
	refreshes []churnRefresh
}

type churnResource struct {
	capacity   float64
	perFlowCap float64
}

type churnStart struct {
	at    float64
	bytes float64
	res   []int // indexes into resources
}

type churnRefresh struct {
	at     float64
	res    int
	newCap float64
}

// newChurnPlan draws a random plan: a pool of resources (some per-flow
// capped, one zero-capacity to exercise stalls), a few hundred staggered
// flow starts over disjoint-to-overlapping resource subsets, and
// mid-flight capacity changes applied through RefreshRates.
func newChurnPlan(seed int64) *churnPlan {
	rng := rand.New(rand.NewSource(seed))
	plan := &churnPlan{}
	nRes := 8 + rng.Intn(16)
	for i := 0; i < nRes; i++ {
		r := churnResource{capacity: 10 + 1000*rng.Float64()}
		if rng.Float64() < 0.2 {
			r.perFlowCap = r.capacity * (0.1 + 0.5*rng.Float64())
		}
		if i == nRes-1 && rng.Float64() < 0.5 {
			r.capacity = 0 // stall candidate
		}
		plan.resources = append(plan.resources, r)
	}
	nFlows := 100 + rng.Intn(200)
	for i := 0; i < nFlows; i++ {
		st := churnStart{
			at:    rng.Float64() * 50,
			bytes: rng.Float64() * 5000,
		}
		deg := 1 + rng.Intn(3)
		seen := map[int]bool{}
		for len(st.res) < deg {
			ri := rng.Intn(nRes)
			if !seen[ri] {
				seen[ri] = true
				st.res = append(st.res, ri)
			}
		}
		if rng.Float64() < 0.02 {
			st.res = nil // resource-free flow: completes instantly
		}
		plan.starts = append(plan.starts, st)
	}
	nRefresh := 10 + rng.Intn(20)
	for i := 0; i < nRefresh; i++ {
		plan.refreshes = append(plan.refreshes, churnRefresh{
			at:     rng.Float64() * 60,
			res:    rng.Intn(nRes),
			newCap: 1000 * rng.Float64(),
		})
	}
	return plan
}

// churnRecord is one observation: a flow completion (kind 0) with the
// rate it finished at, or a rate snapshot of every live flow taken at a
// RefreshRates instant (kind 1).
type churnRecord struct {
	kind int
	id   uint64
	at   float64
	rate float64
}

// runChurn replays the plan on a fresh kernel in the given mode and
// returns the observation log plus the full kernel trace.
func runChurn(plan *churnPlan, mode FairShareMode) ([]churnRecord, []TraceEvent) {
	k := NewKernel()
	k.SetFairShareMode(mode)
	tr := &Tracer{}
	k.SetTracer(tr)
	res := make([]*Resource, len(plan.resources))
	for i, rc := range plan.resources {
		res[i] = NewResource("r", rc.capacity)
		res[i].PerFlowCap = rc.perFlowCap
	}
	var log []churnRecord
	for _, st := range plan.starts {
		st := st
		k.After(st.at, func() {
			chain := make([]*Resource, len(st.res))
			for i, ri := range st.res {
				chain[i] = res[ri]
			}
			var f *Flow
			f = k.StartFlow(st.bytes, func() {
				log = append(log, churnRecord{kind: 0, id: f.ID(), at: k.Now(), rate: f.rate})
			}, chain...)
		})
	}
	for _, rf := range plan.refreshes {
		rf := rf
		k.After(rf.at, func() {
			res[rf.res].Capacity = rf.newCap
			k.RefreshRates()
			// Snapshot every live flow's rate, in id order.
			flows := append([]*Flow(nil), k.flowHeap...)
			for _, f := range flows {
				log = append(log, churnRecord{kind: 1, id: f.id, at: k.Now(), rate: f.rate})
			}
		})
	}
	k.Run()
	return log, tr.Events()
}

// sortSnapshot orders the kind-1 snapshot entries taken at one instant by
// flow id so heap-order differences between modes cannot leak into the
// comparison (completion records are already in deterministic order).
func normalizeLog(log []churnRecord) []churnRecord {
	out := append([]churnRecord(nil), log...)
	for i := 0; i < len(out); {
		if out[i].kind != 1 {
			i++
			continue
		}
		j := i
		for j < len(out) && out[j].kind == 1 && out[j].at == out[i].at {
			j++
		}
		seg := out[i:j]
		for a := 1; a < len(seg); a++ {
			for b := a; b > 0 && seg[b].id < seg[b-1].id; b-- {
				seg[b], seg[b-1] = seg[b-1], seg[b]
			}
		}
		i = j
	}
	return out
}

// TestIncrementalMatchesFullRecomputeOracle replays seeded random churn
// — staggered starts, natural completions, and RefreshRates with
// capacity changes — under both scheduler modes and requires the
// completion times, completion order, observed rates, and the entire
// kernel trace to match exactly (float64 ==, no tolerance).
func TestIncrementalMatchesFullRecomputeOracle(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		plan := newChurnPlan(seed)
		incLog, incTrace := runChurn(plan, FairShareIncremental)
		fullLog, fullTrace := runChurn(plan, FairShareFull)
		incLog, fullLog = normalizeLog(incLog), normalizeLog(fullLog)
		if len(incLog) != len(fullLog) {
			t.Fatalf("seed %d: log lengths differ: incremental %d vs full %d", seed, len(incLog), len(fullLog))
		}
		for i := range incLog {
			a, b := incLog[i], fullLog[i]
			if a != b {
				t.Fatalf("seed %d: log[%d] differs:\n  incremental %+v\n  full        %+v", seed, i, a, b)
			}
		}
		if len(incTrace) != len(fullTrace) {
			t.Fatalf("seed %d: trace lengths differ: %d vs %d", seed, len(incTrace), len(fullTrace))
		}
		for i := range incTrace {
			a, b := incTrace[i], fullTrace[i]
			if a.At != b.At || a.Kind != b.Kind || a.Bytes != b.Bytes || a.Flow != b.Flow {
				t.Fatalf("seed %d: trace[%d] differs:\n  incremental %+v\n  full        %+v", seed, i, a, b)
			}
		}
	}
}

// TestIncrementalDeterministic replays the same plan twice in the default
// mode and requires identical logs — the scheduler refactor must not
// introduce map-iteration or heap-order nondeterminism.
func TestIncrementalDeterministic(t *testing.T) {
	plan := newChurnPlan(99)
	log1, _ := runChurn(plan, FairShareIncremental)
	log2, _ := runChurn(plan, FairShareIncremental)
	if len(log1) != len(log2) {
		t.Fatalf("log lengths differ across identical runs: %d vs %d", len(log1), len(log2))
	}
	for i := range log1 {
		if log1[i] != log2[i] {
			t.Fatalf("log[%d] differs across identical runs: %+v vs %+v", i, log1[i], log2[i])
		}
	}
}

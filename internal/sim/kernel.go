// Package sim provides a deterministic discrete-event simulation kernel
// used to account virtual time for every experiment in this repository.
//
// The kernel advances a virtual clock over a heap of events. Simulated
// activities run as processes (Proc): ordinary goroutines that hand control
// back and forth with the kernel one at a time, so execution is fully
// deterministic regardless of GOMAXPROCS. Data movement is modeled at flow
// level: a Flow crosses a set of Resources (disks, NICs, switch fabrics)
// and at any instant receives rate min over its resources of
// capacity/activeFlows — a progressive-filling approximation of max-min
// fair sharing that reproduces the contention effects (shared OSTs, shared
// fabric, local-versus-remote reads) the SciDP paper's measurements hinge
// on.
//
// Scale: both hot structures are built for O(100k)-node sweeps. The event
// queue is a by-value 4-ary heap (no per-event allocation beyond the
// callback closure, no container/heap interface boxing). Fair-share is
// incremental: each resource caches its current per-flow share and an
// index of the flows crossing it, each flow carries an absolute completion
// deadline in an indexed heap, and a membership change re-rates only the
// flows crossing resources whose share actually changed — O(degree of the
// change), not O(total flows). A flow's progress is settled lazily, only
// at the instants its own rate changes, so an undisturbed flow costs
// nothing while others churn. See DESIGN.md "Scale".
//
// Time is a float64 in seconds. Sizes are float64 bytes.
package sim

import (
	"fmt"
	"math"
	"slices"
	"strings"

	"scidp/internal/obs"
)

// epsBytes is the slack under which a flow's remaining bytes count as zero.
const epsBytes = 1e-6

// event is a scheduled callback, stored by value in the queue.
type event struct {
	at  float64
	seq uint64
	fn  func()
}

// before orders events by (time, insertion sequence) for determinism.
func (e event) before(o event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// eventQueue is a 4-ary min-heap of events by value. 4-ary halves the
// tree depth of a binary heap and keeps siblings on one cache line —
// the classic d-ary trade of cheaper sift-downs for one extra compare —
// and storing events by value removes the per-event box and the
// container/heap interface dispatch of the previous implementation.
// The backing array is reused across pushes and pops (pooled storage).
type eventQueue []event

func (q *eventQueue) push(e event) {
	h := *q
	i := len(h)
	h = append(h, e)
	for i > 0 {
		parent := (i - 1) / 4
		if !e.before(h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = e
	*q = h
}

func (q *eventQueue) pop() event {
	h := *q
	top := h[0]
	last := h[len(h)-1]
	h = h[:len(h)-1]
	n := len(h)
	if n > 0 {
		i := 0
		for {
			c := 4*i + 1
			if c >= n {
				break
			}
			best := c
			end := c + 4
			if end > n {
				end = n
			}
			for j := c + 1; j < end; j++ {
				if h[j].before(h[best]) {
					best = j
				}
			}
			if !h[best].before(last) {
				break
			}
			h[i] = h[best]
			i = best
		}
		h[i] = last
	}
	*q = h
	return top
}

// FairShareMode selects the kernel's rate-recomputation strategy.
type FairShareMode int

const (
	// FairShareIncremental (the default) re-rates only flows crossing
	// resources whose per-flow share changed — O(degree) per membership
	// change.
	FairShareIncremental FairShareMode = iota
	// FairShareFull recomputes every active resource's share and every
	// flow's rate on every change — the brute-force oracle. It performs
	// the identical arithmetic in the identical order per flow, so its
	// rates, completion times, traces, and exports are byte-identical to
	// the incremental mode's; it exists for tests and benchmarks.
	FairShareFull
)

// Kernel is the simulation engine. Create one with NewKernel, start
// processes with Go, then call Run to execute until no work remains.
// A Kernel must not be shared across real OS threads while running.
type Kernel struct {
	now        float64
	seq        uint64
	events     eventQueue
	eventCount uint64
	mode       FairShareMode

	// flowHeap is the live-flow set, an indexed 4-ary min-heap ordered by
	// (deadline, id); Flow.hpos is the element's position + 1.
	flowHeap []*Flow
	flowSeq  uint64
	// flowEpoch invalidates stale completion events; schedAt/schedValid
	// dedupe re-scheduling when the earliest deadline is unchanged.
	flowEpoch  uint64
	schedAt    float64
	schedValid bool
	// activeRes tracks every resource with >= 1 flow (for RefreshRates
	// and FairShareFull); dirtyRes and touched are reusable scratch.
	activeRes []*Resource
	dirtyRes  []*Resource
	touched   []*Flow
	markSeq   uint64

	failure   error // first process panic, re-raised by Run
	liveProcs int
	tracer    *Tracer
	obs       *obs.Registry
	pool      *ComputePool // data plane; see compute.go
}

// SetObs attaches (or detaches, with nil) an observability registry.
// The kernel becomes the registry's clock, and every flow started under
// a process span from then on records a child "flow" span.
func (k *Kernel) SetObs(r *obs.Registry) {
	k.obs = r
	r.SetClock(k)
}

// Obs returns the attached registry (nil when detached). The nil value
// is safe to use: all obs handles no-op.
func (k *Kernel) Obs() *obs.Registry { return k.obs }

// SetFairShareMode selects the rate-recomputation strategy. Both modes
// produce byte-identical simulations (FairShareFull is the verification
// oracle); set it before starting flows.
func (k *Kernel) SetFairShareMode(m FairShareMode) { k.mode = m }

// NewKernel returns an empty kernel at virtual time zero.
func NewKernel() *Kernel {
	return &Kernel{}
}

// Now returns the current virtual time in seconds.
func (k *Kernel) Now() float64 { return k.now }

// EventsProcessed reports how many events the kernel has executed — the
// scale benchmarks' throughput denominator.
func (k *Kernel) EventsProcessed() uint64 { return k.eventCount }

// ActiveFlows reports the number of in-flight flows.
func (k *Kernel) ActiveFlows() int { return len(k.flowHeap) }

// schedule enqueues fn to run at virtual time at (>= now).
func (k *Kernel) schedule(at float64, fn func()) {
	if at < k.now {
		at = k.now
	}
	k.seq++
	k.events.push(event{at: at, seq: k.seq, fn: fn})
}

// After schedules fn to run d seconds from now. It is the low-level timer
// primitive; processes should normally use Proc.Sleep.
func (k *Kernel) After(d float64, fn func()) {
	if d < 0 {
		d = 0
	}
	k.schedule(k.now+d, fn)
}

// RefreshRates re-reads every active resource's Capacity and PerFlowCap
// and re-rates the flows crossing those whose fair share changed. Rates
// are normally recomputed only at flow-membership changes, which refresh
// the shares of the resources the flow crosses as a side effect; a caller
// that mutates a resource's Capacity mid-flight (e.g. a fault injector
// degrading an OST) must call this for the change to reach flows already
// in progress. Must be called from kernel context (an event callback or a
// Proc body).
func (k *Kernel) RefreshRates() {
	for _, r := range k.activeRes {
		k.markDirty(r)
	}
	k.rebalance(nil)
}

// Run executes events until the queue drains. It panics with the original
// value if any process panicked. Run may be called again after it returns
// (e.g. after starting more processes).
func (k *Kernel) Run() {
	for len(k.events) > 0 {
		e := k.events.pop()
		if e.at > k.now {
			k.now = e.at
		}
		k.eventCount++
		e.fn()
		if k.failure != nil {
			panic(k.failure)
		}
	}
	if k.liveProcs > 0 {
		panic(fmt.Sprintf("sim: deadlock — %d process(es) still blocked with no pending events at t=%.6f", k.liveProcs, k.now))
	}
}

// Proc is a simulated process. All Proc methods must be called from within
// the process's own function; they block in virtual time.
type Proc struct {
	k    *Kernel
	name string
	wake chan struct{}
	park chan struct{}
	span *obs.Span
}

// Span returns the process's current observability span (nil when none
// is set or no registry is attached). Flows started by the process
// become children of this span.
func (p *Proc) Span() *obs.Span { return p.span }

// SetSpan installs s as the process's current span and returns the
// previous one, so callers can nest:
//
//	prev := p.SetSpan(s)
//	defer p.SetSpan(prev)
func (p *Proc) SetSpan(s *obs.Span) *obs.Span {
	prev := p.span
	p.span = s
	return prev
}

// Name returns the name the process was started with.
func (p *Proc) Name() string { return p.name }

// Kernel returns the kernel the process runs on.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time.
func (p *Proc) Now() float64 { return p.k.now }

// Go starts fn as a new simulated process scheduled to begin immediately
// (at the current virtual time, after already-queued events).
func (k *Kernel) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{k: k, name: name, wake: make(chan struct{}), park: make(chan struct{})}
	k.liveProcs++
	go func() {
		<-p.wake
		defer func() {
			if r := recover(); r != nil {
				if k.failure == nil {
					k.failure = fmt.Errorf("sim: process %q panicked: %v", name, r)
				}
			}
			k.liveProcs--
			p.park <- struct{}{}
		}()
		fn(p)
	}()
	k.schedule(k.now, func() { k.resume(p) })
	return p
}

// resume hands control to p and waits until p parks or exits. It must only
// be called from event context (the Run loop), never from process context.
func (k *Kernel) resume(p *Proc) {
	p.wake <- struct{}{}
	<-p.park
}

// pause yields control back to the kernel until another event resumes p.
func (p *Proc) pause() {
	p.park <- struct{}{}
	<-p.wake
}

// Sleep blocks the process for d virtual seconds. Negative d sleeps zero.
// Sleep is also how modeled compute cost is charged ("this phase takes
// 0.55 s per image level").
func (p *Proc) Sleep(d float64) {
	if d < 0 {
		d = 0
	}
	p.k.After(d, func() { p.k.resume(p) })
	p.pause()
}

// Yield reschedules the process behind all events already queued at the
// current instant.
func (p *Proc) Yield() { p.Sleep(0) }

// flowRef is one entry in a resource's flow index: the flow plus the
// position of the resource within the flow's own chain, so removal can
// repair the reverse index in O(1).
type flowRef struct {
	f  *Flow
	ri int32
}

// Resource is a bandwidth-capacity device: a disk, a NIC, a switch fabric,
// an OST. Concurrent flows crossing it share its capacity fairly.
type Resource struct {
	// Name identifies the resource in traces and error messages.
	Name string
	// Capacity is the aggregate bandwidth in bytes per second. It must be
	// positive for any flow that crosses the resource to make progress.
	Capacity float64
	// PerFlowCap, when positive, limits each individual flow's share
	// (e.g. a single TCP stream that cannot saturate a bonded link).
	PerFlowCap float64
	// Latency, when positive, is a fixed per-operation setup delay in
	// seconds charged once per Transfer that crosses the resource.
	Latency float64

	active int
	// share is the cached per-flow fair share at the current membership
	// (Capacity/active, capped by PerFlowCap); flows read it instead of
	// re-dividing.
	share float64
	// flows indexes every flow crossing the resource; order is
	// maintenance order and never observable.
	flows []flowRef
	// aidx is position+1 in Kernel.activeRes (0 = inactive); dirty marks
	// membership in Kernel.dirtyRes.
	aidx  int
	dirty bool
}

// NewResource returns a resource with the given aggregate capacity in
// bytes/second.
func NewResource(name string, capacity float64) *Resource {
	return &Resource{Name: name, Capacity: capacity}
}

// Active reports how many flows currently cross the resource.
func (r *Resource) Active() int { return r.active }

// shareNow computes the resource's current per-flow fair share.
func (r *Resource) shareNow() float64 {
	if r.active == 0 {
		return 0
	}
	share := r.Capacity / float64(r.active)
	if r.PerFlowCap > 0 && share > r.PerFlowCap {
		share = r.PerFlowCap
	}
	return share
}

// Flow is an in-flight transfer across a set of resources.
type Flow struct {
	id        uint64
	total     float64
	remaining float64
	rate      float64
	res       []*Resource
	onDone    func()
	span      *obs.Span

	// settledAt is the instant remaining was last materialized; a flow
	// settles only when its own rate changes (or it completes), so an
	// undisturbed flow is never touched while others churn.
	settledAt float64
	// deadline is the absolute completion time at the current rate
	// (+Inf when stalled); it keys the kernel's flow heap.
	deadline float64
	// hpos is position+1 in Kernel.flowHeap (0 = not enqueued).
	hpos int
	// resIdx mirrors res: position of this flow inside each resource's
	// flow index.
	resIdx []int32
	// mark dedupes membership in Kernel.touched per rebalance.
	mark uint64
}

// ID returns the kernel-unique flow id, matching TraceEvent.Flow.
func (f *Flow) ID() uint64 { return f.id }

// Remaining reports the bytes the flow still has to move (settled to the
// flow's last rate change; callers outside the kernel should treat it as
// approximate).
func (f *Flow) Remaining() float64 { return f.remaining }

// settle materializes the flow's progress at the current instant using
// the rate fixed at its previous rate change.
func (k *Kernel) settle(f *Flow) {
	if dt := k.now - f.settledAt; dt > 0 {
		f.remaining -= f.rate * dt
	}
	f.settledAt = k.now
}

// flowLess orders the flow heap by (deadline, id).
func flowLess(a, b *Flow) bool {
	if a.deadline != b.deadline {
		return a.deadline < b.deadline
	}
	return a.id < b.id
}

// heapFix restores the 4-ary heap invariant around position i.
func (k *Kernel) heapFix(i int) {
	h := k.flowHeap
	f := h[i]
	// Sift up.
	for i > 0 {
		parent := (i - 1) / 4
		if !flowLess(f, h[parent]) {
			break
		}
		h[i] = h[parent]
		h[i].hpos = i + 1
		i = parent
	}
	// Sift down.
	n := len(h)
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		best := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if flowLess(h[j], h[best]) {
				best = j
			}
		}
		if !flowLess(h[best], f) {
			break
		}
		h[i] = h[best]
		h[i].hpos = i + 1
		i = best
	}
	h[i] = f
	f.hpos = i + 1
}

// heapPush adds f to the flow heap.
func (k *Kernel) heapPush(f *Flow) {
	k.flowHeap = append(k.flowHeap, f)
	k.heapFix(len(k.flowHeap) - 1)
}

// heapRemove takes f out of the flow heap.
func (k *Kernel) heapRemove(f *Flow) {
	i := f.hpos - 1
	f.hpos = 0
	h := k.flowHeap
	last := len(h) - 1
	if i != last {
		h[i] = h[last]
		h[i].hpos = i + 1
		k.flowHeap = h[:last]
		k.heapFix(i)
	} else {
		k.flowHeap = h[:last]
	}
	h[last] = nil
}

// markDirty queues r for share recomputation in the next rebalance.
func (k *Kernel) markDirty(r *Resource) {
	if !r.dirty {
		r.dirty = true
		k.dirtyRes = append(k.dirtyRes, r)
	}
}

// attach indexes f on each of its resources, bumping their active counts
// and marking them dirty.
func (k *Kernel) attach(f *Flow) {
	f.resIdx = make([]int32, len(f.res))
	for i, r := range f.res {
		if r.active == 0 {
			r.aidx = len(k.activeRes) + 1
			k.activeRes = append(k.activeRes, r)
		}
		r.active++
		f.resIdx[i] = int32(len(r.flows))
		r.flows = append(r.flows, flowRef{f: f, ri: int32(i)})
		k.markDirty(r)
	}
}

// detach removes f from each of its resources (swap-remove, repairing the
// moved entry's reverse index), marking them dirty.
func (k *Kernel) detach(f *Flow) {
	for i, r := range f.res {
		pos := f.resIdx[i]
		last := len(r.flows) - 1
		moved := r.flows[last]
		r.flows[pos] = moved
		moved.f.resIdx[moved.ri] = pos
		r.flows[last] = flowRef{}
		r.flows = r.flows[:last]
		r.active--
		if r.active == 0 {
			// Swap-remove from the active-resource list.
			ai := r.aidx - 1
			lastR := len(k.activeRes) - 1
			k.activeRes[ai] = k.activeRes[lastR]
			k.activeRes[ai].aidx = ai + 1
			k.activeRes[lastR] = nil
			k.activeRes = k.activeRes[:lastR]
			r.aidx = 0
			r.share = 0
		}
		k.markDirty(r)
	}
}

// reRate recomputes f's fair-share rate from its resources' cached
// shares; if the rate changed the flow settles and gets a new deadline.
func (k *Kernel) reRate(f *Flow) {
	rate := math.Inf(1)
	for _, r := range f.res {
		if r.share < rate {
			rate = r.share
		}
	}
	if math.IsInf(rate, 1) {
		// Flow crosses no resources: completes instantly.
		rate = math.MaxFloat64
	}
	if rate == f.rate && f.hpos != 0 {
		return
	}
	k.settle(f)
	f.rate = rate
	if f.rate > 0 {
		eta := f.remaining / f.rate
		if eta < 0 {
			eta = 0
		}
		f.deadline = k.now + eta
	} else {
		f.deadline = math.Inf(1)
	}
	if f.hpos == 0 {
		k.heapPush(f)
	} else {
		k.heapFix(f.hpos - 1)
	}
}

// rebalance is the single fair-share recomputation point: it refreshes
// the shares of dirty resources, re-rates the affected flows (plus the
// just-started one, which must be rated even when no share moved — a
// PerFlowCap can hold a share constant across a membership change), and
// (re)schedules the completion event for the earliest deadline.
// In FairShareFull mode every active resource and every flow is visited
// instead; the per-flow arithmetic is identical, so both modes produce
// byte-identical simulations.
func (k *Kernel) rebalance(started *Flow) {
	k.markSeq++
	mark := k.markSeq
	touched := k.touched[:0]
	if k.mode == FairShareFull {
		for _, r := range k.activeRes {
			r.share = r.shareNow()
		}
		touched = append(touched, k.flowHeap...)
		if started != nil && started.mark != mark && started.hpos == 0 {
			touched = append(touched, started)
		}
	} else {
		for _, r := range k.dirtyRes {
			share := r.shareNow()
			if share == r.share && r.active > 0 {
				continue
			}
			r.share = share
			for _, fr := range r.flows {
				if fr.f.mark != mark {
					fr.f.mark = mark
					touched = append(touched, fr.f)
				}
			}
		}
		if started != nil && started.mark != mark {
			started.mark = mark
			touched = append(touched, started)
		}
	}
	for _, r := range k.dirtyRes {
		r.dirty = false
	}
	k.dirtyRes = k.dirtyRes[:0]
	for _, f := range touched {
		k.reRate(f)
	}
	k.touched = touched[:0]
	k.scheduleCompletion()
}

// scheduleCompletion arms (or re-arms) the completion event for the
// earliest flow deadline. An unchanged earliest deadline keeps the
// already-pending event; otherwise the epoch bump invalidates it and a
// fresh event is scheduled.
func (k *Kernel) scheduleCompletion() {
	if len(k.flowHeap) == 0 || math.IsInf(k.flowHeap[0].deadline, 1) {
		// Nothing to complete (or all flows stalled on zero-capacity
		// resources): cancel any pending completion.
		if k.schedValid {
			k.flowEpoch++
			k.schedValid = false
		}
		return
	}
	at := k.flowHeap[0].deadline
	if k.schedValid && at == k.schedAt {
		return
	}
	k.flowEpoch++
	k.schedAt = at
	k.schedValid = true
	epoch := k.flowEpoch
	k.schedule(at, func() {
		if epoch != k.flowEpoch {
			return // superseded by a later membership change
		}
		k.schedValid = false
		k.completeFlows()
	})
}

// completeFlows finishes every flow whose deadline has arrived, fires
// completion callbacks in flow-start order, and rebalances the rest.
func (k *Kernel) completeFlows() {
	var done []*Flow
	for len(k.flowHeap) > 0 && k.flowHeap[0].deadline <= k.now {
		f := k.flowHeap[0]
		k.heapRemove(f)
		done = append(done, f)
	}
	slices.SortFunc(done, func(a, b *Flow) int {
		if a.id < b.id {
			return -1
		}
		return 1
	})
	for _, f := range done {
		f.remaining = 0
		f.settledAt = k.now
		k.detach(f)
		k.traceFlowEnd(f)
		f.span.End()
	}
	k.rebalance(nil)
	for _, f := range done {
		if f.onDone != nil {
			f.onDone()
		}
	}
}

// StartFlow begins moving bytes across the given resources and invokes
// onDone (from event context) when the transfer completes. Zero or
// negative sizes complete immediately (still asynchronously). StartFlow
// does not charge resource Latency; Proc.Transfer does.
func (k *Kernel) StartFlow(bytes float64, onDone func(), res ...*Resource) *Flow {
	return k.startFlow(bytes, onDone, nil, res...)
}

// startFlow is StartFlow plus span parentage: when a registry is
// attached and the starting process has a current span, the flow
// records a child "flow" span carrying its id, size, and resource
// chain.
func (k *Kernel) startFlow(bytes float64, onDone func(), parent *obs.Span, res ...*Resource) *Flow {
	k.flowSeq++
	f := &Flow{id: k.flowSeq, total: bytes, remaining: bytes, res: res, onDone: onDone}
	if k.obs != nil && parent != nil {
		f.span = k.obs.StartSpan("flow", "sim", parent)
		f.span.Arg("flow", f.id)
		f.span.Arg("bytes", bytes)
		f.span.Arg("res", strings.Join(resourceNames(res), "+"))
	}
	k.traceFlowStart(f, "")
	if bytes <= epsBytes {
		k.schedule(k.now, func() {
			k.traceFlowEnd(f)
			f.span.End()
			if f.onDone != nil {
				f.onDone()
			}
		})
		return f
	}
	f.settledAt = k.now
	k.attach(f)
	k.rebalance(f)
	return f
}

// Transfer moves bytes across the given resources, blocking the process in
// virtual time until the flow drains. The sum of the resources' Latency
// fields is charged first as a fixed delay.
func (p *Proc) Transfer(bytes float64, res ...*Resource) {
	lat := 0.0
	for _, r := range res {
		lat += r.Latency
	}
	if lat > 0 {
		p.Sleep(lat)
	}
	p.k.startFlow(bytes, func() { p.k.resume(p) }, p.span, res...)
	p.pause()
}

// Part describes one leg of a parallel transfer.
type Part struct {
	// Bytes is the size of this leg.
	Bytes float64
	// Res is the resource chain this leg crosses.
	Res []*Resource
}

// TransferAll starts every part concurrently and blocks until all of them
// complete — the shape of a striped PFS read, where one client pulls
// segments from many OSTs at once. Each part individually charges its
// resources' latency before its flow starts.
func (p *Proc) TransferAll(parts ...Part) {
	if len(parts) == 0 {
		return
	}
	remaining := len(parts)
	finish := func() {
		remaining--
		if remaining == 0 {
			p.k.resume(p)
		}
	}
	parent := p.span
	for _, pt := range parts {
		pt := pt
		lat := 0.0
		for _, r := range pt.Res {
			lat += r.Latency
		}
		start := func() { p.k.startFlow(pt.Bytes, finish, parent, pt.Res...) }
		if lat > 0 {
			p.k.After(lat, start)
		} else {
			start()
		}
	}
	p.pause()
}

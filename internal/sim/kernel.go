// Package sim provides a deterministic discrete-event simulation kernel
// used to account virtual time for every experiment in this repository.
//
// The kernel advances a virtual clock over a heap of events. Simulated
// activities run as processes (Proc): ordinary goroutines that hand control
// back and forth with the kernel one at a time, so execution is fully
// deterministic regardless of GOMAXPROCS. Data movement is modeled at flow
// level: a Flow crosses a set of Resources (disks, NICs, switch fabrics)
// and at any instant receives rate min over its resources of
// capacity/activeFlows — a progressive-filling approximation of max-min
// fair sharing that reproduces the contention effects (shared OSTs, shared
// fabric, local-versus-remote reads) the SciDP paper's measurements hinge
// on.
//
// Time is a float64 in seconds. Sizes are float64 bytes.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
	"strings"

	"scidp/internal/obs"
)

// epsBytes is the slack under which a flow's remaining bytes count as zero.
const epsBytes = 1e-6

// event is a scheduled callback.
type event struct {
	at  float64
	seq uint64
	fn  func()
}

// eventHeap orders events by (time, insertion sequence) for determinism.
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Kernel is the simulation engine. Create one with NewKernel, start
// processes with Go, then call Run to execute until no work remains.
// A Kernel must not be shared across real OS threads while running.
type Kernel struct {
	now        float64
	seq        uint64
	events     eventHeap
	flows      map[*Flow]struct{}
	flowSeq    uint64
	lastSettle float64
	flowEpoch  uint64 // invalidates stale completion events
	failure    error  // first process panic, re-raised by Run
	liveProcs  int
	tracer     *Tracer
	obs        *obs.Registry
	pool       *ComputePool // data plane; see compute.go
}

// SetObs attaches (or detaches, with nil) an observability registry.
// The kernel becomes the registry's clock, and every flow started under
// a process span from then on records a child "flow" span.
func (k *Kernel) SetObs(r *obs.Registry) {
	k.obs = r
	r.SetClock(k)
}

// Obs returns the attached registry (nil when detached). The nil value
// is safe to use: all obs handles no-op.
func (k *Kernel) Obs() *obs.Registry { return k.obs }

// NewKernel returns an empty kernel at virtual time zero.
func NewKernel() *Kernel {
	return &Kernel{flows: make(map[*Flow]struct{})}
}

// Now returns the current virtual time in seconds.
func (k *Kernel) Now() float64 { return k.now }

// schedule enqueues fn to run at virtual time at (>= now).
func (k *Kernel) schedule(at float64, fn func()) {
	if at < k.now {
		at = k.now
	}
	k.seq++
	heap.Push(&k.events, &event{at: at, seq: k.seq, fn: fn})
}

// After schedules fn to run d seconds from now. It is the low-level timer
// primitive; processes should normally use Proc.Sleep.
func (k *Kernel) After(d float64, fn func()) {
	if d < 0 {
		d = 0
	}
	k.schedule(k.now+d, fn)
}

// RefreshRates settles every in-flight flow at the current instant and
// reassigns fair-share rates from the resources' *current* capacities.
// Rates are normally recomputed only at flow-membership changes, which
// re-read Capacity as a side effect; a caller that mutates a resource's
// Capacity mid-flight (e.g. a fault injector degrading an OST) must call
// this for the change to reach flows already in progress. Must be called
// from kernel context (an event callback or a Proc body).
func (k *Kernel) RefreshRates() {
	k.settleFlows()
	k.recomputeFlows()
}

// Run executes events until the queue drains. It panics with the original
// value if any process panicked. Run may be called again after it returns
// (e.g. after starting more processes).
func (k *Kernel) Run() {
	for len(k.events) > 0 {
		e := heap.Pop(&k.events).(*event)
		if e.at > k.now {
			k.now = e.at
		}
		e.fn()
		if k.failure != nil {
			panic(k.failure)
		}
	}
	if k.liveProcs > 0 {
		panic(fmt.Sprintf("sim: deadlock — %d process(es) still blocked with no pending events at t=%.6f", k.liveProcs, k.now))
	}
}

// Proc is a simulated process. All Proc methods must be called from within
// the process's own function; they block in virtual time.
type Proc struct {
	k    *Kernel
	name string
	wake chan struct{}
	park chan struct{}
	span *obs.Span
}

// Span returns the process's current observability span (nil when none
// is set or no registry is attached). Flows started by the process
// become children of this span.
func (p *Proc) Span() *obs.Span { return p.span }

// SetSpan installs s as the process's current span and returns the
// previous one, so callers can nest:
//
//	prev := p.SetSpan(s)
//	defer p.SetSpan(prev)
func (p *Proc) SetSpan(s *obs.Span) *obs.Span {
	prev := p.span
	p.span = s
	return prev
}

// Name returns the name the process was started with.
func (p *Proc) Name() string { return p.name }

// Kernel returns the kernel the process runs on.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time.
func (p *Proc) Now() float64 { return p.k.now }

// Go starts fn as a new simulated process scheduled to begin immediately
// (at the current virtual time, after already-queued events).
func (k *Kernel) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{k: k, name: name, wake: make(chan struct{}), park: make(chan struct{})}
	k.liveProcs++
	go func() {
		<-p.wake
		defer func() {
			if r := recover(); r != nil {
				if k.failure == nil {
					k.failure = fmt.Errorf("sim: process %q panicked: %v", name, r)
				}
			}
			k.liveProcs--
			p.park <- struct{}{}
		}()
		fn(p)
	}()
	k.schedule(k.now, func() { k.resume(p) })
	return p
}

// resume hands control to p and waits until p parks or exits. It must only
// be called from event context (the Run loop), never from process context.
func (k *Kernel) resume(p *Proc) {
	p.wake <- struct{}{}
	<-p.park
}

// pause yields control back to the kernel until another event resumes p.
func (p *Proc) pause() {
	p.park <- struct{}{}
	<-p.wake
}

// Sleep blocks the process for d virtual seconds. Negative d sleeps zero.
// Sleep is also how modeled compute cost is charged ("this phase takes
// 0.55 s per image level").
func (p *Proc) Sleep(d float64) {
	if d < 0 {
		d = 0
	}
	p.k.After(d, func() { p.k.resume(p) })
	p.pause()
}

// Yield reschedules the process behind all events already queued at the
// current instant.
func (p *Proc) Yield() { p.Sleep(0) }

// Resource is a bandwidth-capacity device: a disk, a NIC, a switch fabric,
// an OST. Concurrent flows crossing it share its capacity fairly.
type Resource struct {
	// Name identifies the resource in traces and error messages.
	Name string
	// Capacity is the aggregate bandwidth in bytes per second. It must be
	// positive for any flow that crosses the resource to make progress.
	Capacity float64
	// PerFlowCap, when positive, limits each individual flow's share
	// (e.g. a single TCP stream that cannot saturate a bonded link).
	PerFlowCap float64
	// Latency, when positive, is a fixed per-operation setup delay in
	// seconds charged once per Transfer that crosses the resource.
	Latency float64

	active int
}

// NewResource returns a resource with the given aggregate capacity in
// bytes/second.
func NewResource(name string, capacity float64) *Resource {
	return &Resource{Name: name, Capacity: capacity}
}

// Active reports how many flows currently cross the resource.
func (r *Resource) Active() int { return r.active }

// Flow is an in-flight transfer across a set of resources.
type Flow struct {
	id        uint64
	total     float64
	remaining float64
	rate      float64
	res       []*Resource
	onDone    func()
	span      *obs.Span
}

// ID returns the kernel-unique flow id, matching TraceEvent.Flow.
func (f *Flow) ID() uint64 { return f.id }

// Remaining reports the bytes the flow still has to move (settled to the
// last recompute instant; callers outside the kernel should treat it as
// approximate).
func (f *Flow) Remaining() float64 { return f.remaining }

// settleFlows advances every active flow's remaining-bytes to the current
// instant using the rates fixed at the previous recompute.
func (k *Kernel) settleFlows() {
	dt := k.now - k.lastSettle
	if dt > 0 {
		for f := range k.flows {
			f.remaining -= f.rate * dt
		}
	}
	k.lastSettle = k.now
}

// recomputeFlows reassigns every flow's fair-share rate and schedules the
// next completion event.
func (k *Kernel) recomputeFlows() {
	k.flowEpoch++
	if len(k.flows) == 0 {
		return
	}
	minETA := math.Inf(1)
	for f := range k.flows {
		rate := math.Inf(1)
		for _, r := range f.res {
			share := r.Capacity / float64(r.active)
			if r.PerFlowCap > 0 && share > r.PerFlowCap {
				share = r.PerFlowCap
			}
			if share < rate {
				rate = share
			}
		}
		if math.IsInf(rate, 1) {
			// Flow crosses no resources: completes instantly.
			rate = math.MaxFloat64
		}
		f.rate = rate
		if f.rate > 0 {
			eta := f.remaining / f.rate
			if eta < 0 {
				eta = 0
			}
			if eta < minETA {
				minETA = eta
			}
		}
	}
	if math.IsInf(minETA, 1) {
		return // all flows stalled on zero-capacity resources
	}
	epoch := k.flowEpoch
	k.schedule(k.now+minETA, func() {
		if epoch != k.flowEpoch {
			return // superseded by a later membership change
		}
		k.completeFlows()
	})
}

// completeFlows settles progress, finishes every flow that has drained,
// fires completion callbacks in flow-start order, and recomputes rates.
func (k *Kernel) completeFlows() {
	k.settleFlows()
	var done []*Flow
	for f := range k.flows {
		if f.remaining <= epsBytes {
			done = append(done, f)
		}
	}
	sort.Slice(done, func(i, j int) bool { return done[i].id < done[j].id })
	for _, f := range done {
		delete(k.flows, f)
		for _, r := range f.res {
			r.active--
		}
		k.traceFlowEnd(f)
		f.span.End()
	}
	k.recomputeFlows()
	for _, f := range done {
		if f.onDone != nil {
			f.onDone()
		}
	}
}

// StartFlow begins moving bytes across the given resources and invokes
// onDone (from event context) when the transfer completes. Zero or
// negative sizes complete immediately (still asynchronously). StartFlow
// does not charge resource Latency; Proc.Transfer does.
func (k *Kernel) StartFlow(bytes float64, onDone func(), res ...*Resource) *Flow {
	return k.startFlow(bytes, onDone, nil, res...)
}

// startFlow is StartFlow plus span parentage: when a registry is
// attached and the starting process has a current span, the flow
// records a child "flow" span carrying its id, size, and resource
// chain.
func (k *Kernel) startFlow(bytes float64, onDone func(), parent *obs.Span, res ...*Resource) *Flow {
	k.flowSeq++
	f := &Flow{id: k.flowSeq, total: bytes, remaining: bytes, res: res, onDone: onDone}
	if k.obs != nil && parent != nil {
		f.span = k.obs.StartSpan("flow", "sim", parent)
		f.span.Arg("flow", f.id)
		f.span.Arg("bytes", bytes)
		f.span.Arg("res", strings.Join(resourceNames(res), "+"))
	}
	k.traceFlowStart(f, "")
	if bytes <= epsBytes {
		k.schedule(k.now, func() {
			k.traceFlowEnd(f)
			f.span.End()
			if f.onDone != nil {
				f.onDone()
			}
		})
		return f
	}
	k.settleFlows()
	k.flows[f] = struct{}{}
	for _, r := range res {
		r.active++
	}
	k.recomputeFlows()
	return f
}

// Transfer moves bytes across the given resources, blocking the process in
// virtual time until the flow drains. The sum of the resources' Latency
// fields is charged first as a fixed delay.
func (p *Proc) Transfer(bytes float64, res ...*Resource) {
	lat := 0.0
	for _, r := range res {
		lat += r.Latency
	}
	if lat > 0 {
		p.Sleep(lat)
	}
	p.k.startFlow(bytes, func() { p.k.resume(p) }, p.span, res...)
	p.pause()
}

// Part describes one leg of a parallel transfer.
type Part struct {
	// Bytes is the size of this leg.
	Bytes float64
	// Res is the resource chain this leg crosses.
	Res []*Resource
}

// TransferAll starts every part concurrently and blocks until all of them
// complete — the shape of a striped PFS read, where one client pulls
// segments from many OSTs at once. Each part individually charges its
// resources' latency before its flow starts.
func (p *Proc) TransferAll(parts ...Part) {
	if len(parts) == 0 {
		return
	}
	remaining := len(parts)
	finish := func() {
		remaining--
		if remaining == 0 {
			p.k.resume(p)
		}
	}
	parent := p.span
	for _, pt := range parts {
		pt := pt
		lat := 0.0
		for _, r := range pt.Res {
			lat += r.Latency
		}
		start := func() { p.k.startFlow(pt.Bytes, finish, parent, pt.Res...) }
		if lat > 0 {
			p.k.After(lat, start)
		} else {
			start()
		}
	}
	p.pause()
}

package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) <= 1e-6*(1+math.Abs(a)+math.Abs(b))
}

func TestSleepAdvancesClock(t *testing.T) {
	k := NewKernel()
	var end float64
	k.Go("sleeper", func(p *Proc) {
		p.Sleep(2.5)
		p.Sleep(1.5)
		end = p.Now()
	})
	k.Run()
	if !almostEqual(end, 4.0) {
		t.Fatalf("end = %v, want 4.0", end)
	}
}

func TestNegativeSleepIsZero(t *testing.T) {
	k := NewKernel()
	k.Go("p", func(p *Proc) {
		p.Sleep(-5)
		if p.Now() != 0 {
			t.Errorf("negative sleep advanced clock to %v", p.Now())
		}
	})
	k.Run()
}

func TestSingleFlowRate(t *testing.T) {
	k := NewKernel()
	disk := NewResource("disk", 100) // 100 B/s
	var done float64
	k.Go("reader", func(p *Proc) {
		p.Transfer(500, disk)
		done = p.Now()
	})
	k.Run()
	if !almostEqual(done, 5.0) {
		t.Fatalf("done = %v, want 5.0", done)
	}
}

func TestTwoFlowsShareFairly(t *testing.T) {
	k := NewKernel()
	disk := NewResource("disk", 100)
	ends := map[string]float64{}
	for _, name := range []string{"a", "b"} {
		name := name
		k.Go(name, func(p *Proc) {
			p.Transfer(500, disk)
			ends[name] = p.Now()
		})
	}
	k.Run()
	// Two equal flows on a 100 B/s resource each get 50 B/s: both end at 10 s.
	for name, at := range ends {
		if !almostEqual(at, 10.0) {
			t.Errorf("flow %s ended at %v, want 10.0", name, at)
		}
	}
}

func TestShortFlowReleasesBandwidth(t *testing.T) {
	k := NewKernel()
	disk := NewResource("disk", 100)
	var longEnd, shortEnd float64
	k.Go("long", func(p *Proc) {
		p.Transfer(1000, disk)
		longEnd = p.Now()
	})
	k.Go("short", func(p *Proc) {
		p.Transfer(100, disk)
		shortEnd = p.Now()
	})
	k.Run()
	// Both start at 50 B/s. Short (100 B) ends at t=2. Long then has 900
	// remaining of 1000 minus 100 moved = 900 at full 100 B/s -> ends at 11.
	if !almostEqual(shortEnd, 2.0) {
		t.Errorf("short ended at %v, want 2.0", shortEnd)
	}
	if !almostEqual(longEnd, 11.0) {
		t.Errorf("long ended at %v, want 11.0", longEnd)
	}
}

func TestFlowJoiningMidway(t *testing.T) {
	k := NewKernel()
	disk := NewResource("disk", 100)
	var aEnd, bEnd float64
	k.Go("a", func(p *Proc) {
		p.Transfer(1000, disk)
		aEnd = p.Now()
	})
	k.Go("b", func(p *Proc) {
		p.Sleep(5) // a moves 500 alone
		p.Transfer(250, disk)
		bEnd = p.Now()
	})
	k.Run()
	// From t=5 both at 50 B/s. b's 250 B end at t=10; a then has
	// 1000-500-250=250 left at 100 B/s -> t=12.5.
	if !almostEqual(bEnd, 10.0) {
		t.Errorf("b ended at %v, want 10.0", bEnd)
	}
	if !almostEqual(aEnd, 12.5) {
		t.Errorf("a ended at %v, want 12.5", aEnd)
	}
}

func TestMultiResourceBottleneck(t *testing.T) {
	k := NewKernel()
	fast := NewResource("fast", 1000)
	slow := NewResource("slow", 10)
	var end float64
	k.Go("p", func(p *Proc) {
		p.Transfer(100, fast, slow)
		end = p.Now()
	})
	k.Run()
	if !almostEqual(end, 10.0) {
		t.Fatalf("end = %v, want 10.0 (bottleneck on slow)", end)
	}
}

func TestPerFlowCap(t *testing.T) {
	k := NewKernel()
	link := NewResource("link", 1000)
	link.PerFlowCap = 100
	var end float64
	k.Go("p", func(p *Proc) {
		p.Transfer(500, link)
		end = p.Now()
	})
	k.Run()
	if !almostEqual(end, 5.0) {
		t.Fatalf("end = %v, want 5.0 (per-flow cap)", end)
	}
}

func TestLatencyCharged(t *testing.T) {
	k := NewKernel()
	disk := NewResource("disk", 100)
	disk.Latency = 0.25
	var end float64
	k.Go("p", func(p *Proc) {
		p.Transfer(100, disk)
		end = p.Now()
	})
	k.Run()
	if !almostEqual(end, 1.25) {
		t.Fatalf("end = %v, want 1.25 (0.25 latency + 1s transfer)", end)
	}
}

func TestZeroByteTransferCompletes(t *testing.T) {
	k := NewKernel()
	disk := NewResource("disk", 100)
	ran := false
	k.Go("p", func(p *Proc) {
		p.Transfer(0, disk)
		ran = true
		if p.Now() != 0 {
			t.Errorf("zero-byte transfer advanced time to %v", p.Now())
		}
	})
	k.Run()
	if !ran {
		t.Fatal("process never resumed after zero-byte transfer")
	}
}

func TestTransferAllParallelStripes(t *testing.T) {
	k := NewKernel()
	ost1 := NewResource("ost1", 100)
	ost2 := NewResource("ost2", 100)
	var end float64
	k.Go("client", func(p *Proc) {
		p.TransferAll(
			Part{Bytes: 400, Res: []*Resource{ost1}},
			Part{Bytes: 400, Res: []*Resource{ost2}},
		)
		end = p.Now()
	})
	k.Run()
	// Independent OSTs run in parallel: 400 B at 100 B/s each = 4 s, not 8.
	if !almostEqual(end, 4.0) {
		t.Fatalf("end = %v, want 4.0", end)
	}
}

func TestTransferAllEmpty(t *testing.T) {
	k := NewKernel()
	done := false
	k.Go("p", func(p *Proc) {
		p.TransferAll()
		done = true
	})
	k.Run()
	if !done {
		t.Fatal("TransferAll with no parts never returned")
	}
}

func TestSemaphoreLimitsConcurrency(t *testing.T) {
	k := NewKernel()
	slots := k.NewSemaphore(2)
	var maxHeld int
	var ends []float64
	for i := 0; i < 4; i++ {
		k.Go("task", func(p *Proc) {
			p.Acquire(slots)
			if slots.Held() > maxHeld {
				maxHeld = slots.Held()
			}
			p.Sleep(1)
			slots.Release()
			ends = append(ends, p.Now())
		})
	}
	k.Run()
	if maxHeld != 2 {
		t.Errorf("max held = %d, want 2", maxHeld)
	}
	// 4 tasks, 2 slots, 1 s each -> two waves: ends 1,1,2,2.
	want := []float64{1, 1, 2, 2}
	if len(ends) != 4 {
		t.Fatalf("got %d ends, want 4", len(ends))
	}
	for i, e := range ends {
		if !almostEqual(e, want[i]) {
			t.Errorf("end[%d] = %v, want %v", i, e, want[i])
		}
	}
}

func TestSemaphoreFIFO(t *testing.T) {
	k := NewKernel()
	s := k.NewSemaphore(1)
	var order []string
	for _, name := range []string{"first", "second", "third"} {
		name := name
		k.Go(name, func(p *Proc) {
			p.Acquire(s)
			order = append(order, name)
			p.Sleep(1)
			s.Release()
		})
	}
	k.Run()
	want := []string{"first", "second", "third"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestWaitGroup(t *testing.T) {
	k := NewKernel()
	wg := k.NewWaitGroup()
	wg.Add(3)
	var waitedAt float64 = -1
	for i := 0; i < 3; i++ {
		d := float64(i + 1)
		k.Go("worker", func(p *Proc) {
			p.Sleep(d)
			wg.Done()
		})
	}
	k.Go("waiter", func(p *Proc) {
		p.Wait(wg)
		waitedAt = p.Now()
	})
	k.Run()
	if !almostEqual(waitedAt, 3.0) {
		t.Fatalf("waiter resumed at %v, want 3.0", waitedAt)
	}
}

func TestWaitGroupZeroReturnsImmediately(t *testing.T) {
	k := NewKernel()
	wg := k.NewWaitGroup()
	done := false
	k.Go("p", func(p *Proc) {
		p.Wait(wg)
		done = true
	})
	k.Run()
	if !done {
		t.Fatal("Wait on zero-count group blocked forever")
	}
}

func TestQueueFIFOAndClose(t *testing.T) {
	k := NewKernel()
	q := k.NewQueue()
	var got []int
	k.Go("consumer", func(p *Proc) {
		for {
			v, ok := p.Pop(q)
			if !ok {
				return
			}
			got = append(got, v.(int))
		}
	})
	k.Go("producer", func(p *Proc) {
		for i := 1; i <= 5; i++ {
			p.Sleep(1)
			q.Push(i)
		}
		q.Close()
	})
	k.Run()
	if len(got) != 5 {
		t.Fatalf("got %d items, want 5", len(got))
	}
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("got = %v, want 1..5 in order", got)
		}
	}
}

func TestProcPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Run did not propagate process panic")
		}
	}()
	k := NewKernel()
	k.Go("bad", func(p *Proc) { panic("boom") })
	k.Run()
}

func TestDeadlockDetected(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Run did not detect deadlocked process")
		}
	}()
	k := NewKernel()
	s := k.NewSemaphore(1)
	k.Go("stuck", func(p *Proc) {
		p.Acquire(s)
		p.Acquire(s) // deadlock: never released
	})
	k.Run()
}

func TestDeterminism(t *testing.T) {
	run := func() []float64 {
		k := NewKernel()
		disk := NewResource("disk", 100)
		nic := NewResource("nic", 80)
		var trace []float64
		for i := 0; i < 10; i++ {
			sz := float64(100 + 37*i)
			k.Go("p", func(p *Proc) {
				p.Transfer(sz, disk, nic)
				trace = append(trace, p.Now())
			})
		}
		k.Run()
		return trace
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic: run1[%d]=%v run2[%d]=%v", i, a[i], i, b[i])
		}
	}
}

// TestWorkConservation: on a single always-busy resource the makespan must
// equal total bytes / capacity, regardless of how the load is split across
// flows — the fair-share model must not create or destroy bandwidth.
func TestWorkConservation(t *testing.T) {
	f := func(sizes []uint16) bool {
		var total float64
		var nonzero int
		for _, s := range sizes {
			total += float64(s)
			if s > 0 {
				nonzero++
			}
		}
		if nonzero == 0 {
			return true
		}
		k := NewKernel()
		disk := NewResource("disk", 100)
		var makespan float64
		for _, s := range sizes {
			sz := float64(s)
			if sz == 0 {
				continue
			}
			k.Go("p", func(p *Proc) {
				p.Transfer(sz, disk)
				if p.Now() > makespan {
					makespan = p.Now()
				}
			})
		}
		k.Run()
		return almostEqual(makespan, total/100)
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestRatesNeverExceedCapacity: at every completion instant the sum of
// rates on a shared resource must not exceed its capacity.
func TestRatesNeverExceedCapacity(t *testing.T) {
	k := NewKernel()
	disk := NewResource("disk", 100)
	check := func() {
		var sum float64
		for _, f := range k.flowHeap {
			crosses := false
			for _, r := range f.res {
				if r == disk {
					crosses = true
				}
			}
			if crosses {
				sum += f.rate
			}
		}
		if sum > 100+1e-6 {
			t.Errorf("aggregate rate %v exceeds capacity 100", sum)
		}
	}
	for i := 0; i < 7; i++ {
		sz := float64(50 * (i + 1))
		st := float64(i) * 0.3
		k.Go("p", func(p *Proc) {
			p.Sleep(st)
			p.Transfer(sz, disk)
			check()
		})
	}
	k.Run()
}

func TestRunTwice(t *testing.T) {
	k := NewKernel()
	var first, second float64
	k.Go("a", func(p *Proc) { p.Sleep(1); first = p.Now() })
	k.Run()
	k.Go("b", func(p *Proc) { p.Sleep(1); second = p.Now() })
	k.Run()
	if !almostEqual(first, 1) || !almostEqual(second, 2) {
		t.Fatalf("first=%v second=%v, want 1 and 2", first, second)
	}
}

func TestTracerRecordsFlows(t *testing.T) {
	k := NewKernel()
	tr := &Tracer{}
	k.SetTracer(tr)
	disk := NewResource("disk", 100)
	nic := NewResource("nic", 1000)
	k.Go("a", func(p *Proc) { p.Transfer(200, disk, nic) })
	k.Go("b", func(p *Proc) { p.Transfer(300, disk) })
	k.Run()
	if got := tr.BytesThrough("disk"); got != 500 {
		t.Fatalf("disk bytes = %v, want 500", got)
	}
	if got := tr.BytesThrough("nic"); got != 200 {
		t.Fatalf("nic bytes = %v, want 200", got)
	}
	busiest := tr.Busiest()
	if len(busiest) != 2 || busiest[0] != "disk" {
		t.Fatalf("busiest = %v", busiest)
	}
	if tr.String() == "" {
		t.Fatal("trace render empty")
	}
	starts, ends := 0, 0
	for _, ev := range tr.Events() {
		switch ev.Kind {
		case "flow-start":
			starts++
		case "flow-end":
			ends++
		}
	}
	if starts != 2 || ends != 2 {
		t.Fatalf("starts=%d ends=%d", starts, ends)
	}
}

func TestTracerBounded(t *testing.T) {
	k := NewKernel()
	tr := &Tracer{MaxEvents: 3}
	k.SetTracer(tr)
	disk := NewResource("disk", 1000)
	k.Go("p", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Transfer(10, disk)
		}
	})
	k.Run()
	if tr.Len() != 3 {
		t.Fatalf("events = %d, want bounded to 3", tr.Len())
	}
}

func TestNoTracerNoOverhead(t *testing.T) {
	k := NewKernel()
	disk := NewResource("disk", 100)
	k.Go("p", func(p *Proc) { p.Transfer(100, disk) })
	k.Run() // must not panic without a tracer
}

package sim

// Semaphore is a counting semaphore in virtual time. It models bounded
// execution slots — YARN container slots on a Hadoop node, the per-node MPI
// rank count, a disk's outstanding-request window.
type Semaphore struct {
	k        *Kernel
	capacity int
	held     int
	waiters  []*Proc
}

// NewSemaphore returns a semaphore with the given number of slots.
func (k *Kernel) NewSemaphore(capacity int) *Semaphore {
	if capacity < 1 {
		panic("sim: semaphore capacity must be >= 1")
	}
	return &Semaphore{k: k, capacity: capacity}
}

// Capacity returns the total slot count.
func (s *Semaphore) Capacity() int { return s.capacity }

// Held returns the number of slots currently taken.
func (s *Semaphore) Held() int { return s.held }

// Acquire blocks the process until a slot is free, then takes it. Waiters
// are served strictly in arrival order.
func (p *Proc) Acquire(s *Semaphore) {
	if s.held < s.capacity && len(s.waiters) == 0 {
		s.held++
		return
	}
	s.waiters = append(s.waiters, p)
	p.pause()
}

// Release frees one slot. If a process is waiting, the slot transfers to
// the head of the queue and that process resumes at the current instant.
func (s *Semaphore) Release() {
	if s.held <= 0 {
		panic("sim: semaphore released more times than acquired")
	}
	if len(s.waiters) > 0 {
		next := s.waiters[0]
		s.waiters = s.waiters[1:]
		// The slot passes directly to next; held stays constant.
		s.k.schedule(s.k.now, func() { s.k.resume(next) })
		return
	}
	s.held--
}

// WaitGroup waits for a collection of simulated activities to finish,
// mirroring sync.WaitGroup in virtual time.
type WaitGroup struct {
	k       *Kernel
	count   int
	waiters []*Proc
}

// NewWaitGroup returns an empty wait group.
func (k *Kernel) NewWaitGroup() *WaitGroup { return &WaitGroup{k: k} }

// Add increments the pending-activity counter by n.
func (w *WaitGroup) Add(n int) {
	w.count += n
	if w.count < 0 {
		panic("sim: negative WaitGroup counter")
	}
	if w.count == 0 {
		w.release()
	}
}

// Done decrements the counter by one, waking all waiters when it hits zero.
func (w *WaitGroup) Done() { w.Add(-1) }

func (w *WaitGroup) release() {
	waiters := w.waiters
	w.waiters = nil
	for _, p := range waiters {
		p := p
		w.k.schedule(w.k.now, func() { w.k.resume(p) })
	}
}

// Wait blocks the process until the counter reaches zero. A zero counter
// returns immediately.
func (p *Proc) Wait(w *WaitGroup) {
	if w.count == 0 {
		return
	}
	w.waiters = append(w.waiters, p)
	p.pause()
}

// Queue is an unbounded FIFO channel between simulated processes; a shuffle
// stream between map and reduce tasks, a request queue at a metadata
// server.
type Queue struct {
	k      *Kernel
	items  []any
	closed bool
	recvQ  []*Proc
}

// NewQueue returns an empty open queue.
func (k *Kernel) NewQueue() *Queue { return &Queue{k: k} }

// Push appends an item and wakes the longest-waiting receiver, if any.
// Pushing to a closed queue panics.
func (q *Queue) Push(v any) {
	if q.closed {
		panic("sim: push to closed queue")
	}
	q.items = append(q.items, v)
	q.wakeOne()
}

// Close marks the queue complete; blocked and future receivers observe
// ok=false once the backlog drains.
func (q *Queue) Close() {
	q.closed = true
	for _, p := range q.recvQ {
		p := p
		q.k.schedule(q.k.now, func() { q.k.resume(p) })
	}
	q.recvQ = nil
}

func (q *Queue) wakeOne() {
	if len(q.recvQ) == 0 {
		return
	}
	p := q.recvQ[0]
	q.recvQ = q.recvQ[1:]
	q.k.schedule(q.k.now, func() { q.k.resume(p) })
}

// Pop blocks the process until an item is available or the queue is closed
// and empty, in which case it returns (nil, false).
func (p *Proc) Pop(q *Queue) (any, bool) {
	for {
		if len(q.items) > 0 {
			v := q.items[0]
			q.items = q.items[1:]
			return v, true
		}
		if q.closed {
			return nil, false
		}
		q.recvQ = append(q.recvQ, p)
		p.pause()
	}
}

package sim

import (
	"fmt"
	"slices"
	"strings"

	"scidp/internal/obs"
)

// TraceEvent is one recorded kernel occurrence.
type TraceEvent struct {
	// At is the virtual time of the event.
	At float64
	// Kind is the event type ("flow-start", "flow-end", "sleep",
	// "proc-start", "proc-end").
	Kind string
	// Proc is the originating process name ("" for kernel-internal).
	Proc string
	// Resources names the resources a flow crosses.
	Resources []string
	// Bytes is the flow size (flows only).
	Bytes float64
	// Flow is the kernel-unique flow id (flows only); it pairs a
	// flow-start with its flow-end and cross-references the flow's obs
	// span, which carries the same id in its "flow" arg.
	Flow uint64
}

// Tracer records kernel activity when attached via Kernel.SetTracer —
// an observability hook for debugging simulations and asserting on
// resource usage in tests. The zero value is ready to use.
//
// When MaxEvents is positive the tracer keeps the most recent MaxEvents
// events in a fixed ring buffer, so a bounded tracer has bounded memory
// (the old trim re-sliced the buffer, pinning every dropped prefix's
// backing array).
type Tracer struct {
	// MaxEvents bounds the buffer (0 = unlimited); older events are
	// dropped first. Set it before recording begins; changing it later
	// rebuilds the ring on the next record.
	MaxEvents int

	buf  []TraceEvent
	head int // index of the oldest event when bounded
	n    int
}

func (t *Tracer) record(ev TraceEvent) {
	if t.MaxEvents <= 0 {
		t.buf = append(t.buf, ev)
		t.head = 0
		t.n = len(t.buf)
		return
	}
	if len(t.buf) != t.MaxEvents {
		// MaxEvents changed (or first record): rebuild a right-sized
		// ring holding the most recent events.
		evs := t.Events()
		if len(evs) > t.MaxEvents {
			evs = evs[len(evs)-t.MaxEvents:]
		}
		t.buf = make([]TraceEvent, t.MaxEvents)
		t.head = 0
		t.n = copy(t.buf, evs)
	}
	if t.n < t.MaxEvents {
		t.buf[(t.head+t.n)%t.MaxEvents] = ev
		t.n++
		return
	}
	t.buf[t.head] = ev
	t.head = (t.head + 1) % t.MaxEvents
}

// Len reports how many events are buffered.
func (t *Tracer) Len() int { return t.n }

// Events returns the buffered events in occurrence order (a copy; the
// tracer may keep recording).
func (t *Tracer) Events() []TraceEvent {
	out := make([]TraceEvent, 0, t.n)
	t.each(func(ev TraceEvent) { out = append(out, ev) })
	return out
}

// each visits buffered events oldest-first without copying.
func (t *Tracer) each(fn func(TraceEvent)) {
	if t.head == 0 {
		for _, ev := range t.buf[:t.n] {
			fn(ev)
		}
		return
	}
	for i := 0; i < t.n; i++ {
		fn(t.buf[(t.head+i)%len(t.buf)])
	}
}

// BytesThrough totals flow bytes that crossed the named resource.
func (t *Tracer) BytesThrough(resource string) float64 {
	var sum float64
	t.each(func(ev TraceEvent) {
		if ev.Kind != "flow-end" {
			return
		}
		for _, r := range ev.Resources {
			if r == resource {
				sum += ev.Bytes
				break
			}
		}
	})
	return sum
}

// Busiest returns resources ordered by total bytes moved, descending;
// ties break by name ascending.
func (t *Tracer) Busiest() []string {
	totals := map[string]float64{}
	t.each(func(ev TraceEvent) {
		if ev.Kind != "flow-end" {
			return
		}
		for _, r := range ev.Resources {
			totals[r] += ev.Bytes
		}
	})
	names := make([]string, 0, len(totals))
	for n := range totals {
		names = append(names, n)
	}
	slices.SortFunc(names, func(a, b string) int {
		if totals[a] != totals[b] {
			if totals[a] > totals[b] {
				return -1
			}
			return 1
		}
		return strings.Compare(a, b)
	})
	return names
}

// String renders the trace, one event per line.
func (t *Tracer) String() string {
	var sb strings.Builder
	t.each(func(ev TraceEvent) {
		fmt.Fprintf(&sb, "%10.4f %-10s %-24s", ev.At, ev.Kind, ev.Proc)
		if len(ev.Resources) > 0 {
			fmt.Fprintf(&sb, " %s", strings.Join(ev.Resources, "+"))
		}
		if ev.Bytes > 0 {
			fmt.Fprintf(&sb, " %.0fB", ev.Bytes)
		}
		sb.WriteByte('\n')
	})
	return sb.String()
}

// ExportResourceMetrics derives per-resource utilization counters from
// the buffered flow events and accumulates them into reg:
//
//	sim/resource_bytes_total{res=...}   bytes moved through the resource
//	sim/resource_flows_total{res=...}   flows that crossed it
//	sim/resource_busy_seconds{res=...}  virtual time with >=1 active flow
//
// Busy time is measured between each resource's flow-start/flow-end
// pairs (matched by Flow id); a still-open flow at the end of the
// buffer contributes up to the last buffered event's timestamp. Call it
// after Kernel.Run with an unbounded tracer for exact totals — a
// bounded tracer yields totals for the retained window only.
func (t *Tracer) ExportResourceMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	type agg struct {
		bytes   float64
		flows   float64
		busy    float64
		active  int
		peak    int
		sinceAt float64
	}
	aggs := map[string]*agg{}
	var last float64
	t.each(func(ev TraceEvent) {
		last = ev.At
		for _, r := range ev.Resources {
			a := aggs[r]
			if a == nil {
				a = &agg{}
				aggs[r] = a
			}
			switch ev.Kind {
			case "flow-start":
				a.flows++
				if a.active == 0 {
					a.sinceAt = ev.At
				}
				a.active++
				if a.active > a.peak {
					a.peak = a.active
				}
			case "flow-end":
				a.bytes += ev.Bytes
				if a.active > 0 {
					a.active--
					if a.active == 0 {
						a.busy += ev.At - a.sinceAt
					}
				}
			}
		}
	})
	names := make([]string, 0, len(aggs))
	for n := range aggs {
		names = append(names, n)
	}
	slices.Sort(names)
	for _, n := range names {
		a := aggs[n]
		if a.active > 0 { // flows still open when the buffer ended
			a.busy += last - a.sinceAt
		}
		reg.Counter("sim/resource_bytes_total", obs.L("res", n)).Add(a.bytes)
		reg.Counter("sim/resource_flows_total", obs.L("res", n)).Add(a.flows)
		reg.Counter("sim/resource_busy_seconds", obs.L("res", n)).Add(a.busy)
		// Peak concurrent flows is the queue-depth signal bottleneck
		// ranking wants; a gauge so re-export keeps the maximum rather
		// than accumulating.
		g := reg.Gauge("sim/resource_peak_flows", obs.L("res", n))
		if float64(a.peak) > g.Value() {
			g.Set(float64(a.peak))
		}
	}
}

// SetTracer attaches (or detaches, with nil) a tracer to the kernel.
func (k *Kernel) SetTracer(t *Tracer) { k.tracer = t }

// traceFlowStart records a flow beginning (no-op without a tracer).
func (k *Kernel) traceFlowStart(f *Flow, proc string) {
	if k.tracer == nil {
		return
	}
	k.tracer.record(TraceEvent{At: k.now, Kind: "flow-start", Proc: proc, Resources: resourceNames(f.res), Bytes: f.total, Flow: f.id})
}

// traceFlowEnd records a flow completing.
func (k *Kernel) traceFlowEnd(f *Flow) {
	if k.tracer == nil {
		return
	}
	k.tracer.record(TraceEvent{At: k.now, Kind: "flow-end", Resources: resourceNames(f.res), Bytes: f.total, Flow: f.id})
}

func resourceNames(res []*Resource) []string {
	out := make([]string, len(res))
	for i, r := range res {
		out[i] = r.Name
	}
	return out
}

package sim

import (
	"fmt"
	"sort"
	"strings"
)

// TraceEvent is one recorded kernel occurrence.
type TraceEvent struct {
	// At is the virtual time of the event.
	At float64
	// Kind is the event type ("flow-start", "flow-end", "sleep",
	// "proc-start", "proc-end").
	Kind string
	// Proc is the originating process name ("" for kernel-internal).
	Proc string
	// Resources names the resources a flow crosses.
	Resources []string
	// Bytes is the flow size (flows only).
	Bytes float64
}

// Tracer records kernel activity when attached via Kernel.SetTracer —
// an observability hook for debugging simulations and asserting on
// resource usage in tests. The zero value is ready to use.
type Tracer struct {
	// Events accumulates in occurrence order.
	Events []TraceEvent
	// MaxEvents bounds the buffer (0 = unlimited); older events are
	// dropped first.
	MaxEvents int
}

func (t *Tracer) record(ev TraceEvent) {
	t.Events = append(t.Events, ev)
	if t.MaxEvents > 0 && len(t.Events) > t.MaxEvents {
		t.Events = t.Events[len(t.Events)-t.MaxEvents:]
	}
}

// BytesThrough totals flow bytes that crossed the named resource.
func (t *Tracer) BytesThrough(resource string) float64 {
	var sum float64
	for _, ev := range t.Events {
		if ev.Kind != "flow-end" {
			continue
		}
		for _, r := range ev.Resources {
			if r == resource {
				sum += ev.Bytes
				break
			}
		}
	}
	return sum
}

// Busiest returns resources ordered by total bytes moved, descending.
func (t *Tracer) Busiest() []string {
	totals := map[string]float64{}
	for _, ev := range t.Events {
		if ev.Kind != "flow-end" {
			continue
		}
		for _, r := range ev.Resources {
			totals[r] += ev.Bytes
		}
	}
	names := make([]string, 0, len(totals))
	for n := range totals {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		if totals[names[i]] != totals[names[j]] {
			return totals[names[i]] > totals[names[j]]
		}
		return names[i] < names[j]
	})
	return names
}

// String renders the trace, one event per line.
func (t *Tracer) String() string {
	var sb strings.Builder
	for _, ev := range t.Events {
		fmt.Fprintf(&sb, "%10.4f %-10s %-24s", ev.At, ev.Kind, ev.Proc)
		if len(ev.Resources) > 0 {
			fmt.Fprintf(&sb, " %s", strings.Join(ev.Resources, "+"))
		}
		if ev.Bytes > 0 {
			fmt.Fprintf(&sb, " %.0fB", ev.Bytes)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// SetTracer attaches (or detaches, with nil) a tracer to the kernel.
func (k *Kernel) SetTracer(t *Tracer) { k.tracer = t }

// traceFlowStart records a flow beginning (no-op without a tracer).
func (k *Kernel) traceFlowStart(f *Flow, proc string) {
	if k.tracer == nil {
		return
	}
	k.tracer.record(TraceEvent{At: k.now, Kind: "flow-start", Proc: proc, Resources: resourceNames(f.res), Bytes: f.total})
}

// traceFlowEnd records a flow completing.
func (k *Kernel) traceFlowEnd(f *Flow) {
	if k.tracer == nil {
		return
	}
	k.tracer.record(TraceEvent{At: k.now, Kind: "flow-end", Resources: resourceNames(f.res), Bytes: f.total})
}

func resourceNames(res []*Resource) []string {
	out := make([]string, len(res))
	for i, r := range res {
		out[i] = r.Name
	}
	return out
}

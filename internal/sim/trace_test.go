package sim

import (
	"bytes"
	"testing"

	"scidp/internal/obs"
)

// fill records n synthetic flow-end events with increasing timestamps.
func fill(t *Tracer, n int, from int) {
	for i := 0; i < n; i++ {
		t.record(TraceEvent{At: float64(from + i), Kind: "flow-end", Resources: []string{"r"}, Bytes: 1, Flow: uint64(from + i)})
	}
}

func TestTracerBoundedDropsOldest(t *testing.T) {
	tr := &Tracer{MaxEvents: 3}
	fill(tr, 5, 0)
	evs := tr.Events()
	if len(evs) != 3 || tr.Len() != 3 {
		t.Fatalf("len = %d/%d, want 3", len(evs), tr.Len())
	}
	for i, ev := range evs {
		if want := uint64(i + 2); ev.Flow != want {
			t.Fatalf("event %d has flow %d, want %d (oldest must drop first)", i, ev.Flow, want)
		}
	}
	if cap(tr.buf) != 3 {
		t.Fatalf("ring capacity = %d, want exactly MaxEvents", cap(tr.buf))
	}
}

func TestTracerMaxEventsChangedMidStream(t *testing.T) {
	tr := &Tracer{} // unbounded first
	fill(tr, 6, 0)
	tr.MaxEvents = 2
	fill(tr, 1, 6)
	evs := tr.Events()
	if len(evs) != 2 || evs[0].Flow != 5 || evs[1].Flow != 6 {
		t.Fatalf("after shrink: %+v, want flows 5,6", evs)
	}
}

func TestTracerBoundedDropsAffectAggregates(t *testing.T) {
	tr := &Tracer{MaxEvents: 2}
	tr.record(TraceEvent{At: 0, Kind: "flow-end", Resources: []string{"a"}, Bytes: 100})
	tr.record(TraceEvent{At: 1, Kind: "flow-end", Resources: []string{"b"}, Bytes: 10})
	tr.record(TraceEvent{At: 2, Kind: "flow-end", Resources: []string{"b"}, Bytes: 10})
	// The 100-byte event through "a" fell out of the ring.
	if got := tr.BytesThrough("a"); got != 0 {
		t.Fatalf("a = %v, want 0 after drop", got)
	}
	if got := tr.BytesThrough("b"); got != 20 {
		t.Fatalf("b = %v, want 20", got)
	}
	if busiest := tr.Busiest(); len(busiest) != 1 || busiest[0] != "b" {
		t.Fatalf("busiest = %v, want [b]", busiest)
	}
}

func TestBusiestTieBreaksByName(t *testing.T) {
	tr := &Tracer{}
	tr.record(TraceEvent{Kind: "flow-end", Resources: []string{"zeta"}, Bytes: 50})
	tr.record(TraceEvent{Kind: "flow-end", Resources: []string{"alpha"}, Bytes: 50})
	tr.record(TraceEvent{Kind: "flow-end", Resources: []string{"mid"}, Bytes: 70})
	got := tr.Busiest()
	want := []string{"mid", "alpha", "zeta"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("busiest = %v, want %v", got, want)
		}
	}
}

func TestBytesThroughIgnoresStartsAndOtherResources(t *testing.T) {
	tr := &Tracer{}
	tr.record(TraceEvent{Kind: "flow-start", Resources: []string{"a"}, Bytes: 100})
	tr.record(TraceEvent{Kind: "flow-end", Resources: []string{"a", "b"}, Bytes: 40})
	if got := tr.BytesThrough("a"); got != 40 {
		t.Fatalf("a = %v, want 40 (flow-start must not count)", got)
	}
	if got := tr.BytesThrough("missing"); got != 0 {
		t.Fatalf("missing = %v, want 0", got)
	}
}

func TestZeroByteFlowsPairStartAndEnd(t *testing.T) {
	k := NewKernel()
	tr := &Tracer{}
	k.SetTracer(tr)
	disk := NewResource("disk", 100)
	k.Go("p", func(p *Proc) { p.Transfer(0, disk) })
	k.Run()
	starts, ends := 0, 0
	for _, ev := range tr.Events() {
		switch ev.Kind {
		case "flow-start":
			starts++
		case "flow-end":
			ends++
		}
	}
	if starts != 1 || ends != 1 {
		t.Fatalf("starts=%d ends=%d, want 1/1", starts, ends)
	}
}

func TestFlowEventsCarryMatchingIDs(t *testing.T) {
	k := NewKernel()
	tr := &Tracer{}
	k.SetTracer(tr)
	disk := NewResource("disk", 100)
	k.Go("p", func(p *Proc) { p.Transfer(100, disk) })
	k.Run()
	var startID, endID uint64
	for _, ev := range tr.Events() {
		switch ev.Kind {
		case "flow-start":
			startID = ev.Flow
		case "flow-end":
			endID = ev.Flow
		}
	}
	if startID == 0 || startID != endID {
		t.Fatalf("flow ids start=%d end=%d, want equal and nonzero", startID, endID)
	}
}

func TestExportResourceMetrics(t *testing.T) {
	k := NewKernel()
	tr := &Tracer{}
	k.SetTracer(tr)
	disk := NewResource("disk", 100)
	k.Go("p", func(p *Proc) {
		p.Transfer(100, disk) // 1s busy
		p.Sleep(1)            // idle gap must not count
		p.Transfer(100, disk) // 1s busy
	})
	k.Run()
	reg := obs.New()
	tr.ExportResourceMetrics(reg)
	if got := reg.Counter("sim/resource_bytes_total", obs.L("res", "disk")).Value(); got != 200 {
		t.Fatalf("bytes = %v, want 200", got)
	}
	if got := reg.Counter("sim/resource_flows_total", obs.L("res", "disk")).Value(); got != 2 {
		t.Fatalf("flows = %v, want 2", got)
	}
	if got := reg.Counter("sim/resource_busy_seconds", obs.L("res", "disk")).Value(); !almostEqual(got, 2) {
		t.Fatalf("busy = %v, want 2", got)
	}
	// The two transfers never overlap, so peak concurrency is 1.
	if got := reg.Gauge("sim/resource_peak_flows", obs.L("res", "disk")).Value(); got != 1 {
		t.Fatalf("peak = %v, want 1", got)
	}
}

func TestExportResourceMetricsPeakFlows(t *testing.T) {
	k := NewKernel()
	tr := &Tracer{}
	k.SetTracer(tr)
	disk := NewResource("disk", 100)
	for i := 0; i < 3; i++ {
		k.Go("p", func(p *Proc) { p.Transfer(100, disk) })
	}
	k.Run()
	reg := obs.New()
	tr.ExportResourceMetrics(reg)
	if got := reg.Gauge("sim/resource_peak_flows", obs.L("res", "disk")).Value(); got != 3 {
		t.Fatalf("peak = %v, want 3 concurrent flows", got)
	}
	// Re-export keeps the max instead of accumulating.
	tr.ExportResourceMetrics(reg)
	if got := reg.Gauge("sim/resource_peak_flows", obs.L("res", "disk")).Value(); got != 3 {
		t.Fatalf("peak after re-export = %v, want 3", got)
	}
}

func TestFlowSpansNestUnderProcSpan(t *testing.T) {
	k := NewKernel()
	reg := obs.New()
	k.SetObs(reg)
	disk := NewResource("disk", 100)
	nic := NewResource("nic", 1000)
	k.Go("p", func(p *Proc) {
		root := reg.StartSpan("task", "test", nil)
		prev := p.SetSpan(root)
		p.Transfer(100, disk)
		p.TransferAll(Part{Bytes: 50, Res: []*Resource{disk, nic}}, Part{Bytes: 50, Res: []*Resource{nic}})
		p.SetSpan(prev)
		root.End()
	})
	k.Run()
	// task + 3 flow spans
	if got := reg.SpanCount(); got != 4 {
		t.Fatalf("span count = %d, want 4", got)
	}
	var buf bytes.Buffer
	if err := reg.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"name":"flow"`)) {
		t.Fatal("trace missing flow spans")
	}
}

func TestNoSpansWithoutProcSpan(t *testing.T) {
	k := NewKernel()
	reg := obs.New()
	k.SetObs(reg)
	disk := NewResource("disk", 100)
	k.Go("p", func(p *Proc) { p.Transfer(100, disk) })
	k.Run()
	if got := reg.SpanCount(); got != 0 {
		t.Fatalf("span count = %d, want 0 (no parent span set)", got)
	}
}

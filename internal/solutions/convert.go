package solutions

import (
	"fmt"
	"strconv"

	"scidp/internal/netcdf"
	"scidp/internal/pfs"
	"scidp/internal/sim"
	"scidp/internal/workloads"
)

// csvDir returns the PFS directory converted text lands in.
func csvDir(wl *Workload) string { return wl.Dataset.Spec.Dir + "-csv" }

// csvPath returns the converted file for a timestamp.
func csvPath(wl *Workload, t int) string {
	return fmt.Sprintf("%s/plot_%02d_%02d_00.csv", csvDir(wl), t/60, t%60)
}

// formatCSV renders one timestamp's variable as "t,level,lat,lon,value"
// rows — the text form the text-based baselines process. Including the
// coordinate columns is what makes converted text an order of magnitude
// larger than the compressed binary (the paper's ~33x).
func formatCSV(t int, spec workloads.NUWRFSpec, vals []float32) []byte {
	out := make([]byte, 0, len(vals)*20+32)
	out = append(out, "t,level,lat,lon,value\n"...)
	i := 0
	for l := 0; l < spec.Levels; l++ {
		for y := 0; y < spec.Lat; y++ {
			for x := 0; x < spec.Lon; x++ {
				out = strconv.AppendInt(out, int64(t), 10)
				out = append(out, ',')
				out = strconv.AppendInt(out, int64(l), 10)
				out = append(out, ',')
				out = strconv.AppendInt(out, int64(y), 10)
				out = append(out, ',')
				out = strconv.AppendInt(out, int64(x), 10)
				out = append(out, ',')
				out = strconv.AppendFloat(out, float64(vals[i]), 'e', 8, 64)
				out = append(out, '\n')
				i++
			}
		}
	}
	return out
}

// ConvertToCSV converts the selected variable of every dataset file to
// CSV text on the PFS, sequentially from one staging node — the paper's
// offline conversion step ("It finishes in more than one hour" for 14 GB;
// excluded from totals but reported). Returns the produced paths and
// total text bytes.
func ConvertToCSV(p *sim.Proc, env *Env, wl *Workload) ([]string, int64, error) {
	staging := env.Mount(env.BD.Node(0))
	var out []string
	var textBytes int64
	for _, file := range wl.Dataset.Files {
		t := workloads.TimestampIndex(file)
		vals, stored, err := readVarFromPFS(p, staging, file, wl.Var)
		if err != nil {
			return nil, 0, err
		}
		// Decompress + decode charges.
		rawMB := env.scaleMB(len(vals) * 4)
		p.Sleep(env.Cfg.Cost.DecompressPerMB * rawMB)
		_ = stored
		text := formatCSV(t, wl.Dataset.Spec, vals)
		p.Sleep(env.Cfg.Cost.TextFormatPerMB * env.scaleMB(len(text)))
		dst := csvPath(wl, t)
		if _, err := staging.Create(p, dst, 0, 0); err != nil {
			return nil, 0, err
		}
		if err := staging.WriteAt(p, dst, text, 0); err != nil {
			return nil, 0, err
		}
		out = append(out, dst)
		textBytes += int64(len(text))
	}
	return out, textBytes, nil
}

// readVarFromPFS opens a netCDF file over the given mount and reads the
// whole named variable, returning the decoded values and the stored
// (compressed) size read.
func readVarFromPFS(p *sim.Proc, mount *pfs.Client, file, varName string) ([]float32, int64, error) {
	r, err := mount.OpenReader(p, file)
	if err != nil {
		return nil, 0, err
	}
	f, err := netcdf.Open(r)
	if err != nil {
		return nil, 0, err
	}
	v, err := f.Var(varName)
	if err != nil {
		return nil, 0, err
	}
	arr, err := f.GetVar(varName)
	if err != nil {
		return nil, 0, err
	}
	return arr.Float32s(), v.StoredBytes(), nil
}

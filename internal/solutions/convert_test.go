package solutions

import (
	"bytes"
	"strings"
	"testing"

	"scidp/internal/sim"
	"scidp/internal/workloads"
)

func TestFormatCSVShape(t *testing.T) {
	spec := workloads.NUWRFSpec{Levels: 2, Lat: 2, Lon: 3}
	vals := []float32{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	text := formatCSV(7, spec, vals)
	lines := strings.Split(strings.TrimRight(string(text), "\n"), "\n")
	if lines[0] != "t,level,lat,lon,value" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != 13 {
		t.Fatalf("lines = %d, want 13", len(lines))
	}
	// Row for (level 1, lat 0, lon 2) = value 9, timestamp 7.
	want := "7,1,0,2,9"
	found := false
	for _, l := range lines[1:] {
		if strings.HasPrefix(l, want) {
			found = true
		}
		if !strings.HasPrefix(l, "7,") {
			t.Fatalf("row missing timestamp: %q", l)
		}
	}
	if !found {
		t.Fatalf("missing row with prefix %q", want)
	}
}

func TestFormatCSVInflation(t *testing.T) {
	// The coordinates + full-precision value make text several times the
	// raw binary (the paper's order-of-magnitude inflation vs compressed).
	spec := workloads.NUWRFSpec{Levels: 4, Lat: 16, Lon: 16}
	vals := make([]float32, 4*16*16)
	for i := range vals {
		vals[i] = float32(i) * 0.001
	}
	text := formatCSV(0, spec, vals)
	raw := len(vals) * 4
	if len(text) < 4*raw {
		t.Fatalf("text %d bytes should be >= 4x raw %d", len(text), raw)
	}
}

func TestGridFromCSVRoundtrip(t *testing.T) {
	spec := workloads.NUWRFSpec{Levels: 3, Lat: 4, Lon: 5}
	vals := make([]float32, 3*4*5)
	for i := range vals {
		vals[i] = float32(i)*0.25 - 3
	}
	text := formatCSV(9, spec, vals)
	env := NewEnv(DefaultEnvConfig(1, 1))
	k := env.K
	var g *grid
	k.Go("t", func(p *sim.Proc) {
		sc := newSerialCtx(p, env.BD.Node(0))
		var err error
		g, err = gridFromCSV(env, sc, text, spec)
		if err != nil {
			t.Error(err)
			return
		}
		if sc.phases["Convert"] <= 0 {
			t.Error("Convert phase not charged")
		}
	})
	k.Run()
	if g.t != 9 || g.levels != 3 || g.ny != 4 || g.nx != 5 {
		t.Fatalf("grid = %+v", g)
	}
	for i := range vals {
		if g.vals[i] != vals[i] {
			t.Fatalf("value %d = %v, want %v (full-precision roundtrip)", i, g.vals[i], vals[i])
		}
	}
}

func TestGridFromCSVErrors(t *testing.T) {
	env := NewEnv(DefaultEnvConfig(1, 1))
	spec := workloads.NUWRFSpec{Levels: 1, Lat: 1, Lon: 1}
	env.K.Go("t", func(p *sim.Proc) {
		sc := newSerialCtx(p, env.BD.Node(0))
		if _, err := gridFromCSV(env, sc, []byte("a,b\n1,2\n"), spec); err == nil {
			t.Error("missing columns should fail")
		}
		if _, err := gridFromCSV(env, sc, []byte("t,level,lat,lon,value\n"), spec); err == nil {
			t.Error("empty body should fail")
		}
		if _, err := gridFromCSV(env, sc, []byte("t,level,lat,lon,value\n0,9,0,0,1\n"), spec); err == nil {
			t.Error("out-of-grid row should fail")
		}
	})
	env.K.Run()
}

func TestConvertToCSVProducesFilesOnPFS(t *testing.T) {
	spec := workloads.NUWRFSpec{Timestamps: 2, Levels: 2, Lat: 8, Lon: 8, Vars: 3, Dir: "/nuwrf"}
	env := NewEnv(DefaultEnvConfig(1000, 1))
	ds, err := workloads.Generate(env.PFS, spec)
	if err != nil {
		t.Fatal(err)
	}
	wl := &Workload{Dataset: ds, Var: "QR"}
	var paths []string
	var textBytes int64
	env.K.Go("t", func(p *sim.Proc) {
		paths, textBytes, err = ConvertToCSV(p, env, wl)
	})
	env.K.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("paths = %v", paths)
	}
	var total int64
	for _, pth := range paths {
		data := env.PFS.Get(pth)
		if data == nil {
			t.Fatalf("missing %s on PFS", pth)
		}
		total += int64(len(data))
		if !bytes.HasPrefix(data, []byte("t,level,lat,lon,value\n")) {
			t.Fatalf("%s missing header", pth)
		}
	}
	if total != textBytes {
		t.Fatalf("reported %d text bytes, stored %d", textBytes, total)
	}
}

func TestSerialCtxAccumulatesPhases(t *testing.T) {
	env := NewEnv(DefaultEnvConfig(1, 1))
	env.K.Go("t", func(p *sim.Proc) {
		sc := newSerialCtx(p, env.BD.Node(0))
		sc.Charge("Plot", 1.5)
		sc.Charge("Plot", 0.5)
		sc.Phase("Read", func() { p.Sleep(2) })
		if sc.phases["Plot"] != 2.0 || sc.phases["Read"] != 2.0 {
			t.Errorf("phases = %v", sc.phases)
		}
		if p.Now() != 4.0 {
			t.Errorf("now = %v", p.Now())
		}
	})
	env.K.Run()
}
